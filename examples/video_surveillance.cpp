// Store surveillance: the paper's merchandise-arrangement motivation.
//
// A store camera tracks customer movements frame-to-frame; the analyst
// wants the k movement patterns most similar to a "browse aisle 3, then
// checkout" reference path. This example also exercises the persistence
// path: tracks are written to CSV (as a tracking pipeline would), loaded
// back, and queried. Frame-to-frame tracking loses and re-acquires people
// constantly, so the query runs under EDR, which tolerates those outliers.

#include <cstdio>
#include <string>

#include "core/rng.h"
#include "data/io.h"
#include "data/noise.h"
#include "query/engine.h"

namespace {

/// Synthesizes customer tracks through a 20m x 10m store: enter at the
/// door, wander a few aisles, end at a checkout. A fraction of customers
/// follow the "aisle 3 then checkout" pattern of interest.
edr::TrajectoryDataset MakeTracks(int count, uint64_t seed) {
  edr::Rng rng(seed);
  edr::TrajectoryDataset db("store_tracks");
  for (int i = 0; i < count; ++i) {
    // Every tenth customer is steered to aisle 3; others pick at random
    // (so some regular shoppers also browse aisle 3 — they count as true
    // matches too).
    const int frames = static_cast<int>(rng.UniformInt(60, 180));
    const double aisle = i % 10 == 0
                             ? 3.0
                             : static_cast<double>(rng.UniformInt(0, 4));
    edr::Trajectory t;
    for (int f = 0; f < frames; ++f) {
      const double u = static_cast<double>(f) / static_cast<double>(frames);
      edr::Point2 p;
      if (u < 0.3) {  // Door (0,5) to aisle entrance.
        p = {u / 0.3 * (4.0 * aisle + 2.0), 5.0 + 4.0 * u};
      } else if (u < 0.7) {  // Down and up the aisle.
        const double v = (u - 0.3) / 0.4;
        p = {4.0 * aisle + 2.0, 6.2 - 5.0 * std::fabs(2.0 * v - 1.0)};
      } else {  // To checkout at (18, 1).
        const double v = (u - 0.7) / 0.3;
        p = {4.0 * aisle + 2.0 + v * (18.0 - 4.0 * aisle - 2.0),
             6.2 - 5.2 * v};
      }
      // Tracker jitter plus occasional mis-detections.
      p.x += rng.Gaussian(0.0, 0.05);
      p.y += rng.Gaussian(0.0, 0.05);
      if (rng.NextDouble() < 0.02) {
        p.x += rng.Gaussian(0.0, 5.0);  // Identity switch glitch.
      }
      t.Append(p);
    }
    t.set_label(aisle == 3.0 ? 1 : 0);
    db.Add(std::move(t));
  }
  return db;
}

}  // namespace

int main() {
  const std::string csv_path = "/tmp/edr_store_tracks.csv";

  // Tracking pipeline side: detect, track, persist.
  {
    const edr::TrajectoryDataset tracks = MakeTracks(800, 5);
    const edr::Status status = edr::SaveCsv(tracks, csv_path);
    if (!status.ok()) {
      std::printf("save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("persisted %zu tracks to %s\n", tracks.size(),
                csv_path.c_str());
  }

  // Analyst side: load, normalize, query.
  edr::Result<edr::TrajectoryDataset> loaded = edr::LoadCsv(csv_path);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  edr::TrajectoryDataset db = std::move(loaded).value();
  // Deliberately NOT normalized: in a store, *where* a customer walks is
  // the signal — normalization would make every aisle look alike. The
  // matching threshold still follows the quarter-of-max-std-dev rule,
  // just in raw meters.
  edr::QueryEngine engine(db, db.SuggestedEpsilon());

  // Reference path: one known aisle-3 shopper.
  uint32_t reference = 0;
  for (const edr::Trajectory& t : db) {
    if (t.label() == 1) {
      reference = t.id();
      break;
    }
  }

  edr::CombinedOptions combo;
  combo.max_triangle = 100;
  const edr::KnnResult result =
      engine.Combined(combo).Knn(db[reference], 10);

  std::printf("\n10 tracks most similar to the aisle-3 reference "
              "(%.0f%% of the database pruned, %.1f ms):\n",
              result.stats.PruningPower() * 100.0,
              result.stats.elapsed_seconds * 1e3);
  size_t pattern_hits = 0;
  for (const edr::Neighbor& n : result.neighbors) {
    const bool hit = db[n.id].label() == 1;
    pattern_hits += hit ? 1 : 0;
    std::printf("  track %-5u EDR=%-4.0f %s\n", n.id, n.distance,
                hit ? "[aisle-3 pattern]" : "");
  }
  std::printf("\n%zu of 10 retrieved tracks are true aisle-3 shoppers\n",
              pattern_hits);
  std::remove(csv_path.c_str());
  return 0;
}
