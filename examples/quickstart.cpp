// Quickstart: the smallest end-to-end use of the library.
//
//   1. Build a trajectory dataset (here: synthetic hockey-player tracks).
//   2. Normalize it and pick the matching threshold.
//   3. Compare two trajectories under all five distance functions.
//   4. Answer a k-NN query with the combined pruning searcher and verify
//      it against a sequential scan.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "core/normalize.h"
#include "data/generators.h"
#include "distance/distance.h"
#include "query/engine.h"

int main() {
  // 1. A dataset of 500 rink-bounded player movements.
  edr::TrajectoryDataset db = edr::GenNhlLike(500, 30, 256, /*seed=*/42);
  std::printf("dataset: %zu trajectories, lengths %zu-%zu\n", db.size(),
              db.Stats().min_length, db.Stats().max_length);

  // 2. Normalize (shift/scale invariance) and derive epsilon: a quarter of
  //    the maximum trajectory standard deviation, i.e. 0.25 after
  //    normalization.
  db.NormalizeAll();
  const double epsilon = db.SuggestedEpsilon();
  std::printf("matching threshold epsilon = %.2f\n\n", epsilon);

  // 3. All five distance functions on one pair.
  const edr::Trajectory& a = db[0];
  const edr::Trajectory& b = db[1];
  edr::DistanceOptions options;
  options.epsilon = epsilon;
  for (const edr::DistanceKind kind : edr::kAllDistanceKinds) {
    const edr::DistanceFn fn = edr::MakeDistance(kind, options);
    std::printf("%-5s(db[0], db[1]) = %.3f\n", edr::DistanceKindName(kind),
                fn(a, b));
  }

  // 4. 10-NN under EDR, with and without pruning.
  edr::QueryEngine engine(db, epsilon);
  const edr::Trajectory& query = db[123];

  const edr::KnnResult exact = engine.SeqScan(query, 10);
  edr::CombinedOptions combo;  // histograms -> Q-grams -> near-triangle
  combo.max_triangle = 100;
  const edr::KnnResult fast = engine.Combined(combo).Knn(query, 10);

  std::printf("\n10-NN of trajectory %u under EDR:\n", query.id());
  std::printf("  %-10s computed %4zu/%zu EDR distances (%.0f ms)\n",
              "SeqScan", exact.stats.edr_computed, exact.stats.db_size,
              exact.stats.elapsed_seconds * 1e3);
  std::printf("  %-10s computed %4zu/%zu EDR distances (%.0f ms)\n",
              engine.Combined(combo).name().c_str(),
              fast.stats.edr_computed, fast.stats.db_size,
              fast.stats.elapsed_seconds * 1e3);
  std::printf("  identical results: %s\n",
              edr::SameKnnDistances(exact, fast) ? "yes" : "NO");
  for (const edr::Neighbor& n : fast.neighbors) {
    std::printf("    id=%-5u EDR=%.0f\n", n.id, n.distance);
  }
  return 0;
}
