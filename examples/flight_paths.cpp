// Three-dimensional trajectories: comparing flight paths.
//
// The paper notes all of its definitions extend beyond the x-y plane;
// this example exercises the 3-D stack (Trajectory3 + the same elastic
// distance kernels) on synthetic approach paths into an airport. Three
// approach procedures differ in their descent profile; EDR classifies a
// glitchy radar track to the right procedure while Euclidean distance is
// dragged off by the glitches.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/rng.h"
#include "core/trajectory3.h"
#include "distance/distance3.h"

namespace {

/// One flight following a named approach procedure, with per-flight speed
/// and wind jitter. Procedures differ in the turn direction and descent.
edr::Trajectory3 Approach(int procedure, edr::Rng& rng) {
  const int samples = static_cast<int>(rng.UniformInt(90, 130));
  const double speed = rng.Uniform(0.9, 1.1);
  edr::Trajectory3 t;
  for (int i = 0; i < samples; ++i) {
    const double u =
        speed * static_cast<double>(i) / static_cast<double>(samples);
    edr::Point3 p;
    switch (procedure) {
      case 0:  // Straight-in, steady 3-degree descent.
        p = {-30.0 * (1.0 - u), 0.0, 10.0 * (1.0 - u)};
        break;
      case 1:  // Left-hand downwind then base turn, stepped descent.
        p = {-20.0 * std::cos(1.8 * u), 15.0 * std::sin(1.8 * u),
             10.0 * (1.0 - u * u)};
        break;
      default:  // Right-hand spiral descent.
        p = {-12.0 * std::cos(5.0 * u), -12.0 * std::sin(5.0 * u),
             10.0 * (1.0 - u)};
    }
    p.x += rng.Gaussian(0.0, 0.05);
    p.y += rng.Gaussian(0.0, 0.05);
    p.z += rng.Gaussian(0.0, 0.02);
    t.Append(p);
  }
  t.set_label(procedure);
  return t;
}

}  // namespace

int main() {
  edr::Rng rng(77);

  // A library of labeled reference flights.
  std::vector<edr::Trajectory3> fleet;
  for (int procedure = 0; procedure < 3; ++procedure) {
    for (int i = 0; i < 8; ++i) fleet.push_back(Approach(procedure, rng));
  }
  std::printf("%zu reference flights across 3 approach procedures\n",
              fleet.size());

  // A new radar track: procedure 1 with radar glitches (dropouts replaced
  // by bogus returns).
  edr::Trajectory3 track = Approach(1, rng);
  for (int g = 0; g < 6; ++g) {
    const size_t at = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(track.size()) - 1));
    track[at] = {rng.Uniform(-50, 50), rng.Uniform(-50, 50),
                 rng.Uniform(0, 12)};
  }

  // Classify by nearest neighbor under each distance.
  const auto classify = [&fleet](auto&& distance) {
    double best = 1e300;
    int label = -1;
    for (const edr::Trajectory3& f : fleet) {
      const double d = distance(f);
      if (d < best) {
        best = d;
        label = f.label();
      }
    }
    return label;
  };

  // Normalize per-trajectory before EDR, as in 2-D.
  const edr::Trajectory3 track_n = Normalize(track);
  const int by_edr = classify([&track_n](const edr::Trajectory3& f) {
    return static_cast<double>(
        edr::EdrDistance(track_n, Normalize(f), 0.25));
  });
  const int by_euclid = classify([&track](const edr::Trajectory3& f) {
    return edr::SlidingEuclideanDistance(track, f);
  });
  const int by_dtw = classify([&track](const edr::Trajectory3& f) {
    return edr::DtwDistance(track, f);
  });

  std::printf("glitchy radar track flew procedure 1\n");
  std::printf("  EDR       classifies it as procedure %d %s\n", by_edr,
              by_edr == 1 ? "(correct)" : "(WRONG)");
  std::printf("  Euclidean classifies it as procedure %d %s\n", by_euclid,
              by_euclid == 1 ? "(correct)" : "(wrong - glitch-sensitive)");
  std::printf("  DTW       classifies it as procedure %d %s\n", by_dtw,
              by_dtw == 1 ? "(correct)" : "(wrong - glitch-sensitive)");
  return by_edr == 1 ? 0 : 1;
}
