// Animal migration mining: the paper's remote-sensing motivation.
//
// A wildlife agency tracks animals with GPS collars that sample at
// different rates and occasionally glitch. The question: which animals
// follow the same migration route? This example clusters collar tracks
// with complete-linkage hierarchical clustering under EDR and shows that
// the discovered groups recover the true herds despite sampling-rate
// differences (local time shifting) and sensor glitches (outliers) —
// exactly the data imperfections EDR is designed for.

#include <cstdio>
#include <vector>

#include "core/rng.h"
#include "data/noise.h"
#include "distance/distance.h"
#include "eval/linkage.h"

namespace {

/// Builds `count` collar tracks following one of three migration routes
/// (south-bound coastal, south-bound inland, resident circling), with
/// per-animal speed variation, sampling rate, and collar glitches.
edr::TrajectoryDataset MakeHerds(int per_route, uint64_t seed) {
  edr::Rng rng(seed);
  edr::TrajectoryDataset db("collar_tracks");
  for (int route = 0; route < 3; ++route) {
    for (int animal = 0; animal < per_route; ++animal) {
      const int samples = static_cast<int>(rng.UniformInt(80, 160));
      const double speed = rng.Uniform(0.8, 1.2);
      edr::Trajectory t;
      for (int i = 0; i < samples; ++i) {
        const double u =
            speed * static_cast<double>(i) / static_cast<double>(samples);
        edr::Point2 p;
        switch (route) {
          case 0:  // Coastal: south with a seaward bow.
            p = {0.3 * std::sin(3.14159 * u), -2.0 * u};
            break;
          case 1:  // Inland: south-east diagonal.
            p = {1.2 * u, -1.8 * u};
            break;
          default:  // Resident: circling a home range.
            p = {0.5 * std::cos(6.28318 * u), 0.5 * std::sin(6.28318 * u)};
        }
        p.x += rng.Gaussian(0.0, 0.02);
        p.y += rng.Gaussian(0.0, 0.02);
        t.Append(p);
      }
      t.set_label(route);
      db.Add(std::move(t));
    }
  }
  return db;
}

}  // namespace

int main() {
  edr::TrajectoryDataset db = MakeHerds(/*per_route=*/6, /*seed=*/2026);

  // Corrupt every track with collar glitches, as raw field data would be.
  edr::Rng rng(17);
  edr::NoiseOptions glitches;
  edr::TrajectoryDataset raw("raw_tracks");
  for (const edr::Trajectory& t : db) {
    raw.Add(edr::AddInterpolatedGaussianNoise(t, glitches, rng));
  }
  raw.NormalizeAll();

  std::printf("%zu collar tracks from 3 true herds, with glitches\n",
              raw.size());

  // Cluster all tracks into 3 groups under EDR.
  edr::DistanceOptions options;
  options.epsilon = raw.SuggestedEpsilon();
  const edr::DistanceFn edr_fn =
      edr::MakeDistance(edr::DistanceKind::kEdr, options);

  std::vector<const edr::Trajectory*> items;
  for (const edr::Trajectory& t : raw) items.push_back(&t);
  const edr::DistanceMatrix matrix = edr::ComputeDistanceMatrix(items, edr_fn);
  const std::vector<int> clusters = edr::CompleteLinkageClusters(matrix, 3);

  // Report cluster composition against the true herds.
  std::printf("\ncluster composition (rows: discovered cluster, columns: "
              "true herd):\n");
  int table[3][3] = {};
  for (size_t i = 0; i < raw.size(); ++i) {
    table[clusters[i]][raw[i].label()]++;
  }
  std::printf("          coastal  inland  resident\n");
  for (int c = 0; c < 3; ++c) {
    std::printf("cluster %d %7d %7d %9d\n", c, table[c][0], table[c][1],
                table[c][2]);
  }

  // A perfect recovery has one nonzero cell per row.
  bool pure = true;
  for (int c = 0; c < 3; ++c) {
    int nonzero = 0;
    for (int h = 0; h < 3; ++h) nonzero += table[c][h] > 0 ? 1 : 0;
    if (nonzero > 1) pure = false;
  }
  std::printf("\nEDR clustering recovered the herds %s\n",
              pure ? "exactly" : "with some confusion");
  return 0;
}
