// Sports analytics: "find plays like this one" over a season of player
// tracking data — the NHL scenario from the paper's evaluation.
//
// A coach selects one shift (trajectory) of interest; the system retrieves
// the k most similar movement patterns from the whole season under EDR,
// using the combined pruning searcher so the answer arrives at interactive
// latency. The example also shows why EDR: the query is corrupted with
// tracking dropouts (outliers), and EDR still retrieves the clean
// originals while Euclidean ranking is thrown off.

#include <cstdio>

#include "core/rng.h"
#include "data/generators.h"
#include "data/noise.h"
#include "distance/euclidean.h"
#include "query/engine.h"

int main() {
  // A season's worth of shifts (scaled down; pass --full-sized data
  // through the library API in real use).
  edr::TrajectoryDataset db = edr::GenNhlLike(3000, 30, 256, /*seed=*/7);
  db.NormalizeAll();
  const double epsilon = db.SuggestedEpsilon();
  edr::QueryEngine engine(db, epsilon);

  // The coach's play of interest — as it came off the tracking system,
  // with sensor dropouts (interpolated Gaussian outliers).
  edr::Rng rng(99);
  edr::NoiseOptions noise;
  const edr::Trajectory query =
      edr::AddInterpolatedGaussianNoise(db[777], noise, rng);
  std::printf("query: shift %u corrupted with %zu outlier samples\n",
              db[777].id(), query.size() - db[777].size());

  // Interactive retrieval: histograms -> Q-grams -> near-triangle.
  edr::CombinedOptions combo;
  combo.histogram_kind = edr::HistogramTable::Kind::k1D;  // "1HPN"
  combo.max_triangle = 200;
  const edr::NamedSearcher searcher = engine.MakeCombined(combo);

  const edr::KnnResult result = searcher.search(query, 5);
  std::printf("\n%s retrieved 5 similar plays in %.1f ms "
              "(%.0f%% of the database pruned):\n",
              searcher.name.c_str(), result.stats.elapsed_seconds * 1e3,
              result.stats.PruningPower() * 100.0);
  for (const edr::Neighbor& n : result.neighbors) {
    std::printf("  shift %-5u EDR=%-4.0f length=%zu\n", n.id, n.distance,
                db[n.id].size());
  }

  // Robustness: the uncorrupted original must come back among the top
  // answers (its cluster siblings legitimately tie with it).
  bool found_original = false;
  for (const edr::Neighbor& n : result.neighbors) {
    if (n.id == 777) found_original = true;
  }
  std::printf("\nEDR retrieves the uncorrupted original in the top 5: %s\n",
              found_original ? "yes" : "no");

  // Contrast with Euclidean distance, which the outliers dominate.
  double best_eu = 1e300;
  uint32_t best_eu_id = 0;
  for (const edr::Trajectory& t : db) {
    const double d = edr::SlidingEuclideanDistance(query, t);
    if (d < best_eu) {
      best_eu = d;
      best_eu_id = t.id();
    }
  }
  std::printf("Euclidean nearest neighbor: shift %u (%s)\n", best_eu_id,
              best_eu_id == 777 ? "also correct here"
                                : "NOT the original - noise sensitivity");
  return 0;
}
