// Pattern search inside continuous streams: the approximate-matching form
// of EDR (the setting the paper's Q-gram machinery originally comes
// from). A fleet of delivery vehicles records one long GPS stream each;
// the analyst wants every place where a vehicle performed a particular
// maneuver — here, a U-turn — even though the streams carry GPS glitches
// and every driver executes the maneuver at a slightly different speed.

#include <cstdio>
#include <vector>

#include "core/rng.h"
#include "data/features.h"
#include "query/subtrajectory.h"

namespace {

/// Appends a straight drive segment heading (dx, dy) per sample.
void Drive(edr::Trajectory& t, edr::Point2& pos, edr::Point2 heading,
           int samples, edr::Rng& rng) {
  for (int i = 0; i < samples; ++i) {
    pos = pos + heading;
    t.Append(pos.x + rng.Gaussian(0.0, 0.01),
             pos.y + rng.Gaussian(0.0, 0.01));
  }
}

/// Appends a U-turn: half circle of the given radius, at a per-driver
/// speed (number of samples).
void UTurn(edr::Trajectory& t, edr::Point2& pos, double radius, int samples,
           edr::Rng& rng) {
  const edr::Point2 center{pos.x, pos.y + radius};
  for (int i = 1; i <= samples; ++i) {
    const double angle = -1.5707963 + 3.14159265 * i / samples;
    pos = {center.x + radius * std::cos(angle),
           center.y + radius * std::sin(angle)};
    t.Append(pos.x + rng.Gaussian(0.0, 0.01),
             pos.y + rng.Gaussian(0.0, 0.01));
  }
}

}  // namespace

int main() {
  edr::Rng rng(2025);

  // The query pattern: a canonical U-turn (half circle, ~24 samples).
  edr::Trajectory pattern;
  {
    edr::Point2 pos{0.0, 0.0};
    UTurn(pattern, pos, 1.0, 24, rng);
  }

  // Three vehicle streams; streams 0 and 2 contain U-turns at known spots,
  // executed at different speeds; stream 1 only drives around corners.
  std::vector<edr::Trajectory> streams(3);
  std::vector<std::pair<size_t, size_t>> planted;  // (stream, position)
  for (int v = 0; v < 3; ++v) {
    edr::Point2 pos{0.0, 0.0};
    edr::Trajectory& s = streams[static_cast<size_t>(v)];
    Drive(s, pos, {0.08, 0.0}, 120, rng);
    if (v != 1) {
      planted.push_back({static_cast<size_t>(v), s.size()});
      UTurn(s, pos, 1.0, v == 0 ? 20 : 30, rng);  // Different speeds.
    } else {
      Drive(s, pos, {0.0, 0.08}, 40, rng);  // A corner, not a U-turn.
    }
    Drive(s, pos, {-0.08, 0.0}, 120, rng);
    // A GPS glitch somewhere in every stream.
    s[s.size() / 3] = {50.0, 50.0};
  }

  std::printf("query: %zu-sample U-turn pattern; %zu streams of ~280 "
              "samples each\n\n",
              pattern.size(), streams.size());

  // Match in displacement space (translation invariance) with a
  // threshold below the drive-step size, so "turning" displacements
  // cannot match "driving straight" ones.
  const double epsilon = 0.06;
  // Displacement space: translation-invariant maneuver search
  // (data/features.h).
  const edr::Trajectory pattern_deltas = edr::ToDisplacements(pattern);
  const int radius = static_cast<int>(pattern_deltas.size()) / 2;
  for (size_t v = 0; v < streams.size(); ++v) {
    const edr::Trajectory stream_deltas = edr::ToDisplacements(streams[v]);
    const edr::SubtrajectoryMatch best =
        edr::BestSubtrajectoryMatch(pattern_deltas, stream_deltas, epsilon);
    const auto occurrences = edr::NonOverlappingMatches(
        edr::SubtrajectoryMatchesWithin(pattern_deltas, stream_deltas,
                                        radius, epsilon));
    std::printf("stream %zu: best match EDR=%d at [%zu, %zu); %zu "
                "occurrence(s) within radius %d\n",
                v, best.distance, best.begin, best.end,
                occurrences.size(), radius);
  }

  std::printf("\nplanted maneuvers:\n");
  for (const auto& [stream, position] : planted) {
    const edr::SubtrajectoryMatch best = edr::BestSubtrajectoryMatch(
        edr::ToDisplacements(pattern), edr::ToDisplacements(streams[stream]), epsilon);
    const bool found = best.begin <= position + 5 && position <= best.end;
    std::printf("  stream %zu at sample %zu -> %s (matched [%zu, %zu), "
                "EDR=%d)\n",
                stream, position, found ? "FOUND" : "missed", best.begin,
                best.end, best.distance);
  }
  return 0;
}
