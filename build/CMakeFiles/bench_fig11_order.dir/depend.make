# Empty dependencies file for bench_fig11_order.
# This may be replaced when dependencies are built.
