file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_order.dir/bench/bench_fig11_order.cc.o"
  "CMakeFiles/bench_fig11_order.dir/bench/bench_fig11_order.cc.o.d"
  "bench/bench_fig11_order"
  "bench/bench_fig11_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
