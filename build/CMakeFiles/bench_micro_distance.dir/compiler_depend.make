# Empty compiler generated dependencies file for bench_micro_distance.
# This may be replaced when dependencies are built.
