file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_distance.dir/bench/bench_micro_distance.cc.o"
  "CMakeFiles/bench_micro_distance.dir/bench/bench_micro_distance.cc.o.d"
  "bench/bench_micro_distance"
  "bench/bench_micro_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
