file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_combined.dir/bench/bench_fig12_13_combined.cc.o"
  "CMakeFiles/bench_fig12_13_combined.dir/bench/bench_fig12_13_combined.cc.o.d"
  "bench/bench_fig12_13_combined"
  "bench/bench_fig12_13_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
