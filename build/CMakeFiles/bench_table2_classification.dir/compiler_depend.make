# Empty compiler generated dependencies file for bench_table2_classification.
# This may be replaced when dependencies are built.
