file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_classification.dir/bench/bench_table2_classification.cc.o"
  "CMakeFiles/bench_table2_classification.dir/bench/bench_table2_classification.cc.o.d"
  "bench/bench_table2_classification"
  "bench/bench_table2_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
