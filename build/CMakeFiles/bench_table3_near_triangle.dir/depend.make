# Empty dependencies file for bench_table3_near_triangle.
# This may be replaced when dependencies are built.
