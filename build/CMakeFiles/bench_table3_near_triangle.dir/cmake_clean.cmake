file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_near_triangle.dir/bench/bench_table3_near_triangle.cc.o"
  "CMakeFiles/bench_table3_near_triangle.dir/bench/bench_table3_near_triangle.cc.o.d"
  "bench/bench_table3_near_triangle"
  "bench/bench_table3_near_triangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_near_triangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
