# Empty dependencies file for bench_table1_clustering.
# This may be replaced when dependencies are built.
