file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_clustering.dir/bench/bench_table1_clustering.cc.o"
  "CMakeFiles/bench_table1_clustering.dir/bench/bench_table1_clustering.cc.o.d"
  "bench/bench_table1_clustering"
  "bench/bench_table1_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
