file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_qgram.dir/bench/bench_fig7_8_qgram.cc.o"
  "CMakeFiles/bench_fig7_8_qgram.dir/bench/bench_fig7_8_qgram.cc.o.d"
  "bench/bench_fig7_8_qgram"
  "bench/bench_fig7_8_qgram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_qgram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
