file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_10_histogram.dir/bench/bench_fig9_10_histogram.cc.o"
  "CMakeFiles/bench_fig9_10_histogram.dir/bench/bench_fig9_10_histogram.cc.o.d"
  "bench/bench_fig9_10_histogram"
  "bench/bench_fig9_10_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_10_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
