# Empty compiler generated dependencies file for subtrajectory_test.
# This may be replaced when dependencies are built.
