file(REMOVE_RECURSE
  "CMakeFiles/subtrajectory_test.dir/subtrajectory_test.cc.o"
  "CMakeFiles/subtrajectory_test.dir/subtrajectory_test.cc.o.d"
  "subtrajectory_test"
  "subtrajectory_test.pdb"
  "subtrajectory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subtrajectory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
