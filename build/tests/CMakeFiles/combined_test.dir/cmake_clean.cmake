file(REMOVE_RECURSE
  "CMakeFiles/combined_test.dir/combined_test.cc.o"
  "CMakeFiles/combined_test.dir/combined_test.cc.o.d"
  "combined_test"
  "combined_test.pdb"
  "combined_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combined_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
