# Empty compiler generated dependencies file for combined_test.
# This may be replaced when dependencies are built.
