# Empty dependencies file for distance_properties_test.
# This may be replaced when dependencies are built.
