file(REMOVE_RECURSE
  "CMakeFiles/distance_properties_test.dir/distance_properties_test.cc.o"
  "CMakeFiles/distance_properties_test.dir/distance_properties_test.cc.o.d"
  "distance_properties_test"
  "distance_properties_test.pdb"
  "distance_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
