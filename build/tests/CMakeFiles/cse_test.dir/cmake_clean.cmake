file(REMOVE_RECURSE
  "CMakeFiles/cse_test.dir/cse_test.cc.o"
  "CMakeFiles/cse_test.dir/cse_test.cc.o.d"
  "cse_test"
  "cse_test.pdb"
  "cse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
