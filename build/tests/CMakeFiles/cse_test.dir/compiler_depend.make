# Empty compiler generated dependencies file for cse_test.
# This may be replaced when dependencies are built.
