file(REMOVE_RECURSE
  "CMakeFiles/euclidean_test.dir/euclidean_test.cc.o"
  "CMakeFiles/euclidean_test.dir/euclidean_test.cc.o.d"
  "euclidean_test"
  "euclidean_test.pdb"
  "euclidean_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/euclidean_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
