# Empty dependencies file for euclidean_test.
# This may be replaced when dependencies are built.
