# Empty compiler generated dependencies file for trajectory3_test.
# This may be replaced when dependencies are built.
