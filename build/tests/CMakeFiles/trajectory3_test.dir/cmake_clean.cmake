file(REMOVE_RECURSE
  "CMakeFiles/trajectory3_test.dir/trajectory3_test.cc.o"
  "CMakeFiles/trajectory3_test.dir/trajectory3_test.cc.o.d"
  "trajectory3_test"
  "trajectory3_test.pdb"
  "trajectory3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
