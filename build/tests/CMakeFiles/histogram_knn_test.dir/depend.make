# Empty dependencies file for histogram_knn_test.
# This may be replaced when dependencies are built.
