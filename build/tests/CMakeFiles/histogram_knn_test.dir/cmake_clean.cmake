file(REMOVE_RECURSE
  "CMakeFiles/histogram_knn_test.dir/histogram_knn_test.cc.o"
  "CMakeFiles/histogram_knn_test.dir/histogram_knn_test.cc.o.d"
  "histogram_knn_test"
  "histogram_knn_test.pdb"
  "histogram_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
