file(REMOVE_RECURSE
  "CMakeFiles/distance3_test.dir/distance3_test.cc.o"
  "CMakeFiles/distance3_test.dir/distance3_test.cc.o.d"
  "distance3_test"
  "distance3_test.pdb"
  "distance3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
