# Empty dependencies file for distance3_test.
# This may be replaced when dependencies are built.
