file(REMOVE_RECURSE
  "CMakeFiles/range_query_test.dir/range_query_test.cc.o"
  "CMakeFiles/range_query_test.dir/range_query_test.cc.o.d"
  "range_query_test"
  "range_query_test.pdb"
  "range_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
