file(REMOVE_RECURSE
  "CMakeFiles/near_triangle_test.dir/near_triangle_test.cc.o"
  "CMakeFiles/near_triangle_test.dir/near_triangle_test.cc.o.d"
  "near_triangle_test"
  "near_triangle_test.pdb"
  "near_triangle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/near_triangle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
