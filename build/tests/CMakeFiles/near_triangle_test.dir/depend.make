# Empty dependencies file for near_triangle_test.
# This may be replaced when dependencies are built.
