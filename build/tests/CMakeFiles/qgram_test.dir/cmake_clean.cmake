file(REMOVE_RECURSE
  "CMakeFiles/qgram_test.dir/qgram_test.cc.o"
  "CMakeFiles/qgram_test.dir/qgram_test.cc.o.d"
  "qgram_test"
  "qgram_test.pdb"
  "qgram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qgram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
