file(REMOVE_RECURSE
  "CMakeFiles/erp_test.dir/erp_test.cc.o"
  "CMakeFiles/erp_test.dir/erp_test.cc.o.d"
  "erp_test"
  "erp_test.pdb"
  "erp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
