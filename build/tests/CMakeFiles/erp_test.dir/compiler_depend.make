# Empty compiler generated dependencies file for erp_test.
# This may be replaced when dependencies are built.
