# Empty compiler generated dependencies file for lcss_test.
# This may be replaced when dependencies are built.
