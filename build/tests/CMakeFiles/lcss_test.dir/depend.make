# Empty dependencies file for lcss_test.
# This may be replaced when dependencies are built.
