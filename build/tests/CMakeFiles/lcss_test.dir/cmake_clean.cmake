file(REMOVE_RECURSE
  "CMakeFiles/lcss_test.dir/lcss_test.cc.o"
  "CMakeFiles/lcss_test.dir/lcss_test.cc.o.d"
  "lcss_test"
  "lcss_test.pdb"
  "lcss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
