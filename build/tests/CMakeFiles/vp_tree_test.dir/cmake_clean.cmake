file(REMOVE_RECURSE
  "CMakeFiles/vp_tree_test.dir/vp_tree_test.cc.o"
  "CMakeFiles/vp_tree_test.dir/vp_tree_test.cc.o.d"
  "vp_tree_test"
  "vp_tree_test.pdb"
  "vp_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
