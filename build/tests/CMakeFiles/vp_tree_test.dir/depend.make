# Empty dependencies file for vp_tree_test.
# This may be replaced when dependencies are built.
