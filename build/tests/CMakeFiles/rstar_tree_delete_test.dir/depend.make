# Empty dependencies file for rstar_tree_delete_test.
# This may be replaced when dependencies are built.
