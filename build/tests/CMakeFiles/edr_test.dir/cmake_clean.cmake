file(REMOVE_RECURSE
  "CMakeFiles/edr_test.dir/edr_test.cc.o"
  "CMakeFiles/edr_test.dir/edr_test.cc.o.d"
  "edr_test"
  "edr_test.pdb"
  "edr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
