# Empty compiler generated dependencies file for edr_test.
# This may be replaced when dependencies are built.
