file(REMOVE_RECURSE
  "CMakeFiles/frechet_test.dir/frechet_test.cc.o"
  "CMakeFiles/frechet_test.dir/frechet_test.cc.o.d"
  "frechet_test"
  "frechet_test.pdb"
  "frechet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frechet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
