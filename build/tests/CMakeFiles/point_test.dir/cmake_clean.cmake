file(REMOVE_RECURSE
  "CMakeFiles/point_test.dir/point_test.cc.o"
  "CMakeFiles/point_test.dir/point_test.cc.o.d"
  "point_test"
  "point_test.pdb"
  "point_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
