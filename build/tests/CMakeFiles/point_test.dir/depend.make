# Empty dependencies file for point_test.
# This may be replaced when dependencies are built.
