# Empty compiler generated dependencies file for lcss_knn_test.
# This may be replaced when dependencies are built.
