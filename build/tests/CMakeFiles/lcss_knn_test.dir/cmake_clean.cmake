file(REMOVE_RECURSE
  "CMakeFiles/lcss_knn_test.dir/lcss_knn_test.cc.o"
  "CMakeFiles/lcss_knn_test.dir/lcss_knn_test.cc.o.d"
  "lcss_knn_test"
  "lcss_knn_test.pdb"
  "lcss_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcss_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
