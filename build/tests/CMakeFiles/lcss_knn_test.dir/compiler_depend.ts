# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lcss_knn_test.
