# Empty compiler generated dependencies file for epsilon_test.
# This may be replaced when dependencies are built.
