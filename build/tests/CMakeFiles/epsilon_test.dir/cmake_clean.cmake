file(REMOVE_RECURSE
  "CMakeFiles/epsilon_test.dir/epsilon_test.cc.o"
  "CMakeFiles/epsilon_test.dir/epsilon_test.cc.o.d"
  "epsilon_test"
  "epsilon_test.pdb"
  "epsilon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epsilon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
