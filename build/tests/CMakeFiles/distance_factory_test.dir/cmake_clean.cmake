file(REMOVE_RECURSE
  "CMakeFiles/distance_factory_test.dir/distance_factory_test.cc.o"
  "CMakeFiles/distance_factory_test.dir/distance_factory_test.cc.o.d"
  "distance_factory_test"
  "distance_factory_test.pdb"
  "distance_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
