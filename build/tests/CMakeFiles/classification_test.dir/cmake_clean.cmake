file(REMOVE_RECURSE
  "CMakeFiles/classification_test.dir/classification_test.cc.o"
  "CMakeFiles/classification_test.dir/classification_test.cc.o.d"
  "classification_test"
  "classification_test.pdb"
  "classification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
