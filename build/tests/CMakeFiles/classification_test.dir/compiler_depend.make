# Empty compiler generated dependencies file for classification_test.
# This may be replaced when dependencies are built.
