# Empty dependencies file for qgram_knn_test.
# This may be replaced when dependencies are built.
