file(REMOVE_RECURSE
  "CMakeFiles/qgram_knn_test.dir/qgram_knn_test.cc.o"
  "CMakeFiles/qgram_knn_test.dir/qgram_knn_test.cc.o.d"
  "qgram_knn_test"
  "qgram_knn_test.pdb"
  "qgram_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qgram_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
