file(REMOVE_RECURSE
  "CMakeFiles/pruning3_test.dir/pruning3_test.cc.o"
  "CMakeFiles/pruning3_test.dir/pruning3_test.cc.o.d"
  "pruning3_test"
  "pruning3_test.pdb"
  "pruning3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pruning3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
