# Empty dependencies file for pruning3_test.
# This may be replaced when dependencies are built.
