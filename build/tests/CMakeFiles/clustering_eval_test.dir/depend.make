# Empty dependencies file for clustering_eval_test.
# This may be replaced when dependencies are built.
