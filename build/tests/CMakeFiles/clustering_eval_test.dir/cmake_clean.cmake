file(REMOVE_RECURSE
  "CMakeFiles/clustering_eval_test.dir/clustering_eval_test.cc.o"
  "CMakeFiles/clustering_eval_test.dir/clustering_eval_test.cc.o.d"
  "clustering_eval_test"
  "clustering_eval_test.pdb"
  "clustering_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
