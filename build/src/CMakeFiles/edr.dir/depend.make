# Empty dependencies file for edr.
# This may be replaced when dependencies are built.
