file(REMOVE_RECURSE
  "libedr.a"
)
