
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset.cc" "src/CMakeFiles/edr.dir/core/dataset.cc.o" "gcc" "src/CMakeFiles/edr.dir/core/dataset.cc.o.d"
  "/root/repo/src/core/normalize.cc" "src/CMakeFiles/edr.dir/core/normalize.cc.o" "gcc" "src/CMakeFiles/edr.dir/core/normalize.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/CMakeFiles/edr.dir/core/rng.cc.o" "gcc" "src/CMakeFiles/edr.dir/core/rng.cc.o.d"
  "/root/repo/src/core/trajectory.cc" "src/CMakeFiles/edr.dir/core/trajectory.cc.o" "gcc" "src/CMakeFiles/edr.dir/core/trajectory.cc.o.d"
  "/root/repo/src/core/trajectory3.cc" "src/CMakeFiles/edr.dir/core/trajectory3.cc.o" "gcc" "src/CMakeFiles/edr.dir/core/trajectory3.cc.o.d"
  "/root/repo/src/data/features.cc" "src/CMakeFiles/edr.dir/data/features.cc.o" "gcc" "src/CMakeFiles/edr.dir/data/features.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/edr.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/edr.dir/data/generators.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/edr.dir/data/io.cc.o" "gcc" "src/CMakeFiles/edr.dir/data/io.cc.o.d"
  "/root/repo/src/data/noise.cc" "src/CMakeFiles/edr.dir/data/noise.cc.o" "gcc" "src/CMakeFiles/edr.dir/data/noise.cc.o.d"
  "/root/repo/src/data/simplify.cc" "src/CMakeFiles/edr.dir/data/simplify.cc.o" "gcc" "src/CMakeFiles/edr.dir/data/simplify.cc.o.d"
  "/root/repo/src/distance/distance.cc" "src/CMakeFiles/edr.dir/distance/distance.cc.o" "gcc" "src/CMakeFiles/edr.dir/distance/distance.cc.o.d"
  "/root/repo/src/distance/distance3.cc" "src/CMakeFiles/edr.dir/distance/distance3.cc.o" "gcc" "src/CMakeFiles/edr.dir/distance/distance3.cc.o.d"
  "/root/repo/src/distance/dtw.cc" "src/CMakeFiles/edr.dir/distance/dtw.cc.o" "gcc" "src/CMakeFiles/edr.dir/distance/dtw.cc.o.d"
  "/root/repo/src/distance/edr.cc" "src/CMakeFiles/edr.dir/distance/edr.cc.o" "gcc" "src/CMakeFiles/edr.dir/distance/edr.cc.o.d"
  "/root/repo/src/distance/erp.cc" "src/CMakeFiles/edr.dir/distance/erp.cc.o" "gcc" "src/CMakeFiles/edr.dir/distance/erp.cc.o.d"
  "/root/repo/src/distance/euclidean.cc" "src/CMakeFiles/edr.dir/distance/euclidean.cc.o" "gcc" "src/CMakeFiles/edr.dir/distance/euclidean.cc.o.d"
  "/root/repo/src/distance/frechet.cc" "src/CMakeFiles/edr.dir/distance/frechet.cc.o" "gcc" "src/CMakeFiles/edr.dir/distance/frechet.cc.o.d"
  "/root/repo/src/distance/lcss.cc" "src/CMakeFiles/edr.dir/distance/lcss.cc.o" "gcc" "src/CMakeFiles/edr.dir/distance/lcss.cc.o.d"
  "/root/repo/src/eval/classification.cc" "src/CMakeFiles/edr.dir/eval/classification.cc.o" "gcc" "src/CMakeFiles/edr.dir/eval/classification.cc.o.d"
  "/root/repo/src/eval/clustering_eval.cc" "src/CMakeFiles/edr.dir/eval/clustering_eval.cc.o" "gcc" "src/CMakeFiles/edr.dir/eval/clustering_eval.cc.o.d"
  "/root/repo/src/eval/epsilon.cc" "src/CMakeFiles/edr.dir/eval/epsilon.cc.o" "gcc" "src/CMakeFiles/edr.dir/eval/epsilon.cc.o.d"
  "/root/repo/src/eval/linkage.cc" "src/CMakeFiles/edr.dir/eval/linkage.cc.o" "gcc" "src/CMakeFiles/edr.dir/eval/linkage.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/edr.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/edr.dir/eval/metrics.cc.o.d"
  "/root/repo/src/index/bplus_tree.cc" "src/CMakeFiles/edr.dir/index/bplus_tree.cc.o" "gcc" "src/CMakeFiles/edr.dir/index/bplus_tree.cc.o.d"
  "/root/repo/src/index/rstar_tree.cc" "src/CMakeFiles/edr.dir/index/rstar_tree.cc.o" "gcc" "src/CMakeFiles/edr.dir/index/rstar_tree.cc.o.d"
  "/root/repo/src/index/vp_tree.cc" "src/CMakeFiles/edr.dir/index/vp_tree.cc.o" "gcc" "src/CMakeFiles/edr.dir/index/vp_tree.cc.o.d"
  "/root/repo/src/pruning/combined.cc" "src/CMakeFiles/edr.dir/pruning/combined.cc.o" "gcc" "src/CMakeFiles/edr.dir/pruning/combined.cc.o.d"
  "/root/repo/src/pruning/cse.cc" "src/CMakeFiles/edr.dir/pruning/cse.cc.o" "gcc" "src/CMakeFiles/edr.dir/pruning/cse.cc.o.d"
  "/root/repo/src/pruning/histogram.cc" "src/CMakeFiles/edr.dir/pruning/histogram.cc.o" "gcc" "src/CMakeFiles/edr.dir/pruning/histogram.cc.o.d"
  "/root/repo/src/pruning/histogram_knn.cc" "src/CMakeFiles/edr.dir/pruning/histogram_knn.cc.o" "gcc" "src/CMakeFiles/edr.dir/pruning/histogram_knn.cc.o.d"
  "/root/repo/src/pruning/lcss_knn.cc" "src/CMakeFiles/edr.dir/pruning/lcss_knn.cc.o" "gcc" "src/CMakeFiles/edr.dir/pruning/lcss_knn.cc.o.d"
  "/root/repo/src/pruning/near_triangle.cc" "src/CMakeFiles/edr.dir/pruning/near_triangle.cc.o" "gcc" "src/CMakeFiles/edr.dir/pruning/near_triangle.cc.o.d"
  "/root/repo/src/pruning/persistence.cc" "src/CMakeFiles/edr.dir/pruning/persistence.cc.o" "gcc" "src/CMakeFiles/edr.dir/pruning/persistence.cc.o.d"
  "/root/repo/src/pruning/pruning3.cc" "src/CMakeFiles/edr.dir/pruning/pruning3.cc.o" "gcc" "src/CMakeFiles/edr.dir/pruning/pruning3.cc.o.d"
  "/root/repo/src/pruning/qgram.cc" "src/CMakeFiles/edr.dir/pruning/qgram.cc.o" "gcc" "src/CMakeFiles/edr.dir/pruning/qgram.cc.o.d"
  "/root/repo/src/pruning/qgram_knn.cc" "src/CMakeFiles/edr.dir/pruning/qgram_knn.cc.o" "gcc" "src/CMakeFiles/edr.dir/pruning/qgram_knn.cc.o.d"
  "/root/repo/src/query/engine.cc" "src/CMakeFiles/edr.dir/query/engine.cc.o" "gcc" "src/CMakeFiles/edr.dir/query/engine.cc.o.d"
  "/root/repo/src/query/knn.cc" "src/CMakeFiles/edr.dir/query/knn.cc.o" "gcc" "src/CMakeFiles/edr.dir/query/knn.cc.o.d"
  "/root/repo/src/query/parallel.cc" "src/CMakeFiles/edr.dir/query/parallel.cc.o" "gcc" "src/CMakeFiles/edr.dir/query/parallel.cc.o.d"
  "/root/repo/src/query/subtrajectory.cc" "src/CMakeFiles/edr.dir/query/subtrajectory.cc.o" "gcc" "src/CMakeFiles/edr.dir/query/subtrajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
