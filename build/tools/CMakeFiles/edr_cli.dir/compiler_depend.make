# Empty compiler generated dependencies file for edr_cli.
# This may be replaced when dependencies are built.
