file(REMOVE_RECURSE
  "CMakeFiles/edr_cli.dir/edr_cli.cc.o"
  "CMakeFiles/edr_cli.dir/edr_cli.cc.o.d"
  "edr_cli"
  "edr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
