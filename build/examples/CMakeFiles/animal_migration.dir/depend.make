# Empty dependencies file for animal_migration.
# This may be replaced when dependencies are built.
