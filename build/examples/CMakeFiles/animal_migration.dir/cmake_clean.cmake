file(REMOVE_RECURSE
  "CMakeFiles/animal_migration.dir/animal_migration.cpp.o"
  "CMakeFiles/animal_migration.dir/animal_migration.cpp.o.d"
  "animal_migration"
  "animal_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animal_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
