# Empty compiler generated dependencies file for video_surveillance.
# This may be replaced when dependencies are built.
