file(REMOVE_RECURSE
  "CMakeFiles/video_surveillance.dir/video_surveillance.cpp.o"
  "CMakeFiles/video_surveillance.dir/video_surveillance.cpp.o.d"
  "video_surveillance"
  "video_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
