# Empty dependencies file for flight_paths.
# This may be replaced when dependencies are built.
