file(REMOVE_RECURSE
  "CMakeFiles/flight_paths.dir/flight_paths.cpp.o"
  "CMakeFiles/flight_paths.dir/flight_paths.cpp.o.d"
  "flight_paths"
  "flight_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
