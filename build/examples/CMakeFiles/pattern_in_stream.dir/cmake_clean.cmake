file(REMOVE_RECURSE
  "CMakeFiles/pattern_in_stream.dir/pattern_in_stream.cpp.o"
  "CMakeFiles/pattern_in_stream.dir/pattern_in_stream.cpp.o.d"
  "pattern_in_stream"
  "pattern_in_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_in_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
