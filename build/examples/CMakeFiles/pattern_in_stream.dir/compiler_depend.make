# Empty compiler generated dependencies file for pattern_in_stream.
# This may be replaced when dependencies are built.
