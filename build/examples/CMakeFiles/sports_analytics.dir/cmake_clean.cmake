file(REMOVE_RECURSE
  "CMakeFiles/sports_analytics.dir/sports_analytics.cpp.o"
  "CMakeFiles/sports_analytics.dir/sports_analytics.cpp.o.d"
  "sports_analytics"
  "sports_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sports_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
