# Empty dependencies file for sports_analytics.
# This may be replaced when dependencies are built.
