#include "index/vp_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/rng.h"
#include "distance/edr.h"
#include "distance/erp.h"
#include "test_util.h"

namespace edr {
namespace {

std::vector<Neighbor> BruteKnn(
    size_t n, const std::function<double(uint32_t)>& distance, size_t k) {
  KnnResultList list(k);
  for (uint32_t i = 0; i < n; ++i) list.Offer(i, distance(i));
  std::vector<Neighbor> out = std::move(list).TakeNeighbors();
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  return out;
}

TEST(VpTreeTest, EmptyAndSingle) {
  const VpTree empty(0, [](uint32_t, uint32_t) { return 0.0; });
  EXPECT_TRUE(empty.Knn([](uint32_t) { return 0.0; }, 3).empty());

  const VpTree one(1, [](uint32_t, uint32_t) { return 0.0; });
  const auto result = one.Knn([](uint32_t) { return 7.0; }, 3);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0u);
}

class VpTreePointMetricTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VpTreePointMetricTest, ExactForEuclideanPoints) {
  Rng rng(GetParam());
  const size_t n = static_cast<size_t>(rng.UniformInt(5, 400));
  std::vector<Point2> points;
  for (size_t i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
  }
  const VpTree tree(
      n,
      [&points](uint32_t a, uint32_t b) {
        return L2Dist(points[a], points[b]);
      },
      GetParam());

  for (int trial = 0; trial < 5; ++trial) {
    const Point2 q{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const auto oracle = [&points, q](uint32_t i) {
      return L2Dist(points[i], q);
    };
    const size_t k = static_cast<size_t>(rng.UniformInt(1, 10));
    const auto expected = BruteKnn(n, oracle, k);
    const auto actual = tree.Knn(oracle, k);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance);
    }
    // Range query against brute force.
    const double radius = rng.Uniform(0.2, 3.0);
    const auto in_range = tree.Range(oracle, radius);
    size_t brute = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (oracle(i) <= radius) ++brute;
    }
    EXPECT_EQ(in_range.size(), brute);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VpTreePointMetricTest,
                         ::testing::Range<uint64_t>(4000, 4010));

TEST(VpTreeTest, ExactForErpBecauseMetric) {
  // The paper's Section 2 claim made executable: ERP obeys the triangle
  // inequality, so a distance access method answers exactly.
  const TrajectoryDataset db = testutil::SmallDataset(4100, 70, 5, 40);
  const VpTree tree(db.size(), [&db](uint32_t a, uint32_t b) {
    return ErpDistance(db[a], db[b]);
  });
  for (const Trajectory& query : testutil::MakeQueries(db, 4101, 4)) {
    const auto oracle = [&db, &query](uint32_t i) {
      return ErpDistance(query, db[i]);
    };
    const auto expected = BruteKnn(db.size(), oracle, 8);
    const auto actual = tree.Knn(oracle, 8);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance) << i;
    }
  }
}

TEST(VpTreeTest, PrunesDistanceCallsOnClusteredData) {
  Rng rng(4200);
  std::vector<Point2> points;
  for (int cluster = 0; cluster < 10; ++cluster) {
    const Point2 center{cluster * 100.0, 0.0};
    for (int i = 0; i < 50; ++i) {
      points.push_back({center.x + rng.Gaussian(0.0, 0.5),
                        center.y + rng.Gaussian(0.0, 0.5)});
    }
  }
  const VpTree tree(points.size(), [&points](uint32_t a, uint32_t b) {
    return L2Dist(points[a], points[b]);
  });
  size_t calls = 0;
  const Point2 q = points[123];
  tree.Knn([&points, q](uint32_t i) { return L2Dist(points[i], q); }, 5,
           &calls);
  EXPECT_LT(calls, points.size() / 2);
}

TEST(VpTreeTest, NonMetricEdrCanLoseNeighbors) {
  // The reason the paper builds dedicated filters instead of a distance
  // access method: EDR's threshold quantization breaks the triangle
  // inequality. The classic "bridge" construction — cluster A at value 0,
  // bridge trajectories at 1, cluster B at 2, epsilon = 1 — has
  // EDR(A, bridge) = EDR(bridge, B) = 0 yet EDR(A, B) = length, so the
  // VP-tree's triangle bounds are wildly wrong and it prunes subtrees
  // holding true neighbors. At least one false dismissal must occur over
  // the seed sweep; if EDR were safe to index this way, this would fail.
  size_t mismatches = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    TrajectoryDataset db;
    const auto flat = [&rng](double value, size_t length) {
      Trajectory t;
      for (size_t i = 0; i < length; ++i) {
        t.Append(value + rng.Uniform(-0.05, 0.05), 0.0);
      }
      return t;
    };
    for (int i = 0; i < 20; ++i) db.Add(flat(0.0, 20 + (i % 5)));
    for (int i = 0; i < 20; ++i) db.Add(flat(1.0, 20 + (i % 5)));
    for (int i = 0; i < 20; ++i) db.Add(flat(2.0, 20 + (i % 5)));
    const double eps = 1.0;
    const VpTree tree(
        db.size(),
        [&db, eps](uint32_t a, uint32_t b) {
          return static_cast<double>(EdrDistance(db[a], db[b], eps));
        },
        seed);
    const Trajectory query = flat(0.0, 22);
    const auto oracle = [&db, &query, eps](uint32_t i) {
      return static_cast<double>(EdrDistance(query, db[i], eps));
    };
    const auto expected = BruteKnn(db.size(), oracle, 10);
    const auto actual = tree.Knn(oracle, 10);
    for (size_t i = 0; i < expected.size(); ++i) {
      if (i >= actual.size() || actual[i].distance != expected[i].distance) {
        ++mismatches;
        break;
      }
    }
  }
  EXPECT_GT(mismatches, 0u);
}

}  // namespace
}  // namespace edr
