#include "pruning/qgram_knn.h"

#include <gtest/gtest.h>

#include <tuple>

#include "query/knn.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(QgramVariantTest, NamesMatchPaper) {
  EXPECT_STREQ(QgramVariantName(QgramVariant::kRtree2D), "PR");
  EXPECT_STREQ(QgramVariantName(QgramVariant::kBtree1D), "PB");
  EXPECT_STREQ(QgramVariantName(QgramVariant::kMerge2D), "PS2");
  EXPECT_STREQ(QgramVariantName(QgramVariant::kMerge1D), "PS1");
}

TEST(QgramKnnTest, SearcherNameIncludesQ) {
  const TrajectoryDataset db = testutil::SmallDataset(1, 10);
  const QgramKnnSearcher searcher(db, kEps, 3, QgramVariant::kMerge2D);
  EXPECT_EQ(searcher.name(), "PS2(q=3)");
}

TEST(QgramKnnTest, AllVariantsAgreeOnMatchCountsSemantics) {
  // PR and PS2 count the same quantity (2-D mean matches); PB and PS1
  // likewise (1-D x-projection mean matches).
  const TrajectoryDataset db = testutil::SmallDataset(2, 40);
  const Trajectory query = db[3];
  for (const int q : {1, 2}) {
    const QgramKnnSearcher pr(db, kEps, q, QgramVariant::kRtree2D);
    const QgramKnnSearcher ps2(db, kEps, q, QgramVariant::kMerge2D);
    EXPECT_EQ(pr.MatchCounts(query), ps2.MatchCounts(query)) << "q=" << q;

    const QgramKnnSearcher pb(db, kEps, q, QgramVariant::kBtree1D);
    const QgramKnnSearcher ps1(db, kEps, q, QgramVariant::kMerge1D);
    EXPECT_EQ(pb.MatchCounts(query), ps1.MatchCounts(query)) << "q=" << q;
  }
}

TEST(QgramKnnTest, TwoDimensionalCountsNeverExceedOneDimensional) {
  // A 2-D match requires both dimensions to match, so the 2-D counter is
  // at most the 1-D counter (why PR/PS2 prune more than PB/PS1).
  const TrajectoryDataset db = testutil::SmallDataset(3, 40);
  const Trajectory query = db[5];
  const QgramKnnSearcher ps2(db, kEps, 1, QgramVariant::kMerge2D);
  const QgramKnnSearcher ps1(db, kEps, 1, QgramVariant::kMerge1D);
  const std::vector<size_t> c2 = ps2.MatchCounts(query);
  const std::vector<size_t> c1 = ps1.MatchCounts(query);
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_LE(c2[i], c1[i]);
  }
}

TEST(QgramKnnTest, SelfQueryFindsSelfFirst) {
  const TrajectoryDataset db = testutil::SmallDataset(4, 30);
  const QgramKnnSearcher searcher(db, kEps, 1, QgramVariant::kMerge2D);
  const KnnResult result = searcher.Knn(db[7], 1);
  ASSERT_EQ(result.neighbors.size(), 1u);
  EXPECT_EQ(result.neighbors[0].distance, 0.0);
  EXPECT_EQ(result.neighbors[0].id, 7u);
}

using VariantAndQ = std::tuple<QgramVariant, int, uint64_t>;

class QgramKnnLosslessTest : public ::testing::TestWithParam<VariantAndQ> {};

TEST_P(QgramKnnLosslessTest, MatchesSequentialScan) {
  const auto [variant, q, seed] = GetParam();
  const TrajectoryDataset db = testutil::SmallDataset(seed, 80, 8, 60);
  const QgramKnnSearcher searcher(db, kEps, q, variant);
  for (const Trajectory& query : testutil::MakeQueries(db, seed ^ 0xFF, 4)) {
    const KnnResult expected = SequentialScanKnn(db, query, 10, kEps);
    const KnnResult actual = searcher.Knn(query, 10);
    EXPECT_TRUE(SameKnnDistances(expected, actual)) << searcher.name();
    EXPECT_LE(actual.stats.edr_computed, actual.stats.db_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QgramKnnLosslessTest,
    ::testing::Combine(::testing::Values(QgramVariant::kRtree2D,
                                         QgramVariant::kBtree1D,
                                         QgramVariant::kMerge2D,
                                         QgramVariant::kMerge1D),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(401, 402)));

TEST(QgramKnnTest, KLargerThanDatabaseReturnsEverything) {
  const TrajectoryDataset db = testutil::SmallDataset(5, 12);
  const QgramKnnSearcher searcher(db, kEps, 1, QgramVariant::kMerge2D);
  const KnnResult result = searcher.Knn(db[0], 50);
  EXPECT_EQ(result.neighbors.size(), db.size());
}

TEST(QgramKnnTest, PruningActuallyHappensOnSeparatedData) {
  // Construct a database where most trajectories are far from the query:
  // the count filter must prune them.
  Rng rng(6);
  TrajectoryDataset db;
  // 5 trajectories near the origin-anchored query shape.
  const Trajectory base = testutil::RandomWalk(rng, 40, 0.2);
  for (int i = 0; i < 5; ++i) {
    Trajectory t = base;
    t[static_cast<size_t>(i)] = {t[static_cast<size_t>(i)].x + 0.05,
                                 t[static_cast<size_t>(i)].y};
    db.Add(std::move(t));
  }
  // 60 trajectories translated far away (no gram can match).
  for (int i = 0; i < 60; ++i) {
    Trajectory t = testutil::RandomWalk(rng, 40, 0.2);
    for (Point2& p : t.mutable_points()) {
      p.x += 100.0;
      p.y += 100.0;
    }
    db.Add(std::move(t));
  }
  const QgramKnnSearcher searcher(db, kEps, 1, QgramVariant::kMerge2D);
  const KnnResult result = searcher.Knn(base, 3);
  const KnnResult expected = SequentialScanKnn(db, base, 3, kEps);
  EXPECT_TRUE(SameKnnDistances(expected, result));
  EXPECT_LT(result.stats.edr_computed, db.size() / 2);
  EXPECT_GT(result.stats.PruningPower(), 0.4);
}

}  // namespace
}  // namespace edr
