#include "eval/classification.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "distance/edr.h"
#include "distance/euclidean.h"

namespace edr {
namespace {

TrajectoryDataset SeparatedClasses(int classes, int per_class,
                                   uint64_t seed) {
  Rng rng(seed);
  TrajectoryDataset db;
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < per_class; ++i) {
      Trajectory t;
      for (int j = 0; j < 20; ++j) {
        t.Append(c * 50.0 + rng.Gaussian(0.0, 0.1),
                 rng.Gaussian(0.0, 0.1));
      }
      t.set_label(c);
      db.Add(std::move(t));
    }
  }
  return db;
}

TEST(ClassificationTest, SeparableClassesGiveZeroError) {
  const TrajectoryDataset db = SeparatedClasses(4, 5, 111);
  const double error =
      LeaveOneOutError(db, [](const Trajectory& a, const Trajectory& b) {
        return SlidingEuclideanDistance(a, b);
      });
  EXPECT_DOUBLE_EQ(error, 0.0);
}

TEST(ClassificationTest, EdrAlsoZeroErrorOnSeparableClasses) {
  const TrajectoryDataset db = SeparatedClasses(4, 5, 112);
  const double error =
      LeaveOneOutError(db, [](const Trajectory& a, const Trajectory& b) {
        return static_cast<double>(EdrDistance(a, b, 0.25));
      });
  EXPECT_DOUBLE_EQ(error, 0.0);
}

TEST(ClassificationTest, UselessDistanceHasHighError) {
  const TrajectoryDataset db = SeparatedClasses(4, 5, 113);
  // Constant distance: prediction is effectively the first other
  // trajectory's label, wrong for most items.
  const double error = LeaveOneOutError(
      db, [](const Trajectory&, const Trajectory&) { return 1.0; });
  EXPECT_GT(error, 0.5);
}

TEST(ClassificationTest, ErrorIsAFraction) {
  const TrajectoryDataset db = SeparatedClasses(2, 3, 114);
  const double error = LeaveOneOutError(
      db, [](const Trajectory& a, const Trajectory& b) {
        return SlidingEuclideanDistance(a, b);
      });
  EXPECT_GE(error, 0.0);
  EXPECT_LE(error, 1.0);
}

TEST(ClassificationTest, TinyDatasetIsZero) {
  TrajectoryDataset db;
  EXPECT_DOUBLE_EQ(LeaveOneOutError(db, nullptr), 0.0);
  db.Add(Trajectory({{0.0, 0.0}}, 0));
  EXPECT_DOUBLE_EQ(LeaveOneOutError(db, nullptr), 0.0);
}

}  // namespace
}  // namespace edr
