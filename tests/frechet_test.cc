#include "distance/frechet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "distance/dtw.h"
#include "test_util.h"

namespace edr {
namespace {

Trajectory Seq(std::initializer_list<double> xs) {
  Trajectory t;
  for (const double x : xs) t.Append(x, 0.0);
  return t;
}

TEST(FrechetTest, EmptyCases) {
  EXPECT_DOUBLE_EQ(DiscreteFrechetDistance(Trajectory(), Trajectory()), 0.0);
  EXPECT_TRUE(std::isinf(DiscreteFrechetDistance(Seq({1}), Trajectory())));
}

TEST(FrechetTest, IdenticalIsZero) {
  Rng rng(981);
  const Trajectory t = testutil::RandomWalk(rng, 20);
  EXPECT_DOUBLE_EQ(DiscreteFrechetDistance(t, t), 0.0);
}

TEST(FrechetTest, KnownLeashLength) {
  // Two parallel horizontal segments one unit apart: leash = 1.
  Trajectory a;
  Trajectory b;
  for (int i = 0; i < 5; ++i) {
    a.Append(static_cast<double>(i), 0.0);
    b.Append(static_cast<double>(i), 1.0);
  }
  EXPECT_DOUBLE_EQ(DiscreteFrechetDistance(a, b), 1.0);
}

TEST(FrechetTest, HandlesTimeShiftLikeDtw) {
  const Trajectory a = Seq({1, 2, 3});
  const Trajectory b = Seq({1, 1, 2, 2, 3, 3});
  EXPECT_DOUBLE_EQ(DiscreteFrechetDistance(a, b), 0.0);
}

TEST(FrechetTest, SymmetricAndLowerBoundsNothingButMaxPair) {
  Rng rng(982);
  for (int trial = 0; trial < 10; ++trial) {
    const Trajectory a = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(2, 30)));
    const Trajectory b = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(2, 30)));
    const double f = DiscreteFrechetDistance(a, b);
    EXPECT_DOUBLE_EQ(DiscreteFrechetDistance(b, a), f);
    // Frechet >= Hausdorff (every coupling covers all elements).
    EXPECT_GE(f + 1e-9, HausdorffDistance(a, b));
    // Frechet >= the forced first/last pairings.
    EXPECT_GE(f + 1e-9, L2Dist(a[0], b[0]));
    EXPECT_GE(f + 1e-9, L2Dist(a[a.size() - 1], b[b.size() - 1]));
  }
}

TEST(FrechetTest, SingleOutlierDominates) {
  // The noise sensitivity that motivates EDR, in its most extreme form.
  const Trajectory clean = Seq({1, 2, 3, 4});
  const Trajectory noisy = Seq({1, 100, 2, 3, 4});
  EXPECT_GT(DiscreteFrechetDistance(clean, noisy), 90.0);
}

TEST(HausdorffTest, EmptyCases) {
  EXPECT_DOUBLE_EQ(HausdorffDistance(Trajectory(), Trajectory()), 0.0);
  EXPECT_TRUE(std::isinf(HausdorffDistance(Seq({1}), Trajectory())));
}

TEST(HausdorffTest, KnownValue) {
  const Trajectory a = Seq({0, 1, 2});
  const Trajectory b = Seq({0, 1, 5});
  // Directed a->b: 0; directed b->a: |5-2| = 3.
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), 3.0);
}

TEST(HausdorffTest, IgnoresOrdering) {
  // Reversing a trajectory changes every sequence-based distance but not
  // Hausdorff — the reason it is too coarse for movement-shape retrieval.
  Rng rng(983);
  Trajectory t = testutil::RandomWalk(rng, 20);
  Trajectory reversed(
      std::vector<Point2>(t.points().rbegin(), t.points().rend()));
  EXPECT_DOUBLE_EQ(HausdorffDistance(t, reversed), 0.0);
  EXPECT_GT(DiscreteFrechetDistance(t, reversed), 0.0);
}

TEST(HausdorffTest, SymmetricAndTriangleInequality) {
  Rng rng(984);
  for (int trial = 0; trial < 15; ++trial) {
    const Trajectory a = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(2, 20)));
    const Trajectory b = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(2, 20)));
    const Trajectory c = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(2, 20)));
    EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), HausdorffDistance(b, a));
    // Hausdorff over point sets IS a metric; the paper's non-metric
    // citation concerns its *partial* variants used in image retrieval.
    EXPECT_LE(HausdorffDistance(a, c),
              HausdorffDistance(a, b) + HausdorffDistance(b, c) + 1e-9);
  }
}

}  // namespace
}  // namespace edr
