#include "core/trajectory.h"

#include <gtest/gtest.h>

namespace edr {
namespace {

TEST(TrajectoryTest, EmptyByDefault) {
  const Trajectory t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.label(), -1);
}

TEST(TrajectoryTest, AppendAndIndex) {
  Trajectory t;
  t.Append(1.0, 2.0);
  t.Append({3.0, 4.0});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], (Point2{1.0, 2.0}));
  EXPECT_EQ(t[1], (Point2{3.0, 4.0}));
}

TEST(TrajectoryTest, ConstructFromPointsWithLabel) {
  const Trajectory t({{0.0, 0.0}, {1.0, 1.0}}, 3);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.label(), 3);
}

TEST(TrajectoryTest, RangeForIteration) {
  const Trajectory t({{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}});
  double sum = 0.0;
  for (const Point2& p : t) sum += p.x;
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

TEST(TrajectoryTest, MeanOfKnownPoints) {
  const Trajectory t({{0.0, 2.0}, {2.0, 4.0}, {4.0, 6.0}});
  const Point2 mu = t.Mean();
  EXPECT_DOUBLE_EQ(mu.x, 2.0);
  EXPECT_DOUBLE_EQ(mu.y, 4.0);
}

TEST(TrajectoryTest, MeanOfEmptyIsOrigin) {
  const Trajectory t;
  EXPECT_EQ(t.Mean(), (Point2{0.0, 0.0}));
  EXPECT_EQ(t.StdDev(), (Point2{0.0, 0.0}));
}

TEST(TrajectoryTest, StdDevOfKnownPoints) {
  // x values {-1, 1}: population variance 1. y constant: variance 0.
  const Trajectory t({{-1.0, 5.0}, {1.0, 5.0}});
  const Point2 sigma = t.StdDev();
  EXPECT_DOUBLE_EQ(sigma.x, 1.0);
  EXPECT_DOUBLE_EQ(sigma.y, 0.0);
}

TEST(TrajectoryTest, EqualityComparesPointsOnly) {
  Trajectory a({{1.0, 2.0}}, 0);
  Trajectory b({{1.0, 2.0}}, 5);
  EXPECT_TRUE(a == b);  // Labels are metadata, not geometry.
}

TEST(TrajectoryTest, IdRoundTrip) {
  Trajectory t;
  t.set_id(17);
  EXPECT_EQ(t.id(), 17u);
}

TEST(MatchTest, WithinThresholdBothDimensions) {
  EXPECT_TRUE(Match({0.0, 0.0}, {0.5, -0.5}, 0.5));
  EXPECT_FALSE(Match({0.0, 0.0}, {0.51, 0.0}, 0.5));
  EXPECT_FALSE(Match({0.0, 0.0}, {0.0, 0.51}, 0.5));
  EXPECT_FALSE(Match({0.0, 0.0}, {0.51, 0.51}, 0.5));
}

TEST(MatchTest, BoundaryIsInclusive) {
  // Definition 1 uses <=.
  EXPECT_TRUE(Match({1.0, 1.0}, {2.0, 0.0}, 1.0));
}

TEST(TrajectoryTest, ToStringMentionsLengthAndLabel) {
  Trajectory t({{0.0, 0.0}}, 4);
  const std::string s = ToString(t);
  EXPECT_NE(s.find("len=1"), std::string::npos);
  EXPECT_NE(s.find("label=4"), std::string::npos);
}

}  // namespace
}  // namespace edr
