#include "core/status.h"

#include <gtest/gtest.h>

#include <string>

namespace edr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("epsilon must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "epsilon must be positive");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: epsilon must be positive");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace edr
