#include "pruning/persistence.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "query/knn.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PersistenceTest, MatrixRoundTrip) {
  const TrajectoryDataset db = testutil::SmallDataset(801, 30, 5, 40);
  const PairwiseEdrMatrix original = PairwiseEdrMatrix::Build(db, kEps, 12);

  const std::string path = TempPath("matrix.edrm");
  ASSERT_TRUE(SavePairwiseMatrix(original, path).ok());

  const Result<PairwiseEdrMatrix> loaded = LoadPairwiseMatrix(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_refs(), original.num_refs());
  EXPECT_EQ(loaded->db_size(), original.db_size());
  EXPECT_EQ(loaded->data(), original.data());
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadedMatrixDrivesLosslessSearch) {
  const TrajectoryDataset db = testutil::SmallDataset(802, 60, 5, 60);
  const std::string path = TempPath("matrix2.edrm");
  ASSERT_TRUE(
      SavePairwiseMatrix(PairwiseEdrMatrix::Build(db, kEps, 20), path).ok());
  Result<PairwiseEdrMatrix> loaded = LoadPairwiseMatrix(path);
  ASSERT_TRUE(loaded.ok());

  const NearTriangleSearcher searcher(db, kEps, std::move(loaded).value());
  for (const Trajectory& query : testutil::MakeQueries(db, 803, 3)) {
    EXPECT_TRUE(SameKnnDistances(SequentialScanKnn(db, query, 8, kEps),
                                 searcher.Knn(query, 8)));
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, MissingFileIsIoError) {
  const Result<PairwiseEdrMatrix> r =
      LoadPairwiseMatrix("/nonexistent/matrix.edrm");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(PersistenceTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.edrm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE and then some bytes";
  }
  const Result<PairwiseEdrMatrix> r = LoadPairwiseMatrix(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PersistenceTest, TruncatedPayloadRejected) {
  const TrajectoryDataset db = testutil::SmallDataset(804, 10);
  const std::string path = TempPath("truncated.edrm");
  ASSERT_TRUE(
      SavePairwiseMatrix(PairwiseEdrMatrix::Build(db, kEps, 5), path).ok());
  // Chop off the last bytes.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() - 10));
  }
  const Result<PairwiseEdrMatrix> r = LoadPairwiseMatrix(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(PersistenceTest, EmptyMatrixRoundTrips) {
  const PairwiseEdrMatrix empty = PairwiseEdrMatrix::FromParts(0, 0, {});
  const std::string path = TempPath("empty.edrm");
  ASSERT_TRUE(SavePairwiseMatrix(empty, path).ok());
  const Result<PairwiseEdrMatrix> r = LoadPairwiseMatrix(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_refs(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace edr
