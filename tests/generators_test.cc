#include "data/generators.h"

#include <gtest/gtest.h>

#include "distance/edr.h"

namespace edr {
namespace {

TEST(GeneratorsTest, RandomWalkCountsAndLengths) {
  RandomWalkOptions options;
  options.count = 100;
  options.min_length = 10;
  options.max_length = 50;
  const TrajectoryDataset db = GenRandomWalk(options);
  EXPECT_EQ(db.size(), 100u);
  for (const Trajectory& t : db) {
    EXPECT_GE(t.size(), 10u);
    EXPECT_LE(t.size(), 50u);
  }
}

TEST(GeneratorsTest, RandomWalkDeterministicPerSeed) {
  RandomWalkOptions options;
  options.count = 10;
  const TrajectoryDataset a = GenRandomWalk(options);
  const TrajectoryDataset b = GenRandomWalk(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
  options.seed = 999;
  const TrajectoryDataset c = GenRandomWalk(options);
  EXPECT_FALSE(a[0] == c[0]);
}

TEST(GeneratorsTest, NormalLengthsClusterAroundMidpoint) {
  RandomWalkOptions options;
  options.count = 500;
  options.min_length = 30;
  options.max_length = 256;
  options.length_distribution = LengthDistribution::kNormal;
  const TrajectoryDataset db = GenRandomWalk(options);
  double mean = 0.0;
  for (const Trajectory& t : db) mean += static_cast<double>(t.size());
  mean /= static_cast<double>(db.size());
  EXPECT_NEAR(mean, 143.0, 15.0);
}

TEST(GeneratorsTest, CameraMouseLikeShape) {
  const TrajectoryDataset db = GenCameraMouseLike();
  EXPECT_EQ(db.size(), 15u);  // 5 words x 3 instances, as in the paper.
  EXPECT_EQ(db.NumClasses(), 5u);
  for (const Trajectory& t : db) {
    EXPECT_GE(t.size(), 110u);
    EXPECT_LE(t.size(), 170u);
    EXPECT_GE(t.label(), 0);
    EXPECT_LT(t.label(), 5);
  }
}

TEST(GeneratorsTest, AslLikeShape) {
  const TrajectoryDataset db = GenAslLike();
  EXPECT_EQ(db.size(), 50u);  // 10 classes x 5, as in the paper.
  EXPECT_EQ(db.NumClasses(), 10u);
  for (const Trajectory& t : db) {
    EXPECT_GE(t.size(), 60u);
    EXPECT_LE(t.size(), 140u);
  }
}

TEST(GeneratorsTest, Asl710Variant) {
  const TrajectoryDataset db = GenAslLike(10, 71);
  EXPECT_EQ(db.size(), 710u);  // The pruning-experiment variant.
}

TEST(GeneratorsTest, KungfuAndSlipAreFixedLength) {
  const TrajectoryDataset kungfu = GenKungfuLike(20, 640);
  for (const Trajectory& t : kungfu) EXPECT_EQ(t.size(), 640u);
  const TrajectoryDataset slip = GenSlipLike(20, 400);
  for (const Trajectory& t : slip) EXPECT_EQ(t.size(), 400u);
}

TEST(GeneratorsTest, NhlLikeStaysOnRink) {
  const TrajectoryDataset db = GenNhlLike(50);
  for (const Trajectory& t : db) {
    EXPECT_GE(t.size(), 30u);
    EXPECT_LE(t.size(), 256u);
    for (const Point2& p : t) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 200.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 85.0);
    }
  }
}

TEST(GeneratorsTest, MixedLikeLengthSpread) {
  const TrajectoryDataset db = GenMixedLike(60, 60, 500);
  EXPECT_EQ(db.size(), 60u);
  size_t min_len = 10000;
  size_t max_len = 0;
  for (const Trajectory& t : db) {
    min_len = std::min(min_len, t.size());
    max_len = std::max(max_len, t.size());
  }
  EXPECT_GE(min_len, 60u);
  EXPECT_LE(max_len, 500u);
  EXPECT_GT(max_len - min_len, 100u);  // Genuinely mixed lengths.
}

TEST(GeneratorsTest, AslLikeClassesAreSeparable) {
  // The whole point of the class-structured stand-ins: same-class
  // trajectories must be closer under EDR than cross-class ones, after
  // normalization, or the efficacy experiments would be meaningless.
  TrajectoryDataset db = GenAslLike(4, 3, 99);
  db.NormalizeAll();
  const double eps = 0.25;
  double intra = 0.0;
  int intra_count = 0;
  double inter = 0.0;
  int inter_count = 0;
  for (size_t i = 0; i < db.size(); ++i) {
    for (size_t j = i + 1; j < db.size(); ++j) {
      // Normalize by max length to make pairs comparable.
      const double d =
          static_cast<double>(EdrDistance(db[i], db[j], eps)) /
          static_cast<double>(std::max(db[i].size(), db[j].size()));
      if (db[i].label() == db[j].label()) {
        intra += d;
        ++intra_count;
      } else {
        inter += d;
        ++inter_count;
      }
    }
  }
  EXPECT_LT(intra / intra_count, inter / inter_count);
}

}  // namespace
}  // namespace edr
