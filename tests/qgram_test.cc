#include "pruning/qgram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/rng.h"
#include "distance/edr.h"
#include "test_util.h"

namespace edr {
namespace {

TEST(QgramTest, MeanValueQgramsSize1AreThePointsThemselves) {
  const Trajectory t({{1, 2}, {3, 4}, {5, 6}});
  const std::vector<Point2> means = MeanValueQgrams(t, 1);
  ASSERT_EQ(means.size(), 3u);
  EXPECT_EQ(means[0], (Point2{1, 2}));
  EXPECT_EQ(means[2], (Point2{5, 6}));
}

TEST(QgramTest, MeanValueQgramsPaperExample) {
  // Section 4.1: S = [(1,2),(3,4),(5,6),(7,8),(9,10)], Q-grams of size 3
  // have mean value pairs (3,4), (5,6), (7,8).
  const Trajectory s({{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}});
  const std::vector<Point2> means = MeanValueQgrams(s, 3);
  ASSERT_EQ(means.size(), 3u);
  EXPECT_EQ(means[0], (Point2{3, 4}));
  EXPECT_EQ(means[1], (Point2{5, 6}));
  EXPECT_EQ(means[2], (Point2{7, 8}));
}

TEST(QgramTest, GramCountIsLengthMinusQPlusOne) {
  Rng rng(91);
  const Trajectory t = testutil::RandomWalk(rng, 20);
  for (int q = 1; q <= 4; ++q) {
    EXPECT_EQ(MeanValueQgrams(t, q).size(), 20u - static_cast<size_t>(q) + 1);
  }
}

TEST(QgramTest, TooShortTrajectoryHasNoGrams) {
  const Trajectory t({{0, 0}, {1, 1}});
  EXPECT_TRUE(MeanValueQgrams(t, 3).empty());
  EXPECT_TRUE(MeanValueQgrams1D(t, 3, true).empty());
  EXPECT_TRUE(MeanValueQgrams(Trajectory(), 1).empty());
}

TEST(QgramTest, InvalidQYieldsNoGrams) {
  const Trajectory t({{0, 0}, {1, 1}});
  EXPECT_TRUE(MeanValueQgrams(t, 0).empty());
  EXPECT_TRUE(MeanValueQgrams(t, -2).empty());
}

TEST(QgramTest, OneDimensionalMeansAreProjections) {
  Rng rng(92);
  const Trajectory t = testutil::RandomWalk(rng, 15);
  for (int q = 1; q <= 3; ++q) {
    const std::vector<Point2> full = MeanValueQgrams(t, q);
    const std::vector<double> xs = MeanValueQgrams1D(t, q, /*use_x=*/true);
    const std::vector<double> ys = MeanValueQgrams1D(t, q, /*use_x=*/false);
    ASSERT_EQ(full.size(), xs.size());
    ASSERT_EQ(full.size(), ys.size());
    for (size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i].x, xs[i], 1e-12);
      EXPECT_NEAR(full[i].y, ys[i], 1e-12);
    }
  }
}

TEST(QgramTest, Theorem2GramMatchImpliesMeanMatch) {
  // If two grams match element-wise within eps, their means match too.
  Rng rng(93);
  constexpr double kEps = 0.3;
  for (int trial = 0; trial < 50; ++trial) {
    const int q = static_cast<int>(rng.UniformInt(1, 4));
    Trajectory a;
    Trajectory b;
    for (int i = 0; i < q; ++i) {
      const Point2 p{rng.Gaussian(), rng.Gaussian()};
      a.Append(p);
      b.Append({p.x + rng.Uniform(-kEps, kEps),
                p.y + rng.Uniform(-kEps, kEps)});
    }
    const Point2 mean_a = MeanValueQgrams(a, q)[0];
    const Point2 mean_b = MeanValueQgrams(b, q)[0];
    EXPECT_TRUE(Match(mean_a, mean_b, kEps));
  }
}

TEST(QgramTest, ThresholdFormula) {
  // p = max(m, n) - q + 1 - k*q (Theorem 1).
  EXPECT_EQ(QgramCountThreshold(10, 20, 2, 3), 20 - 2 + 1 - 6);
  EXPECT_EQ(QgramCountThreshold(20, 10, 2, 3), 20 - 2 + 1 - 6);
  EXPECT_EQ(QgramCountThreshold(5, 5, 1, 10), 5 - 1 + 1 - 10);  // negative OK
}

size_t BruteForceCount2D(const std::vector<Point2>& q_means,
                         const std::vector<Point2>& s_means, double eps) {
  size_t count = 0;
  for (const Point2& qm : q_means) {
    for (const Point2& sm : s_means) {
      if (Match(qm, sm, eps)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

TEST(QgramTest, CountMatchingMeans2DMatchesBruteForce) {
  Rng rng(94);
  for (int trial = 0; trial < 40; ++trial) {
    const Trajectory a = testutil::RandomWalk(rng, 30);
    const Trajectory b = testutil::RandomWalk(rng, 25);
    const int q = static_cast<int>(rng.UniformInt(1, 4));
    const double eps = rng.Uniform(0.05, 0.8);
    std::vector<Point2> qa = MeanValueQgrams(a, q);
    std::vector<Point2> qb = MeanValueQgrams(b, q);
    const size_t brute = BruteForceCount2D(qa, qb, eps);
    SortMeans(qa);
    SortMeans(qb);
    EXPECT_EQ(CountMatchingMeans2D(qa, qb, eps), brute);
  }
}

TEST(QgramTest, CountMatchingMeans1DMatchesBruteForce) {
  Rng rng(95);
  for (int trial = 0; trial < 40; ++trial) {
    const Trajectory a = testutil::RandomWalk(rng, 30);
    const Trajectory b = testutil::RandomWalk(rng, 25);
    const int q = static_cast<int>(rng.UniformInt(1, 4));
    const double eps = rng.Uniform(0.05, 0.8);
    std::vector<double> qa = MeanValueQgrams1D(a, q, true);
    std::vector<double> qb = MeanValueQgrams1D(b, q, true);
    size_t brute = 0;
    for (const double x : qa) {
      for (const double y : qb) {
        if (std::fabs(x - y) <= eps) {
          ++brute;
          break;
        }
      }
    }
    std::sort(qa.begin(), qa.end());
    std::sort(qb.begin(), qb.end());
    EXPECT_EQ(CountMatchingMeans1D(qa, qb, eps), brute);
  }
}

class QgramSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QgramSoundnessTest, CountBoundNeverViolatedByTrueEdr) {
  // The heart of Theorem 1/3/4 soundness: for any pair, the number of
  // matching mean Q-grams is at least max(m,n)-q+1-EDR*q, in 2-D and in
  // each projected dimension.
  Rng rng(GetParam());
  constexpr double kEps = 0.25;
  for (int trial = 0; trial < 10; ++trial) {
    const Trajectory a =
        testutil::RandomWalk(rng, static_cast<size_t>(rng.UniformInt(5, 50)));
    const Trajectory b =
        testutil::RandomWalk(rng, static_cast<size_t>(rng.UniformInt(5, 50)));
    const long k = EdrDistance(a, b, kEps);
    for (int q = 1; q <= 4; ++q) {
      const long threshold = QgramCountThreshold(a.size(), b.size(), q, k);

      std::vector<Point2> qa = MeanValueQgrams(a, q);
      std::vector<Point2> qb = MeanValueQgrams(b, q);
      SortMeans(qa);
      SortMeans(qb);
      EXPECT_GE(static_cast<long>(CountMatchingMeans2D(qa, qb, kEps)),
                threshold)
          << "q=" << q << " k=" << k;

      for (const bool use_x : {true, false}) {
        std::vector<double> pa = MeanValueQgrams1D(a, q, use_x);
        std::vector<double> pb = MeanValueQgrams1D(b, q, use_x);
        std::sort(pa.begin(), pa.end());
        std::sort(pb.begin(), pb.end());
        EXPECT_GE(static_cast<long>(CountMatchingMeans1D(pa, pb, kEps)),
                  threshold)
            << "q=" << q << " k=" << k << " use_x=" << use_x;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QgramSoundnessTest,
                         ::testing::Range<uint64_t>(300, 315));

}  // namespace
}  // namespace edr
