#include "query/engine.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(QueryEngineTest, SearchersAreCached) {
  const TrajectoryDataset db = testutil::SmallDataset(71, 30);
  QueryEngine engine(db, kEps);
  const QgramKnnSearcher& a = engine.Qgram(QgramVariant::kMerge2D, 1);
  const QgramKnnSearcher& b = engine.Qgram(QgramVariant::kMerge2D, 1);
  EXPECT_EQ(&a, &b);
  const QgramKnnSearcher& c = engine.Qgram(QgramVariant::kMerge2D, 2);
  EXPECT_NE(&a, &c);

  const HistogramKnnSearcher& h1 =
      engine.Histogram(HistogramTable::Kind::k2D, 1, HistogramScan::kSorted);
  const HistogramKnnSearcher& h2 =
      engine.Histogram(HistogramTable::Kind::k2D, 1, HistogramScan::kSorted);
  EXPECT_EQ(&h1, &h2);
}

TEST(QueryEngineTest, MatrixSharedBetweenNtrAndCse) {
  const TrajectoryDataset db = testutil::SmallDataset(72, 25);
  QueryEngine engine(db, kEps);
  // Both use the same max_triangle; building one then the other must not
  // recompute the matrix (observable only via behavior equality here).
  const NearTriangleSearcher& ntr = engine.NearTriangle(10);
  const CseSearcher& cse = engine.Cse(10);
  EXPECT_EQ(ntr.matrix().num_refs(), 10u);
  EXPECT_GE(cse.shift(), 0.0);
}

TEST(QueryEngineTest, EveryNamedSearcherIsLossless) {
  const TrajectoryDataset db = testutil::SmallDataset(73, 60, 6, 50);
  QueryEngine engine(db, kEps);

  std::vector<NamedSearcher> searchers;
  searchers.push_back(engine.MakeSeqScan(true));
  searchers.push_back(engine.MakeQgram(QgramVariant::kRtree2D, 1));
  searchers.push_back(engine.MakeQgram(QgramVariant::kBtree1D, 1));
  searchers.push_back(engine.MakeQgram(QgramVariant::kMerge2D, 1));
  searchers.push_back(engine.MakeQgram(QgramVariant::kMerge1D, 1));
  searchers.push_back(engine.MakeNearTriangle(15));
  searchers.push_back(engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                                           HistogramScan::kSorted));
  searchers.push_back(engine.MakeHistogram(HistogramTable::Kind::k1D, 1,
                                           HistogramScan::kSequential));
  CombinedOptions combo;
  combo.max_triangle = 15;
  searchers.push_back(engine.MakeCombined(combo));
  combo.histogram_kind = HistogramTable::Kind::k1D;
  searchers.push_back(engine.MakeCombined(combo));

  for (const Trajectory& query : testutil::MakeQueries(db, 74, 3)) {
    const KnnResult expected = engine.SeqScan(query, 8);
    for (const NamedSearcher& s : searchers) {
      const KnnResult actual = s.search(query, 8);
      EXPECT_TRUE(SameKnnDistances(expected, actual)) << s.name;
    }
  }
}

TEST(QueryEngineTest, CombinedCacheKeyedOnConfiguration) {
  const TrajectoryDataset db = testutil::SmallDataset(75, 20);
  QueryEngine engine(db, kEps);
  CombinedOptions a;
  a.max_triangle = 5;
  CombinedOptions b = a;
  b.q = 2;
  const CombinedKnnSearcher& sa = engine.Combined(a);
  const CombinedKnnSearcher& sb = engine.Combined(b);
  const CombinedKnnSearcher& sa2 = engine.Combined(a);
  EXPECT_NE(&sa, &sb);
  EXPECT_EQ(&sa, &sa2);
}

TEST(QueryEngineTest, NamesAreStable) {
  const TrajectoryDataset db = testutil::SmallDataset(76, 15);
  QueryEngine engine(db, kEps);
  EXPECT_EQ(engine.MakeSeqScan().name, "SeqScan");
  EXPECT_EQ(engine.MakeSeqScan(true).name, "SeqScan-EA");
  EXPECT_EQ(engine.MakeQgram(QgramVariant::kMerge2D, 1).name, "PS2(q=1)");
  EXPECT_EQ(engine.MakeNearTriangle(5).name, "NTR");
  EXPECT_EQ(engine.MakeCse(5).name, "CSE");
}

}  // namespace
}  // namespace edr
