#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "obs/json.h"
#include "obs/obs.h"
#include "query/thread_pool.h"

namespace edr {
namespace {

TEST(ObsTimelineTest, StartRejectsNonPositiveInterval) {
  TimelineSampler::Options options;
  options.interval_seconds = 0.0;
  TimelineSampler zero(options);
  EXPECT_FALSE(zero.Start());
  EXPECT_FALSE(zero.running());
  options.interval_seconds = -1.0;
  TimelineSampler negative(options);
  EXPECT_FALSE(negative.Start());
}

TEST(ObsTimelineTest, StartIsNoOpWhenObsCompiledOut) {
  TimelineSampler sampler;  // Default 20 ms interval.
  EXPECT_EQ(sampler.Start(), kObsEnabled);
  sampler.Stop();
  if constexpr (!kObsEnabled) {
    EXPECT_TRUE(sampler.Samples().empty());
  }
}

TEST(ObsTimelineTest, CapturesSamplesWithProbes) {
  if constexpr (!kObsEnabled) return;
  ThreadPool pool(2);
  std::atomic<size_t> cache_entries{5};
  TimelineSampler::Options options;
  options.interval_seconds = 0.002;
  options.pool = &pool;
  options.backlog = [] { return static_cast<size_t>(3); };
  options.cache_entries = [&cache_entries] { return cache_entries.load(); };
  TimelineSampler sampler(options);
  ASSERT_TRUE(sampler.Start());
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());

  const std::vector<UtilizationSample> samples = sampler.Samples();
  ASSERT_GE(samples.size(), 2u);  // Periodic ticks + the final sample.
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].capacity, 3u);  // 2 workers + caller.
    EXPECT_LE(samples[i].busy_workers, samples[i].capacity);
    EXPECT_EQ(samples[i].backlog, 3u);
    EXPECT_EQ(samples[i].cache_entries, 5u);
    if (i > 0) {
      EXPECT_GE(samples[i].t_seconds, samples[i - 1].t_seconds);
    }
  }

  const UtilizationSummary summary = sampler.Summarize();
  EXPECT_EQ(summary.samples, samples.size());
  EXPECT_DOUBLE_EQ(summary.mean_backlog, 3.0);
  EXPECT_EQ(summary.max_backlog, 3u);
  EXPECT_LE(summary.occupancy_p50, summary.occupancy_p95);
  EXPECT_LE(summary.occupancy_p95, summary.occupancy_max);
  EXPECT_LE(summary.occupancy_max, 1.0);
}

TEST(ObsTimelineTest, RingBoundsMemoryAndCountsDropped) {
  if constexpr (!kObsEnabled) return;
  TimelineSampler::Options options;
  options.interval_seconds = 0.001;
  options.capacity = 4;
  TimelineSampler sampler(options);
  ASSERT_TRUE(sampler.Start());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.Stop();
  const std::vector<UtilizationSample> samples = sampler.Samples();
  EXPECT_LE(samples.size(), 4u);
  const UtilizationSummary summary = sampler.Summarize();
  EXPECT_GT(summary.dropped, 0u);  // 30 ms at 1 ms >> 4 slots.
  // The retained window is the newest samples, oldest to newest.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_seconds, samples[i - 1].t_seconds);
  }
}

TEST(ObsTimelineTest, ToJsonIsValidInEveryBuild) {
  TimelineSampler sampler;
  EXPECT_TRUE(JsonIsValid(sampler.ToJson())) << sampler.ToJson();
  if constexpr (kObsEnabled) {
    TimelineSampler::Options options;
    options.interval_seconds = 0.001;
    TimelineSampler running(options);
    ASSERT_TRUE(running.Start());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    running.Stop();
    const std::string json = running.ToJson();
    EXPECT_TRUE(JsonIsValid(json)) << json;
    EXPECT_NE(json.find("\"summary\""), std::string::npos);
    EXPECT_NE(json.find("\"samples\""), std::string::npos);
  }
}

TEST(ObsTimelineTest, StopIsIdempotentAndRestartable) {
  TimelineSampler::Options options;
  options.interval_seconds = 0.001;
  TimelineSampler sampler(options);
  sampler.Stop();  // Never started: no-op.
  EXPECT_EQ(sampler.Start(), kObsEnabled);
  sampler.Stop();
  sampler.Stop();  // Second stop: no-op, no second final sample thread.
  EXPECT_EQ(sampler.Start(), kObsEnabled);  // Restart keeps working.
  sampler.Stop();
}

}  // namespace
}  // namespace edr
