#include "pruning/lcss_knn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "distance/lcss.h"
#include "pruning/qgram.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(LcssBoundsTest, TransportCapsLcssScore) {
  // The pillar of the histogram transfer: LCSS(Q,S) <= U where U is the
  // fast transport upper bound (max(m,n) - FastLowerBound).
  Rng rng(501);
  TrajectoryDataset db;
  for (int i = 0; i < 16; ++i) {
    db.Add(testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(3, 50))));
  }
  db.NormalizeAll();
  const HistogramTable table(db, kEps, HistogramTable::Kind::k2D, 1);
  for (size_t i = 0; i < db.size(); ++i) {
    const HistogramTable::QueryHistogram qh =
        table.MakeQueryHistogram(db[i]);
    for (size_t j = 0; j < db.size(); ++j) {
      const long total =
          static_cast<long>(std::max(db[i].size(), db[j].size()));
      const long cap =
          total - table.FastLowerBound(qh, static_cast<uint32_t>(j));
      EXPECT_GE(cap,
                static_cast<long>(LcssLength(db[i], db[j], kEps)))
          << i << "," << j;
    }
  }
}

TEST(LcssBoundsTest, ElementMatchCountCapsLcssScore) {
  // LCSS(Q,S) <= #(elements of Q with some epsilon-match in S), the q = 1
  // mean-gram count.
  Rng rng(502);
  for (int trial = 0; trial < 30; ++trial) {
    const Trajectory a = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(2, 40)));
    const Trajectory b = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(2, 40)));
    std::vector<Point2> qa = MeanValueQgrams(a, 1);
    std::vector<Point2> qb = MeanValueQgrams(b, 1);
    SortMeans(qa);
    SortMeans(qb);
    EXPECT_GE(CountMatchingMeans2D(qa, qb, kEps), LcssLength(a, b, kEps));
  }
}

class LcssKnnLosslessTest : public ::testing::TestWithParam<LcssFilter> {};

TEST_P(LcssKnnLosslessTest, MatchesUnfilteredScan) {
  const TrajectoryDataset db = testutil::SmallDataset(503, 80, 8, 60);
  const LcssKnnSearcher baseline(db, kEps, LcssFilter::kNone);
  const LcssKnnSearcher filtered(db, kEps, GetParam());
  for (const Trajectory& query : testutil::MakeQueries(db, 504, 4)) {
    const KnnResult expected = baseline.Knn(query, 10);
    const KnnResult actual = filtered.Knn(query, 10);
    EXPECT_TRUE(SameKnnDistances(expected, actual)) << filtered.name();
    EXPECT_LE(actual.stats.edr_computed, expected.stats.edr_computed);
  }
}

INSTANTIATE_TEST_SUITE_P(Filters, LcssKnnLosslessTest,
                         ::testing::Values(LcssFilter::kHistogram,
                                           LcssFilter::kQgram,
                                           LcssFilter::kBoth));

TEST(LcssKnnTest, BaselineComputesEverything) {
  const TrajectoryDataset db = testutil::SmallDataset(505, 30);
  const LcssKnnSearcher baseline(db, kEps, LcssFilter::kNone);
  const KnnResult r = baseline.Knn(db[0], 5);
  EXPECT_EQ(r.stats.edr_computed, db.size());
  EXPECT_EQ(r.neighbors[0].distance, 0.0);  // Self.
}

TEST(LcssKnnTest, PrunesOnSeparatedData) {
  Rng rng(506);
  TrajectoryDataset db;
  const Trajectory base = testutil::RandomWalk(rng, 30, 0.2);
  for (int i = 0; i < 5; ++i) db.Add(base);
  for (int i = 0; i < 60; ++i) {
    Trajectory t = testutil::RandomWalk(rng, 30, 0.2);
    for (Point2& p : t.mutable_points()) p.x += 50.0;
    db.Add(std::move(t));
  }
  const LcssKnnSearcher searcher(db, kEps, LcssFilter::kBoth);
  const LcssKnnSearcher baseline(db, kEps, LcssFilter::kNone);
  const KnnResult fast = searcher.Knn(base, 3);
  EXPECT_TRUE(SameKnnDistances(baseline.Knn(base, 3), fast));
  EXPECT_GT(fast.stats.PruningPower(), 0.5);
}

TEST(LcssKnnTest, Names) {
  const TrajectoryDataset db = testutil::SmallDataset(507, 5);
  EXPECT_EQ(LcssKnnSearcher(db, kEps, LcssFilter::kNone).name(),
            "LCSS-Scan");
  EXPECT_EQ(LcssKnnSearcher(db, kEps, LcssFilter::kBoth).name(), "LCSS-HP");
}

}  // namespace
}  // namespace edr
