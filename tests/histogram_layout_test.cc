#include <gtest/gtest.h>

#include <vector>

#include "pruning/combined.h"
#include "pruning/cse.h"
#include "pruning/histogram.h"
#include "pruning/histogram_knn.h"
#include "pruning/lcss_knn.h"
#include "pruning/near_triangle.h"
#include "pruning/qgram_knn.h"
#include "query/knn.h"
#include "query/thread_pool.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

// Grid resolutions from coarse (a handful of bins) down to the delta =
// 1-class configuration: an epsilon so small that HistogramGrid::For
// clamps the bin size to range/512, the finest grid the table supports —
// exactly where the adaptive layout must replace the dense block.
const double kResolutions[] = {1.0, 0.25, 1e-9};

const TrajectoryDataset& Db() {
  static const TrajectoryDataset db = testutil::SmallDataset(502, 300, 6, 40);
  return db;
}

void ExpectTablesEquivalent(const HistogramTable& adaptive,
                            const HistogramTable& dense,
                            const std::vector<Trajectory>& queries) {
  ASSERT_EQ(adaptive.size(), dense.size());
  std::vector<int> a_sweep;
  std::vector<int> d_sweep;
  std::vector<int> a_scalar;
  for (const Trajectory& query : queries) {
    const auto a_qh = adaptive.MakeQueryHistogram(query);
    const auto d_qh = dense.MakeQueryHistogram(query);
    adaptive.FastLowerBoundSweep(a_qh, &a_sweep);
    dense.FastLowerBoundSweep(d_qh, &d_sweep);
    EXPECT_EQ(a_sweep, d_sweep);
    adaptive.FastLowerBoundSweepScalar(a_qh, &a_scalar);
    EXPECT_EQ(a_sweep, a_scalar);
    for (uint32_t id = 0; id < adaptive.size(); ++id) {
      ASSERT_EQ(adaptive.FastLowerBound(a_qh, id),
                dense.FastLowerBound(d_qh, id))
          << "id=" << id;
    }
    // The exact transport bound reads the id-major slices, shared by all
    // layouts; spot-check a few ids (it is O(flow) per id).
    for (uint32_t id = 0; id < adaptive.size(); id += 37) {
      EXPECT_EQ(adaptive.LowerBound(a_qh, id), dense.LowerBound(d_qh, id));
    }
  }
}

TEST(HistogramLayoutTest, BoundsIdenticalAcrossResolutions) {
  const auto queries = testutil::MakeQueries(Db(), 503, 3);
  for (const HistogramTable::Kind kind :
       {HistogramTable::Kind::k2D, HistogramTable::Kind::k1D}) {
    for (const double eps : kResolutions) {
      const HistogramTable adaptive(Db(), eps, kind, 1,
                                    HistogramLayout::kAdaptive);
      const HistogramTable dense(Db(), eps, kind, 1, HistogramLayout::kDense);
      SCOPED_TRACE(testing::Message()
                   << "kind=" << (kind == HistogramTable::Kind::k2D ? 2 : 1)
                   << " eps=" << eps);
      ExpectTablesEquivalent(adaptive, dense, queries);
    }
  }
}

TEST(HistogramLayoutTest, ParallelSweepIdenticalOnAdaptive) {
  static ThreadPool pool(4);
  const HistogramTable table(Db(), 1e-9, HistogramTable::Kind::k2D, 1);
  const auto queries = testutil::MakeQueries(Db(), 504, 2);
  std::vector<int> seq;
  std::vector<int> par;
  for (const Trajectory& query : queries) {
    const auto qh = table.MakeQueryHistogram(query);
    table.FastLowerBoundSweep(qh, &seq);
    KnnOptions options;
    options.intra_query_workers = 4;
    options.pool = &pool;
    table.FastLowerBoundSweepParallel(qh, &par, options);
    EXPECT_EQ(seq, par);
  }
}

// Dense-layout tables must report the dense byte cost; adaptive tables at
// the delta = 1-class grid must be dominated by sparse/empty columns and
// well past the 4x memory-reduction bar.
TEST(HistogramLayoutTest, FineGridMemoryReduction) {
  const HistogramTable adaptive(Db(), 1e-9, HistogramTable::Kind::k2D, 1);
  const HistogramStorageStats stats = adaptive.storage_stats();
  EXPECT_GT(stats.sparse_columns + stats.empty_columns, 0u);
  EXPECT_GE(stats.dense_equivalent_bytes, 4 * stats.column_bytes)
      << "adaptive layout saves less than 4x at the finest grid";

  const HistogramTable dense(Db(), 1e-9, HistogramTable::Kind::k2D, 1,
                             HistogramLayout::kDense);
  const HistogramStorageStats dstats = dense.storage_stats();
  EXPECT_EQ(dstats.dense_columns, dstats.columns);
  EXPECT_GE(dstats.column_bytes, dstats.dense_equivalent_bytes);
}

// A clustered single-point dataset drives whole columns to all-ones at
// high density — the bitmap layout — which must agree with dense too.
TEST(HistogramLayoutTest, BitmapColumnsExercised) {
  Rng rng(505);
  TrajectoryDataset db("bitmap");
  for (size_t i = 0; i < 200; ++i) {
    Trajectory t;
    t.Append({rng.Gaussian(0.0, 0.05), rng.Gaussian(0.0, 0.05)});
    db.Add(t);
  }
  const HistogramTable adaptive(db, 1.0, HistogramTable::Kind::k2D, 1);
  EXPECT_GT(adaptive.storage_stats().bitmap_columns, 0u);
  const HistogramTable dense(db, 1.0, HistogramTable::Kind::k2D, 1,
                             HistogramLayout::kDense);
  std::vector<Trajectory> queries;
  for (size_t i = 0; i < 3; ++i) queries.push_back(db[i * 7]);
  ExpectTablesEquivalent(adaptive, dense, queries);
}

// Clustered multi-point trajectories push per-column counts above 1 at
// high density — the dense classification inside an adaptive table.
TEST(HistogramLayoutTest, DenseColumnsExercised) {
  Rng rng(506);
  TrajectoryDataset db("dense");
  for (size_t i = 0; i < 100; ++i) {
    Trajectory t;
    for (size_t j = 0; j < 5; ++j) {
      t.Append({rng.Gaussian(0.0, 0.05), rng.Gaussian(0.0, 0.05)});
    }
    db.Add(t);
  }
  const HistogramTable adaptive(db, 1.0, HistogramTable::Kind::k2D, 1);
  EXPECT_GT(adaptive.storage_stats().dense_columns, 0u);
  const HistogramTable dense(db, 1.0, HistogramTable::Kind::k2D, 1,
                             HistogramLayout::kDense);
  std::vector<Trajectory> queries;
  for (size_t i = 0; i < 3; ++i) queries.push_back(db[i * 7]);
  ExpectTablesEquivalent(adaptive, dense, queries);
}

// The FeatureCache fix: a layout change must change the semantic feature
// key, so cached query features can never leak across storage layouts.
TEST(HistogramLayoutTest, FeatureKeyEncodesLayout) {
  const HistogramTable adaptive(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                HistogramLayout::kAdaptive);
  const HistogramTable dense(Db(), kEps, HistogramTable::Kind::k2D, 1,
                             HistogramLayout::kDense);
  EXPECT_NE(adaptive.feature_key(), dense.feature_key());
  const HistogramTable adaptive2(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramLayout::kAdaptive);
  EXPECT_EQ(adaptive.feature_key(), adaptive2.feature_key());
  EXPECT_NE(adaptive.feature_key().find("layout=adaptive"), std::string::npos);
  EXPECT_NE(dense.feature_key().find("layout=dense"), std::string::npos);
}

void ExpectSameKnn(const KnnResult& expected, const KnnResult& actual,
                   const char* label) {
  ASSERT_EQ(expected.neighbors.size(), actual.neighbors.size()) << label;
  for (size_t i = 0; i < expected.neighbors.size(); ++i) {
    EXPECT_EQ(expected.neighbors[i].id, actual.neighbors[i].id)
        << label << " rank=" << i;
    EXPECT_EQ(expected.neighbors[i].distance, actual.neighbors[i].distance)
        << label << " rank=" << i;
  }
}

// All six searchers return identical k-NN results whichever layout backs
// their histogram tables (searchers without a histogram table are
// certified against the shared sequential-scan ground truth).
TEST(HistogramLayoutTest, SearchersIdenticalAcrossLayouts) {
  const TrajectoryDataset& db = Db();
  constexpr size_t kMaxTriangle = 25;
  const PairwiseEdrMatrix matrix =
      PairwiseEdrMatrix::Build(db, kEps, kMaxTriangle);

  const HistogramKnnSearcher hse_a(db, kEps, HistogramTable::Kind::k2D, 1,
                                   HistogramScan::kSequential,
                                   HistogramLayout::kAdaptive);
  const HistogramKnnSearcher hse_d(db, kEps, HistogramTable::Kind::k2D, 1,
                                   HistogramScan::kSequential,
                                   HistogramLayout::kDense);
  const HistogramKnnSearcher hsr_a(db, kEps, HistogramTable::Kind::k2D, 1,
                                   HistogramScan::kSorted,
                                   HistogramLayout::kAdaptive);
  const HistogramKnnSearcher hsr_d(db, kEps, HistogramTable::Kind::k2D, 1,
                                   HistogramScan::kSorted,
                                   HistogramLayout::kDense);
  CombinedOptions opt_a;
  opt_a.max_triangle = kMaxTriangle;
  CombinedOptions opt_d = opt_a;
  opt_a.histogram_layout = HistogramLayout::kAdaptive;
  opt_d.histogram_layout = HistogramLayout::kDense;
  const CombinedKnnSearcher combined_a(db, kEps, opt_a, matrix);
  const CombinedKnnSearcher combined_d(db, kEps, opt_d, matrix);
  const LcssKnnSearcher lcss_a(db, kEps, LcssFilter::kBoth,
                               HistogramLayout::kAdaptive);
  const LcssKnnSearcher lcss_d(db, kEps, LcssFilter::kBoth,
                               HistogramLayout::kDense);
  const QgramKnnSearcher ps2(db, kEps, /*q=*/1, QgramVariant::kMerge2D);
  const NearTriangleSearcher ntr(db, kEps, matrix);
  const CseSearcher cse(db, kEps, matrix);

  for (const Trajectory& query : testutil::MakeQueries(db, 507, 3)) {
    constexpr size_t kK = 10;
    ExpectSameKnn(hse_d.Knn(query, kK), hse_a.Knn(query, kK), "HSE");
    ExpectSameKnn(hsr_d.Knn(query, kK), hsr_a.Knn(query, kK), "HSR");
    ExpectSameKnn(combined_d.Knn(query, kK), combined_a.Knn(query, kK),
                  "2HPN");
    ExpectSameKnn(lcss_d.Knn(query, kK), lcss_a.Knn(query, kK), "LCSS");
    // The EDR searchers without a histogram table, against ground truth:
    // the adaptive layout cannot perturb any of the six pipelines.
    const KnnResult truth = SequentialScanKnn(db, query, kK, kEps);
    EXPECT_TRUE(SameKnnDistances(truth, ps2.Knn(query, kK)));
    EXPECT_TRUE(SameKnnDistances(truth, ntr.Knn(query, kK)));
    EXPECT_TRUE(SameKnnDistances(truth, cse.Knn(query, kK)));
    EXPECT_TRUE(SameKnnDistances(truth, hse_a.Knn(query, kK)));
    EXPECT_TRUE(SameKnnDistances(truth, hsr_a.Knn(query, kK)));
    EXPECT_TRUE(SameKnnDistances(truth, combined_a.Knn(query, kK)));
  }
}

}  // namespace
}  // namespace edr
