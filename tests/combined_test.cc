#include "pruning/combined.h"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>

#include "pruning/histogram_knn.h"
#include "pruning/qgram_knn.h"
#include "query/knn.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(CombinedTest, AllPruneOrdersEnumeratesSixPermutations) {
  const auto orders = AllPruneOrders();
  EXPECT_EQ(orders.size(), 6u);
  std::set<std::string> codes;
  for (const auto& order : orders) {
    std::string code;
    for (const PruneStep s : order) code += PruneStepCode(s);
    codes.insert(code);
  }
  EXPECT_EQ(codes.size(), 6u);
  EXPECT_TRUE(codes.count("HPN"));
  EXPECT_TRUE(codes.count("NPH"));
}

TEST(CombinedTest, NameEncodesKindAndOrder) {
  const TrajectoryDataset db = testutil::SmallDataset(51, 15);
  CombinedOptions options;
  options.max_triangle = 5;
  const CombinedKnnSearcher a(db, kEps, options);
  EXPECT_EQ(a.name(), "2HPN");
  options.histogram_kind = HistogramTable::Kind::k1D;
  options.order = {PruneStep::kNearTriangle, PruneStep::kQgram,
                   PruneStep::kHistogram};
  const CombinedKnnSearcher b(db, kEps, options);
  EXPECT_EQ(b.name(), "1NPH");
}

class CombinedOrderTest
    : public ::testing::TestWithParam<std::array<PruneStep, 3>> {};

TEST_P(CombinedOrderTest, EveryOrderIsLossless) {
  const TrajectoryDataset db = testutil::SmallDataset(52, 90, 6, 70);
  CombinedOptions options;
  options.order = GetParam();
  options.max_triangle = 25;
  const CombinedKnnSearcher searcher(db, kEps, options);
  for (const Trajectory& query : testutil::MakeQueries(db, 53, 4)) {
    const KnnResult expected = SequentialScanKnn(db, query, 10, kEps);
    const KnnResult actual = searcher.Knn(query, 10);
    EXPECT_TRUE(SameKnnDistances(expected, actual)) << searcher.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, CombinedOrderTest,
                         ::testing::ValuesIn(AllPruneOrders()));

TEST(CombinedTest, OneDimensionalHistogramVariantIsLossless) {
  const TrajectoryDataset db = testutil::SmallDataset(54, 80, 6, 60);
  CombinedOptions options;
  options.histogram_kind = HistogramTable::Kind::k1D;  // "1HPN"
  options.max_triangle = 20;
  const CombinedKnnSearcher searcher(db, kEps, options);
  for (const Trajectory& query : testutil::MakeQueries(db, 55, 4)) {
    const KnnResult expected = SequentialScanKnn(db, query, 10, kEps);
    EXPECT_TRUE(SameKnnDistances(expected, searcher.Knn(query, 10)));
  }
}

TEST(CombinedTest, CombinationPrunesAtLeastAsMuchAsEachComponentAlone) {
  // Section 5.4: the three filters are orthogonal; applying all of them
  // removes at least as many candidates as any single one.
  const TrajectoryDataset db = testutil::SmallDataset(56, 120, 6, 80);
  CombinedOptions options;
  options.max_triangle = 30;
  const CombinedKnnSearcher combined(db, kEps, options);
  const HistogramKnnSearcher histogram(db, kEps, HistogramTable::Kind::k2D,
                                       1, HistogramScan::kSorted);
  const QgramKnnSearcher qgram(db, kEps, 1, QgramVariant::kMerge2D);

  size_t combined_total = 0;
  size_t histogram_total = 0;
  size_t qgram_total = 0;
  for (const Trajectory& query : testutil::MakeQueries(db, 57, 5)) {
    combined_total += combined.Knn(query, 10).stats.edr_computed;
    histogram_total += histogram.Knn(query, 10).stats.edr_computed;
    qgram_total += qgram.Knn(query, 10).stats.edr_computed;
  }
  EXPECT_LE(combined_total, histogram_total);
  EXPECT_LE(combined_total, qgram_total);
}

TEST(CombinedTest, SharedMatrixConstructorBehavesTheSame) {
  const TrajectoryDataset db = testutil::SmallDataset(58, 40, 6, 50);
  CombinedOptions options;
  options.max_triangle = 10;
  const CombinedKnnSearcher a(db, kEps, options);
  const CombinedKnnSearcher b(db, kEps, options,
                              PairwiseEdrMatrix::Build(db, kEps, 10));
  const Trajectory query = db[9];
  EXPECT_TRUE(SameKnnDistances(a.Knn(query, 6), b.Knn(query, 6)));
}

TEST(CombinedTest, StatsAreConsistent) {
  const TrajectoryDataset db = testutil::SmallDataset(59, 50, 6, 50);
  CombinedOptions options;
  options.max_triangle = 10;
  const CombinedKnnSearcher searcher(db, kEps, options);
  const KnnResult result = searcher.Knn(db[0], 5);
  EXPECT_EQ(result.stats.db_size, db.size());
  EXPECT_LE(result.stats.edr_computed, db.size());
  EXPECT_GE(result.stats.edr_computed, 5u);  // At least the k seeds.
  EXPECT_GE(result.stats.elapsed_seconds, 0.0);
  EXPECT_EQ(result.neighbors.size(), 5u);
}

}  // namespace
}  // namespace edr
