#include "query/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace edr {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (const size_t n : {0u, 1u, 2u, 7u, 100u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, [&hits](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  // On a single-core machine the default pool has no workers at all; the
  // caller must still execute everything.
  EXPECT_EQ(pool.num_workers(), 0u);
  std::vector<int> hits(50, 0);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  pool.ParallelFor(hits.size(), [&](size_t i) {
    hits[i]++;
    if (std::this_thread::get_id() != caller) all_on_caller = false;
  });
  EXPECT_TRUE(all_on_caller);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

TEST(ThreadPoolTest, MaxParallelismOneStaysOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> all_on_caller{true};
  pool.ParallelFor(
      64,
      [&](size_t) {
        if (std::this_thread::get_id() != caller) all_on_caller = false;
      },
      /*max_parallelism=*/1);
  EXPECT_TRUE(all_on_caller.load());
}

TEST(ThreadPoolTest, RepeatedJobsReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&total](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * 17u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  pool.ParallelFor(8, [&](size_t) {
    // A nested call from inside a job must not deadlock on the job mutex;
    // it runs inline on the current participant.
    pool.ParallelFor(5, [&total](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * 5u);
}

TEST(ThreadPoolTest, ConcurrentCallersSerializeSafely) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&pool, &total] {
      for (int round = 0; round < 50; ++round) {
        pool.ParallelFor(13, [&total](size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 4u * 50u * 13u);
}

TEST(ThreadPoolTest, SkewedWorkIsStolen) {
  ThreadPool pool(3);
  // One item is 1000x heavier; with contiguous static slices alone the
  // other participants would idle. Just assert completion and coverage —
  // the steal path runs under TSan/ASan in CI.
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(), [&hits](size_t i) {
    volatile double sink = 0.0;
    const int spins = i == 0 ? 2000000 : 2000;
    for (int s = 0; s < spins; ++s) sink += static_cast<double>(s);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace edr
