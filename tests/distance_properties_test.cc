// Property-based tests for the distance functions, parameterized over RNG
// seeds (each seed drives a fresh batch of random trajectory pairs).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.h"
#include "core/trajectory.h"
#include "distance/dtw.h"
#include "distance/edr.h"
#include "distance/erp.h"
#include "distance/lcss.h"

namespace edr {
namespace {

Trajectory RandomTrajectory(Rng& rng, int min_len, int max_len,
                            double step = 0.5) {
  Trajectory t;
  const int len = static_cast<int>(rng.UniformInt(min_len, max_len));
  Point2 pos{rng.Gaussian(), rng.Gaussian()};
  for (int i = 0; i < len; ++i) {
    t.Append(pos);
    pos.x += rng.Gaussian(0.0, step);
    pos.y += rng.Gaussian(0.0, step);
  }
  return t;
}

class DistancePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistancePropertyTest, EdrIdentityOfMatchingCopies) {
  Rng rng(GetParam());
  const Trajectory a = RandomTrajectory(rng, 5, 60);
  EXPECT_EQ(EdrDistance(a, a, 0.25), 0);
}

TEST_P(DistancePropertyTest, EdrSymmetry) {
  Rng rng(GetParam() ^ 0x1);
  const Trajectory a = RandomTrajectory(rng, 2, 60);
  const Trajectory b = RandomTrajectory(rng, 2, 60);
  EXPECT_EQ(EdrDistance(a, b, 0.25), EdrDistance(b, a, 0.25));
}

TEST_P(DistancePropertyTest, EdrRangeBounds) {
  Rng rng(GetParam() ^ 0x2);
  const Trajectory a = RandomTrajectory(rng, 2, 60);
  const Trajectory b = RandomTrajectory(rng, 2, 60);
  const int d = EdrDistance(a, b, 0.25);
  EXPECT_GE(d, EdrLengthLowerBound(a, b));
  EXPECT_LE(d, static_cast<int>(std::max(a.size(), b.size())));
}

TEST_P(DistancePropertyTest, EdrNearTriangleInequalityTheorem5) {
  // EDR(Q,S) + EDR(S,R) + |S| >= EDR(Q,R).
  Rng rng(GetParam() ^ 0x3);
  const Trajectory q = RandomTrajectory(rng, 2, 40);
  const Trajectory s = RandomTrajectory(rng, 2, 40);
  const Trajectory r = RandomTrajectory(rng, 2, 40);
  const int qs = EdrDistance(q, s, 0.25);
  const int sr = EdrDistance(s, r, 0.25);
  const int qr = EdrDistance(q, r, 0.25);
  EXPECT_GE(qs + sr + static_cast<int>(s.size()), qr);
}

TEST_P(DistancePropertyTest, EdrSingleEditPerturbationCostsAtMostOne) {
  Rng rng(GetParam() ^ 0x4);
  Trajectory a = RandomTrajectory(rng, 5, 50);
  Trajectory b = a;
  // Replace one element with an outlier.
  const size_t at = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(a.size()) - 1));
  b[at] = {b[at].x + 50.0, b[at].y - 50.0};
  const int d = EdrDistance(a, b, 0.25);
  EXPECT_LE(d, 1);
}

TEST_P(DistancePropertyTest, EdrInsertionPerturbationCostsAtMostOne) {
  Rng rng(GetParam() ^ 0x5);
  const Trajectory a = RandomTrajectory(rng, 5, 50);
  std::vector<Point2> points = a.points();
  const size_t at = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(points.size())));
  points.insert(points.begin() + static_cast<long>(at), {100.0, 100.0});
  const Trajectory b{std::move(points)};
  EXPECT_LE(EdrDistance(a, b, 0.25), 1);
  EXPECT_GE(EdrDistance(a, b, 0.25), 0);
}

TEST_P(DistancePropertyTest, EdrMonotoneInEpsilonTheorem7) {
  Rng rng(GetParam() ^ 0x6);
  const Trajectory a = RandomTrajectory(rng, 2, 50);
  const Trajectory b = RandomTrajectory(rng, 2, 50);
  int prev = EdrDistance(a, b, 0.1);
  for (const double eps : {0.2, 0.4, 0.8, 1.6}) {
    const int d = EdrDistance(a, b, eps);
    EXPECT_LE(d, prev);
    prev = d;
  }
}

TEST_P(DistancePropertyTest, EdrProjectionLowerBoundTheorem8) {
  // EDR on a single projected dimension lower-bounds full EDR.
  Rng rng(GetParam() ^ 0x7);
  const Trajectory a = RandomTrajectory(rng, 2, 40);
  const Trajectory b = RandomTrajectory(rng, 2, 40);
  Trajectory ax;
  Trajectory bx;
  for (const Point2& p : a) ax.Append(p.x, 0.0);
  for (const Point2& p : b) bx.Append(p.x, 0.0);
  EXPECT_LE(EdrDistance(ax, bx, 0.25), EdrDistance(a, b, 0.25));
}

TEST_P(DistancePropertyTest, EdrBoundedAgreesWithFullUnderAnyBound) {
  Rng rng(GetParam() ^ 0x8);
  const Trajectory a = RandomTrajectory(rng, 2, 50);
  const Trajectory b = RandomTrajectory(rng, 2, 50);
  const int full = EdrDistance(a, b, 0.25);
  for (const int bound : {0, 1, 5, 20, 100}) {
    const int d = EdrDistanceBounded(a, b, 0.25, bound);
    if (full <= bound) {
      EXPECT_EQ(d, full);
    } else {
      EXPECT_GT(d, bound);
      EXPECT_LE(d, full);
    }
  }
}

TEST_P(DistancePropertyTest, DtwSymmetryAndIdentity) {
  Rng rng(GetParam() ^ 0x9);
  const Trajectory a = RandomTrajectory(rng, 2, 50);
  const Trajectory b = RandomTrajectory(rng, 2, 50);
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), DtwDistance(b, a));
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
}

TEST_P(DistancePropertyTest, ErpSymmetryAndTriangle) {
  Rng rng(GetParam() ^ 0xA);
  const Trajectory a = RandomTrajectory(rng, 2, 30);
  const Trajectory b = RandomTrajectory(rng, 2, 30);
  const Trajectory c = RandomTrajectory(rng, 2, 30);
  EXPECT_NEAR(ErpDistance(a, b), ErpDistance(b, a), 1e-9);
  EXPECT_LE(ErpDistance(a, c), ErpDistance(a, b) + ErpDistance(b, c) + 1e-9);
}

TEST_P(DistancePropertyTest, LcssScoreWithinBounds) {
  Rng rng(GetParam() ^ 0xB);
  const Trajectory a = RandomTrajectory(rng, 2, 50);
  const Trajectory b = RandomTrajectory(rng, 2, 50);
  const size_t score = LcssLength(a, b, 0.25);
  EXPECT_LE(score, std::min(a.size(), b.size()));
  const double dist = LcssDistance(a, b, 0.25);
  EXPECT_GE(dist, 0.0);
  EXPECT_LE(dist, 1.0);
}

TEST_P(DistancePropertyTest, LcssAndEdrConsistency) {
  // EDR(R,S) <= m + n - 2 * LCSS(R,S): delete everything unmatched.
  // (Each matched pair survives; the rest are insert/delete/replace.)
  Rng rng(GetParam() ^ 0xC);
  const Trajectory a = RandomTrajectory(rng, 2, 40);
  const Trajectory b = RandomTrajectory(rng, 2, 40);
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  const int lcss = static_cast<int>(LcssLength(a, b, 0.25));
  EXPECT_LE(EdrDistance(a, b, 0.25), m + n - 2 * lcss);
  // And EDR >= (max - LCSS): at most LCSS positions can be free matches.
  EXPECT_GE(EdrDistance(a, b, 0.25), std::max(m, n) - lcss);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistancePropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace edr
