#include "pruning/cse.h"

#include <gtest/gtest.h>

#include "query/knn.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(CseTest, ViolationIsNonNegative) {
  const TrajectoryDataset db = testutil::SmallDataset(21, 25);
  const PairwiseEdrMatrix m = PairwiseEdrMatrix::Build(db, kEps, 12);
  EXPECT_GE(MaxTriangleViolation(m), 0.0);
}

TEST(CseTest, ShiftRepairsAllReferenceTriples) {
  const TrajectoryDataset db = testutil::SmallDataset(22, 30, 5, 60);
  const PairwiseEdrMatrix m = PairwiseEdrMatrix::Build(db, kEps, 15);
  const double c = MaxTriangleViolation(m);
  // After shifting by c every reference triple obeys the triangle
  // inequality: d(x,z) <= d(x,y) + d(y,z) + c.
  for (size_t x = 0; x < 15; ++x) {
    for (size_t y = 0; y < 15; ++y) {
      for (size_t z = 0; z < 15; ++z) {
        if (x == y || y == z) continue;
        EXPECT_LE(m.at(x, static_cast<uint32_t>(z)),
                  m.at(x, static_cast<uint32_t>(y)) +
                      m.at(y, static_cast<uint32_t>(z)) + c + 1e-9);
      }
    }
  }
}

TEST(CseTest, ZeroViolationWhenMetricHolds) {
  // A dataset of identical trajectories: all pairwise EDR distances are
  // zero, so no triple violates the triangle inequality.
  Rng rng(23);
  const Trajectory t = testutil::RandomWalk(rng, 20);
  TrajectoryDataset db;
  for (int i = 0; i < 6; ++i) db.Add(t);
  const PairwiseEdrMatrix m = PairwiseEdrMatrix::Build(db, kEps, 6);
  EXPECT_DOUBLE_EQ(MaxTriangleViolation(m), 0.0);
}

TEST(CseTest, SearcherReturnsKResults) {
  const TrajectoryDataset db = testutil::SmallDataset(24, 50, 5, 60);
  const CseSearcher searcher(db, kEps, PairwiseEdrMatrix::Build(db, kEps, 20));
  const KnnResult result = searcher.Knn(db[3], 7);
  EXPECT_EQ(result.neighbors.size(), 7u);
  EXPECT_GE(searcher.shift(), 0.0);
}

TEST(CseTest, PaperClaimCsePrunesLittle) {
  // Section 4.2, reason 1 for rejecting CSE: the derived constant is so
  // large that the lower bound rarely fires. Compare computed-distance
  // counts against near-triangle pruning on the same variable-length data.
  const TrajectoryDataset db = testutil::SmallDataset(25, 80, 5, 80);
  PairwiseEdrMatrix m1 = PairwiseEdrMatrix::Build(db, kEps, 30);
  PairwiseEdrMatrix m2 = PairwiseEdrMatrix::Build(db, kEps, 30);
  const CseSearcher cse(db, kEps, std::move(m1));
  const NearTriangleSearcher ntr(db, kEps, std::move(m2));
  size_t cse_computed = 0;
  size_t seq = 0;
  for (const Trajectory& query : testutil::MakeQueries(db, 26, 5)) {
    cse_computed += cse.Knn(query, 10).stats.edr_computed;
    seq += db.size();
  }
  // CSE must not beat a plain scan by much; mostly it computes everything.
  EXPECT_GE(cse_computed, seq * 8 / 10);
  (void)ntr;
}

}  // namespace
}  // namespace edr
