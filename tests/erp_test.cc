#include "distance/erp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"

namespace edr {
namespace {

Trajectory Seq(std::initializer_list<double> xs) {
  Trajectory t;
  for (const double x : xs) t.Append(x, 0.0);
  return t;
}

Trajectory RandomTrajectory(Rng& rng, int min_len, int max_len) {
  Trajectory t;
  const int len = static_cast<int>(rng.UniformInt(min_len, max_len));
  for (int i = 0; i < len; ++i) t.Append(rng.Gaussian(), rng.Gaussian());
  return t;
}

TEST(ErpTest, BothEmptyIsZero) {
  EXPECT_DOUBLE_EQ(ErpDistance(Trajectory(), Trajectory()), 0.0);
}

TEST(ErpTest, EmptyVersusNonEmptyIsSumOfGapPenalties) {
  const Trajectory t = Seq({3, 4});
  // Gap at origin: penalties are |3| and |4| in L2 on the x axis.
  EXPECT_DOUBLE_EQ(ErpDistance(Trajectory(), t), 7.0);
  EXPECT_DOUBLE_EQ(ErpDistance(t, Trajectory()), 7.0);
}

TEST(ErpTest, IdenticalIsZero) {
  const Trajectory t = Seq({1, 5, 2, 8});
  EXPECT_DOUBLE_EQ(ErpDistance(t, t), 0.0);
}

TEST(ErpTest, SelfDistanceZeroEvenWithCustomGap) {
  const Trajectory t = Seq({1, 2});
  EXPECT_DOUBLE_EQ(ErpDistance(t, t, {5.0, 5.0}), 0.0);
}

TEST(ErpTest, SingleInsertionCostsGapDistance) {
  const Trajectory a = Seq({1, 2});
  const Trajectory b = Seq({1, 7, 2});
  // Cheapest script: align 1-1, 2-2, and pay dist(7, g) = 7 for the gap.
  EXPECT_DOUBLE_EQ(ErpDistance(a, b), 7.0);
}

TEST(ErpTest, Symmetric) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Trajectory a = RandomTrajectory(rng, 5, 30);
    const Trajectory b = RandomTrajectory(rng, 5, 30);
    EXPECT_DOUBLE_EQ(ErpDistance(a, b), ErpDistance(b, a));
  }
}

TEST(ErpTest, TriangleInequalityOnRandomTriples) {
  // ERP with a true-metric element distance is a metric (the property the
  // paper contrasts with EDR); verify on sampled triples.
  Rng rng(32);
  for (int trial = 0; trial < 30; ++trial) {
    const Trajectory a = RandomTrajectory(rng, 3, 20);
    const Trajectory b = RandomTrajectory(rng, 3, 20);
    const Trajectory c = RandomTrajectory(rng, 3, 20);
    const double ab = ErpDistance(a, b);
    const double bc = ErpDistance(b, c);
    const double ac = ErpDistance(a, c);
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

TEST(ErpTest, HandlesLocalTimeShifting) {
  // Shifted-in-time copies should be much closer under ERP than under a
  // lockstep comparison would suggest: gap penalties only.
  const Trajectory a = Seq({0, 0, 1, 2, 3});
  const Trajectory b = Seq({1, 2, 3});
  EXPECT_DOUBLE_EQ(ErpDistance(a, b), 0.0);  // Leading zeros cost dist(0,g)=0.
}

TEST(ErpBandedTest, UnconstrainedMatchesPlain) {
  Rng rng(33);
  const Trajectory a = RandomTrajectory(rng, 10, 25);
  const Trajectory b = RandomTrajectory(rng, 10, 25);
  EXPECT_DOUBLE_EQ(ErpDistanceBanded(a, b, -1), ErpDistance(a, b));
}

TEST(ErpBandedTest, BandUpperBoundsExact) {
  Rng rng(34);
  for (int trial = 0; trial < 15; ++trial) {
    const Trajectory a = RandomTrajectory(rng, 5, 30);
    const Trajectory b = RandomTrajectory(rng, 5, 30);
    const double full = ErpDistance(a, b);
    for (const int band : {0, 2, 5}) {
      EXPECT_GE(ErpDistanceBanded(a, b, band) + 1e-9, full);
    }
  }
}

TEST(ErpTest, CustomGapChangesPenalties) {
  const Trajectory a = Seq({5});
  const Trajectory b;
  EXPECT_DOUBLE_EQ(ErpDistance(a, b, {5.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(ErpDistance(a, b, {0.0, 0.0}), 5.0);
}

}  // namespace
}  // namespace edr
