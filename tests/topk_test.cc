#include "query/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.h"
#include "query/knn.h"

namespace edr {
namespace {

std::vector<StreamingOrder<int>::Entry> RandomEntries(uint64_t seed,
                                                      size_t n,
                                                      int key_range) {
  // A small key range forces many ties, exercising the (key, id)
  // tie-break that the parallel refinement's determinism relies on.
  Rng rng(seed);
  std::vector<StreamingOrder<int>::Entry> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = {static_cast<int>(rng.UniformInt(0, key_range)),
                  static_cast<uint32_t>(i)};
  }
  return entries;
}

std::vector<StreamingOrder<int>::Entry> FullySorted(
    std::vector<StreamingOrder<int>::Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const StreamingOrder<int>::Entry& a,
               const StreamingOrder<int>::Entry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.id < b.id;
            });
  return entries;
}

TEST(StreamingOrderTest, FullDrainMatchesFullSortIncludingTies) {
  for (const size_t n : {0u, 1u, 5u, 63u, 64u, 65u, 700u, 2048u}) {
    auto entries = RandomEntries(/*seed=*/n + 7, n, /*key_range=*/9);
    const auto expected = FullySorted(entries);
    StreamingOrder<int> order(std::move(entries));
    StreamingOrder<int>::Entry e;
    size_t i = 0;
    while (order.Next(&e)) {
      ASSERT_LT(i, expected.size());
      EXPECT_EQ(e.key, expected[i].key) << "n=" << n << " i=" << i;
      EXPECT_EQ(e.id, expected[i].id) << "n=" << n << " i=" << i;
      ++i;
    }
    EXPECT_EQ(i, expected.size());
  }
}

TEST(StreamingOrderTest, PartialDrainMatchesSortedPrefix) {
  const size_t n = 5000;
  auto entries = RandomEntries(/*seed=*/11, n, /*key_range=*/100);
  const auto expected = FullySorted(entries);
  StreamingOrder<int> order(std::move(entries));
  StreamingOrder<int>::Entry e;
  for (size_t i = 0; i < 137; ++i) {
    ASSERT_TRUE(order.Next(&e));
    EXPECT_EQ(e.key, expected[i].key);
    EXPECT_EQ(e.id, expected[i].id);
  }
}

TEST(StreamingOrderTest, FromKeysUsesIndexAsId) {
  const std::vector<double> keys = {3.0, 1.0, 2.0, 1.0};
  StreamingOrder<double> order = StreamingOrder<double>::FromKeys(keys);
  StreamingOrder<double>::Entry e;
  std::vector<uint32_t> ids;
  while (order.Next(&e)) ids.push_back(e.id);
  EXPECT_EQ(ids, (std::vector<uint32_t>{1, 3, 2, 0}));
}

TEST(BoundedTopKTest, MatchesKnnResultListWithTies) {
  // Quantized distances force many ties; with order = offer index the
  // selection must keep exactly what KnnResultList keeps (earlier offers
  // win ties) in exactly its order.
  Rng rng(99);
  for (const size_t k : {1u, 4u, 10u}) {
    KnnResultList reference(k);
    BoundedTopK streaming(k);
    for (size_t i = 0; i < 500; ++i) {
      const uint32_t id = static_cast<uint32_t>(i);
      const double dist = static_cast<double>(rng.UniformInt(0, 20));
      reference.Offer(id, dist);
      streaming.Offer(id, dist, /*order=*/i);
    }
    const auto expected = std::move(reference).TakeNeighbors();
    const auto actual = std::move(streaming).TakeSortedNeighbors();
    ASSERT_EQ(expected.size(), actual.size()) << "k=" << k;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].id, actual[i].id) << "k=" << k << " i=" << i;
      EXPECT_EQ(expected[i].distance, actual[i].distance);
    }
  }
}

TEST(BoundedTopKTest, ThresholdLifecycle) {
  BoundedTopK empty(0);
  EXPECT_EQ(empty.Threshold(), -std::numeric_limits<double>::infinity());

  BoundedTopK topk(2);
  EXPECT_EQ(topk.Threshold(), std::numeric_limits<double>::infinity());
  topk.Offer(0, 5.0, 0);
  EXPECT_EQ(topk.Threshold(), std::numeric_limits<double>::infinity());
  topk.Offer(1, 3.0, 1);
  EXPECT_TRUE(topk.full());
  EXPECT_EQ(topk.Threshold(), 5.0);
  topk.Offer(2, 4.0, 2);
  EXPECT_EQ(topk.Threshold(), 4.0);
  // An exact tie with the current k-th must be rejected (later order).
  topk.Offer(3, 4.0, 3);
  EXPECT_EQ(topk.Threshold(), 4.0);
  const auto neighbors = std::move(topk).TakeSortedNeighbors();
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].id, 1u);
  EXPECT_EQ(neighbors[1].id, 2u);
}

TEST(BoundedTopKTest, MergeIsScheduleIndependent) {
  Rng rng(123);
  std::vector<uint32_t> ids(400);
  std::vector<double> dists(400);
  std::vector<size_t> orders(400);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<uint32_t>(i);
    dists[i] = static_cast<double>(rng.UniformInt(0, 30));
    orders[i] = i;
  }
  for (const size_t k : {1u, 7u, 25u}) {
    BoundedTopK single(k);
    for (size_t i = 0; i < ids.size(); ++i) {
      single.Offer(ids[i], dists[i], orders[i]);
    }
    const auto expected = std::move(single).TakeSortedNeighbors();

    for (const size_t parts : {2u, 3u, 8u}) {
      std::vector<BoundedTopK> shards(parts, BoundedTopK(k));
      for (size_t i = 0; i < ids.size(); ++i) {
        shards[i % parts].Offer(ids[i], dists[i], orders[i]);
      }
      const auto merged = BoundedTopK::Merge(std::move(shards), k);
      ASSERT_EQ(expected.size(), merged.size())
          << "k=" << k << " parts=" << parts;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].id, merged[i].id);
        EXPECT_EQ(expected[i].distance, merged[i].distance);
      }
    }
  }
}

TEST(SortNeighborsAscendingTest, PartialSelectionMatchesFullSort) {
  Rng rng(7);
  std::vector<Neighbor> base(300);
  for (size_t i = 0; i < base.size(); ++i) {
    base[i] = {static_cast<uint32_t>(i),
               static_cast<double>(rng.UniformInt(0, 12))};
  }
  std::vector<Neighbor> full = base;
  SortNeighborsAscending(&full);
  ASSERT_EQ(full.size(), base.size());
  EXPECT_TRUE(std::is_sorted(full.begin(), full.end(),
                             [](const Neighbor& a, const Neighbor& b) {
                               if (a.distance != b.distance) {
                                 return a.distance < b.distance;
                               }
                               return a.id < b.id;
                             }));

  for (const size_t m : {1u, 9u, 299u, 300u, 500u}) {
    std::vector<Neighbor> partial = base;
    SortNeighborsAscending(&partial, m);
    const size_t want = std::min<size_t>(m, base.size());
    ASSERT_EQ(partial.size(), want) << "m=" << m;
    for (size_t i = 0; i < want; ++i) {
      EXPECT_EQ(partial[i].id, full[i].id) << "m=" << m << " i=" << i;
      EXPECT_EQ(partial[i].distance, full[i].distance);
    }
  }
}

}  // namespace
}  // namespace edr
