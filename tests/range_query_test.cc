// Lossless range queries (the Theorem 1 native query form) across every
// pruning searcher, verified against the sequential-scan range query.

#include <gtest/gtest.h>

#include "pruning/combined.h"
#include "pruning/histogram_knn.h"
#include "pruning/near_triangle.h"
#include "pruning/qgram_knn.h"
#include "query/knn.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

bool SameRangeResult(const KnnResult& expected, const KnnResult& actual) {
  if (expected.neighbors.size() != actual.neighbors.size()) return false;
  for (size_t i = 0; i < expected.neighbors.size(); ++i) {
    if (!(expected.neighbors[i] == actual.neighbors[i])) return false;
  }
  return true;
}

TEST(SequentialRangeTest, ReturnsExactlyTheBall) {
  const TrajectoryDataset db = testutil::SmallDataset(201, 40, 8, 40);
  const Trajectory query = db[7];
  const KnnResult r = SequentialScanRange(db, query, 10, kEps);
  ASSERT_FALSE(r.neighbors.empty());
  // Self at distance 0 is first.
  EXPECT_EQ(r.neighbors[0].id, 7u);
  EXPECT_EQ(r.neighbors[0].distance, 0.0);
  for (const Neighbor& n : r.neighbors) {
    EXPECT_LE(n.distance, 10.0);
  }
  // Ascending order.
  for (size_t i = 1; i < r.neighbors.size(); ++i) {
    EXPECT_LE(r.neighbors[i - 1].distance, r.neighbors[i].distance);
  }
}

TEST(SequentialRangeTest, ZeroRadiusFindsExactMatches) {
  TrajectoryDataset db = testutil::SmallDataset(202, 10);
  db.Add(db[3]);  // An exact duplicate.
  const KnnResult r = SequentialScanRange(db, db[3], 0, kEps);
  EXPECT_GE(r.neighbors.size(), 2u);
  for (const Neighbor& n : r.neighbors) EXPECT_EQ(n.distance, 0.0);
}

class RangeLosslessTest : public ::testing::TestWithParam<int> {};

TEST_P(RangeLosslessTest, AllSearchersMatchSequentialScan) {
  const int radius = GetParam();
  const TrajectoryDataset db = testutil::SmallDataset(203, 80, 8, 60);

  const QgramKnnSearcher qgram_ps2(db, kEps, 1, QgramVariant::kMerge2D);
  const QgramKnnSearcher qgram_pr(db, kEps, 2, QgramVariant::kRtree2D);
  const HistogramKnnSearcher hist2d(db, kEps, HistogramTable::Kind::k2D, 1,
                                    HistogramScan::kSorted);
  const HistogramKnnSearcher hist1d(db, kEps, HistogramTable::Kind::k1D, 1,
                                    HistogramScan::kSequential);
  const NearTriangleSearcher ntr(db, kEps, 20);
  CombinedOptions combo;
  combo.max_triangle = 20;
  const CombinedKnnSearcher combined(db, kEps, combo);
  combo.sorted_histogram_scan = false;
  const CombinedKnnSearcher combined_seq(db, kEps, combo);

  for (const Trajectory& query : testutil::MakeQueries(db, 204, 3)) {
    const KnnResult expected = SequentialScanRange(db, query, radius, kEps);
    EXPECT_TRUE(SameRangeResult(expected, qgram_ps2.Range(query, radius)))
        << "PS2 radius=" << radius;
    EXPECT_TRUE(SameRangeResult(expected, qgram_pr.Range(query, radius)))
        << "PR radius=" << radius;
    EXPECT_TRUE(SameRangeResult(expected, hist2d.Range(query, radius)))
        << "2HE radius=" << radius;
    EXPECT_TRUE(SameRangeResult(expected, hist1d.Range(query, radius)))
        << "1HE radius=" << radius;
    EXPECT_TRUE(SameRangeResult(expected, ntr.Range(query, radius)))
        << "NTR radius=" << radius;
    EXPECT_TRUE(SameRangeResult(expected, combined.Range(query, radius)))
        << "2HPN radius=" << radius;
    EXPECT_TRUE(SameRangeResult(expected, combined_seq.Range(query, radius)))
        << "2HPN-seq radius=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, RangeLosslessTest,
                         ::testing::Values(0, 2, 5, 12, 30, 100));

TEST(RangeTest, PruningHappensForSmallRadii) {
  const TrajectoryDataset db = testutil::SmallDataset(205, 100, 8, 60);
  CombinedOptions combo;
  combo.max_triangle = 20;
  const CombinedKnnSearcher combined(db, kEps, combo);
  const KnnResult tight = combined.Range(db[5], 2);
  EXPECT_LT(tight.stats.edr_computed, db.size());
}

TEST(RangeTest, HugeRadiusReturnsEverything) {
  const TrajectoryDataset db = testutil::SmallDataset(206, 25, 8, 40);
  const HistogramKnnSearcher hist(db, kEps, HistogramTable::Kind::k2D, 1,
                                  HistogramScan::kSorted);
  const KnnResult all = hist.Range(db[0], 1000);
  EXPECT_EQ(all.neighbors.size(), db.size());
}

}  // namespace
}  // namespace edr
