#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/trace.h"
#include "query/engine.h"
#include "query/feature_cache.h"
#include "query/scheduler.h"
#include "query/thread_pool.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

void ExpectSameNeighbors(const KnnResult& expected, const KnnResult& actual,
                         const std::string& context) {
  ASSERT_EQ(expected.neighbors.size(), actual.neighbors.size()) << context;
  for (size_t j = 0; j < expected.neighbors.size(); ++j) {
    EXPECT_EQ(expected.neighbors[j].id, actual.neighbors[j].id)
        << context << " rank " << j;
    EXPECT_EQ(expected.neighbors[j].distance, actual.neighbors[j].distance)
        << context << " rank " << j;
  }
}

/// One NamedSearcher per retrieval method, bound to a dedicated pool so
/// worker counts are exact regardless of the host's core count.
std::vector<NamedSearcher> AllSearchers(QueryEngine& engine,
                                        ThreadPool* pool) {
  KnnOptions options;
  options.pool = pool;
  CombinedOptions combo;
  combo.max_triangle = 20;
  return {
      engine.MakeQgram(QgramVariant::kMerge2D, 1, options),
      engine.MakeQgram(QgramVariant::kMerge1D, 1, options),
      engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                           HistogramScan::kSorted, options),
      engine.MakeNearTriangle(20, options),
      engine.MakeCse(20, options),
      engine.MakeCombined(combo, options),
  };
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : db_(testutil::SmallDataset(901, 70, 10, 50)),
        engine_(db_, kEps),
        queries_(testutil::MakeQueries(db_, 902, 9)),
        pool_(8) {}

  std::vector<KnnResult> Sequential(const NamedSearcher& searcher, size_t k) {
    std::vector<KnnResult> out;
    out.reserve(queries_.size());
    for (const Trajectory& q : queries_) out.push_back(searcher.search(q, k));
    return out;
  }

  TrajectoryDataset db_;
  QueryEngine engine_;
  std::vector<Trajectory> queries_;
  ThreadPool pool_;
};

/// The acceptance-criteria test: fixed, oscillating, and adversarial
/// budget schedules (1 / 2 / 8 workers) produce bit-identical k-NN
/// results for every searcher. budget_override drives the exact
/// production call path (AdaptiveScheduler::Step -> search_with) with a
/// deterministic budget per query.
TEST_F(SchedulerTest, BitIdenticalAcrossBudgetSchedules) {
  struct Schedule {
    const char* name;
    std::vector<unsigned> budgets;  ///< indexed by query, cycled
  };
  const std::vector<Schedule> schedules = {
      {"fixed-1", {1}},
      {"fixed-2", {2}},
      {"fixed-8", {8}},
      {"oscillating-1-8", {1, 8}},
      {"adversarial", {8, 1, 2, 8, 1, 1, 2, 8, 2}},
  };
  const size_t n = queries_.size();
  for (const NamedSearcher& searcher : AllSearchers(engine_, &pool_)) {
    const std::vector<KnnResult> expected = Sequential(searcher, 6);
    for (const Schedule& schedule : schedules) {
      SchedulerPolicy policy;
      policy.budget_override = [&schedule, n](size_t pending,
                                              unsigned /*capacity*/) {
        const size_t index = n - pending;  // queries run in order
        return schedule.budgets[index % schedule.budgets.size()];
      };
      SchedulerStats stats;
      const std::vector<KnnResult> actual = RunScheduled(
          searcher, queries_, 6, policy, &pool_, nullptr, &stats);
      ASSERT_EQ(actual.size(), n);
      EXPECT_EQ(stats.queries, n);
      for (size_t i = 0; i < n; ++i) {
        ExpectSameNeighbors(expected[i], actual[i],
                            searcher.name + "/" + schedule.name +
                                "/query " + std::to_string(i));
      }
    }
  }
}

/// The default adaptive policy (waves + widened tail) under various thread
/// caps also matches the sequential path for every searcher.
TEST_F(SchedulerTest, DefaultPolicyMatchesSequential) {
  for (const NamedSearcher& searcher : AllSearchers(engine_, &pool_)) {
    const std::vector<KnnResult> expected = Sequential(searcher, 5);
    for (const unsigned threads : {1u, 4u, 8u}) {
      SchedulerPolicy policy;
      policy.max_threads = threads;
      SchedulerStats stats;
      const std::vector<KnnResult> actual = RunScheduled(
          searcher, queries_, 5, policy, &pool_, nullptr, &stats);
      ASSERT_EQ(actual.size(), queries_.size());
      EXPECT_EQ(stats.queries, queries_.size());
      for (size_t i = 0; i < queries_.size(); ++i) {
        ExpectSameNeighbors(expected[i], actual[i],
                            searcher.name + "/threads=" +
                                std::to_string(threads) + "/query " +
                                std::to_string(i));
      }
    }
  }
}

/// An attached feature cache must never change results — cold pass, warm
/// pass, and the uncached sequential path all agree.
TEST_F(SchedulerTest, FeatureCacheDoesNotChangeResults) {
  FeatureCache cache(64);
  for (const NamedSearcher& searcher : AllSearchers(engine_, &pool_)) {
    const std::vector<KnnResult> expected = Sequential(searcher, 5);
    SchedulerPolicy policy;
    for (int pass = 0; pass < 2; ++pass) {
      const std::vector<KnnResult> actual =
          RunScheduled(searcher, queries_, 5, policy, &pool_, &cache);
      for (size_t i = 0; i < queries_.size(); ++i) {
        ExpectSameNeighbors(expected[i], actual[i],
                            searcher.name + "/pass " + std::to_string(pass) +
                                "/query " + std::to_string(i));
      }
    }
  }
  const FeatureCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);   // the warm pass actually hit
  EXPECT_GT(stats.misses, 0u);
}

TEST_F(SchedulerTest, GrantBudgetSplitsCapacityAcrossBacklog) {
  SchedulerPolicy policy;
  const NamedSearcher searcher = engine_.MakeSeqScan();
  AdaptiveScheduler scheduler(searcher, 3, policy, &pool_, nullptr);
  EXPECT_EQ(scheduler.Capacity(), 9u);  // 8 workers + caller
  // Deep backlog -> budget 1; lone query -> the whole capacity.
  EXPECT_EQ(scheduler.GrantBudget(100), 1u);
  EXPECT_EQ(scheduler.GrantBudget(1), 9u);
  EXPECT_EQ(scheduler.GrantBudget(3), 3u);

  SchedulerPolicy capped;
  capped.max_intra_workers = 2;
  capped.max_threads = 4;
  AdaptiveScheduler capped_scheduler(searcher, 3, capped, &pool_, nullptr);
  EXPECT_EQ(capped_scheduler.Capacity(), 4u);
  EXPECT_EQ(capped_scheduler.GrantBudget(1), 2u);
}

/// KnnBatch's single-query special case must honor intra-query
/// parallelism: the lone query gets the full adaptive budget instead of
/// silently running serial. (Observable via the `sched` trace node, which
/// records the granted worker count.)
TEST_F(SchedulerTest, SingleQueryBatchReceivesWideBudget) {
  if constexpr (!kObsEnabled) GTEST_SKIP() << "needs query traces";
  KnnOptions options;
  options.pool = &pool_;
  const NamedSearcher searcher = engine_.MakeHistogram(
      HistogramTable::Kind::k2D, 1, HistogramScan::kSorted, options);
  const std::vector<Trajectory> one = {queries_[0]};

  SchedulerPolicy policy;
  SchedulerStats stats;
  const std::vector<KnnResult> batch =
      RunScheduled(searcher, one, 4, policy, &pool_, nullptr, &stats);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.max_budget, 9u);  // whole dedicated pool + caller
  EXPECT_EQ(stats.widened_queries, 1u);

  ASSERT_NE(batch[0].trace, nullptr);
  bool found_sched = false;
  for (const QueryTrace::Node& node : batch[0].trace->nodes()) {
    if (std::string(node.name) == "sched") {
      found_sched = true;
      EXPECT_EQ(node.count, 9u);
    }
  }
  EXPECT_TRUE(found_sched);

  // And the answer matches the direct sequential call bit for bit.
  ExpectSameNeighbors(searcher.search(one[0], 4), batch[0], "single");
}

TEST_F(SchedulerTest, QuerySessionStreamsAndMatchesBatch) {
  const NamedSearcher searcher = AllSearchers(engine_, &pool_)[2];  // HSR
  const std::vector<KnnResult> expected = Sequential(searcher, 5);

  QuerySession::Options options;
  options.k = 5;
  options.pool = &pool_;
  QuerySession session(searcher, options);
  std::vector<QuerySession::Ticket> tickets;
  for (const Trajectory& q : queries_) tickets.push_back(session.Submit(q));
  EXPECT_EQ(session.submitted(), queries_.size());

  // Results retrievable out of submission order, each bit-identical.
  for (size_t i = tickets.size(); i-- > 0;) {
    ExpectSameNeighbors(expected[i], session.Result(tickets[i]),
                        "session query " + std::to_string(i));
  }
  session.Drain();
  EXPECT_EQ(session.pending(), 0u);
  EXPECT_EQ(session.stats().queries, queries_.size());
}

TEST_F(SchedulerTest, QuerySessionAdmitWatermarkRunsEagerly) {
  const NamedSearcher searcher = engine_.MakeSeqScan();
  QuerySession::Options options;
  options.k = 3;
  options.pool = &pool_;
  options.admit_watermark = 4;
  QuerySession session(searcher, options);
  for (size_t i = 0; i < queries_.size(); ++i) {
    session.Submit(queries_[i]);
    // Eager execution keeps the backlog below the watermark even though
    // nobody asked for a result yet.
    EXPECT_LT(session.pending(), 4u + queries_.size() - i);
  }
  EXPECT_LT(session.pending(), queries_.size());
  session.Drain();
  EXPECT_EQ(session.stats().queries, queries_.size());
}

TEST_F(SchedulerTest, EmptyBatchAndZeroK) {
  const NamedSearcher searcher = engine_.MakeSeqScan();
  SchedulerPolicy policy;
  EXPECT_TRUE(RunScheduled(searcher, {}, 3, policy, &pool_).empty());
  const std::vector<KnnResult> zero_k =
      RunScheduled(searcher, queries_, 0, policy, &pool_);
  for (const KnnResult& r : zero_k) EXPECT_TRUE(r.neighbors.empty());
}

TEST_F(SchedulerTest, PolicyValidationRejectsContradictions) {
  // Consistent policies pass, including every default.
  EXPECT_EQ(SchedulerPolicyError(SchedulerPolicy{}), "");
  {
    SchedulerPolicy p;
    p.budget_override = [](size_t, unsigned) { return 2u; };
    EXPECT_EQ(SchedulerPolicyError(p), "");  // max_fusion default stays auto-off
  }

  // budget_override forces per-query schedules; asking for fusion on top
  // is a contradiction, not a preference.
  SchedulerPolicy fused_override;
  fused_override.budget_override = [](size_t, unsigned) { return 2u; };
  fused_override.max_fusion = 4;
  EXPECT_NE(SchedulerPolicyError(fused_override), "");

  // An intra-query budget the thread cap can never grant.
  SchedulerPolicy narrow;
  narrow.max_intra_workers = 8;
  narrow.max_threads = 2;
  EXPECT_NE(SchedulerPolicyError(narrow), "");

  // QuerySession surfaces the mistake instead of silently clamping.
  const NamedSearcher searcher = engine_.MakeSeqScan();
  QuerySession::Options options;
  options.policy = narrow;
  options.pool = &pool_;
  EXPECT_THROW(QuerySession(searcher, options), std::invalid_argument);
}

}  // namespace
}  // namespace edr
