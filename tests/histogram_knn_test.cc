#include "pruning/histogram_knn.h"

#include <gtest/gtest.h>

#include <tuple>

#include "query/knn.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(HistogramKnnTest, NamesMatchPaperSymbols) {
  const TrajectoryDataset db = testutil::SmallDataset(41, 10);
  EXPECT_EQ(HistogramKnnSearcher(db, kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSorted)
                .name(),
            "HSR-2HE");
  EXPECT_EQ(HistogramKnnSearcher(db, kEps, HistogramTable::Kind::k2D, 3,
                                 HistogramScan::kSequential)
                .name(),
            "HSE-2H3E");
  EXPECT_EQ(HistogramKnnSearcher(db, kEps, HistogramTable::Kind::k1D, 1,
                                 HistogramScan::kSorted)
                .name(),
            "HSR-1HE");
}

using Config = std::tuple<HistogramTable::Kind, int, HistogramScan, uint64_t>;

class HistogramKnnLosslessTest : public ::testing::TestWithParam<Config> {};

TEST_P(HistogramKnnLosslessTest, MatchesSequentialScan) {
  const auto [kind, delta, scan, seed] = GetParam();
  const TrajectoryDataset db = testutil::SmallDataset(seed, 70, 6, 60);
  const HistogramKnnSearcher searcher(db, kEps, kind, delta, scan);
  for (const Trajectory& query : testutil::MakeQueries(db, seed ^ 0x5, 3)) {
    const KnnResult expected = SequentialScanKnn(db, query, 8, kEps);
    const KnnResult actual = searcher.Knn(query, 8);
    EXPECT_TRUE(SameKnnDistances(expected, actual)) << searcher.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistogramKnnLosslessTest,
    ::testing::Combine(::testing::Values(HistogramTable::Kind::k2D,
                                         HistogramTable::Kind::k1D),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(HistogramScan::kSequential,
                                         HistogramScan::kSorted),
                       ::testing::Values(700, 701)));

TEST(HistogramKnnTest, SortedScanNeverComputesMoreThanSequential) {
  // HSR visits candidates in ascending lower-bound order, so its set of
  // computed distances is a subset of HSE's (Section 4.3's argument).
  const TrajectoryDataset db = testutil::SmallDataset(42, 100, 6, 60);
  const HistogramKnnSearcher hse(db, kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSequential);
  const HistogramKnnSearcher hsr(db, kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSorted);
  size_t hse_total = 0;
  size_t hsr_total = 0;
  for (const Trajectory& query : testutil::MakeQueries(db, 43, 5)) {
    hse_total += hse.Knn(query, 10).stats.edr_computed;
    hsr_total += hsr.Knn(query, 10).stats.edr_computed;
  }
  EXPECT_LE(hsr_total, hse_total);
}

TEST(HistogramKnnTest, FineBinsPruneAtLeastAsMuchAsCoarse) {
  const TrajectoryDataset db = testutil::SmallDataset(44, 100, 6, 60);
  const HistogramKnnSearcher fine(db, kEps, HistogramTable::Kind::k2D, 1,
                                  HistogramScan::kSorted);
  const HistogramKnnSearcher coarse(db, kEps, HistogramTable::Kind::k2D, 4,
                                    HistogramScan::kSorted);
  size_t fine_total = 0;
  size_t coarse_total = 0;
  for (const Trajectory& query : testutil::MakeQueries(db, 45, 5)) {
    fine_total += fine.Knn(query, 10).stats.edr_computed;
    coarse_total += coarse.Knn(query, 10).stats.edr_computed;
  }
  EXPECT_LE(fine_total, coarse_total);
}

TEST(HistogramKnnTest, PrunesOnSeparatedData) {
  Rng rng(46);
  TrajectoryDataset db;
  const Trajectory base = testutil::RandomWalk(rng, 30, 0.2);
  for (int i = 0; i < 5; ++i) db.Add(base);
  for (int i = 0; i < 50; ++i) {
    Trajectory t = testutil::RandomWalk(rng, 30, 0.2);
    for (Point2& p : t.mutable_points()) p.x += 50.0;
    db.Add(std::move(t));
  }
  const HistogramKnnSearcher searcher(db, kEps, HistogramTable::Kind::k2D, 1,
                                      HistogramScan::kSorted);
  const KnnResult result = searcher.Knn(base, 3);
  EXPECT_TRUE(
      SameKnnDistances(SequentialScanKnn(db, base, 3, kEps), result));
  EXPECT_GT(result.stats.PruningPower(), 0.5);
}

}  // namespace
}  // namespace edr
