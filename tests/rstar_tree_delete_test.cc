// Deletion and bulk-loading tests for the R*-tree, including randomized
// insert/delete workloads cross-checked against a brute-force multiset.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.h"
#include "index/rstar_tree.h"

namespace edr {
namespace {

TEST(RStarTreeDeleteTest, DeleteFromTinyTree) {
  RStarTree tree;
  tree.Insert({1.0, 1.0}, 1);
  tree.Insert({2.0, 2.0}, 2);
  EXPECT_TRUE(tree.Delete({1.0, 1.0}, 1));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.SearchRange({0.5, 0.5, 1.5, 1.5}).empty());
  EXPECT_EQ(tree.SearchRange({1.5, 1.5, 2.5, 2.5}).size(), 1u);
  EXPECT_TRUE(tree.Validate());
}

TEST(RStarTreeDeleteTest, DeleteMissingReturnsFalse) {
  RStarTree tree;
  tree.Insert({1.0, 1.0}, 1);
  EXPECT_FALSE(tree.Delete({9.0, 9.0}, 1));     // Wrong point.
  EXPECT_FALSE(tree.Delete({1.0, 1.0}, 99));    // Wrong payload.
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RStarTreeDeleteTest, DeleteDistinguishesDuplicatePoints) {
  RStarTree tree;
  for (uint32_t v = 0; v < 5; ++v) tree.Insert({3.0, 3.0}, v);
  EXPECT_TRUE(tree.Delete({3.0, 3.0}, 2));
  auto hits = tree.SearchRange({3.0, 3.0, 3.0, 3.0});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint32_t>{0, 1, 3, 4}));
}

TEST(RStarTreeDeleteTest, DrainCompletely) {
  RStarTree tree(6);
  Rng rng(901);
  std::vector<Point2> points;
  for (uint32_t i = 0; i < 500; ++i) {
    const Point2 p{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    points.push_back(p);
    tree.Insert(p, i);
  }
  for (uint32_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Delete(points[i], i)) << i;
    ASSERT_TRUE(tree.Validate()) << "after deleting " << i;
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.SearchRange({-10, -10, 10, 10}).empty());
}

class RStarTreeMixedWorkloadTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RStarTreeMixedWorkloadTest, RandomInsertDeleteMatchesBruteForce) {
  Rng rng(GetParam());
  RStarTree tree(static_cast<int>(rng.UniformInt(4, 16)));
  std::vector<std::pair<Point2, uint32_t>> live;
  uint32_t next_value = 0;

  for (int op = 0; op < 1200; ++op) {
    const bool insert = live.empty() || rng.NextDouble() < 0.6;
    if (insert) {
      const Point2 p{rng.Uniform(-4, 4), rng.Uniform(-4, 4)};
      tree.Insert(p, next_value);
      live.push_back({p, next_value});
      ++next_value;
    } else {
      const size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      ASSERT_TRUE(tree.Delete(live[at].first, live[at].second));
      live.erase(live.begin() + static_cast<long>(at));
    }
    if (op % 100 == 99) {
      ASSERT_TRUE(tree.Validate()) << "op " << op;
      ASSERT_EQ(tree.size(), live.size());
      // Spot-check a range query against brute force.
      const Rect query = Rect::Around(
          {rng.Uniform(-4, 4), rng.Uniform(-4, 4)}, rng.Uniform(0.2, 2.0));
      std::vector<uint32_t> actual = tree.SearchRange(query);
      std::vector<uint32_t> expected;
      for (const auto& [p, v] : live) {
        if (query.Contains(p)) expected.push_back(v);
      }
      std::sort(actual.begin(), actual.end());
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(actual, expected) << "op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RStarTreeMixedWorkloadTest,
                         ::testing::Range<uint64_t>(910, 918));

TEST(RStarTreeBulkLoadTest, EmptyAndSingle) {
  const RStarTree empty = RStarTree::BulkLoad({});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.Validate());

  const RStarTree one = RStarTree::BulkLoad({{{1.0, 2.0}, 7}});
  EXPECT_EQ(one.size(), 1u);
  EXPECT_TRUE(one.Validate());
  EXPECT_EQ(one.SearchRange({0, 0, 2, 3}).size(), 1u);
}

class RStarTreeBulkLoadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RStarTreeBulkLoadTest, ValidAndQueryEquivalentToInsertion) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.UniformInt(2, 4000));
  const int capacity = static_cast<int>(rng.UniformInt(4, 24));
  std::vector<std::pair<Point2, uint32_t>> items;
  RStarTree inserted(capacity);
  for (int i = 0; i < n; ++i) {
    const Point2 p{rng.Uniform(-6, 6), rng.Uniform(-6, 6)};
    items.push_back({p, static_cast<uint32_t>(i)});
    inserted.Insert(p, static_cast<uint32_t>(i));
  }
  const RStarTree bulk = RStarTree::BulkLoad(std::move(items), capacity);
  ASSERT_EQ(bulk.size(), static_cast<size_t>(n));
  ASSERT_TRUE(bulk.Validate());
  // Bulk loading packs nodes full, so the tree is never taller.
  EXPECT_LE(bulk.height(), inserted.height());

  for (int trial = 0; trial < 20; ++trial) {
    const Rect query = Rect::Around(
        {rng.Uniform(-6, 6), rng.Uniform(-6, 6)}, rng.Uniform(0.1, 3.0));
    std::vector<uint32_t> a = bulk.SearchRange(query);
    std::vector<uint32_t> b = inserted.SearchRange(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RStarTreeBulkLoadTest,
                         ::testing::Range<uint64_t>(920, 930));

TEST(RStarTreeBulkLoadTest, DeleteWorksOnBulkLoadedTree) {
  Rng rng(931);
  std::vector<std::pair<Point2, uint32_t>> items;
  for (uint32_t i = 0; i < 300; ++i) {
    items.push_back({{rng.Uniform(-3, 3), rng.Uniform(-3, 3)}, i});
  }
  const std::vector<std::pair<Point2, uint32_t>> copy = items;
  RStarTree tree = RStarTree::BulkLoad(std::move(items), 8);
  for (uint32_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(tree.Delete(copy[i].first, copy[i].second));
  }
  EXPECT_EQ(tree.size(), 150u);
  EXPECT_TRUE(tree.Validate());
}

}  // namespace
}  // namespace edr
