#include "distance/euclidean.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace edr {
namespace {

Trajectory Seq(std::initializer_list<double> xs) {
  Trajectory t;
  for (const double x : xs) t.Append(x, 0.0);
  return t;
}

TEST(EuclideanTest, IdenticalTrajectoriesHaveZeroDistance) {
  const Trajectory t = Seq({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(EuclideanDistance(t, t), 0.0);
}

TEST(EuclideanTest, KnownValue) {
  const Trajectory a = Seq({0, 0});
  const Trajectory b = Seq({3, 4});
  // sqrt(3^2 + 4^2) = 5.
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
}

TEST(EuclideanTest, UsesBothDimensions) {
  Trajectory a;
  a.Append(0.0, 0.0);
  Trajectory b;
  b.Append(1.0, 1.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), std::sqrt(2.0));
}

TEST(EuclideanTest, DifferentLengthsAreUndefined) {
  const Trajectory a = Seq({1, 2, 3});
  const Trajectory b = Seq({1, 2});
  EXPECT_TRUE(std::isinf(EuclideanDistance(a, b)));
}

TEST(EuclideanTest, Symmetric) {
  Rng rng(3);
  Trajectory a;
  Trajectory b;
  for (int i = 0; i < 32; ++i) {
    a.Append(rng.Gaussian(), rng.Gaussian());
    b.Append(rng.Gaussian(), rng.Gaussian());
  }
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), EuclideanDistance(b, a));
}

TEST(SlidingEuclideanTest, EqualLengthsReduceToPlainEuclidean) {
  Rng rng(4);
  Trajectory a;
  Trajectory b;
  for (int i = 0; i < 20; ++i) {
    a.Append(rng.Gaussian(), rng.Gaussian());
    b.Append(rng.Gaussian(), rng.Gaussian());
  }
  EXPECT_DOUBLE_EQ(SlidingEuclideanDistance(a, b), EuclideanDistance(a, b));
}

TEST(SlidingEuclideanTest, FindsBestAlignment) {
  const Trajectory longer = Seq({9, 9, 1, 2, 3, 9, 9});
  const Trajectory shorter = Seq({1, 2, 3});
  // Perfect alignment exists at offset 2.
  EXPECT_DOUBLE_EQ(SlidingEuclideanDistance(longer, shorter), 0.0);
}

TEST(SlidingEuclideanTest, OrderOfArgumentsIrrelevant) {
  const Trajectory longer = Seq({5, 1, 2, 3, 7});
  const Trajectory shorter = Seq({1, 2, 4});
  EXPECT_DOUBLE_EQ(SlidingEuclideanDistance(longer, shorter),
                   SlidingEuclideanDistance(shorter, longer));
}

TEST(SlidingEuclideanTest, EmptyIsInfinite) {
  const Trajectory empty;
  const Trajectory t = Seq({1});
  EXPECT_TRUE(std::isinf(SlidingEuclideanDistance(empty, t)));
  EXPECT_TRUE(std::isinf(SlidingEuclideanDistance(t, empty)));
}

TEST(SlidingEuclideanTest, MinimumOverAllOffsets) {
  const Trajectory longer = Seq({0, 10, 0});
  const Trajectory shorter = Seq({1});
  // Offsets give |1-0|, |1-10|, |1-0|; min is 1.
  EXPECT_DOUBLE_EQ(SlidingEuclideanDistance(longer, shorter), 1.0);
}

}  // namespace
}  // namespace edr
