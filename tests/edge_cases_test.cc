// Degenerate-input robustness across the stack: empty databases, empty
// queries, k = 0, single-element trajectories, and duplicate-heavy data.

#include <gtest/gtest.h>

#include "data/simplify.h"
#include "query/engine.h"
#include "query/subtrajectory.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(EdgeCaseTest, EmptyDatabase) {
  TrajectoryDataset db;
  QueryEngine engine(db, kEps);
  Trajectory query({{0.0, 0.0}});
  EXPECT_TRUE(engine.SeqScan(query, 5).neighbors.empty());
  EXPECT_TRUE(engine.MakeQgram(QgramVariant::kMerge2D, 1)
                  .search(query, 5)
                  .neighbors.empty());
  EXPECT_TRUE(engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                                   HistogramScan::kSorted)
                  .search(query, 5)
                  .neighbors.empty());
  EXPECT_TRUE(engine.MakeNearTriangle(5).search(query, 5).neighbors.empty());
}

TEST(EdgeCaseTest, EmptyQueryAgainstRealDatabase) {
  const TrajectoryDataset db = testutil::SmallDataset(7001, 20, 3, 20);
  QueryEngine engine(db, kEps);
  const Trajectory empty;
  // EDR(empty, S) = |S| (Definition 2 base case): nearest = shortest.
  const KnnResult expected = engine.SeqScan(empty, 5);
  ASSERT_EQ(expected.neighbors.size(), 5u);
  for (const NamedSearcher& s :
       {engine.MakeQgram(QgramVariant::kMerge2D, 1),
        engine.MakeHistogram(HistogramTable::Kind::k1D, 1,
                             HistogramScan::kSorted),
        engine.MakeNearTriangle(5)}) {
    EXPECT_TRUE(SameKnnDistances(expected, s.search(empty, 5))) << s.name;
  }
}

TEST(EdgeCaseTest, KZeroReturnsNothing) {
  const TrajectoryDataset db = testutil::SmallDataset(7002, 10);
  QueryEngine engine(db, kEps);
  EXPECT_TRUE(engine.SeqScan(db[0], 0).neighbors.empty());
  CombinedOptions combo;
  combo.max_triangle = 3;
  EXPECT_TRUE(engine.Combined(combo).Knn(db[0], 0).neighbors.empty());
}

TEST(EdgeCaseTest, SingleElementTrajectories) {
  TrajectoryDataset db;
  for (int i = 0; i < 12; ++i) {
    db.Add(Trajectory({{static_cast<double>(i), 0.0}}));
  }
  QueryEngine engine(db, kEps);
  const KnnResult expected = engine.SeqScan(db[4], 3);
  CombinedOptions combo;
  combo.max_triangle = 4;
  EXPECT_TRUE(
      SameKnnDistances(expected, engine.Combined(combo).Knn(db[4], 3)));
  EXPECT_TRUE(SameKnnDistances(
      expected,
      engine.MakeQgram(QgramVariant::kRtree2D, 1).search(db[4], 3)));
}

TEST(EdgeCaseTest, AllIdenticalTrajectories) {
  Rng rng(7003);
  const Trajectory t = testutil::RandomWalk(rng, 15);
  TrajectoryDataset db;
  for (int i = 0; i < 10; ++i) db.Add(t);
  QueryEngine engine(db, kEps);
  const KnnResult r = engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                                           HistogramScan::kSorted)
                          .search(t, 5);
  ASSERT_EQ(r.neighbors.size(), 5u);
  for (const Neighbor& n : r.neighbors) EXPECT_EQ(n.distance, 0.0);
}

TEST(EdgeCaseTest, QueryLongerThanEverythingInDatabase) {
  Rng rng(7004);
  TrajectoryDataset db;
  for (int i = 0; i < 15; ++i) db.Add(testutil::RandomWalk(rng, 5));
  QueryEngine engine(db, kEps);
  const Trajectory query = testutil::RandomWalk(rng, 200);
  const KnnResult expected = engine.SeqScan(query, 4);
  CombinedOptions combo;
  combo.max_triangle = 5;
  EXPECT_TRUE(
      SameKnnDistances(expected, engine.Combined(combo).Knn(query, 4)));
}

TEST(EdgeCaseTest, SubtrajectoryWithDegenerateInputs) {
  EXPECT_EQ(BestSubtrajectoryMatch(Trajectory(), Trajectory(), kEps)
                .distance,
            0);
  const Trajectory one({{1.0, 1.0}});
  const SubtrajectoryMatch m = BestSubtrajectoryMatch(one, one, kEps);
  EXPECT_EQ(m.distance, 0);
}

TEST(EdgeCaseTest, SimplifyDegenerateInputs) {
  EXPECT_TRUE(SimplifyDouglasPeucker(Trajectory(), 0.5).empty());
  const Trajectory two({{0.0, 0.0}, {1.0, 1.0}});
  EXPECT_TRUE(SimplifyDouglasPeucker(two, 0.5) == two);
  EXPECT_TRUE(Downsample(Trajectory(), 3).empty());
}

TEST(EdgeCaseTest, ZeroEpsilonStillLossless) {
  // Epsilon 0: only exact coordinate equality matches; everything still
  // has to agree with the scan.
  const TrajectoryDataset db = testutil::SmallDataset(7005, 30, 3, 20);
  QueryEngine engine(db, 0.0);
  const KnnResult expected = engine.SeqScan(db[3], 5);
  CombinedOptions combo;
  combo.max_triangle = 5;
  EXPECT_TRUE(
      SameKnnDistances(expected, engine.Combined(combo).Knn(db[3], 5)));
}

}  // namespace
}  // namespace edr
