#include "obs/stage_counters.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "pruning/combined.h"
#include "pruning/cse.h"
#include "pruning/histogram_knn.h"
#include "pruning/lcss_knn.h"
#include "pruning/near_triangle.h"
#include "pruning/pruning3.h"
#include "pruning/qgram_knn.h"
#include "query/engine.h"
#include "query/knn.h"
#include "query/thread_pool.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;
constexpr size_t kDbSize = 300;
constexpr size_t kMaxTriangle = 20;

const TrajectoryDataset& Db() {
  static const TrajectoryDataset db =
      testutil::SmallDataset(515, kDbSize, 6, 40);
  return db;
}

ThreadPool& Pool() {
  static ThreadPool pool(4);
  return pool;
}

const PairwiseEdrMatrix& Matrix() {
  static const PairwiseEdrMatrix matrix =
      PairwiseEdrMatrix::Build(Db(), kEps, kMaxTriangle);
  return matrix;
}

// The conservation law every searcher must satisfy for every schedule:
// each visited candidate lands in exactly one bucket, and the visited +
// never-visited candidates cover the database.
void ExpectStagesConserve(const std::string& label, const KnnResult& result) {
  const StageCounters& s = result.stats.stages;
  if constexpr (kObsEnabled) {
    EXPECT_TRUE(s.Conserves(result.stats.db_size))
        << label << ": considered=" << s.considered
        << " qgram=" << s.qgram_pruned << " hist=" << s.histogram_pruned
        << " tri=" << s.triangle_pruned << " dp=" << s.dp_invoked
        << " not_visited=" << s.not_visited
        << " db_size=" << result.stats.db_size;
    // The stage decomposition must agree with the legacy scalar counter
    // the pruning-power metric is computed from.
    EXPECT_EQ(s.dp_invoked, result.stats.edr_computed) << label;
    EXPECT_LE(s.dp_early_abandoned, s.dp_invoked) << label;
    if (s.dp_invoked > 0) {
      EXPECT_GT(s.dp_cells, 0u) << label;
    }
    EXPECT_TRUE(JsonIsValid(s.ToJson())) << label << ": " << s.ToJson();
  } else {
    EXPECT_EQ(s.considered, 0u) << label;
    EXPECT_EQ(s.dp_invoked, 0u) << label;
    EXPECT_EQ(s.dp_cells, 0u) << label;
    EXPECT_EQ(result.trace, nullptr) << label;
  }
}

using KnnFn =
    std::function<KnnResult(const Trajectory&, size_t, const KnnOptions&)>;

// Runs one searcher at 1 and 4 workers and checks conservation plus the
// per-query trace for both schedules.
void ExpectConservationAcrossWorkers(const std::string& label,
                                     const KnnFn& knn) {
  const auto queries = testutil::MakeQueries(Db(), 516, 2);
  for (const Trajectory& query : queries) {
    for (const unsigned workers : {1u, 4u}) {
      KnnOptions options;
      options.intra_query_workers = workers;
      options.pool = &Pool();
      const KnnResult result = knn(query, 10, options);
      ExpectStagesConserve(label + " workers=" + std::to_string(workers),
                           result);
      if constexpr (kObsEnabled) {
        ASSERT_NE(result.trace, nullptr) << label;
        EXPECT_GT(result.trace->size(), 0u) << label;
        EXPECT_TRUE(JsonIsValid(result.trace->ToJson())) << label;
      }
    }
  }
}

TEST(ObsStageTest, SeqScanConserves) {
  const auto queries = testutil::MakeQueries(Db(), 517, 2);
  for (const bool early_abandon : {false, true}) {
    SeqScanOptions options;
    options.early_abandon = early_abandon;
    const KnnResult r = SequentialScanKnn(Db(), queries[0], 10, kEps, options);
    ExpectStagesConserve("SeqScan", r);
    if constexpr (kObsEnabled) {
      // The baseline visits and verifies everything.
      EXPECT_EQ(r.stats.stages.considered, Db().size());
      EXPECT_EQ(r.stats.stages.dp_invoked, Db().size());
      EXPECT_EQ(r.stats.stages.not_visited, 0u);
      if (!early_abandon) {
        EXPECT_EQ(r.stats.stages.dp_early_abandoned, 0u);
      }
      ASSERT_NE(r.trace, nullptr);
      EXPECT_GT(r.trace->PhaseSeconds("scan"), 0.0);
    }
  }
}

TEST(ObsStageTest, SeqScanRangeConserves) {
  const auto queries = testutil::MakeQueries(Db(), 518, 1);
  ExpectStagesConserve("SeqScanRange",
                       SequentialScanRange(Db(), queries[0], 15, kEps));
}

TEST(ObsStageTest, QgramConserves) {
  const QgramKnnSearcher ps2(Db(), kEps, /*q=*/1, QgramVariant::kMerge2D);
  ExpectConservationAcrossWorkers(
      "PS2", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return ps2.Knn(q, k, o);
      });
  if constexpr (kObsEnabled) {
    // The Q-gram searcher prunes via the match-count bucket only.
    const auto queries = testutil::MakeQueries(Db(), 519, 1);
    const KnnResult r = ps2.Knn(queries[0], 10);
    EXPECT_EQ(r.stats.stages.histogram_pruned, 0u);
    EXPECT_EQ(r.stats.stages.triangle_pruned, 0u);
  }
}

TEST(ObsStageTest, HistogramConserves) {
  const HistogramKnnSearcher hse(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSequential);
  ExpectConservationAcrossWorkers(
      "HSE", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return hse.Knn(q, k, o);
      });
  const HistogramKnnSearcher hsr(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSorted);
  ExpectConservationAcrossWorkers(
      "HSR", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return hsr.Knn(q, k, o);
      });
}

TEST(ObsStageTest, NearTriangleConservesAndSplitsPhases) {
  const NearTriangleSearcher ntr(Db(), kEps, Matrix());
  ExpectConservationAcrossWorkers(
      "NTR", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return ntr.Knn(q, k, o);
      });
  const auto queries = testutil::MakeQueries(Db(), 520, 1);
  const KnnResult r = ntr.Knn(queries[0], 10);
  // Satellite fix: the interleaved scan derives its filter/refine split
  // from the summed DP time instead of reporting filter = 0.
  EXPECT_GE(r.stats.filter_seconds, 0.0);
  EXPECT_GE(r.stats.refine_seconds, 0.0);
  EXPECT_NEAR(r.stats.filter_seconds + r.stats.refine_seconds,
              r.stats.elapsed_seconds, 1e-9);
  if constexpr (kObsEnabled) {
    EXPECT_GT(r.stats.refine_seconds, 0.0);
    ASSERT_NE(r.trace, nullptr);
    EXPECT_GT(r.trace->PhaseSeconds("dp"), 0.0);
  }
}

TEST(ObsStageTest, CseConservesAndSplitsPhases) {
  const CseSearcher cse(Db(), kEps, Matrix());
  ExpectConservationAcrossWorkers(
      "CSE", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return cse.Knn(q, k, o);
      });
  const auto queries = testutil::MakeQueries(Db(), 521, 1);
  const KnnResult r = cse.Knn(queries[0], 10);
  EXPECT_NEAR(r.stats.filter_seconds + r.stats.refine_seconds,
              r.stats.elapsed_seconds, 1e-9);
}

TEST(ObsStageTest, CombinedConserves) {
  CombinedOptions combined_options;
  combined_options.max_triangle = kMaxTriangle;
  const CombinedKnnSearcher combined(Db(), kEps, combined_options, Matrix());
  ExpectConservationAcrossWorkers(
      "2HPN", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return combined.Knn(q, k, o);
      });
}

TEST(ObsStageTest, LcssConserves) {
  const LcssKnnSearcher lcss(Db(), kEps, LcssFilter::kBoth);
  ExpectConservationAcrossWorkers(
      "LCSS-HP", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return lcss.Knn(q, k, o);
      });
}

TEST(ObsStageTest, RangeQueriesConserve) {
  const HistogramKnnSearcher hsr(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSorted);
  const NearTriangleSearcher ntr(Db(), kEps, Matrix());
  const auto queries = testutil::MakeQueries(Db(), 522, 2);
  for (const Trajectory& query : queries) {
    for (const int radius : {5, 15}) {
      ExpectStagesConserve("HSR.Range", hsr.Range(query, radius));
      ExpectStagesConserve("NTR.Range", ntr.Range(query, radius));
    }
  }
}

TEST(ObsStageTest, ZeroKConserves) {
  const QgramKnnSearcher ps2(Db(), kEps, /*q=*/1, QgramVariant::kMerge2D);
  const auto queries = testutil::MakeQueries(Db(), 523, 1);
  const KnnResult r = ps2.Knn(queries[0], 0);
  EXPECT_TRUE(r.neighbors.empty());
  if constexpr (kObsEnabled) {
    // k = 0 answers without visiting anyone; conservation still holds.
    EXPECT_TRUE(r.stats.stages.Conserves(r.stats.db_size));
    EXPECT_EQ(r.stats.stages.not_visited, Db().size());
  }
}

TEST(ObsStageTest, Knn3Conserves) {
  Rng rng(524);
  std::vector<Trajectory3> db3;
  for (size_t i = 0; i < 40; ++i) {
    Trajectory3 t;
    Point3 pos{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
    const size_t len = static_cast<size_t>(rng.UniformInt(5, 30));
    for (size_t j = 0; j < len; ++j) {
      t.Append(pos);
      pos.x += rng.Gaussian(0.0, 0.4);
      pos.y += rng.Gaussian(0.0, 0.4);
      pos.z += rng.Gaussian(0.0, 0.4);
    }
    db3.push_back(std::move(t));
  }
  ExpectStagesConserve("SeqScan3",
                       SequentialScanKnn3(db3, db3[3], 5, kEps));
  const Knn3Searcher searcher(db3, kEps);
  const KnnResult r = searcher.Knn(db3[7], 5);
  ExpectStagesConserve("Knn3", r);
  if constexpr (kObsEnabled) {
    ASSERT_NE(r.trace, nullptr);
    EXPECT_GT(r.trace->size(), 0u);
  }
}

TEST(ObsStageTest, WorkerShardsFoldIntoQueryTotal) {
  // Sharding may shift candidates *between* buckets (the shared k-th
  // distance lags under parallelism, so a stale threshold prunes less and
  // verifies more), but it never loses a candidate: the db-order scan
  // visits everyone at every worker count and the conservation law holds
  // for every schedule. Results stay bit-identical regardless (checked in
  // intra_query_test); the counters honestly report the schedule that ran.
  const HistogramKnnSearcher hse(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSequential);
  const auto queries = testutil::MakeQueries(Db(), 525, 2);
  for (const Trajectory& query : queries) {
    const KnnResult sequential = hse.Knn(query, 10);
    KnnOptions options;
    options.intra_query_workers = 4;
    options.pool = &Pool();
    const KnnResult parallel = hse.Knn(query, 10, options);
    if constexpr (kObsEnabled) {
      EXPECT_EQ(sequential.stats.stages.considered, Db().size());
      EXPECT_EQ(parallel.stats.stages.considered, Db().size());
      EXPECT_TRUE(parallel.stats.stages.Conserves(Db().size()));
      // The parallel run records one refine_worker span per slot.
      ASSERT_NE(parallel.trace, nullptr);
      size_t refine_workers = 0;
      for (const QueryTrace::Node& node : parallel.trace->nodes()) {
        if (std::string(node.name) == "refine_worker") ++refine_workers;
      }
      EXPECT_EQ(refine_workers, 4u);
    }
  }
}

TEST(ObsStageTest, StageCountersAddAndFinalize) {
  StageCounters a;
  a.Bump(&StageCounters::considered);
  a.Bump(&StageCounters::qgram_pruned);
  a.CountDp(10, 20);
  a.Bump(&StageCounters::considered);
  StageCounters b;
  b.Bump(&StageCounters::considered);
  b.Bump(&StageCounters::histogram_pruned);
  a.Add(b);
  a.FinalizeNotVisited(10);
  if constexpr (kObsEnabled) {
    EXPECT_EQ(a.considered, 3u);
    EXPECT_EQ(a.qgram_pruned, 1u);
    EXPECT_EQ(a.histogram_pruned, 1u);
    EXPECT_EQ(a.dp_invoked, 1u);
    EXPECT_EQ(a.dp_cells, 200u);
    EXPECT_EQ(a.not_visited, 7u);
    EXPECT_TRUE(a.Conserves(10));
    EXPECT_EQ(a.PrunedWithoutDp(), 9u);
  } else {
    EXPECT_EQ(a.considered, 0u);
    EXPECT_EQ(a.dp_cells, 0u);
  }
  EXPECT_TRUE(JsonIsValid(a.ToJson())) << a.ToJson();
}

TEST(ObsStageTest, KnnBatchReportsPoolDelta) {
  QueryEngine engine(Db(), kEps);
  const NamedSearcher seq = engine.MakeSeqScan();
  const auto queries = testutil::MakeQueries(Db(), 526, 4);
  ThreadPoolStats delta;
  const std::vector<KnnResult> batch =
      engine.KnnBatch(seq, queries, 5, /*threads=*/0, &delta);
  ASSERT_EQ(batch.size(), queries.size());
  // The overload must not change the answers.
  const std::vector<KnnResult> plain = engine.KnnBatch(seq, queries, 5);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(SameKnnDistances(plain[i], batch[i]));
  }
  EXPECT_EQ(delta.worker_items.size(),
            static_cast<size_t>(ThreadPool::Global().num_workers()) + 1);
  if constexpr (kObsEnabled) {
    // On a single-core host the global pool has no workers and the batch
    // runs inline (no job dispatched); with workers the whole batch goes
    // through the pool.
    if (ThreadPool::Global().num_workers() > 0) {
      EXPECT_EQ(delta.jobs, 1u);
      EXPECT_EQ(delta.items, queries.size());
      EXPECT_GT(delta.busy_seconds, 0.0);
    } else {
      EXPECT_EQ(delta.jobs, 0u);
      EXPECT_EQ(delta.items, 0u);
    }
  } else {
    EXPECT_EQ(delta.jobs, 0u);
    EXPECT_EQ(delta.items, 0u);
    EXPECT_EQ(delta.busy_seconds, 0.0);
  }
  EXPECT_EQ(ThreadPool::Global().QueueDepth(), 0u);
}

}  // namespace
}  // namespace edr
