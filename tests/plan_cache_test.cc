// Unit tests for the fused-plan cache: LRU hit/eviction behavior, the
// collision re-verification guard (forced through the test fingerprint
// hook — genuine 64-bit FNV collisions are impractical), counter
// semantics across Clear, and the type-erased GetOrBuild round trip.

#include "query/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace edr {
namespace {

using SparseList = FusedPlanCache::SparseList;

struct FakePlan {
  std::vector<int> bins;
};

SparseList MakeSparse(int seed) {
  SparseList out;
  for (int i = 0; i < 4; ++i) out.emplace_back(seed * 10 + i, i + 1);
  return out;
}

FakePlan BuildPlan(const std::vector<const SparseList*>& members) {
  FakePlan plan;
  for (const SparseList* m : members) {
    for (const auto& [bin, count] : *m) plan.bins.push_back(bin * count);
  }
  return plan;
}

TEST(PlanCacheTest, FingerprintSeparatesDistinctLists) {
  const SparseList a = MakeSparse(1);
  const SparseList b = MakeSparse(2);
  SparseList a_copy = a;
  EXPECT_EQ(SparseHistogramFingerprint(a), SparseHistogramFingerprint(a_copy));
  EXPECT_NE(SparseHistogramFingerprint(a), SparseHistogramFingerprint(b));
  // Same multiset, different order: positions are semantic for a plan
  // (the canonical member order is the caller's job), so the hash is
  // order-sensitive.
  SparseList reversed(a.rbegin(), a.rend());
  EXPECT_NE(SparseHistogramFingerprint(a),
            SparseHistogramFingerprint(reversed));
}

TEST(PlanCacheTest, HitReturnsSameplanAndCountsOnce) {
  FusedPlanCache cache(4);
  const SparseList a = MakeSparse(1);
  const SparseList b = MakeSparse(2);
  const std::vector<const SparseList*> members = {&a, &b};

  int builds = 0;
  const auto build = [&] {
    ++builds;
    return BuildPlan(members);
  };
  const std::shared_ptr<const FakePlan> first =
      cache.GetOrBuild<FakePlan>("cfg#f2d", members, build);
  const std::shared_ptr<const FakePlan> second =
      cache.GetOrBuild<FakePlan>("cfg#f2d", members, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());  // the very same cached object

  const FusedPlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.collisions, 0u);
}

TEST(PlanCacheTest, ConfigKeyAndMemberOrderPartitionEntries) {
  FusedPlanCache cache(8);
  const SparseList a = MakeSparse(1);
  const SparseList b = MakeSparse(2);
  const std::vector<const SparseList*> ab = {&a, &b};
  const std::vector<const SparseList*> ba = {&b, &a};

  int builds = 0;
  const auto count_build = [&] {
    ++builds;
    return FakePlan{};
  };
  cache.GetOrBuild<FakePlan>("cfg#f2d", ab, count_build);
  // Different config key (layout/kernel change): must miss.
  cache.GetOrBuild<FakePlan>("cfg#fx", ab, count_build);
  // Different member order: a different plan (side-B slots move), so the
  // key must differ too — canonicalization happens in the caller.
  cache.GetOrBuild<FakePlan>("cfg#f2d", ba, count_build);
  EXPECT_EQ(builds, 3);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(PlanCacheTest, LruEvictionDropsOldestFirst) {
  FusedPlanCache cache(2);
  const SparseList s1 = MakeSparse(1);
  const SparseList s2 = MakeSparse(2);
  const SparseList s3 = MakeSparse(3);
  const auto build = [] { return FakePlan{}; };

  cache.GetOrBuild<FakePlan>("cfg", {&s1}, build);
  cache.GetOrBuild<FakePlan>("cfg", {&s2}, build);
  // Touch s1 so s2 becomes the LRU victim.
  cache.GetOrBuild<FakePlan>("cfg", {&s1}, build);
  cache.GetOrBuild<FakePlan>("cfg", {&s3}, build);  // evicts s2

  FusedPlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);

  cache.GetOrBuild<FakePlan>("cfg", {&s1}, build);  // still resident
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.GetOrBuild<FakePlan>("cfg", {&s2}, build);  // evicted: rebuilds
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(PlanCacheTest, CollisionReVerificationServesMiss) {
  FusedPlanCache cache(4);
  // Force every member list onto one fingerprint: any two groups of equal
  // arity now collide, and only the stored-list verification tells them
  // apart.
  cache.SetFingerprintFunctionForTest([](const SparseList&) {
    return uint64_t{42};
  });
  const SparseList a = MakeSparse(1);
  const SparseList b = MakeSparse(2);

  int builds = 0;
  const auto build_a = [&] {
    ++builds;
    return FakePlan{{1}};
  };
  const auto build_b = [&] {
    ++builds;
    return FakePlan{{2}};
  };
  cache.GetOrBuild<FakePlan>("cfg", {&a}, build_a);
  const std::shared_ptr<const FakePlan> got =
      cache.GetOrBuild<FakePlan>("cfg", {&b}, build_b);
  EXPECT_EQ(builds, 2);  // the collision did NOT serve a's plan for b
  ASSERT_EQ(got->bins.size(), 1u);
  EXPECT_EQ(got->bins[0], 2);
  EXPECT_GE(cache.stats().collisions, 1u);

  // b's insert displaced a under the shared key (one entry per key), so a
  // repeat of `a` re-verifies, detects the mismatch again, and rebuilds —
  // a collision costs throughput, never correctness.
  const std::shared_ptr<const FakePlan> again =
      cache.GetOrBuild<FakePlan>("cfg", {&a}, build_a);
  EXPECT_EQ(builds, 3);
  ASSERT_EQ(again->bins.size(), 1u);
  EXPECT_EQ(again->bins[0], 1);
  EXPECT_GE(cache.stats().collisions, 2u);
}

TEST(PlanCacheTest, ClearDropsEntriesKeepsCounters) {
  FusedPlanCache cache(4);
  const SparseList a = MakeSparse(1);
  const auto build = [] { return FakePlan{}; };
  cache.GetOrBuild<FakePlan>("cfg", {&a}, build);
  cache.GetOrBuild<FakePlan>("cfg", {&a}, build);
  ASSERT_EQ(cache.stats().hits, 1u);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);    // counters survive
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.GetOrBuild<FakePlan>("cfg", {&a}, build);  // cold again
  EXPECT_EQ(cache.stats().misses, 2u);
}

}  // namespace
}  // namespace edr
