#include "data/simplify.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rng.h"
#include "distance/edr.h"
#include "query/knn.h"
#include "test_util.h"

namespace edr {
namespace {

TEST(SegmentDistanceTest, KnownGeometry) {
  EXPECT_DOUBLE_EQ(SegmentDistance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(SegmentDistance({5, 0}, {-1, 0}, {1, 0}), 4.0);  // Clamped.
  EXPECT_DOUBLE_EQ(SegmentDistance({3, 4}, {0, 0}, {0, 0}), 5.0);  // Degenerate.
  EXPECT_DOUBLE_EQ(SegmentDistance({0.5, 0}, {0, 0}, {1, 0}), 0.0);
}

TEST(DouglasPeuckerTest, CollinearPointsCollapseToEndpoints) {
  Trajectory t;
  for (int i = 0; i <= 10; ++i) t.Append(static_cast<double>(i), 0.0);
  const Trajectory s = SimplifyDouglasPeucker(t, 0.01);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], t[0]);
  EXPECT_EQ(s[1], t[10]);
}

TEST(DouglasPeuckerTest, KeepsSalientCorner) {
  Trajectory t({{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}});
  const Trajectory s = SimplifyDouglasPeucker(t, 0.1);
  // The corner (2,0) is far from the chord (0,0)-(2,2) and must survive.
  bool corner = false;
  for (const Point2& p : s) {
    if (p == (Point2{2, 0})) corner = true;
  }
  EXPECT_TRUE(corner);
  EXPECT_LT(s.size(), t.size());
}

TEST(DouglasPeuckerTest, ZeroToleranceKeepsEveryNonCollinearPoint) {
  Rng rng(601);
  const Trajectory t = testutil::RandomWalk(rng, 40);
  const Trajectory s = SimplifyDouglasPeucker(t, 0.0);
  EXPECT_EQ(s.size(), t.size());  // Random walk: nothing exactly collinear.
}

TEST(DouglasPeuckerTest, EveryKeptPointIsFromTheInput) {
  Rng rng(602);
  const Trajectory t = testutil::RandomWalk(rng, 60);
  const Trajectory s = SimplifyDouglasPeucker(t, 0.3);
  EXPECT_LE(s.size(), t.size());
  EXPECT_GE(s.size(), 2u);
  size_t cursor = 0;
  for (const Point2& p : s) {
    // Kept points appear in order in the original.
    while (cursor < t.size() && !(t[cursor] == p)) ++cursor;
    ASSERT_LT(cursor, t.size());
  }
}

TEST(DouglasPeuckerTest, ReconstructionErrorBounded) {
  // Every dropped point lies within tolerance of the simplified chord
  // chain in the Hausdorff sense (check against the nearest kept segment).
  Rng rng(603);
  const Trajectory t = testutil::RandomWalk(rng, 80);
  const double tolerance = 0.25;
  const Trajectory s = SimplifyDouglasPeucker(t, tolerance);
  for (const Point2& p : t) {
    double best = 1e300;
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      best = std::min(best, SegmentDistance(p, s[i], s[i + 1]));
    }
    EXPECT_LE(best, tolerance + 1e-9);
  }
}

TEST(DouglasPeuckerTest, PreservesLabelIdAndShortInputs) {
  Trajectory t({{0, 0}, {1, 1}}, 7);
  t.set_id(13);
  const Trajectory s = SimplifyDouglasPeucker(t, 0.5);
  EXPECT_TRUE(s == t);
  EXPECT_EQ(s.label(), 7);
  EXPECT_EQ(s.id(), 13u);
}

TEST(DownsampleTest, StrideAndEndpoint) {
  Trajectory t;
  for (int i = 0; i < 10; ++i) t.Append(static_cast<double>(i), 0.0);
  const Trajectory s = Downsample(t, 3);
  // Indices 0, 3, 6, 9.
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[3].x, 9.0);
  const Trajectory s2 = Downsample(t, 4);
  // Indices 0, 4, 8 plus final 9.
  ASSERT_EQ(s2.size(), 4u);
  EXPECT_DOUBLE_EQ(s2[3].x, 9.0);
}

TEST(DownsampleTest, StrideOneIsIdentity) {
  Rng rng(604);
  const Trajectory t = testutil::RandomWalk(rng, 20);
  EXPECT_TRUE(Downsample(t, 1) == t);
  EXPECT_TRUE(Downsample(t, 0) == t);
}

TEST(SimplifyAllTest, AppliesToWholeDataset) {
  const TrajectoryDataset db = testutil::SmallDataset(605, 20, 20, 40);
  const TrajectoryDataset s = SimplifyAll(db, 0.2);
  ASSERT_EQ(s.size(), db.size());
  size_t total_before = 0;
  size_t total_after = 0;
  for (size_t i = 0; i < db.size(); ++i) {
    total_before += db[i].size();
    total_after += s[i].size();
  }
  EXPECT_LT(total_after, total_before);
}

TEST(SimplifyTest, KnnRankingDegradesGracefully) {
  // Mild simplification must keep most of the EDR 5-NN set intact — the
  // property that makes simplification usable as a preprocessing step.
  const TrajectoryDataset db = testutil::SmallDataset(606, 60, 30, 60);
  const TrajectoryDataset simplified = SimplifyAll(db, 0.05);
  const Trajectory query = db[10];
  const KnnResult before = SequentialScanKnn(db, query, 5, 0.25);
  const KnnResult after =
      SequentialScanKnn(simplified, SimplifyDouglasPeucker(query, 0.05), 5,
                        0.25);
  size_t overlap = 0;
  for (const Neighbor& a : before.neighbors) {
    for (const Neighbor& b : after.neighbors) {
      if (a.id == b.id) ++overlap;
    }
  }
  EXPECT_GE(overlap, 3u);
}

}  // namespace
}  // namespace edr
