// Three-dimensional distance kernels: behavioural tests plus cross-checks
// against the 2-D kernels (a 3-D trajectory with constant z must behave
// exactly like its 2-D projection — the kernels share one generic DP).

#include "distance/distance3.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "core/trajectory.h"
#include "distance/dtw.h"
#include "distance/edr.h"
#include "distance/erp.h"
#include "distance/euclidean.h"
#include "distance/lcss.h"

namespace edr {
namespace {

std::pair<Trajectory, Trajectory3> RandomPair2D3D(Rng& rng, int min_len,
                                                  int max_len) {
  const int len = static_cast<int>(rng.UniformInt(min_len, max_len));
  Trajectory flat;
  Trajectory3 lifted;
  for (int i = 0; i < len; ++i) {
    const double x = rng.Gaussian();
    const double y = rng.Gaussian();
    flat.Append(x, y);
    lifted.Append(x, y, 0.0);  // Constant z.
  }
  return {std::move(flat), std::move(lifted)};
}

TEST(Distance3Test, ConstantZReducesToTwoDimensions) {
  Rng rng(301);
  for (int trial = 0; trial < 15; ++trial) {
    const auto [a2, a3] = RandomPair2D3D(rng, 2, 40);
    const auto [b2, b3] = RandomPair2D3D(rng, 2, 40);
    EXPECT_DOUBLE_EQ(SlidingEuclideanDistance(a3, b3),
                     SlidingEuclideanDistance(a2, b2));
    EXPECT_DOUBLE_EQ(DtwDistance(a3, b3), DtwDistance(a2, b2));
    EXPECT_NEAR(ErpDistance(a3, b3), ErpDistance(a2, b2), 1e-9);
    EXPECT_EQ(LcssLength(a3, b3, 0.25), LcssLength(a2, b2, 0.25));
    EXPECT_EQ(EdrDistance(a3, b3, 0.25), EdrDistance(a2, b2, 0.25));
  }
}

TEST(Distance3Test, ThirdDimensionActuallyMatters) {
  // Same x-y, divergent z: matches must break in 3-D.
  Trajectory3 a;
  Trajectory3 b;
  for (int i = 0; i < 10; ++i) {
    a.Append(0.1 * i, 0.0, 0.0);
    b.Append(0.1 * i, 0.0, 5.0);
  }
  EXPECT_EQ(EdrDistance(a, b, 0.25), 10);
  EXPECT_EQ(LcssLength(a, b, 0.25), 0u);
  EXPECT_GT(DtwDistance(a, b), 100.0);
}

TEST(Distance3Test, EdrBaseCasesAndIdentity) {
  const Trajectory3 t({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(EdrDistance(Trajectory3(), t, 0.5), 2);
  EXPECT_EQ(EdrDistance(t, Trajectory3(), 0.5), 2);
  EXPECT_EQ(EdrDistance(t, t, 0.1), 0);
}

TEST(Distance3Test, EuclideanRequiresEqualLengths) {
  const Trajectory3 a({{0, 0, 0}});
  const Trajectory3 b({{0, 0, 0}, {1, 1, 1}});
  EXPECT_TRUE(std::isinf(EuclideanDistance(a, b)));
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(Distance3Test, ErpGapAndEmpty) {
  Trajectory3 t;
  t.Append(3.0, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(ErpDistance(Trajectory3(), t), 5.0);  // |(3,0,4)|
  EXPECT_DOUBLE_EQ(ErpDistance(Trajectory3(), t, {3.0, 0.0, 4.0}), 0.0);
}

TEST(Distance3Test, SymmetryProperties) {
  Rng rng(302);
  for (int trial = 0; trial < 10; ++trial) {
    Trajectory3 a;
    Trajectory3 b;
    const int la = static_cast<int>(rng.UniformInt(2, 30));
    const int lb = static_cast<int>(rng.UniformInt(2, 30));
    for (int i = 0; i < la; ++i) {
      a.Append(rng.Gaussian(), rng.Gaussian(), rng.Gaussian());
    }
    for (int i = 0; i < lb; ++i) {
      b.Append(rng.Gaussian(), rng.Gaussian(), rng.Gaussian());
    }
    EXPECT_EQ(EdrDistance(a, b, 0.25), EdrDistance(b, a, 0.25));
    EXPECT_DOUBLE_EQ(DtwDistance(a, b), DtwDistance(b, a));
    EXPECT_NEAR(ErpDistance(a, b), ErpDistance(b, a), 1e-9);
    EXPECT_EQ(LcssLength(a, b, 0.25), LcssLength(b, a, 0.25));
  }
}

TEST(Distance3Test, BandedAndBoundedVariantsConsistent) {
  Rng rng(303);
  for (int trial = 0; trial < 10; ++trial) {
    Trajectory3 a;
    Trajectory3 b;
    for (int i = 0; i < 25; ++i) {
      a.Append(rng.Gaussian(), rng.Gaussian(), rng.Gaussian());
      b.Append(rng.Gaussian(), rng.Gaussian(), rng.Gaussian());
    }
    const int full = EdrDistance(a, b, 0.25);
    EXPECT_EQ(EdrDistanceBanded(a, b, 0.25, -1), full);
    EXPECT_GE(EdrDistanceBanded(a, b, 0.25, 2), full);
    EXPECT_EQ(EdrDistanceBounded(a, b, 0.25, full), full);
    const int abandoned = EdrDistanceBounded(a, b, 0.25, full - 1);
    if (full > 0) {
      EXPECT_GT(abandoned, full - 1);
      EXPECT_LE(abandoned, full);
    }
    EXPECT_GE(DtwDistanceBanded(a, b, 3) + 1e-9, DtwDistance(a, b));
    EXPECT_LE(LcssLengthBanded(a, b, 0.25, 3), LcssLength(a, b, 0.25));
    EXPECT_GE(ErpDistanceBanded(a, b, 3) + 1e-9, ErpDistance(a, b));
  }
}

TEST(Distance3Test, EdrRobustToOutlierLikeTwoD) {
  // The same Section 2 story in 3-D: one massive glitch costs one edit.
  Trajectory3 clean;
  Trajectory3 noisy;
  for (int i = 0; i < 8; ++i) {
    clean.Append(0.1 * i, 0.2 * i, -0.1 * i);
    noisy.Append(0.1 * i, 0.2 * i, -0.1 * i);
  }
  noisy[4] = {100.0, 100.0, 100.0};
  EXPECT_EQ(EdrDistance(clean, noisy, 0.25), 1);
  EXPECT_GT(DtwDistance(clean, noisy), 10000.0);
}

TEST(Distance3Test, LcssDistanceForm) {
  const Trajectory3 a({{0, 0, 0}, {1, 1, 1}});
  EXPECT_DOUBLE_EQ(LcssDistance(a, a, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(LcssDistance(a, Trajectory3(), 0.1), 1.0);
}

}  // namespace
}  // namespace edr
