#include "pruning/pruning3.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.h"
#include "distance/distance3.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

Trajectory3 RandomWalk3(Rng& rng, size_t length, double step = 0.4) {
  Trajectory3 t;
  Point3 pos{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
  for (size_t i = 0; i < length; ++i) {
    t.Append(pos);
    pos.x += rng.Gaussian(0.0, step);
    pos.y += rng.Gaussian(0.0, step);
    pos.z += rng.Gaussian(0.0, step);
  }
  return t;
}

std::vector<Trajectory3> SmallDb3(uint64_t seed, size_t count = 50,
                                  size_t min_len = 5, size_t max_len = 40) {
  Rng rng(seed);
  std::vector<Trajectory3> db;
  for (size_t i = 0; i < count; ++i) {
    db.push_back(RandomWalk3(
        rng, static_cast<size_t>(rng.UniformInt(
                 static_cast<int64_t>(min_len),
                 static_cast<int64_t>(max_len)))));
  }
  return db;
}

TEST(SequentialScan3Test, FindsSelfAndSortsAscending) {
  const std::vector<Trajectory3> db = SmallDb3(1);
  const KnnResult r = SequentialScanKnn3(db, db[7], 5, kEps);
  ASSERT_EQ(r.neighbors.size(), 5u);
  EXPECT_EQ(r.neighbors[0].id, 7u);
  EXPECT_EQ(r.neighbors[0].distance, 0.0);
  for (size_t i = 1; i < r.neighbors.size(); ++i) {
    EXPECT_LE(r.neighbors[i - 1].distance, r.neighbors[i].distance);
  }
}

class Pruning3BoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Pruning3BoundTest, HistogramBoundNeverExceedsEdr) {
  const std::vector<Trajectory3> db = SmallDb3(GetParam(), 16);
  const Knn3Searcher searcher(db, kEps);
  for (size_t i = 0; i < db.size(); i += 2) {
    for (uint32_t j = 0; j < db.size(); ++j) {
      EXPECT_LE(searcher.HistogramLowerBound(db[i], j),
                EdrDistance(db[i], db[j], kEps))
          << i << "," << j;
    }
  }
}

TEST_P(Pruning3BoundTest, MatchCountSatisfiesTheorem1) {
  // count >= max(m, n) - EDR in three dimensions.
  const std::vector<Trajectory3> db = SmallDb3(GetParam() ^ 0x9, 14);
  const Knn3Searcher searcher(db, kEps);
  for (size_t i = 0; i < db.size(); i += 2) {
    for (uint32_t j = 0; j < db.size(); ++j) {
      const long edr = EdrDistance(db[i], db[j], kEps);
      const long floor_matches =
          static_cast<long>(std::max(db[i].size(), db[j].size())) - edr;
      EXPECT_GE(static_cast<long>(searcher.MatchCount(db[i], j)),
                floor_matches)
          << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pruning3BoundTest,
                         ::testing::Range<uint64_t>(5000, 5008));

class Knn3LosslessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Knn3LosslessTest, MatchesSequentialScan) {
  std::vector<Trajectory3> db = SmallDb3(GetParam(), 70, 5, 50);
  const Knn3Searcher searcher(db, kEps);
  Rng rng(GetParam() ^ 0xAB);
  for (int trial = 0; trial < 3; ++trial) {
    Trajectory3 query = db[(trial * 11) % db.size()];
    const size_t at = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(query.size()) - 1));
    query[at] = {query[at].x + rng.Gaussian(0.0, 2.0), query[at].y,
                 query[at].z};
    const KnnResult expected = SequentialScanKnn3(db, query, 8, kEps);
    const KnnResult actual = searcher.Knn(query, 8);
    EXPECT_TRUE(SameKnnDistances(expected, actual));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Knn3LosslessTest,
                         ::testing::Range<uint64_t>(5100, 5110));

TEST(Knn3Test, PrunesOnClusteredData) {
  Rng rng(5200);
  std::vector<Trajectory3> db;
  const Trajectory3 base = RandomWalk3(rng, 30, 0.2);
  for (int i = 0; i < 5; ++i) db.push_back(base);
  for (int i = 0; i < 60; ++i) {
    Trajectory3 t = RandomWalk3(rng, 30, 0.2);
    for (Point3& p : t.mutable_points()) p.z += 40.0;  // Far in z only.
    db.push_back(std::move(t));
  }
  const Knn3Searcher searcher(db, kEps);
  const KnnResult result = searcher.Knn(base, 3);
  EXPECT_TRUE(SameKnnDistances(SequentialScanKnn3(db, base, 3, kEps),
                               result));
  EXPECT_GT(result.stats.PruningPower(), 0.5);
}

TEST(Knn3Test, ThirdDimensionParticipatesInBounds) {
  // Two trajectories identical in x-y, far apart in z: the 3-D histogram
  // bound must see them as distant (a 2-D bound would not).
  Rng rng(5300);
  Trajectory3 a = RandomWalk3(rng, 20, 0.2);
  Trajectory3 b = a;
  for (Point3& p : b.mutable_points()) p.z += 10.0;
  std::vector<Trajectory3> db = {a, b};
  const Knn3Searcher searcher(db, kEps);
  EXPECT_EQ(searcher.HistogramLowerBound(a, 0), 0);
  EXPECT_EQ(searcher.HistogramLowerBound(a, 1), 20);
  EXPECT_EQ(searcher.MatchCount(a, 1), 0u);
}

}  // namespace
}  // namespace edr
