#ifndef EDR_TESTS_TEST_UTIL_H_
#define EDR_TESTS_TEST_UTIL_H_

#include <vector>

#include "core/dataset.h"
#include "core/rng.h"
#include "core/trajectory.h"

namespace edr {
namespace testutil {

/// A random-walk trajectory with correlated steps (more realistic and more
/// compressible by the filters than white noise).
inline Trajectory RandomWalk(Rng& rng, size_t length, double step = 0.4) {
  Trajectory t;
  Point2 pos{rng.Gaussian(), rng.Gaussian()};
  for (size_t i = 0; i < length; ++i) {
    t.Append(pos);
    pos.x += rng.Gaussian(0.0, step);
    pos.y += rng.Gaussian(0.0, step);
  }
  return t;
}

/// A small normalized variable-length dataset for losslessness tests.
inline TrajectoryDataset SmallDataset(uint64_t seed, size_t count = 60,
                                      size_t min_len = 10,
                                      size_t max_len = 50) {
  Rng rng(seed);
  TrajectoryDataset db("test");
  for (size_t i = 0; i < count; ++i) {
    const size_t len = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(min_len), static_cast<int64_t>(max_len)));
    db.Add(RandomWalk(rng, len));
  }
  db.NormalizeAll();
  return db;
}

/// Query trajectories related to (but not identical with) dataset members:
/// dataset members with a few perturbed elements, plus fresh walks.
inline std::vector<Trajectory> MakeQueries(const TrajectoryDataset& db,
                                           uint64_t seed, size_t count = 5) {
  Rng rng(seed);
  std::vector<Trajectory> queries;
  for (size_t i = 0; i < count && i < db.size(); ++i) {
    Trajectory q = db[(i * 7) % db.size()];
    if (!q.empty()) {
      const size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(q.size()) - 1));
      q[at] = {q[at].x + rng.Gaussian(0.0, 2.0),
               q[at].y + rng.Gaussian(0.0, 2.0)};
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace testutil
}  // namespace edr

#endif  // EDR_TESTS_TEST_UTIL_H_
