#include "eval/linkage.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "distance/edr.h"
#include "test_util.h"

namespace edr {
namespace {

TEST(DistanceMatrixTest, SymmetricStorage) {
  DistanceMatrix m(3);
  m.set(0, 2, 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(ComputeDistanceMatrixTest, AppliesFunction) {
  Rng rng(91);
  const Trajectory a = testutil::RandomWalk(rng, 10);
  const Trajectory b = testutil::RandomWalk(rng, 12);
  const std::vector<const Trajectory*> items = {&a, &b};
  const DistanceMatrix m = ComputeDistanceMatrix(
      items, [](const Trajectory& x, const Trajectory& y) {
        return static_cast<double>(EdrDistance(x, y, 0.25));
      });
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1),
                   static_cast<double>(EdrDistance(a, b, 0.25)));
}

TEST(CompleteLinkageTest, TwoObviousClusters) {
  // Items 0-2 mutually close, 3-5 mutually close, the groups far apart.
  DistanceMatrix m(6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = i + 1; j < 6; ++j) {
      const bool same_group = (i < 3) == (j < 3);
      m.set(i, j, same_group ? 1.0 : 100.0);
    }
  }
  const std::vector<int> clusters = CompleteLinkageClusters(m, 2);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[1], clusters[2]);
  EXPECT_EQ(clusters[3], clusters[4]);
  EXPECT_EQ(clusters[4], clusters[5]);
  EXPECT_NE(clusters[0], clusters[3]);
}

TEST(CompleteLinkageTest, CompleteLinkageUsesMaxNotMin) {
  // Single linkage would chain 0-1-2 together (0 and 1 close, 1 and 2
  // close); complete linkage must not, because 0 and 2 are very far, and
  // 3 is moderately close to everything.
  DistanceMatrix m(4);
  m.set(0, 1, 1.0);
  m.set(1, 2, 1.0);
  m.set(0, 2, 50.0);
  m.set(0, 3, 10.0);
  m.set(1, 3, 10.0);
  m.set(2, 3, 10.0);
  const std::vector<int> clusters = CompleteLinkageClusters(m, 2);
  // First merge: {0,1} (or {1,2}). The complete-linkage distance of the
  // merged pair to the remaining singleton of the chain is 50, so the
  // chain is NOT completed; the remaining items join via the 10s.
  EXPECT_FALSE(clusters[0] == clusters[1] && clusters[1] == clusters[2]);
}

TEST(CompleteLinkageTest, KOneMergesEverything) {
  DistanceMatrix m(4);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = i + 1; j < 4; ++j) m.set(i, j, 1.0 + double(i + j));
  const std::vector<int> clusters = CompleteLinkageClusters(m, 1);
  for (const int c : clusters) EXPECT_EQ(c, 0);
}

TEST(CompleteLinkageTest, KEqualsNLeavesSingletons) {
  DistanceMatrix m(3);
  m.set(0, 1, 1.0);
  m.set(0, 2, 2.0);
  m.set(1, 2, 3.0);
  const std::vector<int> clusters = CompleteLinkageClusters(m, 3);
  EXPECT_NE(clusters[0], clusters[1]);
  EXPECT_NE(clusters[1], clusters[2]);
  EXPECT_NE(clusters[0], clusters[2]);
}

TEST(CompleteLinkageTest, EmptyMatrix) {
  DistanceMatrix m(0);
  EXPECT_TRUE(CompleteLinkageClusters(m, 2).empty());
}

}  // namespace
}  // namespace edr
