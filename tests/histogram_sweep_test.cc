#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"
#include "pruning/histogram.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

/// A dataset large enough (> 1000 trajectories) that the sweep crosses
/// several cache blocks and exercises remainder lanes of every SIMD loop.
TrajectoryDataset LargeDataset(uint64_t seed, size_t count) {
  Rng rng(seed);
  TrajectoryDataset db("sweep");
  for (size_t i = 0; i < count; ++i) {
    // Lengths 1..40, deliberately including tiny trajectories.
    const size_t len = static_cast<size_t>(rng.UniformInt(1, 40));
    db.Add(testutil::RandomWalk(rng, len));
  }
  db.NormalizeAll();
  return db;
}

void ExpectSweepMatchesPerRow(const HistogramTable& table,
                              const TrajectoryDataset& db,
                              const std::vector<Trajectory>& queries) {
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const HistogramTable::QueryHistogram qh =
        table.MakeQueryHistogram(queries[qi]);
    std::vector<int> sweep;
    table.FastLowerBoundSweep(qh, &sweep);
    std::vector<int> scalar;
    table.FastLowerBoundSweepScalar(qh, &scalar);
    ASSERT_EQ(sweep.size(), db.size());
    ASSERT_EQ(scalar.size(), db.size());
    for (uint32_t id = 0; id < db.size(); ++id) {
      const int per_row = table.FastLowerBound(qh, id);
      ASSERT_EQ(sweep[id], per_row) << "query " << qi << " id " << id;
      ASSERT_EQ(scalar[id], per_row) << "query " << qi << " id " << id;
    }
  }
}

TEST(HistogramSweepTest, SweepEqualsPerRowBound2D) {
  const TrajectoryDataset db = LargeDataset(901, 1200);
  const HistogramTable table(db, kEps, HistogramTable::Kind::k2D, 1);
  ExpectSweepMatchesPerRow(table, db, testutil::MakeQueries(db, 902, 6));
}

TEST(HistogramSweepTest, SweepEqualsPerRowBound1D) {
  const TrajectoryDataset db = LargeDataset(903, 1200);
  const HistogramTable table(db, kEps, HistogramTable::Kind::k1D, 1);
  ExpectSweepMatchesPerRow(table, db, testutil::MakeQueries(db, 904, 6));
}

TEST(HistogramSweepTest, SweepEqualsPerRowBoundCoarseDelta) {
  const TrajectoryDataset db = LargeDataset(905, 1024);  // exact block size
  const HistogramTable table(db, kEps, HistogramTable::Kind::k2D, 4);
  ExpectSweepMatchesPerRow(table, db, testutil::MakeQueries(db, 906, 4));
}

TEST(HistogramSweepTest, SweepNeverExceedsExactBoundOrEdr) {
  // Spot-check soundness on a smaller set: the fast bound must never
  // exceed the exact transport bound (which itself lower-bounds EDR).
  const TrajectoryDataset db = LargeDataset(907, 64);
  const HistogramTable table(db, kEps, HistogramTable::Kind::k2D, 1);
  const std::vector<Trajectory> queries = testutil::MakeQueries(db, 908, 3);
  for (const Trajectory& q : queries) {
    const HistogramTable::QueryHistogram qh = table.MakeQueryHistogram(q);
    std::vector<int> sweep;
    table.FastLowerBoundSweep(qh, &sweep);
    for (uint32_t id = 0; id < db.size(); ++id) {
      EXPECT_LE(sweep[id], table.LowerBound(qh, id)) << id;
    }
  }
}

TEST(HistogramSweepTest, EmptyQueryAndShortTrajectories) {
  Rng rng(909);
  TrajectoryDataset db("edge");
  db.Add(testutil::RandomWalk(rng, 1));
  db.Add(testutil::RandomWalk(rng, 2));
  db.Add(testutil::RandomWalk(rng, 30));
  db.NormalizeAll();
  const HistogramTable table(db, kEps, HistogramTable::Kind::k2D, 1);

  const Trajectory empty;
  const HistogramTable::QueryHistogram qh = table.MakeQueryHistogram(empty);
  std::vector<int> sweep;
  table.FastLowerBoundSweep(qh, &sweep);
  ASSERT_EQ(sweep.size(), db.size());
  for (uint32_t id = 0; id < db.size(); ++id) {
    // An empty query cannot match anything: the bound is |S| exactly.
    EXPECT_EQ(sweep[id], static_cast<int>(db[id].size()));
    EXPECT_EQ(sweep[id], table.FastLowerBound(qh, id));
  }
}

}  // namespace
}  // namespace edr
