// End-to-end tests exercising the full pipeline the benchmarks use:
// generate -> corrupt -> normalize -> build engine -> query with every
// method -> certify against ground truth, plus a miniature version of the
// paper's efficacy experiments.

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/noise.h"
#include "distance/distance.h"
#include "eval/classification.h"
#include "eval/clustering_eval.h"
#include "eval/metrics.h"
#include "query/engine.h"

namespace edr {
namespace {

TEST(IntegrationTest, FullRetrievalPipelineAllMethodsLossless) {
  RandomWalkOptions options;
  options.count = 120;
  options.min_length = 20;
  options.max_length = 90;
  options.seed = 777;
  TrajectoryDataset db = GenRandomWalk(options);
  db.NormalizeAll();
  const double eps = db.SuggestedEpsilon();
  ASSERT_NEAR(eps, 0.25, 0.01);

  QueryEngine engine(db, eps);
  const std::vector<Trajectory> queries = SampleQueries(db, 4);
  const std::vector<KnnResult> gt = RunGroundTruth(engine, queries, 20);
  const double base = MeanSeconds(gt);

  std::vector<NamedSearcher> searchers;
  searchers.push_back(engine.MakeSeqScan(true));
  for (const QgramVariant v :
       {QgramVariant::kRtree2D, QgramVariant::kBtree1D,
        QgramVariant::kMerge2D, QgramVariant::kMerge1D}) {
    searchers.push_back(engine.MakeQgram(v, 1));
  }
  searchers.push_back(engine.MakeNearTriangle(40));
  for (const int delta : {1, 2}) {
    searchers.push_back(engine.MakeHistogram(HistogramTable::Kind::k2D,
                                             delta, HistogramScan::kSorted));
  }
  searchers.push_back(engine.MakeHistogram(HistogramTable::Kind::k1D, 1,
                                           HistogramScan::kSorted));
  for (const auto& order : AllPruneOrders()) {
    CombinedOptions combo;
    combo.order = order;
    combo.max_triangle = 40;
    searchers.push_back(engine.MakeCombined(combo));
  }

  for (const NamedSearcher& s : searchers) {
    const WorkloadResult r = RunWorkload(s, queries, 20, &gt, base);
    EXPECT_TRUE(r.lossless) << s.name;
  }
}

TEST(IntegrationTest, EfficacyPipelineEdrBeatsEuclideanUnderNoise) {
  // Miniature Table 2: corrupt a labeled dataset with noise + shifts and
  // compare leave-one-out error of EDR vs Euclidean.
  TrajectoryDataset base = GenAslLike(5, 4, 31);
  NoiseOptions noise;
  TimeShiftOptions shift;
  double edr_error_sum = 0.0;
  double eu_error_sum = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    TrajectoryDataset corrupted = CorruptDataset(base, noise, shift, seed);
    corrupted.NormalizeAll();
    DistanceOptions opts;
    opts.epsilon = corrupted.SuggestedEpsilon();
    edr_error_sum +=
        LeaveOneOutError(corrupted, MakeDistance(DistanceKind::kEdr, opts));
    eu_error_sum += LeaveOneOutError(
        corrupted, MakeDistance(DistanceKind::kEuclidean, opts));
  }
  EXPECT_LE(edr_error_sum, eu_error_sum);
}

TEST(IntegrationTest, EfficacyPipelineClusteringOnCleanData) {
  // Miniature Table 1: on clean class-structured data, EDR clusters class
  // pairs correctly for most pairs.
  TrajectoryDataset db = GenCameraMouseLike(3, 71);
  db.NormalizeAll();
  DistanceOptions opts;
  opts.epsilon = db.SuggestedEpsilon();
  const ClassPairClusteringResult r = EvaluateClusteringByClassPairs(
      db, MakeDistance(DistanceKind::kEdr, opts));
  EXPECT_EQ(r.total_pairs, 10u);
  EXPECT_GE(r.correct_pairs, 8u);
}

TEST(IntegrationTest, EnginesOnRealishDatasets) {
  // Smoke the full engine on each generator family at small scale.
  std::vector<TrajectoryDataset> datasets;
  datasets.push_back(GenAslLike(5, 6, 1));
  datasets.push_back(GenKungfuLike(25, 64, 2));
  datasets.push_back(GenSlipLike(25, 50, 3));
  datasets.push_back(GenNhlLike(30, 20, 60, 4));
  datasets.push_back(GenMixedLike(30, 20, 80, 5));
  for (TrajectoryDataset& db : datasets) {
    db.NormalizeAll();
    QueryEngine engine(db, 0.25);
    const std::vector<Trajectory> queries = SampleQueries(db, 2);
    const std::vector<KnnResult> gt = RunGroundTruth(engine, queries, 5);
    CombinedOptions combo;
    combo.histogram_kind = HistogramTable::Kind::k1D;
    combo.max_triangle = 10;
    const WorkloadResult r =
        RunWorkload(engine.MakeCombined(combo), queries, 5, &gt, 0.0);
    EXPECT_TRUE(r.lossless) << db.name();
  }
}

}  // namespace
}  // namespace edr
