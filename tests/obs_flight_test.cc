#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "data/generators.h"
#include "obs/http_endpoint.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "query/engine.h"
#include "query/scheduler.h"
#include "query/thread_pool.h"

namespace edr {
namespace {

FlightRecord MakeRecord(double latency_seconds) {
  FlightRecord r;
  r.searcher = "test";
  r.latency_seconds = latency_seconds;
  r.filter_seconds = latency_seconds * 0.25;
  r.refine_seconds = latency_seconds * 0.75;
  r.db_size = 100;
  r.edr_computed = 10;
  return r;
}

TEST(ObsFlightTest, PublishAssignsSequentialIds) {
  FlightRecorder recorder;
  const uint64_t a = recorder.Publish(MakeRecord(1e-3));
  const uint64_t b = recorder.Publish(MakeRecord(2e-3));
  if constexpr (kObsEnabled) {
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(recorder.published(), 2u);
  } else {
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(recorder.published(), 0u);
    EXPECT_TRUE(recorder.TopSlowest().empty());
    EXPECT_TRUE(recorder.Recent().empty());
  }
}

TEST(ObsFlightTest, TopSlowestRetainsTheTail) {
  FlightRecorder::Options options;
  options.top_slowest = 4;
  FlightRecorder recorder(options);
  // Ascending latencies: the top list must end up holding the last 4.
  for (int i = 1; i <= 32; ++i) {
    recorder.Publish(MakeRecord(static_cast<double>(i) * 1e-3));
  }
  if constexpr (!kObsEnabled) return;
  const std::vector<FlightRecord> top = recorder.TopSlowest();
  ASSERT_EQ(top.size(), 4u);
  // Slowest first, strictly the four largest latencies.
  EXPECT_NEAR(top[0].latency_seconds, 32e-3, 1e-9);
  EXPECT_NEAR(top[3].latency_seconds, 29e-3, 1e-9);
  EXPECT_TRUE(std::is_sorted(top.begin(), top.end(),
                             [](const FlightRecord& a, const FlightRecord& b) {
                               return a.latency_seconds > b.latency_seconds;
                             }));
}

TEST(ObsFlightTest, TopSlowestSurvivesRingLapping) {
  FlightRecorder::Options options;
  options.ring_capacity = 4;
  options.top_slowest = 2;
  FlightRecorder recorder(options);
  recorder.Publish(MakeRecord(0.5));  // Slow outlier, published early.
  for (int i = 0; i < 64; ++i) recorder.Publish(MakeRecord(1e-4));
  if constexpr (!kObsEnabled) return;
  // The ring lapped the outlier long ago; tail retention still holds it.
  const std::vector<FlightRecord> top = recorder.TopSlowest();
  ASSERT_FALSE(top.empty());
  EXPECT_NEAR(top[0].latency_seconds, 0.5, 1e-9);
  EXPECT_LE(recorder.Recent().size(), 4u);
}

TEST(ObsFlightTest, ReservoirIsBounded) {
  FlightRecorder::Options options;
  options.reservoir = 8;
  FlightRecorder recorder(options);
  for (int i = 0; i < 5; ++i) recorder.Publish(MakeRecord(1e-3));
  if constexpr (!kObsEnabled) return;
  EXPECT_EQ(recorder.Reservoir().size(), 5u);  // Under capacity: keep all.
  for (int i = 0; i < 200; ++i) recorder.Publish(MakeRecord(1e-3));
  EXPECT_EQ(recorder.Reservoir().size(), 8u);  // At capacity: uniform sample.
}

TEST(ObsFlightTest, RecentKeepsTheLatestWindow) {
  FlightRecorder::Options options;
  options.ring_capacity = 8;
  FlightRecorder recorder(options);
  for (int i = 0; i < 20; ++i) recorder.Publish(MakeRecord(1e-3));
  if constexpr (!kObsEnabled) return;
  const std::vector<FlightRecord> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 8u);
  // Oldest to newest, ids 13..20.
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].id, 13u + i);
  }
}

TEST(ObsFlightTest, SetEnabledStopsPublication) {
  FlightRecorder recorder;
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.Publish(MakeRecord(1e-3)), 0u);
  EXPECT_EQ(recorder.published(), 0u);
  recorder.SetEnabled(true);
  if constexpr (kObsEnabled) {
    EXPECT_EQ(recorder.Publish(MakeRecord(1e-3)), 1u);
  }
}

TEST(ObsFlightTest, ClearEmptiesEverything) {
  FlightRecorder recorder;
  for (int i = 0; i < 10; ++i) recorder.Publish(MakeRecord(1e-3));
  recorder.Clear();
  EXPECT_EQ(recorder.published(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_TRUE(recorder.TopSlowest().empty());
  EXPECT_TRUE(recorder.Reservoir().empty());
  EXPECT_TRUE(recorder.Recent().empty());
  if constexpr (kObsEnabled) {
    EXPECT_EQ(recorder.Publish(MakeRecord(1e-3)), 1u);  // Ids restart.
  }
}

TEST(ObsFlightTest, ToJsonIsValidInEveryBuild) {
  FlightRecorder recorder;
  EXPECT_TRUE(JsonIsValid(recorder.ToJson())) << recorder.ToJson();
  FlightRecord named = MakeRecord(2e-3);
  named.searcher = "odd \"name\"\\with\nescapes";
  recorder.Publish(std::move(named));
  recorder.Publish(MakeRecord(1e-3));
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(JsonIsValid(json)) << json;
  if constexpr (kObsEnabled) {
    EXPECT_NE(json.find("\"top\""), std::string::npos);
    EXPECT_NE(json.find("\"reservoir\""), std::string::npos);
    EXPECT_NE(json.find("\"recent\""), std::string::npos);
  }
  // A searcher name far beyond any fixed formatting buffer (and whose
  // escaped form inflates further) must still round-trip as valid JSON
  // with the name intact — no mid-string truncation.
  FlightRecord longname = MakeRecord(3e-3);
  longname.searcher = std::string(2048, 'x') + "\"\\\n";
  recorder.Publish(std::move(longname));
  const std::string long_json = recorder.ToJson();
  EXPECT_TRUE(JsonIsValid(long_json));
  if constexpr (kObsEnabled) {
    EXPECT_NE(long_json.find(std::string(2048, 'x')), std::string::npos);
  }
}

TEST(ObsFlightTest, ConcurrentPublishersLoseNothing) {
  FlightRecorder::Options options;
  options.ring_capacity = 64;
  FlightRecorder recorder(options);
  ThreadPool pool(3);
  constexpr size_t kRecords = 2000;
  pool.ParallelFor(kRecords, [&recorder](size_t i) {
    recorder.Publish(MakeRecord(static_cast<double>(i % 97 + 1) * 1e-5));
  });
  if constexpr (!kObsEnabled) return;
  // Every publish is counted exactly once, either retained or dropped.
  EXPECT_EQ(recorder.published(), kRecords);
  const std::vector<FlightRecord> recent = recorder.Recent();
  EXPECT_LE(recent.size(), 64u);
  std::set<uint64_t> ids;
  for (const FlightRecord& r : recent) ids.insert(r.id);
  EXPECT_EQ(ids.size(), recent.size());  // No duplicate slots.
  EXPECT_TRUE(JsonIsValid(recorder.ToJson()));
}

TEST(ObsFlightTest, SchedulerPublishesScheduledQueries) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Clear();
  TrajectoryDataset db = GenMixedLike(64, 20, 60, /*seed=*/11);
  db.NormalizeAll();
  QueryEngine engine(db, db.SuggestedEpsilon());
  const NamedSearcher searcher = engine.MakeCombined({});
  std::vector<Trajectory> queries(db.begin(), db.begin() + 16);
  const std::vector<KnnResult> results =
      RunScheduled(searcher, queries, /*k=*/3, SchedulerPolicy{});
  ASSERT_EQ(results.size(), 16u);
  if constexpr (!kObsEnabled) {
    EXPECT_EQ(recorder.published(), 0u);
    return;
  }
  // One record per scheduled query, carrying the schedule context.
  EXPECT_EQ(recorder.published(), 16u);
  for (const FlightRecord& r : recorder.Recent()) {
    EXPECT_EQ(r.searcher, searcher.name);
    EXPECT_GE(r.fusion_group, 1u);  // Scheduled: solo (1) or fused (>1).
    EXPECT_GE(r.sched_budget, 1u);
    EXPECT_EQ(r.db_size, db.size());
    EXPECT_TRUE(r.stages.Conserves(r.db_size));
  }
  recorder.Clear();
}

// The acceptance gate for the whole subsystem: a session running with the
// full telemetry stack active — flight recorder publishing, timeline
// sampler running, HTTP endpoint serving — returns bit-identical answers
// to the plain sequential searcher with everything off. (The
// EDR_DISABLE_OBS CI leg certifies the compiled-out side of the same
// contract with this very test: under it the stack degrades to no-ops.)
TEST(ObsFlightTest, FullTelemetryStackIsBitIdentical) {
  TrajectoryDataset db = GenMixedLike(96, 20, 80, /*seed=*/23);
  db.NormalizeAll();
  QueryEngine engine(db, db.SuggestedEpsilon());
  const NamedSearcher searcher = engine.MakeCombined({});
  std::vector<Trajectory> queries(db.begin(), db.begin() + 24);

  // Plain sequential reference, telemetry publication off.
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Clear();
  recorder.SetEnabled(false);
  std::vector<KnnResult> reference;
  reference.reserve(queries.size());
  for (const Trajectory& q : queries) {
    reference.push_back(searcher.search(q, /*k=*/5));
  }
  recorder.SetEnabled(true);

  // Full stack: recorder + sampler + endpoint, queries via the session.
  TimelineSampler::Options timeline_options;
  timeline_options.interval_seconds = 0.001;
  TimelineSampler timeline(timeline_options);
  timeline.Start();
  MetricsHttpEndpoint::Options endpoint_options;
  endpoint_options.timeline = &timeline;
  MetricsHttpEndpoint endpoint(endpoint_options);
  const bool serving = endpoint.Start();
  EXPECT_EQ(serving, kObsEnabled);

  QuerySession::Options options;
  options.k = 5;
  QuerySession session(searcher, options);
  std::vector<QuerySession::Ticket> tickets;
  for (const Trajectory& q : queries) tickets.push_back(session.Submit(q));
  session.Drain();

  for (size_t i = 0; i < queries.size(); ++i) {
    const KnnResult& got = session.Result(tickets[i]);
    ASSERT_EQ(got.neighbors.size(), reference[i].neighbors.size()) << i;
    for (size_t j = 0; j < got.neighbors.size(); ++j) {
      EXPECT_EQ(got.neighbors[j].id, reference[i].neighbors[j].id) << i;
      EXPECT_EQ(got.neighbors[j].distance, reference[i].neighbors[j].distance)
          << i;
    }
  }
  if constexpr (kObsEnabled) {
    EXPECT_EQ(recorder.published(), queries.size());
  }
  endpoint.Stop();
  timeline.Stop();
  recorder.Clear();
}

}  // namespace
}  // namespace edr
