#include <gtest/gtest.h>

#include <vector>

#include "core/cpu.h"
#include "distance/edr.h"
#include "distance/edr_kernel.h"
#include "pruning/histogram.h"
#include "pruning/qgram.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

const KernelLevel kAllLevels[] = {KernelLevel::kScalar, KernelLevel::kSse2,
                                  KernelLevel::kAvx2, KernelLevel::kAvx512,
                                  KernelLevel::kNeon};

/// Restores the environment-resolved dispatch level however a test exits.
struct LevelGuard {
  ~LevelGuard() { ResetActiveKernelLevel(); }
};

TEST(CpuDispatchTest, NamesRoundTrip) {
  for (const KernelLevel level : kAllLevels) {
    KernelLevel parsed;
    ASSERT_TRUE(ParseKernelLevel(KernelLevelName(level), &parsed))
        << KernelLevelName(level);
    EXPECT_EQ(parsed, level);
  }
  KernelLevel out;
  EXPECT_FALSE(ParseKernelLevel("sse9", &out));
  EXPECT_FALSE(ParseKernelLevel("", &out));
  EXPECT_FALSE(ParseKernelLevel(nullptr, &out));
}

TEST(CpuDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(KernelLevelSupported(KernelLevel::kScalar));
}

TEST(CpuDispatchTest, ActiveLevelIsSupported) {
  EXPECT_TRUE(KernelLevelSupported(ActiveKernelLevel()));
}

TEST(CpuDispatchTest, PinningFollowsSupport) {
  LevelGuard guard;
  for (const KernelLevel level : kAllLevels) {
    const KernelLevel before = ActiveKernelLevel();
    if (KernelLevelSupported(level)) {
      EXPECT_TRUE(SetActiveKernelLevel(level));
      EXPECT_EQ(ActiveKernelLevel(), level);
    } else {
      EXPECT_FALSE(SetActiveKernelLevel(level));
      EXPECT_EQ(ActiveKernelLevel(), before);
    }
  }
}

// Every kernel level available on this host must produce bit-identical
// results to the pinned-scalar baseline across the three dispatching
// kernel families: the histogram bound sweep, the Q-gram merge-count, and
// the bit-parallel EDR match vectors.
TEST(CpuDispatchTest, AllSupportedLevelsBitIdentical) {
  LevelGuard guard;
  const TrajectoryDataset db = testutil::SmallDataset(601, 250, 6, 40);
  const auto queries = testutil::MakeQueries(db, 602, 3);

  const HistogramTable table(db, kEps, HistogramTable::Kind::k2D, 1);
  const QgramMeansTable means_table(db, /*q=*/1, /*dims=*/2);
  std::vector<std::vector<Point2>> query_means;
  for (const Trajectory& q : queries) {
    std::vector<Point2> means = MeanValueQgrams(q, 1);
    SortMeans(means);
    query_means.push_back(std::move(means));
  }

  // Scalar baseline.
  ASSERT_TRUE(SetActiveKernelLevel(KernelLevel::kScalar));
  std::vector<std::vector<int>> base_sweeps;
  std::vector<std::vector<size_t>> base_counts;
  std::vector<std::vector<int>> base_edr;
  EdrScratch scratch;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto qh = table.MakeQueryHistogram(queries[qi]);
    std::vector<int> sweep;
    table.FastLowerBoundSweep(qh, &sweep);
    base_sweeps.push_back(std::move(sweep));
    std::vector<size_t> counts(db.size());
    std::vector<int> dists(db.size());
    for (uint32_t id = 0; id < db.size(); ++id) {
      counts[id] = means_table.CountMatches2D(query_means[qi], kEps, id);
      dists[id] = EdrDistanceBitParallel(queries[qi], db[id], kEps, scratch);
    }
    base_counts.push_back(std::move(counts));
    base_edr.push_back(std::move(dists));
  }

  for (const KernelLevel level : kAllLevels) {
    if (!KernelLevelSupported(level)) continue;
    ASSERT_TRUE(SetActiveKernelLevel(level));
    SCOPED_TRACE(KernelLevelName(level));
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const auto qh = table.MakeQueryHistogram(queries[qi]);
      std::vector<int> sweep;
      table.FastLowerBoundSweep(qh, &sweep);
      EXPECT_EQ(sweep, base_sweeps[qi]);
      for (uint32_t id = 0; id < db.size(); ++id) {
        ASSERT_EQ(means_table.CountMatches2D(query_means[qi], kEps, id),
                  base_counts[qi][id])
            << "id=" << id;
        ASSERT_EQ(EdrDistanceBitParallel(queries[qi], db[id], kEps, scratch),
                  base_edr[qi][id])
            << "id=" << id;
      }
    }
  }
}

// The bitmap word-walk and blocked-sparse scatter column kernels, plus the
// fused query-major kernels on top of them, must be bit-identical to the
// pinned-scalar baseline at every supported level. The dataset is shaped
// so the adaptive table holds all four column layouts at once: a tight
// all-ones cluster (bitmap), a repeated-point cluster (dense), far-away
// random walks (blocked-sparse), and untouched space (empty).
TEST(CpuDispatchTest, MixedLayoutSweepsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  Rng rng(604);
  TrajectoryDataset db("mixed");
  for (int i = 0; i < 180; ++i) {
    Trajectory t;
    t.Append({rng.Gaussian(0.0, 0.02), rng.Gaussian(0.0, 0.02)});
    db.Add(t);
  }
  for (int i = 0; i < 120; ++i) {
    Trajectory t;
    for (int j = 0; j < 4; ++j) {
      t.Append({rng.Gaussian(0.9, 0.005), rng.Gaussian(0.9, 0.005)});
    }
    db.Add(t);
  }
  for (int i = 0; i < 30; ++i) {
    Trajectory w = testutil::RandomWalk(rng, 24);
    for (size_t j = 0; j < w.size(); ++j) {
      w[j].x += 10.0;
      w[j].y += 10.0;
    }
    db.Add(w);
  }
  const HistogramTable table(db, 0.05, HistogramTable::Kind::k2D, 1,
                             HistogramLayout::kAdaptive);
  const HistogramStorageStats stats = table.storage_stats();
  ASSERT_GT(stats.bitmap_columns, 0u);
  ASSERT_GT(stats.sparse_columns, 0u);
  ASSERT_GT(stats.dense_columns, 0u);
  ASSERT_GT(stats.empty_columns, 0u);

  std::vector<HistogramTable::QueryHistogram> qhs;
  for (const size_t i : {size_t{0}, size_t{100}, size_t{200}, size_t{310}}) {
    qhs.push_back(table.MakeQueryHistogram(db[i]));
  }
  std::vector<const HistogramTable::QueryHistogram*> group;
  for (const auto& qh : qhs) group.push_back(&qh);

  ASSERT_TRUE(SetActiveKernelLevel(KernelLevel::kScalar));
  std::vector<std::vector<int>> base_single(qhs.size());
  std::vector<std::vector<int>> base_fused(qhs.size());
  std::vector<std::vector<int>*> base_outs;
  for (size_t i = 0; i < qhs.size(); ++i) {
    table.FastLowerBoundSweep(qhs[i], &base_single[i]);
    base_outs.push_back(&base_fused[i]);
  }
  table.FastLowerBoundSweepFused(group, base_outs);
  for (size_t i = 0; i < qhs.size(); ++i) {
    ASSERT_EQ(base_fused[i], base_single[i]) << "scalar fused i=" << i;
  }

  for (const KernelLevel level : kAllLevels) {
    if (!KernelLevelSupported(level)) continue;
    ASSERT_TRUE(SetActiveKernelLevel(level));
    SCOPED_TRACE(KernelLevelName(level));
    for (size_t i = 0; i < qhs.size(); ++i) {
      std::vector<int> sweep;
      table.FastLowerBoundSweep(qhs[i], &sweep);
      EXPECT_EQ(sweep, base_single[i]) << "single i=" << i;
    }
    std::vector<std::vector<int>> fused(qhs.size());
    std::vector<std::vector<int>*> outs;
    for (size_t i = 0; i < qhs.size(); ++i) outs.push_back(&fused[i]);
    table.FastLowerBoundSweepFused(group, outs);
    for (size_t i = 0; i < qhs.size(); ++i) {
      EXPECT_EQ(fused[i], base_single[i]) << "fused i=" << i;
    }
  }
}

// The fused Q-gram merge-count kernels must match the scalar baseline at
// every supported level and group size.
TEST(CpuDispatchTest, FusedQgramCountsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  const TrajectoryDataset db = testutil::SmallDataset(605, 200, 6, 40);
  const auto queries = testutil::MakeQueries(db, 606, 4);
  const QgramMeansTable means_table(db, /*q=*/1, /*dims=*/2);
  std::vector<std::vector<Point2>> query_means;
  std::vector<const std::vector<Point2>*> group;
  for (const Trajectory& q : queries) {
    std::vector<Point2> means = MeanValueQgrams(q, 1);
    SortMeans(means);
    query_means.push_back(std::move(means));
  }
  for (const auto& m : query_means) group.push_back(&m);

  ASSERT_TRUE(SetActiveKernelLevel(KernelLevel::kScalar));
  std::vector<std::vector<size_t>> base(group.size(),
                                        std::vector<size_t>(db.size()));
  std::vector<size_t> tmp(group.size());
  for (uint32_t id = 0; id < db.size(); ++id) {
    means_table.CountMatchesFused2D(group, kEps, id, tmp.data());
    for (size_t f = 0; f < group.size(); ++f) {
      ASSERT_EQ(tmp[f], means_table.CountMatches2D(*group[f], kEps, id))
          << "scalar fused id=" << id;
      base[f][id] = tmp[f];
    }
  }

  for (const KernelLevel level : kAllLevels) {
    if (!KernelLevelSupported(level)) continue;
    ASSERT_TRUE(SetActiveKernelLevel(level));
    SCOPED_TRACE(KernelLevelName(level));
    for (uint32_t id = 0; id < db.size(); ++id) {
      means_table.CountMatchesFused2D(group, kEps, id, tmp.data());
      for (size_t f = 0; f < group.size(); ++f) {
        ASSERT_EQ(tmp[f], base[f][id]) << "id=" << id << " member=" << f;
      }
    }
  }
}

// The bounded (early-abandoning) bit-parallel kernel must keep its
// contract at every level: exact when within bound, certified > bound
// otherwise.
TEST(CpuDispatchTest, BoundedEdrContractAtEveryLevel) {
  LevelGuard guard;
  const TrajectoryDataset db = testutil::SmallDataset(603, 60, 6, 40);
  EdrScratch scratch;
  for (const KernelLevel level : kAllLevels) {
    if (!KernelLevelSupported(level)) continue;
    ASSERT_TRUE(SetActiveKernelLevel(level));
    SCOPED_TRACE(KernelLevelName(level));
    for (size_t i = 0; i + 1 < db.size(); i += 7) {
      const int exact =
          EdrDistanceBitParallel(db[i], db[i + 1], kEps, scratch);
      for (const int bound : {0, exact - 1, exact, exact + 3}) {
        if (bound < 0) continue;
        const int got = EdrDistanceBitParallelBounded(db[i], db[i + 1], kEps,
                                                      bound, scratch);
        if (exact <= bound) {
          EXPECT_EQ(got, exact);
        } else {
          EXPECT_GT(got, bound);
        }
      }
    }
  }
}

}  // namespace
}  // namespace edr
