#include "core/normalize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace edr {
namespace {

TEST(NormalizeTest, ZeroMeanUnitVariance) {
  Rng rng(5);
  Trajectory t;
  for (int i = 0; i < 200; ++i) {
    t.Append(rng.Gaussian(10.0, 3.0), rng.Gaussian(-4.0, 0.5));
  }
  const Trajectory n = Normalize(t);
  const Point2 mu = n.Mean();
  const Point2 sigma = n.StdDev();
  EXPECT_NEAR(mu.x, 0.0, 1e-9);
  EXPECT_NEAR(mu.y, 0.0, 1e-9);
  EXPECT_NEAR(sigma.x, 1.0, 1e-9);
  EXPECT_NEAR(sigma.y, 1.0, 1e-9);
}

TEST(NormalizeTest, InvariantToSpatialShiftAndScale) {
  Rng rng(6);
  Trajectory t;
  for (int i = 0; i < 64; ++i) t.Append(rng.Uniform(0, 1), rng.Uniform(0, 1));

  Trajectory shifted = t;
  for (Point2& p : shifted.mutable_points()) {
    p.x = p.x * 7.0 + 100.0;
    p.y = p.y * 0.25 - 3.0;
  }
  const Trajectory a = Normalize(t);
  const Trajectory b = Normalize(shifted);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].x, b[i].x, 1e-9);
    EXPECT_NEAR(a[i].y, b[i].y, 1e-9);
  }
}

TEST(NormalizeTest, ConstantDimensionOnlyShifted) {
  Trajectory t({{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}});
  const Trajectory n = Normalize(t);
  // y was constant: mean-shifted to 0, not divided by zero sigma.
  for (const Point2& p : n) {
    EXPECT_DOUBLE_EQ(p.y, 0.0);
    EXPECT_TRUE(std::isfinite(p.x));
  }
}

TEST(NormalizeTest, EmptyTrajectoryUnchanged) {
  Trajectory t;
  NormalizeInPlace(t);
  EXPECT_TRUE(t.empty());
}

TEST(NormalizeTest, PreservesLabelAndId) {
  Trajectory t({{1.0, 2.0}, {3.0, 4.0}}, 9);
  t.set_id(42);
  const Trajectory n = Normalize(t);
  EXPECT_EQ(n.label(), 9);
  EXPECT_EQ(n.id(), 42u);
}

TEST(NormalizeTest, InPlaceMatchesCopying) {
  Rng rng(8);
  Trajectory t;
  for (int i = 0; i < 32; ++i) t.Append(rng.Gaussian(), rng.Gaussian());
  Trajectory copy = t;
  NormalizeInPlace(copy);
  EXPECT_TRUE(copy == Normalize(t));
}

}  // namespace
}  // namespace edr
