#include "data/noise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "test_util.h"

namespace edr {
namespace {

TEST(NoiseTest, InsertionCountWithinConfiguredFraction) {
  Rng rng(81);
  const Trajectory t = testutil::RandomWalk(rng, 100);
  NoiseOptions options;
  options.min_fraction = 0.10;
  options.max_fraction = 0.20;
  for (int trial = 0; trial < 10; ++trial) {
    const Trajectory noisy = AddInterpolatedGaussianNoise(t, options, rng);
    const size_t added = noisy.size() - t.size();
    EXPECT_GE(added, 10u);
    EXPECT_LE(added, 20u);
  }
}

TEST(NoiseTest, OutliersAreLarge) {
  Rng rng(82);
  const Trajectory t = testutil::RandomWalk(rng, 200, 0.1);
  NoiseOptions options;
  options.outlier_sigma = 8.0;
  const Trajectory noisy = AddInterpolatedGaussianNoise(t, options, rng);
  // The corrupted trajectory must have a much larger spread.
  const Point2 before = t.StdDev();
  const Point2 after = noisy.StdDev();
  EXPECT_GT(std::max(after.x, after.y), 1.5 * std::max(before.x, before.y));
}

TEST(NoiseTest, PreservesLabelAndShortInputs) {
  Rng rng(83);
  Trajectory t({{0.0, 0.0}}, 4);
  NoiseOptions options;
  const Trajectory noisy = AddInterpolatedGaussianNoise(t, options, rng);
  EXPECT_EQ(noisy.label(), 4);
  EXPECT_EQ(noisy.size(), 1u);  // Too short to corrupt.
}

TEST(ResampleTest, ExactLengthAndEndpoints) {
  const Trajectory t({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
  const Trajectory r = ResampleLinear(t, 9);
  ASSERT_EQ(r.size(), 9u);
  EXPECT_EQ(r[0], t[0]);
  EXPECT_EQ(r[8], t[2]);
}

TEST(ResampleTest, IdentityWhenSameLength) {
  Rng rng(84);
  const Trajectory t = testutil::RandomWalk(rng, 20);
  const Trajectory r = ResampleLinear(t, 20);
  ASSERT_EQ(r.size(), 20u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(r[i].x, t[i].x, 1e-9);
    EXPECT_NEAR(r[i].y, t[i].y, 1e-9);
  }
}

TEST(ResampleTest, DegenerateCases) {
  EXPECT_TRUE(ResampleLinear(Trajectory(), 5).empty());
  const Trajectory one({{3.0, 4.0}});
  const Trajectory r = ResampleLinear(one, 4);
  ASSERT_EQ(r.size(), 4u);
  for (const Point2& p : r) EXPECT_EQ(p, (Point2{3.0, 4.0}));
}

TEST(TimeShiftTest, LengthChangesButShapePreserved) {
  Rng rng(85);
  const Trajectory t = testutil::RandomWalk(rng, 120, 0.3);
  TimeShiftOptions options;
  const Trajectory shifted = AddLocalTimeShifting(t, options, rng);
  // Length within the configured scales.
  EXPECT_GE(shifted.size(), static_cast<size_t>(120 * 0.5));
  EXPECT_LE(shifted.size(), static_cast<size_t>(120 * 1.6));
  // Shape preserved: endpoints close to the originals.
  EXPECT_NEAR(shifted[0].x, t[0].x, 1e-9);
  EXPECT_NEAR(shifted[shifted.size() - 1].x, t[t.size() - 1].x, 1e-9);
}

TEST(TimeShiftTest, ShortInputsPassThrough) {
  Rng rng(86);
  const Trajectory t({{0.0, 0.0}, {1.0, 1.0}});
  TimeShiftOptions options;
  options.segments = 4;
  const Trajectory shifted = AddLocalTimeShifting(t, options, rng);
  EXPECT_TRUE(shifted == t);
}

TEST(CorruptDatasetTest, DeterministicPerSeedAndPreservesLabels) {
  TrajectoryDataset db = GenAslLike(3, 3, 7);
  const TrajectoryDataset a = CorruptDataset(db, {}, {}, 42);
  const TrajectoryDataset b = CorruptDataset(db, {}, {}, 42);
  const TrajectoryDataset c = CorruptDataset(db, {}, {}, 43);
  ASSERT_EQ(a.size(), db.size());
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]);
    EXPECT_EQ(a[i].label(), db[i].label());
    if (!(a[i] == c[i])) any_differs = true;
  }
  EXPECT_TRUE(any_differs);  // Different seeds give different corruption.
}

}  // namespace
}  // namespace edr
