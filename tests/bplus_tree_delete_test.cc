// Deletion tests for the B+-tree, including randomized insert/delete
// workloads with duplicate keys cross-checked against a brute-force list.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.h"
#include "index/bplus_tree.h"

namespace edr {
namespace {

TEST(BPlusTreeDeleteTest, SingleKey) {
  BPlusTree tree;
  tree.Insert(1.0, 42);
  EXPECT_TRUE(tree.Delete(1.0, 42));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.SearchRange(0.0, 2.0).empty());
  EXPECT_TRUE(tree.Validate());
}

TEST(BPlusTreeDeleteTest, MissingReturnsFalse) {
  BPlusTree tree;
  tree.Insert(1.0, 42);
  EXPECT_FALSE(tree.Delete(2.0, 42));   // Wrong key.
  EXPECT_FALSE(tree.Delete(1.0, 43));   // Wrong value.
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeDeleteTest, DuplicateKeysRemoveOnePair) {
  BPlusTree tree(4);
  for (uint32_t v = 0; v < 30; ++v) tree.Insert(5.0, v);
  EXPECT_TRUE(tree.Delete(5.0, 17));
  EXPECT_FALSE(tree.Delete(5.0, 17));  // Already gone.
  auto hits = tree.SearchRange(5.0, 5.0);
  EXPECT_EQ(hits.size(), 29u);
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 17u) == hits.end());
  EXPECT_TRUE(tree.Validate());
}

TEST(BPlusTreeDeleteTest, DrainAscending) {
  BPlusTree tree(4);
  for (int i = 0; i < 1000; ++i) {
    tree.Insert(static_cast<double>(i), static_cast<uint32_t>(i));
  }
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Delete(static_cast<double>(i), static_cast<uint32_t>(i)))
        << i;
    if (i % 50 == 0) {
      ASSERT_TRUE(tree.Validate()) << i;
    }
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
}

TEST(BPlusTreeDeleteTest, DrainDescending) {
  BPlusTree tree(4);
  for (int i = 0; i < 1000; ++i) {
    tree.Insert(static_cast<double>(i), static_cast<uint32_t>(i));
  }
  for (int i = 1000; i-- > 0;) {
    ASSERT_TRUE(tree.Delete(static_cast<double>(i), static_cast<uint32_t>(i)))
        << i;
    if (i % 50 == 0) {
      ASSERT_TRUE(tree.Validate()) << i;
    }
  }
  EXPECT_EQ(tree.size(), 0u);
}

class BPlusTreeMixedWorkloadTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(BPlusTreeMixedWorkloadTest, RandomOpsMatchBruteForce) {
  Rng rng(GetParam());
  BPlusTree tree(static_cast<int>(rng.UniformInt(4, 32)));
  std::vector<std::pair<double, uint32_t>> live;
  uint32_t next_value = 0;

  for (int op = 0; op < 2000; ++op) {
    const bool insert = live.empty() || rng.NextDouble() < 0.55;
    if (insert) {
      // Quantized keys: plenty of duplicates.
      const double key = static_cast<double>(rng.UniformInt(-30, 30)) * 0.5;
      tree.Insert(key, next_value);
      live.push_back({key, next_value});
      ++next_value;
    } else {
      const size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      ASSERT_TRUE(tree.Delete(live[at].first, live[at].second)) << op;
      live.erase(live.begin() + static_cast<long>(at));
    }
    if (op % 200 == 199) {
      ASSERT_TRUE(tree.Validate()) << "op " << op;
      ASSERT_EQ(tree.size(), live.size());
      const double lo = rng.Uniform(-16, 16);
      const double hi = lo + rng.Uniform(0.0, 8.0);
      std::vector<uint32_t> actual = tree.SearchRange(lo, hi);
      std::vector<uint32_t> expected;
      for (const auto& [k, v] : live) {
        if (k >= lo && k <= hi) expected.push_back(v);
      }
      std::sort(actual.begin(), actual.end());
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(actual, expected) << "op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeMixedWorkloadTest,
                         ::testing::Range<uint64_t>(940, 950));

}  // namespace
}  // namespace edr
