#include "query/parallel.h"

#include <gtest/gtest.h>

#include "pruning/near_triangle.h"
#include "query/engine.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(ParallelKnnTest, MatchesSequentialResults) {
  const TrajectoryDataset db = testutil::SmallDataset(701, 60, 8, 50);
  QueryEngine engine(db, kEps);
  const std::vector<Trajectory> queries = testutil::MakeQueries(db, 702, 8);

  const auto search = [&engine](const Trajectory& q, size_t k) {
    return engine.SeqScan(q, k);
  };
  const std::vector<KnnResult> parallel =
      ParallelKnn(search, queries, 10, 4);
  ASSERT_EQ(parallel.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(
        SameKnnDistances(engine.SeqScan(queries[i], 10), parallel[i]))
        << i;
  }
}

TEST(ParallelKnnTest, PrunedSearcherIsThreadCompatible) {
  const TrajectoryDataset db = testutil::SmallDataset(703, 80, 8, 60);
  QueryEngine engine(db, kEps);
  CombinedOptions combo;
  combo.max_triangle = 20;
  const CombinedKnnSearcher& searcher = engine.Combined(combo);
  const std::vector<Trajectory> queries = testutil::MakeQueries(db, 704, 12);

  const std::vector<KnnResult> parallel = ParallelKnn(
      [&searcher](const Trajectory& q, size_t k) {
        return searcher.Knn(q, k);
      },
      queries, 8, 4);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameKnnDistances(engine.SeqScan(queries[i], 8),
                                 parallel[i]))
        << i;
  }
}

TEST(ParallelKnnTest, EmptyQueriesAndSingleThread) {
  const TrajectoryDataset db = testutil::SmallDataset(705, 10);
  QueryEngine engine(db, kEps);
  const auto search = [&engine](const Trajectory& q, size_t k) {
    return engine.SeqScan(q, k);
  };
  EXPECT_TRUE(ParallelKnn(search, {}, 5).empty());
  const std::vector<Trajectory> one = {db[0]};
  EXPECT_EQ(ParallelKnn(search, one, 5, 1).size(), 1u);
}

TEST(ParallelMatrixBuildTest, IdenticalToSequentialBuild) {
  const TrajectoryDataset db = testutil::SmallDataset(706, 40, 5, 40);
  const PairwiseEdrMatrix sequential =
      PairwiseEdrMatrix::Build(db, kEps, 15);
  const PairwiseEdrMatrix parallel =
      PairwiseEdrMatrix::BuildParallel(db, kEps, 15, 4);
  ASSERT_EQ(parallel.num_refs(), sequential.num_refs());
  ASSERT_EQ(parallel.db_size(), sequential.db_size());
  EXPECT_EQ(parallel.data(), sequential.data());
}

TEST(ParallelMatrixBuildTest, HandlesDegenerateSizes) {
  const TrajectoryDataset db = testutil::SmallDataset(707, 3);
  const PairwiseEdrMatrix m = PairwiseEdrMatrix::BuildParallel(db, kEps, 0);
  EXPECT_EQ(m.num_refs(), 0u);
  const PairwiseEdrMatrix m2 =
      PairwiseEdrMatrix::BuildParallel(db, kEps, 100, 16);
  EXPECT_EQ(m2.num_refs(), 3u);
}

}  // namespace
}  // namespace edr
