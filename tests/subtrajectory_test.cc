#include "query/subtrajectory.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/rng.h"
#include "distance/edr.h"
#include "test_util.h"

namespace edr {
namespace {

Trajectory Seq(std::initializer_list<double> xs) {
  Trajectory t;
  for (const double x : xs) t.Append(x, 0.0);
  return t;
}

Trajectory Slice(const Trajectory& t, size_t begin, size_t end) {
  return Trajectory(std::vector<Point2>(
      t.points().begin() + static_cast<long>(begin),
      t.points().begin() + static_cast<long>(end)));
}

TEST(SubtrajectoryTest, ExactOccurrenceScoresZero) {
  const Trajectory text = Seq({9, 9, 1, 2, 3, 9, 9});
  const Trajectory query = Seq({1, 2, 3});
  const SubtrajectoryMatch m = BestSubtrajectoryMatch(query, text, 0.25);
  EXPECT_EQ(m.distance, 0);
  EXPECT_EQ(m.begin, 2u);
  EXPECT_EQ(m.end, 5u);
}

TEST(SubtrajectoryTest, NoisyOccurrenceScoresOutlierCount) {
  const Trajectory text = Seq({9, 9, 1, 100, 2, 3, 9});
  const Trajectory query = Seq({1, 2, 3});
  const SubtrajectoryMatch m = BestSubtrajectoryMatch(query, text, 0.25);
  EXPECT_EQ(m.distance, 1);  // One glitch inside the occurrence.
}

TEST(SubtrajectoryTest, EmptyQueryMatchesEmptySpan) {
  const Trajectory text = Seq({1, 2, 3});
  const SubtrajectoryMatch m =
      BestSubtrajectoryMatch(Trajectory(), text, 0.25);
  EXPECT_EQ(m.distance, 0);
  EXPECT_EQ(m.begin, m.end);
}

TEST(SubtrajectoryTest, EmptyTextCostsFullQuery) {
  const Trajectory query = Seq({1, 2, 3});
  const SubtrajectoryMatch m =
      BestSubtrajectoryMatch(query, Trajectory(), 0.25);
  EXPECT_EQ(m.distance, 3);
}

TEST(SubtrajectoryTest, ReportedSpanHasReportedDistance) {
  // The recovered boundaries must reproduce the reported distance when
  // checked with the plain (global) EDR.
  Rng rng(401);
  for (int trial = 0; trial < 25; ++trial) {
    const Trajectory text = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(5, 60)));
    const Trajectory query = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(1, 15)));
    const SubtrajectoryMatch m = BestSubtrajectoryMatch(query, text, 0.25);
    ASSERT_LE(m.begin, m.end);
    ASSERT_LE(m.end, text.size());
    EXPECT_EQ(EdrDistance(query, Slice(text, m.begin, m.end), 0.25),
              m.distance);
  }
}

TEST(SubtrajectoryTest, MatchesBruteForceMinimumOverAllSpans) {
  Rng rng(402);
  for (int trial = 0; trial < 15; ++trial) {
    const Trajectory text = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(2, 25)));
    const Trajectory query = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(1, 8)));
    int brute = std::numeric_limits<int>::max();
    for (size_t b = 0; b <= text.size(); ++b) {
      for (size_t e = b; e <= text.size(); ++e) {
        brute = std::min(brute,
                         EdrDistance(query, Slice(text, b, e), 0.25));
      }
    }
    EXPECT_EQ(BestSubtrajectoryMatch(query, text, 0.25).distance, brute);
  }
}

TEST(SubtrajectoryTest, BestNeverExceedsGlobalEdr) {
  Rng rng(403);
  for (int trial = 0; trial < 20; ++trial) {
    const Trajectory text = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(2, 50)));
    const Trajectory query = testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(1, 50)));
    EXPECT_LE(BestSubtrajectoryMatch(query, text, 0.25).distance,
              EdrDistance(query, text, 0.25));
  }
}

TEST(SubtrajectoryTest, MatchesWithinReportsAllCheapEnds) {
  const Trajectory text = Seq({1, 2, 3, 9, 1, 2, 3});
  const Trajectory query = Seq({1, 2, 3});
  const std::vector<SubtrajectoryMatch> matches =
      SubtrajectoryMatchesWithin(query, text, 0, 0.25);
  // Two exact occurrences; both end positions must be reported.
  bool first = false;
  bool second = false;
  for (const SubtrajectoryMatch& m : matches) {
    EXPECT_EQ(m.distance, 0);
    if (m.begin == 0 && m.end == 3) first = true;
    if (m.begin == 4 && m.end == 7) second = true;
  }
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
}

TEST(SubtrajectoryTest, NonOverlappingSelection) {
  std::vector<SubtrajectoryMatch> candidates = {
      {0, 3, 0}, {1, 4, 1}, {4, 7, 0}, {5, 8, 2},
  };
  const std::vector<SubtrajectoryMatch> picked =
      NonOverlappingMatches(candidates);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0], (SubtrajectoryMatch{0, 3, 0}));
  EXPECT_EQ(picked[1], (SubtrajectoryMatch{4, 7, 0}));
}

TEST(SubtrajectoryTest, NonOverlappingPrefersLowerDistance) {
  std::vector<SubtrajectoryMatch> candidates = {
      {0, 5, 3}, {2, 4, 0},
  };
  const std::vector<SubtrajectoryMatch> picked =
      NonOverlappingMatches(candidates);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0].distance, 0);
}

}  // namespace
}  // namespace edr
