#include "core/point.h"

#include <gtest/gtest.h>

namespace edr {
namespace {

TEST(PointTest, Arithmetic) {
  const Point2 a{1.0, 2.0};
  const Point2 b{3.0, -1.0};
  EXPECT_EQ((a + b), (Point2{4.0, 1.0}));
  EXPECT_EQ((a - b), (Point2{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point2{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Point2{2.0, 4.0}));
}

TEST(PointTest, SquaredDistMatchesPaperFormula) {
  const Point2 r{1.0, 2.0};
  const Point2 s{4.0, 6.0};
  // (1-4)^2 + (2-6)^2 = 9 + 16.
  EXPECT_DOUBLE_EQ(SquaredDist(r, s), 25.0);
  EXPECT_DOUBLE_EQ(L2Dist(r, s), 5.0);
}

TEST(PointTest, L1AndLInf) {
  const Point2 r{0.0, 0.0};
  const Point2 s{3.0, -4.0};
  EXPECT_DOUBLE_EQ(L1Dist(r, s), 7.0);
  EXPECT_DOUBLE_EQ(LInfDist(r, s), 4.0);
}

TEST(PointTest, DistancesOfIdenticalPointsAreZero) {
  const Point2 p{-2.5, 7.125};
  EXPECT_DOUBLE_EQ(SquaredDist(p, p), 0.0);
  EXPECT_DOUBLE_EQ(L2Dist(p, p), 0.0);
  EXPECT_DOUBLE_EQ(L1Dist(p, p), 0.0);
  EXPECT_DOUBLE_EQ(LInfDist(p, p), 0.0);
}

TEST(PointTest, DistancesAreSymmetric) {
  const Point2 a{1.5, -0.25};
  const Point2 b{-3.0, 2.0};
  EXPECT_DOUBLE_EQ(SquaredDist(a, b), SquaredDist(b, a));
  EXPECT_DOUBLE_EQ(L1Dist(a, b), L1Dist(b, a));
  EXPECT_DOUBLE_EQ(LInfDist(a, b), LInfDist(b, a));
}

}  // namespace
}  // namespace edr
