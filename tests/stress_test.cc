// Randomized end-to-end stress: random dataset family, matching
// threshold, k, and retrieval method — every answer certified against the
// sequential scan. This is the widest net for cross-module interaction
// bugs (binning vs normalization vs thresholds vs filters).

#include <gtest/gtest.h>

#include <vector>

#include "data/generators.h"
#include "data/noise.h"
#include "eval/metrics.h"
#include "query/engine.h"
#include "test_util.h"

namespace edr {
namespace {

TrajectoryDataset RandomDataset(Rng& rng) {
  const int family = static_cast<int>(rng.UniformInt(0, 4));
  const size_t count = static_cast<size_t>(rng.UniformInt(30, 120));
  TrajectoryDataset db;
  switch (family) {
    case 0: {
      RandomWalkOptions options;
      options.count = count;
      options.min_length = 5;
      options.max_length = 60;
      options.seed = rng.NextU64();
      db = GenRandomWalk(options);
      break;
    }
    case 1:
      db = GenAslLike(5, std::max<size_t>(1, count / 5), rng.NextU64());
      break;
    case 2:
      db = GenKungfuLike(count, 48, rng.NextU64());
      break;
    case 3:
      db = GenNhlLike(count, 10, 80, rng.NextU64());
      break;
    default:
      db = GenMixedLike(count, 20, 90, rng.NextU64());
      break;
  }
  // Half the time, corrupt the data as real pipelines would.
  if (rng.NextDouble() < 0.5) {
    db = CorruptDataset(db, NoiseOptions{}, TimeShiftOptions{},
                        rng.NextU64());
  }
  db.NormalizeAll();
  return db;
}

class StressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressTest, EveryMethodLosslessOnRandomConfigurations) {
  Rng rng(GetParam());
  const TrajectoryDataset db = RandomDataset(rng);
  const double epsilon = rng.Uniform(0.05, 1.5);
  const size_t k = static_cast<size_t>(rng.UniformInt(1, 25));

  QueryEngine engine(db, epsilon);
  std::vector<NamedSearcher> searchers;
  searchers.push_back(engine.MakeSeqScan(true));
  searchers.push_back(engine.MakeQgram(
      QgramVariant::kMerge2D, static_cast<int>(rng.UniformInt(1, 4))));
  searchers.push_back(engine.MakeQgram(
      QgramVariant::kRtree2D, static_cast<int>(rng.UniformInt(1, 4))));
  searchers.push_back(engine.MakeNearTriangle(
      static_cast<size_t>(rng.UniformInt(1, 30))));
  searchers.push_back(engine.MakeHistogram(
      rng.NextDouble() < 0.5 ? HistogramTable::Kind::k2D
                             : HistogramTable::Kind::k1D,
      static_cast<int>(rng.UniformInt(1, 4)),
      rng.NextDouble() < 0.5 ? HistogramScan::kSorted
                             : HistogramScan::kSequential));
  {
    CombinedOptions combo;
    combo.order = AllPruneOrders()[static_cast<size_t>(
        rng.UniformInt(0, 5))];
    combo.histogram_kind = rng.NextDouble() < 0.5
                               ? HistogramTable::Kind::k2D
                               : HistogramTable::Kind::k1D;
    combo.histogram_delta = static_cast<int>(rng.UniformInt(1, 3));
    combo.q = static_cast<int>(rng.UniformInt(1, 3));
    combo.max_triangle = static_cast<size_t>(rng.UniformInt(1, 40));
    combo.sorted_histogram_scan = rng.NextDouble() < 0.5;
    searchers.push_back(engine.MakeCombined(combo));
  }

  const std::vector<Trajectory> queries =
      testutil::MakeQueries(db, rng.NextU64(), 2);
  for (const Trajectory& query : queries) {
    const KnnResult expected = engine.SeqScan(query, k);
    for (const NamedSearcher& s : searchers) {
      const KnnResult actual = s.search(query, k);
      ASSERT_TRUE(SameKnnDistances(expected, actual))
          << s.name << " eps=" << epsilon << " k=" << k
          << " db=" << db.size();
    }
    // Range queries too, at a radius drawn near the k-th distance so the
    // result set is non-trivial.
    if (!expected.neighbors.empty()) {
      const int radius =
          static_cast<int>(expected.neighbors.back().distance) + 1;
      const KnnResult range_expected =
          SequentialScanRange(db, query, radius, epsilon);
      CombinedOptions combo;
      combo.max_triangle = 10;
      const KnnResult range_actual =
          engine.Combined(combo).Range(query, radius);
      ASSERT_EQ(range_expected.neighbors.size(),
                range_actual.neighbors.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Range<uint64_t>(3000, 3020));

}  // namespace
}  // namespace edr
