#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(MetricsTest, SampleQueriesEvenlySpaced) {
  const TrajectoryDataset db = testutil::SmallDataset(121, 40);
  const std::vector<Trajectory> queries = SampleQueries(db, 4);
  ASSERT_EQ(queries.size(), 4u);
  EXPECT_TRUE(queries[0] == db[0]);
  EXPECT_TRUE(queries[1] == db[10]);
  EXPECT_TRUE(queries[3] == db[30]);
}

TEST(MetricsTest, SampleQueriesClampedToDbSize) {
  const TrajectoryDataset db = testutil::SmallDataset(122, 5);
  EXPECT_EQ(SampleQueries(db, 50).size(), 5u);
  EXPECT_TRUE(SampleQueries(db, 0).empty());
  EXPECT_TRUE(SampleQueries(TrajectoryDataset(), 3).empty());
}

TEST(MetricsTest, GroundTruthMatchesSeqScan) {
  const TrajectoryDataset db = testutil::SmallDataset(123, 30);
  QueryEngine engine(db, kEps);
  const std::vector<Trajectory> queries = SampleQueries(db, 3);
  const std::vector<KnnResult> gt = RunGroundTruth(engine, queries, 5);
  ASSERT_EQ(gt.size(), 3u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameKnnDistances(gt[i], engine.SeqScan(queries[i], 5)));
  }
  EXPECT_GT(MeanSeconds(gt), 0.0);
}

TEST(MetricsTest, RunWorkloadAggregatesAndCertifies) {
  const TrajectoryDataset db = testutil::SmallDataset(124, 50, 6, 50);
  QueryEngine engine(db, kEps);
  const std::vector<Trajectory> queries = SampleQueries(db, 4);
  const std::vector<KnnResult> gt = RunGroundTruth(engine, queries, 5);
  const double base = MeanSeconds(gt);

  const WorkloadResult r = RunWorkload(
      engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                           HistogramScan::kSorted),
      queries, 5, &gt, base);
  EXPECT_EQ(r.queries, 4u);
  EXPECT_TRUE(r.lossless);
  EXPECT_GE(r.avg_pruning_power, 0.0);
  EXPECT_LE(r.avg_pruning_power, 1.0);
  EXPECT_GT(r.avg_seconds, 0.0);
  EXPECT_GT(r.speedup, 0.0);
}

TEST(MetricsTest, RunWorkloadDetectsFalseDismissals) {
  const TrajectoryDataset db = testutil::SmallDataset(125, 30);
  QueryEngine engine(db, kEps);
  const std::vector<Trajectory> queries = SampleQueries(db, 2);
  const std::vector<KnnResult> gt = RunGroundTruth(engine, queries, 5);

  // A deliberately broken searcher that drops the nearest neighbor.
  NamedSearcher broken{"Broken", [&engine](const Trajectory& q, size_t k) {
                         KnnResult r = engine.SeqScan(q, k);
                         r.neighbors.erase(r.neighbors.begin());
                         r.neighbors.push_back({0, 1e9});
                         return r;
                       }};
  const WorkloadResult r = RunWorkload(broken, queries, 5, &gt, 0.0);
  EXPECT_FALSE(r.lossless);
}

TEST(MetricsTest, LatencyPercentilesNearestRank) {
  EXPECT_EQ(LatencyPercentile({}, 0.5), 0.0);
  EXPECT_EQ(LatencyPercentile({3.0}, 0.5), 3.0);
  EXPECT_EQ(LatencyPercentile({3.0}, 0.95), 3.0);
  // 10 sorted values 1..10: p50 -> 5th value, p95 -> 10th, p100 -> 10th.
  std::vector<double> v{10, 1, 9, 2, 8, 3, 7, 4, 6, 5};
  EXPECT_EQ(LatencyPercentile(v, 0.50), 5.0);
  EXPECT_EQ(LatencyPercentile(v, 0.95), 10.0);
  EXPECT_EQ(LatencyPercentile(v, 1.00), 10.0);
  EXPECT_EQ(LatencyPercentile(v, 0.20), 2.0);

  WorkloadResult r;
  FillLatencyPercentiles(&r, v);
  EXPECT_EQ(r.p50_seconds, 5.0);
  EXPECT_EQ(r.p95_seconds, 10.0);
  EXPECT_EQ(r.max_seconds, 10.0);
}

TEST(MetricsTest, LatencyPercentileEdgeQuantiles) {
  std::vector<double> v{4.0, 2.0, 1.0, 3.0};
  // q = 0 clamps to the smallest sample rather than indexing before it.
  EXPECT_EQ(LatencyPercentile(v, 0.0), 1.0);
  EXPECT_EQ(LatencyPercentile(v, 1.0), 4.0);
  // Rank boundaries: q*n exactly integral picks that rank, a hair more
  // rounds up to the next.
  EXPECT_EQ(LatencyPercentile(v, 0.25), 1.0);
  EXPECT_EQ(LatencyPercentile(v, 0.26), 2.0);
  EXPECT_EQ(LatencyPercentile(v, 0.75), 3.0);
  EXPECT_EQ(LatencyPercentile(v, 0.76), 4.0);
  // Duplicates collapse to the same value across a rank span.
  EXPECT_EQ(LatencyPercentile({5.0, 5.0, 5.0}, 0.5), 5.0);
}

TEST(MetricsTest, FillLatencyPercentilesEdgeCases) {
  WorkloadResult untouched;
  untouched.p50_seconds = 42.0;
  FillLatencyPercentiles(&untouched, {});
  // An empty sample list leaves the result untouched instead of zeroing.
  EXPECT_EQ(untouched.p50_seconds, 42.0);
  EXPECT_EQ(untouched.max_seconds, 0.0);

  WorkloadResult single;
  FillLatencyPercentiles(&single, {7.0});
  EXPECT_EQ(single.p50_seconds, 7.0);
  EXPECT_EQ(single.p95_seconds, 7.0);
  EXPECT_EQ(single.max_seconds, 7.0);
}

TEST(MetricsTest, RunWorkloadAggregatesStageTotals) {
  const TrajectoryDataset db = testutil::SmallDataset(127, 40, 6, 50);
  QueryEngine engine(db, kEps);
  const std::vector<Trajectory> queries = SampleQueries(db, 3);
  const WorkloadResult r =
      RunWorkload(engine.MakeSeqScan(), queries, 5, nullptr, 0.0);
  EXPECT_EQ(r.db_size_total, db.size() * queries.size());
  if constexpr (kObsEnabled) {
    // Per-query conservation survives the workload summation.
    EXPECT_TRUE(r.stage_totals.Conserves(r.db_size_total));
    EXPECT_EQ(r.stage_totals.dp_invoked, r.db_size_total);
  } else {
    EXPECT_EQ(r.stage_totals.considered, 0u);
  }
}

TEST(MetricsTest, StageFormattingProducesAlignedColumns) {
  WorkloadResult r;
  r.method = "2HPN";
  r.queries = 2;
  r.db_size_total = 200;
  r.stage_totals.considered = 150;
  r.stage_totals.qgram_pruned = 50;
  r.stage_totals.histogram_pruned = 60;
  r.stage_totals.triangle_pruned = 20;
  r.stage_totals.dp_invoked = 20;
  r.stage_totals.dp_cells = 5000;
  r.stage_totals.not_visited = 50;
  const std::string header = FormatStageHeader();
  const std::string row = FormatStageRow(r);
  EXPECT_NE(header.find("qgram%"), std::string::npos);
  EXPECT_NE(header.find("dp%"), std::string::npos);
  EXPECT_NE(header.find("cells/query"), std::string::npos);
  EXPECT_NE(row.find("2HPN"), std::string::npos);
  EXPECT_NE(row.find("25.00"), std::string::npos);   // qgram 50/200.
  EXPECT_NE(row.find("30.00"), std::string::npos);   // hist 60/200.
  EXPECT_NE(row.find("2500"), std::string::npos);    // 5000 cells / 2.
  EXPECT_EQ(header.size(), row.size());
}

TEST(MetricsTest, StageFormattingHandlesEmptyWorkload) {
  // All-zero counters (EDR_DISABLE_OBS builds, or a zero-query workload)
  // must render without dividing by zero.
  WorkloadResult r;
  r.method = "SeqScan";
  const std::string row = FormatStageRow(r);
  EXPECT_NE(row.find("SeqScan"), std::string::npos);
  EXPECT_EQ(row.find("nan"), std::string::npos);
  EXPECT_EQ(row.find("inf"), std::string::npos);
}

TEST(MetricsTest, RunWorkloadFillsLatencyDistribution) {
  const TrajectoryDataset db = testutil::SmallDataset(126, 40, 6, 50);
  QueryEngine engine(db, kEps);
  const std::vector<Trajectory> queries = SampleQueries(db, 4);
  const WorkloadResult r =
      RunWorkload(engine.MakeSeqScan(), queries, 5, nullptr, 0.0);
  EXPECT_GT(r.p50_seconds, 0.0);
  EXPECT_LE(r.p50_seconds, r.p95_seconds);
  EXPECT_LE(r.p95_seconds, r.max_seconds);
  EXPECT_LE(r.avg_seconds, r.max_seconds);
}

TEST(MetricsTest, FormattingProducesAlignedColumns) {
  WorkloadResult r;
  r.method = "PS2(q=1)";
  r.avg_pruning_power = 0.5;
  r.avg_seconds = 0.001;
  r.speedup = 2.0;
  const std::string header = FormatWorkloadHeader();
  const std::string row = FormatWorkloadRow(r);
  EXPECT_NE(header.find("method"), std::string::npos);
  EXPECT_NE(header.find("speedup"), std::string::npos);
  EXPECT_NE(header.find("p50_ms"), std::string::npos);
  EXPECT_NE(header.find("p95_ms"), std::string::npos);
  EXPECT_NE(header.find("max_ms"), std::string::npos);
  EXPECT_NE(row.find("PS2(q=1)"), std::string::npos);
  EXPECT_NE(row.find("yes"), std::string::npos);
  EXPECT_EQ(header.size(), row.size());
}

}  // namespace
}  // namespace edr
