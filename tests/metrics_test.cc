#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(MetricsTest, SampleQueriesEvenlySpaced) {
  const TrajectoryDataset db = testutil::SmallDataset(121, 40);
  const std::vector<Trajectory> queries = SampleQueries(db, 4);
  ASSERT_EQ(queries.size(), 4u);
  EXPECT_TRUE(queries[0] == db[0]);
  EXPECT_TRUE(queries[1] == db[10]);
  EXPECT_TRUE(queries[3] == db[30]);
}

TEST(MetricsTest, SampleQueriesClampedToDbSize) {
  const TrajectoryDataset db = testutil::SmallDataset(122, 5);
  EXPECT_EQ(SampleQueries(db, 50).size(), 5u);
  EXPECT_TRUE(SampleQueries(db, 0).empty());
  EXPECT_TRUE(SampleQueries(TrajectoryDataset(), 3).empty());
}

TEST(MetricsTest, GroundTruthMatchesSeqScan) {
  const TrajectoryDataset db = testutil::SmallDataset(123, 30);
  QueryEngine engine(db, kEps);
  const std::vector<Trajectory> queries = SampleQueries(db, 3);
  const std::vector<KnnResult> gt = RunGroundTruth(engine, queries, 5);
  ASSERT_EQ(gt.size(), 3u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameKnnDistances(gt[i], engine.SeqScan(queries[i], 5)));
  }
  EXPECT_GT(MeanSeconds(gt), 0.0);
}

TEST(MetricsTest, RunWorkloadAggregatesAndCertifies) {
  const TrajectoryDataset db = testutil::SmallDataset(124, 50, 6, 50);
  QueryEngine engine(db, kEps);
  const std::vector<Trajectory> queries = SampleQueries(db, 4);
  const std::vector<KnnResult> gt = RunGroundTruth(engine, queries, 5);
  const double base = MeanSeconds(gt);

  const WorkloadResult r = RunWorkload(
      engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                           HistogramScan::kSorted),
      queries, 5, &gt, base);
  EXPECT_EQ(r.queries, 4u);
  EXPECT_TRUE(r.lossless);
  EXPECT_GE(r.avg_pruning_power, 0.0);
  EXPECT_LE(r.avg_pruning_power, 1.0);
  EXPECT_GT(r.avg_seconds, 0.0);
  EXPECT_GT(r.speedup, 0.0);
}

TEST(MetricsTest, RunWorkloadDetectsFalseDismissals) {
  const TrajectoryDataset db = testutil::SmallDataset(125, 30);
  QueryEngine engine(db, kEps);
  const std::vector<Trajectory> queries = SampleQueries(db, 2);
  const std::vector<KnnResult> gt = RunGroundTruth(engine, queries, 5);

  // A deliberately broken searcher that drops the nearest neighbor.
  NamedSearcher broken{"Broken", [&engine](const Trajectory& q, size_t k) {
                         KnnResult r = engine.SeqScan(q, k);
                         r.neighbors.erase(r.neighbors.begin());
                         r.neighbors.push_back({0, 1e9});
                         return r;
                       }};
  const WorkloadResult r = RunWorkload(broken, queries, 5, &gt, 0.0);
  EXPECT_FALSE(r.lossless);
}

TEST(MetricsTest, LatencyPercentilesNearestRank) {
  EXPECT_EQ(LatencyPercentile({}, 0.5), 0.0);
  EXPECT_EQ(LatencyPercentile({3.0}, 0.5), 3.0);
  EXPECT_EQ(LatencyPercentile({3.0}, 0.95), 3.0);
  // 10 sorted values 1..10: p50 -> 5th value, p95 -> 10th, p100 -> 10th.
  std::vector<double> v{10, 1, 9, 2, 8, 3, 7, 4, 6, 5};
  EXPECT_EQ(LatencyPercentile(v, 0.50), 5.0);
  EXPECT_EQ(LatencyPercentile(v, 0.95), 10.0);
  EXPECT_EQ(LatencyPercentile(v, 1.00), 10.0);
  EXPECT_EQ(LatencyPercentile(v, 0.20), 2.0);

  WorkloadResult r;
  FillLatencyPercentiles(&r, v);
  EXPECT_EQ(r.p50_seconds, 5.0);
  EXPECT_EQ(r.p95_seconds, 10.0);
  EXPECT_EQ(r.max_seconds, 10.0);
}

TEST(MetricsTest, RunWorkloadFillsLatencyDistribution) {
  const TrajectoryDataset db = testutil::SmallDataset(126, 40, 6, 50);
  QueryEngine engine(db, kEps);
  const std::vector<Trajectory> queries = SampleQueries(db, 4);
  const WorkloadResult r =
      RunWorkload(engine.MakeSeqScan(), queries, 5, nullptr, 0.0);
  EXPECT_GT(r.p50_seconds, 0.0);
  EXPECT_LE(r.p50_seconds, r.p95_seconds);
  EXPECT_LE(r.p95_seconds, r.max_seconds);
  EXPECT_LE(r.avg_seconds, r.max_seconds);
}

TEST(MetricsTest, FormattingProducesAlignedColumns) {
  WorkloadResult r;
  r.method = "PS2(q=1)";
  r.avg_pruning_power = 0.5;
  r.avg_seconds = 0.001;
  r.speedup = 2.0;
  const std::string header = FormatWorkloadHeader();
  const std::string row = FormatWorkloadRow(r);
  EXPECT_NE(header.find("method"), std::string::npos);
  EXPECT_NE(header.find("speedup"), std::string::npos);
  EXPECT_NE(header.find("p50_ms"), std::string::npos);
  EXPECT_NE(header.find("p95_ms"), std::string::npos);
  EXPECT_NE(header.find("max_ms"), std::string::npos);
  EXPECT_NE(row.find("PS2(q=1)"), std::string::npos);
  EXPECT_NE(row.find("yes"), std::string::npos);
  EXPECT_EQ(header.size(), row.size());
}

}  // namespace
}  // namespace edr
