#include "obs/registry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/obs.h"
#include "obs/periodic_dumper.h"
#include "query/thread_pool.h"

namespace edr {
namespace {

// Process-wide registry state is shared across tests in this binary, so
// every test namespaces its entries ("test_registry.<case>.*") and resets
// only what it owns via the returned references.

TEST(ObsRegistryTest, CounterIncLoadReset) {
  ObsCounter& c =
      MetricsRegistry::Global().Counter("test_registry.basic.count");
  c.Reset();
  c.Inc();
  c.Inc(4);
  if constexpr (kObsEnabled) {
    EXPECT_EQ(c.Load(), 5u);
  } else {
    EXPECT_EQ(c.Load(), 0u);  // Inc compiles to nothing.
  }
  c.Reset();
  EXPECT_EQ(c.Load(), 0u);
}

TEST(ObsRegistryTest, SameNameReturnsSameCounter) {
  ObsCounter& a =
      MetricsRegistry::Global().Counter("test_registry.alias.count");
  ObsCounter& b =
      MetricsRegistry::Global().Counter("test_registry.alias.count");
  EXPECT_EQ(&a, &b);
  LatencyHistogram& h =
      MetricsRegistry::Global().Histogram("test_registry.alias.seconds");
  LatencyHistogram& h2 =
      MetricsRegistry::Global().Histogram("test_registry.alias.seconds");
  EXPECT_EQ(&h, &h2);
}

TEST(ObsRegistryTest, CounterAggregatesAcrossPoolWorkers) {
  ObsCounter& c =
      MetricsRegistry::Global().Counter("test_registry.pool.count");
  c.Reset();
  ThreadPool pool(3);
  constexpr size_t kItems = 10000;
  pool.ParallelFor(kItems, [&c](size_t) { c.Inc(); });
  if constexpr (kObsEnabled) {
    // Relaxed atomics still never lose increments.
    EXPECT_EQ(c.Load(), kItems);
  } else {
    EXPECT_EQ(c.Load(), 0u);
  }
  c.Reset();
}

TEST(ObsRegistryTest, HistogramRecordsAndBrackets) {
  LatencyHistogram h;
  h.Record(1e-6);
  h.Record(1e-3);
  h.Record(1e-3);
  h.Record(0.5);
  if constexpr (!kObsEnabled) {
    EXPECT_EQ(h.TotalCount(), 0u);
    return;
  }
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_NEAR(h.TotalSeconds(), 0.502001, 1e-4);
  uint64_t bucket_sum = 0;
  for (const uint64_t b : h.BucketCounts()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, 4u);
  // Log-bucketed percentiles are the bucket's upper edge: within 2x of
  // the true value, never below it.
  const double p50 = h.PercentileSeconds(0.5);
  EXPECT_GE(p50, 1e-3);
  EXPECT_LE(p50, 2e-3);
  const double p100 = h.PercentileSeconds(1.0);
  EXPECT_GE(p100, 0.5);
  EXPECT_LE(p100, 1.0);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.PercentileSeconds(0.5), 0.0);
}

TEST(ObsRegistryTest, HistogramPercentileEdgeCases) {
  LatencyHistogram h;
  EXPECT_EQ(h.PercentileSeconds(0.5), 0.0);  // Empty.
  h.Record(1e-4);
  if constexpr (kObsEnabled) {
    // A single sample is every percentile.
    EXPECT_EQ(h.PercentileSeconds(0.0), h.PercentileSeconds(1.0));
    EXPECT_GE(h.PercentileSeconds(0.5), 1e-4);
  }
}

TEST(ObsRegistryTest, SnapshotExportsJsonAndTable) {
  ObsCounter& c =
      MetricsRegistry::Global().Counter("test_registry.snapshot.count");
  LatencyHistogram& h =
      MetricsRegistry::Global().Histogram("test_registry.snapshot.seconds");
  c.Reset();
  h.Reset();
  c.Inc(3);
  h.Record(0.001);
  h.Record(0.002);

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  bool counter_found = false;
  for (const MetricsSnapshot::CounterRow& row : snap.counters) {
    if (row.name == "test_registry.snapshot.count") {
      counter_found = true;
      EXPECT_EQ(row.value, kObsEnabled ? 3u : 0u);
    }
  }
  EXPECT_TRUE(counter_found);
  bool histogram_found = false;
  for (const MetricsSnapshot::HistogramRow& row : snap.histograms) {
    if (row.name == "test_registry.snapshot.seconds") {
      histogram_found = true;
      EXPECT_EQ(row.count, kObsEnabled ? 2u : 0u);
      if constexpr (kObsEnabled) {
        EXPECT_LE(row.p50_seconds, row.p95_seconds);
        EXPECT_LE(row.p95_seconds, row.p99_seconds);
      }
    }
  }
  EXPECT_TRUE(histogram_found);

  const std::string json = snap.ToJson();
  EXPECT_TRUE(JsonIsValid(json)) << json;
  EXPECT_NE(json.find("test_registry.snapshot.count"), std::string::npos);
  EXPECT_NE(json.find("test_registry.snapshot.seconds"), std::string::npos);
  const std::string table = snap.ToTable();
  EXPECT_NE(table.find("test_registry.snapshot.count"), std::string::npos);
  c.Reset();
  h.Reset();
}

TEST(ObsRegistryTest, CounterDrainReadsAndZeroes) {
  ObsCounter& c =
      MetricsRegistry::Global().Counter("test_registry.drain.count");
  c.Reset();
  c.Inc(6);
  EXPECT_EQ(c.Drain(), kObsEnabled ? 6u : 0u);
  EXPECT_EQ(c.Load(), 0u);
  EXPECT_EQ(c.Drain(), 0u);  // Second drain sees nothing.
}

TEST(ObsRegistryTest, HistogramDrainMovesContentsOut) {
  LatencyHistogram h;
  h.Record(1e-3);
  h.Record(2e-3);
  const LatencyHistogram::Drained d = h.Drain();
  if constexpr (!kObsEnabled) {
    EXPECT_EQ(d.count, 0u);
    return;
  }
  EXPECT_EQ(d.count, 2u);
  EXPECT_NEAR(static_cast<double>(d.sum_ns) * 1e-9, 3e-3, 1e-6);
  uint64_t bucket_sum = 0;
  for (const uint64_t b : d.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, 2u);
  // Percentiles computed from the drained buckets match the live math.
  const double p50 = LatencyHistogram::PercentileFromBuckets(d.buckets, 0.5);
  EXPECT_GE(p50, 1e-3);
  EXPECT_LE(p50, 2e-3);
  // The histogram itself is empty after the drain.
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.TotalSeconds(), 0.0);
  EXPECT_EQ(h.Drain().count, 0u);
}

TEST(ObsRegistryTest, SnapshotAndResetYieldsDeltas) {
  ObsCounter& c =
      MetricsRegistry::Global().Counter("test_registry.delta.count");
  LatencyHistogram& h =
      MetricsRegistry::Global().Histogram("test_registry.delta.seconds");
  c.Reset();
  h.Reset();
  c.Inc(5);
  h.Record(0.004);

  const auto find_counter = [](const MetricsSnapshot& snap,
                               const std::string& name) -> uint64_t {
    for (const MetricsSnapshot::CounterRow& row : snap.counters) {
      if (row.name == name) return row.value;
    }
    ADD_FAILURE() << name << " missing from snapshot";
    return 0;
  };
  const auto find_histogram_count = [](const MetricsSnapshot& snap,
                                       const std::string& name) -> uint64_t {
    for (const MetricsSnapshot::HistogramRow& row : snap.histograms) {
      if (row.name == name) return row.count;
    }
    ADD_FAILURE() << name << " missing from snapshot";
    return 0;
  };

  // First scrape returns everything since the last reset...
  const MetricsSnapshot first = MetricsRegistry::Global().SnapshotAndReset();
  EXPECT_EQ(find_counter(first, "test_registry.delta.count"),
            kObsEnabled ? 5u : 0u);
  EXPECT_EQ(find_histogram_count(first, "test_registry.delta.seconds"),
            kObsEnabled ? 1u : 0u);

  // ...and the second scrape sees only activity after the first, not the
  // cumulative total (the delta-scrape contract).
  c.Inc(2);
  const MetricsSnapshot second = MetricsRegistry::Global().SnapshotAndReset();
  EXPECT_EQ(find_counter(second, "test_registry.delta.count"),
            kObsEnabled ? 2u : 0u);
  EXPECT_EQ(find_histogram_count(second, "test_registry.delta.seconds"), 0u);

  // Entries stay registered after the reset.
  EXPECT_EQ(&MetricsRegistry::Global().Counter("test_registry.delta.count"),
            &c);
}

TEST(ObsRegistryTest, EmptySnapshotJsonIsValid) {
  // Whatever other tests registered, the export must stay one valid JSON
  // document.
  EXPECT_TRUE(JsonIsValid(MetricsRegistry::Global().Snapshot().ToJson()));
}

TEST(ObsRegistryTest, ResetForTestZeroesEverything) {
  ObsCounter& c =
      MetricsRegistry::Global().Counter("test_registry.reset.count");
  LatencyHistogram& h =
      MetricsRegistry::Global().Histogram("test_registry.reset.seconds");
  c.Inc(7);
  h.Record(0.25);
  MetricsRegistry::Global().ResetForTest();
  EXPECT_EQ(c.Load(), 0u);
  EXPECT_EQ(h.TotalCount(), 0u);
  // Entries stay registered after the reset.
  EXPECT_EQ(&MetricsRegistry::Global().Counter("test_registry.reset.count"),
            &c);
}

TEST(ObsRegistryTest, PoolStatsCountJobsItemsAndSteals) {
  ThreadPool pool(3);
  const ThreadPoolStats before = pool.Stats();
  ASSERT_EQ(before.worker_items.size(), 4u);  // Caller slot + 3 workers.
  constexpr size_t kItems = 64;
  pool.ParallelFor(kItems, [](size_t) {
    volatile double sink = 0.0;
    for (int i = 0; i < 500; ++i) sink = sink + static_cast<double>(i);
    (void)sink;
  });
  const ThreadPoolStats delta = pool.Stats().Since(before);
  if constexpr (kObsEnabled) {
    EXPECT_EQ(delta.jobs, 1u);
    EXPECT_EQ(delta.items, kItems);
    uint64_t sum = 0;
    for (const uint64_t v : delta.worker_items) sum += v;
    EXPECT_EQ(sum, kItems);  // Per-slot counts conserve the total.
    EXPECT_GT(delta.busy_seconds, 0.0);
    // Steals are schedule-dependent but can never exceed the items run.
    EXPECT_LE(delta.steals, delta.items);
  } else {
    EXPECT_EQ(delta.jobs, 0u);
    EXPECT_EQ(delta.items, 0u);
    EXPECT_EQ(delta.busy_seconds, 0.0);
  }
}

TEST(ObsRegistryTest, PoolInlinePathIsNotCountedAsJob) {
  ThreadPool pool(3);
  const ThreadPoolStats before = pool.Stats();
  pool.ParallelFor(1, [](size_t) {});                        // n <= 1.
  pool.ParallelFor(16, [](size_t) {}, /*max_parallelism=*/1);  // Capped.
  const ThreadPoolStats delta = pool.Stats().Since(before);
  EXPECT_EQ(delta.jobs, 0u);
  EXPECT_EQ(delta.items, 0u);
}

TEST(ObsRegistryTest, PaddingKeepsCountersOnOwnCacheLines) {
  static_assert(sizeof(ObsCounter) == 64, "one line per counter");
  static_assert(alignof(ObsCounter) == 64, "line-aligned");
}

TEST(ObsRegistryTest, RegisterStandardMetricsPreRegistersAllFamilies) {
  RegisterStandardMetrics();
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto has_counter = [&snap](const std::string& name) {
    for (const MetricsSnapshot::CounterRow& row : snap.counters) {
      if (row.name == name) return true;
    }
    return false;
  };
  const auto has_histogram = [&snap](const std::string& name) {
    for (const MetricsSnapshot::HistogramRow& row : snap.histograms) {
      if (row.name == name) return true;
    }
    return false;
  };
  // The fused-sweep and feature-cache families used to appear only after
  // the first event of their kind; pre-registration makes every export
  // list them, zero-valued when idle.
  for (const char* name :
       {"query.count", "query.dp_total", "query.dp_cells",
        "query.candidates_pruned", "query.candidates_total", "batch.count",
        "batch.queries", "sched.waves", "sched.wave_queries",
        "sched.widened_queries", "sched.budget_granted", "sched.fused_groups",
        "sched.fused_queries", "sched.group_similarity", "sched.group_fifo",
        "sched.group_forced", "feature_cache.hits", "feature_cache.misses",
        "feature_cache.evictions", "plan_cache.hits", "plan_cache.misses",
        "plan_cache.evictions", "plan_cache.collisions"}) {
    EXPECT_TRUE(has_counter(name)) << name;
  }
  bool has_gauge = false;
  for (const MetricsSnapshot::GaugeRow& row : snap.gauges) {
    has_gauge = has_gauge || row.name == "sched.group_shared_bin_fraction";
  }
  EXPECT_TRUE(has_gauge) << "sched.group_shared_bin_fraction";
  EXPECT_TRUE(has_histogram("query.seconds"));
  EXPECT_TRUE(has_histogram("batch.seconds"));
  // Idempotent: a second call registers nothing new.
  const size_t counters = snap.counters.size();
  RegisterStandardMetrics();
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().counters.size(), counters);
}

TEST(ObsRegistryTest, SnapshotCarriesRawBucketCounts) {
  LatencyHistogram& h =
      MetricsRegistry::Global().Histogram("test_registry.buckets.seconds");
  h.Reset();
  h.Record(1e-3);
  h.Record(1e-3);
  h.Record(0.25);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  for (const MetricsSnapshot::HistogramRow& row : snap.histograms) {
    if (row.name != "test_registry.buckets.seconds") continue;
    uint64_t sum = 0;
    for (const uint64_t b : row.buckets) sum += b;
    EXPECT_EQ(sum, row.count);  // Buckets conserve the sample count.
    EXPECT_EQ(sum, kObsEnabled ? 3u : 0u);
  }
  h.Reset();
}

TEST(ObsPeriodicDumperTest, RejectsNonPositiveIntervals) {
  std::string error;
  EXPECT_FALSE(PeriodicMetricsDumper::ValidInterval(0.0, &error));
  EXPECT_NE(error.find("positive"), std::string::npos) << error;
  EXPECT_FALSE(PeriodicMetricsDumper::ValidInterval(-2.5, &error));
  EXPECT_FALSE(PeriodicMetricsDumper::ValidInterval(
      std::numeric_limits<double>::quiet_NaN(), &error));
  EXPECT_FALSE(PeriodicMetricsDumper::ValidInterval(
      std::numeric_limits<double>::infinity(), &error));
  EXPECT_TRUE(PeriodicMetricsDumper::ValidInterval(0.001));

  // A dumper built on an invalid interval refuses to start: no thread,
  // no dumps — and says so instead of silently disabling itself.
  PeriodicMetricsDumper::Options options;
  options.interval_seconds = 0.0;
  options.sink = [](const std::string&) { ADD_FAILURE() << "dumped"; };
  PeriodicMetricsDumper dumper(options);
  EXPECT_FALSE(dumper.Start());
  EXPECT_FALSE(dumper.running());
  dumper.Stop();
  EXPECT_EQ(dumper.dumps(), 0u);
}

TEST(ObsPeriodicDumperTest, StopFlushesTheFinalPartialIntervalOnce) {
  ObsCounter& c =
      MetricsRegistry::Global().Counter("test_registry.dumper.count");
  c.Reset();

  std::mutex mu;
  std::vector<std::string> lines;
  PeriodicMetricsDumper::Options options;
  // Far longer than the test: the only dump must be the final flush.
  options.interval_seconds = 1000.0;
  options.sink = [&mu, &lines](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  PeriodicMetricsDumper dumper(options);
  ASSERT_TRUE(dumper.Start());
  EXPECT_TRUE(dumper.running());
  c.Inc(9);
  dumper.Stop();
  EXPECT_FALSE(dumper.running());

  // Exactly one line — the final flush — and it is one valid JSON object
  // carrying the activity from the partial interval.
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(dumper.dumps(), 1u);
  EXPECT_TRUE(JsonIsValid(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("\"t_ms\""), std::string::npos);
  EXPECT_NE(lines[0].find("test_registry.dumper.count"), std::string::npos);

  // Stop is idempotent: no second flush.
  dumper.Stop();
  EXPECT_EQ(lines.size(), 1u);

  // The flush was a SnapshotAndReset delta: the counter is zeroed.
  EXPECT_EQ(c.Load(), 0u);
}

TEST(ObsPeriodicDumperTest, PeriodicTicksDeliverDeltas) {
  if constexpr (!kObsEnabled) return;
  std::mutex mu;
  std::vector<std::string> lines;
  PeriodicMetricsDumper::Options options;
  options.interval_seconds = 0.002;
  options.sink = [&mu, &lines](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  PeriodicMetricsDumper dumper(options);
  ASSERT_TRUE(dumper.Start());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  dumper.Stop();
  // Several periodic ticks plus the final flush, each one valid JSON.
  EXPECT_GE(lines.size(), 2u);
  EXPECT_EQ(dumper.dumps(), lines.size());
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonIsValid(line)) << line;
  }
}

}  // namespace
}  // namespace edr
