#include "core/dataset.h"

#include <gtest/gtest.h>

#include "core/normalize.h"

namespace edr {
namespace {

TrajectoryDataset MakeSmall() {
  TrajectoryDataset db("small");
  db.Add(Trajectory({{0.0, 0.0}, {1.0, 1.0}}, 0));
  db.Add(Trajectory({{2.0, 2.0}, {3.0, 3.0}, {4.0, 4.0}}, 1));
  db.Add(Trajectory({{5.0, 5.0}}, 0));
  return db;
}

TEST(DatasetTest, AddAssignsDenseIds) {
  const TrajectoryDataset db = MakeSmall();
  ASSERT_EQ(db.size(), 3u);
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db[i].id(), static_cast<uint32_t>(i));
  }
}

TEST(DatasetTest, AddReturnsId) {
  TrajectoryDataset db;
  EXPECT_EQ(db.Add(Trajectory({{0, 0}})), 0u);
  EXPECT_EQ(db.Add(Trajectory({{0, 0}})), 1u);
}

TEST(DatasetTest, NumClassesIgnoresUnlabeled) {
  TrajectoryDataset db = MakeSmall();
  db.Add(Trajectory({{9.0, 9.0}}));  // label -1
  EXPECT_EQ(db.NumClasses(), 2u);
}

TEST(DatasetTest, IdsWithLabel) {
  const TrajectoryDataset db = MakeSmall();
  const std::vector<uint32_t> zeros = db.IdsWithLabel(0);
  ASSERT_EQ(zeros.size(), 2u);
  EXPECT_EQ(zeros[0], 0u);
  EXPECT_EQ(zeros[1], 2u);
}

TEST(DatasetTest, StatsLengthsAndRange) {
  const TrajectoryDataset db = MakeSmall();
  const DatasetStats stats = db.Stats();
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.min_length, 1u);
  EXPECT_EQ(stats.max_length, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_length, 2.0);
  EXPECT_DOUBLE_EQ(stats.min_xy.x, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_xy.x, 5.0);
  EXPECT_DOUBLE_EQ(stats.min_xy.y, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_xy.y, 5.0);
}

TEST(DatasetTest, StatsOfEmptyDataset) {
  const TrajectoryDataset db;
  const DatasetStats stats = db.Stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.max_std_dev, 0.0);
}

TEST(DatasetTest, NormalizeAllThenSuggestedEpsilonIsQuarter) {
  TrajectoryDataset db = MakeSmall();
  db.NormalizeAll();
  // After z-score normalization every non-degenerate trajectory has unit
  // std-dev, so the paper's rule (a quarter of the max std dev) gives 0.25.
  EXPECT_NEAR(db.SuggestedEpsilon(), 0.25, 1e-12);
}

TEST(DatasetTest, MaxStdDevTracksWidestTrajectory) {
  TrajectoryDataset db;
  db.Add(Trajectory({{-1.0, 0.0}, {1.0, 0.0}}));    // sigma_x = 1
  db.Add(Trajectory({{-10.0, 0.0}, {10.0, 0.0}}));  // sigma_x = 10
  EXPECT_DOUBLE_EQ(db.Stats().max_std_dev, 10.0);
}

}  // namespace
}  // namespace edr
