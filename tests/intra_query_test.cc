#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "pruning/combined.h"
#include "pruning/cse.h"
#include "pruning/histogram_knn.h"
#include "pruning/lcss_knn.h"
#include "pruning/near_triangle.h"
#include "pruning/qgram_knn.h"
#include "query/knn.h"
#include "query/thread_pool.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;
constexpr size_t kDbSize = 1500;
constexpr size_t kMaxTriangle = 30;

// Shared fixtures: built once, reused by every test in the binary. The
// database is large enough (1500 trajectories) that worker shards see
// thousands of candidates each, and the dedicated 8-thread pool makes the
// multi-worker paths real even on single-core CI machines.
const TrajectoryDataset& Db() {
  static const TrajectoryDataset db =
      testutil::SmallDataset(404, kDbSize, 6, 40);
  return db;
}

ThreadPool& Pool() {
  static ThreadPool pool(8);
  return pool;
}

const PairwiseEdrMatrix& Matrix() {
  static const PairwiseEdrMatrix matrix =
      PairwiseEdrMatrix::Build(Db(), kEps, kMaxTriangle);
  return matrix;
}

using KnnFn =
    std::function<KnnResult(const Trajectory&, size_t, const KnnOptions&)>;

// The core property of the tentpole: for every worker count the parallel
// refinement returns *bit-identical* neighbors — same ids, same exact
// distances, same order — as the sequential single-worker path.
void ExpectBitIdenticalAcrossWorkers(const std::string& label,
                                     const KnnFn& knn) {
  const auto queries = testutil::MakeQueries(Db(), 405, 3);
  for (const size_t k : {1u, 10u}) {
    for (const Trajectory& query : queries) {
      const KnnResult expected = knn(query, k, KnnOptions{});
      for (const unsigned workers : {1u, 2u, 8u}) {
        KnnOptions options;
        options.intra_query_workers = workers;
        options.pool = &Pool();
        const KnnResult actual = knn(query, k, options);
        ASSERT_EQ(expected.neighbors.size(), actual.neighbors.size())
            << label << " workers=" << workers << " k=" << k;
        for (size_t i = 0; i < expected.neighbors.size(); ++i) {
          EXPECT_EQ(expected.neighbors[i].id, actual.neighbors[i].id)
              << label << " workers=" << workers << " k=" << k
              << " rank=" << i;
          EXPECT_EQ(expected.neighbors[i].distance,
                    actual.neighbors[i].distance)
              << label << " workers=" << workers << " k=" << k
              << " rank=" << i;
        }
      }
    }
  }
}

TEST(IntraQueryTest, QgramMergeJoinBitIdentical) {
  const QgramKnnSearcher ps2(Db(), kEps, /*q=*/1, QgramVariant::kMerge2D);
  ExpectBitIdenticalAcrossWorkers(
      "PS2", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return ps2.Knn(q, k, o);
      });
  const QgramKnnSearcher ps1(Db(), kEps, /*q=*/1, QgramVariant::kMerge1D);
  ExpectBitIdenticalAcrossWorkers(
      "PS1", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return ps1.Knn(q, k, o);
      });
}

TEST(IntraQueryTest, HistogramSequentialScanBitIdentical) {
  const HistogramKnnSearcher hse(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSequential);
  ExpectBitIdenticalAcrossWorkers(
      "HSE", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return hse.Knn(q, k, o);
      });
}

TEST(IntraQueryTest, HistogramSortedScanBitIdentical) {
  const HistogramKnnSearcher hsr(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSorted);
  ExpectBitIdenticalAcrossWorkers(
      "HSR", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return hsr.Knn(q, k, o);
      });
}

TEST(IntraQueryTest, NearTriangleBitIdentical) {
  const NearTriangleSearcher ntr(Db(), kEps, Matrix());
  ExpectBitIdenticalAcrossWorkers(
      "NTR", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return ntr.Knn(q, k, o);
      });
}

TEST(IntraQueryTest, CseBitIdentical) {
  const CseSearcher cse(Db(), kEps, Matrix());
  ExpectBitIdenticalAcrossWorkers(
      "CSE", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return cse.Knn(q, k, o);
      });
}

TEST(IntraQueryTest, CombinedBitIdentical) {
  CombinedOptions combined_options;
  combined_options.max_triangle = kMaxTriangle;
  const CombinedKnnSearcher combined(Db(), kEps, combined_options, Matrix());
  ExpectBitIdenticalAcrossWorkers(
      "2HPN", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return combined.Knn(q, k, o);
      });
  // Database-order variant (no sorted histogram scan): exercises the
  // db-order refinement driver through the combined filter chain.
  combined_options.sorted_histogram_scan = false;
  const CombinedKnnSearcher seq_scan(Db(), kEps, combined_options, Matrix());
  ExpectBitIdenticalAcrossWorkers(
      "2HPN/seq", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return seq_scan.Knn(q, k, o);
      });
}

TEST(IntraQueryTest, LcssBitIdentical) {
  const LcssKnnSearcher lcss(Db(), kEps, LcssFilter::kBoth);
  ExpectBitIdenticalAcrossWorkers(
      "LCSS-HP", [&](const Trajectory& q, size_t k, const KnnOptions& o) {
        return lcss.Knn(q, k, o);
      });
}

// All six searchers must also agree with the plain sequential scan —
// parallelism on top of the filters must stay lossless end to end.
TEST(IntraQueryTest, ParallelResultsAreLossless) {
  const QgramKnnSearcher ps2(Db(), kEps, /*q=*/1, QgramVariant::kMerge2D);
  const HistogramKnnSearcher hsr(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSorted);
  const NearTriangleSearcher ntr(Db(), kEps, Matrix());
  KnnOptions options;
  options.intra_query_workers = 8;
  options.pool = &Pool();
  for (const Trajectory& query : testutil::MakeQueries(Db(), 406, 2)) {
    const KnnResult truth = SequentialScanKnn(Db(), query, 10, kEps);
    EXPECT_TRUE(SameKnnDistances(truth, ps2.Knn(query, 10, options)));
    EXPECT_TRUE(SameKnnDistances(truth, hsr.Knn(query, 10, options)));
    EXPECT_TRUE(SameKnnDistances(truth, ntr.Knn(query, 10, options)));
  }
}

TEST(IntraQueryTest, ZeroKReturnsEmpty) {
  const QgramKnnSearcher ps2(Db(), kEps, /*q=*/1, QgramVariant::kMerge2D);
  KnnOptions options;
  options.intra_query_workers = 8;
  options.pool = &Pool();
  const auto queries = testutil::MakeQueries(Db(), 407, 1);
  const KnnResult result = ps2.Knn(queries[0], 0, options);
  EXPECT_TRUE(result.neighbors.empty());
}

}  // namespace
}  // namespace edr
