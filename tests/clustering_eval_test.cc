#include "eval/clustering_eval.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "distance/edr.h"
#include "distance/euclidean.h"

namespace edr {
namespace {

/// Three well-separated classes of near-identical trajectories.
TrajectoryDataset SeparatedClasses(int per_class = 3) {
  Rng rng(101);
  TrajectoryDataset db;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_class; ++i) {
      Trajectory t;
      for (int j = 0; j < 30; ++j) {
        t.Append(c * 100.0 + 0.05 * j + rng.Gaussian(0.0, 0.01),
                 c * 50.0 + rng.Gaussian(0.0, 0.01));
      }
      t.set_label(c);
      db.Add(std::move(t));
    }
  }
  return db;
}

TEST(ClusteringEvalTest, PerfectDistancePartitionsAllPairs) {
  const TrajectoryDataset db = SeparatedClasses();
  const ClassPairClusteringResult result = EvaluateClusteringByClassPairs(
      db, [](const Trajectory& a, const Trajectory& b) {
        return SlidingEuclideanDistance(a, b);
      });
  EXPECT_EQ(result.total_pairs, 3u);  // C(3,2).
  EXPECT_EQ(result.correct_pairs, 3u);
}

TEST(ClusteringEvalTest, EdrAlsoPartitionsSeparatedClasses) {
  const TrajectoryDataset db = SeparatedClasses();
  const ClassPairClusteringResult result = EvaluateClusteringByClassPairs(
      db, [](const Trajectory& a, const Trajectory& b) {
        return static_cast<double>(EdrDistance(a, b, 0.25));
      });
  EXPECT_EQ(result.correct_pairs, result.total_pairs);
}

TEST(ClusteringEvalTest, DegenerateDistanceFailsSomePairs) {
  const TrajectoryDataset db = SeparatedClasses();
  // A constant distance carries no information; complete linkage then
  // merges arbitrarily and cannot recover class structure reliably.
  const ClassPairClusteringResult result = EvaluateClusteringByClassPairs(
      db, [](const Trajectory&, const Trajectory&) { return 1.0; });
  EXPECT_LT(result.correct_pairs, result.total_pairs);
}

TEST(ClusteringEvalTest, PairCountIsChooseTwo) {
  Rng rng(102);
  TrajectoryDataset db;
  for (int c = 0; c < 5; ++c) {
    for (int i = 0; i < 2; ++i) {
      Trajectory t;
      for (int j = 0; j < 5; ++j) t.Append(rng.Gaussian(), rng.Gaussian());
      t.set_label(c);
      db.Add(std::move(t));
    }
  }
  const ClassPairClusteringResult result = EvaluateClusteringByClassPairs(
      db, [](const Trajectory& a, const Trajectory& b) {
        return SlidingEuclideanDistance(a, b);
      });
  EXPECT_EQ(result.total_pairs, 10u);  // C(5,2).
}

TEST(ClusteringEvalTest, UnlabeledDatasetHasNoPairs) {
  TrajectoryDataset db;
  db.Add(Trajectory({{0.0, 0.0}}));
  const ClassPairClusteringResult result = EvaluateClusteringByClassPairs(
      db, [](const Trajectory&, const Trajectory&) { return 0.0; });
  EXPECT_EQ(result.total_pairs, 0u);
  EXPECT_EQ(result.correct_pairs, 0u);
}

}  // namespace
}  // namespace edr
