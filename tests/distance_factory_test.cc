#include "distance/distance.h"

#include <gtest/gtest.h>

#include <string>

#include "core/rng.h"
#include "distance/dtw.h"
#include "distance/edr.h"
#include "distance/erp.h"
#include "distance/euclidean.h"
#include "distance/lcss.h"

namespace edr {
namespace {

Trajectory RandomTrajectory(Rng& rng, int len) {
  Trajectory t;
  for (int i = 0; i < len; ++i) t.Append(rng.Gaussian(), rng.Gaussian());
  return t;
}

TEST(DistanceFactoryTest, NamesMatchPaperHeaders) {
  EXPECT_STREQ(DistanceKindName(DistanceKind::kEuclidean), "Eu");
  EXPECT_STREQ(DistanceKindName(DistanceKind::kDtw), "DTW");
  EXPECT_STREQ(DistanceKindName(DistanceKind::kErp), "ERP");
  EXPECT_STREQ(DistanceKindName(DistanceKind::kLcss), "LCSS");
  EXPECT_STREQ(DistanceKindName(DistanceKind::kEdr), "EDR");
}

TEST(DistanceFactoryTest, AllKindsProduceCallableFunctions) {
  Rng rng(61);
  const Trajectory a = RandomTrajectory(rng, 12);
  const Trajectory b = RandomTrajectory(rng, 12);
  for (const DistanceKind kind : kAllDistanceKinds) {
    const DistanceFn fn = MakeDistance(kind, {});
    ASSERT_TRUE(fn) << DistanceKindName(kind);
    const double d = fn(a, b);
    EXPECT_GE(d, 0.0) << DistanceKindName(kind);
  }
}

TEST(DistanceFactoryTest, FactoryMatchesDirectCalls) {
  Rng rng(62);
  const Trajectory a = RandomTrajectory(rng, 15);
  const Trajectory b = RandomTrajectory(rng, 18);
  DistanceOptions options;
  options.epsilon = 0.3;

  EXPECT_DOUBLE_EQ(MakeDistance(DistanceKind::kEuclidean, options)(a, b),
                   SlidingEuclideanDistance(a, b));
  EXPECT_DOUBLE_EQ(MakeDistance(DistanceKind::kDtw, options)(a, b),
                   DtwDistance(a, b));
  EXPECT_DOUBLE_EQ(MakeDistance(DistanceKind::kErp, options)(a, b),
                   ErpDistance(a, b));
  EXPECT_DOUBLE_EQ(MakeDistance(DistanceKind::kLcss, options)(a, b),
                   LcssDistance(a, b, 0.3));
  EXPECT_DOUBLE_EQ(MakeDistance(DistanceKind::kEdr, options)(a, b),
                   static_cast<double>(EdrDistance(a, b, 0.3)));
}

TEST(DistanceFactoryTest, BandOptionIsForwarded) {
  Rng rng(63);
  const Trajectory a = RandomTrajectory(rng, 20);
  const Trajectory b = RandomTrajectory(rng, 25);
  DistanceOptions options;
  options.band = 2;
  EXPECT_DOUBLE_EQ(MakeDistance(DistanceKind::kDtw, options)(a, b),
                   DtwDistanceBanded(a, b, 2));
  EXPECT_DOUBLE_EQ(MakeDistance(DistanceKind::kEdr, options)(a, b),
                   static_cast<double>(EdrDistanceBanded(a, b, 0.25, 2)));
}

TEST(DistanceFactoryTest, ErpGapOptionIsForwarded) {
  Rng rng(64);
  const Trajectory a = RandomTrajectory(rng, 10);
  const Trajectory b;
  DistanceOptions options;
  options.erp_gap = {2.0, 1.0};
  EXPECT_DOUBLE_EQ(MakeDistance(DistanceKind::kErp, options)(a, b),
                   ErpDistance(a, b, {2.0, 1.0}));
}

}  // namespace
}  // namespace edr
