#include "distance/lcss.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace edr {
namespace {

Trajectory Seq(std::initializer_list<double> xs) {
  Trajectory t;
  for (const double x : xs) t.Append(x, 0.0);
  return t;
}

TEST(LcssTest, EmptyScoresZero) {
  EXPECT_EQ(LcssLength(Trajectory(), Seq({1, 2}), 0.5), 0u);
  EXPECT_EQ(LcssLength(Seq({1, 2}), Trajectory(), 0.5), 0u);
}

TEST(LcssTest, IdenticalScoresFullLength) {
  const Trajectory t = Seq({1, 2, 3, 4});
  EXPECT_EQ(LcssLength(t, t, 0.1), 4u);
}

TEST(LcssTest, KnownSubsequence) {
  const Trajectory a = Seq({1, 9, 2, 9, 3});
  const Trajectory b = Seq({1, 2, 3});
  EXPECT_EQ(LcssLength(a, b, 0.1), 3u);
}

TEST(LcssTest, ThresholdControlsMatching) {
  const Trajectory a = Seq({0.0});
  const Trajectory b = Seq({0.4});
  EXPECT_EQ(LcssLength(a, b, 0.5), 1u);
  EXPECT_EQ(LcssLength(a, b, 0.3), 0u);
}

TEST(LcssTest, MatchRequiresBothDimensions) {
  Trajectory a;
  a.Append(0.0, 0.0);
  Trajectory b;
  b.Append(0.1, 5.0);  // x matches within 0.5, y does not.
  EXPECT_EQ(LcssLength(a, b, 0.5), 0u);
}

TEST(LcssTest, RobustToOutliers) {
  // Huge outliers cannot inflate the score by more than their count and
  // never destroy the existing matches.
  const Trajectory clean = Seq({1, 2, 3, 4});
  const Trajectory noisy = Seq({1, 1000, 2, 3, 4});
  EXPECT_EQ(LcssLength(clean, noisy, 0.5), 4u);
}

TEST(LcssTest, GapBlindness) {
  // Section 2's criticism of LCSS: the score ignores how long the gap
  // between matched subsequences is. S has a one-element gap, P a
  // two-element gap; every element of Q matches in both, so LCSS ties.
  const Trajectory q = Seq({1, 2, 3, 4});
  const Trajectory s = Seq({1, 100, 2, 3, 4});
  const Trajectory p = Seq({1, 100, 101, 2, 3, 4});
  EXPECT_EQ(LcssLength(q, s, 0.5), 4u);
  EXPECT_EQ(LcssLength(q, p, 0.5), 4u);
  EXPECT_DOUBLE_EQ(LcssDistance(q, s, 0.5), LcssDistance(q, p, 0.5));
}

TEST(LcssTest, Symmetric) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    Trajectory a;
    Trajectory b;
    const int la = static_cast<int>(rng.UniformInt(3, 25));
    const int lb = static_cast<int>(rng.UniformInt(3, 25));
    for (int i = 0; i < la; ++i) a.Append(rng.Gaussian(), rng.Gaussian());
    for (int i = 0; i < lb; ++i) b.Append(rng.Gaussian(), rng.Gaussian());
    EXPECT_EQ(LcssLength(a, b, 0.5), LcssLength(b, a, 0.5));
  }
}

TEST(LcssTest, ScoreBoundedByMinLength) {
  Rng rng(42);
  Trajectory a;
  Trajectory b;
  for (int i = 0; i < 10; ++i) a.Append(rng.Gaussian(), rng.Gaussian());
  for (int i = 0; i < 17; ++i) b.Append(rng.Gaussian(), rng.Gaussian());
  EXPECT_LE(LcssLength(a, b, 0.5), 10u);
}

TEST(LcssBandedTest, BandLowerBoundsScore) {
  Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    Trajectory a;
    Trajectory b;
    for (int i = 0; i < 20; ++i) a.Append(rng.Gaussian(), rng.Gaussian());
    for (int i = 0; i < 24; ++i) b.Append(rng.Gaussian(), rng.Gaussian());
    const size_t full = LcssLength(a, b, 0.5);
    for (const int band : {0, 2, 6}) {
      EXPECT_LE(LcssLengthBanded(a, b, 0.5, band), full);
    }
    EXPECT_EQ(LcssLengthBanded(a, b, 0.5, 100), full);
  }
}

TEST(LcssDistanceTest, DistanceFormInUnitInterval) {
  const Trajectory a = Seq({1, 9, 2, 9, 3});
  const Trajectory b = Seq({1, 2, 3});
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, 0.1), 0.0);  // b fully matched.
  const Trajectory c = Seq({50, 60, 70});
  EXPECT_DOUBLE_EQ(LcssDistance(b, c, 0.1), 1.0);  // Nothing matches.
}

TEST(LcssDistanceTest, EmptyIsMaximallyDistant) {
  EXPECT_DOUBLE_EQ(LcssDistance(Trajectory(), Seq({1}), 0.5), 1.0);
}

}  // namespace
}  // namespace edr
