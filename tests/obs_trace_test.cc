#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/obs.h"
#include "obs/trace_agg.h"

namespace edr {
namespace {

// Every trace test that records spans does so through the raw QueryTrace
// API (always compiled) and asserts on structure; assertions about the
// *gated* entry points (MakeQueryTrace, TraceSpan with a null trace) are
// split by kObsEnabled so the same test source passes in both builds.

TEST(ObsTraceTest, BeginEndRecordsNestedSpans) {
  QueryTrace trace;
  const int32_t outer = trace.Begin("filter");
  const int32_t inner = trace.Begin("sweep", outer);
  trace.End(inner);
  trace.End(outer);
  const int32_t sibling = trace.Begin("refine");
  trace.End(sibling);

  ASSERT_EQ(trace.size(), 3u);
  const std::vector<QueryTrace::Node> nodes = trace.nodes();
  EXPECT_STREQ(nodes[0].name, "filter");
  EXPECT_EQ(nodes[0].parent, -1);
  EXPECT_STREQ(nodes[1].name, "sweep");
  EXPECT_EQ(nodes[1].parent, outer);
  EXPECT_STREQ(nodes[2].name, "refine");
  EXPECT_EQ(nodes[2].parent, -1);
}

TEST(ObsTraceTest, DurationsAreMonotoneAndNested) {
  QueryTrace trace;
  const int32_t outer = trace.Begin("outer");
  const int32_t inner = trace.Begin("inner", outer);
  // Burn a little time so the inner span has a measurable duration.
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i);
  (void)sink;
  trace.End(inner);
  trace.End(outer);

  const std::vector<QueryTrace::Node> nodes = trace.nodes();
  EXPECT_GE(nodes[0].seconds, 0.0);
  EXPECT_GE(nodes[1].seconds, 0.0);
  // The child opened after and closed before its parent, so it cannot be
  // longer; starts are relative to trace construction and ordered.
  EXPECT_LE(nodes[1].seconds, nodes[0].seconds);
  EXPECT_GE(nodes[1].start_seconds, nodes[0].start_seconds);
  EXPECT_GE(trace.ElapsedSeconds(), nodes[0].seconds);
}

TEST(ObsTraceTest, PhaseSecondsSumsByName) {
  QueryTrace trace;
  const int32_t a = trace.Begin("refine_worker");
  trace.End(a);
  const int32_t b = trace.Begin("refine_worker");
  trace.End(b);
  trace.AddAggregate("dp", 0.25, 7);
  trace.AddAggregate("dp", 0.5, 3);

  EXPECT_DOUBLE_EQ(trace.PhaseSeconds("dp"), 0.75);
  EXPECT_GE(trace.PhaseSeconds("refine_worker"), 0.0);
  EXPECT_EQ(trace.PhaseSeconds("no_such_phase"), 0.0);
  // Lookup is by string content, not pointer identity.
  const std::string key = std::string("d") + "p";
  EXPECT_DOUBLE_EQ(trace.PhaseSeconds(key.c_str()), 0.75);
}

TEST(ObsTraceTest, AddAggregateRecordsCountAndParent) {
  QueryTrace trace;
  const int32_t scan = trace.Begin("scan");
  const int32_t agg = trace.AddAggregate("dp", 0.125, 42, scan);
  trace.End(scan);

  const std::vector<QueryTrace::Node> nodes = trace.nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(agg, 1);
  EXPECT_STREQ(nodes[1].name, "dp");
  EXPECT_EQ(nodes[1].parent, scan);
  EXPECT_EQ(nodes[1].count, 42u);
  EXPECT_DOUBLE_EQ(nodes[1].seconds, 0.125);
}

TEST(ObsTraceTest, ToJsonIsValidAndNamesAppear) {
  QueryTrace trace;
  const int32_t outer = trace.Begin("bound_sweep");
  const int32_t inner = trace.Begin("refine_worker", outer);
  trace.End(inner);
  trace.AddAggregate("dp", 0.001, 5, outer);
  trace.End(outer);

  const std::string json = trace.ToJson();
  EXPECT_TRUE(JsonIsValid(json)) << json;
  EXPECT_NE(json.find("bound_sweep"), std::string::npos);
  EXPECT_NE(json.find("refine_worker"), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("total_ms"), std::string::npos);
}

TEST(ObsTraceTest, EmptyTraceToJsonIsValid) {
  QueryTrace trace;
  EXPECT_TRUE(JsonIsValid(trace.ToJson())) << trace.ToJson();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(ObsTraceTest, ConcurrentSpanRecordingIsSafe) {
  QueryTrace trace;
  const int32_t root = trace.Begin("refine");
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, root] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const int32_t id = trace.Begin("refine_worker", root);
        trace.End(id);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  trace.End(root);

  EXPECT_EQ(trace.size(), 1u + kThreads * kSpansPerThread);
  for (const QueryTrace::Node& node : trace.nodes()) {
    EXPECT_GE(node.seconds, 0.0);
  }
  EXPECT_TRUE(JsonIsValid(trace.ToJson()));
}

TEST(ObsTraceTest, TraceSpanRaiiAndIdempotentEnd) {
  QueryTrace trace;
  if constexpr (kObsEnabled) {
    int32_t outer_id = -1;
    {
      TraceSpan outer(&trace, "outer");
      outer_id = outer.id();
      EXPECT_EQ(outer_id, 0);
      TraceSpan inner(&trace, "inner", outer.id());
      inner.End();
      inner.End();  // Idempotent: second End must not touch the node.
    }
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.nodes()[1].parent, outer_id);
  } else {
    TraceSpan span(&trace, "outer");
    EXPECT_EQ(span.id(), -1);
    span.End();
    EXPECT_EQ(trace.size(), 0u);
  }
}

TEST(ObsTraceTest, NullTraceSpanIsNoOp) {
  // The universal call-site shape: a span over a possibly-null trace.
  TraceSpan span(nullptr, "anything");
  EXPECT_EQ(span.id(), -1);
  span.End();  // Must not crash.
}

TEST(ObsTraceTest, MakeQueryTraceMatchesBuildMode) {
  const std::shared_ptr<QueryTrace> trace = MakeQueryTrace();
  if constexpr (kObsEnabled) {
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->size(), 0u);
  } else {
    EXPECT_EQ(trace, nullptr);
  }
}

TEST(ObsTraceTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_NE(JsonEscape("a\nb").find("\\n"), std::string::npos);
  // An escaped string embeds into a valid JSON document.
  const std::string doc = "{\"k\": \"" + JsonEscape("x\"\\\n\ty") + "\"}";
  EXPECT_TRUE(JsonIsValid(doc)) << doc;
}

TEST(ObsTraceTest, JsonIsValidAcceptsAndRejects) {
  EXPECT_TRUE(JsonIsValid("{}"));
  EXPECT_TRUE(JsonIsValid("[1, 2.5, -3e2, \"s\", true, false, null]"));
  EXPECT_TRUE(JsonIsValid("  {\"a\": [{\"b\": 1}]}  "));
  EXPECT_FALSE(JsonIsValid(""));
  EXPECT_FALSE(JsonIsValid("{"));
  EXPECT_FALSE(JsonIsValid("{\"a\": }"));
  EXPECT_FALSE(JsonIsValid("{} trailing"));
  EXPECT_FALSE(JsonIsValid("{'a': 1}"));
  EXPECT_FALSE(JsonIsValid("[1,]"));
}

// --- TraceAggregate (batch trace aggregation) ---

TEST(ObsTraceTest, TraceAggregateMergesByNamePath) {
  QueryTrace a;
  const int32_t a_filter = a.Begin("filter");
  a.End(a_filter);
  const int32_t a_refine = a.Begin("refine");
  const int32_t a_worker = a.Begin("refine_worker", a_refine);
  a.End(a_worker);
  a.End(a_refine);

  QueryTrace b;
  const int32_t b_filter = b.Begin("filter");
  b.End(b_filter);
  const int32_t b_refine = b.Begin("refine");
  const int32_t b_w1 = b.Begin("refine_worker", b_refine);
  b.End(b_w1);
  const int32_t b_w2 = b.Begin("refine_worker", b_refine);
  b.End(b_w2);
  b.End(b_refine);

  TraceAggregate agg;
  agg.Add(&a);
  agg.Add(&b);
  agg.Add(nullptr);  // convenience no-op
  EXPECT_EQ(agg.traces(), 2u);

  // filter, refine, refine_worker: one aggregate node each, regardless of
  // how many spans merged into them.
  ASSERT_EQ(agg.nodes().size(), 3u);
  const auto& nodes = agg.nodes();
  EXPECT_EQ(nodes[0].name, "filter");
  EXPECT_EQ(nodes[0].parent, -1);
  EXPECT_EQ(nodes[0].spans, 2u);
  EXPECT_EQ(nodes[1].name, "refine");
  EXPECT_EQ(nodes[1].parent, -1);
  EXPECT_EQ(nodes[1].spans, 2u);
  EXPECT_EQ(nodes[2].name, "refine_worker");
  EXPECT_EQ(nodes[2].parent, 1);
  EXPECT_EQ(nodes[2].spans, 3u);  // 1 from a + 2 from b
  ASSERT_EQ(nodes[1].children.size(), 1u);
  EXPECT_EQ(nodes[1].children[0], 2);

  // Aggregate phase time is the sum over the merged traces.
  const double expected =
      a.PhaseSeconds("refine_worker") + b.PhaseSeconds("refine_worker");
  EXPECT_DOUBLE_EQ(agg.PhaseSeconds("refine_worker"), expected);
}

TEST(ObsTraceTest, TraceAggregateSameNameDifferentParentsStaySeparate) {
  QueryTrace t;
  const int32_t filter = t.Begin("filter");
  const int32_t s1 = t.Begin("sweep", filter);
  t.End(s1);
  t.End(filter);
  const int32_t refine = t.Begin("refine");
  const int32_t s2 = t.Begin("sweep", refine);
  t.End(s2);
  t.End(refine);

  TraceAggregate agg;
  agg.Add(&t);
  // Two distinct "sweep" nodes: same name, different parents.
  size_t sweeps = 0;
  for (const auto& node : agg.nodes()) {
    if (node.name == "sweep") ++sweeps;
  }
  EXPECT_EQ(sweeps, 2u);
}

TEST(ObsTraceTest, TraceAggregateAccumulatesCounts) {
  QueryTrace t;
  t.AddAggregate("dp", 0.5, 10);
  QueryTrace u;
  u.AddAggregate("dp", 0.25, 7);
  TraceAggregate agg;
  agg.Add(&t);
  agg.Add(&u);
  ASSERT_EQ(agg.nodes().size(), 1u);
  EXPECT_EQ(agg.nodes()[0].count, 17u);
  EXPECT_EQ(agg.nodes()[0].spans, 2u);
  EXPECT_DOUBLE_EQ(agg.nodes()[0].seconds, 0.75);
}

TEST(ObsTraceTest, TraceAggregateToJsonIsValid) {
  TraceAggregate empty;
  EXPECT_TRUE(JsonIsValid(empty.ToJson()));

  QueryTrace t;
  const int32_t refine = t.Begin("refine");
  const int32_t worker = t.Begin("refine_worker", refine);
  t.End(worker);
  t.End(refine);
  TraceAggregate agg;
  agg.Add(&t);
  const std::string json = agg.ToJson();
  EXPECT_TRUE(JsonIsValid(json)) << json;
  EXPECT_NE(json.find("\"refine_worker\""), std::string::npos);
  EXPECT_NE(json.find("\"traces\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"avg_ms\""), std::string::npos);
}

}  // namespace
}  // namespace edr
