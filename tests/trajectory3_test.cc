#include "core/trajectory3.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace edr {
namespace {

TEST(Point3Test, ArithmeticAndDistances) {
  const Point3 a{1.0, 2.0, 3.0};
  const Point3 b{4.0, 6.0, 3.0};
  EXPECT_EQ((a + b), (Point3{5.0, 8.0, 6.0}));
  EXPECT_EQ((a - b), (Point3{-3.0, -4.0, 0.0}));
  EXPECT_EQ((a * 2.0), (Point3{2.0, 4.0, 6.0}));
  EXPECT_DOUBLE_EQ(SquaredDist(a, b), 25.0);
  EXPECT_DOUBLE_EQ(L2Dist(a, b), 5.0);
}

TEST(Point3Test, MatchRequiresAllThreeDimensions) {
  const Point3 a{0.0, 0.0, 0.0};
  EXPECT_TRUE(Match(a, Point3{0.2, -0.2, 0.2}, 0.25));
  EXPECT_FALSE(Match(a, Point3{0.2, 0.2, 0.3}, 0.25));
  EXPECT_FALSE(Match(a, Point3{0.3, 0.0, 0.0}, 0.25));
  // Boundary inclusive, as in Definition 1.
  EXPECT_TRUE(Match(a, Point3{0.25, 0.25, 0.25}, 0.25));
}

TEST(Trajectory3Test, AppendAndAccess) {
  Trajectory3 t;
  t.Append(1.0, 2.0, 3.0);
  t.Append({4.0, 5.0, 6.0});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1], (Point3{4.0, 5.0, 6.0}));
  EXPECT_EQ(t.label(), -1);
}

TEST(Trajectory3Test, MeanAndStdDev) {
  const Trajectory3 t({{0.0, 2.0, -1.0}, {2.0, 4.0, 1.0}});
  const Point3 mu = t.Mean();
  EXPECT_DOUBLE_EQ(mu.x, 1.0);
  EXPECT_DOUBLE_EQ(mu.y, 3.0);
  EXPECT_DOUBLE_EQ(mu.z, 0.0);
  const Point3 sigma = t.StdDev();
  EXPECT_DOUBLE_EQ(sigma.x, 1.0);
  EXPECT_DOUBLE_EQ(sigma.y, 1.0);
  EXPECT_DOUBLE_EQ(sigma.z, 1.0);
}

TEST(Trajectory3Test, NormalizeZeroMeanUnitVariance) {
  Rng rng(7);
  Trajectory3 t;
  for (int i = 0; i < 100; ++i) {
    t.Append(rng.Gaussian(5.0, 2.0), rng.Gaussian(-1.0, 0.5),
             rng.Gaussian(100.0, 10.0));
  }
  const Trajectory3 n = Normalize(t);
  const Point3 mu = n.Mean();
  const Point3 sigma = n.StdDev();
  EXPECT_NEAR(mu.x, 0.0, 1e-9);
  EXPECT_NEAR(mu.z, 0.0, 1e-9);
  EXPECT_NEAR(sigma.x, 1.0, 1e-9);
  EXPECT_NEAR(sigma.y, 1.0, 1e-9);
  EXPECT_NEAR(sigma.z, 1.0, 1e-9);
}

TEST(Trajectory3Test, NormalizeConstantDimensionOnlyShifted) {
  Trajectory3 t({{1.0, 5.0, 0.0}, {2.0, 5.0, 1.0}});
  NormalizeInPlace(t);
  EXPECT_DOUBLE_EQ(t[0].y, 0.0);
  EXPECT_DOUBLE_EQ(t[1].y, 0.0);
  EXPECT_TRUE(std::isfinite(t[0].x));
}

TEST(Trajectory3Test, EmptyNormalizeIsNoop) {
  Trajectory3 t;
  NormalizeInPlace(t);
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace edr
