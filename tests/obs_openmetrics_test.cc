#include "obs/openmetrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "obs/registry.h"

namespace edr {
namespace {

TEST(ObsOpenMetricsTest, NameMappingSanitizesAndStripsTotal) {
  EXPECT_EQ(OpenMetricsName("query.count"), "edr_query_count");
  // Dots become underscores; a trailing _total folds into the sample
  // suffix so the counter line does not read "..._total_total".
  EXPECT_EQ(OpenMetricsName("query.dp_total"), "edr_query_dp");
  EXPECT_EQ(OpenMetricsName("sched.fused_groups"), "edr_sched_fused_groups");
  EXPECT_EQ(OpenMetricsName("weird name!"), "edr_weird_name_");
  EXPECT_EQ(OpenMetricsName("x", /*prefix=*/""), "x");
  EXPECT_EQ(OpenMetricsName("9x", /*prefix=*/""), "_9x");
}

TEST(ObsOpenMetricsTest, EscapeLabelHandlesSpecials) {
  EXPECT_EQ(OpenMetricsEscapeLabel("plain"), "plain");
  EXPECT_EQ(OpenMetricsEscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(OpenMetricsEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(OpenMetricsEscapeLabel("a\nb"), "a\\nb");
}

TEST(ObsOpenMetricsTest, RenderedSnapshotValidates) {
  ObsCounter& c =
      MetricsRegistry::Global().Counter("test_openmetrics.render.count");
  LatencyHistogram& h =
      MetricsRegistry::Global().Histogram("test_openmetrics.render.seconds");
  c.Reset();
  h.Reset();
  c.Inc(7);
  h.Record(1e-4);
  h.Record(2e-3);
  h.Record(0.5);

  const std::string text =
      RenderOpenMetrics(MetricsRegistry::Global().Snapshot());
  std::string error;
  EXPECT_TRUE(OpenMetricsIsValid(text, &error)) << error;
  EXPECT_NE(text.find("# TYPE edr_test_openmetrics_render_count counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE edr_test_openmetrics_render_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# UNIT edr_test_openmetrics_render_seconds seconds"),
            std::string::npos);
  if constexpr (kObsEnabled) {
    EXPECT_NE(text.find("edr_test_openmetrics_render_count_total 7"),
              std::string::npos);
    EXPECT_NE(text.find("edr_test_openmetrics_render_seconds_count 3"),
              std::string::npos);
  }
  // The terminator is the last line.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  c.Reset();
  h.Reset();
}

TEST(ObsOpenMetricsTest, HistogramBucketsAreCumulativeWithInfEqualCount) {
  LatencyHistogram& h =
      MetricsRegistry::Global().Histogram("test_openmetrics.cum.seconds");
  h.Reset();
  for (int i = 0; i < 10; ++i) h.Record(1e-5 * (1 << i));
  const std::string text =
      RenderOpenMetrics(MetricsRegistry::Global().Snapshot());
  std::string error;
  ASSERT_TRUE(OpenMetricsIsValid(text, &error)) << error;

  // Walk our family's bucket lines by hand: values never decrease and the
  // +Inf bucket equals _count (the validator enforces this too; this is
  // the direct certification on a populated histogram).
  const std::string bucket_prefix =
      "edr_test_openmetrics_cum_seconds_bucket{le=\"";
  uint64_t last = 0;
  uint64_t inf_value = 0;
  size_t buckets_seen = 0;
  size_t pos = 0;
  while ((pos = text.find(bucket_prefix, pos)) != std::string::npos) {
    const size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    const uint64_t value = std::strtoull(text.c_str() + value_at + 2,
                                         nullptr, 10);
    EXPECT_GE(value, last);
    last = value;
    if (text.compare(pos + bucket_prefix.size(), 4, "+Inf") == 0) {
      inf_value = value;
    }
    ++buckets_seen;
    pos = value_at;
  }
  EXPECT_EQ(buckets_seen, LatencyHistogram::kBuckets + 1);  // All + the +Inf.
  const size_t count_at =
      text.find("edr_test_openmetrics_cum_seconds_count ");
  ASSERT_NE(count_at, std::string::npos);
  const uint64_t count = std::strtoull(
      text.c_str() + count_at +
          std::string("edr_test_openmetrics_cum_seconds_count ").size(),
      nullptr, 10);
  EXPECT_EQ(inf_value, count);
  if constexpr (kObsEnabled) EXPECT_EQ(count, 10u);
  h.Reset();
}

TEST(ObsOpenMetricsTest, ExemplarsResolveToFlightRecorderIds) {
  if constexpr (!kObsEnabled) return;
  FlightRecorder recorder;
  LatencyHistogram& h = MetricsRegistry::Global().Histogram("query.seconds");
  h.Reset();
  // Three slow queries, recorded in both the histogram and the recorder —
  // exactly what the query path does.
  const double latencies[] = {0.25, 0.03, 0.002};
  for (const double latency : latencies) {
    FlightRecord r;
    r.searcher = "test";
    r.latency_seconds = latency;
    recorder.Publish(std::move(r));
    h.Record(latency);
  }

  OpenMetricsOptions options;
  options.exemplars = &recorder;
  const std::string text =
      RenderOpenMetrics(MetricsRegistry::Global().Snapshot(), options);
  std::string error;
  ASSERT_TRUE(OpenMetricsIsValid(text, &error)) << error;

  // Every emitted entry_id must resolve to a retained slowest record.
  std::set<uint64_t> retained;
  for (const FlightRecord& r : recorder.TopSlowest()) retained.insert(r.id);
  size_t exemplars_seen = 0;
  size_t pos = 0;
  const std::string marker = "# {entry_id=\"";
  while ((pos = text.find(marker, pos)) != std::string::npos) {
    pos += marker.size();
    const uint64_t id = std::strtoull(text.c_str() + pos, nullptr, 10);
    EXPECT_TRUE(retained.count(id) != 0) << "unresolvable exemplar id " << id;
    ++exemplars_seen;
  }
  EXPECT_EQ(exemplars_seen, 3u);  // Distinct buckets: one exemplar each.
  h.Reset();
}

TEST(ObsOpenMetricsTest, OverflowBucketLatencySkipsItsExemplar) {
  if constexpr (!kObsEnabled) return;
  FlightRecorder recorder;
  LatencyHistogram& h = MetricsRegistry::Global().Histogram("query.seconds");
  h.Reset();
  // A latency beyond the last finite bucket edge is clamped into the
  // overflow bucket, whose le bound it exceeds — attaching it as that
  // bucket's exemplar would violate value <= le, so the renderer must
  // drop it rather than emit an out-of-bucket exemplar.
  const double clamped = LatencyBucketUpperSeconds(
                             LatencyHistogram::kBuckets - 1) *
                         4.0;
  FlightRecord r;
  r.searcher = "test";
  r.latency_seconds = clamped;
  recorder.Publish(std::move(r));
  h.Record(clamped);

  OpenMetricsOptions options;
  options.exemplars = &recorder;
  const std::string text =
      RenderOpenMetrics(MetricsRegistry::Global().Snapshot(), options);
  std::string error;
  EXPECT_TRUE(OpenMetricsIsValid(text, &error)) << error;
  EXPECT_EQ(text.find("entry_id"), std::string::npos) << text;
  h.Reset();
}

TEST(ObsOpenMetricsTest, ValidatorRejectsStructuralViolations) {
  std::string error;
  EXPECT_FALSE(OpenMetricsIsValid("", &error));

  // Missing the # EOF terminator.
  EXPECT_FALSE(OpenMetricsIsValid("# TYPE a counter\na_total 1\n", &error));
  EXPECT_NE(error.find("EOF"), std::string::npos);

  // Content after # EOF.
  EXPECT_FALSE(
      OpenMetricsIsValid("# EOF\na_total 1\n", &error));

  // Counter sample without the _total suffix.
  EXPECT_FALSE(
      OpenMetricsIsValid("# TYPE a counter\na 1\n# EOF\n", &error));
  EXPECT_NE(error.find("_total"), std::string::npos);

  // Histogram le not increasing.
  EXPECT_FALSE(OpenMetricsIsValid(
      "# TYPE h histogram\n"
      "h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n"
      "h_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 3\n# EOF\n",
      &error));
  EXPECT_NE(error.find("le"), std::string::npos);

  // Histogram buckets not cumulative.
  EXPECT_FALSE(OpenMetricsIsValid(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 3\n# EOF\n",
      &error));
  EXPECT_NE(error.find("cumulative"), std::string::npos);

  // +Inf bucket disagreeing with _count.
  EXPECT_FALSE(OpenMetricsIsValid(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\n"
      "h_count 9\nh_sum 3\n# EOF\n",
      &error));
  EXPECT_NE(error.find("_count"), std::string::npos);

  // Histogram with buckets but no +Inf.
  EXPECT_FALSE(OpenMetricsIsValid(
      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n"
      "h_sum 1\n# EOF\n",
      &error));
  EXPECT_NE(error.find("+Inf"), std::string::npos);

  // Bad escape in a label value.
  EXPECT_FALSE(OpenMetricsIsValid(
      "# TYPE g gauge\ng{x=\"a\\q\"} 1\n# EOF\n", &error));

  // Bucket exemplar whose value lies outside the bucket (value > le).
  EXPECT_FALSE(OpenMetricsIsValid(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1 # {entry_id=\"3\"} 2.5\n"
      "h_bucket{le=\"+Inf\"} 1\nh_count 1\nh_sum 2.5\n# EOF\n",
      &error));
  EXPECT_NE(error.find("exceeds bucket le"), std::string::npos);

  // Missing final newline.
  EXPECT_FALSE(OpenMetricsIsValid("# EOF", &error));

  // A well-formed document with labels, timestamps, and an exemplar.
  EXPECT_TRUE(OpenMetricsIsValid(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\",path=\"a\\\\b \\\"q\\\"\"} 1 1234.5\n"
      "h_bucket{le=\"+Inf\"} 2 # {entry_id=\"7\"} 0.5 1234.5\n"
      "h_count 2\nh_sum 1.5\n# EOF\n",
      &error))
      << error;
}

TEST(ObsOpenMetricsTest, EveryBuildRendersAValidExposition) {
  // Whatever this binary's other tests registered — and in the
  // EDR_DISABLE_OBS build, where every value is zero — the exposition
  // must round-trip the validator.
  RegisterStandardMetrics();
  OpenMetricsOptions options;
  options.exemplars = &FlightRecorder::Global();
  const std::string text =
      RenderOpenMetrics(MetricsRegistry::Global().Snapshot(), options);
  std::string error;
  EXPECT_TRUE(OpenMetricsIsValid(text, &error)) << error;
  // The standard registration makes the fused-sweep and feature-cache
  // families visible even before any event of their kind.
  EXPECT_NE(text.find("edr_sched_fused_groups_total"), std::string::npos);
  EXPECT_NE(text.find("edr_sched_fused_queries_total"), std::string::npos);
  EXPECT_NE(text.find("edr_feature_cache_hits_total"), std::string::npos);
  EXPECT_NE(text.find("edr_feature_cache_misses_total"), std::string::npos);
  // ... including the fusion-grouping and fused-plan-cache families added
  // with the similarity-aware grouper, and the shared-bin-fraction gauge.
  EXPECT_NE(text.find("edr_sched_group_similarity_total"), std::string::npos);
  EXPECT_NE(text.find("edr_sched_group_fifo_total"), std::string::npos);
  EXPECT_NE(text.find("edr_sched_group_forced_total"), std::string::npos);
  EXPECT_NE(text.find("edr_plan_cache_hits_total"), std::string::npos);
  EXPECT_NE(text.find("edr_plan_cache_misses_total"), std::string::npos);
  EXPECT_NE(text.find("edr_plan_cache_evictions_total"), std::string::npos);
  EXPECT_NE(text.find("edr_plan_cache_collisions_total"), std::string::npos);
  EXPECT_NE(
      text.find("# TYPE edr_sched_group_shared_bin_fraction gauge"),
      std::string::npos);
}

}  // namespace
}  // namespace edr
