#include "distance/edr.h"

#include <gtest/gtest.h>

#include "core/normalize.h"
#include "core/rng.h"
#include "distance/dtw.h"
#include "distance/erp.h"
#include "distance/euclidean.h"
#include "distance/lcss.h"

namespace edr {
namespace {

Trajectory Seq(std::initializer_list<double> xs) {
  Trajectory t;
  for (const double x : xs) t.Append(x, 0.0);
  return t;
}

Trajectory RandomTrajectory(Rng& rng, int min_len, int max_len) {
  Trajectory t;
  const int len = static_cast<int>(rng.UniformInt(min_len, max_len));
  for (int i = 0; i < len; ++i) t.Append(rng.Gaussian(), rng.Gaussian());
  return t;
}

TEST(EdrTest, EmptyBaseCases) {
  // Definition 2: EDR(R, S) = n if m = 0, m if n = 0.
  EXPECT_EQ(EdrDistance(Trajectory(), Seq({1, 2, 3}), 0.5), 3);
  EXPECT_EQ(EdrDistance(Seq({1, 2}), Trajectory(), 0.5), 2);
  EXPECT_EQ(EdrDistance(Trajectory(), Trajectory(), 0.5), 0);
}

TEST(EdrTest, IdenticalIsZero) {
  const Trajectory t = Seq({1, 5, 2, 8, 3});
  EXPECT_EQ(EdrDistance(t, t, 0.25), 0);
}

TEST(EdrTest, SingleSubstitution) {
  const Trajectory a = Seq({1, 2, 3});
  const Trajectory b = Seq({1, 9, 3});
  EXPECT_EQ(EdrDistance(a, b, 0.5), 1);
}

TEST(EdrTest, SingleInsertion) {
  const Trajectory a = Seq({1, 2, 3});
  const Trajectory b = Seq({1, 2, 9, 3});
  EXPECT_EQ(EdrDistance(a, b, 0.5), 1);
}

TEST(EdrTest, ThresholdMakesNearValuesMatch) {
  const Trajectory a = Seq({0.9});
  const Trajectory b = Seq({1.2});
  EXPECT_EQ(EdrDistance(a, b, 1.0), 0);   // Section 4.3's example pair.
  EXPECT_EQ(EdrDistance(a, b, 0.2), 1);
}

TEST(EdrTest, MatchRequiresBothDimensions) {
  Trajectory a;
  a.Append(0.0, 0.0);
  Trajectory b;
  b.Append(0.0, 3.0);
  EXPECT_EQ(EdrDistance(a, b, 0.5), 1);
}

TEST(EdrTest, PaperSection2ExampleRanking) {
  // Q, R, S, P from Section 2; epsilon = 1. EDR must rank S, P, R — the
  // "correct" ranking the other distance functions miss.
  const Trajectory q = Seq({1, 2, 3, 4});
  const Trajectory r = Seq({10, 9, 8, 7});
  const Trajectory s = Seq({1, 100, 2, 3, 4});
  const Trajectory p = Seq({1, 100, 101, 2, 4});
  const int dqs = EdrDistance(q, s, 1.0);
  const int dqp = EdrDistance(q, p, 1.0);
  const int dqr = EdrDistance(q, r, 1.0);
  EXPECT_LT(dqs, dqp);
  EXPECT_LT(dqp, dqr);
  // Concretely: one insertion for S; P needs two ops more than... at least
  // one more than S; R matches nothing.
  EXPECT_EQ(dqs, 1);
  EXPECT_EQ(dqr, 4);
}

TEST(EdrTest, PaperExampleEuclideanAndDtwAndErpMisrank) {
  // The same example shows the noise sensitivity of the L_p-based
  // measures: they all consider R (no noise, wrong trend) closer to Q
  // than S (noisy but matching).
  const Trajectory q = Seq({1, 2, 3, 4});
  const Trajectory r = Seq({10, 9, 8, 7});
  const Trajectory s = Seq({1, 100, 2, 3, 4});
  EXPECT_LT(EuclideanDistance(q, r), SlidingEuclideanDistance(q, s));
  EXPECT_LT(DtwDistance(q, r), DtwDistance(q, s));
  EXPECT_LT(ErpDistance(q, r), ErpDistance(q, s));
}

TEST(EdrTest, LcssTiesOnGapsButEdrDiscriminates) {
  // LCSS scores S and P identically (gap-blind, Section 2); EDR penalizes
  // P's longer gap between the matched sub-trajectories (contribution 1).
  const Trajectory q = Seq({1, 2, 3, 4});
  const Trajectory s = Seq({1, 100, 2, 3, 4});
  const Trajectory p = Seq({1, 100, 101, 2, 3, 4});
  EXPECT_EQ(LcssLength(q, s, 0.5), LcssLength(q, p, 0.5));
  EXPECT_LT(EdrDistance(q, s, 0.5), EdrDistance(q, p, 0.5));
}

TEST(EdrTest, Symmetric) {
  Rng rng(51);
  for (int trial = 0; trial < 20; ++trial) {
    const Trajectory a = RandomTrajectory(rng, 2, 40);
    const Trajectory b = RandomTrajectory(rng, 2, 40);
    EXPECT_EQ(EdrDistance(a, b, 0.25), EdrDistance(b, a, 0.25));
  }
}

TEST(EdrTest, BoundedByMaxLength) {
  Rng rng(52);
  for (int trial = 0; trial < 20; ++trial) {
    const Trajectory a = RandomTrajectory(rng, 2, 40);
    const Trajectory b = RandomTrajectory(rng, 2, 40);
    const int d = EdrDistance(a, b, 0.25);
    EXPECT_LE(d, static_cast<int>(std::max(a.size(), b.size())));
    EXPECT_GE(d, EdrLengthLowerBound(a, b));
  }
}

TEST(EdrTest, LargerEpsilonNeverIncreasesDistance) {
  // Theorem 7.
  Rng rng(53);
  for (int trial = 0; trial < 20; ++trial) {
    const Trajectory a = RandomTrajectory(rng, 2, 30);
    const Trajectory b = RandomTrajectory(rng, 2, 30);
    const int d1 = EdrDistance(a, b, 0.25);
    const int d2 = EdrDistance(a, b, 0.5);
    const int d4 = EdrDistance(a, b, 1.0);
    EXPECT_LE(d2, d1);
    EXPECT_LE(d4, d2);
  }
}

TEST(EdrBandedTest, UnconstrainedMatchesPlain) {
  Rng rng(54);
  const Trajectory a = RandomTrajectory(rng, 10, 30);
  const Trajectory b = RandomTrajectory(rng, 10, 30);
  EXPECT_EQ(EdrDistanceBanded(a, b, 0.25, -1), EdrDistance(a, b, 0.25));
}

TEST(EdrBandedTest, BandUpperBoundsExact) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const Trajectory a = RandomTrajectory(rng, 2, 40);
    const Trajectory b = RandomTrajectory(rng, 2, 40);
    const int full = EdrDistance(a, b, 0.25);
    for (const int band : {0, 1, 4, 10}) {
      EXPECT_GE(EdrDistanceBanded(a, b, 0.25, band), full);
    }
    EXPECT_EQ(EdrDistanceBanded(a, b, 0.25, 64), full);
  }
}

TEST(EdrBoundedTest, ExactWhenWithinBound) {
  Rng rng(56);
  for (int trial = 0; trial < 30; ++trial) {
    const Trajectory a = RandomTrajectory(rng, 2, 40);
    const Trajectory b = RandomTrajectory(rng, 2, 40);
    const int full = EdrDistance(a, b, 0.25);
    EXPECT_EQ(EdrDistanceBounded(a, b, 0.25, full), full);
    EXPECT_EQ(EdrDistanceBounded(a, b, 0.25, full + 5), full);
  }
}

TEST(EdrBoundedTest, AbandonedValueIsValidLowerBoundAboveBound) {
  Rng rng(57);
  for (int trial = 0; trial < 30; ++trial) {
    const Trajectory a = RandomTrajectory(rng, 5, 40);
    const Trajectory b = RandomTrajectory(rng, 5, 40);
    const int full = EdrDistance(a, b, 0.25);
    if (full == 0) continue;
    const int bound = full - 1;
    const int result = EdrDistanceBounded(a, b, 0.25, bound);
    EXPECT_GT(result, bound);
    EXPECT_LE(result, full);
  }
}

TEST(EdrBoundedTest, EmptyBaseCases) {
  EXPECT_EQ(EdrDistanceBounded(Trajectory(), Seq({1, 2}), 0.5, 0), 2);
  EXPECT_EQ(EdrDistanceBounded(Seq({1, 2}), Trajectory(), 0.5, 0), 2);
}

TEST(EdrTest, NormalizedCopiesOfSameShapeAreClose) {
  // Spatial shift + scale invariance comes from normalization (Section 2).
  Rng rng(58);
  Trajectory base = RandomTrajectory(rng, 40, 40);
  Trajectory scaled = base;
  for (Point2& p : scaled.mutable_points()) {
    p.x = p.x * 3.0 + 10.0;
    p.y = p.y * 3.0 - 2.0;
  }
  EXPECT_EQ(EdrDistance(Normalize(base), Normalize(scaled), 0.25), 0);
}

}  // namespace
}  // namespace edr
