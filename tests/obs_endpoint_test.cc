#include "obs/http_endpoint.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/openmetrics.h"
#include "obs/registry.h"
#include "obs/timeline.h"

namespace edr {
namespace {

/// Minimal raw-socket HTTP client: sends one request verbatim and reads
/// until the server closes (the endpoint is Connection: close).
std::string RawRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(ObsEndpointTest, StartIsRefusedWhenObsCompiledOut) {
  if constexpr (kObsEnabled) return;
  MetricsHttpEndpoint endpoint;
  std::string error;
  EXPECT_FALSE(endpoint.Start(&error));
  EXPECT_FALSE(endpoint.running());
  EXPECT_FALSE(error.empty());
}

TEST(ObsEndpointTest, ServesHealthz) {
  if constexpr (!kObsEnabled) return;
  MetricsHttpEndpoint endpoint;
  std::string error;
  ASSERT_TRUE(endpoint.Start(&error)) << error;
  ASSERT_NE(endpoint.port(), 0u);  // Ephemeral port was resolved.
  const std::string response = Get(endpoint.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_EQ(BodyOf(response), "ok\n");
  EXPECT_GE(endpoint.requests(), 1u);
  endpoint.Stop();
  EXPECT_FALSE(endpoint.running());
}

TEST(ObsEndpointTest, MetricsRouteServesValidOpenMetrics) {
  if constexpr (!kObsEnabled) return;
  RegisterStandardMetrics();
  MetricsRegistry::Global().Counter("query.count").Inc(3);
  MetricsRegistry::Global().Histogram("query.seconds").Record(1e-3);
  MetricsHttpEndpoint endpoint;
  ASSERT_TRUE(endpoint.Start());
  const std::string response = Get(endpoint.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("application/openmetrics-text"),
            std::string::npos);
  const std::string body = BodyOf(response);
  std::string om_error;
  EXPECT_TRUE(OpenMetricsIsValid(body, &om_error)) << om_error;
  EXPECT_NE(body.find("edr_query_count_total"), std::string::npos);
  endpoint.Stop();
}

TEST(ObsEndpointTest, MetricsExemplarsResolveToFlightEntries) {
  if constexpr (!kObsEnabled) return;
  FlightRecorder recorder;
  FlightRecord slow;
  slow.searcher = "test";
  slow.latency_seconds = 0.125;
  recorder.Publish(std::move(slow));
  LatencyHistogram& h = MetricsRegistry::Global().Histogram("query.seconds");
  h.Reset();
  h.Record(0.125);

  MetricsHttpEndpoint::Options options;
  options.flight = &recorder;
  MetricsHttpEndpoint endpoint(options);
  ASSERT_TRUE(endpoint.Start());
  const std::string metrics = BodyOf(Get(endpoint.port(), "/metrics"));
  // The scraped tail bucket carries the exemplar, and the referenced
  // entry is retrievable from the same server's /flight dump.
  EXPECT_NE(metrics.find("# {entry_id=\"1\"}"), std::string::npos) << metrics;
  const std::string flight = BodyOf(Get(endpoint.port(), "/flight"));
  EXPECT_TRUE(JsonIsValid(flight));
  EXPECT_NE(flight.find("\"id\": 1"), std::string::npos);
  endpoint.Stop();
  h.Reset();
}

TEST(ObsEndpointTest, FlightAndTimelineRoutesServeJson) {
  if constexpr (!kObsEnabled) return;
  TimelineSampler timeline;
  MetricsHttpEndpoint::Options options;
  options.timeline = &timeline;
  MetricsHttpEndpoint endpoint(options);
  ASSERT_TRUE(endpoint.Start());
  const std::string flight = Get(endpoint.port(), "/flight");
  EXPECT_NE(flight.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_TRUE(JsonIsValid(BodyOf(flight)));
  const std::string tl = Get(endpoint.port(), "/timeline");
  EXPECT_NE(tl.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_TRUE(JsonIsValid(BodyOf(tl)));
  endpoint.Stop();
}

TEST(ObsEndpointTest, TimelineRouteIs404WithoutASampler) {
  if constexpr (!kObsEnabled) return;
  MetricsHttpEndpoint endpoint;  // No timeline attached.
  ASSERT_TRUE(endpoint.Start());
  EXPECT_NE(Get(endpoint.port(), "/timeline").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(Get(endpoint.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  endpoint.Stop();
}

TEST(ObsEndpointTest, NonGetIsRejected) {
  if constexpr (!kObsEnabled) return;
  MetricsHttpEndpoint endpoint;
  ASSERT_TRUE(endpoint.Start());
  const std::string response = RawRequest(
      endpoint.port(),
      "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos) << response;
  endpoint.Stop();
}

TEST(ObsEndpointTest, StopIsIdempotentAndRestartable) {
  if constexpr (!kObsEnabled) return;
  MetricsHttpEndpoint endpoint;
  endpoint.Stop();  // Never started: no-op.
  ASSERT_TRUE(endpoint.Start());
  const uint16_t first_port = endpoint.port();
  EXPECT_NE(first_port, 0u);
  endpoint.Stop();
  endpoint.Stop();
  EXPECT_EQ(endpoint.port(), 0u);
  ASSERT_TRUE(endpoint.Start());  // A fresh ephemeral port each run.
  EXPECT_NE(endpoint.port(), 0u);
  EXPECT_EQ(BodyOf(Get(endpoint.port(), "/healthz")), "ok\n");
  endpoint.Stop();
}

TEST(ObsEndpointTest, SurvivesClientDisconnectMidResponse) {
  if constexpr (!kObsEnabled) return;
  RegisterStandardMetrics();
  MetricsHttpEndpoint endpoint;
  ASSERT_TRUE(endpoint.Start());
  // Scrapers that hang up mid-request (RST via SO_LINGER 0, so the
  // server sees a hard reset rather than a buffered FIN). The partial
  // request head forces the server back into recv(), which consumes the
  // reset — its response send() then lands on a dead socket.
  // Historically that raised SIGPIPE and killed the process; the
  // endpoint must shrug it off and keep serving.
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(endpoint.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const char partial[] = "GET /metrics HTTP/1.1\r\nHost: x\r\n";
    (void)::send(fd, partial, sizeof(partial) - 1, 0);
    linger hard_reset;
    hard_reset.l_onoff = 1;
    hard_reset.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset, sizeof(hard_reset));
    ::close(fd);
  }
  // Still alive and still serving complete expositions.
  const std::string body = BodyOf(Get(endpoint.port(), "/metrics"));
  std::string error;
  EXPECT_TRUE(OpenMetricsIsValid(body, &error)) << error;
  endpoint.Stop();
}

TEST(ObsEndpointTest, SilentClientNeitherStallsScrapesNorHangsStop) {
  if constexpr (!kObsEnabled) return;
  MetricsHttpEndpoint::Options options;
  options.io_timeout_ms = 200;
  MetricsHttpEndpoint endpoint(options);
  ASSERT_TRUE(endpoint.Start());

  // A client that connects and never sends a byte. The recv timeout must
  // release the serial accept loop so the next scrape still succeeds.
  const int silent = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(silent, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoint.port());
  ASSERT_EQ(::connect(silent, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  EXPECT_EQ(BodyOf(Get(endpoint.port(), "/healthz")), "ok\n");

  // And a second silent connection held open across Stop: the shutdown
  // of the active connection (plus the timeout backstop) must let Stop
  // join the accept thread instead of hanging forever.
  const int silent2 = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(silent2, 0);
  ASSERT_EQ(::connect(silent2, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  endpoint.Stop();
  EXPECT_FALSE(endpoint.running());
  ::close(silent);
  ::close(silent2);
}

TEST(ObsEndpointTest, ConcurrentScrapesAreServedCompletely) {
  if constexpr (!kObsEnabled) return;
  RegisterStandardMetrics();
  MetricsHttpEndpoint endpoint;
  ASSERT_TRUE(endpoint.Start());
  // The accept loop serves one connection at a time; back-to-back scrapes
  // must each see a complete, valid exposition.
  for (int i = 0; i < 8; ++i) {
    const std::string body = BodyOf(Get(endpoint.port(), "/metrics"));
    std::string error;
    EXPECT_TRUE(OpenMetricsIsValid(body, &error)) << error;
  }
  EXPECT_GE(endpoint.requests(), 8u);
  endpoint.Stop();
}

}  // namespace
}  // namespace edr
