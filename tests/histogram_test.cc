#include "pruning/histogram.h"

#include <gtest/gtest.h>

#include <numeric>

#include "data/generators.h"
#include "distance/edr.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

DatasetStats StatsFor(const TrajectoryDataset& db) { return db.Stats(); }

TEST(HistogramGridTest, CoversDataWithSlack) {
  TrajectoryDataset db;
  db.Add(Trajectory({{0.0, 0.0}, {1.0, 2.0}}));
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), 0.5);
  // Data min minus one bin of slack.
  EXPECT_DOUBLE_EQ(grid.min_x, -0.5);
  EXPECT_DOUBLE_EQ(grid.min_y, -0.5);
  EXPECT_GE(grid.nx * grid.ny, 1);
  // Points within epsilon of the data range land in interior bins.
  EXPECT_GT(grid.BinX(0.0), 0);
  EXPECT_LT(grid.BinX(1.0), grid.nx - 1);
}

TEST(HistogramGridTest, BinningIsMonotoneAndClamped) {
  TrajectoryDataset db;
  db.Add(Trajectory({{0.0, 0.0}, {10.0, 10.0}}));
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), 1.0);
  EXPECT_EQ(grid.BinX(-100.0), 0);
  EXPECT_EQ(grid.BinX(1000.0), grid.nx - 1);
  int prev = -1;
  for (double x = -2.0; x <= 12.0; x += 0.25) {
    const int b = grid.BinX(x);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(HistogramTest, CountsSumToLength) {
  Rng rng(31);
  TrajectoryDataset db;
  db.Add(testutil::RandomWalk(rng, 57));
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), kEps);
  const std::vector<int> h = BuildHistogram2D(db[0], grid);
  EXPECT_EQ(std::accumulate(h.begin(), h.end(), 0), 57);
  const std::vector<int> hx = BuildHistogram1D(db[0], grid, true);
  const std::vector<int> hy = BuildHistogram1D(db[0], grid, false);
  EXPECT_EQ(std::accumulate(hx.begin(), hx.end(), 0), 57);
  EXPECT_EQ(std::accumulate(hy.begin(), hy.end(), 0), 57);
}

TEST(HistogramDistanceTest, IdenticalHistogramsHaveZeroDistance) {
  Rng rng(32);
  TrajectoryDataset db;
  db.Add(testutil::RandomWalk(rng, 40));
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), kEps);
  const std::vector<int> h = BuildHistogram2D(db[0], grid);
  EXPECT_EQ(HistogramDistance2D(h, h, grid), 0);
}

TEST(HistogramDistanceTest, SymmetricByConstruction) {
  Rng rng(33);
  TrajectoryDataset db;
  db.Add(testutil::RandomWalk(rng, 30));
  db.Add(testutil::RandomWalk(rng, 45));
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), kEps);
  const std::vector<int> a = BuildHistogram2D(db[0], grid);
  const std::vector<int> b = BuildHistogram2D(db[1], grid);
  EXPECT_EQ(HistogramDistance2D(a, b, grid), HistogramDistance2D(b, a, grid));
}

TEST(HistogramDistanceTest, PaperAdjacentBinExample) {
  // Section 4.3: R = [0.9], S = [1.2], epsilon = 1. The elements match
  // under EDR, so HD must be 0 even though they occupy different bins.
  TrajectoryDataset db;
  db.Add(Trajectory({{0.9, 0.0}}));
  db.Add(Trajectory({{1.2, 0.0}}));
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), 1.0);
  const std::vector<int> hr = BuildHistogram2D(db[0], grid);
  const std::vector<int> hs = BuildHistogram2D(db[1], grid);
  EXPECT_EQ(EdrDistance(db[0], db[1], 1.0), 0);
  EXPECT_EQ(HistogramDistance2D(hr, hs, grid), 0);
}

TEST(HistogramDistanceTest, AdjacentBinCancellation) {
  // Elements at 0.0 and 1.0 match within epsilon = 1 but land in adjacent
  // bins of the size-1 grid; Definition 5's approximate matching must
  // cancel them, giving HD = 0 = EDR.
  TrajectoryDataset db;
  db.Add(Trajectory({{0.0, 0.0}}));
  db.Add(Trajectory({{1.0, 0.0}}));
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), 1.0);
  const std::vector<int> a = BuildHistogram2D(db[0], grid);
  const std::vector<int> b = BuildHistogram2D(db[1], grid);
  ASSERT_NE(a, b);  // Different bins...
  EXPECT_EQ(HistogramDistance2D(a, b, grid), 0);  // ...yet zero distance.
  // The 1-D x histograms behave identically.
  EXPECT_EQ(HistogramDistance1D(BuildHistogram1D(db[0], grid, true),
                                BuildHistogram1D(db[1], grid, true)),
            0);
}

TEST(HistogramDistanceTest, ChainedMatchesAcrossBinsRegression) {
  // Regression for a subtle unsoundness in single-pass residual
  // cancellation (the paper's literal Figure 5): matched pairs can chain
  // across bins. R = [0.9, 1.95], S = [1.05, 2.05] with epsilon = 1 and
  // bin size 1 gives EDR = 0 but leaves residuals two bins apart; the
  // transport-based HD must still return 0.
  TrajectoryDataset db;
  db.Add(Trajectory({{0.9, 0.0}, {1.95, 0.0}}));
  db.Add(Trajectory({{1.05, 0.0}, {2.05, 0.0}}));
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), 1.0);
  ASSERT_EQ(EdrDistance(db[0], db[1], 1.0), 0);
  const std::vector<int> hr = BuildHistogram2D(db[0], grid);
  const std::vector<int> hs = BuildHistogram2D(db[1], grid);
  EXPECT_LE(HistogramDistance2D(hr, hs, grid), 0);
  EXPECT_LE(HistogramDistance1D(BuildHistogram1D(db[0], grid, true),
                                BuildHistogram1D(db[1], grid, true)),
            0);
}

TEST(HistogramDistanceTest, LowerBoundOnDenseOscillatingData) {
  // Dense multi-harmonic trajectories (the Kungfu stand-in) produce long
  // chains of boundary-straddling matches — exactly the case that exposed
  // the residual-cancellation bug. Verify HD <= EDR across a sample.
  TrajectoryDataset db = GenKungfuLike(24, 80, 13);
  db.NormalizeAll();
  const double eps = 0.25;
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), eps);
  for (size_t i = 0; i < db.size(); i += 3) {
    for (size_t j = i + 1; j < db.size(); j += 5) {
      const int exact = EdrDistance(db[i], db[j], eps);
      EXPECT_LE(HistogramDistance2D(BuildHistogram2D(db[i], grid),
                                    BuildHistogram2D(db[j], grid), grid),
                exact);
      EXPECT_LE(HistogramDistance1D(BuildHistogram1D(db[i], grid, true),
                                    BuildHistogram1D(db[j], grid, true)),
                exact);
    }
  }
}

TEST(HistogramDistanceTest, DisjointHistogramsCostMaxSide) {
  // Far-apart single-element trajectories: one insertion-like residual on
  // each side, no adjacency, HD = max(1, 1) = 1.
  TrajectoryDataset db;
  db.Add(Trajectory({{0.0, 0.0}}));
  db.Add(Trajectory({{10.0, 10.0}}));
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), 0.5);
  const std::vector<int> a = BuildHistogram2D(db[0], grid);
  const std::vector<int> b = BuildHistogram2D(db[1], grid);
  EXPECT_EQ(HistogramDistance2D(a, b, grid), 1);
}

TEST(HistogramDistanceTest, LengthGapShowsUpAsResidual) {
  TrajectoryDataset db;
  db.Add(Trajectory({{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}}));
  db.Add(Trajectory({{0.0, 0.0}}));
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), 0.5);
  const std::vector<int> a = BuildHistogram2D(db[0], grid);
  const std::vector<int> b = BuildHistogram2D(db[1], grid);
  EXPECT_EQ(HistogramDistance2D(a, b, grid), 3);  // = EDR (3 deletions).
}

TEST(HistogramDistanceTest, FastBoundNeverExceedsExact) {
  Rng rng(36);
  TrajectoryDataset db;
  for (int i = 0; i < 12; ++i) {
    db.Add(testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(3, 60))));
  }
  db.Add(GenKungfuLike(4, 60, 13)[0]);  // Dense chained data too.
  db.NormalizeAll();
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), kEps);
  for (size_t i = 0; i < db.size(); ++i) {
    for (size_t j = i + 1; j < db.size(); ++j) {
      const std::vector<int> a = BuildHistogram2D(db[i], grid);
      const std::vector<int> b = BuildHistogram2D(db[j], grid);
      EXPECT_LE(HistogramDistance2DFast(a, b, grid),
                HistogramDistance2D(a, b, grid));
      const std::vector<int> ax = BuildHistogram1D(db[i], grid, true);
      const std::vector<int> bx = BuildHistogram1D(db[j], grid, true);
      EXPECT_LE(HistogramDistance1DFast(ax, bx),
                HistogramDistance1D(ax, bx));
    }
  }
}

TEST(HistogramTableTest, FastLowerBoundValid) {
  const TrajectoryDataset db = testutil::SmallDataset(37, 25);
  for (const HistogramTable::Kind kind :
       {HistogramTable::Kind::k2D, HistogramTable::Kind::k1D}) {
    const HistogramTable table(db, kEps, kind, 1);
    const Trajectory query = db[3];
    const HistogramTable::QueryHistogram qh = table.MakeQueryHistogram(query);
    for (uint32_t id = 0; id < db.size(); ++id) {
      const int fast = table.FastLowerBound(qh, id);
      const int exact = table.LowerBound(qh, id);
      EXPECT_LE(fast, exact);
      EXPECT_LE(exact, EdrDistance(query, db[id], kEps));
      EXPECT_GE(fast, 0);
    }
  }
}

class HistogramLowerBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramLowerBoundTest, Theorem6HdLowerBoundsEdr) {
  Rng rng(GetParam());
  TrajectoryDataset db;
  for (int i = 0; i < 14; ++i) {
    db.Add(testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(3, 60))));
  }
  db.NormalizeAll();
  const HistogramGrid grid = HistogramGrid::For(StatsFor(db), kEps);
  std::vector<std::vector<int>> hs;
  for (const Trajectory& t : db) hs.push_back(BuildHistogram2D(t, grid));
  for (size_t i = 0; i < db.size(); ++i) {
    for (size_t j = i + 1; j < db.size(); ++j) {
      const int lower = HistogramDistance2D(hs[i], hs[j], grid);
      const int exact = EdrDistance(db[i], db[j], kEps);
      EXPECT_LE(lower, exact) << "pair " << i << "," << j;
    }
  }
}

TEST_P(HistogramLowerBoundTest, Corollary1OneDimensionalAndCoarseBins) {
  Rng rng(GetParam() ^ 0x77);
  TrajectoryDataset db;
  for (int i = 0; i < 10; ++i) {
    db.Add(testutil::RandomWalk(
        rng, static_cast<size_t>(rng.UniformInt(3, 50))));
  }
  db.NormalizeAll();
  const DatasetStats stats = StatsFor(db);
  for (size_t i = 0; i < db.size(); ++i) {
    for (size_t j = i + 1; j < db.size(); ++j) {
      const int exact = EdrDistance(db[i], db[j], kEps);
      // Coarse 2-D histograms with bin size delta * eps.
      for (const int delta : {2, 3, 4}) {
        const HistogramGrid grid = HistogramGrid::For(stats, kEps * delta);
        const int lower = HistogramDistance2D(BuildHistogram2D(db[i], grid),
                                              BuildHistogram2D(db[j], grid),
                                              grid);
        EXPECT_LE(lower, exact) << "delta=" << delta;
      }
      // Per-dimension 1-D histograms with bin size eps.
      const HistogramGrid grid = HistogramGrid::For(stats, kEps);
      const int dx =
          HistogramDistance1D(BuildHistogram1D(db[i], grid, true),
                              BuildHistogram1D(db[j], grid, true));
      const int dy =
          HistogramDistance1D(BuildHistogram1D(db[i], grid, false),
                              BuildHistogram1D(db[j], grid, false));
      EXPECT_LE(dx, exact);
      EXPECT_LE(dy, exact);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramLowerBoundTest,
                         ::testing::Range<uint64_t>(600, 612));

TEST(HistogramTableTest, LowerBoundHandlesBothKinds) {
  const TrajectoryDataset db = testutil::SmallDataset(34, 20);
  const HistogramTable t2(db, kEps, HistogramTable::Kind::k2D, 1);
  const HistogramTable t1(db, kEps, HistogramTable::Kind::k1D, 1);
  const Trajectory query = db[2];
  for (uint32_t id = 0; id < db.size(); ++id) {
    const int exact = EdrDistance(query, db[id], kEps);
    EXPECT_LE(t2.LowerBound(query, id), exact);
    EXPECT_LE(t1.LowerBound(query, id), exact);
    // The 2-D bound is at least as tight as either 1-D bound only in
    // aggregate, but both must be valid lower bounds (checked above) and
    // non-negative.
    EXPECT_GE(t2.LowerBound(query, id), 0);
    EXPECT_GE(t1.LowerBound(query, id), 0);
  }
}

TEST(HistogramTableTest, QueryHistogramHandleMatchesDirectCalls) {
  const TrajectoryDataset db = testutil::SmallDataset(35, 15);
  const HistogramTable table(db, kEps, HistogramTable::Kind::k2D, 1);
  const Trajectory query = db[1];
  const HistogramTable::QueryHistogram qh = table.MakeQueryHistogram(query);
  for (uint32_t id = 0; id < db.size(); ++id) {
    EXPECT_EQ(table.LowerBound(qh, id), table.LowerBound(query, id));
  }
}

}  // namespace
}  // namespace edr
