#include "eval/epsilon.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "test_util.h"

namespace edr {
namespace {

TEST(EpsilonProbeTest, DegenerateDatasets) {
  TrajectoryDataset empty;
  const EpsilonProbeResult r = SuggestEpsilonByProbing(empty);
  EXPECT_DOUBLE_EQ(r.epsilon, 0.25);  // The documented default.

  TrajectoryDataset one;
  one.Add(Trajectory({{0.0, 0.0}}));
  EXPECT_DOUBLE_EQ(SuggestEpsilonByProbing(one).epsilon, 0.25);
}

TEST(EpsilonProbeTest, ReturnsACandidate) {
  TrajectoryDataset db = testutil::SmallDataset(951, 40, 10, 40);
  const std::vector<double> candidates = {0.1, 0.3, 0.9};
  const EpsilonProbeResult r = SuggestEpsilonByProbing(db, candidates, 3, 5);
  EXPECT_TRUE(r.epsilon == 0.1 || r.epsilon == 0.3 || r.epsilon == 0.9);
  EXPECT_GT(r.contrast, 0.0);
}

TEST(EpsilonProbeTest, ClusteredDataPrefersModerateThreshold) {
  // On strongly clustered data a small-to-moderate epsilon already gives
  // huge contrast (neighbors at ~0, the bulk near max length); a giant
  // epsilon collapses everything and loses it.
  TrajectoryDataset db = GenKungfuLike(120, 60, 13);
  db.NormalizeAll();
  const EpsilonProbeResult r =
      SuggestEpsilonByProbing(db, {0.25, 8.0}, 4, 10);
  EXPECT_DOUBLE_EQ(r.epsilon, 0.25);
  EXPECT_GT(r.contrast, 2.0);
}

TEST(EpsilonProbeTest, UnclusteredDataPrefersLargerThreshold) {
  // On structureless random walks a tiny epsilon saturates every
  // distance (contrast ~ 1); probing must move the threshold up — the
  // situation encountered by the Table 3 random-walk experiments.
  RandomWalkOptions options;
  options.count = 150;
  options.min_length = 20;
  options.max_length = 80;
  options.seed = 952;
  TrajectoryDataset db = GenRandomWalk(options);
  db.NormalizeAll();
  const EpsilonProbeResult r =
      SuggestEpsilonByProbing(db, {0.05, 1.0}, 4, 10);
  EXPECT_DOUBLE_EQ(r.epsilon, 1.0);
}

TEST(EpsilonProbeTest, DeterministicForSameInputs) {
  TrajectoryDataset db = testutil::SmallDataset(953, 30, 10, 30);
  const EpsilonProbeResult a = SuggestEpsilonByProbing(db, {0.1, 0.5}, 3, 5);
  const EpsilonProbeResult b = SuggestEpsilonByProbing(db, {0.1, 0.5}, 3, 5);
  EXPECT_DOUBLE_EQ(a.epsilon, b.epsilon);
  EXPECT_DOUBLE_EQ(a.contrast, b.contrast);
}

}  // namespace
}  // namespace edr
