#include "core/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace edr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.5, 8.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 8.25);
  }
}

TEST(RngTest, UniformIntInclusiveAndCoversRange) {
  Rng rng(13);
  bool seen[6] = {false, false, false, false, false, false};
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    seen[v - 10] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  constexpr int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(19);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.Gaussian(5.0, 0.5);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.02);
}

}  // namespace
}  // namespace edr
