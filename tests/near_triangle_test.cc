#include "pruning/near_triangle.h"

#include <gtest/gtest.h>

#include "distance/edr.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(PairwiseEdrMatrixTest, EntriesAreTrueDistances) {
  const TrajectoryDataset db = testutil::SmallDataset(11, 20);
  const PairwiseEdrMatrix m = PairwiseEdrMatrix::Build(db, kEps, 5);
  EXPECT_EQ(m.num_refs(), 5u);
  EXPECT_EQ(m.db_size(), 20u);
  for (size_t r = 0; r < m.num_refs(); ++r) {
    for (uint32_t s = 0; s < db.size(); ++s) {
      EXPECT_EQ(m.at(r, s), EdrDistance(db[r], db[s], kEps));
    }
  }
}

TEST(PairwiseEdrMatrixTest, DiagonalZeroAndSymmetricAmongRefs) {
  const TrajectoryDataset db = testutil::SmallDataset(12, 15);
  const PairwiseEdrMatrix m = PairwiseEdrMatrix::Build(db, kEps, 8);
  for (size_t r = 0; r < 8; ++r) {
    EXPECT_EQ(m.at(r, static_cast<uint32_t>(r)), 0);
    for (size_t s = 0; s < 8; ++s) {
      EXPECT_EQ(m.at(r, static_cast<uint32_t>(s)),
                m.at(s, static_cast<uint32_t>(r)));
    }
  }
}

TEST(PairwiseEdrMatrixTest, RefCountClampedToDbSize) {
  const TrajectoryDataset db = testutil::SmallDataset(13, 6);
  const PairwiseEdrMatrix m = PairwiseEdrMatrix::Build(db, kEps, 100);
  EXPECT_EQ(m.num_refs(), 6u);
}

class NearTriangleLosslessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NearTriangleLosslessTest, MatchesSequentialScan) {
  const TrajectoryDataset db = testutil::SmallDataset(GetParam(), 90, 5, 70);
  const NearTriangleSearcher searcher(db, kEps, 30);
  for (const Trajectory& query :
       testutil::MakeQueries(db, GetParam() ^ 0xAB, 4)) {
    const KnnResult expected = SequentialScanKnn(db, query, 10, kEps);
    const KnnResult actual = searcher.Knn(query, 10);
    EXPECT_TRUE(SameKnnDistances(expected, actual));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NearTriangleLosslessTest,
                         ::testing::Range<uint64_t>(500, 508));

TEST(NearTriangleTest, NoPruningOnFixedLengthData) {
  // Section 5.2: the |S| slack means nothing is pruned when all
  // trajectories (and the query) share one length.
  Rng rng(14);
  TrajectoryDataset db;
  for (int i = 0; i < 40; ++i) db.Add(testutil::RandomWalk(rng, 32));
  const NearTriangleSearcher searcher(db, kEps, 20);
  const KnnResult result = searcher.Knn(db[0], 5);
  EXPECT_EQ(result.stats.edr_computed, db.size());
  EXPECT_DOUBLE_EQ(result.stats.PruningPower(), 0.0);
}

TEST(NearTriangleTest, CanPruneOnVariableLengthData) {
  // The bound EDR(Q,R) - EDR(S,R) - |S| fires when the reference R is far
  // from the query (EDR(Q,R) large, here via a length gap) while the
  // candidate S is short and close to R. Construct exactly that: a long
  // query with close matches in the database, plus many short candidates.
  Rng rng(15);
  const Trajectory query = testutil::RandomWalk(rng, 200, 0.3);

  TrajectoryDataset db;
  // References (scanned first): short walks, far from the long query.
  for (int i = 0; i < 10; ++i) db.Add(testutil::RandomWalk(rng, 5, 0.3));
  // Close matches for the query so bestSoFar becomes small.
  for (int i = 0; i < 3; ++i) {
    Trajectory near = query;
    near[0] = {near[0].x + 3.0, near[0].y};
    db.Add(std::move(near));
  }
  // Many more short candidates that the references should prune.
  for (int i = 0; i < 40; ++i) db.Add(testutil::RandomWalk(rng, 5, 0.3));

  const NearTriangleSearcher searcher(db, kEps, 10);
  const KnnResult expected = SequentialScanKnn(db, query, 3, kEps);
  const KnnResult actual = searcher.Knn(query, 3);
  EXPECT_TRUE(SameKnnDistances(expected, actual));
  EXPECT_LT(actual.stats.edr_computed, db.size() / 2);
  EXPECT_GT(actual.stats.PruningPower(), 0.4);
}

TEST(NearTriangleTest, SharedMatrixConstructorBehavesTheSame) {
  const TrajectoryDataset db = testutil::SmallDataset(16, 30);
  PairwiseEdrMatrix matrix = PairwiseEdrMatrix::Build(db, kEps, 10);
  const NearTriangleSearcher a(db, kEps, 10);
  const NearTriangleSearcher b(db, kEps, std::move(matrix));
  const Trajectory query = db[4];
  EXPECT_TRUE(SameKnnDistances(a.Knn(query, 5), b.Knn(query, 5)));
}

}  // namespace
}  // namespace edr
