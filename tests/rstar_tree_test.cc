#include "index/rstar_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.h"

namespace edr {
namespace {

TEST(RectTest, UnionCoversBoth) {
  const Rect a{0, 0, 1, 1};
  const Rect b{2, -1, 3, 0.5};
  const Rect u = Rect::Union(a, b);
  EXPECT_DOUBLE_EQ(u.min_x, 0.0);
  EXPECT_DOUBLE_EQ(u.min_y, -1.0);
  EXPECT_DOUBLE_EQ(u.max_x, 3.0);
  EXPECT_DOUBLE_EQ(u.max_y, 1.0);
}

TEST(RectTest, OverlapArea) {
  const Rect a{0, 0, 2, 2};
  const Rect b{1, 1, 3, 3};
  EXPECT_DOUBLE_EQ(Rect::OverlapArea(a, b), 1.0);
  const Rect c{5, 5, 6, 6};
  EXPECT_DOUBLE_EQ(Rect::OverlapArea(a, c), 0.0);
}

TEST(RectTest, EnlargementZeroWhenContained) {
  const Rect a{0, 0, 4, 4};
  const Rect b{1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(Rect::Enlargement(a, b), 0.0);
  EXPECT_GT(Rect::Enlargement(b, a), 0.0);
}

TEST(RectTest, IntersectsIsInclusiveOnBoundary) {
  const Rect a{0, 0, 1, 1};
  const Rect b{1, 1, 2, 2};
  EXPECT_TRUE(a.Intersects(b));
}

TEST(RectTest, AroundBuildsEpsilonSquare) {
  const Rect r = Rect::Around({1.0, 2.0}, 0.25);
  EXPECT_DOUBLE_EQ(r.min_x, 0.75);
  EXPECT_DOUBLE_EQ(r.max_x, 1.25);
  EXPECT_DOUBLE_EQ(r.min_y, 1.75);
  EXPECT_DOUBLE_EQ(r.max_y, 2.25);
  EXPECT_TRUE(r.Contains(Point2{1.25, 1.75}));
  EXPECT_FALSE(r.Contains(Point2{1.26, 2.0}));
}

TEST(RStarTreeTest, EmptyTree) {
  const RStarTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.SearchRange({-1, -1, 1, 1}).empty());
}

TEST(RStarTreeTest, SingleInsertAndHit) {
  RStarTree tree;
  tree.Insert({0.5, 0.5}, 7);
  const auto hits = tree.SearchRange({0, 0, 1, 1});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
  EXPECT_TRUE(tree.SearchRange({2, 2, 3, 3}).empty());
}

TEST(RStarTreeTest, DuplicatePointsAllReported) {
  RStarTree tree;
  for (uint32_t i = 0; i < 10; ++i) tree.Insert({1.0, 1.0}, i);
  auto hits = tree.SearchRange({0.9, 0.9, 1.1, 1.1});
  EXPECT_EQ(hits.size(), 10u);
}

TEST(RStarTreeTest, GrowsAndStaysValid) {
  RStarTree tree(8);
  Rng rng(71);
  for (uint32_t i = 0; i < 2000; ++i) {
    tree.Insert({rng.Uniform(-10, 10), rng.Uniform(-10, 10)}, i);
  }
  EXPECT_EQ(tree.size(), 2000u);
  EXPECT_GT(tree.height(), 1);
  EXPECT_TRUE(tree.Validate());
}

class RStarTreeRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RStarTreeRandomizedTest, RangeQueriesMatchBruteForce) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.UniformInt(50, 800));
  RStarTree tree(static_cast<int>(rng.UniformInt(4, 24)));
  std::vector<Point2> points;
  for (int i = 0; i < n; ++i) {
    const Point2 p{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    points.push_back(p);
    tree.Insert(p, static_cast<uint32_t>(i));
  }
  ASSERT_TRUE(tree.Validate());

  for (int trial = 0; trial < 25; ++trial) {
    const Point2 c{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Rect query = Rect::Around(c, rng.Uniform(0.05, 2.0));
    std::vector<uint32_t> actual = tree.SearchRange(query);
    std::sort(actual.begin(), actual.end());
    std::vector<uint32_t> expected;
    for (int i = 0; i < n; ++i) {
      if (query.Contains(points[static_cast<size_t>(i)])) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    EXPECT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RStarTreeRandomizedTest,
                         ::testing::Range<uint64_t>(100, 112));

TEST(RStarTreeTest, ClusteredInsertionStaysValid) {
  // Clustered data exercises forced reinsertion and splits differently
  // from uniform data.
  RStarTree tree(6);
  Rng rng(72);
  for (int cluster = 0; cluster < 20; ++cluster) {
    const Point2 center{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    for (int i = 0; i < 60; ++i) {
      tree.Insert({center.x + rng.Gaussian(0.0, 0.1),
                   center.y + rng.Gaussian(0.0, 0.1)},
                  static_cast<uint32_t>(cluster));
    }
  }
  EXPECT_TRUE(tree.Validate());
  EXPECT_EQ(tree.size(), 1200u);
}

TEST(RStarTreeTest, SortedInsertionOrderStaysValid) {
  RStarTree tree(10);
  for (int i = 0; i < 1000; ++i) {
    tree.Insert({static_cast<double>(i), static_cast<double>(i)},
                static_cast<uint32_t>(i));
  }
  EXPECT_TRUE(tree.Validate());
  const auto hits = tree.SearchRange({100.0, 100.0, 110.0, 110.0});
  EXPECT_EQ(hits.size(), 11u);
}

TEST(RStarTreeTest, VisitorFormAgreesWithVectorForm) {
  RStarTree tree;
  Rng rng(73);
  for (uint32_t i = 0; i < 300; ++i) {
    tree.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)}, i);
  }
  const Rect query{0.2, 0.2, 0.7, 0.7};
  std::vector<uint32_t> collected;
  tree.SearchRange(query, [&](uint32_t v) { collected.push_back(v); });
  std::vector<uint32_t> direct = tree.SearchRange(query);
  std::sort(collected.begin(), collected.end());
  std::sort(direct.begin(), direct.end());
  EXPECT_EQ(collected, direct);
}

TEST(RStarTreeTest, MoveTransfersContents) {
  RStarTree tree;
  tree.Insert({1, 1}, 1);
  tree.Insert({2, 2}, 2);
  RStarTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved.SearchRange({0, 0, 3, 3}).size(), 2u);
}

}  // namespace
}  // namespace edr
