#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "pruning/histogram.h"
#include "query/engine.h"
#include "query/feature_cache.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

Trajectory Walk(uint64_t seed, size_t length) {
  Rng rng(seed);
  return testutil::RandomWalk(rng, length);
}

TEST(FeatureCacheTest, MissThenHit) {
  FeatureCache cache(8);
  const Trajectory t = Walk(1, 20);
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return std::vector<int>{1, 2, 3};
  };
  const auto first = cache.GetOrBuild<std::vector<int>>("key", t, build);
  const auto second = cache.GetOrBuild<std::vector<int>>("key", t, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());  // same cached object
  const FeatureCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(FeatureCacheTest, DistinctConfigKeysDoNotCollide) {
  FeatureCache cache(8);
  const Trajectory t = Walk(2, 20);
  const auto a =
      cache.GetOrBuild<int>("config-a", t, [] { return 1; });
  const auto b =
      cache.GetOrBuild<int>("config-b", t, [] { return 2; });
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(FeatureCacheTest, DistinctTrajectoriesDoNotCollide) {
  FeatureCache cache(8);
  const Trajectory t1 = Walk(3, 20);
  const Trajectory t2 = Walk(4, 20);
  ASSERT_NE(TrajectoryFingerprint(t1), TrajectoryFingerprint(t2));
  const auto a = cache.GetOrBuild<size_t>("key", t1, [&] { return t1.size(); });
  const auto b = cache.GetOrBuild<size_t>("key", t2, [&] { return t2.size(); });
  EXPECT_EQ(cache.stats().misses, 2u);
  // An equal copy of t1 (different object, same points) hits.
  const Trajectory t1_copy = t1;
  const auto c =
      cache.GetOrBuild<size_t>("key", t1_copy, [&] { return size_t{0}; });
  EXPECT_EQ(*c, t1.size());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(FeatureCacheTest, EvictsLeastRecentlyUsed) {
  FeatureCache cache(2);
  const Trajectory t1 = Walk(5, 10);
  const Trajectory t2 = Walk(6, 10);
  const Trajectory t3 = Walk(7, 10);
  int builds = 0;
  const auto build = [&] { return ++builds; };
  cache.GetOrBuild<int>("k", t1, build);  // {t1}
  cache.GetOrBuild<int>("k", t2, build);  // {t2, t1}
  cache.GetOrBuild<int>("k", t1, build);  // hit; {t1, t2}
  cache.GetOrBuild<int>("k", t3, build);  // evicts t2; {t3, t1}
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  // t1 survived (was MRU at eviction time), t2 did not.
  cache.GetOrBuild<int>("k", t1, build);
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.GetOrBuild<int>("k", t2, build);
  EXPECT_EQ(cache.stats().evictions, 2u);  // t2 rebuilt, evicting t3...
  EXPECT_EQ(builds, 4);
}

TEST(FeatureCacheTest, ClearDropsEntriesKeepsCounters) {
  FeatureCache cache(4);
  const Trajectory t = Walk(8, 12);
  cache.GetOrBuild<int>("k", t, [] { return 1; });
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  int builds = 0;
  cache.GetOrBuild<int>("k", t, [&] { return ++builds; });
  EXPECT_EQ(builds, 1);  // rebuilt after clear
}

TEST(FeatureCacheTest, FingerprintIsOrderAndValueSensitive) {
  Trajectory a;
  a.Append({1.0, 2.0});
  a.Append({3.0, 4.0});
  Trajectory b;
  b.Append({3.0, 4.0});
  b.Append({1.0, 2.0});
  Trajectory c;
  c.Append({1.0, 2.0});
  c.Append({3.0, 4.0});
  EXPECT_NE(TrajectoryFingerprint(a), TrajectoryFingerprint(b));
  EXPECT_EQ(TrajectoryFingerprint(a), TrajectoryFingerprint(c));
}

/// Cold-vs-warm equivalence on the real searchers: the same queries run
/// twice against one cache; the warm pass must hit and return results
/// bit-identical to both the cold pass and the uncached path.
TEST(FeatureCacheTest, ColdVersusWarmEquivalenceAcrossSearchers) {
  const TrajectoryDataset db = testutil::SmallDataset(911, 60, 10, 50);
  QueryEngine engine(db, kEps);
  const std::vector<Trajectory> queries = testutil::MakeQueries(db, 912, 6);
  FeatureCache cache(64);

  CombinedOptions combo;
  combo.max_triangle = 20;
  const std::vector<NamedSearcher> searchers = {
      engine.MakeQgram(QgramVariant::kMerge2D, 1),
      engine.MakeQgram(QgramVariant::kMerge1D, 1),
      engine.MakeQgram(QgramVariant::kRtree2D, 1),
      engine.MakeQgram(QgramVariant::kBtree1D, 1),
      engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                           HistogramScan::kSorted),
      engine.MakeCombined(combo),
  };

  for (const NamedSearcher& searcher : searchers) {
    KnnOptions cached;
    cached.feature_cache = &cache;
    for (const Trajectory& q : queries) {
      const KnnResult uncached = searcher.search(q, 5);
      const KnnResult cold = searcher.search_with(q, 5, cached);
      const KnnResult warm = searcher.search_with(q, 5, cached);
      ASSERT_EQ(uncached.neighbors.size(), cold.neighbors.size());
      ASSERT_EQ(uncached.neighbors.size(), warm.neighbors.size());
      for (size_t j = 0; j < uncached.neighbors.size(); ++j) {
        EXPECT_EQ(uncached.neighbors[j], cold.neighbors[j])
            << searcher.name << " rank " << j;
        EXPECT_EQ(uncached.neighbors[j], warm.neighbors[j])
            << searcher.name << " rank " << j;
      }
    }
  }
  const FeatureCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_EQ(stats.evictions, 0u);  // capacity 64 covers every feature here
}

/// Searchers with semantically identical configs share entries: the PS2
/// q-gram means and the combined searcher's q-gram means (same q), and
/// the two histogram consumers built over the same grid.
TEST(FeatureCacheTest, SemanticKeysShareEntriesAcrossSearchers) {
  const TrajectoryDataset db = testutil::SmallDataset(913, 50, 10, 40);
  QueryEngine engine(db, kEps);
  const Trajectory query = testutil::MakeQueries(db, 914, 1)[0];
  FeatureCache cache(32);
  KnnOptions cached;
  cached.feature_cache = &cache;

  // PS2 (q=1, sorted 2-D means) warms the cache...
  engine.MakeQgram(QgramVariant::kMerge2D, 1).search_with(query, 3, cached);
  const uint64_t misses_after_ps2 = cache.stats().misses;
  // ...and the combined searcher (same q) hits the q-gram entry; its
  // histogram entry (different feature) still misses.
  CombinedOptions combo;
  combo.max_triangle = 20;
  engine.MakeCombined(combo).search_with(query, 3, cached);
  const FeatureCache::Stats stats = cache.stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.misses, misses_after_ps2 + 1);  // only the histogram
}

TEST(FeatureCacheTest, HistogramFeatureKeyEncodesGeometry) {
  const TrajectoryDataset db = testutil::SmallDataset(915, 30, 10, 30);
  const HistogramTable t2d(db, kEps, HistogramTable::Kind::k2D, 1);
  const HistogramTable t1d(db, kEps, HistogramTable::Kind::k1D, 1);
  const HistogramTable t2d_coarse(db, kEps, HistogramTable::Kind::k2D, 2);
  EXPECT_NE(t2d.feature_key(), t1d.feature_key());
  EXPECT_NE(t2d.feature_key(), t2d_coarse.feature_key());
  const HistogramTable t2d_again(db, kEps, HistogramTable::Kind::k2D, 1);
  EXPECT_EQ(t2d.feature_key(), t2d_again.feature_key());
}

}  // namespace
}  // namespace edr
