#include "distance/edr_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.h"
#include "core/trajectory.h"
#include "core/trajectory3.h"
#include "distance/distance3.h"
#include "distance/edr.h"
#include "pruning/combined.h"
#include "query/knn.h"
#include "query/parallel.h"
#include "test_util.h"

namespace edr {
namespace {

/// Restores the process-wide default kernel when a test body returns.
struct KernelGuard {
  EdrKernel saved = DefaultEdrKernel();
  ~KernelGuard() { SetDefaultEdrKernel(saved); }
};

Trajectory RandomTrajectory(Rng& rng, size_t length) {
  // Correlated walk with occasional teleports: produces a realistic mix of
  // epsilon-matching and non-matching element pairs.
  Trajectory t;
  Point2 pos{rng.Gaussian(), rng.Gaussian()};
  for (size_t i = 0; i < length; ++i) {
    if (rng.NextDouble() < 0.05) {
      pos = {rng.Uniform(-4.0, 4.0), rng.Uniform(-4.0, 4.0)};
    }
    t.Append(pos);
    pos.x += rng.Gaussian(0.0, 0.3);
    pos.y += rng.Gaussian(0.0, 0.3);
  }
  return t;
}

Trajectory3 RandomTrajectory3(Rng& rng, size_t length) {
  Trajectory3 t;
  Point3 pos{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
  for (size_t i = 0; i < length; ++i) {
    t.Append(pos);
    pos.x += rng.Gaussian(0.0, 0.3);
    pos.y += rng.Gaussian(0.0, 0.3);
    pos.z += rng.Gaussian(0.0, 0.3);
  }
  return t;
}

size_t RandomLength(Rng& rng) {
  // Bias toward the 64-bit word boundaries where the multi-word carry
  // logic can go wrong, plus a uniform spread of short/medium lengths.
  switch (rng.UniformInt(0, 3)) {
    case 0: return static_cast<size_t>(rng.UniformInt(62, 66));
    case 1: return static_cast<size_t>(rng.UniformInt(126, 130));
    case 2: return static_cast<size_t>(rng.UniformInt(0, 40));
    default: return static_cast<size_t>(rng.UniformInt(1, 200));
  }
}

TEST(EdrKernelTest, BitParallelMatchesScalarOnRandomPairs) {
  Rng rng(20250806);
  EdrScratch scratch;
  const double epsilons[] = {0.05, 0.25, 1.0};
  for (int iter = 0; iter < 1000; ++iter) {
    const Trajectory a = RandomTrajectory(rng, RandomLength(rng));
    const Trajectory b = RandomTrajectory(rng, RandomLength(rng));
    const double eps = epsilons[iter % 3];
    const int scalar = EdrDistance(a, b, eps);
    const int bitpar = EdrDistanceBitParallel(a, b, eps, scratch);
    ASSERT_EQ(scalar, bitpar)
        << "iter=" << iter << " |a|=" << a.size() << " |b|=" << b.size()
        << " eps=" << eps;
  }
}

TEST(EdrKernelTest, WordBoundaryLengths) {
  Rng rng(7);
  EdrScratch scratch;
  const size_t lengths[] = {1, 2, 63, 64, 65, 127, 128, 129, 192, 256};
  for (const size_t la : lengths) {
    for (const size_t lb : lengths) {
      const Trajectory a = RandomTrajectory(rng, la);
      const Trajectory b = RandomTrajectory(rng, lb);
      ASSERT_EQ(EdrDistance(a, b, 0.25),
                EdrDistanceBitParallel(a, b, 0.25, scratch))
          << "|a|=" << la << " |b|=" << lb;
    }
  }
}

TEST(EdrKernelTest, EdgeCases) {
  EdrScratch scratch;
  const Trajectory empty;
  Rng rng(11);
  const Trajectory one = RandomTrajectory(rng, 1);
  const Trajectory walk = RandomTrajectory(rng, 100);

  EXPECT_EQ(EdrDistanceBitParallel(empty, empty, 0.25, scratch), 0);
  EXPECT_EQ(EdrDistanceBitParallel(empty, walk, 0.25, scratch), 100);
  EXPECT_EQ(EdrDistanceBitParallel(walk, empty, 0.25, scratch), 100);
  EXPECT_EQ(EdrDistanceBitParallel(one, one, 0.25, scratch), 0);
  EXPECT_EQ(EdrDistanceBitParallel(walk, walk, 0.25, scratch), 0);

  // All-mismatch: disjoint spatial ranges force EDR = max(m, n).
  Trajectory far = RandomTrajectory(rng, 70);
  for (Point2& p : far.mutable_points()) p.x += 1000.0;
  EXPECT_EQ(EdrDistanceBitParallel(walk, far, 0.25, scratch), 100);
  EXPECT_EQ(EdrDistance(walk, far, 0.25), 100);

  // Identical trajectories at a word-boundary length.
  const Trajectory b64 = RandomTrajectory(rng, 64);
  EXPECT_EQ(EdrDistanceBitParallel(b64, b64, 0.25, scratch), 0);
}

TEST(EdrKernelTest, BoundedContractBothKernels) {
  Rng rng(42);
  EdrScratch scratch;
  for (int iter = 0; iter < 400; ++iter) {
    const Trajectory a = RandomTrajectory(rng, RandomLength(rng));
    const Trajectory b = RandomTrajectory(rng, RandomLength(rng));
    const int exact = EdrDistance(a, b, 0.25);
    const int max_len = static_cast<int>(std::max(a.size(), b.size()));
    const int bound =
        static_cast<int>(rng.UniformInt(-1, std::max(1, max_len)));
    for (const EdrKernel kernel :
         {EdrKernel::kScalar, EdrKernel::kBitParallel}) {
      const int got =
          EdrDistanceBoundedWith(kernel, scratch, a, b, 0.25, bound);
      if (exact <= bound) {
        ASSERT_EQ(got, exact) << EdrKernelName(kernel) << " bound=" << bound;
      } else {
        ASSERT_GT(got, bound) << EdrKernelName(kernel);
        ASSERT_LE(got, exact) << EdrKernelName(kernel)
                              << " (not a lower bound) bound=" << bound;
      }
    }
  }
}

TEST(EdrKernelTest, DispatchMatchesPublicApi) {
  Rng rng(9);
  EdrScratch scratch;
  for (int iter = 0; iter < 100; ++iter) {
    const Trajectory a = RandomTrajectory(rng, RandomLength(rng));
    const Trajectory b = RandomTrajectory(rng, RandomLength(rng));
    const int expected = EdrDistance(a, b, 0.25);
    EXPECT_EQ(EdrDistanceWith(EdrKernel::kScalar, scratch, a, b, 0.25),
              expected);
    EXPECT_EQ(EdrDistanceWith(EdrKernel::kBitParallel, scratch, a, b, 0.25),
              expected);
  }
}

TEST(EdrKernelTest, BitParallelMatchesScalar3D) {
  Rng rng(123);
  EdrScratch scratch;
  for (int iter = 0; iter < 200; ++iter) {
    const Trajectory3 a = RandomTrajectory3(rng, RandomLength(rng));
    const Trajectory3 b = RandomTrajectory3(rng, RandomLength(rng));
    const int scalar = EdrDistance(a, b, 0.3);
    ASSERT_EQ(scalar, EdrDistanceBitParallel(a, b, 0.3, scratch))
        << "|a|=" << a.size() << " |b|=" << b.size();
    const int bound = static_cast<int>(rng.UniformInt(0, 60));
    const int got = EdrDistanceBoundedWith(EdrKernel::kBitParallel, scratch,
                                           a, b, 0.3, bound);
    if (scalar <= bound) {
      ASSERT_EQ(got, scalar);
    } else {
      ASSERT_GT(got, bound);
      ASSERT_LE(got, scalar);
    }
  }
}

TEST(EdrKernelTest, BoundFromKthDistanceHandlesInfinities) {
  EXPECT_EQ(EdrBoundFromKthDistance(
                std::numeric_limits<double>::infinity()),
            kEdrNoBound);
  EXPECT_EQ(EdrBoundFromKthDistance(
                -std::numeric_limits<double>::infinity()),
            -1);
  EXPECT_EQ(EdrBoundFromKthDistance(7.0), 7);
}

TEST(EdrKernelTest, KernelNamesAreStable) {
  EXPECT_STREQ(EdrKernelName(EdrKernel::kScalar), "scalar");
  EXPECT_STREQ(EdrKernelName(EdrKernel::kBitParallel), "bit-parallel");
}

// End-to-end certification: the combined searcher (all three filters plus
// bounded refinement) returns distances identical to the sequential-scan
// ground truth under either kernel.
TEST(EdrKernelTest, CombinedSearcherLosslessUnderBothKernels) {
  KernelGuard guard;
  const TrajectoryDataset db = testutil::SmallDataset(77, 60);
  const std::vector<Trajectory> queries = testutil::MakeQueries(db, 78, 4);
  constexpr double kEps = 0.25;
  CombinedOptions options;
  options.max_triangle = 20;

  SetDefaultEdrKernel(EdrKernel::kScalar);
  std::vector<KnnResult> truth;
  for (const Trajectory& q : queries) {
    truth.push_back(SequentialScanKnn(db, q, 5, kEps));
  }

  for (const EdrKernel kernel :
       {EdrKernel::kScalar, EdrKernel::kBitParallel}) {
    SetDefaultEdrKernel(kernel);
    const CombinedKnnSearcher searcher(db, kEps, options);
    for (size_t i = 0; i < queries.size(); ++i) {
      const KnnResult got = searcher.Knn(queries[i], 5);
      EXPECT_TRUE(SameKnnDistances(truth[i], got))
          << "kernel=" << EdrKernelName(kernel) << " query " << i;
    }
  }
}

// ParallelKnn workers each use their own thread-local scratch; results
// must match the single-threaded scan exactly.
TEST(EdrKernelTest, ParallelKnnMatchesSequentialWithThreadLocalScratch) {
  KernelGuard guard;
  SetDefaultEdrKernel(EdrKernel::kBitParallel);
  const TrajectoryDataset db = testutil::SmallDataset(31, 40);
  const std::vector<Trajectory> queries = testutil::MakeQueries(db, 32, 6);

  const auto search = [&db](const Trajectory& q, size_t k) {
    return SequentialScanKnn(db, q, k, 0.25);
  };
  const std::vector<KnnResult> parallel = ParallelKnn(search, queries, 5, 4);
  for (size_t i = 0; i < queries.size(); ++i) {
    const KnnResult seq = search(queries[i], 5);
    EXPECT_TRUE(SameKnnDistances(seq, parallel[i])) << "query " << i;
  }
}

}  // namespace
}  // namespace edr
