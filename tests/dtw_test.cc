#include "distance/dtw.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace edr {
namespace {

Trajectory Seq(std::initializer_list<double> xs) {
  Trajectory t;
  for (const double x : xs) t.Append(x, 0.0);
  return t;
}

TEST(DtwTest, BothEmptyIsZero) {
  EXPECT_DOUBLE_EQ(DtwDistance(Trajectory(), Trajectory()), 0.0);
}

TEST(DtwTest, OneEmptyIsInfinite) {
  EXPECT_TRUE(std::isinf(DtwDistance(Seq({1}), Trajectory())));
  EXPECT_TRUE(std::isinf(DtwDistance(Trajectory(), Seq({1}))));
}

TEST(DtwTest, IdenticalIsZero) {
  const Trajectory t = Seq({1, 5, 2, 8});
  EXPECT_DOUBLE_EQ(DtwDistance(t, t), 0.0);
}

TEST(DtwTest, HandlesLocalTimeShiftingByDuplication) {
  // Same path sampled at different speeds: DTW should be zero.
  const Trajectory a = Seq({1, 2, 3});
  const Trajectory b = Seq({1, 1, 2, 2, 3, 3});
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), 0.0);
}

TEST(DtwTest, KnownSmallExample) {
  const Trajectory a = Seq({0, 0});
  const Trajectory b = Seq({1});
  // Both elements of a align to b[0]: cost 1 + 1 (squared dists).
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), 2.0);
}

TEST(DtwTest, Symmetric) {
  Rng rng(21);
  Trajectory a;
  Trajectory b;
  for (int i = 0; i < 24; ++i) a.Append(rng.Gaussian(), rng.Gaussian());
  for (int i = 0; i < 30; ++i) b.Append(rng.Gaussian(), rng.Gaussian());
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), DtwDistance(b, a));
}

TEST(DtwTest, SensitiveToNoiseUnlikeEdr) {
  // A single huge outlier inflates DTW by roughly its squared magnitude.
  const Trajectory clean = Seq({1, 2, 3, 4});
  const Trajectory noisy = Seq({1, 100, 2, 3, 4});
  EXPECT_GT(DtwDistance(clean, noisy), 9000.0);
}

TEST(DtwBandedTest, UnconstrainedMatchesPlain) {
  Rng rng(22);
  Trajectory a;
  Trajectory b;
  for (int i = 0; i < 20; ++i) a.Append(rng.Gaussian(), rng.Gaussian());
  for (int i = 0; i < 26; ++i) b.Append(rng.Gaussian(), rng.Gaussian());
  EXPECT_DOUBLE_EQ(DtwDistanceBanded(a, b, -1), DtwDistance(a, b));
}

TEST(DtwBandedTest, BandIsUpperBoundOfUnconstrained) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    Trajectory a;
    Trajectory b;
    const int la = static_cast<int>(rng.UniformInt(5, 40));
    const int lb = static_cast<int>(rng.UniformInt(5, 40));
    for (int i = 0; i < la; ++i) a.Append(rng.Gaussian(), rng.Gaussian());
    for (int i = 0; i < lb; ++i) b.Append(rng.Gaussian(), rng.Gaussian());
    const double full = DtwDistance(a, b);
    for (const int band : {0, 1, 3, 8}) {
      EXPECT_GE(DtwDistanceBanded(a, b, band) + 1e-9, full);
    }
  }
}

TEST(DtwBandedTest, WideBandRecoversExact) {
  Rng rng(24);
  Trajectory a;
  Trajectory b;
  for (int i = 0; i < 15; ++i) a.Append(rng.Gaussian(), rng.Gaussian());
  for (int i = 0; i < 12; ++i) b.Append(rng.Gaussian(), rng.Gaussian());
  EXPECT_DOUBLE_EQ(DtwDistanceBanded(a, b, 100), DtwDistance(a, b));
}

TEST(DtwBandedTest, BandWidenedToLengthGapStaysFinite) {
  const Trajectory a = Seq({1, 2, 3, 4, 5, 6, 7, 8});
  const Trajectory b = Seq({1});
  EXPECT_TRUE(std::isfinite(DtwDistanceBanded(a, b, 0)));
}

}  // namespace
}  // namespace edr
