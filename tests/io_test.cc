#include "data/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/generators.h"

namespace edr {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IoTest, RoundTripPreservesEverything) {
  RandomWalkOptions options;
  options.count = 12;
  options.min_length = 3;
  options.max_length = 20;
  TrajectoryDataset db = GenRandomWalk(options);
  db[0].set_label(5);
  db[3].set_label(0);

  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveCsv(db, path).ok());
  const Result<TrajectoryDataset> loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_TRUE((*loaded)[i] == db[i]) << i;
    EXPECT_EQ((*loaded)[i].label(), db[i].label());
    EXPECT_EQ((*loaded)[i].id(), db[i].id());
  }
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIoError) {
  const Result<TrajectoryDataset> r = LoadCsv("/nonexistent/file.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoTest, MalformedLineIsInvalidArgument) {
  const std::string path = TempPath("malformed.csv");
  {
    std::ofstream out(path);
    out << "0,1,0.5,0.5\n";
    out << "not,a,valid line\n";
  }
  const Result<TrajectoryDataset> r = LoadCsv(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The error message pinpoints the line.
  EXPECT_NE(r.status().message().find(":2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IoTest, CommentsAndBlankLinesSkipped) {
  const std::string path = TempPath("comments.csv");
  {
    std::ofstream out(path);
    out << "# header comment\n\n";
    out << "0,-1,1.0,2.0\n";
    out << "0,-1,3.0,4.0\n";
    out << "\n# trailing\n";
    out << "7,2,5.0,6.0\n";
  }
  const Result<TrajectoryDataset> r = LoadCsv(path);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].size(), 2u);
  EXPECT_EQ((*r)[0].label(), -1);
  EXPECT_EQ((*r)[1].size(), 1u);
  EXPECT_EQ((*r)[1].label(), 2);
  std::remove(path.c_str());
}

TEST(IoTest, EmptyFileGivesEmptyDataset) {
  const std::string path = TempPath("empty.csv");
  { std::ofstream out(path); }
  const Result<TrajectoryDataset> r = LoadCsv(path);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripPreservesEverything) {
  RandomWalkOptions options;
  options.count = 20;
  options.min_length = 1;
  options.max_length = 40;
  TrajectoryDataset db = GenRandomWalk(options);
  db[2].set_label(9);

  const std::string path = TempPath("roundtrip.edrt");
  ASSERT_TRUE(SaveBinary(db, path).ok());
  const Result<TrajectoryDataset> loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_TRUE((*loaded)[i] == db[i]) << i;  // Bit-exact doubles.
    EXPECT_EQ((*loaded)[i].label(), db[i].label());
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, EmptyDatasetRoundTrips) {
  const std::string path = TempPath("empty.edrt");
  ASSERT_TRUE(SaveBinary(TrajectoryDataset(), path).ok());
  const Result<TrajectoryDataset> r = LoadBinary(path);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, BadMagicRejected) {
  const std::string path = TempPath("bad.edrt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "JUNKJUNKJUNKJUNKJUNK";
  }
  const Result<TrajectoryDataset> r = LoadBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, TruncationRejected) {
  RandomWalkOptions options;
  options.count = 5;
  TrajectoryDataset db = GenRandomWalk(options);
  const std::string path = TempPath("trunc.edrt");
  ASSERT_TRUE(SaveBinary(db, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  const Result<TrajectoryDataset> r = LoadBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, CsvAndBinaryAgree) {
  RandomWalkOptions options;
  options.count = 10;
  options.seed = 77;
  const TrajectoryDataset db = GenRandomWalk(options);
  const std::string csv = TempPath("agree.csv");
  const std::string bin = TempPath("agree.edrt");
  ASSERT_TRUE(SaveCsv(db, csv).ok());
  ASSERT_TRUE(SaveBinary(db, bin).ok());
  const Result<TrajectoryDataset> a = LoadCsv(csv);
  const Result<TrajectoryDataset> b = LoadBinary(bin);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE((*a)[i] == (*b)[i]);
  }
  std::remove(csv.c_str());
  std::remove(bin.c_str());
}

TEST(IoTest, SaveToBadPathFails) {
  TrajectoryDataset db;
  db.Add(Trajectory({{0.0, 0.0}}));
  EXPECT_FALSE(SaveCsv(db, "/nonexistent/dir/file.csv").ok());
}

}  // namespace
}  // namespace edr
