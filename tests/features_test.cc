#include "data/features.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "distance/edr.h"
#include "test_util.h"

namespace edr {
namespace {

TEST(FeaturesTest, DisplacementsOfKnownPath) {
  const Trajectory t({{0, 0}, {1, 0}, {1, 2}});
  const Trajectory d = ToDisplacements(t);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], (Point2{1, 0}));
  EXPECT_EQ(d[1], (Point2{0, 2}));
}

TEST(FeaturesTest, DisplacementsAreTranslationInvariant) {
  Rng rng(971);
  const Trajectory t = testutil::RandomWalk(rng, 30);
  Trajectory shifted = t;
  for (Point2& p : shifted.mutable_points()) {
    p.x += 123.0;
    p.y -= 45.0;
  }
  const Trajectory da = ToDisplacements(t);
  const Trajectory db = ToDisplacements(shifted);
  ASSERT_EQ(da.size(), db.size());
  for (size_t i = 0; i < da.size(); ++i) {
    // Equal up to floating-point rounding of the translation.
    EXPECT_NEAR(da[i].x, db[i].x, 1e-12);
    EXPECT_NEAR(da[i].y, db[i].y, 1e-12);
  }
  // And therefore EDR on displacements sees them as identical.
  EXPECT_EQ(EdrDistance(da, db, 0.01), 0);
}

TEST(FeaturesTest, HeadingsAreUnitLengthOrZero) {
  Rng rng(972);
  const Trajectory t = testutil::RandomWalk(rng, 25);
  const Trajectory h = ToHeadings(t);
  ASSERT_EQ(h.size(), t.size() - 1);
  for (const Point2& p : h) {
    const double len = std::sqrt(p.x * p.x + p.y * p.y);
    EXPECT_TRUE(std::fabs(len - 1.0) < 1e-9 || len == 0.0);
  }
}

TEST(FeaturesTest, HeadingsInvariantToSpeed) {
  // Same path traversed at double step size: identical headings.
  Trajectory slow;
  Trajectory fast;
  for (int i = 0; i < 10; ++i) {
    slow.Append(0.5 * i, 0.25 * i);
    fast.Append(1.0 * i, 0.5 * i);
  }
  const Trajectory hs = ToHeadings(slow);
  const Trajectory hf = ToHeadings(fast);
  ASSERT_EQ(hs.size(), hf.size());
  for (size_t i = 0; i < hs.size(); ++i) {
    EXPECT_NEAR(hs[i].x, hf[i].x, 1e-12);
    EXPECT_NEAR(hs[i].y, hf[i].y, 1e-12);
  }
}

TEST(FeaturesTest, StationaryStepHasZeroHeading) {
  const Trajectory t({{0, 0}, {0, 0}, {1, 0}});
  const Trajectory h = ToHeadings(t);
  EXPECT_EQ(h[0], (Point2{0, 0}));
  EXPECT_EQ(h[1], (Point2{1, 0}));
}

TEST(FeaturesTest, CumulativeLengthMonotone) {
  const Trajectory t({{0, 0}, {3, 4}, {3, 4}, {6, 8}});
  const Trajectory c = ToCumulativeLength(t);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0].x, 0.0);
  EXPECT_DOUBLE_EQ(c[1].x, 5.0);
  EXPECT_DOUBLE_EQ(c[2].x, 5.0);  // Stationary step adds nothing.
  EXPECT_DOUBLE_EQ(c[3].x, 10.0);
  EXPECT_DOUBLE_EQ(PathLength(t), 10.0);
}

TEST(FeaturesTest, EmptyAndSingletonInputs) {
  EXPECT_TRUE(ToDisplacements(Trajectory()).empty());
  EXPECT_TRUE(ToHeadings(Trajectory()).empty());
  EXPECT_TRUE(ToCumulativeLength(Trajectory()).empty());
  EXPECT_DOUBLE_EQ(PathLength(Trajectory()), 0.0);

  const Trajectory one({{5, 5}});
  EXPECT_TRUE(ToDisplacements(one).empty());
  EXPECT_EQ(ToCumulativeLength(one).size(), 1u);
}

TEST(FeaturesTest, MetadataPreserved) {
  Trajectory t({{0, 0}, {1, 1}}, 3);
  t.set_id(9);
  EXPECT_EQ(ToDisplacements(t).label(), 3);
  EXPECT_EQ(ToHeadings(t).id(), 9u);
  EXPECT_EQ(ToCumulativeLength(t).label(), 3);
}

}  // namespace
}  // namespace edr
