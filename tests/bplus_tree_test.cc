#include "index/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.h"

namespace edr {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  const BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.SearchRange(-10, 10).empty());
  EXPECT_TRUE(tree.Validate());
}

TEST(BPlusTreeTest, SingleKey) {
  BPlusTree tree;
  tree.Insert(1.5, 42);
  const auto hits = tree.SearchRange(1.0, 2.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  EXPECT_TRUE(tree.SearchRange(2.0, 3.0).empty());
}

TEST(BPlusTreeTest, RangeBoundariesInclusive) {
  BPlusTree tree;
  tree.Insert(1.0, 1);
  tree.Insert(2.0, 2);
  tree.Insert(3.0, 3);
  EXPECT_EQ(tree.SearchRange(1.0, 3.0).size(), 3u);
  EXPECT_EQ(tree.SearchRange(1.0, 1.0).size(), 1u);
  EXPECT_EQ(tree.SearchRange(1.5, 2.5).size(), 1u);
}

TEST(BPlusTreeTest, EmptyRangeWhenLoAboveHi) {
  BPlusTree tree;
  tree.Insert(1.0, 1);
  EXPECT_TRUE(tree.SearchRange(2.0, 1.0).empty());
}

TEST(BPlusTreeTest, DuplicateKeysAllReturned) {
  BPlusTree tree(4);
  for (uint32_t i = 0; i < 50; ++i) tree.Insert(7.0, i);
  EXPECT_EQ(tree.size(), 50u);
  EXPECT_TRUE(tree.Validate());
  EXPECT_EQ(tree.SearchRange(7.0, 7.0).size(), 50u);
  EXPECT_EQ(tree.SearchRange(6.99, 7.01).size(), 50u);
  EXPECT_TRUE(tree.SearchRange(7.01, 8.0).empty());
}

TEST(BPlusTreeTest, GrowsWithSmallOrderAndStaysValid) {
  BPlusTree tree(4);
  Rng rng(81);
  for (uint32_t i = 0; i < 5000; ++i) {
    tree.Insert(rng.Uniform(-100, 100), i);
  }
  EXPECT_EQ(tree.size(), 5000u);
  EXPECT_GT(tree.height(), 2);
  EXPECT_TRUE(tree.Validate());
}

TEST(BPlusTreeTest, ResultsAreKeyOrdered) {
  BPlusTree tree(4);
  Rng rng(82);
  for (uint32_t i = 0; i < 1000; ++i) tree.Insert(rng.Uniform(0, 1), i);
  double prev = -1.0;
  tree.SearchRange(0.0, 1.0, [&prev](double key, uint32_t) {
    EXPECT_GE(key, prev);
    prev = key;
  });
}

class BPlusTreeRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeRandomizedTest, RangeQueriesMatchBruteForce) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.UniformInt(10, 3000));
  const int order = static_cast<int>(rng.UniformInt(4, 64));
  BPlusTree tree(order);
  std::vector<double> keys;
  for (int i = 0; i < n; ++i) {
    // Quantized keys to force plenty of duplicates.
    const double key = static_cast<double>(rng.UniformInt(-50, 50)) * 0.5;
    keys.push_back(key);
    tree.Insert(key, static_cast<uint32_t>(i));
  }
  ASSERT_TRUE(tree.Validate());
  ASSERT_EQ(tree.size(), static_cast<size_t>(n));

  for (int trial = 0; trial < 25; ++trial) {
    const double a = rng.Uniform(-30, 30);
    const double b = a + rng.Uniform(0.0, 10.0);
    std::vector<uint32_t> actual = tree.SearchRange(a, b);
    std::vector<uint32_t> expected;
    for (int i = 0; i < n; ++i) {
      const double key = keys[static_cast<size_t>(i)];
      if (key >= a && key <= b) expected.push_back(static_cast<uint32_t>(i));
    }
    std::sort(actual.begin(), actual.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeRandomizedTest,
                         ::testing::Range<uint64_t>(200, 212));

TEST(BPlusTreeTest, AscendingInsertion) {
  BPlusTree tree(4);
  for (int i = 0; i < 2000; ++i) {
    tree.Insert(static_cast<double>(i), static_cast<uint32_t>(i));
  }
  EXPECT_TRUE(tree.Validate());
  EXPECT_EQ(tree.SearchRange(500.0, 509.0).size(), 10u);
}

TEST(BPlusTreeTest, DescendingInsertion) {
  BPlusTree tree(4);
  for (int i = 2000; i-- > 0;) {
    tree.Insert(static_cast<double>(i), static_cast<uint32_t>(i));
  }
  EXPECT_TRUE(tree.Validate());
  EXPECT_EQ(tree.SearchRange(0.0, 4.0).size(), 5u);
}

TEST(BPlusTreeTest, MoveTransfersContents) {
  BPlusTree tree;
  tree.Insert(1.0, 1);
  BPlusTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.SearchRange(0.0, 2.0).size(), 1u);
}

}  // namespace
}  // namespace edr
