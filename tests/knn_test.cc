#include "query/knn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "distance/edr.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

TEST(KnnResultListTest, KthDistanceInfiniteUntilFull) {
  KnnResultList list(3);
  EXPECT_TRUE(std::isinf(list.KthDistance()));
  list.Offer(0, 5.0);
  list.Offer(1, 2.0);
  EXPECT_TRUE(std::isinf(list.KthDistance()));
  list.Offer(2, 9.0);
  EXPECT_DOUBLE_EQ(list.KthDistance(), 9.0);
}

TEST(KnnResultListTest, KeepsKSmallestSorted) {
  KnnResultList list(3);
  for (uint32_t i = 0; i < 10; ++i) {
    list.Offer(i, static_cast<double>(10 - i));
  }
  ASSERT_EQ(list.size(), 3u);
  const auto& n = list.neighbors();
  EXPECT_DOUBLE_EQ(n[0].distance, 1.0);
  EXPECT_DOUBLE_EQ(n[1].distance, 2.0);
  EXPECT_DOUBLE_EQ(n[2].distance, 3.0);
  EXPECT_EQ(n[0].id, 9u);
}

TEST(KnnResultListTest, RejectsWorseThanKth) {
  KnnResultList list(2);
  list.Offer(0, 1.0);
  list.Offer(1, 2.0);
  list.Offer(2, 3.0);
  EXPECT_DOUBLE_EQ(list.KthDistance(), 2.0);
  EXPECT_EQ(list.neighbors()[1].id, 1u);
}

TEST(KnnResultListTest, TieAtKthKeepsEarlierEntry) {
  KnnResultList list(1);
  list.Offer(7, 2.0);
  list.Offer(8, 2.0);  // Equal distance: not an improvement.
  EXPECT_EQ(list.neighbors()[0].id, 7u);
}

TEST(SequentialScanTest, FindsExactNeighbors) {
  const TrajectoryDataset db = testutil::SmallDataset(61, 40, 5, 40);
  const Trajectory query = db[11];
  const KnnResult result = SequentialScanKnn(db, query, 5, kEps);
  ASSERT_EQ(result.neighbors.size(), 5u);
  EXPECT_EQ(result.neighbors[0].distance, 0.0);  // Self.
  // Verify ordering and values against direct EDR computation.
  for (const Neighbor& n : result.neighbors) {
    EXPECT_DOUBLE_EQ(
        n.distance,
        static_cast<double>(EdrDistance(query, db[n.id], kEps)));
  }
  for (size_t i = 1; i < result.neighbors.size(); ++i) {
    EXPECT_LE(result.neighbors[i - 1].distance,
              result.neighbors[i].distance);
  }
}

TEST(SequentialScanTest, StatsCountEveryTrajectory) {
  const TrajectoryDataset db = testutil::SmallDataset(62, 25);
  const KnnResult result = SequentialScanKnn(db, db[0], 5, kEps);
  EXPECT_EQ(result.stats.db_size, 25u);
  EXPECT_EQ(result.stats.edr_computed, 25u);
  EXPECT_DOUBLE_EQ(result.stats.PruningPower(), 0.0);
}

TEST(SequentialScanTest, EarlyAbandonReturnsSameNeighbors) {
  const TrajectoryDataset db = testutil::SmallDataset(63, 60, 5, 60);
  SeqScanOptions ea;
  ea.early_abandon = true;
  for (const Trajectory& query : testutil::MakeQueries(db, 64, 5)) {
    const KnnResult plain = SequentialScanKnn(db, query, 8, kEps);
    const KnnResult fast = SequentialScanKnn(db, query, 8, kEps, ea);
    EXPECT_TRUE(SameKnnDistances(plain, fast));
  }
}

TEST(SequentialScanTest, KLargerThanDb) {
  const TrajectoryDataset db = testutil::SmallDataset(65, 7);
  const KnnResult result = SequentialScanKnn(db, db[0], 20, kEps);
  EXPECT_EQ(result.neighbors.size(), 7u);
}

TEST(SameKnnDistancesTest, DetectsMismatch) {
  KnnResult a;
  a.neighbors = {{0, 1.0}, {1, 2.0}};
  KnnResult b;
  b.neighbors = {{5, 1.0}, {9, 2.0}};
  EXPECT_TRUE(SameKnnDistances(a, b));  // Ids may differ on ties.
  b.neighbors[1].distance = 3.0;
  EXPECT_FALSE(SameKnnDistances(a, b));
  b.neighbors.pop_back();
  EXPECT_FALSE(SameKnnDistances(a, b));
}

TEST(PruningPowerTest, Formula) {
  SearchStats stats;
  stats.db_size = 100;
  stats.edr_computed = 25;
  EXPECT_DOUBLE_EQ(stats.PruningPower(), 0.75);
  stats.db_size = 0;
  EXPECT_DOUBLE_EQ(stats.PruningPower(), 0.0);
}

}  // namespace
}  // namespace edr
