// Certifies the fused multi-query filter sweeps bit-identical to the
// single-query paths at every level of the stack: the histogram table's
// fused bound sweep (all four adaptive column layouts, both table kinds),
// the Q-gram means table's fused merge-count, every fused-capable
// searcher's KnnFused, and the adaptive scheduler's fusion-group
// formation. Fusing amortizes database streaming across a query group —
// it must never change any member's answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cpu.h"
#include "core/rng.h"
#include "pruning/combined.h"
#include "pruning/histogram.h"
#include "pruning/histogram_knn.h"
#include "pruning/lcss_knn.h"
#include "pruning/qgram.h"
#include "pruning/qgram_knn.h"
#include "query/engine.h"
#include "query/plan_cache.h"
#include "query/scheduler.h"
#include "query/thread_pool.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

const TrajectoryDataset& Db() {
  static const TrajectoryDataset db = testutil::SmallDataset(1201, 160, 8, 48);
  return db;
}

const std::vector<Trajectory>& Queries() {
  static const std::vector<Trajectory> queries =
      testutil::MakeQueries(Db(), 1202, 8);
  return queries;
}

/// A dataset whose adaptive histogram table holds all four column layouts
/// at once (at epsilon 0.05): 220 single-point trajectories in a tight
/// cluster fill a few bins with all-ones counts at high occupancy
/// (bitmap), 150 repeated-point trajectories in a second tight cluster
/// drive counts above one at >25% occupancy (dense), random walks far
/// from both clusters leave low-occupancy postings (blocked-sparse), and
/// the space in between stays untouched (empty).
TrajectoryDataset MixedLayoutDataset() {
  Rng rng(1301);
  TrajectoryDataset db("mixed-layouts");
  for (int i = 0; i < 220; ++i) {
    Trajectory t;
    t.Append({rng.Gaussian(0.0, 0.02), rng.Gaussian(0.0, 0.02)});
    db.Add(t);
  }
  for (int i = 0; i < 150; ++i) {
    Trajectory t;
    for (int j = 0; j < 4; ++j) {
      t.Append({rng.Gaussian(0.9, 0.005), rng.Gaussian(0.9, 0.005)});
    }
    db.Add(t);
  }
  for (int i = 0; i < 40; ++i) {
    Trajectory w = testutil::RandomWalk(rng, 24);
    for (size_t j = 0; j < w.size(); ++j) {
      w[j].x += 10.0;
      w[j].y += 10.0;
    }
    db.Add(w);
  }
  return db;
}

/// Group sizes the certification sweeps: singleton, partial, the kernels'
/// register-blocking width, and one past it (exercises chunking).
std::vector<size_t> GroupSizes() {
  return {1, 2, kMaxFusionGroup, kMaxFusionGroup + 3};
}

void ExpectFusedSweepMatches(const HistogramTable& table,
                             const std::vector<Trajectory>& queries,
                             const KnnOptions* options,
                             const std::string& context) {
  std::vector<HistogramTable::QueryHistogram> qhs;
  qhs.reserve(queries.size());
  for (const Trajectory& q : queries) qhs.push_back(table.MakeQueryHistogram(q));

  std::vector<std::vector<int>> expected(qhs.size());
  for (size_t i = 0; i < qhs.size(); ++i) {
    table.FastLowerBoundSweep(qhs[i], &expected[i]);
  }

  for (const size_t g : GroupSizes()) {
    std::vector<const HistogramTable::QueryHistogram*> group(g);
    std::vector<std::vector<int>> fused(g);
    std::vector<std::vector<int>*> outs(g);
    for (size_t i = 0; i < g; ++i) {
      group[i] = &qhs[i % qhs.size()];
      outs[i] = &fused[i];
    }
    if (options != nullptr) {
      table.FastLowerBoundSweepFusedParallel(group, outs, *options);
    } else {
      table.FastLowerBoundSweepFused(group, outs);
    }
    for (size_t i = 0; i < g; ++i) {
      EXPECT_EQ(fused[i], expected[i % qhs.size()])
          << context << " group=" << g << " member=" << i;
    }
  }
}

// The core tentpole guarantee at the table level: fused bounds are bit
// for bit the single-sweep bounds for every group size, both table kinds,
// both layout policies, sequential and sharded over 4 workers.
TEST(FusedSweepTest, TableBoundsBitIdenticalAllKindsAndLayouts) {
  static ThreadPool pool(4);
  KnnOptions parallel;
  parallel.intra_query_workers = 4;
  parallel.pool = &pool;
  const auto queries = testutil::MakeQueries(Db(), 1203, 8);
  for (const HistogramTable::Kind kind :
       {HistogramTable::Kind::k2D, HistogramTable::Kind::k1D}) {
    for (const HistogramLayout layout :
         {HistogramLayout::kAdaptive, HistogramLayout::kDense}) {
      const HistogramTable table(Db(), kEps, kind, 1, layout);
      const std::string context =
          std::string(kind == HistogramTable::Kind::k2D ? "2d/" : "1d/") +
          HistogramLayoutName(layout);
      ExpectFusedSweepMatches(table, queries, nullptr, context + "/seq");
      ExpectFusedSweepMatches(table, queries, &parallel, context + "/par4");
    }
  }
}

// Same guarantee on a table that provably holds all four adaptive column
// layouts at once, so the fused block kernels cross every dispatch path
// (dense min-cap, bitmap accumulate, blocked-sparse scatter, empty skip)
// within a single sweep.
TEST(FusedSweepTest, AllFourColumnLayoutsInOneFusedSweep) {
  const TrajectoryDataset db = MixedLayoutDataset();
  const HistogramTable table(db, 0.05, HistogramTable::Kind::k2D, 1,
                             HistogramLayout::kAdaptive);
  const HistogramStorageStats stats = table.storage_stats();
  ASSERT_GT(stats.dense_columns, 0u) << "dataset no longer drives dense";
  ASSERT_GT(stats.bitmap_columns, 0u) << "dataset no longer drives bitmap";
  ASSERT_GT(stats.sparse_columns, 0u) << "dataset no longer drives sparse";
  ASSERT_GT(stats.empty_columns, 0u) << "dataset no longer drives empty";

  // Queries drawn from every region (bitmap cluster, dense cluster,
  // walks), so the fused plan's distinct bins span all layouts.
  std::vector<Trajectory> queries;
  for (const size_t i : {0, 60, 120, 230, 280, 340, 375, 400}) {
    queries.push_back(db[i]);
  }
  ExpectFusedSweepMatches(table, queries, nullptr, "mixed");
}

// Fused merge-counts off the flat Q-gram posting arrays match the
// per-query counts for every trajectory and group size, 2-D and 1-D.
TEST(FusedSweepTest, QgramFusedCountsBitIdentical) {
  const auto queries = testutil::MakeQueries(Db(), 1204, 8);

  const QgramMeansTable table2d(Db(), /*q=*/1, /*dims=*/2);
  std::vector<std::vector<Point2>> means2d;
  for (const Trajectory& q : queries) {
    std::vector<Point2> m = MeanValueQgrams(q, 1);
    SortMeans(m);
    means2d.push_back(std::move(m));
  }
  for (const size_t g : GroupSizes()) {
    std::vector<const std::vector<Point2>*> group(g);
    for (size_t i = 0; i < g; ++i) group[i] = &means2d[i % means2d.size()];
    std::vector<size_t> counts(g);
    for (uint32_t id = 0; id < table2d.size(); ++id) {
      table2d.CountMatchesFused2D(group, kEps, id, counts.data());
      for (size_t i = 0; i < g; ++i) {
        ASSERT_EQ(counts[i], table2d.CountMatches2D(*group[i], kEps, id))
            << "2d id=" << id << " group=" << g << " member=" << i;
      }
    }
  }

  const QgramMeansTable table1d(Db(), /*q=*/1, /*dims=*/1);
  std::vector<std::vector<double>> means1d;
  for (const Trajectory& q : queries) {
    std::vector<double> m = MeanValueQgrams1D(q, 1, /*use_x=*/true);
    std::sort(m.begin(), m.end());
    means1d.push_back(std::move(m));
  }
  for (const size_t g : GroupSizes()) {
    std::vector<const std::vector<double>*> group(g);
    for (size_t i = 0; i < g; ++i) group[i] = &means1d[i % means1d.size()];
    std::vector<size_t> counts(g);
    for (uint32_t id = 0; id < table1d.size(); ++id) {
      table1d.CountMatchesFused1D(group, kEps, id, counts.data());
      for (size_t i = 0; i < g; ++i) {
        ASSERT_EQ(counts[i], table1d.CountMatches1D(*group[i], kEps, id))
            << "1d id=" << id << " group=" << g << " member=" << i;
      }
    }
  }
}

void ExpectSameNeighbors(const KnnResult& expected, const KnnResult& actual,
                         const std::string& context) {
  ASSERT_EQ(expected.neighbors.size(), actual.neighbors.size()) << context;
  for (size_t j = 0; j < expected.neighbors.size(); ++j) {
    EXPECT_EQ(expected.neighbors[j].id, actual.neighbors[j].id)
        << context << " rank " << j;
    EXPECT_EQ(expected.neighbors[j].distance, actual.neighbors[j].distance)
        << context << " rank " << j;
  }
}

template <typename Searcher>
void ExpectKnnFusedMatches(const Searcher& searcher, const std::string& name,
                           size_t k, const KnnOptions& options) {
  const std::vector<Trajectory>& queries = Queries();
  for (const size_t g : GroupSizes()) {
    std::vector<const Trajectory*> group(g);
    for (size_t i = 0; i < g; ++i) group[i] = &queries[i % queries.size()];
    const std::vector<KnnResult> fused = searcher.KnnFused(group, k, options);
    ASSERT_EQ(fused.size(), g) << name;
    for (size_t i = 0; i < g; ++i) {
      const KnnResult expected = searcher.Knn(*group[i], k, options);
      const std::string context = name + "/group=" + std::to_string(g) +
                                  "/member=" + std::to_string(i);
      ExpectSameNeighbors(expected, fused[i], context);
      // At one worker the refinement is fully sequential, so the identical
      // helper over identical bounds must even compute the same EDR count.
      // (With more workers the count is schedule-dependent — the shared
      // k-th-distance threshold races benignly — so only the neighbor set
      // is comparable there.)
      if (options.intra_query_workers == 1) {
        EXPECT_EQ(expected.stats.edr_computed, fused[i].stats.edr_computed)
            << context;
      }
    }
  }
}

// Every fused-capable searcher returns bit-identical kNN answers through
// KnnFused for every group size, at 1 and 4 intra-query workers.
TEST(FusedSweepTest, SearchersBitIdenticalAtOneAndFourWorkers) {
  static ThreadPool pool(4);
  const HistogramKnnSearcher hse(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSequential);
  const HistogramKnnSearcher hsr(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSorted);
  const QgramKnnSearcher ps2(Db(), kEps, 1, QgramVariant::kMerge2D);
  const QgramKnnSearcher ps1(Db(), kEps, 1, QgramVariant::kMerge1D);
  CombinedOptions copt;
  copt.max_triangle = 30;
  const CombinedKnnSearcher combined(Db(), kEps, copt);
  const LcssKnnSearcher lcss(Db(), kEps, LcssFilter::kBoth);

  for (const unsigned workers : {1u, 4u}) {
    KnnOptions options;
    options.intra_query_workers = workers;
    options.pool = &pool;
    const std::string suffix = "/workers=" + std::to_string(workers);
    ExpectKnnFusedMatches(hse, "HSE" + suffix, 6, options);
    ExpectKnnFusedMatches(hsr, "HSR" + suffix, 6, options);
    ExpectKnnFusedMatches(ps2, "PS2" + suffix, 6, options);
    ExpectKnnFusedMatches(ps1, "PS1" + suffix, 6, options);
    ExpectKnnFusedMatches(combined, "2HPN" + suffix, 6, options);
    ExpectKnnFusedMatches(lcss, "LCSS" + suffix, 6, options);
  }
}

// Degenerate groups: empty, k = 0, and the tree-probe fallback.
TEST(FusedSweepTest, DegenerateGroups) {
  const HistogramKnnSearcher hsr(Db(), kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSorted);
  EXPECT_TRUE(hsr.KnnFused({}, 5).empty());
  const std::vector<const Trajectory*> group = {&Queries()[0], &Queries()[1]};
  const std::vector<KnnResult> zero_k = hsr.KnnFused(group, 0);
  ASSERT_EQ(zero_k.size(), 2u);
  for (const KnnResult& r : zero_k) {
    EXPECT_TRUE(r.neighbors.empty());
    EXPECT_EQ(r.stats.db_size, Db().size());
  }

  // PR's fused counting pass keeps probe state per member; a two-member
  // group must answer every member exactly.
  const QgramKnnSearcher pr(Db(), kEps, 1, QgramVariant::kRtree2D);
  const std::vector<KnnResult> fused = pr.KnnFused(group, 4);
  ASSERT_EQ(fused.size(), 2u);
  for (size_t i = 0; i < group.size(); ++i) {
    ExpectSameNeighbors(pr.Knn(*group[i], 4), fused[i], "PR fused pair");
  }
}

// The tree-probing Q-gram variants (PR/PB) fuse via per-member probe
// state over the shared read-only index; the coordinate-sorted probe
// schedule must stay bit-identical to member-wise calls for every group
// size and worker count.
TEST(FusedSweepTest, TreeSearchersBitIdenticalThroughKnnFused) {
  static ThreadPool pool(4);
  const QgramKnnSearcher pr(Db(), kEps, 1, QgramVariant::kRtree2D);
  const QgramKnnSearcher pb(Db(), kEps, 1, QgramVariant::kBtree1D);
  for (const unsigned workers : {1u, 4u}) {
    KnnOptions options;
    options.intra_query_workers = workers;
    options.pool = &pool;
    const std::string suffix = "/workers=" + std::to_string(workers);
    ExpectKnnFusedMatches(pr, "PR" + suffix, 6, options);
    ExpectKnnFusedMatches(pb, "PB" + suffix, 6, options);
  }
}

// The scheduler forms fusion groups for fusable handles by default, the
// results stay bit-identical to the sequential path, and the stats /
// handle metadata describe the fused schedule.
TEST(FusedSweepTest, SchedulerFormsFusionGroups) {
  static ThreadPool pool(8);
  QueryEngine engine(Db(), kEps);
  KnnOptions bound;
  bound.pool = &pool;
  NamedSearcher searcher = engine.MakeHistogram(
      HistogramTable::Kind::k2D, 1, HistogramScan::kSorted, bound);
  ASSERT_FALSE(searcher.fusion_key.empty());
  ASSERT_TRUE(static_cast<bool>(searcher.search_fused));

  std::vector<KnnResult> expected;
  for (const Trajectory& q : Queries()) expected.push_back(searcher.search(q, 5));

  SchedulerPolicy policy;
  SchedulerStats stats;
  const std::vector<KnnResult> fused =
      RunScheduled(searcher, Queries(), 5, policy, &pool, nullptr, &stats);
  ASSERT_EQ(fused.size(), Queries().size());
  EXPECT_EQ(stats.queries, Queries().size());
  EXPECT_GT(stats.fused_groups, 0u);
  // 8 queries, group width 8: one fused dispatch covers the whole batch.
  EXPECT_EQ(stats.fused_queries, Queries().size());
  for (size_t i = 0; i < Queries().size(); ++i) {
    ExpectSameNeighbors(expected[i], fused[i],
                        "scheduled query " + std::to_string(i));
  }

  // max_fusion = 1 switches fusion off; the batch rides waves again.
  SchedulerPolicy unfused_policy;
  unfused_policy.max_fusion = 1;
  SchedulerStats unfused_stats;
  const std::vector<KnnResult> unfused = RunScheduled(
      searcher, Queries(), 5, unfused_policy, &pool, nullptr, &unfused_stats);
  EXPECT_EQ(unfused_stats.fused_groups, 0u);
  EXPECT_GT(unfused_stats.waves, 0u);
  for (size_t i = 0; i < Queries().size(); ++i) {
    ExpectSameNeighbors(expected[i], unfused[i],
                        "unfused query " + std::to_string(i));
  }

  // Tree-probe handles advertise a fusion key and fuse like everyone
  // else, bit-identically to the per-query path.
  NamedSearcher pr = engine.MakeQgram(QgramVariant::kRtree2D, 1, bound);
  EXPECT_FALSE(pr.fusion_key.empty());
  EXPECT_TRUE(static_cast<bool>(pr.search_fused));
  std::vector<KnnResult> pr_expected;
  for (const Trajectory& q : Queries()) pr_expected.push_back(pr.search(q, 5));
  SchedulerStats pr_stats;
  const std::vector<KnnResult> pr_fused = RunScheduled(
      pr, Queries(), 5, SchedulerPolicy{}, &pool, nullptr, &pr_stats);
  EXPECT_GT(pr_stats.fused_groups, 0u);
  for (size_t i = 0; i < Queries().size(); ++i) {
    ExpectSameNeighbors(pr_expected[i], pr_fused[i],
                        "scheduled PR query " + std::to_string(i));
  }
}

/// Clustered workload for the grouping tests: `clusters` near-duplicate
/// families of `per_cluster` jittered copies each, interleaved round-robin
/// so FIFO groups mix clusters while the similarity grouper can reunite
/// them.
std::vector<Trajectory> ClusteredQueries(size_t clusters,
                                         size_t per_cluster) {
  const std::vector<Trajectory> bases =
      testutil::MakeQueries(Db(), 1205, clusters);
  std::vector<Trajectory> out;
  out.reserve(clusters * per_cluster);
  for (size_t j = 0; j < per_cluster; ++j) {
    for (size_t c = 0; c < clusters; ++c) {
      Trajectory t = bases[c];
      for (size_t p = 0; p < t.size(); ++p) {
        t[p].x += 1e-4 * static_cast<double>((c * 31 + j * 7 + p) % 5);
        t[p].y += 1e-4 * static_cast<double>((c * 17 + j * 13 + p) % 7);
      }
      out.push_back(std::move(t));
    }
  }
  return out;
}

// The tentpole certification: similarity-grouped, FIFO-grouped, and
// unfused schedules return bit-identical answers for every fused-capable
// searcher (all six plus both tree variants) — grouping only changes
// WHICH queries share a sweep, never any member's answer.
TEST(FusedSweepTest, GroupingBitIdenticalAcrossAllSearchers) {
  static ThreadPool pool(8);
  QueryEngine engine(Db(), kEps);
  KnnOptions bound;
  bound.pool = &pool;
  CombinedOptions copt;
  copt.max_triangle = 30;
  const std::vector<NamedSearcher> searchers = {
      engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                           HistogramScan::kSequential, bound),
      engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                           HistogramScan::kSorted, bound),
      engine.MakeQgram(QgramVariant::kMerge2D, 1, bound),
      engine.MakeQgram(QgramVariant::kMerge1D, 1, bound),
      engine.MakeQgram(QgramVariant::kRtree2D, 1, bound),
      engine.MakeQgram(QgramVariant::kBtree1D, 1, bound),
      engine.MakeCombined(copt, bound),
      engine.MakeLcss(LcssFilter::kBoth, bound),
  };
  const std::vector<Trajectory> queries = ClusteredQueries(4, 6);

  for (const NamedSearcher& searcher : searchers) {
    ASSERT_FALSE(searcher.fusion_key.empty()) << searcher.name;
    ASSERT_TRUE(static_cast<bool>(searcher.fingerprint)) << searcher.name;
    std::vector<KnnResult> expected;
    for (const Trajectory& q : queries) expected.push_back(searcher.search(q, 5));

    SchedulerPolicy similarity;  // default: similarity grouping on
    SchedulerPolicy fifo;
    fifo.similarity_grouping = false;
    SchedulerPolicy unfused;
    unfused.max_fusion = 1;

    SchedulerStats sim_stats, fifo_stats;
    const std::vector<KnnResult> sim = RunScheduled(
        searcher, queries, 5, similarity, &pool, nullptr, &sim_stats);
    const std::vector<KnnResult> fif = RunScheduled(
        searcher, queries, 5, fifo, &pool, nullptr, &fifo_stats);
    const std::vector<KnnResult> unf =
        RunScheduled(searcher, queries, 5, unfused, &pool, nullptr, nullptr);
    EXPECT_GT(sim_stats.group_similarity, 0u) << searcher.name;
    EXPECT_EQ(fifo_stats.group_similarity, 0u) << searcher.name;
    EXPECT_GT(fifo_stats.group_fifo, 0u) << searcher.name;
    // On the clustered workload, reuniting the interleaved families must
    // raise the estimated shared-bin fraction over arrival order.
    EXPECT_GT(sim_stats.shared_fraction_sum, fifo_stats.shared_fraction_sum)
        << searcher.name;
    for (size_t i = 0; i < queries.size(); ++i) {
      const std::string at = searcher.name + " query " + std::to_string(i);
      ExpectSameNeighbors(expected[i], sim[i], "similarity " + at);
      ExpectSameNeighbors(expected[i], fif[i], "fifo " + at);
      ExpectSameNeighbors(expected[i], unf[i], "unfused " + at);
    }
  }
}

// The age watermark force-schedules a starved head: a front query whose
// signature matches nothing still runs after at most `watermark` groups
// pass it over, and the forced schedule stays bit-identical.
TEST(FusedSweepTest, StarvationWatermarkSchedulesMismatchedHead) {
  static ThreadPool pool(8);
  QueryEngine engine(Db(), kEps);
  KnnOptions bound;
  bound.pool = &pool;
  NamedSearcher searcher = engine.MakeHistogram(
      HistogramTable::Kind::k2D, 1, HistogramScan::kSorted, bound);

  // Head outlier far from every cluster, then three interleaved
  // near-duplicate families — the grouper always prefers the families.
  std::vector<Trajectory> queries;
  {
    Trajectory outlier;
    for (int p = 0; p < 8; ++p) {
      outlier.Append({50.0 + 0.1 * p, 50.0 - 0.1 * p});
    }
    queries.push_back(std::move(outlier));
    for (const Trajectory& q : ClusteredQueries(3, 5)) queries.push_back(q);
  }

  std::vector<KnnResult> expected;
  for (const Trajectory& q : queries) expected.push_back(searcher.search(q, 5));

  SchedulerPolicy policy;
  policy.max_fusion = 4;
  policy.group_age_watermark = 1;
  SchedulerStats stats;
  const std::vector<KnnResult> got =
      RunScheduled(searcher, queries, 5, policy, &pool, nullptr, &stats);
  EXPECT_GT(stats.group_forced, 0u);
  EXPECT_EQ(stats.queries, queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameNeighbors(expected[i], got[i],
                        "watermark query " + std::to_string(i));
  }
}

// A shared FusedPlanCache turns repeat group compositions into plan hits,
// and cached plans answer bit-identically to freshly built ones.
TEST(FusedSweepTest, PlanCacheWarmHitsStayBitIdentical) {
  static ThreadPool pool(8);
  QueryEngine engine(Db(), kEps);
  KnnOptions bound;
  bound.pool = &pool;
  NamedSearcher searcher = engine.MakeHistogram(
      HistogramTable::Kind::k2D, 1, HistogramScan::kSorted, bound);
  const std::vector<Trajectory> queries = ClusteredQueries(2, 8);

  std::vector<KnnResult> expected;
  for (const Trajectory& q : queries) expected.push_back(searcher.search(q, 5));

  FusedPlanCache plan_cache(32);
  SchedulerPolicy policy;
  const std::vector<KnnResult> cold = RunScheduled(
      searcher, queries, 5, policy, &pool, nullptr, nullptr, &plan_cache);
  const FusedPlanCache::Stats after_cold = plan_cache.stats();
  EXPECT_GT(after_cold.misses, 0u);
  const std::vector<KnnResult> warm = RunScheduled(
      searcher, queries, 5, policy, &pool, nullptr, nullptr, &plan_cache);
  const FusedPlanCache::Stats after_warm = plan_cache.stats();
  EXPECT_GT(after_warm.hits, after_cold.hits);
  for (size_t i = 0; i < queries.size(); ++i) {
    const std::string at = " query " + std::to_string(i);
    ExpectSameNeighbors(expected[i], cold[i], "cold" + at);
    ExpectSameNeighbors(expected[i], warm[i], "warm" + at);
  }
}

// The streaming QuerySession drives the same fused path from its backlog.
TEST(FusedSweepTest, QuerySessionFusesBacklog) {
  static ThreadPool pool(8);
  QueryEngine engine(Db(), kEps);
  KnnOptions bound;
  bound.pool = &pool;
  NamedSearcher searcher = engine.MakeLcss(LcssFilter::kBoth, bound);
  ASSERT_FALSE(searcher.fusion_key.empty());

  std::vector<KnnResult> expected;
  for (const Trajectory& q : Queries()) expected.push_back(searcher.search(q, 4));

  QuerySession::Options options;
  options.k = 4;
  options.pool = &pool;
  QuerySession session(searcher, options);
  std::vector<QuerySession::Ticket> tickets;
  for (const Trajectory& q : Queries()) tickets.push_back(session.Submit(q));
  session.Drain();
  EXPECT_GT(session.stats().fused_queries, 0u);
  EXPECT_EQ(session.stats().queries, Queries().size());
  for (size_t i = 0; i < tickets.size(); ++i) {
    ExpectSameNeighbors(expected[i], session.Result(tickets[i]),
                        "session query " + std::to_string(i));
  }
}

}  // namespace
}  // namespace edr
