#include <gtest/gtest.h>

#include <vector>

#include "query/engine.h"
#include "test_util.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;

/// Neighbor-for-neighbor equality: same ids, bit-identical distances, same
/// order. (Timing stats are expected to differ between runs.)
void ExpectSameNeighbors(const KnnResult& expected, const KnnResult& actual,
                         size_t query_index) {
  ASSERT_EQ(expected.neighbors.size(), actual.neighbors.size())
      << "query " << query_index;
  for (size_t j = 0; j < expected.neighbors.size(); ++j) {
    EXPECT_EQ(expected.neighbors[j].id, actual.neighbors[j].id)
        << "query " << query_index << " rank " << j;
    EXPECT_EQ(expected.neighbors[j].distance, actual.neighbors[j].distance)
        << "query " << query_index << " rank " << j;
  }
}

TEST(KnnBatchTest, MatchesSequentialForEveryThreadCount) {
  const TrajectoryDataset db = testutil::SmallDataset(811, 80, 10, 60);
  QueryEngine engine(db, kEps);
  const NamedSearcher searcher = engine.MakeSeqScan();
  const std::vector<Trajectory> queries = testutil::MakeQueries(db, 812, 10);

  std::vector<KnnResult> sequential;
  sequential.reserve(queries.size());
  for (const Trajectory& q : queries) {
    sequential.push_back(searcher.search(q, 7));
  }

  for (const unsigned threads : {1u, 4u, 16u}) {
    const std::vector<KnnResult> batch =
        engine.KnnBatch(searcher, queries, 7, threads);
    ASSERT_EQ(batch.size(), queries.size()) << "threads=" << threads;
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectSameNeighbors(sequential[i], batch[i], i);
    }
  }
}

TEST(KnnBatchTest, RepeatedRunsAreDeterministic) {
  const TrajectoryDataset db = testutil::SmallDataset(813, 60, 10, 50);
  QueryEngine engine(db, kEps);
  CombinedOptions combo;
  combo.max_triangle = 20;
  const NamedSearcher searcher = engine.MakeCombined(combo);
  const std::vector<Trajectory> queries = testutil::MakeQueries(db, 814, 8);

  const std::vector<KnnResult> first =
      engine.KnnBatch(searcher, queries, 5, 4);
  for (int run = 0; run < 5; ++run) {
    const std::vector<KnnResult> again =
        engine.KnnBatch(searcher, queries, 5, 4);
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
      ExpectSameNeighbors(first[i], again[i], i);
    }
  }
}

TEST(KnnBatchTest, PrunedSearcherMatchesSeqScanAnswers) {
  const TrajectoryDataset db = testutil::SmallDataset(815, 70, 10, 50);
  QueryEngine engine(db, kEps);
  const NamedSearcher searcher =
      engine.MakeHistogram(HistogramTable::Kind::k1D, 1,
                           HistogramScan::kSorted);
  const std::vector<Trajectory> queries = testutil::MakeQueries(db, 816, 9);
  const std::vector<KnnResult> batch =
      engine.KnnBatch(searcher, queries, 6, 16);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameKnnDistances(engine.SeqScan(queries[i], 6), batch[i]))
        << i;
  }
}

TEST(KnnBatchTest, EmptyAndSingleQueryBatches) {
  const TrajectoryDataset db = testutil::SmallDataset(817, 12);
  QueryEngine engine(db, kEps);
  const NamedSearcher searcher = engine.MakeSeqScan();
  EXPECT_TRUE(engine.KnnBatch(searcher, {}, 3).empty());

  // Single-query batches take the caller-thread shortcut; the answer must
  // still match a direct call.
  const std::vector<Trajectory> one = {db[3]};
  const std::vector<KnnResult> batch = engine.KnnBatch(searcher, one, 3);
  ASSERT_EQ(batch.size(), 1u);
  ExpectSameNeighbors(searcher.search(one[0], 3), batch[0], 0);
}

}  // namespace
}  // namespace edr
