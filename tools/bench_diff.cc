// Bench baseline diff: compares a freshly produced bench JSON (usually a
// `--smoke` run in CI) against a committed BENCH_*.json baseline.
//
//   ./tools/bench_diff BENCH_obs.json fresh_obs.json [--max-drift 50]
//
// Schema drift is a hard failure (exit 1): every key path present in the
// baseline must exist in the fresh output with the same JSON type, so a
// renamed or dropped field is caught the moment a bench changes shape.
// Value drift is warn-only (exit 0): smoke runs use reduced scales and
// shared CI hosts time noisily, so numeric deltas — including throughput
// — are reported to stderr (beyond --max-drift percent for numbers,
// every boolean flip) but never fail the build. New keys that exist only
// in the fresh output are reported as informational additions.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

/// One flattened JSON leaf: path is dotted with [i] array indices
/// ("recorder_overhead[0].off_ms_total"); objects and arrays themselves
/// flatten to a structural entry so empty containers still count.
struct Leaf {
  std::string type;  ///< "number", "string", "bool", "null", "object", "array"
  double number = 0.0;
  std::string text;  ///< the raw token, for messages
};

using FlatDoc = std::map<std::string, Leaf>;

class Flattener {
 public:
  explicit Flattener(const std::string& text) : text_(text) {}

  bool Run(FlatDoc* out) {
    out_ = out;
    pos_ = 0;
    const bool ok = Value("");
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        out->push_back(text_[pos_ + 1]);
        pos_ += 2;
      } else {
        out->push_back(text_[pos_]);
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }

  bool Value(const std::string& path) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return Object(path);
    if (c == '[') return Array(path);
    if (c == '"') {
      Leaf leaf;
      leaf.type = "string";
      if (!ParseString(&leaf.text)) return false;
      (*out_)[path] = std::move(leaf);
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "true", 4) == 0) {
      (*out_)[path] = Leaf{"bool", 1.0, "true"};
      pos_ += 4;
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "false", 5) == 0) {
      (*out_)[path] = Leaf{"bool", 0.0, "false"};
      pos_ += 5;
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "null", 4) == 0) {
      (*out_)[path] = Leaf{"null", 0.0, "null"};
      pos_ += 4;
      return true;
    }
    // Number.
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return false;
    Leaf leaf;
    leaf.type = "number";
    leaf.text = text_.substr(start, pos_ - start);
    leaf.number = std::strtod(leaf.text.c_str(), nullptr);
    (*out_)[path] = std::move(leaf);
    return true;
  }

  bool Object(const std::string& path) {
    (*out_)[path.empty() ? "." : path] = Leaf{"object", 0.0, "{}"};
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (pos_ < text_.size()) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value(path.empty() ? key : path + "." + key)) return false;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
    return false;
  }

  bool Array(const std::string& path) {
    (*out_)[path.empty() ? "." : path] = Leaf{"array", 0.0, "[]"};
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    size_t index = 0;
    while (pos_ < text_.size()) {
      char suffix[32];
      std::snprintf(suffix, sizeof(suffix), "[%zu]", index);
      if (!Value(path + suffix)) return false;
      ++index;
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
  FlatDoc* out_ = nullptr;
};

bool LoadFlat(const char* path, FlatDoc* out, std::string* raw) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *raw = buffer.str();
  if (!edr::JsonIsValid(*raw)) {
    std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", path);
    return false;
  }
  Flattener flattener(*raw);
  if (!flattener.Run(out)) {
    std::fprintf(stderr, "bench_diff: failed to flatten %s\n", path);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* fresh_path = nullptr;
  double max_drift_percent = 50.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-drift") == 0 && i + 1 < argc) {
      max_drift_percent = std::atof(argv[++i]);
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (fresh_path == nullptr) {
      fresh_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_diff <baseline.json> <fresh.json> "
                   "[--max-drift PCT]\n");
      return 2;
    }
  }
  if (baseline_path == nullptr || fresh_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <fresh.json> "
                 "[--max-drift PCT]\n");
    return 2;
  }

  FlatDoc baseline;
  FlatDoc fresh;
  std::string baseline_raw;
  std::string fresh_raw;
  if (!LoadFlat(baseline_path, &baseline, &baseline_raw)) return 1;
  if (!LoadFlat(fresh_path, &fresh, &fresh_raw)) return 1;

  size_t missing = 0;
  size_t type_changed = 0;
  size_t warnings = 0;
  for (const auto& [path, base] : baseline) {
    const auto it = fresh.find(path);
    if (it == fresh.end()) {
      std::fprintf(stderr, "SCHEMA DRIFT: \"%s\" (%s) missing from %s\n",
                   path.c_str(), base.type.c_str(), fresh_path);
      ++missing;
      continue;
    }
    const Leaf& now = it->second;
    if (now.type != base.type) {
      std::fprintf(stderr, "SCHEMA DRIFT: \"%s\" was %s, now %s\n",
                   path.c_str(), base.type.c_str(), now.type.c_str());
      ++type_changed;
      continue;
    }
    if (base.type == "number") {
      const double drift =
          base.number != 0.0
              ? std::fabs(now.number - base.number) / std::fabs(base.number) *
                    100.0
              : (now.number != 0.0 ? 100.0 : 0.0);
      if (drift > max_drift_percent) {
        std::fprintf(stderr, "warn: \"%s\" drifted %.1f%% (%s -> %s)\n",
                     path.c_str(), drift, base.text.c_str(),
                     now.text.c_str());
        ++warnings;
      }
    } else if (base.type == "bool" && base.text != now.text) {
      std::fprintf(stderr, "warn: \"%s\" flipped %s -> %s\n", path.c_str(),
                   base.text.c_str(), now.text.c_str());
      ++warnings;
    }
  }
  size_t added = 0;
  for (const auto& [path, leaf] : fresh) {
    if (baseline.find(path) == baseline.end()) {
      std::fprintf(stderr, "note: new key \"%s\" (%s) not in baseline\n",
                   path.c_str(), leaf.type.c_str());
      ++added;
    }
  }

  std::printf(
      "bench_diff: %zu baseline keys, %zu missing, %zu type-changed, "
      "%zu value warnings, %zu additions -> %s\n",
      baseline.size(), missing, type_changed, warnings, added,
      missing + type_changed == 0 ? "OK" : "SCHEMA DRIFT");
  return missing + type_changed == 0 ? 0 : 1;
}
