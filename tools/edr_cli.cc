// edr_cli — command-line front end for the library.
//
//   edr_cli generate <family> <out-file> [count] [seed]
//   edr_cli info <file>
//   edr_cli convert <in-file> <out-file>
//   edr_cli simplify <in-file> <out-file> <tolerance>
//   edr_cli probe-epsilon <file>
//   edr_cli knn <file> <query-index> <k> [method] [epsilon]
//   edr_cli range <file> <query-index> <radius> [epsilon]
//   edr_cli batch <file> <num-queries> <k> [method] [repeats] [epsilon]
//   edr_cli serve-metrics [--port=N] [--duration=SEC] [--warm=N] [--count=N]
//   edr_cli check-openmetrics <file>
//
// Files ending in .csv use the text format; anything else the binary
// format. Methods: scan, ea, ps2, ps1, pr, pb, ntr, hsr2, hsr1, 2hpn,
// 1hpn (default 2hpn). Datasets are normalized before querying; pass an
// explicit epsilon to override the quarter-of-max-std-dev default.
//
// `batch` streams the first <num-queries> trajectories through a
// QuerySession (the adaptive scheduler) with a shared feature cache,
// <repeats> passes over the same queries (default 2, so the second pass
// exercises warm cache hits), and prints per-pass latency plus the
// scheduler and cache statistics.
//
// Observability flags (any command, position-independent):
//   --trace-json=FILE       write the per-query phase trace of a `knn` query
//   --metrics-json=FILE     write the process-wide metrics registry snapshot
//   --metrics-reset         make --metrics-json a delta scrape: export, then
//                           atomically zero the registry (reset-on-scrape)
//   --metrics-interval=SEC  while a `batch` session drains, dump a
//                           SnapshotAndReset delta every SEC seconds (one
//                           JSON line each) to stderr, or to
//                           --metrics-interval-log=FILE when given (appended)
//   --trace-agg-json=FILE   after a `batch`, merge every query's phase trace
//                           into one aggregate profile and write it as JSON
//   --metrics-table         print the aligned metrics table (counters +
//                           latency percentiles) after the command
//   --flight-json=FILE      dump the slow-query flight recorder (top slowest
//                           + reservoir sample + recent ring) as JSON
//   --timeline-json=FILE    while a `batch` runs, sample pool occupancy /
//                           backlog / cache occupancy on a background
//                           timeline and write it as JSON
//   --listen[=PORT]         while a `batch` runs, serve /metrics (OpenMetrics
//                           text), /healthz, /flight, and /timeline over
//                           HTTP on 127.0.0.1 (default: an ephemeral port,
//                           printed on startup)
//   --listen-hold=SEC       keep the --listen endpoint up SEC seconds after
//                           the batch drains (default 0)
// The files hold "{}"-style JSON; in an EDR_DISABLE_OBS build the trace
// files are not written (a note goes to stderr), the metrics snapshots are
// empty, and --listen refuses to start.
//
// `serve-metrics` is the self-contained scrape target the CI uses: it
// generates an in-memory dataset, runs a warm batch so every metric and the
// flight recorder are populated, then serves the observability routes for
// --duration seconds (default 5). `check-openmetrics` validates a scraped
// exposition file (syntax, histogram bucket monotonicity, +Inf == _count)
// and exits non-zero on violations.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "data/io.h"
#include "data/simplify.h"
#include "eval/epsilon.h"
#include "obs/flight_recorder.h"
#include "obs/http_endpoint.h"
#include "obs/openmetrics.h"
#include "obs/periodic_dumper.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "obs/trace_agg.h"
#include "query/engine.h"
#include "query/feature_cache.h"
#include "query/scheduler.h"

namespace {

std::string g_trace_json_path;
std::string g_metrics_json_path;
bool g_metrics_reset = false;
bool g_metrics_interval_given = false;
double g_metrics_interval_seconds = 0.0;
std::string g_metrics_interval_log_path;
std::string g_trace_agg_json_path;
bool g_metrics_table = false;
std::string g_flight_json_path;
std::string g_timeline_json_path;
bool g_listen = false;
int g_listen_port = 0;
double g_listen_hold_seconds = 0.0;

/// Removes the --trace-json=/--metrics-*/--trace-agg-json= flags from argv
/// (recording their values) so the positional command parsing below stays
/// untouched. Returns the new argc.
int StripObsFlags(int argc, char** argv) {
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-json=", 13) == 0) {
      g_trace_json_path = arg + 13;
    } else if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      g_metrics_json_path = arg + 15;
    } else if (std::strcmp(arg, "--metrics-reset") == 0) {
      g_metrics_reset = true;
    } else if (std::strncmp(arg, "--metrics-interval=", 19) == 0) {
      g_metrics_interval_given = true;
      g_metrics_interval_seconds = std::atof(arg + 19);
    } else if (std::strncmp(arg, "--metrics-interval-log=", 23) == 0) {
      g_metrics_interval_log_path = arg + 23;
    } else if (std::strncmp(arg, "--trace-agg-json=", 17) == 0) {
      g_trace_agg_json_path = arg + 17;
    } else if (std::strcmp(arg, "--metrics-table") == 0) {
      g_metrics_table = true;
    } else if (std::strncmp(arg, "--flight-json=", 14) == 0) {
      g_flight_json_path = arg + 14;
    } else if (std::strncmp(arg, "--timeline-json=", 16) == 0) {
      g_timeline_json_path = arg + 16;
    } else if (std::strcmp(arg, "--listen") == 0) {
      g_listen = true;
    } else if (std::strncmp(arg, "--listen=", 9) == 0) {
      g_listen = true;
      g_listen_port = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--listen-hold=", 14) == 0) {
      g_listen_hold_seconds = std::atof(arg + 14);
    } else {
      argv[out++] = argv[i];
    }
  }
  return out;
}

/// Builds the --metrics-interval dumper (obs/periodic_dumper.h) with the
/// CLI's sink: one JSON line per delta to stderr, or appended to
/// --metrics-interval-log when given.
edr::PeriodicMetricsDumper::Options IntervalDumperOptions() {
  edr::PeriodicMetricsDumper::Options options;
  options.interval_seconds = g_metrics_interval_seconds;
  options.sink = [](const std::string& line) {
    std::FILE* out = stderr;
    std::FILE* log = nullptr;
    if (!g_metrics_interval_log_path.empty()) {
      log = std::fopen(g_metrics_interval_log_path.c_str(), "a");
      if (log != nullptr) out = log;
    }
    std::fprintf(out, "%s\n", line.c_str());
    if (log != nullptr) std::fclose(log);
  };
  return options;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written == content.size()) return false;
  return ok;
}

/// Honors --metrics-json after a query command ran; with --metrics-reset
/// the export is a delta scrape that zeroes the registry behind it.
void MaybeExportMetrics() {
  if (g_metrics_json_path.empty()) return;
  const std::string json =
      g_metrics_reset
          ? edr::MetricsRegistry::Global().SnapshotAndReset().ToJson()
          : edr::MetricsRegistry::Global().Snapshot().ToJson();
  if (!WriteTextFile(g_metrics_json_path, json)) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 g_metrics_json_path.c_str());
  } else {
    std::printf("metrics written to %s\n", g_metrics_json_path.c_str());
  }
}

/// Honors --metrics-table: the aligned counter/latency table on stdout.
void MaybeExportMetricsTable() {
  if (!g_metrics_table) return;
  std::printf("%s",
              edr::MetricsRegistry::Global().Snapshot().ToTable().c_str());
}

/// Honors --flight-json after a query command ran.
void MaybeExportFlight() {
  if (g_flight_json_path.empty()) return;
  const std::string json = edr::FlightRecorder::Global().ToJson();
  if (!WriteTextFile(g_flight_json_path, json)) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 g_flight_json_path.c_str());
  } else {
    std::printf("flight recorder written to %s\n", g_flight_json_path.c_str());
  }
}

/// Sends one solo (unscheduled) CLI query to the flight recorder, so
/// `knn --flight-json=...` shows the query it just ran. sched_budget and
/// fusion_group stay 0: the query never went through the scheduler.
void PublishCliQuery(const std::string& searcher_name,
                     const edr::KnnResult& result) {
  edr::FlightRecord record;
  record.searcher = searcher_name;
  record.latency_seconds = result.stats.elapsed_seconds;
  record.filter_seconds = result.stats.filter_seconds;
  record.refine_seconds = result.stats.refine_seconds;
  record.db_size = result.stats.db_size;
  record.edr_computed = result.stats.edr_computed;
  record.stages = result.stats.stages;
  record.trace = result.trace;
  edr::FlightRecorder::Global().Publish(std::move(record));
}

/// Honors --trace-json for the query that produced `result`.
void MaybeExportTrace(const edr::KnnResult& result) {
  if (g_trace_json_path.empty()) return;
  if (result.trace == nullptr) {
    std::fprintf(stderr,
                 "note: no trace recorded (EDR_DISABLE_OBS build or "
                 "method without tracing); %s not written\n",
                 g_trace_json_path.c_str());
    return;
  }
  if (!WriteTextFile(g_trace_json_path, result.trace->ToJson())) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 g_trace_json_path.c_str());
  } else {
    std::printf("trace written to %s\n", g_trace_json_path.c_str());
  }
}

bool IsCsv(const std::string& path) {
  return path.size() >= 4 && path.substr(path.size() - 4) == ".csv";
}

edr::Result<edr::TrajectoryDataset> LoadAny(const std::string& path) {
  return IsCsv(path) ? edr::LoadCsv(path) : edr::LoadBinary(path);
}

edr::Status SaveAny(const edr::TrajectoryDataset& db,
                    const std::string& path) {
  return IsCsv(path) ? edr::SaveCsv(db, path) : edr::SaveBinary(db, path);
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  edr_cli generate <asl|cameramouse|kungfu|slip|nhl|mixed|"
      "randomwalk> <out> [count] [seed]\n"
      "  edr_cli info <file>\n"
      "  edr_cli convert <in> <out>\n"
      "  edr_cli simplify <in> <out> <tolerance>\n"
      "  edr_cli probe-epsilon <file>\n"
      "  edr_cli knn <file> <query-index> <k> [method] [epsilon]\n"
      "  edr_cli range <file> <query-index> <radius> [epsilon]\n"
      "  edr_cli batch <file> <num-queries> <k> [method] [repeats] "
      "[epsilon]\n"
      "  edr_cli serve-metrics [--port=N] [--duration=SEC] [--warm=N] "
      "[--count=N]\n"
      "  edr_cli check-openmetrics <file>\n"
      "flags (any command):\n"
      "  --trace-json=FILE       per-query phase trace (knn only)\n"
      "  --metrics-json=FILE     process-wide metrics snapshot\n"
      "  --metrics-reset         snapshot is a delta scrape (reset after "
      "export)\n"
      "  --metrics-interval=SEC  periodic delta dumps while a batch drains "
      "(SEC > 0)\n"
      "  --metrics-interval-log=FILE  append interval dumps here instead of "
      "stderr\n"
      "  --trace-agg-json=FILE   aggregate phase profile of a batch\n"
      "  --metrics-table         print the aligned metrics table\n"
      "  --flight-json=FILE      slow-query flight recorder dump\n"
      "  --timeline-json=FILE    utilization timeline of a batch\n"
      "  --listen[=PORT]         serve /metrics /healthz /flight /timeline "
      "during a batch\n"
      "  --listen-hold=SEC       keep the endpoint up after the batch "
      "drains\n");
  return 2;
}

int Generate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string family = argv[2];
  const std::string out = argv[3];
  const size_t count = argc > 4 ? static_cast<size_t>(std::atoll(argv[4])) : 0;
  const uint64_t seed = argc > 5 ? static_cast<uint64_t>(std::atoll(argv[5]))
                                 : 7;

  edr::TrajectoryDataset db;
  if (family == "asl") {
    db = edr::GenAslLike(10, count ? count / 10 : 5, seed);
  } else if (family == "cameramouse") {
    db = edr::GenCameraMouseLike(count ? count / 5 : 3, seed);
  } else if (family == "kungfu") {
    db = edr::GenKungfuLike(count ? count : 495, 640, seed);
  } else if (family == "slip") {
    db = edr::GenSlipLike(count ? count : 495, 400, seed);
  } else if (family == "nhl") {
    db = edr::GenNhlLike(count ? count : 5000, 30, 256, seed);
  } else if (family == "mixed") {
    db = edr::GenMixedLike(count ? count : 1024, 60, 512, seed);
  } else if (family == "randomwalk") {
    edr::RandomWalkOptions options;
    options.count = count ? count : 1000;
    options.seed = seed;
    db = edr::GenRandomWalk(options);
  } else {
    return Fail("unknown family: " + family);
  }
  const edr::Status status = SaveAny(db, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %zu trajectories to %s\n", db.size(), out.c_str());
  return 0;
}

int Info(int argc, char** argv) {
  if (argc < 3) return Usage();
  const edr::Result<edr::TrajectoryDataset> db = LoadAny(argv[2]);
  if (!db.ok()) return Fail(db.status().ToString());
  const edr::DatasetStats stats = db->Stats();
  std::printf("trajectories: %zu\n", stats.count);
  std::printf("lengths:      %zu-%zu (mean %.1f)\n", stats.min_length,
              stats.max_length, stats.mean_length);
  std::printf("bounding box: [%.3f, %.3f] x [%.3f, %.3f]\n", stats.min_xy.x,
              stats.max_xy.x, stats.min_xy.y, stats.max_xy.y);
  std::printf("max std dev:  %.4f (suggested epsilon %.4f)\n",
              stats.max_std_dev, db->SuggestedEpsilon());
  std::printf("classes:      %zu\n", db->NumClasses());
  return 0;
}

int Convert(int argc, char** argv) {
  if (argc < 4) return Usage();
  const edr::Result<edr::TrajectoryDataset> db = LoadAny(argv[2]);
  if (!db.ok()) return Fail(db.status().ToString());
  const edr::Status status = SaveAny(*db, argv[3]);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("converted %zu trajectories: %s -> %s\n", db->size(), argv[2],
              argv[3]);
  return 0;
}

int Simplify(int argc, char** argv) {
  if (argc < 5) return Usage();
  const edr::Result<edr::TrajectoryDataset> db = LoadAny(argv[2]);
  if (!db.ok()) return Fail(db.status().ToString());
  const double tolerance = std::atof(argv[4]);
  const edr::TrajectoryDataset simplified = SimplifyAll(*db, tolerance);
  size_t before = 0;
  size_t after = 0;
  for (size_t i = 0; i < db->size(); ++i) {
    before += (*db)[i].size();
    after += simplified[i].size();
  }
  const edr::Status status = SaveAny(simplified, argv[3]);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("simplified %zu trajectories: %zu -> %zu points (%.0f%%)\n",
              db->size(), before, after,
              100.0 * static_cast<double>(after) /
                  static_cast<double>(before ? before : 1));
  return 0;
}

int ProbeEpsilon(int argc, char** argv) {
  if (argc < 3) return Usage();
  edr::Result<edr::TrajectoryDataset> db = LoadAny(argv[2]);
  if (!db.ok()) return Fail(db.status().ToString());
  db->NormalizeAll();
  const edr::EpsilonProbeResult r = edr::SuggestEpsilonByProbing(*db);
  std::printf("suggested epsilon (normalized space): %.4f (contrast %.2f)\n",
              r.epsilon, r.contrast);
  std::printf("quarter-of-max-std-dev rule:          %.4f\n",
              db->SuggestedEpsilon());
  return 0;
}

edr::NamedSearcher PickMethod(edr::QueryEngine& engine,
                              const std::string& method) {
  if (method == "scan") return engine.MakeSeqScan();
  if (method == "ea") return engine.MakeSeqScan(true);
  if (method == "ps2") return engine.MakeQgram(edr::QgramVariant::kMerge2D, 1);
  if (method == "ps1") return engine.MakeQgram(edr::QgramVariant::kMerge1D, 1);
  if (method == "pr") return engine.MakeQgram(edr::QgramVariant::kRtree2D, 1);
  if (method == "pb") return engine.MakeQgram(edr::QgramVariant::kBtree1D, 1);
  if (method == "ntr") return engine.MakeNearTriangle(200);
  if (method == "hsr2") {
    return engine.MakeHistogram(edr::HistogramTable::Kind::k2D, 1,
                                edr::HistogramScan::kSorted);
  }
  if (method == "hsr1") {
    return engine.MakeHistogram(edr::HistogramTable::Kind::k1D, 1,
                                edr::HistogramScan::kSorted);
  }
  edr::CombinedOptions combo;
  combo.max_triangle = 200;
  if (method == "1hpn") combo.histogram_kind = edr::HistogramTable::Kind::k1D;
  return engine.MakeCombined(combo);  // "2hpn" and the default.
}

int Knn(int argc, char** argv) {
  if (argc < 5) return Usage();
  edr::Result<edr::TrajectoryDataset> loaded = LoadAny(argv[2]);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  edr::TrajectoryDataset db = std::move(loaded).value();
  db.NormalizeAll();

  const size_t query_index = static_cast<size_t>(std::atoll(argv[3]));
  const size_t k = static_cast<size_t>(std::atoll(argv[4]));
  if (query_index >= db.size()) return Fail("query index out of range");
  const std::string method = argc > 5 ? argv[5] : "2hpn";
  const double epsilon =
      argc > 6 ? std::atof(argv[6]) : db.SuggestedEpsilon();

  edr::QueryEngine engine(db, epsilon);
  const edr::NamedSearcher searcher = PickMethod(engine, method);
  const edr::KnnResult result = searcher.search(db[query_index], k);
  std::printf("%zu-NN of trajectory %zu under EDR (eps=%.3f, method %s):\n",
              k, query_index, epsilon, searcher.name.c_str());
  for (const edr::Neighbor& n : result.neighbors) {
    std::printf("  id=%-6u EDR=%.0f len=%zu\n", n.id, n.distance,
                db[n.id].size());
  }
  std::printf("computed %zu/%zu true distances (pruning power %.3f) in "
              "%.1f ms\n",
              result.stats.edr_computed, result.stats.db_size,
              result.stats.PruningPower(),
              result.stats.elapsed_seconds * 1e3);
  PublishCliQuery(searcher.name, result);
  MaybeExportTrace(result);
  MaybeExportMetrics();
  MaybeExportMetricsTable();
  MaybeExportFlight();
  return 0;
}

int Batch(int argc, char** argv) {
  if (argc < 5) return Usage();
  edr::Result<edr::TrajectoryDataset> loaded = LoadAny(argv[2]);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  edr::TrajectoryDataset db = std::move(loaded).value();
  db.NormalizeAll();

  const size_t num_queries = static_cast<size_t>(std::atoll(argv[3]));
  const size_t k = static_cast<size_t>(std::atoll(argv[4]));
  if (num_queries == 0 || num_queries > db.size()) {
    return Fail("num-queries must be in [1, dataset size]");
  }
  const std::string method = argc > 5 ? argv[5] : "2hpn";
  const size_t repeats =
      argc > 6 ? std::max<size_t>(1, static_cast<size_t>(std::atoll(argv[6])))
               : 2;
  const double epsilon =
      argc > 7 ? std::atof(argv[7]) : db.SuggestedEpsilon();

  edr::QueryEngine engine(db, epsilon);
  const edr::NamedSearcher searcher = PickMethod(engine, method);
  edr::FeatureCache cache(/*capacity=*/2 * num_queries);
  edr::RegisterStandardMetrics();

  std::printf("streaming %zu queries x%zu through %s (eps=%.3f, k=%zu)\n",
              num_queries, repeats, searcher.name.c_str(), epsilon, k);
  edr::PeriodicMetricsDumper dumper(IntervalDumperOptions());
  if (g_metrics_interval_given) dumper.Start();

  // The sessions below are per-pass; the timeline sampler outlives them
  // and probes the live one through this mutex-guarded pointer.
  std::mutex session_mu;
  edr::QuerySession* live_session = nullptr;

  edr::TimelineSampler::Options timeline_options;
  timeline_options.backlog = [&session_mu, &live_session]() -> size_t {
    std::lock_guard<std::mutex> lock(session_mu);
    return live_session != nullptr ? live_session->PendingRelaxed() : 0;
  };
  timeline_options.cache_entries = [&cache]() {
    return cache.stats().entries;
  };
  edr::TimelineSampler timeline(timeline_options);
  if (!g_timeline_json_path.empty() || g_listen) timeline.Start();

  edr::MetricsHttpEndpoint::Options endpoint_options;
  endpoint_options.port = static_cast<uint16_t>(g_listen_port);
  endpoint_options.timeline = &timeline;
  edr::MetricsHttpEndpoint endpoint(endpoint_options);
  if (g_listen) {
    std::string error;
    if (!endpoint.Start(&error)) return Fail("--listen: " + error);
    std::printf("serving /metrics /healthz /flight /timeline on "
                "127.0.0.1:%u\n",
                static_cast<unsigned>(endpoint.port()));
    std::fflush(stdout);
  }

  edr::TraceAggregate trace_agg;
  edr::SchedulerStats last_stats;
  for (size_t pass = 0; pass < repeats; ++pass) {
    edr::QuerySession::Options options;
    options.k = k;
    options.feature_cache = &cache;
    edr::QuerySession session(searcher, options);
    {
      std::lock_guard<std::mutex> lock(session_mu);
      live_session = &session;
    }
    const auto start = std::chrono::steady_clock::now();
    std::vector<edr::QuerySession::Ticket> tickets;
    tickets.reserve(num_queries);
    for (size_t i = 0; i < num_queries; ++i) {
      tickets.push_back(session.Submit(db[i]));
    }
    session.Drain();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (!g_trace_agg_json_path.empty()) {
      for (const edr::QuerySession::Ticket t : tickets) {
        trace_agg.Add(session.Result(t).trace.get());
      }
    }
    last_stats = session.stats();
    {
      std::lock_guard<std::mutex> lock(session_mu);
      live_session = nullptr;
    }
    std::printf("  pass %zu: %.1f ms total, %.3f ms/query%s\n", pass + 1,
                seconds * 1e3,
                seconds * 1e3 / static_cast<double>(num_queries),
                pass == 0 ? " (cold cache)" : " (warm cache)");
  }
  dumper.Stop();
  std::printf("scheduler: %zu queries, %zu fused groups (%zu queries), "
              "%zu waves (%zu queries), %zu widened, max budget %u\n",
              last_stats.queries, last_stats.fused_groups,
              last_stats.fused_queries, last_stats.waves,
              last_stats.wave_queries, last_stats.widened_queries,
              last_stats.max_budget);
  if (!g_trace_agg_json_path.empty()) {
    if (trace_agg.traces() == 0) {
      std::fprintf(stderr,
                   "note: no traces recorded (EDR_DISABLE_OBS build?); "
                   "%s not written\n",
                   g_trace_agg_json_path.c_str());
    } else if (!WriteTextFile(g_trace_agg_json_path, trace_agg.ToJson())) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   g_trace_agg_json_path.c_str());
    } else {
      std::printf("aggregate trace (%zu queries) written to %s\n",
                  trace_agg.traces(), g_trace_agg_json_path.c_str());
    }
  }
  const edr::FeatureCache::Stats cs = cache.stats();
  std::printf("feature cache: %llu hits, %llu misses, %llu evictions, "
              "%zu entries\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.evictions), cs.entries);
  if (g_listen && g_listen_hold_seconds > 0.0) {
    std::printf("holding the endpoint for %.1f s (ctrl-c to stop early)\n",
                g_listen_hold_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(g_listen_hold_seconds));
  }
  endpoint.Stop();
  timeline.Stop();
  if (!g_timeline_json_path.empty()) {
    if (!WriteTextFile(g_timeline_json_path, timeline.ToJson())) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   g_timeline_json_path.c_str());
    } else {
      std::printf("timeline written to %s\n", g_timeline_json_path.c_str());
    }
  }
  MaybeExportMetrics();
  MaybeExportMetricsTable();
  MaybeExportFlight();
  return 0;
}

/// `serve-metrics` — the self-contained scrape target: generate a dataset,
/// run a warm scheduled batch so metrics / flight records / the timeline
/// are populated, then serve the observability routes for a fixed window.
int ServeMetrics(int argc, char** argv) {
  int port = 0;
  double duration = 5.0;
  size_t warm = 32;
  size_t count = 256;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--port=", 7) == 0) {
      port = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--duration=", 11) == 0) {
      duration = std::atof(arg + 11);
    } else if (std::strncmp(arg, "--warm=", 7) == 0) {
      warm = static_cast<size_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--count=", 8) == 0) {
      count = static_cast<size_t>(std::atoll(arg + 8));
    } else {
      return Fail(std::string("serve-metrics: unknown flag ") + arg);
    }
  }
  if (count < 2) return Fail("serve-metrics: --count must be >= 2");
  warm = std::min(warm, count);

  edr::RegisterStandardMetrics();
  edr::TrajectoryDataset db = edr::GenMixedLike(count, 40, 200, /*seed=*/7);
  db.NormalizeAll();
  const double epsilon = db.SuggestedEpsilon();
  edr::QueryEngine engine(db, epsilon);
  const edr::NamedSearcher searcher = PickMethod(engine, "2hpn");
  edr::FeatureCache cache(/*capacity=*/2 * warm);

  edr::TimelineSampler::Options timeline_options;
  timeline_options.cache_entries = [&cache]() {
    return cache.stats().entries;
  };
  edr::TimelineSampler timeline(timeline_options);
  timeline.Start();

  if (warm > 0) {
    edr::QuerySession::Options options;
    options.k = 5;
    options.feature_cache = &cache;
    edr::QuerySession session(searcher, options);
    for (size_t i = 0; i < warm; ++i) session.Submit(db[i]);
    session.Drain();
    std::printf("warmed %zu queries over %zu trajectories (eps=%.3f)\n",
                warm, db.size(), epsilon);
  }

  edr::MetricsHttpEndpoint::Options endpoint_options;
  endpoint_options.port = static_cast<uint16_t>(port);
  endpoint_options.timeline = &timeline;
  edr::MetricsHttpEndpoint endpoint(endpoint_options);
  std::string error;
  if (!endpoint.Start(&error)) return Fail("serve-metrics: " + error);
  std::printf("serving /metrics /healthz /flight /timeline on "
              "127.0.0.1:%u for %.1f s\n",
              static_cast<unsigned>(endpoint.port()), duration);
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::duration<double>(duration));
  endpoint.Stop();
  timeline.Stop();
  std::printf("served %llu requests\n",
              static_cast<unsigned long long>(endpoint.requests()));
  MaybeExportMetrics();
  MaybeExportMetricsTable();
  MaybeExportFlight();
  return 0;
}

/// `check-openmetrics <file>` — validate a scraped exposition.
int CheckOpenMetrics(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::FILE* f = std::fopen(argv[2], "rb");
  if (f == nullptr) return Fail(std::string("cannot open ") + argv[2]);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string error;
  if (!edr::OpenMetricsIsValid(text, &error)) {
    return Fail(std::string(argv[2]) + ": " + error);
  }
  std::printf("%s: valid OpenMetrics exposition (%zu bytes)\n", argv[2],
              text.size());
  return 0;
}

int RangeQuery(int argc, char** argv) {
  if (argc < 5) return Usage();
  edr::Result<edr::TrajectoryDataset> loaded = LoadAny(argv[2]);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  edr::TrajectoryDataset db = std::move(loaded).value();
  db.NormalizeAll();

  const size_t query_index = static_cast<size_t>(std::atoll(argv[3]));
  const int radius = std::atoi(argv[4]);
  if (query_index >= db.size()) return Fail("query index out of range");
  const double epsilon =
      argc > 5 ? std::atof(argv[5]) : db.SuggestedEpsilon();

  edr::QueryEngine engine(db, epsilon);
  edr::CombinedOptions combo;
  combo.max_triangle = 200;
  const edr::KnnResult result =
      engine.Combined(combo).Range(db[query_index], radius);
  std::printf("trajectories within EDR %d of trajectory %zu (eps=%.3f): "
              "%zu\n",
              radius, query_index, epsilon, result.neighbors.size());
  for (const edr::Neighbor& n : result.neighbors) {
    std::printf("  id=%-6u EDR=%.0f\n", n.id, n.distance);
  }
  PublishCliQuery("range", result);
  MaybeExportTrace(result);
  MaybeExportMetrics();
  MaybeExportMetricsTable();
  MaybeExportFlight();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  argc = StripObsFlags(argc, argv);
  if (g_metrics_interval_given) {
    std::string error;
    if (!edr::PeriodicMetricsDumper::ValidInterval(g_metrics_interval_seconds,
                                                   &error)) {
      return Fail("--metrics-interval: " + error);
    }
  }
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return Generate(argc, argv);
  if (command == "info") return Info(argc, argv);
  if (command == "convert") return Convert(argc, argv);
  if (command == "simplify") return Simplify(argc, argv);
  if (command == "probe-epsilon") return ProbeEpsilon(argc, argv);
  if (command == "knn") return Knn(argc, argv);
  if (command == "range") return RangeQuery(argc, argv);
  if (command == "batch") return Batch(argc, argv);
  if (command == "serve-metrics") return ServeMetrics(argc, argv);
  if (command == "check-openmetrics") return CheckOpenMetrics(argc, argv);
  return Usage();
}
