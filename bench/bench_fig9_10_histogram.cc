// Reproduces Figures 9 and 10: pruning power and speedup ratio of
// histogram pruning on the ASL (710), Slip, and Kungfu data sets, for
// both scan strategies (HSR sorted, HSE sequential) and five embeddings:
// 1HE (per-dimension 1-D histograms, bin eps), 2HE/2H2E/2H3E/2H4E (2-D
// trajectory histograms with bin sizes eps..4*eps).
//
// Paper shape to reproduce:
//  - 2HE (finest 2-D histograms) has the highest pruning power;
//  - 1HE beats the coarser 2-D variants (the better way to shrink bins);
//  - HSR >= HSE in both power and speedup (sorting pays for itself);
//  - histograms prune more than mean-value Q-grams (compare Figure 7).

#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"

namespace edr {
namespace {

void RunDataset(const char* name, TrajectoryDataset db,
                const bench::BenchConfig& config) {
  db.NormalizeAll();
  QueryEngine engine(db, db.SuggestedEpsilon());
  std::vector<NamedSearcher> searchers;
  for (const HistogramScan scan :
       {HistogramScan::kSorted, HistogramScan::kSequential}) {
    searchers.push_back(
        engine.MakeHistogram(HistogramTable::Kind::k1D, 1, scan));
    for (int delta = 1; delta <= 4; ++delta) {
      searchers.push_back(
          engine.MakeHistogram(HistogramTable::Kind::k2D, delta, scan));
    }
  }
  bench::RunSuite(name, engine, searchers, config);
}

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  const auto config = edr::bench::BenchConfig::FromArgs(argc, argv);
  std::printf("Figures 9 & 10: histogram pruning power and speedup\n");
  edr::RunDataset("ASL-710", edr::GenAslLike(10, 71, 11), config);
  edr::RunDataset("Slip",
                  edr::GenSlipLike(495, config.full ? 400 : 120, 17),
                  config);
  edr::RunDataset("Kungfu",
                  edr::GenKungfuLike(495, config.full ? 640 : 160, 13),
                  config);
  return 0;
}
