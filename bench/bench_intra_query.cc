// Intra-query parallelism bench: per-query latency distribution (p50 /
// p95 / max) of the filter-and-refine searchers at 1, 4, and 8 workers
// sharding a single query over a dedicated thread pool, on a
// 10k-trajectory random walk database.
//
// Emits JSON (stdout, or the file named by argv[1]):
//
//   ./bench/bench_intra_query BENCH_intra_query.json
//
// Every multi-worker run is certified bit-identical to the single-worker
// run before its latency is reported. "host_cores" records the machine's
// core count: worker counts beyond it measure scheduling overhead, not
// speedup, so interpret the committed baseline relative to that field.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/rng.h"
#include "core/trajectory.h"
#include "data/generators.h"
#include "pruning/combined.h"
#include "pruning/histogram_knn.h"
#include "pruning/qgram_knn.h"
#include "query/knn.h"
#include "query/thread_pool.h"

namespace edr {
namespace {

constexpr double kEps = 0.25;
constexpr size_t kDbSize = 10000;
constexpr size_t kQueries = 20;
constexpr size_t kK = 10;

struct LatencyRow {
  unsigned workers = 1;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double max_s = 0.0;
  bool identical = true;
};

double NearestRank(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  size_t idx = static_cast<size_t>(std::ceil(rank));
  idx = idx > 0 ? idx - 1 : 0;
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

bool SameNeighbors(const KnnResult& a, const KnnResult& b) {
  if (a.neighbors.size() != b.neighbors.size()) return false;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    if (a.neighbors[i].id != b.neighbors[i].id ||
        a.neighbors[i].distance != b.neighbors[i].distance) {
      return false;
    }
  }
  return true;
}

using KnnFn = std::function<KnnResult(const Trajectory&, const KnnOptions&)>;

std::vector<LatencyRow> MeasureMethod(
    const char* name, const KnnFn& knn,
    const std::vector<Trajectory>& queries, ThreadPool& pool) {
  // Single-worker reference answers for the bit-identity certification.
  std::vector<KnnResult> reference;
  reference.reserve(queries.size());
  for (const Trajectory& q : queries) reference.push_back(knn(q, {}));

  std::vector<LatencyRow> rows;
  for (const unsigned workers : {1u, 4u, 8u}) {
    KnnOptions options;
    options.intra_query_workers = workers;
    options.pool = &pool;

    LatencyRow row;
    row.workers = workers;
    std::vector<double> latencies;
    latencies.reserve(queries.size());
    // One warm-up pass sizes scratch buffers, then the measured pass.
    for (const Trajectory& q : queries) knn(q, options);
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto start = std::chrono::steady_clock::now();
      const KnnResult result = knn(queries[i], options);
      const auto stop = std::chrono::steady_clock::now();
      latencies.push_back(
          std::chrono::duration<double>(stop - start).count());
      row.identical = row.identical && SameNeighbors(reference[i], result);
    }
    std::sort(latencies.begin(), latencies.end());
    row.p50_s = NearestRank(latencies, 0.50);
    row.p95_s = NearestRank(latencies, 0.95);
    row.max_s = latencies.back();
    std::fprintf(stderr,
                 "%-6s workers=%u p50=%.3fms p95=%.3fms max=%.3fms "
                 "identical=%s\n",
                 name, workers, row.p50_s * 1e3, row.p95_s * 1e3,
                 row.max_s * 1e3, row.identical ? "yes" : "NO");
    rows.push_back(row);
  }
  return rows;
}

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  using namespace edr;
  bench::WarnIfSingleCore();

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }

  RandomWalkOptions walk_options;
  walk_options.count = kDbSize;
  walk_options.min_length = 20;
  walk_options.max_length = 60;
  walk_options.seed = 17;
  const TrajectoryDataset db = GenRandomWalk(walk_options);
  std::vector<Trajectory> queries;
  for (size_t q = 0; q < kQueries; ++q) {
    queries.push_back(db[(q * db.size()) / kQueries]);
  }

  ThreadPool pool(8);

  const HistogramKnnSearcher hsr(db, kEps, HistogramTable::Kind::k2D, 1,
                                 HistogramScan::kSorted);
  const QgramKnnSearcher ps2(db, kEps, /*q=*/1, QgramVariant::kMerge2D);
  CombinedOptions combined_options;
  combined_options.max_triangle = 100;
  const CombinedKnnSearcher combined(db, kEps, combined_options);

  struct Method {
    const char* name;
    KnnFn knn;
  };
  const std::vector<Method> methods = {
      {"HSR",
       [&](const Trajectory& q, const KnnOptions& o) {
         return hsr.Knn(q, kK, o);
       }},
      {"PS2",
       [&](const Trajectory& q, const KnnOptions& o) {
         return ps2.Knn(q, kK, o);
       }},
      {"2HPN",
       [&](const Trajectory& q, const KnnOptions& o) {
         return combined.Knn(q, kK, o);
       }},
  };

  bool all_identical = true;
  std::string body;
  char buf[512];
  for (size_t m = 0; m < methods.size(); ++m) {
    const auto rows =
        MeasureMethod(methods[m].name, methods[m].knn, queries, pool);
    const double base_p50 = rows.front().p50_s;
    std::snprintf(buf, sizeof(buf), "    {\"method\": \"%s\", \"rows\": [\n",
                  methods[m].name);
    body += buf;
    for (size_t i = 0; i < rows.size(); ++i) {
      const LatencyRow& r = rows[i];
      all_identical = all_identical && r.identical;
      std::snprintf(buf, sizeof(buf),
                    "      {\"workers\": %u, \"p50_ms\": %.3f, "
                    "\"p95_ms\": %.3f, \"max_ms\": %.3f, "
                    "\"speedup_p50_vs_1\": %.2f, \"identical\": %s}%s\n",
                    r.workers, r.p50_s * 1e3, r.p95_s * 1e3, r.max_s * 1e3,
                    base_p50 > 0.0 ? base_p50 / r.p50_s : 0.0,
                    r.identical ? "true" : "false",
                    i + 1 < rows.size() ? "," : "");
      body += buf;
    }
    body += m + 1 < methods.size() ? "    ]},\n" : "    ]}\n";
  }

  std::fprintf(out,
               "{\n  \"bench\": \"intra_query\",\n  \"db_size\": %zu,\n"
               "  \"queries\": %zu,\n  \"k\": %zu,\n  \"epsilon\": %.3f,\n",
               db.size(), queries.size(), kK, kEps);
  bench::FprintHostJson(out);
  std::fprintf(out,
               "  \"methods\": [\n%s  ],\n"
               "  \"identical\": %s\n}\n",
               body.c_str(), all_identical ? "true" : "false");
  if (out != stdout) std::fclose(out);
  return all_identical ? 0 : 1;
}
