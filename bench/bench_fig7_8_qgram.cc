// Reproduces Figures 7 and 8: pruning power and speedup ratio of the four
// mean-value Q-gram implementations (PR: R*-tree 2-D, PB: B+-tree 1-D,
// PS2: merge join 2-D, PS1: merge join 1-D) with Q-gram sizes 1-4 on the
// ASL (710 trajectories), Slip, and Kungfu data sets.
//
// Paper shape to reproduce:
//  - pruning power: PR >= PS2 >= PS1, PR >= PB; power drops as q grows
//    (to ~0 on Slip for q > 1); q = 1 is the most effective size;
//  - speedup: the index-based variants (PR/PB) pay search overhead that
//    often cancels their extra pruning, so PS2/PS1 win; PS2 with q = 1 is
//    the best overall Q-gram filter.
//
// Default scale shortens Kungfu/Slip trajectories (--full for 640/400).

#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"

namespace edr {
namespace {

void RunDataset(const char* name, TrajectoryDataset db,
                const bench::BenchConfig& config) {
  db.NormalizeAll();
  QueryEngine engine(db, db.SuggestedEpsilon());
  std::vector<NamedSearcher> searchers;
  for (const QgramVariant variant :
       {QgramVariant::kRtree2D, QgramVariant::kBtree1D,
        QgramVariant::kMerge2D, QgramVariant::kMerge1D}) {
    for (int q = 1; q <= 4; ++q) {
      searchers.push_back(engine.MakeQgram(variant, q));
    }
  }
  bench::RunSuite(name, engine, searchers, config);
}

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  const auto config = edr::bench::BenchConfig::FromArgs(argc, argv);
  std::printf(
      "Figures 7 & 8: mean-value Q-gram pruning power and speedup\n");
  edr::RunDataset("ASL-710", edr::GenAslLike(10, 71, 11), config);
  edr::RunDataset("Slip",
                  edr::GenSlipLike(495, config.full ? 400 : 120, 17),
                  config);
  edr::RunDataset("Kungfu",
                  edr::GenKungfuLike(495, config.full ? 640 : 160, 13),
                  config);
  return 0;
}
