// Reproduces Figures 12 and 13: pruning power and speedup ratio of the
// combined methods against each technique alone, on three large data
// sets: NHL, Mixed, and Randomwalk.
//
// Methods, in the paper's naming: NTR (near triangle inequality alone),
// PS2 q=1 (merge-join mean-value Q-grams alone), HSR-2HE / HSR-1HE
// (histogram pruning alone), and the combinations 2HPN and 1HPN
// (histograms -> Q-grams -> near triangle).
//
// Paper shape to reproduce: the combined methods dominate; 1HPN (with
// per-dimension histograms) achieves the best speedup — about twice
// histogram-only, five times Q-gram-only, and twenty times NTR-only —
// because 2-D histograms' many bins make their distance computation
// expensive on large databases.
//
// The paper's full sizes (Mixed: 32768 x len<=2000, Randomwalk: 100000 x
// len<=1024) need hours of offline EDR matrix construction; the default
// scale reduces counts/lengths (pass --full for paper scale).

#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"

namespace edr {
namespace {

void RunDataset(const char* name, TrajectoryDataset db,
                const bench::BenchConfig& config, size_t refs) {
  db.NormalizeAll();
  QueryEngine engine(db, db.SuggestedEpsilon());

  std::vector<NamedSearcher> searchers;
  searchers.push_back(engine.MakeNearTriangle(refs));
  searchers.push_back(engine.MakeQgram(QgramVariant::kMerge2D, 1));
  searchers.push_back(engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                                           HistogramScan::kSorted));
  searchers.push_back(engine.MakeHistogram(HistogramTable::Kind::k1D, 1,
                                           HistogramScan::kSorted));
  CombinedOptions combo;
  combo.max_triangle = refs;
  combo.histogram_kind = HistogramTable::Kind::k2D;
  searchers.push_back(engine.MakeCombined(combo));  // 2HPN
  combo.histogram_kind = HistogramTable::Kind::k1D;
  searchers.push_back(engine.MakeCombined(combo));  // 1HPN

  bench::RunSuite(name, engine, searchers, config);
}

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  const auto config = edr::bench::BenchConfig::FromArgs(argc, argv);
  std::printf("Figures 12 & 13: combined pruning methods\n");

  const size_t nhl_count = config.full ? 5000 : 2000;
  const size_t nhl_refs = config.full ? 400 : 200;
  edr::RunDataset("NHL", edr::GenNhlLike(nhl_count, 30, 256, 19), config,
                  nhl_refs);

  const size_t mixed_count = config.full ? 32768 : 1024;
  const size_t mixed_max_len = config.full ? 2000 : 384;
  edr::RunDataset(
      "Mixed", edr::GenMixedLike(mixed_count, 60, mixed_max_len, 23),
      config, config.full ? 400 : 100);

  edr::RandomWalkOptions rw;
  rw.count = config.full ? 100000 : 4096;
  rw.min_length = 30;
  rw.max_length = config.full ? 1024 : 128;
  rw.seed = 29;
  edr::RunDataset("Randomwalk", edr::GenRandomWalk(rw), config,
                  config.full ? 400 : 100);
  return 0;
}
