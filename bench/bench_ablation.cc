// Ablation studies for the design choices DESIGN.md calls out, beyond the
// paper's own experiments:
//
//  1. Early-abandoning EDR in a sequential scan (row-minimum cutoff)
//     versus the paper's plain full-DP scan.
//  2. Banded (Sakoe-Chiba) EDR as an *approximate* accelerator: time saved
//     versus how often the k-NN result set changes.
//  3. CSE (constant shift embedding) versus near-triangle pruning — the
//     comparison behind the paper's Section 4.2 rejection of CSE.
//  4. Lower-bound tightness: mean HD / EDR ratio for each histogram
//     embedding (tighter = closer to 1 = more pruning).

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/rng.h"
#include "data/generators.h"
#include "data/simplify.h"
#include "distance/edr.h"
#include "distance/erp.h"
#include "index/vp_tree.h"
#include "pruning/histogram.h"
#include "pruning/lcss_knn.h"

namespace edr {
namespace {

void AblationEarlyAbandon(QueryEngine& engine,
                          const bench::BenchConfig& config) {
  std::printf("\n[1] early-abandoning EDR vs full-DP sequential scan\n");
  const std::vector<Trajectory> queries =
      SampleQueries(engine.db(), config.queries);
  const std::vector<KnnResult> gt =
      RunGroundTruth(engine, queries, config.k);
  const double base = MeanSeconds(gt);
  std::printf("%s\n", FormatWorkloadHeader().c_str());
  const WorkloadResult r =
      RunWorkload(engine.MakeSeqScan(true), queries, config.k, &gt, base);
  std::printf("%s\n", FormatWorkloadRow(r).c_str());
}

void AblationBandedEdr(const TrajectoryDataset& db,
                       const bench::BenchConfig& config, double eps) {
  std::printf("\n[2] banded EDR (approximate): band vs exactness\n");
  std::printf("%-8s %12s %14s\n", "band", "avg_ms", "exact_pairs");
  const std::vector<Trajectory> queries = SampleQueries(db, config.queries);
  for (const int band : {4, 16, 64, -1}) {
    size_t exact = 0;
    size_t total = 0;
    double seconds = 0.0;
    for (const Trajectory& q : queries) {
      for (size_t i = 0; i < db.size(); i += 7) {
        const auto start = std::chrono::steady_clock::now();
        const int banded = EdrDistanceBanded(q, db[i], eps, band);
        seconds += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
        const int full = EdrDistance(q, db[i], eps);
        if (banded == full) ++exact;
        ++total;
      }
    }
    std::printf("%-8d %12.3f %10zu/%zu\n", band,
                seconds * 1000.0 / static_cast<double>(queries.size()),
                exact, total);
  }
}

void AblationCseVsNtr(QueryEngine& engine,
                      const bench::BenchConfig& config) {
  std::printf("\n[3] CSE vs near triangle inequality (Section 4.2)\n");
  std::printf(
      "    derived CSE shift c = %.1f (max triangle violation over "
      "reference triples)\n",
      engine.Cse(100).shift());

  // In-database queries: the derived shift happens to cover their triples,
  // so CSE looks attractive...
  const std::vector<Trajectory> in_db = SampleQueries(engine.db(), config.queries);
  const std::vector<KnnResult> gt_in = RunGroundTruth(engine, in_db, config.k);
  const double base_in = MeanSeconds(gt_in);
  std::printf("  in-database queries:\n%s\n", FormatWorkloadHeader().c_str());
  for (NamedSearcher s : {engine.MakeNearTriangle(100), engine.MakeCse(100)}) {
    const WorkloadResult r = RunWorkload(s, in_db, config.k, &gt_in, base_in);
    std::printf("%s\n", FormatWorkloadRow(r).c_str());
  }

  // ...but similarity queries are usually *not* in the database (the
  // paper's second objection): a constant derived from database triples
  // does not bound triples involving the query, so CSE may dismiss true
  // neighbors. NTR never does.
  std::vector<Trajectory> outside;
  Rng rng(1234);
  for (const Trajectory& q : in_db) {
    Trajectory noisy = q;
    for (Point2& p : noisy.mutable_points()) {
      p.x += rng.Gaussian(0.0, 0.2);
      p.y += rng.Gaussian(0.0, 0.2);
    }
    outside.push_back(std::move(noisy));
  }
  const std::vector<KnnResult> gt_out = RunGroundTruth(engine, outside, config.k);
  const double base_out = MeanSeconds(gt_out);
  std::printf("  out-of-database queries (no losslessness *guarantee* for "
              "CSE):\n%s\n",
              FormatWorkloadHeader().c_str());
  for (NamedSearcher s : {engine.MakeNearTriangle(100), engine.MakeCse(100)}) {
    const WorkloadResult r =
        RunWorkload(s, outside, config.k, &gt_out, base_out);
    std::printf("%s\n", FormatWorkloadRow(r).c_str());
  }

  // The paper's cited trade-off: shrinking c buys pruning power at the
  // price of false dismissals. Build a CSE searcher with c = 0 (pretend
  // EDR were a metric) and watch it dismiss true neighbors.
  CseSearcher aggressive(engine.db(), engine.epsilon(),
                         PairwiseEdrMatrix::Build(engine.db(),
                                                  engine.epsilon(), 100));
  aggressive.set_shift(0.0);
  NamedSearcher named{"CSE(c=0)", [&aggressive](const Trajectory& q,
                                                size_t k) {
                        return aggressive.Knn(q, k);
                      }};
  const WorkloadResult r =
      RunWorkload(named, outside, config.k, &gt_out, base_out);
  std::printf("%s\n", FormatWorkloadRow(r).c_str());
}

void AblationLowerBoundTightness(const TrajectoryDataset& db, double eps) {
  std::printf("\n[4] histogram lower-bound tightness (mean HD/EDR over "
              "sampled pairs; 1.0 = exact)\n");
  const DatasetStats stats = db.Stats();
  struct Embed {
    const char* name;
    bool one_d;
    int delta;
  };
  const Embed embeds[] = {
      {"2HE", false, 1}, {"2H2E", false, 2}, {"2H4E", false, 4},
      {"1HE", true, 1},
  };
  for (const Embed& e : embeds) {
    const HistogramGrid grid = HistogramGrid::For(stats, eps * e.delta);
    double ratio_sum = 0.0;
    size_t count = 0;
    for (size_t i = 0; i < db.size(); i += 17) {
      for (size_t j = i + 5; j < db.size(); j += 31) {
        const int exact = EdrDistance(db[i], db[j], eps);
        if (exact == 0) continue;
        int lower = 0;
        if (e.one_d) {
          const int dx =
              HistogramDistance1D(BuildHistogram1D(db[i], grid, true),
                                  BuildHistogram1D(db[j], grid, true));
          const int dy =
              HistogramDistance1D(BuildHistogram1D(db[i], grid, false),
                                  BuildHistogram1D(db[j], grid, false));
          lower = std::max(dx, dy);
        } else {
          lower = HistogramDistance2D(BuildHistogram2D(db[i], grid),
                                      BuildHistogram2D(db[j], grid), grid);
        }
        ratio_sum += static_cast<double>(lower) / exact;
        ++count;
      }
    }
    std::printf("    %-5s mean HD/EDR = %.3f over %zu pairs\n", e.name,
                count ? ratio_sum / static_cast<double>(count) : 0.0, count);
  }
}

void AblationSimplification(const TrajectoryDataset& db,
                            const bench::BenchConfig& config, double eps) {
  std::printf("\n[5] trajectory simplification: compression vs k-NN "
              "fidelity (Douglas-Peucker)\n");
  std::printf("%-12s %10s %12s %12s\n", "tolerance", "kept_pts",
              "scan_ms", "knn_overlap");
  const std::vector<Trajectory> queries =
      SampleQueries(db, std::min<size_t>(config.queries, 3));

  // Reference answers on the full-resolution data.
  std::vector<KnnResult> reference;
  for (const Trajectory& q : queries) {
    reference.push_back(SequentialScanKnn(db, q, config.k, eps));
  }

  size_t full_points = 0;
  for (const Trajectory& t : db) full_points += t.size();

  for (const double tolerance : {0.0, 0.05, 0.15, 0.4}) {
    const TrajectoryDataset simplified = SimplifyAll(db, tolerance);
    size_t kept = 0;
    for (const Trajectory& t : simplified) kept += t.size();

    double seconds = 0.0;
    double overlap_sum = 0.0;
    for (size_t i = 0; i < queries.size(); ++i) {
      const Trajectory query =
          SimplifyDouglasPeucker(queries[i], tolerance);
      const KnnResult r =
          SequentialScanKnn(simplified, query, config.k, eps);
      seconds += r.stats.elapsed_seconds;
      size_t overlap = 0;
      for (const Neighbor& a : reference[i].neighbors) {
        for (const Neighbor& b : r.neighbors) {
          if (a.id == b.id) ++overlap;
        }
      }
      overlap_sum += static_cast<double>(overlap) /
                     static_cast<double>(reference[i].neighbors.size());
    }
    std::printf("%-12.2f %9.0f%% %12.3f %11.0f%%\n", tolerance,
                100.0 * static_cast<double>(kept) /
                    static_cast<double>(full_points),
                seconds * 1000.0 / static_cast<double>(queries.size()),
                100.0 * overlap_sum / static_cast<double>(queries.size()));
    std::fflush(stdout);
  }
}

void AblationMetricIndex(const TrajectoryDataset& db,
                         const bench::BenchConfig& config, double eps) {
  std::printf("\n[6] distance access method (VP-tree) vs the EDR filters\n");
  std::printf("    Section 2: metric measures (ERP) can use known distance "
              "access methods; EDR cannot.\n");
  const std::vector<Trajectory> queries =
      SampleQueries(db, std::min<size_t>(config.queries, 3));

  // ERP under a VP-tree: exact, with real pruning.
  const VpTree erp_tree(db.size(), [&db](uint32_t a, uint32_t b) {
    return ErpDistance(db[a], db[b]);
  });
  size_t erp_calls = 0;
  bool erp_exact = true;
  for (const Trajectory& q : queries) {
    const auto oracle = [&db, &q](uint32_t i) {
      return ErpDistance(q, db[i]);
    };
    size_t calls = 0;
    const auto got = erp_tree.Knn(oracle, config.k, &calls);
    erp_calls += calls;
    KnnResultList brute(config.k);
    for (uint32_t i = 0; i < db.size(); ++i) brute.Offer(i, oracle(i));
    const auto expected = std::move(brute).TakeNeighbors();
    for (size_t i = 0; i < expected.size(); ++i) {
      if (got[i].distance != expected[i].distance) erp_exact = false;
    }
  }
  std::printf("    ERP/VP-tree: %.3f pruning power, exact=%s\n",
              1.0 - static_cast<double>(erp_calls) /
                        static_cast<double>(queries.size() * db.size()),
              erp_exact ? "yes" : "NO");

  // EDR under the same VP-tree: pruning but no guarantee.
  const VpTree edr_tree(db.size(), [&db, eps](uint32_t a, uint32_t b) {
    return static_cast<double>(EdrDistance(db[a], db[b], eps));
  });
  size_t edr_calls = 0;
  size_t misses = 0;
  for (const Trajectory& q : queries) {
    const auto oracle = [&db, &q, eps](uint32_t i) {
      return static_cast<double>(EdrDistance(q, db[i], eps));
    };
    size_t calls = 0;
    const auto got = edr_tree.Knn(oracle, config.k, &calls);
    edr_calls += calls;
    KnnResultList brute(config.k);
    for (uint32_t i = 0; i < db.size(); ++i) brute.Offer(i, oracle(i));
    const auto expected = std::move(brute).TakeNeighbors();
    for (size_t i = 0; i < expected.size(); ++i) {
      if (got[i].distance != expected[i].distance) {
        ++misses;
        break;
      }
    }
  }
  std::printf("    EDR/VP-tree: %.3f pruning power, %zu/%zu queries with "
              "false dismissals\n",
              1.0 - static_cast<double>(edr_calls) /
                        static_cast<double>(queries.size() * db.size()),
              misses, queries.size());
  std::printf("    (the paper's lossless EDR filters exist precisely "
              "because this number need not be 0)\n");
}

void AblationLcssTransfer(const TrajectoryDataset& db,
                          const bench::BenchConfig& config, double eps) {
  std::printf("\n[7] pruning transferred to LCSS (the paper's 'details "
              "omitted')\n");
  std::printf("%s\n", FormatWorkloadHeader().c_str());
  const std::vector<Trajectory> queries =
      SampleQueries(db, std::min<size_t>(config.queries, 3));
  const LcssKnnSearcher baseline(db, eps, LcssFilter::kNone);
  std::vector<KnnResult> gt;
  for (const Trajectory& q : queries) gt.push_back(baseline.Knn(q, config.k));
  const double base = MeanSeconds(gt);

  for (const LcssFilter filter :
       {LcssFilter::kHistogram, LcssFilter::kQgram, LcssFilter::kBoth}) {
    const LcssKnnSearcher searcher(db, eps, filter);
    NamedSearcher named{searcher.name(),
                        [&searcher](const Trajectory& q, size_t k) {
                          return searcher.Knn(q, k);
                        }};
    const WorkloadResult r = RunWorkload(named, queries, config.k, &gt, base);
    std::printf("%s\n", FormatWorkloadRow(r).c_str());
  }
}

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  const auto config = edr::bench::BenchConfig::FromArgs(argc, argv);
  std::printf("Ablation studies (NHL-like data)\n");
  edr::TrajectoryDataset db =
      edr::GenNhlLike(config.full ? 2000 : 600, 30, 256, 19);
  db.NormalizeAll();
  const double eps = db.SuggestedEpsilon();
  edr::QueryEngine engine(db, eps);

  edr::AblationEarlyAbandon(engine, config);
  edr::AblationBandedEdr(db, config, eps);
  edr::AblationCseVsNtr(engine, config);
  edr::AblationLowerBoundTightness(db, eps);
  edr::AblationSimplification(db, config, eps);
  edr::AblationMetricIndex(db, config, eps);
  edr::AblationLcssTransfer(db, config, eps);
  return 0;
}
