// Reproduces Table 2: "Classification results of five distance functions".
//
// Protocol (Section 3.2, after Keogh & Kasetty): corrupt each labeled
// data set with interpolated Gaussian noise (10-20% of the length) and
// local time shifting, generate many distinct corrupted data sets from
// each seed set, and measure leave-one-out 1-NN classification error.
//
// Paper shape to reproduce: EDR lowest error, LCSS next, DTW/ERP in the
// middle, Euclidean worst. The paper averages over 50 corrupted sets; we
// default to 10 (pass --full for 50).

#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"
#include "data/noise.h"
#include "distance/distance.h"
#include "eval/classification.h"

namespace edr {
namespace {

void RunDataset(const char* name, const TrajectoryDataset& base,
                size_t num_seeds) {
  double error_sum[5] = {0, 0, 0, 0, 0};
  for (uint64_t seed = 1; seed <= num_seeds; ++seed) {
    TrajectoryDataset corrupted =
        CorruptDataset(base, NoiseOptions{}, TimeShiftOptions{}, seed);
    corrupted.NormalizeAll();
    DistanceOptions options;
    options.epsilon = corrupted.SuggestedEpsilon();
    int i = 0;
    for (const DistanceKind kind : kAllDistanceKinds) {
      error_sum[i++] +=
          LeaveOneOutError(corrupted, MakeDistance(kind, options));
    }
  }
  std::printf("%-10s", name);
  for (double e : error_sum) {
    std::printf(" %6.2f", e / static_cast<double>(num_seeds));
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  const auto config = edr::bench::BenchConfig::FromArgs(argc, argv);
  const size_t seeds = config.full ? 50 : 10;
  std::printf(
      "Table 2: avg leave-one-out error under noise + local time shifting "
      "(%zu corrupted sets per base)\n",
      seeds);
  std::printf("%-10s %6s %6s %6s %6s %6s\n", "dataset", "Eu", "DTW", "ERP",
              "LCSS", "EDR");
  edr::RunDataset("CM", edr::GenCameraMouseLike(3, 7), seeds);
  edr::RunDataset("ASL", edr::GenAslLike(10, 5, 11), seeds);
  return 0;
}
