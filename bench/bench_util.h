#ifndef EDR_BENCH_BENCH_UTIL_H_
#define EDR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "eval/metrics.h"
#include "obs/obs.h"
#include "query/engine.h"

namespace edr {
namespace bench {

/// Hardware concurrency as reported by the host (0 is mapped to 1).
inline unsigned HostCores() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Prints a warning banner when the host has a single core: parallel
/// speedup numbers measured here are meaningless (every "parallel" run
/// time-slices one core) and should not be quoted.
inline void WarnIfSingleCore() {
  if (HostCores() <= 1) {
    std::fprintf(stderr,
                 "WARNING: single-core host (host_cores=1); parallel "
                 "speedups below are not meaningful.\n");
  }
}

/// Emits the host-core fields every BENCH_*.json records — two top-level
/// lines `"host_cores": N` and `"single_core_warning": bool`, both
/// comma-terminated — so consumers can discount parallel numbers measured
/// on starved hosts. The single shared emitter: benches must not print
/// these fields themselves.
inline void FprintHostJson(std::FILE* out) {
  std::fprintf(out, "  \"host_cores\": %u,\n  \"single_core_warning\": %s,\n",
               HostCores(), HostCores() <= 1 ? "true" : "false");
}

/// Scale control for the paper-reproduction benches.
///
/// The paper's largest workloads (Mixed: 32768 trajectories up to length
/// 2000; random walk: 100000 trajectories) take hours with quadratic EDR
/// on one core, so every bench defaults to a reduced scale that preserves
/// the *shape* of the results and finishes in seconds to minutes. Pass
/// `--full` (or set EDR_BENCH_FULL=1) to run at paper scale;
/// EDR_BENCH_QUERIES overrides the query count.
struct BenchConfig {
  bool full = false;
  size_t queries = 5;
  size_t k = 20;  // The paper reports k = 20.

  static BenchConfig FromArgs(int argc, char** argv) {
    BenchConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) config.full = true;
    }
    if (const char* env = std::getenv("EDR_BENCH_FULL");
        env != nullptr && env[0] == '1') {
      config.full = true;
    }
    if (const char* env = std::getenv("EDR_BENCH_QUERIES");
        env != nullptr) {
      config.queries = static_cast<size_t>(std::atoi(env));
      if (config.queries == 0) config.queries = 1;
    }
    return config;
  }
};

/// Runs one dataset through a list of searchers, printing paper-style
/// rows: pruning power, mean per-query latency, speedup vs sequential
/// scan, and a losslessness certificate. Returns the results.
inline std::vector<WorkloadResult> RunSuite(
    const std::string& title, QueryEngine& engine,
    const std::vector<NamedSearcher>& searchers, const BenchConfig& config) {
  std::printf("\n-- %s (N=%zu, k=%zu, %zu queries, eps=%.3g)\n",
              title.c_str(), engine.db().size(), config.k, config.queries,
              engine.epsilon());
  const std::vector<Trajectory> queries =
      SampleQueries(engine.db(), config.queries);
  const std::vector<KnnResult> gt =
      RunGroundTruth(engine, queries, config.k);
  const double base = MeanSeconds(gt);
  std::printf("%s\n", FormatWorkloadHeader().c_str());
  WorkloadResult seq;
  seq.method = "SeqScan";
  seq.queries = queries.size();
  seq.avg_seconds = base;
  seq.speedup = 1.0;
  std::vector<double> seq_latencies;
  seq_latencies.reserve(gt.size());
  for (const KnnResult& r : gt) {
    seq_latencies.push_back(r.stats.elapsed_seconds);
  }
  FillLatencyPercentiles(&seq, std::move(seq_latencies));
  for (const KnnResult& r : gt) {
    seq.stage_totals.Add(r.stats.stages);
    seq.db_size_total += r.stats.db_size;
  }
  std::printf("%s\n", FormatWorkloadRow(seq).c_str());

  std::vector<WorkloadResult> results;
  for (const NamedSearcher& s : searchers) {
    const WorkloadResult r = RunWorkload(s, queries, config.k, &gt, base);
    std::printf("%s\n", FormatWorkloadRow(r).c_str());
    std::fflush(stdout);
    results.push_back(r);
  }

  // Stage-decomposition companion table: which filter earned the pruning
  // power above. Compiled out with the observability layer.
  if constexpr (kObsEnabled) {
    std::printf("%s\n", FormatStageHeader().c_str());
    std::printf("%s\n", FormatStageRow(seq).c_str());
    for (const WorkloadResult& r : results) {
      std::printf("%s\n", FormatStageRow(r).c_str());
    }
    std::fflush(stdout);
  }
  return results;
}

}  // namespace bench
}  // namespace edr

#endif  // EDR_BENCH_BENCH_UTIL_H_
