// Microbenchmarks for the pruning substrates: R*-tree and B+-tree builds
// and probes, Q-gram extraction and merge-join counting, and histogram
// distance computation.

#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "index/bplus_tree.h"
#include "index/rstar_tree.h"
#include "pruning/histogram.h"
#include "distance/erp.h"
#include "index/vp_tree.h"
#include "pruning/pruning3.h"
#include "pruning/qgram.h"
#include "query/subtrajectory.h"

namespace edr {
namespace {

void BM_RStarTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<Point2> points;
  for (int i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(-10, 10), rng.Uniform(-10, 10)});
  }
  for (auto _ : state) {
    RStarTree tree;
    for (int i = 0; i < n; ++i) {
      tree.Insert(points[static_cast<size_t>(i)], static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RStarTreeInsert)->Range(1024, 65536);

void BM_RStarTreeRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  RStarTree tree;
  for (int i = 0; i < n; ++i) {
    tree.Insert({rng.Uniform(-10, 10), rng.Uniform(-10, 10)},
                static_cast<uint32_t>(i));
  }
  size_t sink = 0;
  for (auto _ : state) {
    const Point2 c{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    tree.SearchRange(Rect::Around(c, 0.25),
                     [&sink](uint32_t) { ++sink; });
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RStarTreeRangeQuery)->Range(1024, 65536);

void BM_RStarTreeBulkLoad(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(12);
  std::vector<std::pair<Point2, uint32_t>> items;
  for (int i = 0; i < n; ++i) {
    items.push_back(
        {{rng.Uniform(-10, 10), rng.Uniform(-10, 10)},
         static_cast<uint32_t>(i)});
  }
  for (auto _ : state) {
    std::vector<std::pair<Point2, uint32_t>> copy = items;
    RStarTree tree = RStarTree::BulkLoad(std::move(copy));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RStarTreeBulkLoad)->Range(1024, 65536);

void BM_RStarTreeDelete(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  std::vector<std::pair<Point2, uint32_t>> items;
  for (int i = 0; i < n; ++i) {
    items.push_back(
        {{rng.Uniform(-10, 10), rng.Uniform(-10, 10)},
         static_cast<uint32_t>(i)});
  }
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::pair<Point2, uint32_t>> copy = items;
    RStarTree tree = RStarTree::BulkLoad(std::move(copy));
    state.ResumeTiming();
    for (int i = 0; i < n; i += 2) {
      tree.Delete(items[static_cast<size_t>(i)].first,
                  items[static_cast<size_t>(i)].second);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * (n / 2));
}
BENCHMARK(BM_RStarTreeDelete)->Range(1024, 16384);

void BM_BPlusTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<double> keys;
  for (int i = 0; i < n; ++i) keys.push_back(rng.Uniform(-10, 10));
  for (auto _ : state) {
    BPlusTree tree;
    for (int i = 0; i < n; ++i) {
      tree.Insert(keys[static_cast<size_t>(i)], static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeInsert)->Range(1024, 65536);

void BM_BPlusTreeRangeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  BPlusTree tree;
  for (int i = 0; i < n; ++i) {
    tree.Insert(rng.Uniform(-10, 10), static_cast<uint32_t>(i));
  }
  size_t sink = 0;
  for (auto _ : state) {
    const double lo = rng.Uniform(-10, 10);
    tree.SearchRange(lo, lo + 0.5, [&sink](double, uint32_t) { ++sink; });
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_BPlusTreeRangeQuery)->Range(1024, 65536);

Trajectory MakeWalk(uint64_t seed, size_t length) {
  Rng rng(seed);
  Trajectory t;
  Point2 pos{0.0, 0.0};
  for (size_t i = 0; i < length; ++i) {
    t.Append(pos);
    pos.x += rng.Gaussian(0.0, 0.4);
    pos.y += rng.Gaussian(0.0, 0.4);
  }
  return t;
}

void BM_QgramExtractAndSort(benchmark::State& state) {
  const Trajectory t = MakeWalk(5, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<Point2> means = MeanValueQgrams(t, 1);
    SortMeans(means);
    benchmark::DoNotOptimize(means.data());
  }
}
BENCHMARK(BM_QgramExtractAndSort)->Range(64, 2048);

void BM_QgramMergeJoinCount(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  std::vector<Point2> a = MeanValueQgrams(MakeWalk(6, len), 1);
  std::vector<Point2> b = MeanValueQgrams(MakeWalk(7, len), 1);
  SortMeans(a);
  SortMeans(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountMatchingMeans2D(a, b, 0.25));
  }
}
BENCHMARK(BM_QgramMergeJoinCount)->Range(64, 2048);

void BM_HistogramDistance2D(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  TrajectoryDataset db;
  db.Add(MakeWalk(8, len));
  db.Add(MakeWalk(9, len));
  const HistogramGrid grid = HistogramGrid::For(db.Stats(), 0.25);
  const std::vector<int> a = BuildHistogram2D(db[0], grid);
  const std::vector<int> b = BuildHistogram2D(db[1], grid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HistogramDistance2D(a, b, grid));
  }
}
BENCHMARK(BM_HistogramDistance2D)->Range(64, 2048);

void BM_HistogramDistance1D(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  TrajectoryDataset db;
  db.Add(MakeWalk(10, len));
  db.Add(MakeWalk(11, len));
  const HistogramGrid grid = HistogramGrid::For(db.Stats(), 0.25);
  const std::vector<int> a = BuildHistogram1D(db[0], grid, true);
  const std::vector<int> b = BuildHistogram1D(db[1], grid, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HistogramDistance1D(a, b));
  }
}
BENCHMARK(BM_HistogramDistance1D)->Range(64, 2048);

void BM_VpTreeKnnErp(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(14);
  std::vector<Trajectory> db;
  for (size_t i = 0; i < n; ++i) db.push_back(MakeWalk(rng.NextU64(), 24));
  const VpTree tree(n, [&db](uint32_t a, uint32_t b) {
    return ErpDistance(db[a], db[b]);
  });
  size_t q = 0;
  for (auto _ : state) {
    const Trajectory& query = db[q++ % n];
    benchmark::DoNotOptimize(tree.Knn(
        [&db, &query](uint32_t i) { return ErpDistance(query, db[i]); },
        10));
  }
}
BENCHMARK(BM_VpTreeKnnErp)->Range(64, 1024);

void BM_SubtrajectoryMatch(benchmark::State& state) {
  const size_t text_len = static_cast<size_t>(state.range(0));
  const Trajectory text = MakeWalk(15, text_len);
  const Trajectory query = MakeWalk(16, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BestSubtrajectoryMatch(query, text, 0.25));
  }
}
BENCHMARK(BM_SubtrajectoryMatch)->Range(128, 8192);

void BM_Knn3Searcher(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(17);
  std::vector<Trajectory3> db;
  for (size_t i = 0; i < n; ++i) {
    Trajectory3 t;
    Point3 pos{0.0, 0.0, 0.0};
    for (int j = 0; j < 32; ++j) {
      t.Append(pos);
      pos.x += rng.Gaussian(0.0, 0.4);
      pos.y += rng.Gaussian(0.0, 0.4);
      pos.z += rng.Gaussian(0.0, 0.4);
    }
    db.push_back(std::move(t));
  }
  const Knn3Searcher searcher(db, 0.25);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.Knn(db[q++ % n], 10));
  }
}
BENCHMARK(BM_Knn3Searcher)->Range(64, 1024);

}  // namespace
}  // namespace edr

BENCHMARK_MAIN();
