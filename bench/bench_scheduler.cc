// Adaptive batch scheduler bench: batch throughput under the scheduler
// versus the sequential path, cold-versus-warm query-feature-cache
// latency for repeated queries, fused-versus-unfused filter
// throughput (one multi-query sweep over the database against the
// per-query sweeps it replaces, plus the scheduled batch with fusion
// forced off), and workload-aware grouping (similarity-aware group
// formation versus FIFO packing on a clustered backlog, plus the
// fused-plan cache cold versus warm), on a random-walk database.
//
// Emits JSON (stdout, or the file named by the first non-flag argument):
//
//   ./bench/bench_scheduler BENCH_scheduler.json
//   ./bench/bench_scheduler --smoke        # tiny workload for CI
//
// Every scheduled batch is certified bit-identical to the sequential
// per-query loop before its time is reported, and the cached passes are
// certified against the uncached answers — the exit code reflects the
// certification, not the latency deltas. "host_cores" records the
// machine's core count: on a single-core host the scheduler can only
// time-slice, so throughput deltas there measure overhead, not speedup.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cpu.h"
#include "core/trajectory.h"
#include "data/generators.h"
#include "pruning/histogram.h"
#include "pruning/qgram.h"
#include "query/engine.h"
#include "query/feature_cache.h"
#include "query/plan_cache.h"
#include "query/scheduler.h"
#include "query/thread_pool.h"

namespace edr {
namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool SameNeighbors(const KnnResult& a, const KnnResult& b) {
  if (a.neighbors.size() != b.neighbors.size()) return false;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    if (!(a.neighbors[i] == b.neighbors[i])) return false;
  }
  return true;
}

struct SchedulerRow {
  std::string method;
  double seq_seconds = 0.0;       ///< sequential per-query loop, total
  double adaptive_seconds = 0.0;  ///< RunScheduled with default policy
  SchedulerStats stats;
  bool identical = true;
};

SchedulerRow MeasureScheduler(const NamedSearcher& searcher,
                              const std::vector<Trajectory>& queries,
                              size_t k, ThreadPool& pool) {
  SchedulerRow row;
  row.method = searcher.name;

  // Warm-up pass sizes scratch buffers so neither side pays allocation.
  for (const Trajectory& q : queries) searcher.search(q, k);

  auto start = std::chrono::steady_clock::now();
  std::vector<KnnResult> reference;
  reference.reserve(queries.size());
  for (const Trajectory& q : queries) {
    reference.push_back(searcher.search(q, k));
  }
  row.seq_seconds = SecondsSince(start);

  SchedulerPolicy policy;
  start = std::chrono::steady_clock::now();
  const std::vector<KnnResult> scheduled =
      RunScheduled(searcher, queries, k, policy, &pool, nullptr, &row.stats);
  row.adaptive_seconds = SecondsSince(start);

  for (size_t i = 0; i < queries.size(); ++i) {
    row.identical = row.identical && SameNeighbors(reference[i], scheduled[i]);
  }
  std::fprintf(stderr,
               "%-6s seq=%.3fms adaptive=%.3fms waves=%zu widened=%zu "
               "max_budget=%u identical=%s\n",
               row.method.c_str(), row.seq_seconds * 1e3,
               row.adaptive_seconds * 1e3, row.stats.waves,
               row.stats.widened_queries, row.stats.max_budget,
               row.identical ? "yes" : "NO");
  return row;
}

struct CacheRow {
  std::string method;
  double cold_ms_per_query = 0.0;  ///< fresh feature build every pass
  double warm_ms_per_query = 0.0;  ///< features served from the cache
  FeatureCache::Stats stats;
  bool identical = true;
};

CacheRow MeasureCache(const NamedSearcher& searcher,
                      const std::vector<Trajectory>& queries, size_t k,
                      size_t passes) {
  CacheRow row;
  row.method = searcher.name;

  std::vector<KnnResult> reference;
  reference.reserve(queries.size());
  for (const Trajectory& q : queries) {
    reference.push_back(searcher.search(q, k));
  }

  FeatureCache cache(2 * queries.size() + 8);
  KnnOptions cached;
  cached.feature_cache = &cache;

  // Cold passes rebuild every feature (the cache is cleared between
  // passes); warm passes replay the same queries against the filled
  // cache. Taking the best pass on each side filters scheduler noise.
  double cold_best = 0.0;
  for (size_t pass = 0; pass < passes; ++pass) {
    cache.Clear();
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < queries.size(); ++i) {
      const KnnResult r = searcher.search_with(queries[i], k, cached);
      row.identical = row.identical && SameNeighbors(reference[i], r);
    }
    const double elapsed = SecondsSince(start);
    cold_best = pass == 0 ? elapsed : std::min(cold_best, elapsed);
  }
  double warm_best = 0.0;
  for (size_t pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < queries.size(); ++i) {
      const KnnResult r = searcher.search_with(queries[i], k, cached);
      row.identical = row.identical && SameNeighbors(reference[i], r);
    }
    const double elapsed = SecondsSince(start);
    warm_best = pass == 0 ? elapsed : std::min(warm_best, elapsed);
  }
  const double n = static_cast<double>(queries.size());
  row.cold_ms_per_query = cold_best * 1e3 / n;
  row.warm_ms_per_query = warm_best * 1e3 / n;
  row.stats = cache.stats();
  std::fprintf(stderr,
               "%-6s cold=%.3fms/q warm=%.3fms/q hits=%llu misses=%llu "
               "identical=%s\n",
               row.method.c_str(), row.cold_ms_per_query,
               row.warm_ms_per_query,
               static_cast<unsigned long long>(row.stats.hits),
               static_cast<unsigned long long>(row.stats.misses),
               row.identical ? "yes" : "NO");
  return row;
}

struct FusedKernelRow {
  std::string kernel;
  size_t group = 0;
  size_t repeats = 0;
  double unfused_seconds = 0.0;  ///< best pass, per-query passes, total
  double fused_seconds = 0.0;    ///< best pass, one fused pass, total
  bool identical = true;
};

/// Jittered near-duplicates of one seed query: the batched workload the
/// fused sweep targets. Concurrent queries over the same region share most
/// of their histogram bins, so the column side of the fused sweep
/// accumulates each distinct bin once for the whole group and the posting
/// side streams the database once instead of once per member.
std::vector<Trajectory> JitterGroup(const Trajectory& seed, size_t group) {
  std::vector<Trajectory> out;
  out.reserve(group);
  for (size_t f = 0; f < group; ++f) {
    Trajectory t = seed;
    for (size_t j = 0; j < t.size(); ++j) {
      t[j].x += 1e-4 * static_cast<double>((f * 31 + j) % 5);
      t[j].y += 1e-4 * static_cast<double>((f * 17 + j) % 7);
    }
    out.push_back(std::move(t));
  }
  return out;
}

void PrintFusedRow(const FusedKernelRow& row) {
  const double speedup =
      row.fused_seconds > 0.0 ? row.unfused_seconds / row.fused_seconds : 0.0;
  std::fprintf(stderr,
               "%-22s group=%zu unfused=%.3fms fused=%.3fms speedup=%.2f "
               "identical=%s\n",
               row.kernel.c_str(), row.group, row.unfused_seconds * 1e3,
               row.fused_seconds * 1e3, speedup, row.identical ? "yes" : "NO");
}

/// Filter throughput of the fused histogram sweep versus the per-query
/// sweeps it replaces: `group` near-duplicate queries, each side timed as
/// the best of `passes` passes of `repeats` full-database evaluations.
FusedKernelRow MeasureFusedHistogram(const HistogramTable& table,
                                     const std::vector<Trajectory>& group,
                                     size_t passes, size_t repeats) {
  FusedKernelRow row;
  row.kernel = "histogram_sweep_2d";
  row.group = group.size();
  row.repeats = repeats;

  std::vector<HistogramTable::QueryHistogram> qhs;
  qhs.reserve(group.size());
  for (const Trajectory& q : group) qhs.push_back(table.MakeQueryHistogram(q));
  std::vector<const HistogramTable::QueryHistogram*> qptrs;
  for (const auto& qh : qhs) qptrs.push_back(&qh);

  std::vector<std::vector<int>> unfused(group.size());
  std::vector<std::vector<int>> fused(group.size());
  std::vector<std::vector<int>*> outs;
  for (auto& v : fused) outs.push_back(&v);

  // Warm-up sizes the output vectors and faults the table in.
  for (size_t f = 0; f < qhs.size(); ++f) {
    table.FastLowerBoundSweep(qhs[f], &unfused[f]);
  }
  table.FastLowerBoundSweepFused(qptrs, outs);
  for (size_t f = 0; f < qhs.size(); ++f) {
    row.identical = row.identical && unfused[f] == fused[f];
  }

  for (size_t pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t r = 0; r < repeats; ++r) {
      for (size_t f = 0; f < qhs.size(); ++f) {
        table.FastLowerBoundSweep(qhs[f], &unfused[f]);
      }
    }
    const double elapsed = SecondsSince(start);
    row.unfused_seconds =
        pass == 0 ? elapsed : std::min(row.unfused_seconds, elapsed);
  }
  for (size_t pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t r = 0; r < repeats; ++r) {
      table.FastLowerBoundSweepFused(qptrs, outs);
    }
    const double elapsed = SecondsSince(start);
    row.fused_seconds =
        pass == 0 ? elapsed : std::min(row.fused_seconds, elapsed);
  }
  PrintFusedRow(row);
  return row;
}

/// Same comparison for the Q-gram merge-count filter: unfused is the
/// per-query database scan PS2 runs (each member streams every posting
/// slice), fused visits each slice once for the whole group.
FusedKernelRow MeasureFusedQgram(const QgramMeansTable& table,
                                 const std::vector<Trajectory>& group,
                                 double epsilon, int q, size_t passes,
                                 size_t repeats) {
  FusedKernelRow row;
  row.kernel = "qgram_merge_count_2d";
  row.group = group.size();
  row.repeats = repeats;

  std::vector<std::vector<Point2>> means;
  means.reserve(group.size());
  for (const Trajectory& t : group) {
    means.push_back(MeanValueQgrams(t, q));
    SortMeans(means.back());
  }
  std::vector<const std::vector<Point2>*> mptrs;
  for (const auto& m : means) mptrs.push_back(&m);

  const size_t n = table.size();
  std::vector<std::vector<size_t>> unfused(group.size(),
                                           std::vector<size_t>(n, 0));
  std::vector<size_t> counts(group.size(), 0);
  std::vector<std::vector<size_t>> fused(group.size(),
                                         std::vector<size_t>(n, 0));

  for (size_t f = 0; f < means.size(); ++f) {
    for (uint32_t id = 0; id < n; ++id) {
      unfused[f][id] = table.CountMatches2D(means[f], epsilon, id);
    }
  }
  for (uint32_t id = 0; id < n; ++id) {
    table.CountMatchesFused2D(mptrs, epsilon, id, counts.data());
    for (size_t f = 0; f < means.size(); ++f) fused[f][id] = counts[f];
  }
  for (size_t f = 0; f < means.size(); ++f) {
    row.identical = row.identical && unfused[f] == fused[f];
  }

  for (size_t pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t r = 0; r < repeats; ++r) {
      for (size_t f = 0; f < means.size(); ++f) {
        for (uint32_t id = 0; id < n; ++id) {
          unfused[f][id] = table.CountMatches2D(means[f], epsilon, id);
        }
      }
    }
    const double elapsed = SecondsSince(start);
    row.unfused_seconds =
        pass == 0 ? elapsed : std::min(row.unfused_seconds, elapsed);
  }
  for (size_t pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t r = 0; r < repeats; ++r) {
      for (uint32_t id = 0; id < n; ++id) {
        table.CountMatchesFused2D(mptrs, epsilon, id, counts.data());
        for (size_t f = 0; f < means.size(); ++f) fused[f][id] = counts[f];
      }
    }
    const double elapsed = SecondsSince(start);
    row.fused_seconds =
        pass == 0 ? elapsed : std::min(row.fused_seconds, elapsed);
  }
  PrintFusedRow(row);
  return row;
}

struct FusedBatchRow {
  std::string method;
  double unfused_seconds = 0.0;  ///< RunScheduled, max_fusion = 1, best pass
  double fused_seconds = 0.0;    ///< RunScheduled, default policy, best pass
  SchedulerStats stats;          ///< stats of the fused run
  bool identical = true;
};

/// End-to-end scheduled batch with fusion on (default policy) versus
/// forced off (max_fusion = 1), certified against each other and the
/// sequential loop. `stats.fused_groups > 0` is the "fused path selected"
/// assertion the CI smoke leg checks.
FusedBatchRow MeasureFusedBatch(const NamedSearcher& searcher,
                                const std::vector<Trajectory>& queries,
                                size_t k, ThreadPool& pool, size_t passes) {
  FusedBatchRow row;
  row.method = searcher.name;

  std::vector<KnnResult> reference;
  reference.reserve(queries.size());
  for (const Trajectory& q : queries) {
    reference.push_back(searcher.search(q, k));
  }

  SchedulerPolicy unfused_policy;
  unfused_policy.max_fusion = 1;
  SchedulerPolicy fused_policy;
  for (size_t pass = 0; pass < passes; ++pass) {
    auto start = std::chrono::steady_clock::now();
    const std::vector<KnnResult> unfused = RunScheduled(
        searcher, queries, k, unfused_policy, &pool, nullptr, nullptr);
    const double unfused_elapsed = SecondsSince(start);
    row.unfused_seconds = pass == 0
                              ? unfused_elapsed
                              : std::min(row.unfused_seconds, unfused_elapsed);

    SchedulerStats stats;
    start = std::chrono::steady_clock::now();
    const std::vector<KnnResult> fused = RunScheduled(
        searcher, queries, k, fused_policy, &pool, nullptr, &stats);
    const double fused_elapsed = SecondsSince(start);
    if (pass == 0 || fused_elapsed < row.fused_seconds) {
      row.fused_seconds = fused_elapsed;
      row.stats = stats;
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      row.identical = row.identical && SameNeighbors(reference[i], unfused[i]) &&
                      SameNeighbors(reference[i], fused[i]);
    }
  }
  std::fprintf(stderr,
               "%-22s unfused=%.3fms fused=%.3fms groups=%zu "
               "fused_queries=%zu identical=%s\n",
               row.method.c_str(), row.unfused_seconds * 1e3,
               row.fused_seconds * 1e3, row.stats.fused_groups,
               row.stats.fused_queries, row.identical ? "yes" : "NO");
  return row;
}

struct GroupingRow {
  std::string method;
  double fifo_seconds = 0.0;        ///< similarity_grouping = false, best pass
  double similarity_seconds = 0.0;  ///< default policy, best pass
  double fifo_shared_fraction = 0.0;
  double similarity_shared_fraction = 0.0;
  SchedulerStats similarity_stats;  ///< stats of the best similarity run
  bool identical = true;
};

/// Shared-bin fraction averaged over the fused groups a run dispatched.
double AvgSharedFraction(const SchedulerStats& stats) {
  return stats.fused_groups > 0
             ? stats.shared_fraction_sum /
                   static_cast<double>(stats.fused_groups)
             : 0.0;
}

/// Similarity-aware group formation versus FIFO packing on a clustered
/// backlog (several jitter families interleaved round-robin, so FIFO
/// groups straddle clusters while the similarity grouper can recover
/// them). Both runs are certified bit-identical to the sequential loop;
/// the interesting deltas are the average shared-bin fraction and the
/// fused batch time.
GroupingRow MeasureGrouping(const NamedSearcher& searcher,
                            const std::vector<Trajectory>& queries, size_t k,
                            ThreadPool& pool, size_t passes) {
  GroupingRow row;
  row.method = searcher.name;

  std::vector<KnnResult> reference;
  reference.reserve(queries.size());
  for (const Trajectory& q : queries) {
    reference.push_back(searcher.search(q, k));
  }

  SchedulerPolicy fifo_policy;
  fifo_policy.similarity_grouping = false;
  SchedulerPolicy similarity_policy;
  for (size_t pass = 0; pass < passes; ++pass) {
    SchedulerStats fifo_stats;
    auto start = std::chrono::steady_clock::now();
    const std::vector<KnnResult> fifo = RunScheduled(
        searcher, queries, k, fifo_policy, &pool, nullptr, &fifo_stats);
    const double fifo_elapsed = SecondsSince(start);
    if (pass == 0 || fifo_elapsed < row.fifo_seconds) {
      row.fifo_seconds = fifo_elapsed;
      row.fifo_shared_fraction = AvgSharedFraction(fifo_stats);
    }

    SchedulerStats similarity_stats;
    start = std::chrono::steady_clock::now();
    const std::vector<KnnResult> similarity =
        RunScheduled(searcher, queries, k, similarity_policy, &pool, nullptr,
                     &similarity_stats);
    const double similarity_elapsed = SecondsSince(start);
    if (pass == 0 || similarity_elapsed < row.similarity_seconds) {
      row.similarity_seconds = similarity_elapsed;
      row.similarity_shared_fraction = AvgSharedFraction(similarity_stats);
      row.similarity_stats = similarity_stats;
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      row.identical = row.identical && SameNeighbors(reference[i], fifo[i]) &&
                      SameNeighbors(reference[i], similarity[i]);
    }
  }
  std::fprintf(stderr,
               "%-22s fifo=%.3fms similarity=%.3fms shared=%.3f->%.3f "
               "groups=%zu identical=%s\n",
               row.method.c_str(), row.fifo_seconds * 1e3,
               row.similarity_seconds * 1e3, row.fifo_shared_fraction,
               row.similarity_shared_fraction,
               row.similarity_stats.group_similarity,
               row.identical ? "yes" : "NO");
  return row;
}

struct PlanCacheRow {
  std::string method;
  double cold_seconds = 0.0;  ///< empty cache: every group builds its plan
  double warm_seconds = 0.0;  ///< repeat workload: plans served, best pass
  FusedPlanCache::Stats cold_stats;
  FusedPlanCache::Stats warm_stats;
  bool identical = true;
};

/// Fused-plan cache, cold versus warm, through the production RunScheduled
/// path: the cold pass builds one plan per fusion group, the warm passes
/// replay the identical workload and must serve every plan from the cache.
PlanCacheRow MeasurePlanCache(const NamedSearcher& searcher,
                              const std::vector<Trajectory>& queries, size_t k,
                              ThreadPool& pool, size_t passes) {
  PlanCacheRow row;
  row.method = searcher.name;

  std::vector<KnnResult> reference;
  reference.reserve(queries.size());
  for (const Trajectory& q : queries) {
    reference.push_back(searcher.search(q, k));
  }

  FusedPlanCache plan_cache(64);
  SchedulerPolicy policy;
  for (size_t pass = 0; pass < passes; ++pass) {
    plan_cache.Clear();
    const auto start = std::chrono::steady_clock::now();
    const std::vector<KnnResult> cold =
        RunScheduled(searcher, queries, k, policy, &pool, nullptr, nullptr,
                     &plan_cache);
    const double elapsed = SecondsSince(start);
    row.cold_seconds = pass == 0 ? elapsed : std::min(row.cold_seconds, elapsed);
    for (size_t i = 0; i < queries.size(); ++i) {
      row.identical = row.identical && SameNeighbors(reference[i], cold[i]);
    }
  }
  row.cold_stats = plan_cache.stats();
  for (size_t pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    const std::vector<KnnResult> warm =
        RunScheduled(searcher, queries, k, policy, &pool, nullptr, nullptr,
                     &plan_cache);
    const double elapsed = SecondsSince(start);
    row.warm_seconds = pass == 0 ? elapsed : std::min(row.warm_seconds, elapsed);
    for (size_t i = 0; i < queries.size(); ++i) {
      row.identical = row.identical && SameNeighbors(reference[i], warm[i]);
    }
  }
  row.warm_stats = plan_cache.stats();
  std::fprintf(stderr,
               "%-22s plan cold=%.3fms warm=%.3fms hits=%llu->%llu "
               "misses=%llu identical=%s\n",
               row.method.c_str(), row.cold_seconds * 1e3,
               row.warm_seconds * 1e3,
               static_cast<unsigned long long>(row.cold_stats.hits),
               static_cast<unsigned long long>(row.warm_stats.hits),
               static_cast<unsigned long long>(row.warm_stats.misses),
               row.identical ? "yes" : "NO");
  return row;
}

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  using namespace edr;
  bench::WarnIfSingleCore();

  bool smoke = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
  }

  constexpr double kEps = 0.25;
  const size_t db_size = smoke ? 300 : 10000;
  const size_t num_queries = smoke ? 6 : 24;
  const size_t k = 10;
  const size_t cache_passes = smoke ? 2 : 5;

  RandomWalkOptions walk_options;
  walk_options.count = db_size;
  walk_options.min_length = 20;
  walk_options.max_length = 60;
  walk_options.seed = 17;
  const TrajectoryDataset db = GenRandomWalk(walk_options);
  std::vector<Trajectory> queries;
  for (size_t q = 0; q < num_queries; ++q) {
    queries.push_back(db[(q * db.size()) / num_queries]);
  }

  ThreadPool pool(8);
  QueryEngine engine(db, kEps);
  KnnOptions bound;
  bound.pool = &pool;
  CombinedOptions combined_options;
  combined_options.max_triangle = 100;
  const std::vector<NamedSearcher> searchers = {
      engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                           HistogramScan::kSorted, bound),
      engine.MakeQgram(QgramVariant::kMerge2D, 1, bound),
      engine.MakeCombined(combined_options, bound),
  };

  bool all_identical = true;
  std::string sched_body;
  std::string cache_body;
  char buf[512];
  for (size_t m = 0; m < searchers.size(); ++m) {
    const SchedulerRow s = MeasureScheduler(searchers[m], queries, k, pool);
    all_identical = all_identical && s.identical;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"method\": \"%s\", \"seq_ms_total\": %.3f, "
        "\"adaptive_ms_total\": %.3f, \"speedup_vs_seq\": %.2f, "
        "\"waves\": %zu, \"wave_queries\": %zu, \"widened_queries\": %zu, "
        "\"max_budget\": %u, \"identical\": %s}%s\n",
        s.method.c_str(), s.seq_seconds * 1e3, s.adaptive_seconds * 1e3,
        s.adaptive_seconds > 0.0 ? s.seq_seconds / s.adaptive_seconds : 0.0,
        s.stats.waves, s.stats.wave_queries, s.stats.widened_queries,
        s.stats.max_budget, s.identical ? "true" : "false",
        m + 1 < searchers.size() ? "," : "");
    sched_body += buf;

    const CacheRow c = MeasureCache(searchers[m], queries, k, cache_passes);
    all_identical = all_identical && c.identical;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"method\": \"%s\", \"cold_ms_per_query\": %.3f, "
        "\"warm_ms_per_query\": %.3f, \"warm_faster\": %s, "
        "\"cache_hits\": %llu, \"cache_misses\": %llu, "
        "\"cache_evictions\": %llu, \"identical\": %s}%s\n",
        c.method.c_str(), c.cold_ms_per_query, c.warm_ms_per_query,
        c.warm_ms_per_query < c.cold_ms_per_query ? "true" : "false",
        static_cast<unsigned long long>(c.stats.hits),
        static_cast<unsigned long long>(c.stats.misses),
        static_cast<unsigned long long>(c.stats.evictions),
        c.identical ? "true" : "false", m + 1 < searchers.size() ? "," : "");
    cache_body += buf;
  }

  // Fused filter throughput: one fusion group of near-duplicate queries
  // (the workload the fused sweep targets) against the raw filter tables,
  // plus the scheduled batch with fusion on versus forced off. The kernel
  // rows keep a database long enough to amortize the fused plan build even
  // under --smoke: the saving is a database-streaming effect, and a
  // 300-trajectory pass would measure per-call setup instead of streaming.
  const size_t fused_passes = smoke ? 3 : 5;
  const size_t fused_repeats = smoke ? 10 : 20;
  const size_t fused_db_size = smoke ? 6000 : db_size;
  TrajectoryDataset fused_db_storage;
  const TrajectoryDataset* fused_db = &db;
  if (fused_db_size != db_size) {
    RandomWalkOptions fused_walks = walk_options;
    fused_walks.count = fused_db_size;
    fused_db_storage = GenRandomWalk(fused_walks);
    fused_db = &fused_db_storage;
  }
  const std::vector<Trajectory> fused_group =
      JitterGroup((*fused_db)[fused_db->size() / 2], kMaxFusionGroup);
  std::vector<Trajectory> fused_batch;
  for (size_t rep = 0; rep < 4; ++rep) {
    for (const Trajectory& q : fused_group) fused_batch.push_back(q);
  }

  std::string fused_body;
  {
    const HistogramTable hist_table(*fused_db, kEps,
                                    HistogramTable::Kind::k2D, 1);
    const QgramMeansTable qgram_table(*fused_db, /*q=*/1, /*dims=*/2);
    const FusedKernelRow kernel_rows[] = {
        MeasureFusedHistogram(hist_table, fused_group, fused_passes,
                              fused_repeats),
        MeasureFusedQgram(qgram_table, fused_group, kEps, /*q=*/1,
                          fused_passes, fused_repeats),
    };
    for (const FusedKernelRow& f : kernel_rows) {
      all_identical = all_identical && f.identical;
      std::snprintf(
          buf, sizeof(buf),
          "    {\"kernel\": \"%s\", \"db_size\": %zu, \"group\": %zu, "
          "\"repeats\": %zu, \"unfused_ms\": %.3f, \"fused_ms\": %.3f, "
          "\"fused_speedup\": %.2f, \"identical\": %s},\n",
          f.kernel.c_str(), fused_db->size(), f.group, f.repeats,
          f.unfused_seconds * 1e3, f.fused_seconds * 1e3,
          f.fused_seconds > 0.0 ? f.unfused_seconds / f.fused_seconds : 0.0,
          f.identical ? "true" : "false");
      fused_body += buf;
    }

    const FusedBatchRow b =
        MeasureFusedBatch(searchers[0], fused_batch, k, pool, fused_passes);
    all_identical = all_identical && b.identical;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"kernel\": \"scheduler_batch\", \"method\": \"%s\", "
        "\"batch\": %zu, \"unfused_ms\": %.3f, \"fused_ms\": %.3f, "
        "\"fused_speedup\": %.2f, \"fused_groups\": %zu, "
        "\"fused_queries\": %zu, \"fused_selected\": %s, "
        "\"identical\": %s}\n",
        b.method.c_str(), fused_batch.size(), b.unfused_seconds * 1e3,
        b.fused_seconds * 1e3,
        b.fused_seconds > 0.0 ? b.unfused_seconds / b.fused_seconds : 0.0,
        b.stats.fused_groups, b.stats.fused_queries,
        b.stats.fused_groups > 0 ? "true" : "false",
        b.identical ? "true" : "false");
    fused_body += buf;
  }

  // Workload-aware grouping: several jitter families interleaved
  // round-robin, so consecutive (FIFO) groups straddle clusters while the
  // similarity grouper can reassemble them — followed by the fused-plan
  // cache replaying that same clustered workload cold and warm.
  const size_t grouping_clusters = 4;
  std::vector<Trajectory> clustered;
  {
    std::vector<std::vector<Trajectory>> families;
    for (size_t c = 0; c < grouping_clusters; ++c) {
      families.push_back(JitterGroup(db[(c * db.size()) / grouping_clusters],
                                     kMaxFusionGroup));
    }
    for (size_t j = 0; j < kMaxFusionGroup; ++j) {
      for (size_t c = 0; c < grouping_clusters; ++c) {
        clustered.push_back(families[c][j]);
      }
    }
  }

  std::string grouping_body;
  const GroupingRow g =
      MeasureGrouping(searchers[0], clustered, k, pool, fused_passes);
  all_identical = all_identical && g.identical;
  const bool shared_fraction_raised =
      g.similarity_shared_fraction > g.fifo_shared_fraction;
  std::snprintf(
      buf, sizeof(buf),
      "    {\"kernel\": \"similarity_grouping\", \"method\": \"%s\", "
      "\"batch\": %zu, \"clusters\": %zu, \"fifo_ms\": %.3f, "
      "\"similarity_ms\": %.3f, \"fifo_shared_fraction\": %.4f, "
      "\"similarity_shared_fraction\": %.4f, "
      "\"shared_fraction_raised\": %s, \"similarity_groups\": %zu, "
      "\"forced_groups\": %zu, \"identical\": %s},\n",
      g.method.c_str(), clustered.size(), grouping_clusters,
      g.fifo_seconds * 1e3, g.similarity_seconds * 1e3,
      g.fifo_shared_fraction, g.similarity_shared_fraction,
      shared_fraction_raised ? "true" : "false",
      g.similarity_stats.group_similarity, g.similarity_stats.group_forced,
      g.identical ? "true" : "false");
  grouping_body += buf;

  const PlanCacheRow p =
      MeasurePlanCache(searchers[0], clustered, k, pool, fused_passes);
  all_identical = all_identical && p.identical;
  const uint64_t warm_hits = p.warm_stats.hits - p.cold_stats.hits;
  const bool plan_warm_hit = warm_hits > 0;
  std::snprintf(
      buf, sizeof(buf),
      "    {\"kernel\": \"plan_cache\", \"method\": \"%s\", \"batch\": %zu, "
      "\"plan_cold_ms\": %.3f, \"plan_warm_ms\": %.3f, "
      "\"plan_warm_faster\": %s, \"plan_cold_hits\": %llu, "
      "\"plan_cold_misses\": %llu, \"plan_warm_hits\": %llu, "
      "\"plan_warm_hit\": %s, \"plan_collisions\": %llu, "
      "\"identical\": %s}\n",
      p.method.c_str(), clustered.size(), p.cold_seconds * 1e3,
      p.warm_seconds * 1e3,
      p.warm_seconds < p.cold_seconds ? "true" : "false",
      static_cast<unsigned long long>(p.cold_stats.hits),
      static_cast<unsigned long long>(p.cold_stats.misses),
      static_cast<unsigned long long>(warm_hits),
      plan_warm_hit ? "true" : "false",
      static_cast<unsigned long long>(p.warm_stats.collisions),
      p.identical ? "true" : "false");
  grouping_body += buf;

  // The grouping contract is deterministic on this workload (the clusters
  // are constructed, not sampled), so its violation fails the bench just
  // like a bit-identity violation would.
  const bool grouping_ok = shared_fraction_raised && plan_warm_hit;

  std::fprintf(out,
               "{\n  \"bench\": \"scheduler\",\n  \"smoke\": %s,\n"
               "  \"db_size\": %zu,\n  \"queries\": %zu,\n  \"k\": %zu,\n"
               "  \"epsilon\": %.3f,\n",
               smoke ? "true" : "false", db.size(), queries.size(), k, kEps);
  bench::FprintHostJson(out);
  std::fprintf(out,
               "  \"scheduler\": [\n%s  ],\n"
               "  \"cache\": [\n%s  ],\n"
               "  \"fused\": [\n%s  ],\n"
               "  \"grouping\": [\n%s  ],\n"
               "  \"identical\": %s\n}\n",
               sched_body.c_str(), cache_body.c_str(), fused_body.c_str(),
               grouping_body.c_str(), all_identical ? "true" : "false");
  if (out != stdout) std::fclose(out);
  return all_identical && grouping_ok ? 0 : 1;
}
