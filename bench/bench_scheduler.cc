// Adaptive batch scheduler bench: batch throughput under the scheduler
// versus the sequential path, and cold-versus-warm query-feature-cache
// latency for repeated queries, on a random-walk database.
//
// Emits JSON (stdout, or the file named by the first non-flag argument):
//
//   ./bench/bench_scheduler BENCH_scheduler.json
//   ./bench/bench_scheduler --smoke        # tiny workload for CI
//
// Every scheduled batch is certified bit-identical to the sequential
// per-query loop before its time is reported, and the cached passes are
// certified against the uncached answers — the exit code reflects the
// certification, not the latency deltas. "host_cores" records the
// machine's core count: on a single-core host the scheduler can only
// time-slice, so throughput deltas there measure overhead, not speedup.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/trajectory.h"
#include "data/generators.h"
#include "query/engine.h"
#include "query/feature_cache.h"
#include "query/scheduler.h"
#include "query/thread_pool.h"

namespace edr {
namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool SameNeighbors(const KnnResult& a, const KnnResult& b) {
  if (a.neighbors.size() != b.neighbors.size()) return false;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    if (!(a.neighbors[i] == b.neighbors[i])) return false;
  }
  return true;
}

struct SchedulerRow {
  std::string method;
  double seq_seconds = 0.0;       ///< sequential per-query loop, total
  double adaptive_seconds = 0.0;  ///< RunScheduled with default policy
  SchedulerStats stats;
  bool identical = true;
};

SchedulerRow MeasureScheduler(const NamedSearcher& searcher,
                              const std::vector<Trajectory>& queries,
                              size_t k, ThreadPool& pool) {
  SchedulerRow row;
  row.method = searcher.name;

  // Warm-up pass sizes scratch buffers so neither side pays allocation.
  for (const Trajectory& q : queries) searcher.search(q, k);

  auto start = std::chrono::steady_clock::now();
  std::vector<KnnResult> reference;
  reference.reserve(queries.size());
  for (const Trajectory& q : queries) {
    reference.push_back(searcher.search(q, k));
  }
  row.seq_seconds = SecondsSince(start);

  SchedulerPolicy policy;
  start = std::chrono::steady_clock::now();
  const std::vector<KnnResult> scheduled =
      RunScheduled(searcher, queries, k, policy, &pool, nullptr, &row.stats);
  row.adaptive_seconds = SecondsSince(start);

  for (size_t i = 0; i < queries.size(); ++i) {
    row.identical = row.identical && SameNeighbors(reference[i], scheduled[i]);
  }
  std::fprintf(stderr,
               "%-6s seq=%.3fms adaptive=%.3fms waves=%zu widened=%zu "
               "max_budget=%u identical=%s\n",
               row.method.c_str(), row.seq_seconds * 1e3,
               row.adaptive_seconds * 1e3, row.stats.waves,
               row.stats.widened_queries, row.stats.max_budget,
               row.identical ? "yes" : "NO");
  return row;
}

struct CacheRow {
  std::string method;
  double cold_ms_per_query = 0.0;  ///< fresh feature build every pass
  double warm_ms_per_query = 0.0;  ///< features served from the cache
  FeatureCache::Stats stats;
  bool identical = true;
};

CacheRow MeasureCache(const NamedSearcher& searcher,
                      const std::vector<Trajectory>& queries, size_t k,
                      size_t passes) {
  CacheRow row;
  row.method = searcher.name;

  std::vector<KnnResult> reference;
  reference.reserve(queries.size());
  for (const Trajectory& q : queries) {
    reference.push_back(searcher.search(q, k));
  }

  FeatureCache cache(2 * queries.size() + 8);
  KnnOptions cached;
  cached.feature_cache = &cache;

  // Cold passes rebuild every feature (the cache is cleared between
  // passes); warm passes replay the same queries against the filled
  // cache. Taking the best pass on each side filters scheduler noise.
  double cold_best = 0.0;
  for (size_t pass = 0; pass < passes; ++pass) {
    cache.Clear();
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < queries.size(); ++i) {
      const KnnResult r = searcher.search_with(queries[i], k, cached);
      row.identical = row.identical && SameNeighbors(reference[i], r);
    }
    const double elapsed = SecondsSince(start);
    cold_best = pass == 0 ? elapsed : std::min(cold_best, elapsed);
  }
  double warm_best = 0.0;
  for (size_t pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < queries.size(); ++i) {
      const KnnResult r = searcher.search_with(queries[i], k, cached);
      row.identical = row.identical && SameNeighbors(reference[i], r);
    }
    const double elapsed = SecondsSince(start);
    warm_best = pass == 0 ? elapsed : std::min(warm_best, elapsed);
  }
  const double n = static_cast<double>(queries.size());
  row.cold_ms_per_query = cold_best * 1e3 / n;
  row.warm_ms_per_query = warm_best * 1e3 / n;
  row.stats = cache.stats();
  std::fprintf(stderr,
               "%-6s cold=%.3fms/q warm=%.3fms/q hits=%llu misses=%llu "
               "identical=%s\n",
               row.method.c_str(), row.cold_ms_per_query,
               row.warm_ms_per_query,
               static_cast<unsigned long long>(row.stats.hits),
               static_cast<unsigned long long>(row.stats.misses),
               row.identical ? "yes" : "NO");
  return row;
}

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  using namespace edr;
  bench::WarnIfSingleCore();

  bool smoke = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
  }

  constexpr double kEps = 0.25;
  const size_t db_size = smoke ? 300 : 10000;
  const size_t num_queries = smoke ? 6 : 24;
  const size_t k = 10;
  const size_t cache_passes = smoke ? 2 : 5;

  RandomWalkOptions walk_options;
  walk_options.count = db_size;
  walk_options.min_length = 20;
  walk_options.max_length = 60;
  walk_options.seed = 17;
  const TrajectoryDataset db = GenRandomWalk(walk_options);
  std::vector<Trajectory> queries;
  for (size_t q = 0; q < num_queries; ++q) {
    queries.push_back(db[(q * db.size()) / num_queries]);
  }

  ThreadPool pool(8);
  QueryEngine engine(db, kEps);
  KnnOptions bound;
  bound.pool = &pool;
  CombinedOptions combined_options;
  combined_options.max_triangle = 100;
  const std::vector<NamedSearcher> searchers = {
      engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                           HistogramScan::kSorted, bound),
      engine.MakeQgram(QgramVariant::kMerge2D, 1, bound),
      engine.MakeCombined(combined_options, bound),
  };

  bool all_identical = true;
  std::string sched_body;
  std::string cache_body;
  char buf[512];
  for (size_t m = 0; m < searchers.size(); ++m) {
    const SchedulerRow s = MeasureScheduler(searchers[m], queries, k, pool);
    all_identical = all_identical && s.identical;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"method\": \"%s\", \"seq_ms_total\": %.3f, "
        "\"adaptive_ms_total\": %.3f, \"speedup_vs_seq\": %.2f, "
        "\"waves\": %zu, \"wave_queries\": %zu, \"widened_queries\": %zu, "
        "\"max_budget\": %u, \"identical\": %s}%s\n",
        s.method.c_str(), s.seq_seconds * 1e3, s.adaptive_seconds * 1e3,
        s.adaptive_seconds > 0.0 ? s.seq_seconds / s.adaptive_seconds : 0.0,
        s.stats.waves, s.stats.wave_queries, s.stats.widened_queries,
        s.stats.max_budget, s.identical ? "true" : "false",
        m + 1 < searchers.size() ? "," : "");
    sched_body += buf;

    const CacheRow c = MeasureCache(searchers[m], queries, k, cache_passes);
    all_identical = all_identical && c.identical;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"method\": \"%s\", \"cold_ms_per_query\": %.3f, "
        "\"warm_ms_per_query\": %.3f, \"warm_faster\": %s, "
        "\"cache_hits\": %llu, \"cache_misses\": %llu, "
        "\"cache_evictions\": %llu, \"identical\": %s}%s\n",
        c.method.c_str(), c.cold_ms_per_query, c.warm_ms_per_query,
        c.warm_ms_per_query < c.cold_ms_per_query ? "true" : "false",
        static_cast<unsigned long long>(c.stats.hits),
        static_cast<unsigned long long>(c.stats.misses),
        static_cast<unsigned long long>(c.stats.evictions),
        c.identical ? "true" : "false", m + 1 < searchers.size() ? "," : "");
    cache_body += buf;
  }

  std::fprintf(out,
               "{\n  \"bench\": \"scheduler\",\n  \"smoke\": %s,\n"
               "  \"db_size\": %zu,\n  \"queries\": %zu,\n  \"k\": %zu,\n"
               "  \"epsilon\": %.3f,\n",
               smoke ? "true" : "false", db.size(), queries.size(), k, kEps);
  bench::FprintHostJson(out);
  std::fprintf(out,
               "  \"scheduler\": [\n%s  ],\n"
               "  \"cache\": [\n%s  ],\n"
               "  \"identical\": %s\n}\n",
               sched_body.c_str(), cache_body.c_str(),
               all_identical ? "true" : "false");
  if (out != stdout) std::fclose(out);
  return all_identical ? 0 : 1;
}
