// EDR kernel baseline: scalar (allocating) vs scalar-with-scratch vs
// bit-parallel, as DP cells/second across trajectory lengths, plus the
// end-to-end k-NN effect of the kernel + bounded-refinement rewiring.
//
// Emits JSON (stdout, or the file named by argv[1]) so future PRs have a
// machine-readable perf trajectory to regress against:
//
//   ./bench/bench_kernel BENCH_kernel.json
//
// Numbers are machine-dependent; treat the committed BENCH_kernel.json as
// a same-machine baseline for *ratios* (speedups), not absolute times.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/rng.h"
#include "core/trajectory.h"
#include "data/generators.h"
#include "distance/edr.h"
#include "distance/edr_kernel.h"
#include "pruning/combined.h"
#include "query/knn.h"

namespace edr {
namespace {

Trajectory MakeWalk(uint64_t seed, size_t length) {
  Rng rng(seed);
  Trajectory t;
  Point2 pos{0.0, 0.0};
  for (size_t i = 0; i < length; ++i) {
    t.Append(pos);
    pos.x += rng.Gaussian(0.0, 0.4);
    pos.y += rng.Gaussian(0.0, 0.4);
  }
  return t;
}

double SecondsPerCall(const std::function<int()>& fn, int min_iters = 20,
                      double min_seconds = 0.2) {
  // Warm up (also sizes the scratch buffers so the timed region is
  // allocation-free where the kernel promises it).
  volatile int sink = fn();
  (void)sink;
  int iters = min_iters;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    int acc = 0;
    for (int i = 0; i < iters; ++i) acc += fn();
    const auto stop = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(stop - start).count();
    if (secs >= min_seconds || iters >= (1 << 22)) {
      volatile int keep = acc;
      (void)keep;
      return secs / iters;
    }
    iters *= 4;
  }
}

struct KernelRow {
  size_t length = 0;
  double scalar_s = 0.0;
  double scalar_scratch_s = 0.0;
  double bitparallel_s = 0.0;
};

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  using namespace edr;
  bench::WarnIfSingleCore();

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }

  constexpr double kEps = 0.25;
  EdrScratch scratch;

  // --- Kernel micro: same-length pairs across the word-boundary range.
  const size_t lengths[] = {64, 128, 256, 512, 1024};
  std::vector<KernelRow> rows;
  for (const size_t len : lengths) {
    const Trajectory a = MakeWalk(2 * len + 1, len);
    const Trajectory b = MakeWalk(2 * len + 2, len);
    KernelRow row;
    row.length = len;
    row.scalar_s = SecondsPerCall([&] { return EdrDistance(a, b, kEps); });
    row.scalar_scratch_s = SecondsPerCall(
        [&] { return EdrDistanceWith(EdrKernel::kScalar, scratch, a, b, kEps); });
    row.bitparallel_s =
        SecondsPerCall([&] { return EdrDistanceBitParallel(a, b, kEps, scratch); });
    rows.push_back(row);
    std::fprintf(stderr, "len=%zu scalar=%.0fns scratch=%.0fns bitpar=%.0fns (%.1fx)\n",
                 len, row.scalar_s * 1e9, row.scalar_scratch_s * 1e9,
                 row.bitparallel_s * 1e9, row.scalar_s / row.bitparallel_s);
  }

  // --- End-to-end: combined searcher and sequential scan on a random-walk
  // dataset, scalar kernel vs bit-parallel kernel (both with the bounded
  // refinement wiring; identical results certified below).
  RandomWalkOptions walk_options;
  walk_options.count = 400;
  walk_options.min_length = 60;
  walk_options.max_length = 256;
  walk_options.seed = 5;
  const TrajectoryDataset db = GenRandomWalk(walk_options);
  std::vector<Trajectory> queries;
  for (uint64_t q = 0; q < 5; ++q) queries.push_back(MakeWalk(900 + q, 128));
  constexpr size_t kK = 20;

  CombinedOptions combined_options;
  combined_options.max_triangle = 100;

  struct EndToEnd {
    double seq_s = 0.0;
    double combined_s = 0.0;
  };
  EndToEnd e2e[2];
  std::vector<KnnResult> reference;
  bool lossless = true;
  for (const EdrKernel kernel : {EdrKernel::kScalar, EdrKernel::kBitParallel}) {
    SetDefaultEdrKernel(kernel);
    const int slot = kernel == EdrKernel::kScalar ? 0 : 1;
    const CombinedKnnSearcher searcher(db, kEps, combined_options);
    for (int rep = 0; rep < 3; ++rep) {
      double seq_s = 0.0;
      double comb_s = 0.0;
      for (size_t q = 0; q < queries.size(); ++q) {
        const KnnResult seq = SequentialScanKnn(db, queries[q], kK, kEps);
        const KnnResult comb = searcher.Knn(queries[q], kK);
        seq_s += seq.stats.elapsed_seconds;
        comb_s += comb.stats.elapsed_seconds;
        if (kernel == EdrKernel::kScalar && rep == 0) {
          reference.push_back(seq);
        }
        lossless = lossless && SameKnnDistances(reference[q], seq) &&
                   SameKnnDistances(reference[q], comb);
      }
      // Keep the fastest of three repetitions per kernel.
      seq_s /= static_cast<double>(queries.size());
      comb_s /= static_cast<double>(queries.size());
      if (rep == 0 || seq_s < e2e[slot].seq_s) e2e[slot].seq_s = seq_s;
      if (rep == 0 || comb_s < e2e[slot].combined_s) {
        e2e[slot].combined_s = comb_s;
      }
    }
  }
  SetDefaultEdrKernel(EdrKernel::kBitParallel);

  // --- JSON out.
  std::fprintf(out, "{\n  \"bench\": \"edr_kernel\",\n  \"epsilon\": %.3f,\n", kEps);
  std::fprintf(out, "  \"kernels\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    const double cells =
        static_cast<double>(r.length) * static_cast<double>(r.length);
    std::fprintf(out,
                 "    {\"length\": %zu, \"scalar_ns\": %.1f, "
                 "\"scalar_scratch_ns\": %.1f, \"bitparallel_ns\": %.1f, "
                 "\"scalar_cells_per_sec\": %.3e, "
                 "\"bitparallel_cells_per_sec\": %.3e, "
                 "\"speedup_vs_scalar\": %.2f}%s\n",
                 r.length, r.scalar_s * 1e9, r.scalar_scratch_s * 1e9,
                 r.bitparallel_s * 1e9, cells / r.scalar_s,
                 cells / r.bitparallel_s, r.scalar_s / r.bitparallel_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  bench::FprintHostJson(out);
  std::fprintf(out,
               "  \"knn\": {\"db_size\": %zu, \"k\": %zu, \"queries\": %zu,\n"
               "    \"seqscan_scalar_s\": %.6f, \"seqscan_bitparallel_s\": %.6f,\n"
               "    \"combined_scalar_s\": %.6f, \"combined_bitparallel_s\": %.6f,\n"
               "    \"seqscan_speedup\": %.2f, \"combined_speedup\": %.2f,\n"
               "    \"lossless\": %s}\n",
               db.size(), kK, queries.size(), e2e[0].seq_s, e2e[1].seq_s,
               e2e[0].combined_s, e2e[1].combined_s,
               e2e[0].seq_s / e2e[1].seq_s,
               e2e[0].combined_s / e2e[1].combined_s,
               lossless ? "true" : "false");
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);
  return lossless ? 0 : 1;
}
