// Reproduces Table 3: pruning power and speedup ratio of near triangle
// inequality pruning on ASL (710 trajectories) and two random-walk sets
// of 1000 trajectories with lengths 30-256: RandN (normal length
// distribution) and RandU (uniform).
//
// Paper shape to reproduce: both metrics low everywhere (the |S| slack is
// large); clearly better on RandU than on RandN/ASL, confirming the
// technique only helps when trajectory lengths vary widely.

#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"

namespace edr {
namespace {

void RunDataset(const char* name, TrajectoryDataset db,
                const bench::BenchConfig& config, size_t max_triangle,
                double epsilon) {
  db.NormalizeAll();
  QueryEngine engine(db, epsilon);
  std::vector<NamedSearcher> searchers;
  searchers.push_back(engine.MakeNearTriangle(max_triangle));
  bench::RunSuite(name, engine, searchers, config);
}

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  const auto config = edr::bench::BenchConfig::FromArgs(argc, argv);
  // The paper keeps 400 reference trajectories; the matrix build is
  // offline but still quadratic, so the reduced scale uses 200.
  //
  // Matching thresholds follow the paper's protocol of probing queries per
  // data set: the structureless random walks need a generous threshold (about two
  // normalized standard deviations) before nearest neighbors are
  // meaningfully closer than the bulk; the clustered ASL set keeps the
  // quarter-of-max-std-dev rule.
  const size_t refs = config.full ? 400 : 200;
  std::printf("Table 3: near triangle inequality pruning (refs=%zu)\n",
              refs);

  // ASL keeps the quarter-of-max-std-dev threshold (0.25 normalized).
  edr::RunDataset("ASL-710", edr::GenAslLike(10, 71, 11), config, refs, 0.25);

  edr::RandomWalkOptions rand_options;
  rand_options.count = 1000;
  rand_options.min_length = 30;
  rand_options.max_length = 256;
  rand_options.seed = 101;
  rand_options.length_distribution = edr::LengthDistribution::kNormal;
  edr::RunDataset("RandN", edr::GenRandomWalk(rand_options), config, refs,
                  2.0);

  rand_options.length_distribution = edr::LengthDistribution::kUniform;
  rand_options.seed = 102;
  edr::RunDataset("RandU", edr::GenRandomWalk(rand_options), config, refs,
                  2.0);
  return 0;
}
