# Paper-reproduction benches (one binary per table/figure) print the
# paper-style rows; micro benches use google-benchmark.

set(EDR_PAPER_BENCHES
  bench_table1_clustering.cc
  bench_table2_classification.cc
  bench_fig7_8_qgram.cc
  bench_table3_near_triangle.cc
  bench_fig9_10_histogram.cc
  bench_fig11_order.cc
  bench_fig12_13_combined.cc
  bench_ablation.cc
  bench_kernel.cc
  bench_filter.cc
  bench_intra_query.cc
  bench_scheduler.cc
  bench_obs.cc
)

foreach(src ${EDR_PAPER_BENCHES})
  get_filename_component(name ${src} NAME_WE)
  add_executable(${name} ${CMAKE_CURRENT_LIST_DIR}/${src})
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE edr)
endforeach()

set(EDR_MICRO_BENCHES
  bench_micro_distance.cc
  bench_micro_structures.cc
)

foreach(src ${EDR_MICRO_BENCHES})
  get_filename_component(name ${src} NAME_WE)
  add_executable(${name} ${CMAKE_CURRENT_LIST_DIR}/${src})
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE edr benchmark::benchmark)
endforeach()
