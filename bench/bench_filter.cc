// Filter-path microbench: the vectorized whole-database lower-bound sweep
// against the per-row bound loop it replaced, on a 10k-trajectory random
// walk database, plus the flat Q-gram posting-array counting pass.
//
// Emits JSON (stdout, or the file named by argv[1]):
//
//   ./bench/bench_filter BENCH_filter.json
//
// Numbers are machine-dependent; treat the committed BENCH_filter.json as
// a same-machine baseline for *ratios* (speedups), not absolute times.

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "core/rng.h"
#include "core/trajectory.h"
#include "data/generators.h"
#include "pruning/histogram.h"
#include "pruning/qgram.h"

namespace edr {
namespace {

double SecondsPerCall(const std::function<void()>& fn, int min_iters = 3,
                      double min_seconds = 0.2) {
  fn();  // Warm-up sizes scratch and faults the tables in.
  int iters = min_iters;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto stop = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(stop - start).count();
    if (secs >= min_seconds || iters >= (1 << 20)) return secs / iters;
    iters *= 4;
  }
}

struct SweepRow {
  const char* kind = "";
  double per_row_s = 0.0;
  double sweep_scalar_s = 0.0;
  double sweep_simd_s = 0.0;
  bool identical = true;
};

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  using namespace edr;
  bench::WarnIfSingleCore();

  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }

  constexpr double kEps = 0.25;
  constexpr size_t kDbSize = 10000;
  constexpr size_t kQueries = 5;

  RandomWalkOptions walk_options;
  walk_options.count = kDbSize;
  walk_options.min_length = 20;
  walk_options.max_length = 60;
  walk_options.seed = 17;
  const TrajectoryDataset db = GenRandomWalk(walk_options);
  std::vector<Trajectory> queries;
  for (size_t q = 0; q < kQueries; ++q) {
    queries.push_back(db[(q * db.size()) / kQueries]);
  }

  // --- Lower-bound sweep vs the per-row loop, both histogram kinds.
  bool all_identical = true;
  std::vector<SweepRow> rows;
  for (const HistogramTable::Kind kind :
       {HistogramTable::Kind::k2D, HistogramTable::Kind::k1D}) {
    const HistogramTable table(db, kEps, kind, 1);
    std::vector<HistogramTable::QueryHistogram> qhs;
    for (const Trajectory& q : queries) {
      qhs.push_back(table.MakeQueryHistogram(q));
    }

    SweepRow row;
    row.kind = kind == HistogramTable::Kind::k2D ? "2D" : "1D";
    std::vector<int> bounds(db.size());
    row.per_row_s = SecondsPerCall([&] {
      for (const auto& qh : qhs) {
        for (uint32_t id = 0; id < db.size(); ++id) {
          bounds[id] = table.FastLowerBound(qh, id);
        }
      }
    });
    std::vector<int> sweep;
    row.sweep_simd_s = SecondsPerCall([&] {
      for (const auto& qh : qhs) table.FastLowerBoundSweep(qh, &sweep);
    });
    std::vector<int> scalar;
    row.sweep_scalar_s = SecondsPerCall([&] {
      for (const auto& qh : qhs) table.FastLowerBoundSweepScalar(qh, &scalar);
    });

    // Certify equivalence on the last query's arrays plus a full pass.
    for (const auto& qh : qhs) {
      table.FastLowerBoundSweep(qh, &sweep);
      table.FastLowerBoundSweepScalar(qh, &scalar);
      for (uint32_t id = 0; id < db.size(); ++id) {
        if (sweep[id] != table.FastLowerBound(qh, id) ||
            scalar[id] != sweep[id]) {
          row.identical = false;
        }
      }
    }
    all_identical = all_identical && row.identical;
    std::fprintf(stderr,
                 "%s: per_row=%.3fms sweep=%.3fms scalar=%.3fms "
                 "(simd %.2fx vs per-row) identical=%s\n",
                 row.kind, row.per_row_s * 1e3, row.sweep_simd_s * 1e3,
                 row.sweep_scalar_s * 1e3, row.per_row_s / row.sweep_simd_s,
                 row.identical ? "yes" : "NO");
    rows.push_back(row);
  }

  // --- Flat Q-gram posting arrays: the PS2-style counting pass.
  const QgramMeansTable means_table(db, /*q=*/1, /*dims=*/2);
  double qgram_count_s = 0.0;
  {
    std::vector<size_t> counts(db.size());
    std::vector<std::vector<Point2>> query_means;
    for (const Trajectory& q : queries) {
      std::vector<Point2> means = MeanValueQgrams(q, 1);
      SortMeans(means);
      query_means.push_back(std::move(means));
    }
    qgram_count_s = SecondsPerCall([&] {
      for (const auto& qm : query_means) {
        for (uint32_t id = 0; id < db.size(); ++id) {
          counts[id] = means_table.CountMatches2D(qm, kEps, id);
        }
      }
    });
    std::fprintf(stderr, "qgram flat count pass: %.3fms per %zu queries\n",
                 qgram_count_s * 1e3, queries.size());
  }

  // --- JSON out.
  std::fprintf(out,
               "{\n  \"bench\": \"filter_path\",\n  \"db_size\": %zu,\n"
               "  \"queries\": %zu,\n  \"epsilon\": %.3f,\n  \"sweeps\": [\n",
               db.size(), queries.size(), kEps);
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"kind\": \"%s\", \"per_row_ms\": %.3f, "
                 "\"sweep_simd_ms\": %.3f, \"sweep_scalar_ms\": %.3f, "
                 "\"speedup_sweep_vs_per_row\": %.2f, "
                 "\"speedup_simd_vs_scalar\": %.2f, \"identical\": %s}%s\n",
                 r.kind, r.per_row_s * 1e3, r.sweep_simd_s * 1e3,
                 r.sweep_scalar_s * 1e3, r.per_row_s / r.sweep_simd_s,
                 r.sweep_scalar_s / r.sweep_simd_s,
                 r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"qgram_flat_count_ms\": %.3f,\n"
               "  \"host_cores\": %u,\n  \"single_core_warning\": %s,\n"
               "  \"identical\": %s\n}\n",
               qgram_count_s * 1e3, bench::HostCores(),
               bench::HostCores() <= 1 ? "true" : "false",
               all_identical ? "true" : "false");
  if (out != stdout) std::fclose(out);
  return all_identical ? 0 : 1;
}
