// Filter-path microbench: the vectorized whole-database lower-bound sweep
// against the per-row bound loop it replaced, on a 10k-trajectory random
// walk database; the adaptive column-storage layouts against the all-dense
// baseline on a coarse and a fine (delta = 1-class) grid; and the flat
// Q-gram posting-array counting pass.
//
// Emits JSON (stdout, or the file named by argv[1]):
//
//   ./bench/bench_filter BENCH_filter.json
//   ./bench/bench_filter --smoke        # seconds-scale CI contract check
//
// Numbers are machine-dependent; treat the committed BENCH_filter.json as
// a same-machine baseline for *ratios* (speedups, memory reductions), not
// absolute times.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/rng.h"
#include "core/trajectory.h"
#include "data/generators.h"
#include "pruning/histogram.h"
#include "pruning/qgram.h"

namespace edr {
namespace {

double g_min_seconds = 0.2;

double SecondsPerCall(const std::function<void()>& fn, int min_iters = 3) {
  fn();  // Warm-up sizes scratch and faults the tables in.
  int iters = min_iters;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto stop = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(stop - start).count();
    if (secs >= g_min_seconds || iters >= (1 << 20)) return secs / iters;
    iters *= 4;
  }
}

struct SweepRow {
  const char* kind = "";
  double per_row_s = 0.0;
  double sweep_scalar_s = 0.0;
  double sweep_simd_s = 0.0;
  bool identical = true;
};

/// One adaptive-vs-dense comparison: a histogram configuration (grid
/// resolution) measured for memory and sweep throughput in both layouts.
struct LayoutRow {
  const char* grid = "";
  size_t bins = 0;
  HistogramStorageStats stats;      // of the adaptive table
  double sweep_adaptive_s = 0.0;
  double sweep_dense_s = -1.0;      // < 0: dense table infeasible, skipped
  bool identical = true;
};

/// Building the all-dense table allocates stats.dense_equivalent_bytes in
/// one block; cap what the bench will actually try (the fine grid's dense
/// block is tens of GB at full scale — that infeasibility is the point).
constexpr size_t kDenseFeasibleBytes = size_t{512} << 20;

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  using namespace edr;
  bench::WarnIfSingleCore();

  bool smoke = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
  }
  if (smoke) g_min_seconds = 0.01;

  constexpr double kEps = 0.25;
  const size_t db_size = smoke ? 600 : 10000;
  const size_t num_queries = smoke ? 2 : 5;

  RandomWalkOptions walk_options;
  walk_options.count = db_size;
  walk_options.min_length = 20;
  walk_options.max_length = 60;
  walk_options.seed = 17;
  const TrajectoryDataset db = GenRandomWalk(walk_options);
  std::vector<Trajectory> queries;
  for (size_t q = 0; q < num_queries; ++q) {
    queries.push_back(db[(q * db.size()) / num_queries]);
  }

  // --- Lower-bound sweep vs the per-row loop, both histogram kinds.
  bool all_identical = true;
  std::vector<SweepRow> rows;
  for (const HistogramTable::Kind kind :
       {HistogramTable::Kind::k2D, HistogramTable::Kind::k1D}) {
    const HistogramTable table(db, kEps, kind, 1);
    std::vector<HistogramTable::QueryHistogram> qhs;
    for (const Trajectory& q : queries) {
      qhs.push_back(table.MakeQueryHistogram(q));
    }

    SweepRow row;
    row.kind = kind == HistogramTable::Kind::k2D ? "2D" : "1D";
    std::vector<int> bounds(db.size());
    row.per_row_s = SecondsPerCall([&] {
      for (const auto& qh : qhs) {
        for (uint32_t id = 0; id < db.size(); ++id) {
          bounds[id] = table.FastLowerBound(qh, id);
        }
      }
    });
    std::vector<int> sweep;
    row.sweep_simd_s = SecondsPerCall([&] {
      for (const auto& qh : qhs) table.FastLowerBoundSweep(qh, &sweep);
    });
    std::vector<int> scalar;
    row.sweep_scalar_s = SecondsPerCall([&] {
      for (const auto& qh : qhs) table.FastLowerBoundSweepScalar(qh, &scalar);
    });

    // Certify equivalence on every query: sweep == scalar sweep == per-row.
    for (const auto& qh : qhs) {
      table.FastLowerBoundSweep(qh, &sweep);
      table.FastLowerBoundSweepScalar(qh, &scalar);
      for (uint32_t id = 0; id < db.size(); ++id) {
        if (sweep[id] != table.FastLowerBound(qh, id) ||
            scalar[id] != sweep[id]) {
          row.identical = false;
        }
      }
    }
    all_identical = all_identical && row.identical;
    std::fprintf(stderr,
                 "%s: per_row=%.3fms sweep=%.3fms scalar=%.3fms "
                 "(simd %.2fx vs per-row) identical=%s\n",
                 row.kind, row.per_row_s * 1e3, row.sweep_simd_s * 1e3,
                 row.sweep_scalar_s * 1e3, row.per_row_s / row.sweep_simd_s,
                 row.identical ? "yes" : "NO");
    rows.push_back(row);
  }

  // --- Adaptive column layouts vs the all-dense block, coarse and fine
  // grids. The fine grid is the delta = 1-class configuration the adaptive
  // layout exists for: a tiny epsilon clamps to the ~512-bins-per-dimension
  // cap, where the dense block costs bins * n * 4 bytes (GBs at full
  // scale) while the columns are overwhelmingly sparse.
  std::vector<LayoutRow> layout_rows;
  for (const bool fine : {false, true}) {
    const double eps = fine ? kEps / 4096.0 : kEps;
    const HistogramTable adaptive(db, eps, HistogramTable::Kind::k2D, 1,
                                  HistogramLayout::kAdaptive);
    LayoutRow row;
    row.grid = fine ? "fine" : "coarse";
    row.bins = static_cast<size_t>(adaptive.grid().NumBins2D());
    row.stats = adaptive.storage_stats();

    std::vector<HistogramTable::QueryHistogram> qhs;
    for (const Trajectory& q : queries) {
      qhs.push_back(adaptive.MakeQueryHistogram(q));
    }
    std::vector<int> a_bounds;
    row.sweep_adaptive_s = SecondsPerCall([&] {
      for (const auto& qh : qhs) adaptive.FastLowerBoundSweep(qh, &a_bounds);
    });

    if (row.stats.dense_equivalent_bytes <= kDenseFeasibleBytes) {
      const HistogramTable dense(db, eps, HistogramTable::Kind::k2D, 1,
                                 HistogramLayout::kDense);
      std::vector<int> d_bounds;
      row.sweep_dense_s = SecondsPerCall([&] {
        for (const auto& qh : qhs) dense.FastLowerBoundSweep(qh, &d_bounds);
      });
      // Bit-identical bounds across layouts, every query, every id.
      for (const auto& qh : qhs) {
        adaptive.FastLowerBoundSweep(qh, &a_bounds);
        dense.FastLowerBoundSweep(qh, &d_bounds);
        if (a_bounds != d_bounds) row.identical = false;
      }
    } else {
      // Dense block infeasible here; certify adaptive against the per-row
      // bound of the same table instead.
      for (const auto& qh : qhs) {
        adaptive.FastLowerBoundSweep(qh, &a_bounds);
        for (uint32_t id = 0; id < db.size(); ++id) {
          if (a_bounds[id] != adaptive.FastLowerBound(qh, id)) {
            row.identical = false;
          }
        }
      }
    }
    all_identical = all_identical && row.identical;
    std::fprintf(
        stderr,
        "layout[%s]: bins=%zu cols(d/b/s/e)=%zu/%zu/%zu/%zu "
        "bytes=%.1fMB dense_equiv=%.1fMB (%.1fx) sweep=%.3fms dense=%s "
        "identical=%s\n",
        row.grid, row.bins, row.stats.dense_columns, row.stats.bitmap_columns,
        row.stats.sparse_columns, row.stats.empty_columns,
        row.stats.column_bytes / 1048576.0,
        row.stats.dense_equivalent_bytes / 1048576.0,
        static_cast<double>(row.stats.dense_equivalent_bytes) /
            static_cast<double>(row.stats.column_bytes),
        row.sweep_adaptive_s * 1e3,
        row.sweep_dense_s < 0
            ? "skipped"
            : (std::to_string(row.sweep_dense_s * 1e3) + "ms").c_str(),
        row.identical ? "yes" : "NO");
    layout_rows.push_back(row);
  }

  // --- Flat Q-gram posting arrays: the PS2-style counting pass.
  const QgramMeansTable means_table(db, /*q=*/1, /*dims=*/2);
  double qgram_count_s = 0.0;
  {
    std::vector<size_t> counts(db.size());
    std::vector<std::vector<Point2>> query_means;
    for (const Trajectory& q : queries) {
      std::vector<Point2> means = MeanValueQgrams(q, 1);
      SortMeans(means);
      query_means.push_back(std::move(means));
    }
    qgram_count_s = SecondsPerCall([&] {
      for (const auto& qm : query_means) {
        for (uint32_t id = 0; id < db.size(); ++id) {
          counts[id] = means_table.CountMatches2D(qm, kEps, id);
        }
      }
    });
    std::fprintf(stderr, "qgram flat count pass: %.3fms per %zu queries\n",
                 qgram_count_s * 1e3, queries.size());
  }

  // --- JSON out.
  std::fprintf(out,
               "{\n  \"bench\": \"filter_path\",\n  \"smoke\": %s,\n"
               "  \"db_size\": %zu,\n"
               "  \"queries\": %zu,\n  \"epsilon\": %.3f,\n",
               smoke ? "true" : "false", db.size(), queries.size(), kEps);
  bench::FprintHostJson(out);
  std::fprintf(out, "  \"sweeps\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"kind\": \"%s\", \"per_row_ms\": %.3f, "
                 "\"sweep_simd_ms\": %.3f, \"sweep_scalar_ms\": %.3f, "
                 "\"speedup_sweep_vs_per_row\": %.2f, "
                 "\"speedup_simd_vs_scalar\": %.2f, \"identical\": %s}%s\n",
                 r.kind, r.per_row_s * 1e3, r.sweep_simd_s * 1e3,
                 r.sweep_scalar_s * 1e3, r.per_row_s / r.sweep_simd_s,
                 r.sweep_scalar_s / r.sweep_simd_s,
                 r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"layouts\": [\n");
  for (size_t i = 0; i < layout_rows.size(); ++i) {
    const LayoutRow& r = layout_rows[i];
    std::fprintf(out,
                 "    {\"grid\": \"%s\", \"bins\": %zu, "
                 "\"dense_columns\": %zu, \"bitmap_columns\": %zu, "
                 "\"sparse_columns\": %zu, \"empty_columns\": %zu,\n"
                 "     \"adaptive_bytes\": %zu, \"dense_bytes\": %zu, "
                 "\"memory_reduction\": %.2f,\n"
                 "     \"sweep_adaptive_ms\": %.3f, ",
                 r.grid, r.bins, r.stats.dense_columns,
                 r.stats.bitmap_columns, r.stats.sparse_columns,
                 r.stats.empty_columns, r.stats.column_bytes,
                 r.stats.dense_equivalent_bytes,
                 static_cast<double>(r.stats.dense_equivalent_bytes) /
                     static_cast<double>(r.stats.column_bytes),
                 r.sweep_adaptive_s * 1e3);
    if (r.sweep_dense_s < 0) {
      std::fprintf(out, "\"sweep_dense_ms\": null, ");
    } else {
      std::fprintf(out,
                   "\"sweep_dense_ms\": %.3f, \"adaptive_vs_dense\": %.3f, ",
                   r.sweep_dense_s * 1e3,
                   r.sweep_dense_s / r.sweep_adaptive_s);
    }
    std::fprintf(out, "\"identical\": %s}%s\n", r.identical ? "true" : "false",
                 i + 1 < layout_rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"qgram_flat_count_ms\": %.3f,\n"
               "  \"identical\": %s\n}\n",
               qgram_count_s * 1e3, all_identical ? "true" : "false");
  if (out != stdout) std::fclose(out);
  return all_identical ? 0 : 1;
}
