// Reproduces Figure 11: speedup ratio of the six application orders of
// the three pruning methods (H = histogram, P = mean-value Q-grams,
// N = near triangle inequality) on the NHL data set.
//
// Paper shape to reproduce: all six orders achieve the same pruning power
// (the filters are independent), but applying the cheap high-power filter
// first wins on time — H, then P, then N ("2HPN") is the fastest order,
// and orders starting with N are the slowest.

#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  const auto config = edr::bench::BenchConfig::FromArgs(argc, argv);
  const size_t count = config.full ? 5000 : 2000;
  const size_t refs = config.full ? 400 : 200;
  std::printf("Figure 11: speedup of pruning-method orders, NHL data "
              "(N=%zu)\n", count);

  edr::TrajectoryDataset db = edr::GenNhlLike(count, 30, 256, 19);
  db.NormalizeAll();
  edr::QueryEngine engine(db, db.SuggestedEpsilon());

  std::vector<edr::NamedSearcher> searchers;
  for (const auto& order : edr::AllPruneOrders()) {
    edr::CombinedOptions options;
    options.order = order;
    options.max_triangle = refs;
    // Figure 11 compares pure application orders: every order scans in
    // database order so the pruning power is identical across the six
    // permutations (the paper's observation) and only the time differs.
    options.sorted_histogram_scan = false;
    searchers.push_back(engine.MakeCombined(options));
  }
  edr::bench::RunSuite("NHL", engine, searchers, config);
  return 0;
}
