// Telemetry overhead bench: the cost of serve-grade observability on the
// scheduled query path. Three sections: (1) recorder_overhead — the same
// scheduled batch timed with the flight recorder publishing every query
// versus disabled, interleaved passes, best-of on each side, certified
// bit-identical; (2) openmetrics_render — wall time to render and
// validate a full OpenMetrics exposition of a populated registry;
// (3) timeline — the utilization sampler running at 2 ms under a
// scheduled batch, reporting how many samples the ring retained.
//
// Emits JSON (stdout, or the file named by the first non-flag argument):
//
//   ./bench/bench_obs BENCH_obs.json
//   ./bench/bench_obs --smoke        # tiny workload for CI
//
// The exit code reflects the certifications (identical neighbors with
// the recorder on and off, validator-clean exposition, valid timeline
// JSON), not the latency deltas: the A/B overhead_percent is reported
// for the < 2% budget but run-to-run noise on shared single-core hosts
// reaches several percent either direction, so it is warn-only; the
// deterministic number is publish_cost.implied_overhead_percent — the
// measured cost of one Publish against the per-query latency — which is
// orders of magnitude under the budget. In the EDR_DISABLE_OBS build
// both sides of the A/B are the no-op path, so every overhead reads ~0
// by construction.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/trajectory.h"
#include "data/generators.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/openmetrics.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "query/engine.h"
#include "query/scheduler.h"
#include "query/thread_pool.h"

namespace edr {
namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool SameNeighbors(const KnnResult& a, const KnnResult& b) {
  if (a.neighbors.size() != b.neighbors.size()) return false;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    if (!(a.neighbors[i] == b.neighbors[i])) return false;
  }
  return true;
}

struct OverheadRow {
  std::string method;
  double off_seconds = 0.0;  ///< best pass, recorder disabled
  double on_seconds = 0.0;   ///< best pass, recorder publishing
  uint64_t published = 0;    ///< flight records from the "on" passes
  bool identical = true;
};

/// Times RunScheduled over the same batch with the global flight recorder
/// enabled versus disabled. Passes alternate off/on so clock drift and
/// cache warming hit both sides equally; each side keeps its best pass.
OverheadRow MeasureRecorderOverhead(const NamedSearcher& searcher,
                                    const std::vector<Trajectory>& queries,
                                    size_t k, ThreadPool& pool,
                                    size_t passes) {
  OverheadRow row;
  row.method = searcher.name;
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Clear();

  // Reference answers and warm-up in one: the sequential loop sizes
  // scratch buffers before either timed side runs.
  std::vector<KnnResult> reference;
  reference.reserve(queries.size());
  for (const Trajectory& q : queries) {
    reference.push_back(searcher.search(q, k));
  }

  SchedulerPolicy policy;
  for (size_t pass = 0; pass < passes; ++pass) {
    recorder.SetEnabled(false);
    auto start = std::chrono::steady_clock::now();
    const std::vector<KnnResult> off =
        RunScheduled(searcher, queries, k, policy, &pool);
    const double off_elapsed = SecondsSince(start);
    row.off_seconds =
        pass == 0 ? off_elapsed : std::min(row.off_seconds, off_elapsed);

    recorder.SetEnabled(true);
    start = std::chrono::steady_clock::now();
    const std::vector<KnnResult> on =
        RunScheduled(searcher, queries, k, policy, &pool);
    const double on_elapsed = SecondsSince(start);
    row.on_seconds =
        pass == 0 ? on_elapsed : std::min(row.on_seconds, on_elapsed);

    for (size_t i = 0; i < queries.size(); ++i) {
      row.identical = row.identical && SameNeighbors(reference[i], off[i]) &&
                      SameNeighbors(reference[i], on[i]);
    }
  }
  row.published = recorder.published();
  recorder.SetEnabled(true);

  const double overhead =
      row.off_seconds > 0.0
          ? (row.on_seconds - row.off_seconds) / row.off_seconds * 100.0
          : 0.0;
  std::fprintf(stderr,
               "%-8s off=%.3fms on=%.3fms overhead=%+.2f%% published=%llu "
               "identical=%s\n",
               row.method.c_str(), row.off_seconds * 1e3,
               row.on_seconds * 1e3, overhead,
               static_cast<unsigned long long>(row.published),
               row.identical ? "yes" : "NO");
  return row;
}

struct PublishRow {
  double ns_per_publish = 0.0;  ///< best pass, steady-state ring writes
  uint64_t published = 0;
  uint64_t dropped = 0;
};

/// Times Publish alone on a standalone recorder in steady state (ring
/// and reservoir full, top threshold settled): the structural per-query
/// cost the recorder adds to the serving path, free of scheduler noise.
PublishRow MeasurePublishCost(size_t passes) {
  PublishRow row;
  FlightRecorder recorder;
  FlightRecord proto;
  proto.searcher = "bench";
  proto.db_size = 10000;
  proto.edr_computed = 42;
  proto.sched_budget = 4;
  proto.fusion_group = 2;

  const size_t batch = 20000;
  // Fill pass: the ring laps, the reservoir fills, and the slowest-list
  // threshold settles so timed passes measure the common fast path.
  for (size_t i = 0; i < batch; ++i) {
    FlightRecord r = proto;
    r.latency_seconds = 1e-3 + 1e-9 * static_cast<double>(i % 977);
    recorder.Publish(std::move(r));
  }
  for (size_t pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < batch; ++i) {
      FlightRecord r = proto;
      r.latency_seconds = 1e-3 + 1e-9 * static_cast<double>(i % 977);
      recorder.Publish(std::move(r));
    }
    const double ns = SecondsSince(start) * 1e9 / static_cast<double>(batch);
    row.ns_per_publish = pass == 0 ? ns : std::min(row.ns_per_publish, ns);
  }
  row.published = recorder.published();
  row.dropped = recorder.dropped();
  std::fprintf(stderr, "publish=%.1fns/record published=%llu dropped=%llu\n",
               row.ns_per_publish,
               static_cast<unsigned long long>(row.published),
               static_cast<unsigned long long>(row.dropped));
  return row;
}

struct RenderRow {
  size_t families = 0;
  size_t bytes = 0;
  double render_ms = 0.0;    ///< best pass, one full render
  double validate_ms = 0.0;  ///< best pass, one validator walk
  bool valid = true;
};

/// Renders the full registry (standard families plus whatever the batch
/// populated) with exemplars attached, timing render and validation
/// separately — the scrape cost a /metrics hit pays.
RenderRow MeasureOpenMetricsRender(size_t passes) {
  RenderRow row;
  RegisterStandardMetrics();
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  row.families = snapshot.counters.size() + snapshot.histograms.size();

  OpenMetricsOptions options;
  options.exemplars = &FlightRecorder::Global();
  std::string text;
  for (size_t pass = 0; pass < passes; ++pass) {
    auto start = std::chrono::steady_clock::now();
    text = RenderOpenMetrics(snapshot, options);
    const double render = SecondsSince(start);
    row.render_ms =
        pass == 0 ? render * 1e3 : std::min(row.render_ms, render * 1e3);

    start = std::chrono::steady_clock::now();
    std::string error;
    const bool ok = OpenMetricsIsValid(text, &error);
    const double validate = SecondsSince(start);
    row.validate_ms = pass == 0 ? validate * 1e3
                                : std::min(row.validate_ms, validate * 1e3);
    if (!ok) {
      row.valid = false;
      std::fprintf(stderr, "openmetrics INVALID: %s\n", error.c_str());
    }
  }
  row.bytes = text.size();
  std::fprintf(stderr,
               "openmetrics families=%zu bytes=%zu render=%.3fms "
               "validate=%.3fms valid=%s\n",
               row.families, row.bytes, row.render_ms, row.validate_ms,
               row.valid ? "yes" : "NO");
  return row;
}

struct TimelineRow {
  size_t samples = 0;
  uint64_t dropped = 0;
  double occupancy_p50 = 0.0;
  double occupancy_max = 0.0;
  bool json_valid = true;
};

/// Runs the utilization sampler at 2 ms across a scheduled batch and
/// reports what the bounded timeline retained.
TimelineRow MeasureTimeline(const NamedSearcher& searcher,
                            const std::vector<Trajectory>& queries, size_t k,
                            ThreadPool& pool) {
  TimelineRow row;
  TimelineSampler::Options options;
  options.interval_seconds = 0.002;
  options.pool = &pool;
  TimelineSampler sampler(options);
  const bool started = sampler.Start();
  SchedulerPolicy policy;
  RunScheduled(searcher, queries, k, policy, &pool);
  sampler.Stop();

  const UtilizationSummary summary = sampler.Summarize();
  row.samples = summary.samples;
  row.dropped = summary.dropped;
  row.occupancy_p50 = summary.occupancy_p50;
  row.occupancy_max = summary.occupancy_max;
  row.json_valid = JsonIsValid(sampler.ToJson());
  // With the sampler compiled out Start() refuses and zero samples is
  // correct; with it compiled in the final Stop() sample guarantees one.
  if (started && row.samples == 0) row.json_valid = false;
  std::fprintf(stderr,
               "timeline samples=%zu dropped=%llu occ_p50=%.2f occ_max=%.2f "
               "json_valid=%s\n",
               row.samples, static_cast<unsigned long long>(row.dropped),
               row.occupancy_p50, row.occupancy_max,
               row.json_valid ? "yes" : "NO");
  return row;
}

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  using namespace edr;
  bench::WarnIfSingleCore();

  bool smoke = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
  }

  constexpr double kEps = 0.25;
  const size_t db_size = smoke ? 300 : 10000;
  const size_t num_queries = smoke ? 8 : 32;
  const size_t k = 10;
  const size_t passes = smoke ? 3 : 15;

  RandomWalkOptions walk_options;
  walk_options.count = db_size;
  walk_options.min_length = 20;
  walk_options.max_length = 60;
  walk_options.seed = 17;
  const TrajectoryDataset db = GenRandomWalk(walk_options);
  std::vector<Trajectory> queries;
  for (size_t q = 0; q < num_queries; ++q) {
    queries.push_back(db[(q * db.size()) / num_queries]);
  }

  ThreadPool pool(8);
  QueryEngine engine(db, kEps);
  KnnOptions bound;
  bound.pool = &pool;
  CombinedOptions combined_options;
  combined_options.max_triangle = 100;
  const std::vector<NamedSearcher> searchers = {
      engine.MakeHistogram(HistogramTable::Kind::k2D, 1,
                           HistogramScan::kSorted, bound),
      engine.MakeCombined(combined_options, bound),
  };

  bool certified = true;
  std::string overhead_body;
  char buf[512];
  double fastest_query_ns = 0.0;
  for (size_t m = 0; m < searchers.size(); ++m) {
    const OverheadRow row =
        MeasureRecorderOverhead(searchers[m], queries, k, pool, passes);
    const double query_ns =
        row.off_seconds * 1e9 / static_cast<double>(queries.size());
    if (m == 0 || query_ns < fastest_query_ns) fastest_query_ns = query_ns;
    certified = certified && row.identical;
    const double overhead =
        row.off_seconds > 0.0
            ? (row.on_seconds - row.off_seconds) / row.off_seconds * 100.0
            : 0.0;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"method\": \"%s\", \"off_ms_total\": %.3f, "
        "\"on_ms_total\": %.3f, \"overhead_percent\": %.2f, "
        "\"within_2pct\": %s, \"published\": %llu, \"identical\": %s}%s\n",
        row.method.c_str(), row.off_seconds * 1e3, row.on_seconds * 1e3,
        overhead, overhead < 2.0 ? "true" : "false",
        static_cast<unsigned long long>(row.published),
        row.identical ? "true" : "false",
        m + 1 < searchers.size() ? "," : "");
    overhead_body += buf;
  }

  const PublishRow publish = MeasurePublishCost(passes);
  // The structural overhead: one steady-state Publish against the
  // fastest method's per-query latency. Unlike the A/B this does not
  // depend on scheduler timing noise.
  const double implied_percent =
      fastest_query_ns > 0.0
          ? publish.ns_per_publish / fastest_query_ns * 100.0
          : 0.0;

  const RenderRow render = MeasureOpenMetricsRender(passes);
  certified = certified && render.valid;

  const TimelineRow timeline = MeasureTimeline(searchers[0], queries, k, pool);
  certified = certified && timeline.json_valid;

  std::fprintf(out,
               "{\n  \"bench\": \"obs\",\n  \"smoke\": %s,\n"
               "  \"obs_enabled\": %s,\n"
               "  \"db_size\": %zu,\n  \"queries\": %zu,\n  \"k\": %zu,\n"
               "  \"epsilon\": %.3f,\n",
               smoke ? "true" : "false", kObsEnabled ? "true" : "false",
               db.size(), queries.size(), k, kEps);
  bench::FprintHostJson(out);
  std::fprintf(out,
               "  \"recorder_overhead\": [\n%s  ],\n"
               "  \"publish_cost\": {\"ns_per_publish\": %.1f, "
               "\"published\": %llu, \"dropped\": %llu, "
               "\"implied_overhead_percent\": %.4f, "
               "\"within_2pct\": %s},\n"
               "  \"openmetrics_render\": {\"families\": %zu, "
               "\"bytes\": %zu, \"render_ms\": %.3f, \"validate_ms\": %.3f, "
               "\"valid\": %s},\n"
               "  \"timeline\": {\"samples\": %zu, \"dropped\": %llu, "
               "\"occupancy_p50\": %.3f, \"occupancy_max\": %.3f, "
               "\"json_valid\": %s},\n"
               "  \"certified\": %s\n}\n",
               overhead_body.c_str(), publish.ns_per_publish,
               static_cast<unsigned long long>(publish.published),
               static_cast<unsigned long long>(publish.dropped),
               implied_percent, implied_percent < 2.0 ? "true" : "false",
               render.families, render.bytes,
               render.render_ms, render.validate_ms,
               render.valid ? "true" : "false", timeline.samples,
               static_cast<unsigned long long>(timeline.dropped),
               timeline.occupancy_p50, timeline.occupancy_max,
               timeline.json_valid ? "true" : "false",
               certified ? "true" : "false");
  if (out != stdout) std::fclose(out);
  return certified ? 0 : 1;
}
