// Microbenchmarks for the distance kernels (google-benchmark): scaling of
// the O(n^2) DP distances with trajectory length, the cost of the banded
// and early-abandoning EDR variants, and the linear-time measures.

#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "core/trajectory.h"
#include "distance/dtw.h"
#include "distance/edr.h"
#include "distance/edr_kernel.h"
#include "distance/erp.h"
#include "distance/euclidean.h"
#include "distance/frechet.h"
#include "distance/lcss.h"

namespace edr {
namespace {

Trajectory MakeWalk(uint64_t seed, size_t length) {
  Rng rng(seed);
  Trajectory t;
  Point2 pos{0.0, 0.0};
  for (size_t i = 0; i < length; ++i) {
    t.Append(pos);
    pos.x += rng.Gaussian(0.0, 0.4);
    pos.y += rng.Gaussian(0.0, 0.4);
  }
  return t;
}

void BM_Edr(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Trajectory a = MakeWalk(1, len);
  const Trajectory b = MakeWalk(2, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdrDistance(a, b, 0.25));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Edr)->RangeMultiplier(2)->Range(32, 1024)->Complexity();

void BM_EdrBanded(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Trajectory a = MakeWalk(1, len);
  const Trajectory b = MakeWalk(2, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdrDistanceBanded(a, b, 0.25, 16));
  }
}
BENCHMARK(BM_EdrBanded)->RangeMultiplier(2)->Range(32, 1024);

void BM_EdrBoundedTightBound(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  // Dissimilar trajectories with a tight bound: abandons after a few rows.
  Trajectory a = MakeWalk(1, len);
  Trajectory b = MakeWalk(2, len);
  for (Point2& p : b.mutable_points()) p.x += 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdrDistanceBounded(a, b, 0.25, 5));
  }
}
BENCHMARK(BM_EdrBoundedTightBound)->RangeMultiplier(2)->Range(32, 1024);

// The kernel layer: scalar-with-scratch vs Myers bit-parallel, both exact.
// Compare against BM_Edr to see the allocation cost and the word-parallel
// speedup separately.

void BM_EdrScalarScratch(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Trajectory a = MakeWalk(1, len);
  const Trajectory b = MakeWalk(2, len);
  EdrScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EdrDistanceWith(EdrKernel::kScalar, scratch, a, b, 0.25));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EdrScalarScratch)->RangeMultiplier(2)->Range(32, 1024)->Complexity();

void BM_EdrBitParallel(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Trajectory a = MakeWalk(1, len);
  const Trajectory b = MakeWalk(2, len);
  EdrScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdrDistanceBitParallel(a, b, 0.25, scratch));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EdrBitParallel)->RangeMultiplier(2)->Range(32, 1024)->Complexity();

void BM_EdrBitParallelBoundedTightBound(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Trajectory a = MakeWalk(1, len);
  Trajectory b = MakeWalk(2, len);
  for (Point2& p : b.mutable_points()) p.x += 100.0;
  EdrScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EdrDistanceBitParallelBounded(a, b, 0.25, 5, scratch));
  }
}
BENCHMARK(BM_EdrBitParallelBoundedTightBound)
    ->RangeMultiplier(2)
    ->Range(32, 1024);

void BM_Dtw(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Trajectory a = MakeWalk(3, len);
  const Trajectory b = MakeWalk(4, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwDistance(a, b));
  }
}
BENCHMARK(BM_Dtw)->RangeMultiplier(2)->Range(32, 1024);

void BM_Erp(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Trajectory a = MakeWalk(5, len);
  const Trajectory b = MakeWalk(6, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ErpDistance(a, b));
  }
}
BENCHMARK(BM_Erp)->RangeMultiplier(2)->Range(32, 1024);

void BM_Lcss(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Trajectory a = MakeWalk(7, len);
  const Trajectory b = MakeWalk(8, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LcssLength(a, b, 0.25));
  }
}
BENCHMARK(BM_Lcss)->RangeMultiplier(2)->Range(32, 1024);

void BM_SlidingEuclidean(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Trajectory a = MakeWalk(9, len);
  const Trajectory b = MakeWalk(10, len / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SlidingEuclideanDistance(a, b));
  }
}
BENCHMARK(BM_SlidingEuclidean)->RangeMultiplier(2)->Range(32, 1024);

void BM_DiscreteFrechet(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Trajectory a = MakeWalk(11, len);
  const Trajectory b = MakeWalk(12, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscreteFrechetDistance(a, b));
  }
}
BENCHMARK(BM_DiscreteFrechet)->RangeMultiplier(2)->Range(32, 1024);

void BM_Hausdorff(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const Trajectory a = MakeWalk(13, len);
  const Trajectory b = MakeWalk(14, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HausdorffDistance(a, b));
  }
}
BENCHMARK(BM_Hausdorff)->RangeMultiplier(2)->Range(32, 1024);

}  // namespace
}  // namespace edr

BENCHMARK_MAIN();
