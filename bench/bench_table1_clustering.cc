// Reproduces Table 1: "Clustering results of five distance functions".
//
// Protocol (Section 3.2): for every pair of classes of each labeled data
// set, cluster the union into two groups with complete-linkage hierarchical
// clustering; count the pairs whose clusters equal the classes. Euclidean
// distance uses the sliding strategy for unequal lengths; DTW is also run
// with several warping bands and the best result reported; epsilon is a
// quarter of the maximum trajectory standard deviation (0.25 after
// normalization).
//
// Paper shape to reproduce: Euclidean far below the others; DTW, ERP,
// LCSS, and EDR comparable on clean (noise-free) data.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "data/generators.h"
#include "distance/distance.h"
#include "distance/dtw.h"
#include "eval/clustering_eval.h"

namespace edr {
namespace {

void RunDataset(const char* name, TrajectoryDataset db) {
  db.NormalizeAll();
  DistanceOptions options;
  options.epsilon = db.SuggestedEpsilon();

  std::printf("%-10s", name);
  for (const DistanceKind kind : kAllDistanceKinds) {
    ClassPairClusteringResult best{};
    if (kind == DistanceKind::kDtw) {
      // "We also test DTW with different warping lengths and report the
      // best results."
      for (const int band : {2, 5, 10, 20, -1}) {
        DistanceOptions banded = options;
        banded.band = band;
        const ClassPairClusteringResult r = EvaluateClusteringByClassPairs(
            db, MakeDistance(kind, banded));
        if (r.correct_pairs > best.correct_pairs) best = r;
        best.total_pairs = r.total_pairs;
      }
    } else {
      best = EvaluateClusteringByClassPairs(db, MakeDistance(kind, options));
    }
    std::printf(" %4zu/%zu", best.correct_pairs, best.total_pairs);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace
}  // namespace edr

int main(int argc, char** argv) {
  const auto config = edr::bench::BenchConfig::FromArgs(argc, argv);
  (void)config;
  std::printf("Table 1: clustering results (correct pairs / total pairs)\n");
  std::printf("%-10s %6s %6s %6s %6s %6s\n", "dataset", "Eu", "DTW", "ERP",
              "LCSS", "EDR");
  edr::RunDataset("CM", edr::GenCameraMouseLike(3, 7));
  edr::RunDataset("ASL", edr::GenAslLike(10, 5, 11));
  return 0;
}
