#include "core/trajectory.h"

#include <cmath>
#include <string>

namespace edr {

Point2 Trajectory::Mean() const {
  if (points_.empty()) return {0.0, 0.0};
  double sx = 0.0;
  double sy = 0.0;
  for (const Point2& p : points_) {
    sx += p.x;
    sy += p.y;
  }
  const double n = static_cast<double>(points_.size());
  return {sx / n, sy / n};
}

Point2 Trajectory::StdDev() const {
  if (points_.empty()) return {0.0, 0.0};
  const Point2 mu = Mean();
  double vx = 0.0;
  double vy = 0.0;
  for (const Point2& p : points_) {
    vx += (p.x - mu.x) * (p.x - mu.x);
    vy += (p.y - mu.y) * (p.y - mu.y);
  }
  const double n = static_cast<double>(points_.size());
  return {std::sqrt(vx / n), std::sqrt(vy / n)};
}

std::string ToString(const Trajectory& t) {
  std::string out = "Trajectory(len=" + std::to_string(t.size());
  if (t.label() >= 0) out += ", label=" + std::to_string(t.label());
  out += ")";
  return out;
}

}  // namespace edr
