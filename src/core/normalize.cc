#include "core/normalize.h"

namespace edr {

void NormalizeInPlace(Trajectory& s) {
  if (s.empty()) return;
  const Point2 mu = s.Mean();
  const Point2 sigma = s.StdDev();
  const double inv_x = sigma.x > 0.0 ? 1.0 / sigma.x : 1.0;
  const double inv_y = sigma.y > 0.0 ? 1.0 / sigma.y : 1.0;
  for (Point2& p : s.mutable_points()) {
    p.x = (p.x - mu.x) * inv_x;
    p.y = (p.y - mu.y) * inv_y;
  }
}

Trajectory Normalize(const Trajectory& s) {
  Trajectory out = s;
  NormalizeInPlace(out);
  return out;
}

}  // namespace edr
