#include "core/trajectory3.h"

#include <cmath>

namespace edr {

Point3 Trajectory3::Mean() const {
  if (points_.empty()) return {0.0, 0.0, 0.0};
  Point3 sum{0.0, 0.0, 0.0};
  for (const Point3& p : points_) sum = sum + p;
  return sum * (1.0 / static_cast<double>(points_.size()));
}

Point3 Trajectory3::StdDev() const {
  if (points_.empty()) return {0.0, 0.0, 0.0};
  const Point3 mu = Mean();
  Point3 var{0.0, 0.0, 0.0};
  for (const Point3& p : points_) {
    const Point3 d = p - mu;
    var.x += d.x * d.x;
    var.y += d.y * d.y;
    var.z += d.z * d.z;
  }
  const double inv_n = 1.0 / static_cast<double>(points_.size());
  return {std::sqrt(var.x * inv_n), std::sqrt(var.y * inv_n),
          std::sqrt(var.z * inv_n)};
}

void NormalizeInPlace(Trajectory3& s) {
  if (s.empty()) return;
  const Point3 mu = s.Mean();
  const Point3 sigma = s.StdDev();
  const double inv_x = sigma.x > 0.0 ? 1.0 / sigma.x : 1.0;
  const double inv_y = sigma.y > 0.0 ? 1.0 / sigma.y : 1.0;
  const double inv_z = sigma.z > 0.0 ? 1.0 / sigma.z : 1.0;
  for (Point3& p : s.mutable_points()) {
    p.x = (p.x - mu.x) * inv_x;
    p.y = (p.y - mu.y) * inv_y;
    p.z = (p.z - mu.z) * inv_z;
  }
}

Trajectory3 Normalize(const Trajectory3& s) {
  Trajectory3 out = s;
  NormalizeInPlace(out);
  return out;
}

}  // namespace edr
