#ifndef EDR_CORE_STATUS_H_
#define EDR_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace edr {

/// Error codes for library operations that can fail (I/O, malformed input,
/// invalid arguments). The library does not use C++ exceptions; fallible
/// entry points return `Status` or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
};

/// A success-or-error value in the style of absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "INVALID_ARGUMENT: epsilon must be positive".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kIoError: return "IO_ERROR";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    }
    return "UNKNOWN";
  }

  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper in the style of absl::StatusOr.
///
/// Callers must check `ok()` before dereferencing; accessing the value of a
/// non-OK result is undefined behaviour (checked by assertion in debug
/// builds via std::get).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  ///   if (bad) return Status::InvalidArgument(...);
  ///   return value;
  Result(T value) : data_(std::move(value)) {}           // NOLINT
  Result(Status status) : data_(std::move(status)) {}    // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace edr

#endif  // EDR_CORE_STATUS_H_
