#include "core/rng.h"

#include <cmath>

namespace edr {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64, used only to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for the spans used in this library (all far
  // below 2^32), and determinism matters more than perfect uniformity here.
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

}  // namespace edr
