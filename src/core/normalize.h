#ifndef EDR_CORE_NORMALIZE_H_
#define EDR_CORE_NORMALIZE_H_

#include "core/trajectory.h"

namespace edr {

/// Returns the z-score normalization Norm(S) of a trajectory (Section 2):
/// each dimension is shifted by its mean and scaled by its standard
/// deviation, making distances invariant to spatial scaling and shifting.
///
///   Norm(S) = [((s1.x - mu_x)/sigma_x, (s1.y - mu_y)/sigma_y), ...]
///
/// Dimensions with zero standard deviation (a coordinate that never moves)
/// are only mean-shifted; dividing by zero would be meaningless. Labels and
/// ids are preserved.
Trajectory Normalize(const Trajectory& s);

/// Normalizes a trajectory in place; see Normalize().
void NormalizeInPlace(Trajectory& s);

}  // namespace edr

#endif  // EDR_CORE_NORMALIZE_H_
