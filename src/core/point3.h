#ifndef EDR_CORE_POINT3_H_
#define EDR_CORE_POINT3_H_

#include <cmath>

namespace edr {

/// A three-dimensional trajectory sample (the x-y-z case the paper
/// mentions in Section 1; all definitions extend unchanged).
struct Point3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend Point3 operator+(Point3 a, Point3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Point3 operator-(Point3 a, Point3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Point3 operator*(Point3 a, double s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend Point3 operator*(double s, Point3 a) { return a * s; }
  friend bool operator==(const Point3& a, const Point3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

/// Squared L2 distance between two 3-D elements.
inline double SquaredDist(Point3 a, Point3 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

/// Euclidean (L2) distance between two 3-D elements.
inline double L2Dist(Point3 a, Point3 b) { return std::sqrt(SquaredDist(a, b)); }

/// Definition 1 lifted to three dimensions: elements match iff every
/// coordinate is within the threshold.
inline bool Match(Point3 a, Point3 b, double epsilon) {
  return std::fabs(a.x - b.x) <= epsilon && std::fabs(a.y - b.y) <= epsilon &&
         std::fabs(a.z - b.z) <= epsilon;
}

}  // namespace edr

#endif  // EDR_CORE_POINT3_H_
