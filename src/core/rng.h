#ifndef EDR_CORE_RNG_H_
#define EDR_CORE_RNG_H_

#include <cstdint>

namespace edr {

/// A small, fast, deterministic pseudo-random generator (xoshiro256++).
///
/// All data generators and noise-injection utilities in this library are
/// seeded explicitly so that every experiment is reproducible bit-for-bit
/// across runs and platforms. We avoid std::mt19937 + std::*_distribution
/// because the standard distributions are implementation-defined and would
/// make "50 seeded data sets" (Table 2 protocol) non-portable.
class Rng {
 public:
  /// Seeds the generator. Two generators constructed with the same seed
  /// produce identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 pseudo-random bits.
  uint64_t NextU64();

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a standard normal variate (Box-Muller; one value per call, the
  /// spare is cached).
  double Gaussian();

  /// Returns a normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

 private:
  uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace edr

#endif  // EDR_CORE_RNG_H_
