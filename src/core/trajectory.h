#ifndef EDR_CORE_TRAJECTORY_H_
#define EDR_CORE_TRAJECTORY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/point.h"

namespace edr {

/// The trajectory of a moving object: the sequence of sampled positions
/// S = [s_1, ..., s_n].
///
/// The paper defines S = [(t_1, s_1), ..., (t_n, s_n)] but observes that for
/// similarity-based retrieval only the movement shape matters, so timestamps
/// are dropped (Section 1). `n` is the *length* of the trajectory.
///
/// A trajectory optionally carries a class label (used by the efficacy
/// experiments, Tables 1 and 2) and an id assigned by its containing
/// `TrajectoryDataset`.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(std::vector<Point2> points, int label = -1)
      : points_(std::move(points)), label_(label) {}

  /// Number of sampled elements (the paper's `n`).
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const Point2& operator[](size_t i) const { return points_[i]; }
  Point2& operator[](size_t i) { return points_[i]; }

  const std::vector<Point2>& points() const { return points_; }
  std::vector<Point2>& mutable_points() { return points_; }

  void Append(Point2 p) { points_.push_back(p); }
  void Append(double x, double y) { points_.push_back({x, y}); }

  std::vector<Point2>::const_iterator begin() const { return points_.begin(); }
  std::vector<Point2>::const_iterator end() const { return points_.end(); }

  int label() const { return label_; }
  void set_label(int label) { label_ = label; }

  uint32_t id() const { return id_; }
  void set_id(uint32_t id) { id_ = id; }

  /// Per-dimension mean of the sampled positions. Returns {0,0} when empty.
  Point2 Mean() const;

  /// Per-dimension (population) standard deviation. Returns {0,0} when empty.
  Point2 StdDev() const;

  friend bool operator==(const Trajectory& a, const Trajectory& b) {
    return a.points_ == b.points_;
  }

 private:
  std::vector<Point2> points_;
  int label_ = -1;
  uint32_t id_ = 0;
};

/// True iff elements `a` and `b` match under matching threshold `epsilon`
/// (Definition 1): |a.x - b.x| <= epsilon and |a.y - b.y| <= epsilon.
inline bool Match(Point2 a, Point2 b, double epsilon) {
  return std::fabs(a.x - b.x) <= epsilon && std::fabs(a.y - b.y) <= epsilon;
}

/// Renders a short human-readable description, e.g. "Trajectory(len=64,
/// label=3)". Intended for logging and test failure messages.
std::string ToString(const Trajectory& t);

}  // namespace edr

#endif  // EDR_CORE_TRAJECTORY_H_
