#include "core/dataset.h"

#include <algorithm>
#include <limits>
#include <set>

#include "core/normalize.h"

namespace edr {

uint32_t TrajectoryDataset::Add(Trajectory t) {
  const uint32_t id = static_cast<uint32_t>(trajectories_.size());
  t.set_id(id);
  trajectories_.push_back(std::move(t));
  return id;
}

size_t TrajectoryDataset::NumClasses() const {
  std::set<int> labels;
  for (const Trajectory& t : trajectories_) {
    if (t.label() >= 0) labels.insert(t.label());
  }
  return labels.size();
}

std::vector<uint32_t> TrajectoryDataset::IdsWithLabel(int label) const {
  std::vector<uint32_t> ids;
  for (const Trajectory& t : trajectories_) {
    if (t.label() == label) ids.push_back(t.id());
  }
  return ids;
}

void TrajectoryDataset::NormalizeAll() {
  for (Trajectory& t : trajectories_) NormalizeInPlace(t);
}

DatasetStats TrajectoryDataset::Stats() const {
  DatasetStats stats;
  stats.count = trajectories_.size();
  if (trajectories_.empty()) return stats;

  stats.min_length = std::numeric_limits<size_t>::max();
  stats.max_length = 0;
  stats.min_xy = {std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity()};
  stats.max_xy = {-std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity()};
  double total_length = 0.0;
  for (const Trajectory& t : trajectories_) {
    stats.min_length = std::min(stats.min_length, t.size());
    stats.max_length = std::max(stats.max_length, t.size());
    total_length += static_cast<double>(t.size());
    const Point2 sigma = t.StdDev();
    stats.max_std_dev =
        std::max(stats.max_std_dev, std::max(sigma.x, sigma.y));
    for (const Point2& p : t) {
      stats.min_xy.x = std::min(stats.min_xy.x, p.x);
      stats.min_xy.y = std::min(stats.min_xy.y, p.y);
      stats.max_xy.x = std::max(stats.max_xy.x, p.x);
      stats.max_xy.y = std::max(stats.max_xy.y, p.y);
    }
  }
  stats.mean_length = total_length / static_cast<double>(trajectories_.size());
  return stats;
}

}  // namespace edr
