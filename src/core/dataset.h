#ifndef EDR_CORE_DATASET_H_
#define EDR_CORE_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/trajectory.h"

namespace edr {

/// Summary statistics of a dataset used to derive experiment parameters.
struct DatasetStats {
  size_t count = 0;
  size_t min_length = 0;
  size_t max_length = 0;
  double mean_length = 0.0;
  /// Maximum over trajectories of the per-trajectory max(sigma_x, sigma_y).
  /// The paper sets the matching threshold epsilon to a quarter of this
  /// value (Section 3.2), which for normalized data is 0.25.
  double max_std_dev = 0.0;
  Point2 min_xy{0.0, 0.0};
  Point2 max_xy{0.0, 0.0};
};

/// An in-memory collection of trajectories, the unit over which k-NN queries
/// and the efficacy experiments run.
///
/// Adding a trajectory assigns it a dense id equal to its position, which the
/// pruning structures (Q-gram indexes, histogram tables, pairwise-distance
/// matrices) use as the join key.
class TrajectoryDataset {
 public:
  TrajectoryDataset() = default;
  explicit TrajectoryDataset(std::string name) : name_(std::move(name)) {}

  /// Appends a trajectory, assigning its id. Returns the assigned id.
  uint32_t Add(Trajectory t);

  size_t size() const { return trajectories_.size(); }
  bool empty() const { return trajectories_.empty(); }

  const Trajectory& operator[](size_t i) const { return trajectories_[i]; }
  Trajectory& operator[](size_t i) { return trajectories_[i]; }

  std::vector<Trajectory>::const_iterator begin() const {
    return trajectories_.begin();
  }
  std::vector<Trajectory>::const_iterator end() const {
    return trajectories_.end();
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Number of distinct non-negative labels present.
  size_t NumClasses() const;

  /// Ids of all trajectories with the given label.
  std::vector<uint32_t> IdsWithLabel(int label) const;

  /// Applies z-score normalization (Section 2) to every trajectory.
  void NormalizeAll();

  /// Computes summary statistics over the current contents.
  DatasetStats Stats() const;

  /// The paper's rule of thumb for the matching threshold: a quarter of the
  /// maximum standard deviation of the trajectories (Section 3.2).
  double SuggestedEpsilon() const { return 0.25 * Stats().max_std_dev; }

 private:
  std::string name_;
  std::vector<Trajectory> trajectories_;
};

}  // namespace edr

#endif  // EDR_CORE_DATASET_H_
