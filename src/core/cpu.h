#ifndef EDR_CORE_CPU_H_
#define EDR_CORE_CPU_H_

#include <cstddef>

namespace edr {

/// Maximum queries one fused filter sweep evaluates per database pass.
/// Chosen to match the query-major register blocking of the fused kernels:
/// eight int32 lanes fill one AVX2 register (one 256-bit min/add per
/// posting), two NEON/SSE2 registers, or half an AVX-512 register (which
/// processes two postings per iteration instead). Larger groups are
/// chunked by the callers, so this is a kernel-shape constant, not a
/// correctness limit.
inline constexpr size_t kMaxFusionGroup = 8;

/// Lane widths the integer sweep / merge-count / match-vector kernels are
/// compiled for. Every level computes bit-identical results — the level is
/// a pure performance knob — so kernels may be pinned freely for debugging
/// or CI without changing any searcher's answer.
enum class KernelLevel {
  kScalar = 0,  ///< portable C++ bodies, every platform
  kSse2,        ///< 128-bit lanes (baseline on x86-64)
  kAvx2,        ///< 256-bit lanes
  kAvx512,      ///< 512-bit lanes (AVX-512F)
  kNeon,        ///< 128-bit lanes on aarch64
};

/// "scalar", "sse2", "avx2", "avx512", "neon".
const char* KernelLevelName(KernelLevel level);

/// Parses a kernel-level name as accepted by EDR_FORCE_KERNEL. Returns
/// false (leaving *out untouched) for unknown names.
bool ParseKernelLevel(const char* name, KernelLevel* out);

/// True when this build can emit the level's instructions *and* the running
/// CPU executes them. kScalar is always supported; every SIMD level is
/// unsupported under EDR_DISABLE_SIMD.
bool KernelLevelSupported(KernelLevel level);

/// The level all dispatching kernels run at, resolved on first use:
/// the EDR_FORCE_KERNEL environment variable (scalar|sse2|avx2|avx512|neon)
/// when set — exiting with an error message if the named level is unknown
/// or unsupported on this host/build — otherwise the widest supported
/// level. Kernels re-read this per call, so tests can flip it at runtime.
KernelLevel ActiveKernelLevel();

/// Pins the active level (test/debug hook; EDR_FORCE_KERNEL is the
/// equivalent for whole processes). Returns false, leaving the level
/// unchanged, when the requested level is unsupported here.
bool SetActiveKernelLevel(KernelLevel level);

/// Drops any pinned level; the next ActiveKernelLevel() call re-resolves
/// from the environment / CPU probe.
void ResetActiveKernelLevel();

/// True when the running CPU supports AVX2 *and* the build can emit it
/// (x86-64, GCC/Clang, SIMD not disabled). The result is computed once;
/// kernels use it to dispatch between their AVX2 and SSE2/scalar bodies at
/// runtime, so one binary runs correctly on any x86-64 machine.
bool CpuHasAvx2();

/// As CpuHasAvx2, for the AVX-512 foundation subset (AVX-512F) the sweep
/// and merge-count kernels need.
bool CpuHasAvx512();

/// True on aarch64 builds with SIMD enabled (NEON is architectural there).
bool CpuHasNeon();

}  // namespace edr

#endif  // EDR_CORE_CPU_H_
