#ifndef EDR_CORE_CPU_H_
#define EDR_CORE_CPU_H_

namespace edr {

/// True when the running CPU supports AVX2 *and* the build can emit it
/// (x86-64, GCC/Clang, SIMD not disabled). The result is computed once;
/// kernels use it to dispatch between their AVX2 and SSE2/scalar bodies at
/// runtime, so one binary runs correctly on any x86-64 machine.
bool CpuHasAvx2();

}  // namespace edr

#endif  // EDR_CORE_CPU_H_
