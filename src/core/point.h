#ifndef EDR_CORE_POINT_H_
#define EDR_CORE_POINT_H_

#include <cmath>

namespace edr {

/// A two-dimensional sample of a moving-object trajectory.
///
/// The paper (Section 2) assumes, without loss of generality, objects moving
/// in the x-y plane; all definitions extend to higher dimensions. Timestamps
/// are dropped from the similarity computation (only the sequence of sampled
/// vectors matters), so a trajectory element reduces to this point type.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend Point2 operator+(Point2 a, Point2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Point2 operator-(Point2 a, Point2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Point2 operator*(Point2 a, double s) { return {a.x * s, a.y * s}; }
  friend Point2 operator*(double s, Point2 a) { return a * s; }
  friend bool operator==(const Point2& a, const Point2& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Squared L2 distance between two elements, the `dist(ri, si)` used by the
/// paper's Euclidean / DTW / ERP formulas (Figure 2, Formula 1):
///   dist(r, s) = (r.x - s.x)^2 + (r.y - s.y)^2.
inline double SquaredDist(Point2 a, Point2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean (L2) distance between two elements.
inline double L2Dist(Point2 a, Point2 b) { return std::sqrt(SquaredDist(a, b)); }

/// L1 distance between two elements.
inline double L1Dist(Point2 a, Point2 b) {
  return std::fabs(a.x - b.x) + std::fabs(a.y - b.y);
}

/// Chebyshev (L-infinity) distance between two elements. Two elements match
/// under EDR/LCSS exactly when their Chebyshev distance is at most epsilon.
inline double LInfDist(Point2 a, Point2 b) {
  return std::fmax(std::fabs(a.x - b.x), std::fabs(a.y - b.y));
}

}  // namespace edr

#endif  // EDR_CORE_POINT_H_
