#include "core/cpu.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace edr {

#if defined(__x86_64__) && defined(__GNUC__) && !defined(EDR_DISABLE_SIMD)

bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}

bool CpuHasAvx512() {
  static const bool has = __builtin_cpu_supports("avx512f") != 0;
  return has;
}

#else

bool CpuHasAvx2() { return false; }
bool CpuHasAvx512() { return false; }

#endif

#if defined(__aarch64__) && !defined(EDR_DISABLE_SIMD)
bool CpuHasNeon() { return true; }
#else
bool CpuHasNeon() { return false; }
#endif

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar: return "scalar";
    case KernelLevel::kSse2: return "sse2";
    case KernelLevel::kAvx2: return "avx2";
    case KernelLevel::kAvx512: return "avx512";
    case KernelLevel::kNeon: return "neon";
  }
  return "?";
}

bool ParseKernelLevel(const char* name, KernelLevel* out) {
  if (name == nullptr) return false;
  for (const KernelLevel level :
       {KernelLevel::kScalar, KernelLevel::kSse2, KernelLevel::kAvx2,
        KernelLevel::kAvx512, KernelLevel::kNeon}) {
    if (std::strcmp(name, KernelLevelName(level)) == 0) {
      *out = level;
      return true;
    }
  }
  return false;
}

bool KernelLevelSupported(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return true;
    case KernelLevel::kSse2:
#if defined(__SSE2__) && !defined(EDR_DISABLE_SIMD)
      return true;
#else
      return false;
#endif
    case KernelLevel::kAvx2:
      return CpuHasAvx2();
    case KernelLevel::kAvx512:
      return CpuHasAvx512();
    case KernelLevel::kNeon:
      return CpuHasNeon();
  }
  return false;
}

namespace {

/// -1 = unresolved; re-resolved lazily after ResetActiveKernelLevel.
std::atomic<int> g_active_level{-1};

KernelLevel WidestSupportedLevel() {
  if (CpuHasNeon()) return KernelLevel::kNeon;
  if (CpuHasAvx512()) return KernelLevel::kAvx512;
  if (CpuHasAvx2()) return KernelLevel::kAvx2;
  if (KernelLevelSupported(KernelLevel::kSse2)) return KernelLevel::kSse2;
  return KernelLevel::kScalar;
}

KernelLevel ResolveActiveLevel() {
  const char* env = std::getenv("EDR_FORCE_KERNEL");
  if (env == nullptr || env[0] == '\0') return WidestSupportedLevel();
  KernelLevel forced;
  if (!ParseKernelLevel(env, &forced)) {
    std::fprintf(stderr,
                 "EDR_FORCE_KERNEL: unknown kernel level \"%s\" "
                 "(expected scalar|sse2|avx2|avx512|neon)\n",
                 env);
    std::exit(2);
  }
  if (!KernelLevelSupported(forced)) {
    std::fprintf(stderr,
                 "EDR_FORCE_KERNEL: kernel level \"%s\" is not supported on "
                 "this host/build\n",
                 env);
    std::exit(2);
  }
  return forced;
}

}  // namespace

KernelLevel ActiveKernelLevel() {
  int v = g_active_level.load(std::memory_order_relaxed);
  if (v < 0) {
    // Benign race: concurrent first callers resolve the same value.
    v = static_cast<int>(ResolveActiveLevel());
    g_active_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<KernelLevel>(v);
}

bool SetActiveKernelLevel(KernelLevel level) {
  if (!KernelLevelSupported(level)) return false;
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

void ResetActiveKernelLevel() {
  g_active_level.store(-1, std::memory_order_relaxed);
}

}  // namespace edr
