#include "core/cpu.h"

namespace edr {

#if defined(__x86_64__) && defined(__GNUC__) && !defined(EDR_DISABLE_SIMD)

bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}

#else

bool CpuHasAvx2() { return false; }

#endif

}  // namespace edr
