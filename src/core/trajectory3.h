#ifndef EDR_CORE_TRAJECTORY3_H_
#define EDR_CORE_TRAJECTORY3_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/point3.h"

namespace edr {

/// A three-dimensional moving-object trajectory (e.g. aircraft tracks or
/// the hand-position-in-space motion data the paper alludes to). Mirrors
/// the 2-D `Trajectory` API; the elastic distance kernels in
/// `distance/distance3.h` operate on it through the same dimension-generic
/// templates.
class Trajectory3 {
 public:
  Trajectory3() = default;
  explicit Trajectory3(std::vector<Point3> points, int label = -1)
      : points_(std::move(points)), label_(label) {}

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const Point3& operator[](size_t i) const { return points_[i]; }
  Point3& operator[](size_t i) { return points_[i]; }

  const std::vector<Point3>& points() const { return points_; }
  std::vector<Point3>& mutable_points() { return points_; }

  void Append(Point3 p) { points_.push_back(p); }
  void Append(double x, double y, double z) { points_.push_back({x, y, z}); }

  std::vector<Point3>::const_iterator begin() const { return points_.begin(); }
  std::vector<Point3>::const_iterator end() const { return points_.end(); }

  int label() const { return label_; }
  void set_label(int label) { label_ = label; }
  uint32_t id() const { return id_; }
  void set_id(uint32_t id) { id_ = id; }

  /// Per-dimension mean; zero when empty.
  Point3 Mean() const;
  /// Per-dimension population standard deviation; zero when empty.
  Point3 StdDev() const;

  friend bool operator==(const Trajectory3& a, const Trajectory3& b) {
    return a.points_ == b.points_;
  }

 private:
  std::vector<Point3> points_;
  int label_ = -1;
  uint32_t id_ = 0;
};

/// Z-score normalization per dimension (the Section 2 Norm(S) in 3-D);
/// constant dimensions are only mean-shifted.
Trajectory3 Normalize(const Trajectory3& s);
void NormalizeInPlace(Trajectory3& s);

}  // namespace edr

#endif  // EDR_CORE_TRAJECTORY3_H_
