#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <random>
#include <thread>
#include <utility>

#include "obs/json.h"
#include "obs/trace.h"

namespace edr {
namespace {

/// Per-thread RNG for the reservoir admission lottery. Sampling quality
/// only needs uniformity, not reproducibility — each publishing thread
/// seeds once from its own id so concurrent publishers never share RNG
/// state.
uint64_t ReservoirDraw(uint64_t bound) {
  thread_local std::mt19937_64 rng(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) ^
      0x9e3779b97f4a7c15ull);
  return rng() % bound;
}

void AppendRecordJson(std::string* out, const FlightRecord& r,
                      bool include_trace) {
  // The searcher name is caller-controlled and unbounded, so it is
  // appended as a std::string between two fixed-size numeric chunks —
  // a single snprintf into a stack buffer could truncate mid-escape and
  // emit malformed JSON.
  char buf[512];
  std::snprintf(buf, sizeof(buf), "{\"id\": %llu, \"t_ms\": %.3f, "
                "\"searcher\": \"",
                static_cast<unsigned long long>(r.id), r.t_seconds * 1e3);
  *out += buf;
  *out += JsonEscape(r.searcher);
  std::snprintf(buf, sizeof(buf),
                "\", \"ms\": %.6f, \"filter_ms\": %.6f, \"refine_ms\": %.6f, "
                "\"db_size\": %zu, \"edr_computed\": %zu, "
                "\"sched_budget\": %u, \"fusion_group\": %zu, "
                "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                "\"group_shared_fraction\": %.6f, "
                "\"plan_cache_hits\": %llu, \"plan_cache_misses\": %llu, "
                "\"stages\": ",
                r.latency_seconds * 1e3, r.filter_seconds * 1e3,
                r.refine_seconds * 1e3, r.db_size, r.edr_computed,
                r.sched_budget, r.fusion_group,
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses),
                r.group_shared_fraction,
                static_cast<unsigned long long>(r.plan_cache_hits),
                static_cast<unsigned long long>(r.plan_cache_misses));
  *out += buf;
  *out += r.stages.ToJson();
  if (include_trace) {
    *out += ", \"trace\": ";
    *out += r.trace != nullptr ? r.trace->ToJson() : "null";
  }
  *out += "}";
}

void AppendRecordArray(std::string* out, const std::vector<FlightRecord>& rs,
                       bool include_traces) {
  *out += "[";
  for (size_t i = 0; i < rs.size(); ++i) {
    if (i > 0) *out += ", ";
    AppendRecordJson(out, rs[i], include_traces);
  }
  *out += "]";
}

}  // namespace

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(const Options& options)
    : options_(options), origin_(std::chrono::steady_clock::now()) {
  options_.ring_capacity = std::max<size_t>(1, options_.ring_capacity);
  options_.top_slowest = std::max<size_t>(1, options_.top_slowest);
  options_.reservoir = std::max<size_t>(1, options_.reservoir);
  ring_ = std::make_unique<Slot[]>(options_.ring_capacity);
  top_.reserve(options_.top_slowest);
  reservoir_.reserve(options_.reservoir);
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked
  return *recorder;
}

uint64_t FlightRecorder::Publish(FlightRecord record) {
  if constexpr (kObsEnabled) {
    if (!enabled()) return 0;
    const uint64_t id =
        published_.fetch_add(1, std::memory_order_relaxed) + 1;
    record.id = id;
    record.t_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      origin_)
            .count();

    // Tail retention first: the pre-checks are lock-free, and a record
    // that qualifies is copied in before the ring (which may drop it
    // under contention) sees it.
    OfferTop(record);
    OfferReservoir(record, id);

    Slot& slot = ring_[(id - 1) % options_.ring_capacity];
    if (slot.mu.try_lock()) {
      slot.record = std::move(record);
      slot.occupied = true;
      slot.mu.unlock();
    } else {
      // A dump (or a lapped publisher) holds the slot: dropping beats
      // blocking a pool worker on telemetry.
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    return id;
  } else {
    (void)record;
    return 0;
  }
}

void FlightRecorder::OfferTop(const FlightRecord& record) {
  // Lock-free rejection: once the top list is full, only a record slower
  // than the fastest retained entry can displace anything.
  const double threshold = top_threshold_.load(std::memory_order_relaxed);
  if (threshold >= 0.0 && record.latency_seconds <= threshold) return;
  std::lock_guard<std::mutex> lock(top_mu_);
  const auto pos = std::upper_bound(
      top_.begin(), top_.end(), record,
      [](const FlightRecord& a, const FlightRecord& b) {
        return a.latency_seconds > b.latency_seconds;
      });
  if (top_.size() >= options_.top_slowest && pos == top_.end()) return;
  top_.insert(pos, record);
  if (top_.size() > options_.top_slowest) top_.pop_back();
  if (top_.size() >= options_.top_slowest) {
    top_threshold_.store(top_.back().latency_seconds,
                         std::memory_order_relaxed);
  }
}

void FlightRecorder::OfferReservoir(const FlightRecord& record,
                                    uint64_t seen) {
  // Algorithm R: the i-th record is admitted with probability R/i, and
  // on admission evicts a uniformly chosen resident. The lottery draw
  // happens before any lock, so losers pay one RNG call and nothing else.
  const size_t capacity = options_.reservoir;
  if (seen > capacity) {
    const uint64_t draw = ReservoirDraw(seen);
    if (draw >= capacity) return;
    std::lock_guard<std::mutex> lock(reservoir_mu_);
    if (reservoir_.size() < capacity) {
      reservoir_.push_back(record);
    } else {
      reservoir_[static_cast<size_t>(draw)] = record;
    }
    return;
  }
  std::lock_guard<std::mutex> lock(reservoir_mu_);
  if (reservoir_.size() < capacity) reservoir_.push_back(record);
}

std::vector<FlightRecord> FlightRecorder::TopSlowest() const {
  std::lock_guard<std::mutex> lock(top_mu_);
  return top_;
}

std::vector<FlightRecord> FlightRecorder::Reservoir() const {
  std::lock_guard<std::mutex> lock(reservoir_mu_);
  return reservoir_;
}

std::vector<FlightRecord> FlightRecorder::Recent() const {
  std::vector<FlightRecord> out;
  const uint64_t published = published_.load(std::memory_order_relaxed);
  if (published == 0) return out;
  const size_t capacity = options_.ring_capacity;
  const uint64_t first =
      published > capacity ? published - capacity : 0;  // oldest live id - 1
  out.reserve(std::min<uint64_t>(published, capacity));
  for (uint64_t i = first; i < published; ++i) {
    Slot& slot = ring_[i % capacity];
    std::lock_guard<std::mutex> lock(slot.mu);
    // Skip slots a publisher dropped or that hold a lapped/newer record.
    if (slot.occupied && slot.record.id == i + 1) out.push_back(slot.record);
  }
  return out;
}

std::string FlightRecorder::ToJson() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"published\": %llu, \"dropped\": %llu, \"top\": ",
                static_cast<unsigned long long>(published()),
                static_cast<unsigned long long>(dropped()));
  out += buf;
  AppendRecordArray(&out, TopSlowest(), /*include_traces=*/true);
  out += ", \"reservoir\": ";
  AppendRecordArray(&out, Reservoir(), /*include_traces=*/false);
  out += ", \"recent\": ";
  AppendRecordArray(&out, Recent(), /*include_traces=*/false);
  out += "}";
  return out;
}

void FlightRecorder::Clear() {
  {
    std::lock_guard<std::mutex> lock(top_mu_);
    top_.clear();
    top_threshold_.store(-1.0, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(reservoir_mu_);
    reservoir_.clear();
  }
  for (size_t i = 0; i < options_.ring_capacity; ++i) {
    std::lock_guard<std::mutex> lock(ring_[i].mu);
    ring_[i].occupied = false;
    ring_[i].record = FlightRecord{};
  }
  published_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace edr
