#include "obs/json.h"

#include <cctype>
#include <cstdio>

namespace edr {

namespace {

/// Recursive-descent JSON syntax checker over a cursor into the text.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool ParseDocument() {
    SkipSpace();
    if (!ParseValue()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Eat(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool ParseValue() {
    if (AtEnd() || depth_ > kMaxDepth) return false;
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return ParseLiteral("true");
      case 'f': return ParseLiteral("false");
      case 'n': return ParseLiteral("null");
      default: return ParseNumber();
    }
  }

  bool ParseObject() {
    ++depth_;
    if (!Eat('{')) return false;
    SkipSpace();
    if (Eat('}')) return --depth_, true;
    for (;;) {
      SkipSpace();
      if (!ParseString()) return false;
      SkipSpace();
      if (!Eat(':')) return false;
      SkipSpace();
      if (!ParseValue()) return false;
      SkipSpace();
      if (Eat('}')) return --depth_, true;
      if (!Eat(',')) return false;
    }
  }

  bool ParseArray() {
    ++depth_;
    if (!Eat('[')) return false;
    SkipSpace();
    if (Eat(']')) return --depth_, true;
    for (;;) {
      SkipSpace();
      if (!ParseValue()) return false;
      SkipSpace();
      if (Eat(']')) return --depth_, true;
      if (!Eat(',')) return false;
    }
  }

  bool ParseString() {
    if (!Eat('"')) return false;
    while (!AtEnd()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return true;
      if (c < 0x20) return false;  // Raw control characters are invalid.
      if (c == '\\') {
        if (AtEnd()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    Eat('-');
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return false;
    }
    if (!Eat('0')) {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Eat('.')) {
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eat('+')) Eat('-');
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool ParseLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonIsValid(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace edr
