#ifndef EDR_OBS_OBS_H_
#define EDR_OBS_OBS_H_

namespace edr {

/// Compile-time switch for the whole observability layer (trace spans,
/// stage counters, the metrics registry, thread-pool instrumentation).
///
/// The CMake option EDR_DISABLE_OBS defines EDR_DISABLE_OBS, which flips
/// this to false; every recording site is wrapped in
/// `if constexpr (kObsEnabled)`, so the disabled build compiles the
/// instrumentation to nothing — no clock reads, no atomic increments, no
/// allocations — while the query results stay bit-identical (observability
/// only ever records, it never steers).
#ifdef EDR_DISABLE_OBS
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

}  // namespace edr

#endif  // EDR_OBS_OBS_H_
