#ifndef EDR_OBS_FLIGHT_RECORDER_H_
#define EDR_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/stage_counters.h"

namespace edr {

class QueryTrace;

/// Everything the flight recorder keeps about one completed query: the
/// timing split, the stage-by-stage pruning decomposition, the schedule
/// context (budget granted, fusion group size), the feature-cache totals
/// at completion, and the per-query phase trace. Records are built after
/// the query's own clock has stopped, so nothing here sits on the filter
/// or refine path.
struct FlightRecord {
  /// Recorder-assigned id, 1-based in publish order. This is the id the
  /// OpenMetrics exemplars reference and the /flight dump lists.
  uint64_t id = 0;
  /// Completion time, seconds since the recorder was constructed.
  double t_seconds = 0.0;
  std::string searcher;  ///< NamedSearcher display name ("" = unknown).
  double latency_seconds = 0.0;
  double filter_seconds = 0.0;
  double refine_seconds = 0.0;
  size_t db_size = 0;
  size_t edr_computed = 0;
  StageCounters stages;
  /// Intra-query worker budget the scheduler granted (0 = the query did
  /// not go through the scheduler).
  unsigned sched_budget = 0;
  /// Members in the fused group this query was answered in (1 = solo
  /// scheduled call, 0 = unscheduled).
  size_t fusion_group = 0;
  /// Feature-cache cumulative totals observed at completion (the
  /// attached cache's whole-lifetime counters, not a per-query delta —
  /// consecutive records difference into per-step activity).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Achieved shared-bin fraction of the fused group this query ran in:
  /// 1 - popcount(union of member signatures) / sum of member popcounts,
  /// estimated from the grouper's query fingerprints (0 when the query
  /// ran solo or the searcher has no fingerprint hook).
  double group_shared_fraction = 0.0;
  /// Fused-plan-cache cumulative totals at completion, same whole-lifetime
  /// convention as cache_hits/cache_misses (0 when no plan cache was
  /// attached).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  /// The per-query phase tree; shared with the KnnResult, so retaining a
  /// record costs a refcount, not a copy. Null in EDR_DISABLE_OBS builds.
  std::shared_ptr<const QueryTrace> trace;
};

/// A bounded in-memory recorder of completed queries with a tail-sampling
/// retention policy — the "which queries sat in the tail" complement to
/// the MetricsRegistry's aggregate histograms:
///
///  * a ring of the most recent `ring_capacity` records (what just
///    happened),
///  * the current `top_slowest` slowest records since the last Clear
///    (the tail, always retained no matter how old), and
///  * a uniform reservoir sample of `reservoir` records over the whole
///    run (the unbiased baseline the tail is compared against).
///
/// Publish is designed to stay off the query path's critical section:
/// one relaxed ticket fetch_add picks the ring slot, a try_lock guards
/// the slot write (a publisher colliding with a dump drops the record
/// and counts it — it never blocks), and the top/reservoir structures
/// are only locked when a cheap lock-free pre-check (latency above the
/// current top threshold; reservoir admission lottery won) says the
/// record will actually be retained. In EDR_DISABLE_OBS builds Publish
/// compiles to nothing and every accessor reports empty.
class FlightRecorder {
 public:
  struct Options {
    size_t ring_capacity = 256;
    size_t top_slowest = 16;
    size_t reservoir = 64;
  };

  FlightRecorder();
  explicit FlightRecorder(const Options& options);

  /// The process-wide recorder the scheduler and CLI publish into.
  static FlightRecorder& Global();

  /// Runtime switch (default on). Disabling stops publication but keeps
  /// retained records readable — the A/B knob bench_obs uses to price
  /// the recorder.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one completed query; returns the assigned id (0 when
  /// publication is disabled or compiled out). Thread-safe; called from
  /// pool workers emitting wave results concurrently.
  uint64_t Publish(FlightRecord record);

  uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// The retained tail, slowest first. Always contains the top-N slowest
  /// queries published since the last Clear (N = options.top_slowest).
  std::vector<FlightRecord> TopSlowest() const;

  /// The uniform reservoir sample, in no particular order.
  std::vector<FlightRecord> Reservoir() const;

  /// The ring contents, oldest to newest. Slots mid-publish are skipped.
  std::vector<FlightRecord> Recent() const;

  /// The whole recorder as one JSON document:
  /// {"published", "dropped", "top": [...], "reservoir": [...],
  ///  "recent": [...]}. Top records embed their phase trace; reservoir
  /// and ring records stay flat. Valid per obs/json.h in every build.
  std::string ToJson() const;

  /// Drops every retained record and zeroes the counters (tests and
  /// bench repeats; not part of the serve path).
  void Clear();

  const Options& options() const { return options_; }

 private:
  struct Slot {
    std::mutex mu;
    bool occupied = false;
    FlightRecord record;
  };

  void OfferTop(const FlightRecord& record);
  void OfferReservoir(const FlightRecord& record, uint64_t seen);

  Options options_;
  std::chrono::steady_clock::time_point origin_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> dropped_{0};

  std::unique_ptr<Slot[]> ring_;

  mutable std::mutex top_mu_;
  std::vector<FlightRecord> top_;  ///< sorted by latency, slowest first
  /// Latency of the last (fastest) retained top entry once the list is
  /// full; a record at or below it cannot enter, checked lock-free.
  std::atomic<double> top_threshold_{-1.0};

  mutable std::mutex reservoir_mu_;
  std::vector<FlightRecord> reservoir_;
};

}  // namespace edr

#endif  // EDR_OBS_FLIGHT_RECORDER_H_
