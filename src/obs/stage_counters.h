#ifndef EDR_OBS_STAGE_COUNTERS_H_
#define EDR_OBS_STAGE_COUNTERS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/obs.h"

namespace edr {

/// Per-query, per-stage pruning accounting: where exactly did each
/// database trajectory drop out of the filter-and-refine pipeline? The
/// paper's pruning power (Section 5) is the one-number summary
/// `1 - dp_invoked / db_size`; these counters decompose it losslessly by
/// stage so a workload report can say *which* filter earned the pruning.
///
/// Every candidate that reaches a searcher's filter chain increments
/// `considered` and then lands in exactly one bucket — one of the stage
/// prunes, or `dp_invoked` — so for any schedule (including intra-query
/// parallel ones):
///
///   considered == qgram_pruned + histogram_pruned + triangle_pruned
///                 + dp_invoked
///   considered + not_visited == db_size
///
/// which is the conservation law the observability tests check. Counters
/// are recorded only when kObsEnabled; in EDR_DISABLE_OBS builds the
/// fields exist but stay zero.
struct alignas(64) StageCounters {
  /// Candidates that entered the filter chain (visited by the scan).
  uint64_t considered = 0;
  /// Pruned by the Q-gram match-count threshold (Theorems 1/3) — also
  /// counts the LCSS score-cap filter and the 3-D element-match filter,
  /// which are the same bound specialized.
  uint64_t qgram_pruned = 0;
  /// Pruned by the histogram transport lower bound (Theorem 6).
  uint64_t histogram_pruned = 0;
  /// Pruned by the near-triangle / CSE reference bound (Figure 4).
  uint64_t triangle_pruned = 0;
  /// True-distance DPs started (== SearchStats::edr_computed).
  uint64_t dp_invoked = 0;
  /// DPs that early-abandoned past the k-th-distance bound (their result
  /// was a lower bound, not an exact distance).
  uint64_t dp_early_abandoned = 0;
  /// Total DP table cells (|Q| x |S|) of the invoked verifications — the
  /// work the filters failed to prune. Abandoned DPs may evaluate fewer
  /// cells than their table size; this counts the table.
  uint64_t dp_cells = 0;
  /// Candidates never visited at all because a sorted scan hit its hard
  /// stop (every remaining lower bound exceeded the k-th distance).
  /// Derived as db_size - considered when a query finishes.
  uint64_t not_visited = 0;

  /// Increments one field iff observability is compiled in. Keeps the
  /// searchers' hot filter chains to one line per recording site, e.g.
  /// `st.Bump(&StageCounters::qgram_pruned)`.
  void Bump(uint64_t StageCounters::* field) {
    if constexpr (kObsEnabled) {
      ++(this->*field);
    } else {
      (void)field;
    }
  }

  /// Records one invoked true-distance DP over a |Q| x |S| table.
  void CountDp(size_t query_len, size_t subject_len) {
    if constexpr (kObsEnabled) {
      ++dp_invoked;
      dp_cells +=
          static_cast<uint64_t>(query_len) * static_cast<uint64_t>(subject_len);
    } else {
      (void)query_len;
      (void)subject_len;
    }
  }

  /// Folds another counter set in (per-worker shards into the query
  /// total, per-query totals into a workload total).
  void Add(const StageCounters& other) {
    if constexpr (kObsEnabled) {
      considered += other.considered;
      qgram_pruned += other.qgram_pruned;
      histogram_pruned += other.histogram_pruned;
      triangle_pruned += other.triangle_pruned;
      dp_invoked += other.dp_invoked;
      dp_early_abandoned += other.dp_early_abandoned;
      dp_cells += other.dp_cells;
      not_visited += other.not_visited;
    } else {
      (void)other;
    }
  }

  /// Sets not_visited from the database size once a query's scan is over
  /// (candidates skipped by a hard stop were never counted anywhere).
  void FinalizeNotVisited(size_t db_size) {
    if constexpr (kObsEnabled) {
      const uint64_t n = static_cast<uint64_t>(db_size);
      not_visited = n >= considered ? n - considered : 0;
    } else {
      (void)db_size;
    }
  }

  /// Candidates pruned without a true distance computation; equals
  /// PruningPower() * db_size when the conservation law holds.
  uint64_t PrunedWithoutDp() const {
    return qgram_pruned + histogram_pruned + triangle_pruned + not_visited;
  }

  /// True iff every visited candidate is accounted for by exactly one
  /// bucket (trivially true when observability is compiled out and all
  /// fields are zero).
  bool Conserves(size_t db_size) const {
    return considered == qgram_pruned + histogram_pruned + triangle_pruned +
                             dp_invoked &&
           considered + not_visited == static_cast<uint64_t>(db_size);
  }

  /// The counters as one JSON object (keys match the field names).
  std::string ToJson() const;
};

static_assert(sizeof(StageCounters) == 64,
              "one cache line so per-worker slots never false-share");

}  // namespace edr

#endif  // EDR_OBS_STAGE_COUNTERS_H_
