#include "obs/openmetrics.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/registry.h"

namespace edr {

namespace {

bool NameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool NameChar(char c) {
  return NameStartChar(c) || std::isdigit(static_cast<unsigned char>(c));
}

std::string FormatLe(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", seconds);
  return buf;
}

}  // namespace

std::string OpenMetricsName(std::string_view registry_name,
                            std::string_view prefix) {
  std::string out(prefix);
  out.reserve(prefix.size() + registry_name.size());
  for (const char c : registry_name) {
    out += NameChar(c) ? c : '_';
  }
  if (out.empty() || !NameStartChar(out[0])) out.insert(out.begin(), '_');
  // A family literally named *_total would make the counter sample
  // "..._total_total"; fold the suffix into the sample instead.
  constexpr std::string_view kTotal = "_total";
  if (out.size() > kTotal.size() &&
      out.compare(out.size() - kTotal.size(), kTotal.size(), kTotal) == 0) {
    out.resize(out.size() - kTotal.size());
  }
  return out;
}

std::string OpenMetricsEscapeLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot,
                              const OpenMetricsOptions& options) {
  std::string out;
  char buf[256];

  for (const MetricsSnapshot::CounterRow& c : snapshot.counters) {
    const std::string name = OpenMetricsName(c.name, options.prefix);
    out += "# TYPE " + name + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s_total %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }

  for (const MetricsSnapshot::GaugeRow& g : snapshot.gauges) {
    const std::string name = OpenMetricsName(g.name, options.prefix);
    out += "# TYPE " + name + " gauge\n";
    std::snprintf(buf, sizeof(buf), "%s %.9g\n", name.c_str(), g.value);
    out += buf;
  }

  for (const MetricsSnapshot::HistogramRow& h : snapshot.histograms) {
    const std::string name = OpenMetricsName(h.name, options.prefix);
    out += "# TYPE " + name + " histogram\n";
    constexpr std::string_view kSeconds = "_seconds";
    if (name.size() > kSeconds.size() &&
        name.compare(name.size() - kSeconds.size(), kSeconds.size(),
                     kSeconds) == 0) {
      out += "# UNIT " + name + " seconds\n";
    }

    // Exemplars: the retained slowest queries, each attached to the
    // bucket its latency cumulates into — one per bucket, slowest first,
    // so the tail buckets point at resolvable flight-recorder entries.
    std::map<size_t, const FlightRecord*> exemplars;
    std::vector<FlightRecord> top;
    if (options.exemplars != nullptr && h.name == "query.seconds") {
      top = options.exemplars->TopSlowest();
      for (const FlightRecord& r : top) {
        const size_t b = LatencyHistogram::BucketIndex(r.latency_seconds);
        // A latency clamped into the overflow bucket exceeds that
        // bucket's le bound; OpenMetrics requires a bucket exemplar's
        // value to lie within the bucket, so skip it.
        if (r.latency_seconds > LatencyBucketUpperSeconds(b)) continue;
        exemplars.emplace(b, &r);
      }
    }

    // The exposition derives count from the bucket sum (not the racy
    // separately-recorded count atomic) so +Inf == _count holds in every
    // scrape, mid-recording included.
    uint64_t cumulative = 0;
    for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      cumulative += h.buckets[b];
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%s\"} %llu",
                    name.c_str(),
                    FormatLe(LatencyBucketUpperSeconds(b)).c_str(),
                    static_cast<unsigned long long>(cumulative));
      out += buf;
      const auto ex = exemplars.find(b);
      if (ex != exemplars.end()) {
        std::snprintf(buf, sizeof(buf), " # {entry_id=\"%llu\"} %.9g",
                      static_cast<unsigned long long>(ex->second->id),
                      ex->second->latency_seconds);
        out += buf;
      }
      out += "\n";
    }
    std::snprintf(buf, sizeof(buf),
                  "%s_bucket{le=\"+Inf\"} %llu\n%s_count %llu\n"
                  "%s_sum %.9f\n",
                  name.c_str(), static_cast<unsigned long long>(cumulative),
                  name.c_str(), static_cast<unsigned long long>(cumulative),
                  name.c_str(), h.total_seconds);
    out += buf;
  }

  out += "# EOF\n";
  return out;
}

namespace {

/// Line-by-line OpenMetrics checker. Tracks per-family TYPE metadata and
/// the histogram bucket series so it can enforce the two structural
/// invariants the exposition promises: cumulative non-decreasing buckets
/// with strictly increasing `le`, and +Inf == _count.
class OmChecker {
 public:
  explicit OmChecker(std::string* error) : error_(error) {}

  bool Check(std::string_view text) {
    if (text.empty()) return Fail("empty exposition");
    size_t pos = 0;
    bool saw_eof = false;
    while (pos < text.size()) {
      size_t end = text.find('\n', pos);
      if (end == std::string_view::npos) {
        return Fail("missing final newline");
      }
      const std::string_view line = text.substr(pos, end - pos);
      pos = end + 1;
      ++line_;
      if (saw_eof) return Fail("content after # EOF");
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      if (line.empty()) return Fail("blank line");
      if (line[0] == '#') {
        if (!CheckMetadata(line)) return false;
      } else {
        if (!CheckSample(line)) return false;
      }
    }
    if (!saw_eof) return Fail("missing # EOF terminator");
    return Finish();
  }

 private:
  struct HistogramState {
    bool has_bucket = false;
    double last_le = -1.0;
    uint64_t last_cumulative = 0;
    bool saw_inf = false;
    uint64_t inf_value = 0;
    bool saw_count = false;
    uint64_t count_value = 0;
  };

  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = "line " + std::to_string(line_) + ": " + message;
    }
    return false;
  }

  static bool ValidName(std::string_view name) {
    if (name.empty() || !NameStartChar(name[0])) return false;
    for (const char c : name) {
      if (!NameChar(c)) return false;
    }
    return true;
  }

  bool CheckMetadata(std::string_view line) {
    // "# TYPE <name> <type>" | "# HELP <name> <text>" | "# UNIT <name> <u>"
    if (line.size() < 3 || line[1] != ' ') return Fail("malformed comment");
    const std::string_view rest = line.substr(2);
    const size_t kw_end = rest.find(' ');
    if (kw_end == std::string_view::npos) return Fail("malformed metadata");
    const std::string_view keyword = rest.substr(0, kw_end);
    if (keyword != "TYPE" && keyword != "HELP" && keyword != "UNIT") {
      return Fail("unknown metadata keyword");
    }
    const std::string_view tail = rest.substr(kw_end + 1);
    const size_t name_end = tail.find(' ');
    const std::string_view name =
        name_end == std::string_view::npos ? tail : tail.substr(0, name_end);
    if (!ValidName(name)) return Fail("bad metric family name");
    if (keyword == "TYPE") {
      if (name_end == std::string_view::npos) return Fail("TYPE missing type");
      const std::string_view type = tail.substr(name_end + 1);
      static constexpr std::string_view kTypes[] = {
          "counter",   "gauge",    "histogram", "gaugehistogram",
          "summary",   "info",     "stateset",  "unknown"};
      bool known = false;
      for (const std::string_view t : kTypes) known = known || type == t;
      if (!known) return Fail("unknown TYPE");
      if (!types_.emplace(std::string(name), std::string(type)).second) {
        return Fail("duplicate TYPE for family");
      }
    }
    return true;
  }

  /// Parses one `name="value"` label pair list in braces; advances *pos
  /// past the closing brace. Stores le when present.
  bool ParseLabels(std::string_view line, size_t* pos, std::string* le,
                   bool* has_le) {
    ++*pos;  // '{'
    if (*pos < line.size() && line[*pos] == '}') {
      ++*pos;
      return true;
    }
    for (;;) {
      size_t p = *pos;
      const size_t name_start = p;
      while (p < line.size() && NameChar(line[p]) && line[p] != ':') ++p;
      const std::string_view label_name =
          line.substr(name_start, p - name_start);
      if (label_name.empty() ||
          std::isdigit(static_cast<unsigned char>(label_name[0]))) {
        return Fail("bad label name");
      }
      if (p >= line.size() || line[p] != '=') return Fail("label missing =");
      ++p;
      if (p >= line.size() || line[p] != '"') return Fail("label missing \"");
      ++p;
      std::string value;
      while (p < line.size() && line[p] != '"') {
        if (line[p] == '\\') {
          ++p;
          if (p >= line.size()) return Fail("dangling escape");
          if (line[p] != '\\' && line[p] != '"' && line[p] != 'n') {
            return Fail("bad escape in label value");
          }
          value += line[p] == 'n' ? '\n' : line[p];
        } else if (line[p] == '\n') {
          return Fail("raw newline in label value");
        } else {
          value += line[p];
        }
        ++p;
      }
      if (p >= line.size()) return Fail("unterminated label value");
      ++p;  // closing quote
      if (label_name == "le") {
        *le = value;
        *has_le = true;
      }
      if (p < line.size() && line[p] == ',') {
        *pos = p + 1;
        continue;
      }
      if (p < line.size() && line[p] == '}') {
        *pos = p + 1;
        return true;
      }
      return Fail("expected , or } in label set");
    }
  }

  static bool ParseNumber(std::string_view token, double* value) {
    if (token.empty()) return false;
    if (token == "+Inf") {
      *value = std::numeric_limits<double>::infinity();
      return true;
    }
    const std::string copy(token);
    char* end = nullptr;
    *value = std::strtod(copy.c_str(), &end);
    return end != nullptr && *end == '\0' && end != copy.c_str();
  }

  bool CheckSample(std::string_view line) {
    size_t pos = 0;
    while (pos < line.size() && NameChar(line[pos])) ++pos;
    const std::string name(line.substr(0, pos));
    if (!ValidName(name)) return Fail("bad sample metric name");

    std::string le;
    bool has_le = false;
    if (pos < line.size() && line[pos] == '{') {
      if (!ParseLabels(line, &pos, &le, &has_le)) return false;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return Fail("sample missing value separator");
    }
    ++pos;

    // Value, then optionally a timestamp, then optionally an exemplar.
    std::string_view tail = line.substr(pos);
    const size_t exemplar_at = tail.find(" # ");
    std::string_view value_part =
        exemplar_at == std::string_view::npos ? tail
                                              : tail.substr(0, exemplar_at);
    double value = 0.0;
    const size_t ts_split = value_part.find(' ');
    if (ts_split != std::string_view::npos) {
      double timestamp = 0.0;
      if (!ParseNumber(value_part.substr(ts_split + 1), &timestamp)) {
        return Fail("bad timestamp");
      }
      value_part = value_part.substr(0, ts_split);
    }
    if (!ParseNumber(value_part, &value)) return Fail("bad sample value");
    if (exemplar_at != std::string_view::npos) {
      // A bucket sample's exemplar must lie within the bucket: its value
      // may not exceed the le bound. Samples without a parseable le
      // (counters, malformed le caught later) get an unbounded check.
      double le_bound = std::numeric_limits<double>::infinity();
      double le_value = 0.0;
      if (has_le && ParseNumber(le, &le_value)) le_bound = le_value;
      if (!CheckExemplar(tail.substr(exemplar_at + 3), le_bound)) {
        return false;
      }
    }

    return CheckFamilyRules(name, has_le, le, value);
  }

  bool CheckExemplar(std::string_view exemplar, double le_bound) {
    if (exemplar.empty() || exemplar[0] != '{') {
      return Fail("exemplar missing label set");
    }
    size_t pos = 0;
    std::string le;
    bool has_le = false;
    if (!ParseLabels(exemplar, &pos, &le, &has_le)) return false;
    if (pos >= exemplar.size() || exemplar[pos] != ' ') {
      return Fail("exemplar missing value");
    }
    std::string_view rest = exemplar.substr(pos + 1);
    const size_t split = rest.find(' ');
    double value = 0.0;
    if (split != std::string_view::npos) {
      double timestamp = 0.0;
      if (!ParseNumber(rest.substr(split + 1), &timestamp)) {
        return Fail("bad exemplar timestamp");
      }
      rest = rest.substr(0, split);
    }
    if (!ParseNumber(rest, &value)) return Fail("bad exemplar value");
    if (value > le_bound) return Fail("exemplar value exceeds bucket le");
    return true;
  }

  /// Applies the per-type structural rules once a sample parsed: counters
  /// must use the _total/_created suffixes, histogram buckets must be
  /// cumulative with increasing le, and the histogram state is accumulated
  /// for the end-of-document +Inf == _count check.
  bool CheckFamilyRules(const std::string& name, bool has_le,
                        const std::string& le, double value) {
    static constexpr std::string_view kSuffixes[] = {
        "_bucket", "_total", "_count", "_sum", "_created"};
    std::string family = name;
    std::string suffix;
    for (const std::string_view s : kSuffixes) {
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string stripped = name.substr(0, name.size() - s.size());
        if (types_.count(stripped) != 0) {
          family = stripped;
          suffix = s;
          break;
        }
      }
    }
    const auto type_it = types_.find(family);
    if (type_it == types_.end()) return true;  // untyped family: no rules
    const std::string& type = type_it->second;

    if (type == "counter") {
      if (suffix != "_total" && suffix != "_created") {
        return Fail("counter sample must end in _total or _created");
      }
      return true;
    }
    if (type != "histogram") return true;

    HistogramState& st = histograms_[family];
    if (suffix == "_bucket") {
      if (!has_le) return Fail("histogram bucket missing le label");
      double le_value = 0.0;
      if (!ParseNumber(le, &le_value)) return Fail("bad le value");
      if (st.has_bucket && le_value <= st.last_le) {
        return Fail("histogram le not increasing");
      }
      if (st.has_bucket &&
          value + 1e-9 < static_cast<double>(st.last_cumulative)) {
        return Fail("histogram buckets not cumulative");
      }
      st.has_bucket = true;
      st.last_le = le_value;
      st.last_cumulative = static_cast<uint64_t>(value);
      if (std::isinf(le_value)) {
        st.saw_inf = true;
        st.inf_value = static_cast<uint64_t>(value);
      }
      return true;
    }
    if (suffix == "_count") {
      st.saw_count = true;
      st.count_value = static_cast<uint64_t>(value);
      return true;
    }
    if (suffix == "_sum" || suffix == "_created") return true;
    return Fail("histogram sample needs _bucket/_count/_sum suffix");
  }

  bool Finish() {
    for (const auto& [family, st] : histograms_) {
      if (st.has_bucket && !st.saw_inf) {
        return Fail("histogram " + family + " missing +Inf bucket");
      }
      if (st.saw_inf && st.saw_count && st.inf_value != st.count_value) {
        return Fail("histogram " + family + " +Inf bucket != _count");
      }
    }
    return true;
  }

  std::string* error_;
  size_t line_ = 0;
  std::map<std::string, std::string> types_;
  std::map<std::string, HistogramState> histograms_;
};

}  // namespace

bool OpenMetricsIsValid(std::string_view text, std::string* error) {
  return OmChecker(error).Check(text);
}

}  // namespace edr
