#ifndef EDR_OBS_JSON_H_
#define EDR_OBS_JSON_H_

#include <string>
#include <string_view>

namespace edr {

/// True iff `text` is one syntactically valid JSON value (RFC 8259
/// grammar: objects, arrays, strings with escapes, numbers, true/false/
/// null) with nothing but whitespace after it. The observability
/// exporters emit JSON by hand with snprintf, so tests round-trip every
/// emitted document through this checker to certify the output parses.
bool JsonIsValid(std::string_view text);

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view text);

}  // namespace edr

#endif  // EDR_OBS_JSON_H_
