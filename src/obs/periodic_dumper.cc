#include "obs/periodic_dumper.h"

#include <cmath>
#include <cstdio>

#include "obs/registry.h"

namespace edr {

bool PeriodicMetricsDumper::ValidInterval(double seconds, std::string* error) {
  if (std::isfinite(seconds) && seconds > 0.0) return true;
  if (error != nullptr) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "metrics interval must be a positive number of seconds "
                  "(got %g)",
                  seconds);
    *error = buf;
  }
  return false;
}

PeriodicMetricsDumper::PeriodicMetricsDumper(const Options& options)
    : options_(options), start_(std::chrono::steady_clock::now()) {
  if (!options_.sink) {
    options_.sink = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
}

PeriodicMetricsDumper::~PeriodicMetricsDumper() { Stop(); }

bool PeriodicMetricsDumper::Start() {
  if (!ValidInterval(options_.interval_seconds)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return true;  // already running
  stop_ = false;
  start_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { Run(); });
  return true;
}

void PeriodicMetricsDumper::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  to_join.join();
  Dump();  // final partial-interval delta
}

bool PeriodicMetricsDumper::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return thread_.joinable();
}

size_t PeriodicMetricsDumper::dumps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dumps_;
}

void PeriodicMetricsDumper::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const auto interval =
        std::chrono::duration<double>(options_.interval_seconds);
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    Dump();
    lock.lock();
  }
}

void PeriodicMetricsDumper::Dump() {
  const std::string json =
      MetricsRegistry::Global().SnapshotAndReset().ToJson();
  const double t_ms =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count() *
      1e3;
  char head[64];
  std::snprintf(head, sizeof(head), "{\"t_ms\": %.1f, \"metrics\": ", t_ms);
  std::string line = head;
  line += json;
  line += "}";
  options_.sink(line);
  std::lock_guard<std::mutex> lock(mu_);
  ++dumps_;
}

}  // namespace edr
