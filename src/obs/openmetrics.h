#ifndef EDR_OBS_OPENMETRICS_H_
#define EDR_OBS_OPENMETRICS_H_

#include <string>
#include <string_view>

namespace edr {

class FlightRecorder;
struct MetricsSnapshot;

/// The registry entry name mapped to an OpenMetrics metric family name:
/// prefixed, every character outside [a-zA-Z0-9_:] replaced with '_'
/// (registry names use dots — "query.dp_total" → "edr_query_dp_total"),
/// and a trailing "_total" stripped so the counter sample suffix does not
/// double up.
std::string OpenMetricsName(std::string_view registry_name,
                            std::string_view prefix = "edr_");

/// Escapes a label value per the OpenMetrics ABNF: backslash, double
/// quote, and newline become \\ \" \n.
std::string OpenMetricsEscapeLabel(std::string_view value);

struct OpenMetricsOptions {
  /// Prepended to every metric family name.
  std::string prefix = "edr_";
  /// When set, the "query.seconds" histogram's tail buckets carry
  /// exemplars referencing this recorder's retained slowest queries
  /// (label entry_id = FlightRecord::id), so a scrape can jump from a
  /// hot histogram bucket straight to the flight-recorder entry that
  /// landed there.
  const FlightRecorder* exemplars = nullptr;
};

/// Renders the snapshot as one OpenMetrics 1.0 text exposition:
/// counters as `<name>_total`, latency histograms as cumulative
/// `<name>_bucket{le="..."}` series (upper edges from
/// LatencyBucketUpperSeconds) plus `_sum`/`_count`, terminated by
/// `# EOF`. Works in every build — an EDR_DISABLE_OBS snapshot simply
/// renders all-zero families.
std::string RenderOpenMetrics(const MetricsSnapshot& snapshot,
                              const OpenMetricsOptions& options = {});

/// True iff `text` is one syntactically valid OpenMetrics exposition:
/// well-formed metadata and sample lines, metric-name and label grammar,
/// `# EOF` terminator, cumulative (non-decreasing) histogram buckets
/// whose `+Inf` bucket equals the family's `_count`, and counter samples
/// carrying the `_total` suffix. The obs/json.h-style checker the tests
/// and the CLI's `check-openmetrics` command round-trip every emitted
/// exposition through. On failure, `*error` (when non-null) receives a
/// one-line description including the offending line number.
bool OpenMetricsIsValid(std::string_view text, std::string* error = nullptr);

}  // namespace edr

#endif  // EDR_OBS_OPENMETRICS_H_
