#ifndef EDR_OBS_TIMELINE_H_
#define EDR_OBS_TIMELINE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace edr {

class ThreadPool;

/// One utilization snapshot: what the pool, the scheduler backlog, and
/// the feature cache looked like at a sampling tick.
struct UtilizationSample {
  double t_seconds = 0.0;      ///< since Start()
  unsigned busy_workers = 0;   ///< ThreadPool::BusyWorkers()
  unsigned capacity = 0;       ///< pool workers + caller
  size_t queue_depth = 0;      ///< ThreadPool::QueueDepth()
  size_t backlog = 0;          ///< scheduler/session pending queries
  size_t cache_entries = 0;    ///< feature-cache occupancy
  uint64_t fused_groups = 0;   ///< cumulative sched.fused_groups
  uint64_t fused_queries = 0;  ///< cumulative sched.fused_queries
};

/// Occupancy summary over a captured timeline: busy_workers / capacity
/// percentiles, so a serve report can say "the pool sat at 85% busy at
/// p95" without shipping every sample.
struct UtilizationSummary {
  size_t samples = 0;
  size_t dropped = 0;  ///< overwritten by the bounded ring
  double occupancy_p50 = 0.0;
  double occupancy_p95 = 0.0;
  double occupancy_max = 0.0;
  double mean_backlog = 0.0;
  size_t max_backlog = 0;
  size_t max_queue_depth = 0;
};

/// A background thread snapshotting live utilization signals at a fixed
/// interval into a bounded ring — the continuous view of pool occupancy,
/// scheduler backlog, and cache occupancy that per-query records cannot
/// give. The sampler only ever reads relaxed atomics and registry
/// counters, so it perturbs the query path by nothing but its own core
/// time; the ring overwrites oldest samples, so a long serve run holds
/// the latest window at fixed memory. In EDR_DISABLE_OBS builds Start()
/// is a no-op: no thread, no samples.
class TimelineSampler {
 public:
  struct Options {
    double interval_seconds = 0.02;
    size_t capacity = 4096;
    /// Pool whose occupancy is sampled; nullptr = ThreadPool::Global().
    ThreadPool* pool = nullptr;
    /// Live backlog probe (e.g. QuerySession::PendingRelaxed); optional.
    std::function<size_t()> backlog;
    /// Feature-cache occupancy probe (entries); optional.
    std::function<size_t()> cache_entries;
  };

  TimelineSampler();
  explicit TimelineSampler(const Options& options);
  ~TimelineSampler();

  TimelineSampler(const TimelineSampler&) = delete;
  TimelineSampler& operator=(const TimelineSampler&) = delete;

  /// Spawns the sampler thread; false (with no thread) when the interval
  /// is not positive or observability is compiled out. Idempotent while
  /// running.
  bool Start();

  /// Takes one final sample, stops the thread, and keeps the timeline
  /// readable. Idempotent.
  void Stop();

  bool running() const;

  /// The captured window, oldest to newest.
  std::vector<UtilizationSample> Samples() const;

  UtilizationSummary Summarize() const;

  /// {"interval_ms": ..., "summary": {...}, "samples": [{...}]} — valid
  /// JSON in every build (empty samples when compiled out).
  std::string ToJson() const;

  const Options& options() const { return options_; }

 private:
  void Run();
  void TakeSample();

  Options options_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
  std::vector<UtilizationSample> ring_;
  size_t next_ = 0;        ///< ring write cursor
  size_t total_ = 0;       ///< samples ever taken
};

}  // namespace edr

#endif  // EDR_OBS_TIMELINE_H_
