#ifndef EDR_OBS_TRACE_AGG_H_
#define EDR_OBS_TRACE_AGG_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace edr {

/// Merges many per-query phase trees (QueryTrace) into one aggregate
/// profile keyed by name-path: two spans land in the same aggregate node
/// iff their names match and their parents merged into the same node. The
/// result answers "where did the whole batch spend its time" — total and
/// mean duration plus span count per phase, with the tree shape preserved
/// — without keeping every per-query trace alive.
///
/// Single-writer: Add is called from one thread (the batch driver, after
/// each query completes or while walking finished results). The traces
/// themselves may have been recorded concurrently; Add reads them through
/// their own locked snapshot.
class TraceAggregate {
 public:
  struct Node {
    std::string name;
    int32_t parent = -1;        ///< Index into nodes(); -1 = root.
    double seconds = 0.0;       ///< Summed duration across all merged spans.
    uint64_t count = 0;         ///< Summed Node::count of the merged spans.
    uint64_t spans = 0;         ///< How many spans merged into this node.
    std::vector<int32_t> children;  ///< Indexes in first-seen order.
  };

  /// Folds one query's trace into the aggregate. Null is a convenience
  /// no-op so EDR_DISABLE_OBS call sites need no guard.
  void Add(const QueryTrace* trace);

  /// Number of traces merged so far.
  size_t traces() const { return traces_; }

  const std::vector<Node>& nodes() const { return nodes_; }

  /// Summed duration of every node with this name, like
  /// QueryTrace::PhaseSeconds but across the whole batch.
  double PhaseSeconds(const std::string& name) const;

  /// The aggregate as nested JSON:
  /// {"traces": N, "spans": [{"name", "ms", "avg_ms", "count", "spans",
  /// "children": [...]}]} — same tree shape as QueryTrace::ToJson, but
  /// durations are batch totals and avg_ms = ms / spans.
  std::string ToJson() const;

 private:
  /// Returns the aggregate node for (parent, name), creating it on first
  /// sight.
  int32_t Intern(int32_t parent, const char* name);

  std::vector<Node> nodes_;
  /// (aggregate parent, span name) -> aggregate node index.
  std::map<std::pair<int32_t, std::string>, int32_t> index_;
  size_t traces_ = 0;
};

}  // namespace edr

#endif  // EDR_OBS_TRACE_AGG_H_
