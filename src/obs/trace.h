#ifndef EDR_OBS_TRACE_H_
#define EDR_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace edr {

/// A per-query phase tree of scoped timings — which fraction of one query
/// went to the bound sweep, the candidate ordering, each worker's
/// refinement shard, the DP verifications. Searchers allocate one trace
/// per query (when observability is compiled in), record spans into it,
/// and attach it to the KnnResult.
///
/// Span names must be string literals (the trace stores the pointer, not
/// a copy). Begin/End are thread-safe so the per-worker refinement shards
/// of one query can record into the shared trace; spans are per-phase and
/// per-worker, never per-candidate, so the mutex is uncontended in
/// practice.
class QueryTrace {
 public:
  struct Node {
    const char* name = "";
    double start_seconds = 0.0;  ///< Relative to trace construction.
    double seconds = 0.0;        ///< Filled by End / AddAggregate.
    int32_t parent = -1;         ///< Index into nodes(); -1 = root.
    uint64_t count = 1;          ///< >1 for aggregated nodes (e.g. DP calls).
  };

  QueryTrace() : origin_(std::chrono::steady_clock::now()) {}

  /// Opens a span; returns its node id (pass as `parent` to nest).
  int32_t Begin(const char* name, int32_t parent = -1);

  /// Closes the span; its duration is now - its Begin time.
  void End(int32_t id);

  /// Records a pre-aggregated node (e.g. the summed duration of all DP
  /// calls of one worker) without a Begin/End pair. Zero-count aggregates
  /// record pure counters (seconds = 0) in the tree.
  int32_t AddAggregate(const char* name, double seconds, uint64_t count,
                       int32_t parent = -1);

  /// Sum of the durations of every node with this (literal) name — e.g.
  /// PhaseSeconds("refine_worker") is total refine busy time across
  /// workers. Compares by string content, not pointer.
  double PhaseSeconds(const char* name) const;

  /// Number of recorded nodes.
  size_t size() const;

  std::vector<Node> nodes() const;

  /// Seconds elapsed since the trace was constructed.
  double ElapsedSeconds() const;

  /// The phase tree as a nested JSON document:
  /// {"total_ms": ..., "spans": [{"name", "start_ms", "ms", "count",
  /// "children": [...]}]}. Children appear in Begin order.
  std::string ToJson() const;

 private:
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Node> nodes_;
};

/// RAII scope for one QueryTrace span. A null trace (always the case in
/// EDR_DISABLE_OBS builds, where MakeQueryTrace() returns nullptr) makes
/// every operation a no-op, so call sites need no #ifdefs.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(QueryTrace* trace, const char* name, int32_t parent = -1) {
    if constexpr (kObsEnabled) {
      if (trace != nullptr) {
        trace_ = trace;
        id_ = trace->Begin(name, parent);
      }
    } else {
      (void)trace;
      (void)name;
      (void)parent;
    }
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early (idempotent; the destructor is then a no-op).
  void End() {
    if constexpr (kObsEnabled) {
      if (trace_ != nullptr) {
        trace_->End(id_);
        trace_ = nullptr;
      }
    }
  }

  /// Node id for nesting children under this span; -1 when inactive.
  int32_t id() const { return id_; }

 private:
  QueryTrace* trace_ = nullptr;
  int32_t id_ = -1;
};

/// Plumbs a trace (and the parent span for any nodes recorded) through
/// call layers that do not own the query — the intra-query refinement
/// drivers record one "refine_worker" span per participating worker.
struct TraceContext {
  QueryTrace* trace = nullptr;
  int32_t parent = -1;
};

/// A fresh trace for one query, or nullptr when observability is compiled
/// out — the single allocation point the EDR_DISABLE_OBS build removes.
inline std::shared_ptr<QueryTrace> MakeQueryTrace() {
  if constexpr (kObsEnabled) {
    return std::make_shared<QueryTrace>();
  } else {
    return nullptr;
  }
}

}  // namespace edr

#endif  // EDR_OBS_TRACE_H_
