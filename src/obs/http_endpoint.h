#ifndef EDR_OBS_HTTP_ENDPOINT_H_
#define EDR_OBS_HTTP_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/obs.h"

namespace edr {

class FlightRecorder;
class TimelineSampler;

/// A minimal blocking HTTP/1.1 exposition endpoint over POSIX sockets —
/// just enough protocol for `curl` and a Prometheus/OpenMetrics scraper,
/// on purpose: no external dependency, one accept-loop thread, one
/// request per connection. Routes:
///
///   GET /metrics   OpenMetrics text exposition of the global registry
///                  (with flight-recorder exemplars when attached)
///   GET /healthz   "ok" — liveness probe
///   GET /flight    flight-recorder JSON dump
///   GET /timeline  utilization timeline JSON (when a sampler is attached)
///
/// Binds 127.0.0.1 only: this is an operator diagnostics port, not a
/// public listener. In EDR_DISABLE_OBS builds Start() returns false and
/// no socket is ever opened.
class MetricsHttpEndpoint {
 public:
  struct Options {
    /// 0 picks an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Exemplar + /flight source; nullptr = FlightRecorder::Global().
    const FlightRecorder* flight = nullptr;
    /// /timeline source; nullptr serves 404 on that route.
    const TimelineSampler* timeline = nullptr;
    /// OpenMetrics metric-family prefix.
    std::string prefix = "edr_";
    /// Per-recv/send socket timeout on accepted connections. The accept
    /// loop serves serially, so this bounds how long one silent client
    /// can stall other scrapers (and how long Stop() waits on a
    /// connection accepted in the instant before shutdown).
    int io_timeout_ms = 5000;
  };

  MetricsHttpEndpoint();
  explicit MetricsHttpEndpoint(const Options& options);
  ~MetricsHttpEndpoint();

  MetricsHttpEndpoint(const MetricsHttpEndpoint&) = delete;
  MetricsHttpEndpoint& operator=(const MetricsHttpEndpoint&) = delete;

  /// Binds, listens, and spawns the accept loop. False (with `*error`
  /// describing why, when non-null) on bind failure or when observability
  /// is compiled out. Idempotent while running.
  bool Start(std::string* error = nullptr);

  /// Closes the listener and joins the accept loop. Idempotent.
  void Stop();

  bool running() const { return listen_fd_.load() >= 0; }

  /// The bound port (the resolved ephemeral port when Options::port was
  /// 0); 0 before Start.
  uint16_t port() const { return port_.load(); }

  /// Requests served since Start (404s included).
  uint64_t requests() const { return requests_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Options options_;
  std::atomic<int> listen_fd_{-1};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
  /// The connection currently being served (-1 between requests), so
  /// Stop() can shutdown() a mid-recv client instead of waiting on it.
  /// Guarded by conn_mu_: the accept loop clears it before close(), so a
  /// shutdown() under the lock can never hit a recycled descriptor.
  std::mutex conn_mu_;
  int conn_fd_ = -1;
};

}  // namespace edr

#endif  // EDR_OBS_HTTP_ENDPOINT_H_
