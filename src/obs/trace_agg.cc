#include "obs/trace_agg.h"

#include <cstdio>

#include "obs/json.h"

namespace edr {

int32_t TraceAggregate::Intern(int32_t parent, const char* name) {
  const auto key = std::make_pair(parent, std::string(name));
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const int32_t id = static_cast<int32_t>(nodes_.size());
  Node node;
  node.name = key.second;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  if (parent >= 0) nodes_[static_cast<size_t>(parent)].children.push_back(id);
  index_.emplace(key, id);
  return id;
}

void TraceAggregate::Add(const QueryTrace* trace) {
  if (trace == nullptr) return;
  const std::vector<QueryTrace::Node> nodes = trace->nodes();
  // Parents are always created before their children (Begin takes an
  // already-allocated parent id), so a single forward pass can map every
  // source node to its aggregate node.
  std::vector<int32_t> mapped(nodes.size(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    const QueryTrace::Node& node = nodes[i];
    int32_t parent = -1;
    if (node.parent >= 0 && static_cast<size_t>(node.parent) < i) {
      parent = mapped[static_cast<size_t>(node.parent)];
    }
    const int32_t id = Intern(parent, node.name);
    Node& agg = nodes_[static_cast<size_t>(id)];
    agg.seconds += node.seconds;
    agg.count += node.count;
    ++agg.spans;
    mapped[i] = id;
  }
  ++traces_;
}

double TraceAggregate::PhaseSeconds(const std::string& name) const {
  double sum = 0.0;
  for (const Node& node : nodes_) {
    if (node.name == name) sum += node.seconds;
  }
  return sum;
}

namespace {

void AppendAggNodeJson(const std::vector<TraceAggregate::Node>& nodes,
                       int32_t id, std::string* out) {
  const TraceAggregate::Node& node = nodes[static_cast<size_t>(id)];
  const double avg_ms =
      node.spans > 0 ? node.seconds * 1e3 / static_cast<double>(node.spans)
                     : 0.0;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"name\": \"%s\", \"ms\": %.6f, \"avg_ms\": %.6f, "
                "\"count\": %llu, \"spans\": %llu",
                JsonEscape(node.name).c_str(), node.seconds * 1e3, avg_ms,
                static_cast<unsigned long long>(node.count),
                static_cast<unsigned long long>(node.spans));
  *out += buf;
  if (!node.children.empty()) {
    *out += ", \"children\": [";
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) *out += ", ";
      AppendAggNodeJson(nodes, node.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string TraceAggregate::ToJson() const {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"traces\": %llu, \"spans\": [",
                static_cast<unsigned long long>(traces_));
  out += buf;
  bool first = true;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent != -1) continue;
    if (!first) out += ", ";
    first = false;
    AppendAggNodeJson(nodes_, static_cast<int32_t>(i), &out);
  }
  out += "]}";
  return out;
}

}  // namespace edr
