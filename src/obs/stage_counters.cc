#include "obs/stage_counters.h"

#include <cstdio>

namespace edr {

std::string StageCounters::ToJson() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"considered\": %llu, \"qgram_pruned\": %llu, "
      "\"histogram_pruned\": %llu, \"triangle_pruned\": %llu, "
      "\"dp_invoked\": %llu, \"dp_early_abandoned\": %llu, "
      "\"dp_cells\": %llu, \"not_visited\": %llu}",
      static_cast<unsigned long long>(considered),
      static_cast<unsigned long long>(qgram_pruned),
      static_cast<unsigned long long>(histogram_pruned),
      static_cast<unsigned long long>(triangle_pruned),
      static_cast<unsigned long long>(dp_invoked),
      static_cast<unsigned long long>(dp_early_abandoned),
      static_cast<unsigned long long>(dp_cells),
      static_cast<unsigned long long>(not_visited));
  return buf;
}

}  // namespace edr
