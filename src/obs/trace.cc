#include "obs/trace.h"

#include <cstdio>
#include <cstring>

#include "obs/json.h"

namespace edr {

int32_t QueryTrace::Begin(const char* name, int32_t parent) {
  const double start =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    origin_)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  Node node;
  node.name = name;
  node.start_seconds = start;
  node.parent = parent;
  nodes_.push_back(node);
  return static_cast<int32_t>(nodes_.size()) - 1;
}

void QueryTrace::End(int32_t id) {
  const double now =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    origin_)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) return;
  nodes_[static_cast<size_t>(id)].seconds =
      now - nodes_[static_cast<size_t>(id)].start_seconds;
}

int32_t QueryTrace::AddAggregate(const char* name, double seconds,
                                 uint64_t count, int32_t parent) {
  const double start =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    origin_)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  Node node;
  node.name = name;
  node.start_seconds = start;
  node.seconds = seconds;
  node.parent = parent;
  node.count = count;
  nodes_.push_back(node);
  return static_cast<int32_t>(nodes_.size()) - 1;
}

double QueryTrace::PhaseSeconds(const char* name) const {
  std::lock_guard<std::mutex> lock(mu_);
  double sum = 0.0;
  for (const Node& node : nodes_) {
    if (std::strcmp(node.name, name) == 0) sum += node.seconds;
  }
  return sum;
}

size_t QueryTrace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

std::vector<QueryTrace::Node> QueryTrace::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_;
}

double QueryTrace::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin_)
      .count();
}

namespace {

void AppendNodeJson(const std::vector<QueryTrace::Node>& nodes,
                    const std::vector<std::vector<int32_t>>& children,
                    int32_t id, std::string* out) {
  const QueryTrace::Node& node = nodes[static_cast<size_t>(id)];
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"name\": \"%s\", \"start_ms\": %.6f, \"ms\": %.6f, "
                "\"count\": %llu",
                JsonEscape(node.name).c_str(), node.start_seconds * 1e3,
                node.seconds * 1e3,
                static_cast<unsigned long long>(node.count));
  *out += buf;
  const std::vector<int32_t>& kids = children[static_cast<size_t>(id)];
  if (!kids.empty()) {
    *out += ", \"children\": [";
    for (size_t i = 0; i < kids.size(); ++i) {
      if (i > 0) *out += ", ";
      AppendNodeJson(nodes, children, kids[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string QueryTrace::ToJson() const {
  const std::vector<Node> nodes = this->nodes();
  std::vector<std::vector<int32_t>> children(nodes.size());
  std::vector<int32_t> roots;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const int32_t parent = nodes[i].parent;
    if (parent >= 0 && static_cast<size_t>(parent) < nodes.size()) {
      children[static_cast<size_t>(parent)].push_back(
          static_cast<int32_t>(i));
    } else {
      roots.push_back(static_cast<int32_t>(i));
    }
  }
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"total_ms\": %.6f, \"spans\": [",
                ElapsedSeconds() * 1e3);
  out += buf;
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) out += ", ";
    AppendNodeJson(nodes, children, roots[i], &out);
  }
  out += "]}";
  return out;
}

}  // namespace edr
