#include "obs/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/registry.h"
#include "query/thread_pool.h"

namespace edr {

namespace {

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  index = index > 0 ? index - 1 : 0;
  index = std::min(index, values.size() - 1);
  return values[index];
}

}  // namespace

TimelineSampler::TimelineSampler() : TimelineSampler(Options()) {}

TimelineSampler::TimelineSampler(const Options& options)
    : options_(options), start_(std::chrono::steady_clock::now()) {
  options_.capacity = std::max<size_t>(1, options_.capacity);
}

TimelineSampler::~TimelineSampler() { Stop(); }

bool TimelineSampler::Start() {
  if constexpr (kObsEnabled) {
    if (!(options_.interval_seconds > 0.0)) return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (thread_.joinable()) return true;  // already running
    stop_ = false;
    start_ = std::chrono::steady_clock::now();
    thread_ = std::thread([this] { Run(); });
    return true;
  } else {
    return false;
  }
}

void TimelineSampler::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  to_join.join();
  // One final sample so the timeline always covers the stop edge.
  TakeSample();
}

bool TimelineSampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return thread_.joinable();
}

void TimelineSampler::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const auto interval =
        std::chrono::duration<double>(options_.interval_seconds);
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    TakeSample();
    lock.lock();
  }
}

void TimelineSampler::TakeSample() {
  if constexpr (kObsEnabled) {
    ThreadPool& pool =
        options_.pool != nullptr ? *options_.pool : ThreadPool::Global();
    // Registry references resolved once; entries are process-lifetime.
    static ObsCounter& fused_groups =
        MetricsRegistry::Global().Counter("sched.fused_groups");
    static ObsCounter& fused_queries =
        MetricsRegistry::Global().Counter("sched.fused_queries");

    UtilizationSample sample;
    sample.t_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    sample.busy_workers = pool.BusyWorkers();
    sample.capacity = pool.num_workers() + 1;
    sample.queue_depth = pool.QueueDepth();
    sample.backlog = options_.backlog ? options_.backlog() : 0;
    sample.cache_entries =
        options_.cache_entries ? options_.cache_entries() : 0;
    sample.fused_groups = fused_groups.Load();
    sample.fused_queries = fused_queries.Load();

    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < options_.capacity) {
      ring_.push_back(sample);
    } else {
      ring_[next_ % options_.capacity] = sample;
    }
    next_ = (next_ + 1) % options_.capacity;
    ++total_;
  }
}

std::vector<UtilizationSample> TimelineSampler::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<UtilizationSample> out;
  out.reserve(ring_.size());
  if (ring_.size() < options_.capacity) {
    out = ring_;
  } else {
    // Ring is full: oldest sample sits at the write cursor.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % options_.capacity]);
    }
  }
  return out;
}

UtilizationSummary TimelineSampler::Summarize() const {
  const std::vector<UtilizationSample> samples = Samples();
  UtilizationSummary summary;
  {
    std::lock_guard<std::mutex> lock(mu_);
    summary.dropped = total_ >= samples.size() ? total_ - samples.size() : 0;
  }
  summary.samples = samples.size();
  if (samples.empty()) return summary;
  std::vector<double> occupancy;
  occupancy.reserve(samples.size());
  double backlog_sum = 0.0;
  for (const UtilizationSample& s : samples) {
    const double cap = s.capacity > 0 ? static_cast<double>(s.capacity) : 1.0;
    occupancy.push_back(static_cast<double>(s.busy_workers) / cap);
    backlog_sum += static_cast<double>(s.backlog);
    summary.max_backlog = std::max(summary.max_backlog, s.backlog);
    summary.max_queue_depth = std::max(summary.max_queue_depth, s.queue_depth);
  }
  summary.occupancy_p50 = Percentile(occupancy, 0.50);
  summary.occupancy_p95 = Percentile(occupancy, 0.95);
  summary.occupancy_max = *std::max_element(occupancy.begin(), occupancy.end());
  summary.mean_backlog = backlog_sum / static_cast<double>(samples.size());
  return summary;
}

std::string TimelineSampler::ToJson() const {
  const std::vector<UtilizationSample> samples = Samples();
  const UtilizationSummary summary = Summarize();
  std::string out;
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"interval_ms\": %.3f, \"summary\": {\"samples\": %zu, "
      "\"dropped\": %zu, \"occupancy_p50\": %.4f, \"occupancy_p95\": %.4f, "
      "\"occupancy_max\": %.4f, \"mean_backlog\": %.2f, "
      "\"max_backlog\": %zu, \"max_queue_depth\": %zu}, \"samples\": [",
      options_.interval_seconds * 1e3, summary.samples, summary.dropped,
      summary.occupancy_p50, summary.occupancy_p95, summary.occupancy_max,
      summary.mean_backlog, summary.max_backlog, summary.max_queue_depth);
  out += buf;
  for (size_t i = 0; i < samples.size(); ++i) {
    const UtilizationSample& s = samples[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"t_ms\": %.3f, \"busy\": %u, \"capacity\": %u, "
        "\"queue_depth\": %zu, \"backlog\": %zu, \"cache_entries\": %zu, "
        "\"fused_groups\": %llu, \"fused_queries\": %llu}",
        i > 0 ? ", " : "", s.t_seconds * 1e3, s.busy_workers, s.capacity,
        s.queue_depth, s.backlog, s.cache_entries,
        static_cast<unsigned long long>(s.fused_groups),
        static_cast<unsigned long long>(s.fused_queries));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace edr
