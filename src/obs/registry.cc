#include "obs/registry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace edr {

size_t LatencyHistogram::BucketOf(double seconds) {
  if (!(seconds > 0.0)) return 0;  // Also catches NaN.
  const double ns = seconds * 1e9;
  if (ns >= static_cast<double>(uint64_t{1} << (kBuckets - 1))) {
    return kBuckets - 1;
  }
  // bucket b holds [2^(b-1), 2^b) ns: one past the highest set bit.
  return static_cast<size_t>(
      std::bit_width(static_cast<uint64_t>(ns)));
}

void LatencyHistogram::Record(double seconds) {
  if constexpr (kObsEnabled) {
    const size_t bucket = std::min(BucketOf(seconds), kBuckets - 1);
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    const double ns = std::max(seconds, 0.0) * 1e9;
    sum_ns_.fetch_add(static_cast<uint64_t>(ns),
                      std::memory_order_relaxed);
  } else {
    (void)seconds;
  }
}

double LatencyHistogram::PercentileSeconds(double q) const {
  return PercentileFromBuckets(BucketCounts(), q);
}

double LatencyHistogram::PercentileFromBuckets(
    const std::array<uint64_t, kBuckets>& counts, double q) {
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Nearest rank, matching LatencyPercentile in eval/metrics.
  const double rank_d = q * static_cast<double>(total);
  uint64_t rank = static_cast<uint64_t>(std::ceil(rank_d));
  rank = rank > 0 ? rank : 1;
  rank = std::min(rank, total);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      // Upper edge of bucket b: 2^b ns (bucket 0 is the sub-ns bucket).
      return b == 0 ? 1e-9
                    : static_cast<double>(uint64_t{1} << b) * 1e-9;
    }
  }
  return static_cast<double>(uint64_t{1} << (kBuckets - 1)) * 1e-9;
}

std::array<uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::BucketCounts() const {
  std::array<uint64_t, kBuckets> out;
  for (size_t b = 0; b < kBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

void LatencyHistogram::Reset() {
  for (size_t b = 0; b < kBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

LatencyHistogram::Drained LatencyHistogram::Drain() {
  Drained out;
  for (size_t b = 0; b < kBuckets; ++b) {
    out.buckets[b] = buckets_[b].exchange(0, std::memory_order_relaxed);
  }
  out.count = count_.exchange(0, std::memory_order_relaxed);
  out.sum_ns = sum_ns_.exchange(0, std::memory_order_relaxed);
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

ObsCounter& MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<ObsCounter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<ObsCounter>();
  return *slot;
}

ObsGauge& MetricsRegistry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<ObsGauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<ObsGauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::Histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<LatencyHistogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Load()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Load()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = histogram->TotalCount();
    row.total_seconds = histogram->TotalSeconds();
    row.p50_seconds = histogram->PercentileSeconds(0.50);
    row.p95_seconds = histogram->PercentileSeconds(0.95);
    row.p99_seconds = histogram->PercentileSeconds(0.99);
    row.buckets = histogram->BucketCounts();
    snapshot.histograms.push_back(std::move(row));
  }
  return snapshot;
}

MetricsSnapshot MetricsRegistry::SnapshotAndReset() {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Drain()});
  }
  // Gauges are levels, not accumulations: a delta scrape reports the
  // current level and leaves it standing.
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Load()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    const LatencyHistogram::Drained d = histogram->Drain();
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = d.count;
    row.total_seconds = static_cast<double>(d.sum_ns) * 1e-9;
    row.p50_seconds = LatencyHistogram::PercentileFromBuckets(d.buckets, 0.50);
    row.p95_seconds = LatencyHistogram::PercentileFromBuckets(d.buckets, 0.95);
    row.p99_seconds = LatencyHistogram::PercentileFromBuckets(d.buckets, 0.99);
    row.buckets = d.buckets;
    snapshot.histograms.push_back(std::move(row));
  }
  return snapshot;
}

void RegisterStandardMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static const char* const kCounters[] = {
      "query.count",          "query.dp_total",
      "query.dp_cells",       "query.candidates_pruned",
      "query.candidates_total", "batch.count",
      "batch.queries",        "sched.waves",
      "sched.wave_queries",   "sched.widened_queries",
      "sched.budget_granted", "sched.fused_groups",
      "sched.fused_queries",  "sched.group_similarity",
      "sched.group_fifo",     "sched.group_forced",
      "feature_cache.hits",   "feature_cache.misses",
      "feature_cache.evictions", "plan_cache.hits",
      "plan_cache.misses",    "plan_cache.evictions",
      "plan_cache.collisions",
  };
  for (const char* name : kCounters) registry.Counter(name);
  registry.Gauge("sched.group_shared_bin_fraction");
  registry.Histogram("query.seconds");
  registry.Histogram("batch.seconds");
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\": {";
  char buf[256];
  for (size_t i = 0; i < counters.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu",
                  i > 0 ? ", " : "", JsonEscape(counters[i].name).c_str(),
                  static_cast<unsigned long long>(counters[i].value));
    out += buf;
  }
  out += "}, \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.9g", i > 0 ? ", " : "",
                  JsonEscape(gauges[i].name).c_str(), gauges[i].value);
    out += buf;
  }
  out += "}, \"histograms\": [";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramRow& h = histograms[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\": \"%s\", \"count\": %llu, "
                  "\"total_ms\": %.6f, \"p50_ms\": %.6f, "
                  "\"p95_ms\": %.6f, \"p99_ms\": %.6f}",
                  i > 0 ? ", " : "", JsonEscape(h.name).c_str(),
                  static_cast<unsigned long long>(h.count),
                  h.total_seconds * 1e3, h.p50_seconds * 1e3,
                  h.p95_seconds * 1e3, h.p99_seconds * 1e3);
    out += buf;
  }
  out += "]}";
  return out;
}

std::string MetricsSnapshot::ToTable() const {
  std::string out;
  char buf[256];
  if (!counters.empty()) {
    std::snprintf(buf, sizeof(buf), "%-32s %14s\n", "counter", "value");
    out += buf;
    for (const CounterRow& c : counters) {
      std::snprintf(buf, sizeof(buf), "%-32s %14llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += buf;
    }
  }
  if (!gauges.empty()) {
    std::snprintf(buf, sizeof(buf), "%-32s %14s\n", "gauge", "value");
    out += buf;
    for (const GaugeRow& g : gauges) {
      std::snprintf(buf, sizeof(buf), "%-32s %14.6f\n", g.name.c_str(),
                    g.value);
      out += buf;
    }
  }
  if (!histograms.empty()) {
    std::snprintf(buf, sizeof(buf), "%-32s %10s %12s %10s %10s %10s\n",
                  "histogram", "count", "total_ms", "p50_ms", "p95_ms",
                  "p99_ms");
    out += buf;
    for (const HistogramRow& h : histograms) {
      std::snprintf(buf, sizeof(buf),
                    "%-32s %10llu %12.3f %10.3f %10.3f %10.3f\n",
                    h.name.c_str(),
                    static_cast<unsigned long long>(h.count),
                    h.total_seconds * 1e3, h.p50_seconds * 1e3,
                    h.p95_seconds * 1e3, h.p99_seconds * 1e3);
      out += buf;
    }
  }
  return out;
}

}  // namespace edr
