#include "obs/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/openmetrics.h"
#include "obs/registry.h"
#include "obs/timeline.h"

namespace edr {

namespace {

constexpr const char kContentTypeOpenMetrics[] =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";
constexpr const char kContentTypeJson[] = "application/json";
constexpr const char kContentTypeText[] = "text/plain; charset=utf-8";

// MSG_NOSIGNAL: a scraper that disconnects mid-response must surface as
// EPIPE, not deliver SIGPIPE (whose default action would kill the whole
// process — including a batch run that merely offered --listen).
#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

void WriteAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, kSendFlags);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away (EPIPE/timeout); nothing sensible to do
    }
    sent += static_cast<size_t>(n);
  }
}

void WriteResponse(int fd, int status, const char* status_text,
                   const char* content_type, const std::string& body) {
  char head[256];
  const int n = std::snprintf(
      head, sizeof(head),
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      status, status_text, content_type, body.size());
  WriteAll(fd, head, static_cast<size_t>(n));
  WriteAll(fd, body.data(), body.size());
}

/// Reads until the end of the request head ("\r\n\r\n") or a small cap —
/// bodies are ignored; every route is a GET.
std::string ReadRequestHead(int fd) {
  std::string head;
  char buf[1024];
  while (head.size() < 16 * 1024) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos) break;
  }
  return head;
}

/// "GET /metrics HTTP/1.1" → "/metrics" (query strings stripped);
/// empty on anything that is not a GET.
std::string ParseGetPath(const std::string& head) {
  if (head.compare(0, 4, "GET ") != 0) return "";
  const size_t start = 4;
  const size_t end = head.find(' ', start);
  if (end == std::string::npos) return "";
  std::string path = head.substr(start, end - start);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

}  // namespace

MetricsHttpEndpoint::MetricsHttpEndpoint()
    : MetricsHttpEndpoint(Options()) {}

MetricsHttpEndpoint::MetricsHttpEndpoint(const Options& options)
    : options_(options) {}

MetricsHttpEndpoint::~MetricsHttpEndpoint() { Stop(); }

bool MetricsHttpEndpoint::Start(std::string* error) {
  if constexpr (!kObsEnabled) {
    if (error != nullptr) *error = "observability compiled out";
    return false;
  }
  if (listen_fd_.load() >= 0) return true;  // already running

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  port_.store(ntohs(bound.sin_port));
  listen_fd_.store(fd);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void MetricsHttpEndpoint::Stop() {
  const int fd = listen_fd_.exchange(-1);
  if (fd < 0) return;
  // shutdown unblocks the accept() in flight; close releases the port.
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  {
    // Unblock a connection mid-recv/send so the join below can't wait on
    // a client that never speaks. Safe under the lock: the accept loop
    // only close()s a connection after clearing conn_fd_ here.
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (conn_fd_ >= 0) ::shutdown(conn_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  port_.store(0);
}

void MetricsHttpEndpoint::AcceptLoop() {
  for (;;) {
    const int fd = listen_fd_.load();
    if (fd < 0) return;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop
    }
    // Bound each recv/send so one silent client can't stall the serial
    // accept loop (or a Stop racing this accept) indefinitely.
    if (options_.io_timeout_ms > 0) {
      timeval tv;
      tv.tv_sec = options_.io_timeout_ms / 1000;
      tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
      ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fd_ = conn;
    }
    if (listen_fd_.load() < 0) {
      // Stop ran between accept and registration; its shutdown may have
      // missed this connection, so bail out instead of serving it.
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fd_ = -1;
      ::close(conn);
      return;
    }
    ServeConnection(conn);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fd_ = -1;
    }
    ::close(conn);
  }
}

void MetricsHttpEndpoint::ServeConnection(int fd) {
  const std::string path = ParseGetPath(ReadRequestHead(fd));
  requests_.fetch_add(1, std::memory_order_relaxed);

  const FlightRecorder* flight = options_.flight != nullptr
                                     ? options_.flight
                                     : &FlightRecorder::Global();
  if (path == "/metrics") {
    OpenMetricsOptions om;
    om.prefix = options_.prefix;
    om.exemplars = flight;
    WriteResponse(fd, 200, "OK", kContentTypeOpenMetrics,
                  RenderOpenMetrics(MetricsRegistry::Global().Snapshot(), om));
  } else if (path == "/healthz") {
    WriteResponse(fd, 200, "OK", kContentTypeText, "ok\n");
  } else if (path == "/flight") {
    WriteResponse(fd, 200, "OK", kContentTypeJson, flight->ToJson());
  } else if (path == "/timeline" && options_.timeline != nullptr) {
    WriteResponse(fd, 200, "OK", kContentTypeJson,
                  options_.timeline->ToJson());
  } else if (path.empty()) {
    WriteResponse(fd, 405, "Method Not Allowed", kContentTypeText,
                  "only GET is served\n");
  } else {
    WriteResponse(fd, 404, "Not Found", kContentTypeText,
                  "routes: /metrics /healthz /flight /timeline\n");
  }
}

}  // namespace edr
