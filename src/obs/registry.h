#ifndef EDR_OBS_REGISTRY_H_
#define EDR_OBS_REGISTRY_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace edr {

/// A process-wide monotonic counter, padded to its own cache line so
/// unrelated counters hammered from different threads never false-share.
/// Increments are relaxed atomics: counters are statistics, not
/// synchronization, and a snapshot only needs eventual per-counter
/// totals.
struct alignas(64) ObsCounter {
  std::atomic<uint64_t> value{0};

  void Inc(uint64_t n = 1) {
    if constexpr (kObsEnabled) {
      value.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  uint64_t Load() const { return value.load(std::memory_order_relaxed); }
  void Reset() { value.store(0, std::memory_order_relaxed); }
  /// Atomically reads and zeroes — the delta-scrape primitive. Increments
  /// racing the exchange land after it and count toward the next scrape,
  /// so no increment is ever double-reported or lost.
  uint64_t Drain() { return value.exchange(0, std::memory_order_relaxed); }
};

static_assert(sizeof(ObsCounter) == 64 && alignof(ObsCounter) == 64,
              "counters must own their cache line");

/// A process-wide gauge: a level that is *set*, not accumulated — e.g.
/// the shared-bin fraction of the most recent fusion group. Same cache
/// line padding and relaxed-atomic discipline as ObsCounter. Gauges are
/// levels, so delta scrapes (SnapshotAndReset) report them unchanged
/// instead of zeroing them.
struct alignas(64) ObsGauge {
  std::atomic<double> value{0.0};

  void Set(double v) {
    if constexpr (kObsEnabled) {
      value.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  double Load() const { return value.load(std::memory_order_relaxed); }
  void Reset() { value.store(0.0, std::memory_order_relaxed); }
};

static_assert(sizeof(ObsGauge) == 64 && alignof(ObsGauge) == 64,
              "gauges must own their cache line");

/// A log-bucketed latency histogram: bucket b counts samples in
/// [2^(b-1), 2^b) nanoseconds (bucket 0 is [0, 1ns)), covering ~1ns to
/// ~78 minutes in 52 buckets. Recording is one relaxed fetch_add — cheap
/// enough for one sample per query — and percentiles are reconstructed
/// from the bucket counts at snapshot time with ~2x worst-case value
/// error (the price of fixed memory and lock-free recording).
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 52;

  void Record(double seconds);

  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  double TotalSeconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  /// Nearest-rank percentile estimate (q in [0, 1]): the upper edge of
  /// the bucket holding the q-th sample; 0 when empty.
  double PercentileSeconds(double q) const;

  std::array<uint64_t, kBuckets> BucketCounts() const;

  void Reset();

  /// Atomically moves the histogram's contents out (buckets, count, sum)
  /// and zeroes it — LatencyHistogram's half of a delta scrape. Per-bucket
  /// exchanges are not a single atomic cut: a sample recorded mid-drain
  /// lands wholly in this scrape or wholly in the next, never in both,
  /// which is the granularity a periodic scraper needs.
  struct Drained {
    std::array<uint64_t, kBuckets> buckets = {};
    uint64_t count = 0;
    uint64_t sum_ns = 0;
  };
  Drained Drain();

  /// Nearest-rank percentile over an explicit bucket array (the shared
  /// math behind PercentileSeconds and the delta-snapshot path).
  static double PercentileFromBuckets(
      const std::array<uint64_t, kBuckets>& counts, double q);

  /// The bucket a sample of `seconds` lands in — public so the
  /// OpenMetrics exemplar pass can map a flight-recorder latency back to
  /// its histogram bucket.
  static size_t BucketIndex(double seconds) {
    return std::min(BucketOf(seconds), kBuckets - 1);
  }

 private:
  static size_t BucketOf(double seconds);

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

/// One exported view of the registry, taken atomically enough for
/// reporting (counters keep ticking while the snapshot walks them).
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name;
    uint64_t count = 0;
    double total_seconds = 0.0;
    double p50_seconds = 0.0;
    double p95_seconds = 0.0;
    double p99_seconds = 0.0;
    /// Raw per-bucket counts (non-cumulative; bucket b covers
    /// [2^(b-1), 2^b) ns). The OpenMetrics exposition derives its
    /// cumulative `le` series from these.
    std::array<uint64_t, LatencyHistogram::kBuckets> buckets = {};
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": [{...}]} —
  /// machine-readable export.
  std::string ToJson() const;

  /// The aligned-table format the workload reports use: one
  /// "name value" row per counter, then a latency table with
  /// count / total / p50 / p95 / p99 columns.
  std::string ToTable() const;
};

/// Upper edge, in seconds, of log bucket `b` — the histogram's `le`
/// boundary for OpenMetrics exposition (bucket 0 is the sub-ns bucket).
inline double LatencyBucketUpperSeconds(size_t b) {
  return static_cast<double>(uint64_t{1} << (b == 0 ? 0 : b)) * 1e-9;
}

/// Registers (without incrementing) every metric name the library emits —
/// query.*, batch.*, sched.* (including the fused-sweep and
/// fusion-grouping counters plus the shared-bin-fraction gauge),
/// feature_cache.*, and plan_cache.* — so snapshots, the --metrics-json
/// table export, and the OpenMetrics exposition always list them,
/// zero-valued when idle.
/// Without this, lazily-registered counters (e.g. sched.fused_groups)
/// only appear after the first event of their kind, which made them easy
/// to miss in exports. Idempotent; safe in every build.
void RegisterStandardMetrics();

/// Name-addressed registry of process-wide counters and histograms.
/// Lookup takes a mutex and is meant for setup (resolve once, keep the
/// reference — entries are never deleted, so references stay valid for
/// the process lifetime); the hot path touches only the returned
/// ObsCounter / LatencyHistogram atomics. In EDR_DISABLE_OBS builds the
/// registry still exists but every entry stays zero, so exports render
/// as empty activity rather than breaking callers.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  ObsCounter& Counter(const std::string& name);
  ObsGauge& Gauge(const std::string& name);
  LatencyHistogram& Histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Delta-snapshot: returns everything accumulated since the previous
  /// SnapshotAndReset (or process start) and atomically zeroes the
  /// registry, so a long-lived process can be scraped periodically
  /// without the client doing monotonic-counter subtraction. Entries stay
  /// registered; activity racing the scrape rolls into the next delta.
  MetricsSnapshot SnapshotAndReset();

  /// Zeroes every registered entry (tests only; entries stay registered).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ObsCounter>> counters_;
  std::map<std::string, std::unique_ptr<ObsGauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace edr

#endif  // EDR_OBS_REGISTRY_H_
