#ifndef EDR_OBS_PERIODIC_DUMPER_H_
#define EDR_OBS_PERIODIC_DUMPER_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/obs.h"

namespace edr {

/// Background scraper behind `--metrics-interval`: every interval it takes
/// a SnapshotAndReset delta of the global registry and hands one JSON line
/// ({"t_ms": ..., "metrics": {...snapshot...}}) to the sink. The final
/// partial interval is flushed exactly once on Stop so no activity is lost
/// between the last tick and session end. Lived inside edr_cli before;
/// promoted to the library so the HTTP endpoint, tests, and future serve
/// frontends share one implementation with an injectable sink.
class PeriodicMetricsDumper {
 public:
  /// Receives each dump as one complete JSON line (no trailing newline).
  using Sink = std::function<void(const std::string& line)>;

  struct Options {
    double interval_seconds = 0.0;
    /// Where dump lines go; default writes "line\n" to stderr.
    Sink sink;
  };

  /// True iff `seconds` is a usable dump interval (finite and > 0).
  /// Callers parsing user flags should reject invalid values with
  /// `*error` instead of silently not dumping — a typo'd `--metrics-
  /// interval=0` used to disable dumping without a word.
  static bool ValidInterval(double seconds, std::string* error = nullptr);

  explicit PeriodicMetricsDumper(const Options& options);
  ~PeriodicMetricsDumper();

  PeriodicMetricsDumper(const PeriodicMetricsDumper&) = delete;
  PeriodicMetricsDumper& operator=(const PeriodicMetricsDumper&) = delete;

  /// Spawns the dump thread; false (no thread, no dumps) when the
  /// interval is invalid. Idempotent while running.
  bool Start();

  /// Stops the thread and flushes the final partial-interval delta
  /// through the sink. Idempotent: later calls (and the destructor)
  /// do not dump again.
  void Stop();

  bool running() const;

  /// Dumps delivered to the sink so far (including the final flush).
  size_t dumps() const;

 private:
  void Run();
  void Dump();

  Options options_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
  size_t dumps_ = 0;
};

}  // namespace edr

#endif  // EDR_OBS_PERIODIC_DUMPER_H_
