#include "eval/epsilon.h"

#include <algorithm>

#include "distance/edr.h"
#include "eval/metrics.h"

namespace edr {

EpsilonProbeResult SuggestEpsilonByProbing(const TrajectoryDataset& db,
                                           std::vector<double> candidates,
                                           size_t probes, size_t k) {
  EpsilonProbeResult best;
  if (db.size() < 2) return best;

  if (candidates.empty()) {
    const double sigma = std::max(db.Stats().max_std_dev, 1e-9);
    candidates = {sigma / 8.0, sigma / 4.0, sigma / 2.0, sigma, 2.0 * sigma};
  }
  std::sort(candidates.begin(), candidates.end());

  const std::vector<Trajectory> queries =
      SampleQueries(db, std::max<size_t>(1, probes));
  k = std::min(k, db.size());

  best.contrast = -1.0;
  for (const double epsilon : candidates) {
    double contrast_sum = 0.0;
    for (const Trajectory& query : queries) {
      std::vector<int> distances;
      distances.reserve(db.size());
      for (const Trajectory& s : db) {
        distances.push_back(EdrDistance(query, s, epsilon));
      }
      std::sort(distances.begin(), distances.end());
      const double kth =
          std::max(1.0, static_cast<double>(distances[k - 1]));
      const double median =
          static_cast<double>(distances[distances.size() / 2]);
      contrast_sum += median / kth;
    }
    const double contrast =
        contrast_sum / static_cast<double>(queries.size());
    // Strictly-greater keeps the smaller epsilon on ties (candidates are
    // visited in ascending order).
    if (contrast > best.contrast) {
      best.contrast = contrast;
      best.epsilon = epsilon;
    }
  }
  return best;
}

}  // namespace edr
