#include "eval/classification.h"

#include <limits>

namespace edr {

double LeaveOneOutError(const TrajectoryDataset& db, const DistanceFn& fn) {
  if (db.size() < 2) return 0.0;
  size_t misses = 0;
  for (size_t i = 0; i < db.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    int predicted = -1;
    for (size_t j = 0; j < db.size(); ++j) {
      if (j == i) continue;
      const double d = fn(db[i], db[j]);
      if (d < best) {
        best = d;
        predicted = db[j].label();
      }
    }
    if (predicted != db[i].label()) ++misses;
  }
  return static_cast<double>(misses) / static_cast<double>(db.size());
}

}  // namespace edr
