#include "eval/linkage.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace edr {

DistanceMatrix ComputeDistanceMatrix(
    const std::vector<const Trajectory*>& items, const DistanceFn& fn) {
  DistanceMatrix matrix(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      matrix.set(i, j, fn(*items[i], *items[j]));
    }
  }
  return matrix;
}

std::vector<int> CompleteLinkageClusters(const DistanceMatrix& matrix,
                                         size_t k) {
  const size_t n = matrix.size();
  if (n == 0) return {};
  k = std::max<size_t>(1, std::min(k, n));

  // Active-cluster list with member sets; O(n^3) overall, which is ample
  // for the efficacy experiments (tens of items per clustering).
  std::vector<std::vector<size_t>> clusters(n);
  for (size_t i = 0; i < n; ++i) clusters[i] = {i};

  const auto complete_linkage = [&matrix](const std::vector<size_t>& a,
                                          const std::vector<size_t>& b) {
    double worst = 0.0;
    for (const size_t i : a) {
      for (const size_t j : b) {
        worst = std::max(worst, matrix.at(i, j));
      }
    }
    return worst;
  };

  while (clusters.size() > k) {
    size_t best_a = 0;
    size_t best_b = 1;
    double best = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < clusters.size(); ++a) {
      for (size_t b = a + 1; b < clusters.size(); ++b) {
        const double d = complete_linkage(clusters[a], clusters[b]);
        if (d < best) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    clusters[best_a].insert(clusters[best_a].end(),
                            clusters[best_b].begin(), clusters[best_b].end());
    clusters.erase(clusters.begin() + static_cast<long>(best_b));
  }

  std::vector<int> assignment(n, 0);
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (const size_t i : clusters[c]) {
      assignment[i] = static_cast<int>(c);
    }
  }
  return assignment;
}

}  // namespace edr
