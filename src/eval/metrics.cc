#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace edr {

WorkloadResult RunWorkload(const NamedSearcher& searcher,
                           const std::vector<Trajectory>& queries, size_t k,
                           const std::vector<KnnResult>* ground_truth,
                           double baseline_seconds) {
  WorkloadResult out;
  out.method = searcher.name;
  out.queries = queries.size();
  double power_sum = 0.0;
  double seconds_sum = 0.0;
  double filter_sum = 0.0;
  double refine_sum = 0.0;
  std::vector<double> latencies;
  latencies.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const KnnResult result = searcher.search(queries[i], k);
    power_sum += result.stats.PruningPower();
    seconds_sum += result.stats.elapsed_seconds;
    filter_sum += result.stats.filter_seconds;
    refine_sum += result.stats.refine_seconds;
    out.stage_totals.Add(result.stats.stages);
    out.db_size_total += result.stats.db_size;
    latencies.push_back(result.stats.elapsed_seconds);
    if (ground_truth != nullptr &&
        !SameKnnDistances((*ground_truth)[i], result)) {
      out.lossless = false;
    }
  }
  if (!queries.empty()) {
    const double n = static_cast<double>(queries.size());
    out.avg_pruning_power = power_sum / n;
    out.avg_seconds = seconds_sum / n;
    out.avg_filter_seconds = filter_sum / n;
    out.avg_refine_seconds = refine_sum / n;
  }
  FillLatencyPercentiles(&out, std::move(latencies));
  if (baseline_seconds > 0.0 && out.avg_seconds > 0.0) {
    out.speedup = baseline_seconds / out.avg_seconds;
  }
  return out;
}

std::vector<KnnResult> RunGroundTruth(const QueryEngine& engine,
                                      const std::vector<Trajectory>& queries,
                                      size_t k) {
  std::vector<KnnResult> results;
  results.reserve(queries.size());
  for (const Trajectory& q : queries) {
    results.push_back(engine.SeqScan(q, k));
  }
  return results;
}

double MeanSeconds(const std::vector<KnnResult>& results) {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (const KnnResult& r : results) sum += r.stats.elapsed_seconds;
  return sum / static_cast<double>(results.size());
}

double LatencyPercentile(std::vector<double> seconds, double q) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  // Nearest-rank: the smallest value with at least q of the mass at or
  // below it.
  const double rank = q * static_cast<double>(seconds.size());
  size_t idx = static_cast<size_t>(std::ceil(rank));
  idx = idx > 0 ? idx - 1 : 0;
  idx = std::min(idx, seconds.size() - 1);
  return seconds[idx];
}

void FillLatencyPercentiles(WorkloadResult* result,
                            std::vector<double> seconds) {
  if (seconds.empty()) return;
  std::sort(seconds.begin(), seconds.end());
  result->max_seconds = seconds.back();
  result->p50_seconds = LatencyPercentile(seconds, 0.50);
  result->p95_seconds = LatencyPercentile(seconds, 0.95);
}

std::vector<Trajectory> SampleQueries(const TrajectoryDataset& db,
                                      size_t count) {
  std::vector<Trajectory> queries;
  if (db.empty() || count == 0) return queries;
  count = std::min(count, db.size());
  queries.reserve(count);
  const size_t stride = db.size() / count;
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(db[i * stride]);
  }
  return queries;
}

std::string FormatWorkloadHeader() {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-14s %10s %12s %10s %10s %12s %12s %12s %10s %9s",
                "method", "pruning", "avg_ms", "filter_ms", "refine_ms",
                "p50_ms", "p95_ms", "max_ms", "speedup", "lossless");
  return buf;
}

std::string FormatWorkloadRow(const WorkloadResult& result) {
  char buf[288];
  std::snprintf(
      buf, sizeof(buf),
      "%-14s %10.3f %12.3f %10.3f %10.3f %12.3f %12.3f %12.3f %10.2f %9s",
      result.method.c_str(), result.avg_pruning_power,
      result.avg_seconds * 1000.0, result.avg_filter_seconds * 1000.0,
      result.avg_refine_seconds * 1000.0, result.p50_seconds * 1000.0,
      result.p95_seconds * 1000.0, result.max_seconds * 1000.0,
      result.speedup, result.lossless ? "yes" : "NO");
  return buf;
}

std::string FormatStageHeader() {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-14s %10s %10s %10s %10s %10s %10s %12s",
                "method", "qgram%", "hist%", "tri%", "stopped%", "dp%",
                "abandon%", "cells/query");
  return buf;
}

std::string FormatStageRow(const WorkloadResult& result) {
  const StageCounters& s = result.stage_totals;
  const double n = result.db_size_total > 0
                       ? static_cast<double>(result.db_size_total)
                       : 1.0;
  const double dp = s.dp_invoked > 0 ? static_cast<double>(s.dp_invoked)
                                     : 1.0;
  const double q = result.queries > 0 ? static_cast<double>(result.queries)
                                      : 1.0;
  char buf[288];
  std::snprintf(buf, sizeof(buf),
                "%-14s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %12.0f",
                result.method.c_str(),
                100.0 * static_cast<double>(s.qgram_pruned) / n,
                100.0 * static_cast<double>(s.histogram_pruned) / n,
                100.0 * static_cast<double>(s.triangle_pruned) / n,
                100.0 * static_cast<double>(s.not_visited) / n,
                100.0 * static_cast<double>(s.dp_invoked) / n,
                100.0 * static_cast<double>(s.dp_early_abandoned) / dp,
                static_cast<double>(s.dp_cells) / q);
  return buf;
}

}  // namespace edr
