#ifndef EDR_EVAL_METRICS_H_
#define EDR_EVAL_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "obs/stage_counters.h"
#include "query/engine.h"
#include "query/knn.h"

namespace edr {

/// Aggregated measurements for one method over a query workload — the
/// rows of the paper's Figures 7-13 and Table 3.
struct WorkloadResult {
  std::string method;
  size_t queries = 0;
  /// Mean fraction of trajectories whose true EDR was never computed.
  double avg_pruning_power = 0.0;
  /// Mean wall-clock seconds per query.
  double avg_seconds = 0.0;
  /// Latency distribution over the workload (nearest-rank percentiles of
  /// the per-query wall-clock times): median, 95th percentile, and the
  /// slowest query. Tail latency is what a pruning filter actually buys —
  /// the mean hides the queries the filter failed to prune.
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double max_seconds = 0.0;
  /// Mean per-query seconds split by phase: filter (lower-bound sweeps /
  /// candidate ordering) vs refine (exact DP on the survivors). Zero for
  /// searchers that do not report the split.
  double avg_filter_seconds = 0.0;
  double avg_refine_seconds = 0.0;
  /// Sequential-scan mean seconds / this method's mean seconds
  /// (0 when no baseline was supplied).
  double speedup = 0.0;
  /// True iff every query returned exactly the ground-truth distances
  /// (no false dismissals).
  bool lossless = true;
  /// Stage-by-stage pruning decomposition summed over the workload (zeros
  /// in EDR_DISABLE_OBS builds), with the summed db sizes it conserves
  /// against: stage_totals.Conserves(db_size_total) holds whenever every
  /// per-query counter set conserved.
  StageCounters stage_totals;
  size_t db_size_total = 0;
};

/// Runs every query through `searcher` and aggregates stats. When
/// `ground_truth` is non-null (one entry per query, typically from
/// RunGroundTruth) each result is certified against it and
/// `baseline_seconds` (its mean per-query time) is used for the speedup.
WorkloadResult RunWorkload(const NamedSearcher& searcher,
                           const std::vector<Trajectory>& queries, size_t k,
                           const std::vector<KnnResult>* ground_truth,
                           double baseline_seconds);

/// Sequential-scan ground truth for a workload; the baseline of every
/// speedup ratio. Returns one KnnResult per query.
std::vector<KnnResult> RunGroundTruth(const QueryEngine& engine,
                                      const std::vector<Trajectory>& queries,
                                      size_t k);

/// Mean per-query seconds of a set of results.
double MeanSeconds(const std::vector<KnnResult>& results);

/// Nearest-rank percentile (q in [0, 1]) of a list of per-query latencies;
/// 0 when the list is empty. q = 0.5 is the median, q = 1.0 the max.
double LatencyPercentile(std::vector<double> seconds, double q);

/// Fills the p50/p95/max latency fields of `result` from raw per-query
/// times (one entry per query, any order).
void FillLatencyPercentiles(WorkloadResult* result,
                            std::vector<double> seconds);

/// Draws `count` query trajectories from the dataset, evenly spaced (the
/// paper probes with queries from the data distribution).
std::vector<Trajectory> SampleQueries(const TrajectoryDataset& db,
                                      size_t count);

/// Formats one result as an aligned table row; `header` prints the
/// column names instead.
std::string FormatWorkloadRow(const WorkloadResult& result);
std::string FormatWorkloadHeader();

/// Stage-decomposition companion table: per-method shares of the database
/// removed by each filter stage (Q-gram count, histogram bound, triangle
/// bound, sorted-scan hard stop) plus DP invocation/abandon rates and mean
/// DP cells per query. All-zero rows in EDR_DISABLE_OBS builds.
std::string FormatStageRow(const WorkloadResult& result);
std::string FormatStageHeader();

}  // namespace edr

#endif  // EDR_EVAL_METRICS_H_
