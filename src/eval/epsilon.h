#ifndef EDR_EVAL_EPSILON_H_
#define EDR_EVAL_EPSILON_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"

namespace edr {

/// Result of the probing protocol: the chosen threshold and the contrast
/// score it achieved (for diagnostics).
struct EpsilonProbeResult {
  double epsilon = 0.25;
  double contrast = 0.0;
};

/// Automates the paper's matching-threshold selection protocol: "we run
/// several probing k-NN queries on each data set with different matching
/// thresholds and choose the one that ranks the results close to human
/// observations" (Section 5). Without a human in the loop, this picks the
/// candidate epsilon maximizing the *k-NN contrast* of probing queries —
/// the mean ratio between the median EDR distance to the database and the
/// k-th nearest distance:
///
///   - epsilon too small: nothing matches, every distance saturates near
///     max(m, n), contrast ~ 1;
///   - epsilon too large: everything matches, every distance collapses to
///     the length difference, contrast degrades again;
///   - in between, true neighbors separate from the bulk and the contrast
///     peaks.
///
/// Ties choose the smaller epsilon (tighter semantics). `candidates`
/// defaults to {1/8, 1/4, 1/2, 1, 2} times the max trajectory standard
/// deviation when empty. O(probes * |db| * len^2) — probing cost, run it
/// once per dataset.
EpsilonProbeResult SuggestEpsilonByProbing(
    const TrajectoryDataset& db, std::vector<double> candidates = {},
    size_t probes = 5, size_t k = 20);

}  // namespace edr

#endif  // EDR_EVAL_EPSILON_H_
