#ifndef EDR_EVAL_CLUSTERING_EVAL_H_
#define EDR_EVAL_CLUSTERING_EVAL_H_

#include <cstddef>

#include "core/dataset.h"
#include "distance/distance.h"

namespace edr {

/// Result of the Table 1 protocol: how many class pairs were clustered
/// correctly out of all C(classes, 2) pairs.
struct ClassPairClusteringResult {
  size_t correct_pairs = 0;
  size_t total_pairs = 0;
};

/// The paper's first efficacy test (Section 3.2, Table 1): for every pair
/// of classes in a labeled dataset, cluster the union of their
/// trajectories into two groups with complete-linkage hierarchical
/// clustering under the given distance function; the pair counts as
/// correct iff the two clusters exactly recover the two classes.
ClassPairClusteringResult EvaluateClusteringByClassPairs(
    const TrajectoryDataset& db, const DistanceFn& fn);

}  // namespace edr

#endif  // EDR_EVAL_CLUSTERING_EVAL_H_
