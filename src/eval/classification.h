#ifndef EDR_EVAL_CLASSIFICATION_H_
#define EDR_EVAL_CLASSIFICATION_H_

#include "core/dataset.h"
#include "distance/distance.h"

namespace edr {

/// The paper's second efficacy test (Section 3.2, Table 2), following
/// Keogh & Kasetty: "leave one out" 1-nearest-neighbor classification.
/// Each trajectory's label is predicted as the label of its nearest
/// neighbor among all other trajectories under `fn`; returns the error
/// rate (misses / total). Requires a labeled dataset.
double LeaveOneOutError(const TrajectoryDataset& db, const DistanceFn& fn);

}  // namespace edr

#endif  // EDR_EVAL_CLASSIFICATION_H_
