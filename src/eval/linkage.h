#ifndef EDR_EVAL_LINKAGE_H_
#define EDR_EVAL_LINKAGE_H_

#include <cstddef>
#include <vector>

#include "core/trajectory.h"
#include "distance/distance.h"

namespace edr {

/// A dense symmetric pairwise-distance matrix over n items.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(size_t n) : n_(n), d_(n * n, 0.0) {}

  size_t size() const { return n_; }
  double at(size_t i, size_t j) const { return d_[i * n_ + j]; }
  void set(size_t i, size_t j, double v) {
    d_[i * n_ + j] = v;
    d_[j * n_ + i] = v;
  }

 private:
  size_t n_;
  std::vector<double> d_;
};

/// Evaluates `fn` on every unordered pair of items.
DistanceMatrix ComputeDistanceMatrix(
    const std::vector<const Trajectory*>& items, const DistanceFn& fn);

/// Agglomerative hierarchical clustering with *complete linkage* (the
/// inter-cluster distance is the maximum pairwise item distance), the
/// algorithm reported to produce the best trajectory clusterings and used
/// by the paper's Table 1 protocol. Merging stops when `k` clusters
/// remain; returns a cluster id in [0, k) per item.
std::vector<int> CompleteLinkageClusters(const DistanceMatrix& matrix,
                                         size_t k);

}  // namespace edr

#endif  // EDR_EVAL_LINKAGE_H_
