#include "eval/clustering_eval.h"

#include <set>
#include <vector>

#include "eval/linkage.h"

namespace edr {

ClassPairClusteringResult EvaluateClusteringByClassPairs(
    const TrajectoryDataset& db, const DistanceFn& fn) {
  ClassPairClusteringResult result;

  std::set<int> labels;
  for (const Trajectory& t : db) {
    if (t.label() >= 0) labels.insert(t.label());
  }
  const std::vector<int> classes(labels.begin(), labels.end());

  for (size_t a = 0; a < classes.size(); ++a) {
    for (size_t b = a + 1; b < classes.size(); ++b) {
      // Collect the two classes' members.
      std::vector<const Trajectory*> items;
      std::vector<int> truth;
      for (const Trajectory& t : db) {
        if (t.label() == classes[a] || t.label() == classes[b]) {
          items.push_back(&t);
          truth.push_back(t.label() == classes[a] ? 0 : 1);
        }
      }
      ++result.total_pairs;

      const DistanceMatrix matrix = ComputeDistanceMatrix(items, fn);
      const std::vector<int> clusters = CompleteLinkageClusters(matrix, 2);

      // Correct iff the 2-clustering equals the class partition (up to
      // cluster-id swap).
      bool same = true;
      bool swapped = true;
      for (size_t i = 0; i < truth.size(); ++i) {
        if (clusters[i] != truth[i]) same = false;
        if (clusters[i] != 1 - truth[i]) swapped = false;
      }
      if (same || swapped) ++result.correct_pairs;
    }
  }
  return result;
}

}  // namespace edr
