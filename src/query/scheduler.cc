#include "query/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "core/cpu.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "query/feature_cache.h"
#include "query/thread_pool.h"

namespace edr {
namespace {

ThreadPool& ResolvePool(ThreadPool* pool) {
  return pool != nullptr ? *pool : ThreadPool::Global();
}

/// Same accounting ParallelKnn keeps for the legacy batch path, so a
/// scrape shows how adaptive batches executed.
void RecordScheduledBatchMetrics(const SchedulerStats& stats,
                                 double seconds) {
  if constexpr (kObsEnabled) {
    static ObsCounter& batches =
        MetricsRegistry::Global().Counter("batch.count");
    static ObsCounter& batch_queries =
        MetricsRegistry::Global().Counter("batch.queries");
    static LatencyHistogram& latency =
        MetricsRegistry::Global().Histogram("batch.seconds");
    batches.Inc();
    batch_queries.Inc(stats.queries);
    latency.Record(seconds);
  } else {
    (void)stats;
    (void)seconds;
  }
}

/// Schedule-shape counters, recorded per scheduler step so the streaming
/// QuerySession path feeds them too, not just RunScheduled batches.
void RecordSchedStep(uint64_t waves, uint64_t wave_queries, uint64_t widened,
                     uint64_t budget_granted) {
  if constexpr (kObsEnabled) {
    static ObsCounter& waves_counter =
        MetricsRegistry::Global().Counter("sched.waves");
    static ObsCounter& wave_queries_counter =
        MetricsRegistry::Global().Counter("sched.wave_queries");
    static ObsCounter& widened_counter =
        MetricsRegistry::Global().Counter("sched.widened_queries");
    static ObsCounter& budget_counter =
        MetricsRegistry::Global().Counter("sched.budget_granted");
    waves_counter.Inc(waves);
    wave_queries_counter.Inc(wave_queries);
    widened_counter.Inc(widened);
    budget_counter.Inc(budget_granted);
  } else {
    (void)waves;
    (void)wave_queries;
    (void)widened;
    (void)budget_granted;
  }
}

/// Fusion counters, one (groups, queries) increment per fused dispatch.
void RecordSchedFused(uint64_t groups, uint64_t queries) {
  if constexpr (kObsEnabled) {
    static ObsCounter& groups_counter =
        MetricsRegistry::Global().Counter("sched.fused_groups");
    static ObsCounter& queries_counter =
        MetricsRegistry::Global().Counter("sched.fused_queries");
    groups_counter.Inc(groups);
    queries_counter.Inc(queries);
  } else {
    (void)groups;
    (void)queries;
  }
}

/// Sends one completed scheduled query to the global flight recorder with
/// its schedule context attached. The enabled() pre-check keeps the
/// disabled path to one relaxed load — no record is even built — and the
/// whole call compiles away under EDR_DISABLE_OBS. Safe from pool workers
/// (wave emits run concurrently); results are never touched, only copied
/// from, so publication cannot perturb answers.
void PublishScheduledFlight(const std::string& searcher_name,
                            const KnnResult& result, unsigned budget,
                            size_t fusion_group, FeatureCache* cache) {
  if constexpr (kObsEnabled) {
    FlightRecorder& recorder = FlightRecorder::Global();
    if (!recorder.enabled()) return;
    FlightRecord record;
    record.searcher = searcher_name;
    record.latency_seconds = result.stats.elapsed_seconds;
    record.filter_seconds = result.stats.filter_seconds;
    record.refine_seconds = result.stats.refine_seconds;
    record.db_size = result.stats.db_size;
    record.edr_computed = result.stats.edr_computed;
    record.stages = result.stats.stages;
    record.sched_budget = budget;
    record.fusion_group = fusion_group;
    if (cache != nullptr) {
      const FeatureCache::Stats cs = cache->stats();
      record.cache_hits = cs.hits;
      record.cache_misses = cs.misses;
    }
    record.trace = result.trace;
    recorder.Publish(std::move(record));
  } else {
    (void)searcher_name;
    (void)result;
    (void)budget;
    (void)fusion_group;
    (void)cache;
  }
}

}  // namespace

AdaptiveScheduler::AdaptiveScheduler(const NamedSearcher& searcher, size_t k,
                                     const SchedulerPolicy& policy,
                                     ThreadPool* pool, FeatureCache* cache)
    : searcher_(searcher),
      k_(k),
      policy_(policy),
      pool_(pool),
      cache_(cache) {}

unsigned AdaptiveScheduler::Capacity() const {
  unsigned cap = ResolvePool(pool_).num_workers() + 1;
  if (policy_.max_threads != 0) cap = std::min(cap, policy_.max_threads);
  return std::max(1u, cap);
}

unsigned AdaptiveScheduler::EffectiveCapacity() const {
  const unsigned cap = Capacity();
  const unsigned busy = ResolvePool(pool_).BusyWorkers();
  return busy >= cap ? 1u : std::max(1u, cap - busy);
}

unsigned AdaptiveScheduler::GrantBudget(size_t pending) const {
  const unsigned capacity = Capacity();
  unsigned budget;
  if (policy_.budget_override) {
    budget = policy_.budget_override(pending, capacity);
    budget = std::max(1u, std::min(budget, capacity));
  } else {
    const unsigned effective = EffectiveCapacity();
    // Split the free capacity across the backlog: a deep queue grants 1
    // (inter-query mode), a short one hands each straggler a wide share.
    budget = pending == 0
                 ? effective
                 : static_cast<unsigned>(std::max<size_t>(
                       1, static_cast<size_t>(effective) / pending));
  }
  if (policy_.max_intra_workers != 0) {
    budget = std::min(budget, policy_.max_intra_workers);
  }
  return std::max(1u, budget);
}

size_t AdaptiveScheduler::WidenPending() const {
  if (policy_.widen_pending != 0) return policy_.widen_pending;
  return std::max<size_t>(1, Capacity() / 2);
}

size_t AdaptiveScheduler::MaxFusion() const {
  // budget_override schedules are strictly per-query (the adversarial
  // test harness); searchers without a fused entry point cannot fuse.
  if (policy_.budget_override) return 1;
  if (searcher_.fusion_key.empty() || !searcher_.search_fused) return 1;
  return policy_.max_fusion != 0 ? policy_.max_fusion : kMaxFusionGroup;
}

KnnResult AdaptiveScheduler::Call(const Trajectory& query, unsigned budget) {
  if (searcher_.search_with) {
    KnnOptions per_call;
    per_call.intra_query_workers = budget;
    per_call.pool = pool_;
    per_call.feature_cache = cache_;
    return searcher_.search_with(query, k_, per_call);
  }
  // Budget-unaware searchers (SeqScan) run as plain calls; the grant is
  // still accounted so stats describe the schedule, not the searcher.
  return searcher_.search(query, k_);
}

void AdaptiveScheduler::RecordGrant(unsigned budget) {
  ++stats_.queries;
  stats_.budget_granted += budget;
  stats_.max_budget = std::max(stats_.max_budget, budget);
  if (budget > 1) ++stats_.widened_queries;
}

size_t AdaptiveScheduler::Step(
    size_t next, size_t pending,
    const std::function<const Trajectory&(size_t)>& query_at,
    const std::function<void(size_t, KnnResult&&)>& emit) {
  if (pending == 0) return 0;

  // Fusable searcher with a backlog: answer up to MaxFusion() queries with
  // one fused database sweep on the calling thread. Groups run one after
  // another, each granted the whole free capacity as intra-query budget,
  // so the pool is filled by the sweep's own sharding instead of by
  // inter-query waves — the table is streamed once per group instead of
  // once per query.
  const size_t max_fusion = MaxFusion();
  if (pending > 1 && max_fusion > 1) {
    const size_t group = std::min(pending, max_fusion);
    const unsigned budget = GrantBudget(1);
    std::vector<const Trajectory*> members(group);
    for (size_t j = 0; j < group; ++j) members[j] = &query_at(next + j);
    KnnOptions per_call;
    per_call.intra_query_workers = budget;
    per_call.pool = pool_;
    per_call.feature_cache = cache_;
    std::vector<KnnResult> results =
        searcher_.search_fused(members, k_, per_call);
    for (size_t j = 0; j < group; ++j) {
      PublishScheduledFlight(searcher_.name, results[j], budget, group,
                             cache_);
      emit(next + j, std::move(results[j]));
    }
    // One grant covers the whole group: the members share a single call's
    // budget rather than receiving one each.
    stats_.queries += group;
    stats_.budget_granted += budget;
    stats_.max_budget = std::max(stats_.max_budget, budget);
    ++stats_.fused_groups;
    stats_.fused_queries += group;
    RecordSchedStep(/*waves=*/0, /*wave_queries=*/0, /*widened=*/0, budget);
    RecordSchedFused(/*groups=*/1, group);
    return group;
  }

  const unsigned budget = GrantBudget(pending);

  // Deep backlog and no test override: ride a wave. Everything except the
  // backlog that should widen later is fanned out one-query-per-worker;
  // the wave completing shrinks pending to the widen threshold, so the
  // stragglers get the whole pool each.
  if (budget <= 1 && pending > 1 && !policy_.budget_override) {
    const size_t tail = std::min(WidenPending(), pending - 1);
    const size_t wave = pending - tail;
    ResolvePool(pool_).ParallelFor(
        wave,
        [&](size_t j) {
          KnnResult result = Call(query_at(next + j), /*budget=*/1);
          PublishScheduledFlight(searcher_.name, result, /*budget=*/1,
                                 /*fusion_group=*/1, cache_);
          emit(next + j, std::move(result));
        },
        Capacity());
    ++stats_.waves;
    stats_.wave_queries += wave;
    for (size_t j = 0; j < wave; ++j) RecordGrant(1);
    RecordSchedStep(/*waves=*/1, wave, /*widened=*/0, /*budget_granted=*/wave);
    return wave;
  }

  // Solo query on the calling thread; a budget > 1 fans out *inside* the
  // query (the pool is free — waves and solo calls never overlap).
  {
    KnnResult result = Call(query_at(next), budget);
    PublishScheduledFlight(searcher_.name, result, budget,
                           /*fusion_group=*/1, cache_);
    emit(next, std::move(result));
  }
  RecordGrant(budget);
  RecordSchedStep(/*waves=*/0, /*wave_queries=*/0, budget > 1 ? 1 : 0, budget);
  return 1;
}

std::vector<KnnResult> RunScheduled(const NamedSearcher& searcher,
                                    const std::vector<Trajectory>& queries,
                                    size_t k, const SchedulerPolicy& policy,
                                    ThreadPool* pool, FeatureCache* cache,
                                    SchedulerStats* stats_out) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<KnnResult> results(queries.size());
  AdaptiveScheduler scheduler(searcher, k, policy, pool, cache);
  size_t next = 0;
  while (next < queries.size()) {
    next += scheduler.Step(
        next, queries.size() - next,
        [&](size_t i) -> const Trajectory& { return queries[i]; },
        [&](size_t i, KnnResult&& r) { results[i] = std::move(r); });
  }
  if (stats_out != nullptr) *stats_out = scheduler.stats();
  if (!queries.empty()) {
    RecordScheduledBatchMetrics(
        scheduler.stats(),
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
  }
  return results;
}

QuerySession::QuerySession(const NamedSearcher& searcher,
                           const Options& options)
    : options_(options),
      scheduler_(searcher, options_.k, options_.policy, options_.pool,
                 options_.feature_cache),
      admit_watermark_(options_.admit_watermark != 0
                           ? options_.admit_watermark
                           : static_cast<size_t>(2) *
                                 scheduler_.Capacity()) {}

QuerySession::Ticket QuerySession::Submit(Trajectory query) {
  const Ticket ticket = queries_.size();
  queries_.push_back(std::move(query));
  results_.emplace_back();
  pending_relaxed_.store(pending(), std::memory_order_relaxed);
  // A sustained stream must not buffer unboundedly behind a caller that
  // never asks for results: past the watermark, execute eagerly. The
  // scheduler sees the full backlog, so eager admission runs in wave mode.
  if (pending() >= admit_watermark_) StepOnce();
  return ticket;
}

const KnnResult& QuerySession::Result(Ticket ticket) {
  while (completed_ <= ticket) StepOnce();
  return results_[ticket];
}

void QuerySession::Drain() {
  while (pending() > 0) StepOnce();
}

void QuerySession::StepOnce() {
  completed_ += scheduler_.Step(
      completed_, pending(),
      [this](size_t i) -> const Trajectory& { return queries_[i]; },
      [this](size_t i, KnnResult&& r) { results_[i] = std::move(r); });
  pending_relaxed_.store(pending(), std::memory_order_relaxed);
}

}  // namespace edr
