#include "query/scheduler.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/cpu.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "query/feature_cache.h"
#include "query/plan_cache.h"
#include "query/thread_pool.h"

namespace edr {
namespace {

ThreadPool& ResolvePool(ThreadPool* pool) {
  return pool != nullptr ? *pool : ThreadPool::Global();
}

/// Same accounting ParallelKnn keeps for the legacy batch path, so a
/// scrape shows how adaptive batches executed.
void RecordScheduledBatchMetrics(const SchedulerStats& stats,
                                 double seconds) {
  if constexpr (kObsEnabled) {
    static ObsCounter& batches =
        MetricsRegistry::Global().Counter("batch.count");
    static ObsCounter& batch_queries =
        MetricsRegistry::Global().Counter("batch.queries");
    static LatencyHistogram& latency =
        MetricsRegistry::Global().Histogram("batch.seconds");
    batches.Inc();
    batch_queries.Inc(stats.queries);
    latency.Record(seconds);
  } else {
    (void)stats;
    (void)seconds;
  }
}

/// Schedule-shape counters, recorded per scheduler step so the streaming
/// QuerySession path feeds them too, not just RunScheduled batches.
void RecordSchedStep(uint64_t waves, uint64_t wave_queries, uint64_t widened,
                     uint64_t budget_granted) {
  if constexpr (kObsEnabled) {
    static ObsCounter& waves_counter =
        MetricsRegistry::Global().Counter("sched.waves");
    static ObsCounter& wave_queries_counter =
        MetricsRegistry::Global().Counter("sched.wave_queries");
    static ObsCounter& widened_counter =
        MetricsRegistry::Global().Counter("sched.widened_queries");
    static ObsCounter& budget_counter =
        MetricsRegistry::Global().Counter("sched.budget_granted");
    waves_counter.Inc(waves);
    wave_queries_counter.Inc(wave_queries);
    widened_counter.Inc(widened);
    budget_counter.Inc(budget_granted);
  } else {
    (void)waves;
    (void)wave_queries;
    (void)widened;
    (void)budget_granted;
  }
}

/// Fusion counters, one (groups, queries) increment per fused dispatch.
void RecordSchedFused(uint64_t groups, uint64_t queries) {
  if constexpr (kObsEnabled) {
    static ObsCounter& groups_counter =
        MetricsRegistry::Global().Counter("sched.fused_groups");
    static ObsCounter& queries_counter =
        MetricsRegistry::Global().Counter("sched.fused_queries");
    groups_counter.Inc(groups);
    queries_counter.Inc(queries);
  } else {
    (void)groups;
    (void)queries;
  }
}

/// One increment per fused dispatch on the group-formation counters, plus
/// the shared-bin-fraction gauge (a level: the most recent group's
/// achieved fraction, not an accumulation).
void RecordSchedGroup(bool similarity, bool forced, double shared_fraction) {
  if constexpr (kObsEnabled) {
    static ObsCounter& similarity_counter =
        MetricsRegistry::Global().Counter("sched.group_similarity");
    static ObsCounter& fifo_counter =
        MetricsRegistry::Global().Counter("sched.group_fifo");
    static ObsCounter& forced_counter =
        MetricsRegistry::Global().Counter("sched.group_forced");
    static ObsGauge& fraction_gauge =
        MetricsRegistry::Global().Gauge("sched.group_shared_bin_fraction");
    if (forced) {
      forced_counter.Inc();
    } else if (similarity) {
      similarity_counter.Inc();
    } else {
      fifo_counter.Inc();
    }
    fraction_gauge.Set(shared_fraction);
  } else {
    (void)similarity;
    (void)forced;
    (void)shared_fraction;
  }
}

/// Sends one completed scheduled query to the global flight recorder with
/// its schedule context attached. The enabled() pre-check keeps the
/// disabled path to one relaxed load — no record is even built — and the
/// whole call compiles away under EDR_DISABLE_OBS. Safe from pool workers
/// (wave emits run concurrently); results are never touched, only copied
/// from, so publication cannot perturb answers.
void PublishScheduledFlight(const std::string& searcher_name,
                            const KnnResult& result, unsigned budget,
                            size_t fusion_group, FeatureCache* cache,
                            double shared_fraction = 0.0,
                            FusedPlanCache* plan_cache = nullptr) {
  if constexpr (kObsEnabled) {
    FlightRecorder& recorder = FlightRecorder::Global();
    if (!recorder.enabled()) return;
    FlightRecord record;
    record.searcher = searcher_name;
    record.latency_seconds = result.stats.elapsed_seconds;
    record.filter_seconds = result.stats.filter_seconds;
    record.refine_seconds = result.stats.refine_seconds;
    record.db_size = result.stats.db_size;
    record.edr_computed = result.stats.edr_computed;
    record.stages = result.stats.stages;
    record.sched_budget = budget;
    record.fusion_group = fusion_group;
    if (cache != nullptr) {
      const FeatureCache::Stats cs = cache->stats();
      record.cache_hits = cs.hits;
      record.cache_misses = cs.misses;
    }
    record.group_shared_fraction = shared_fraction;
    if (plan_cache != nullptr) {
      const FusedPlanCache::Stats ps = plan_cache->stats();
      record.plan_cache_hits = ps.hits;
      record.plan_cache_misses = ps.misses;
    }
    record.trace = result.trace;
    recorder.Publish(std::move(record));
  } else {
    (void)searcher_name;
    (void)result;
    (void)budget;
    (void)fusion_group;
    (void)cache;
    (void)shared_fraction;
    (void)plan_cache;
  }
}

}  // namespace

std::string SchedulerPolicyError(const SchedulerPolicy& policy) {
  if (policy.budget_override && policy.max_fusion > 1) {
    return "budget_override schedules are strictly per-query, so "
           "max_fusion > 1 cannot take effect; drop one of the two";
  }
  if (policy.max_intra_workers != 0 && policy.max_threads != 0 &&
      policy.max_intra_workers > policy.max_threads) {
    return "max_intra_workers exceeds max_threads, so the intra-query "
           "budget it promises can never be granted";
  }
  return "";
}

AdaptiveScheduler::AdaptiveScheduler(const NamedSearcher& searcher, size_t k,
                                     const SchedulerPolicy& policy,
                                     ThreadPool* pool, FeatureCache* cache,
                                     FusedPlanCache* plan_cache)
    : searcher_(searcher),
      k_(k),
      policy_(policy),
      pool_(pool),
      cache_(cache),
      plan_cache_(plan_cache) {}

unsigned AdaptiveScheduler::Capacity() const {
  unsigned cap = ResolvePool(pool_).num_workers() + 1;
  if (policy_.max_threads != 0) cap = std::min(cap, policy_.max_threads);
  return std::max(1u, cap);
}

unsigned AdaptiveScheduler::EffectiveCapacity() const {
  const unsigned cap = Capacity();
  const unsigned busy = ResolvePool(pool_).BusyWorkers();
  return busy >= cap ? 1u : std::max(1u, cap - busy);
}

unsigned AdaptiveScheduler::GrantBudget(size_t pending) const {
  const unsigned capacity = Capacity();
  unsigned budget;
  if (policy_.budget_override) {
    budget = policy_.budget_override(pending, capacity);
    budget = std::max(1u, std::min(budget, capacity));
  } else {
    const unsigned effective = EffectiveCapacity();
    // Split the free capacity across the backlog: a deep queue grants 1
    // (inter-query mode), a short one hands each straggler a wide share.
    budget = pending == 0
                 ? effective
                 : static_cast<unsigned>(std::max<size_t>(
                       1, static_cast<size_t>(effective) / pending));
  }
  if (policy_.max_intra_workers != 0) {
    budget = std::min(budget, policy_.max_intra_workers);
  }
  return std::max(1u, budget);
}

size_t AdaptiveScheduler::WidenPending() const {
  if (policy_.widen_pending != 0) return policy_.widen_pending;
  return std::max<size_t>(1, Capacity() / 2);
}

size_t AdaptiveScheduler::MaxFusion() const {
  // THE resolution point for SchedulerPolicy::max_fusion's 0-vs-1
  // semantics: 0 = auto (kMaxFusionGroup), 1 = fusion disabled, anything
  // larger is honored as-is (sweeps chunk internally past the kernel
  // width). budget_override schedules are strictly per-query (the
  // adversarial test harness); searchers without a fused entry point
  // cannot fuse.
  static_assert(kMaxFusionGroup > 1,
                "auto max_fusion must enable fusion: a kernel width of 1 "
                "would make 0 (auto) and 1 (disabled) coincide");
  if (policy_.budget_override) return 1;
  if (searcher_.fusion_key.empty() || !searcher_.search_fused) return 1;
  return policy_.max_fusion != 0 ? policy_.max_fusion : kMaxFusionGroup;
}

size_t AdaptiveScheduler::GroupWindow() const {
  if (policy_.group_window != 0) return policy_.group_window;
  return std::max<size_t>(16, 4 * MaxFusion());
}

size_t AdaptiveScheduler::AgeWatermark() const {
  return policy_.group_age_watermark != 0 ? policy_.group_age_watermark : 8;
}

uint64_t AdaptiveScheduler::FingerprintOf(
    size_t id, const std::function<const Trajectory&(size_t)>& query_at) {
  const auto it = fingerprints_.find(id);
  if (it != fingerprints_.end()) return it->second;
  const uint64_t fp = searcher_.fingerprint(query_at(id));
  fingerprints_.emplace(id, fp);
  return fp;
}

namespace {

/// Estimated shared-bin fraction of a group of signatures: the fraction
/// of the members' total occupied bits covered more than once,
/// 1 - popcount(union) / sum(popcounts). 0 for empty or all-zero
/// signatures; always in [0, 1].
double SharedFraction(const std::vector<uint64_t>& sigs) {
  uint64_t united = 0;
  uint64_t total = 0;
  for (const uint64_t s : sigs) {
    united |= s;
    total += static_cast<uint64_t>(std::popcount(s));
  }
  if (total == 0) return 0.0;
  const double f =
      1.0 - static_cast<double>(std::popcount(united)) /
                static_cast<double>(total);
  return std::min(1.0, std::max(0.0, f));
}

/// Jaccard similarity of two bit signatures (0 when either is empty).
double Jaccard(uint64_t a, uint64_t b) {
  const int inter = std::popcount(a & b);
  const int uni = std::popcount(a | b);
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

}  // namespace

AdaptiveScheduler::GroupDecision AdaptiveScheduler::FormGroup(
    std::deque<size_t>* pending,
    const std::function<const Trajectory&(size_t)>& query_at) {
  GroupDecision decision;
  const size_t target = std::min(pending->size(), MaxFusion());
  const bool can_similarity =
      policy_.similarity_grouping && static_cast<bool>(searcher_.fingerprint);

  // Starvation guard: once the backlog head has been passed over too many
  // times, it gets the next group unconditionally, FIFO from the front —
  // an old poorly-matched query never waits forever behind fresh
  // well-matched arrivals.
  const bool forced =
      can_similarity && skip_counts_.count(pending->front()) != 0 &&
      skip_counts_[pending->front()] >= AgeWatermark();

  std::vector<size_t> picked;  // positions into *pending, ascending
  if (can_similarity && !forced) {
    const size_t window = std::min(pending->size(), GroupWindow());
    std::vector<uint64_t> sigs(window);
    for (size_t i = 0; i < window; ++i) {
      sigs[i] = FingerprintOf((*pending)[i], query_at);
    }
    // Greedy agglomeration: the best-overlapping pair seeds the group,
    // then the candidate most similar to the running union joins until
    // the group is full. Ties break toward the lowest position, keeping
    // the outcome deterministic and mildly age-biased.
    size_t best_i = 0, best_j = 0;
    double best = 0.0;
    for (size_t i = 0; i + 1 < window; ++i) {
      for (size_t j = i + 1; j < window; ++j) {
        const double s = Jaccard(sigs[i], sigs[j]);
        if (s > best) {
          best = s;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best > 0.0) {
      std::vector<char> in_group(window, 0);
      in_group[best_i] = in_group[best_j] = 1;
      uint64_t united = sigs[best_i] | sigs[best_j];
      size_t members = 2;
      while (members < target) {
        size_t pick = window;
        double pick_score = -1.0;
        for (size_t i = 0; i < window; ++i) {
          if (in_group[i]) continue;
          const double s = Jaccard(sigs[i], united);
          if (s > pick_score) {
            pick_score = s;
            pick = i;
          }
        }
        if (pick == window) break;
        in_group[pick] = 1;
        united |= sigs[pick];
        ++members;
      }
      // Backfill from the window front when overlap ran out before the
      // group filled — a fused sweep amortizes streaming even for
      // mismatched members.
      for (size_t i = 0; i < window && members < target; ++i) {
        if (!in_group[i]) {
          in_group[i] = 1;
          ++members;
        }
      }
      for (size_t i = 0; i < window; ++i) {
        if (in_group[i]) picked.push_back(i);
      }
      decision.kind = GroupDecision::Kind::kSimilarity;
    }
  }
  if (picked.empty()) {
    // FIFO: the front of the backlog, either as the configured fallback
    // (no fingerprints, similarity off, zero pairwise overlap) or forced
    // by the age watermark.
    for (size_t i = 0; i < target; ++i) picked.push_back(i);
    decision.kind = forced ? GroupDecision::Kind::kForced
                           : GroupDecision::Kind::kFifo;
  }

  decision.ids.reserve(picked.size());
  for (const size_t pos : picked) decision.ids.push_back((*pending)[pos]);
  if (static_cast<bool>(searcher_.fingerprint)) {
    std::vector<uint64_t> member_sigs;
    member_sigs.reserve(decision.ids.size());
    for (const size_t id : decision.ids) {
      member_sigs.push_back(FingerprintOf(id, query_at));
    }
    decision.shared_fraction = SharedFraction(member_sigs);
  }

  // Remove the members back-to-front (positions stay valid), then age
  // every query the group jumped over.
  for (size_t i = picked.size(); i-- > 0;) {
    pending->erase(pending->begin() +
                   static_cast<std::ptrdiff_t>(picked[i]));
  }
  if (can_similarity && !picked.empty()) {
    // Everything that preceded the group's last member but was not picked
    // got jumped over; after the erase those queries occupy the deque
    // front.
    const size_t passed_over = std::min(
        pending->size(), picked.back() + 1 - picked.size());
    for (size_t i = 0; i < passed_over; ++i) {
      ++skip_counts_[(*pending)[i]];
    }
  }
  for (const size_t id : decision.ids) {
    fingerprints_.erase(id);
    skip_counts_.erase(id);
  }
  return decision;
}

KnnResult AdaptiveScheduler::Call(const Trajectory& query, unsigned budget) {
  if (searcher_.search_with) {
    KnnOptions per_call;
    per_call.intra_query_workers = budget;
    per_call.pool = pool_;
    per_call.feature_cache = cache_;
    return searcher_.search_with(query, k_, per_call);
  }
  // Budget-unaware searchers (SeqScan) run as plain calls; the grant is
  // still accounted so stats describe the schedule, not the searcher.
  return searcher_.search(query, k_);
}

void AdaptiveScheduler::RecordGrant(unsigned budget) {
  ++stats_.queries;
  stats_.budget_granted += budget;
  stats_.max_budget = std::max(stats_.max_budget, budget);
  if (budget > 1) ++stats_.widened_queries;
}

size_t AdaptiveScheduler::Step(
    std::deque<size_t>* pending,
    const std::function<const Trajectory&(size_t)>& query_at,
    const std::function<void(size_t, KnnResult&&)>& emit) {
  if (pending->empty()) return 0;

  // Fusable searcher with a backlog: answer up to MaxFusion() queries with
  // one fused database sweep on the calling thread. Groups run one after
  // another, each granted the whole free capacity as intra-query budget,
  // so the pool is filled by the sweep's own sharding instead of by
  // inter-query waves — the table is streamed once per group instead of
  // once per query. FormGroup picks WHICH queries share the sweep
  // (similarity-packed or FIFO); membership never changes any member's
  // answer, only how much of the streamed table the group shares.
  const size_t max_fusion = MaxFusion();
  if (pending->size() > 1 && max_fusion > 1) {
    const GroupDecision decision = FormGroup(pending, query_at);
    const size_t group = decision.ids.size();
    const unsigned budget = GrantBudget(1);
    std::vector<const Trajectory*> members(group);
    for (size_t j = 0; j < group; ++j) {
      members[j] = &query_at(decision.ids[j]);
    }
    KnnOptions per_call;
    per_call.intra_query_workers = budget;
    per_call.pool = pool_;
    per_call.feature_cache = cache_;
    per_call.plan_cache = plan_cache_;
    std::vector<KnnResult> results =
        searcher_.search_fused(members, k_, per_call);
    for (size_t j = 0; j < group; ++j) {
      PublishScheduledFlight(searcher_.name, results[j], budget, group,
                             cache_, decision.shared_fraction, plan_cache_);
      emit(decision.ids[j], std::move(results[j]));
    }
    // One grant covers the whole group: the members share a single call's
    // budget rather than receiving one each.
    stats_.queries += group;
    stats_.budget_granted += budget;
    stats_.max_budget = std::max(stats_.max_budget, budget);
    ++stats_.fused_groups;
    stats_.fused_queries += group;
    stats_.shared_fraction_sum += decision.shared_fraction;
    switch (decision.kind) {
      case GroupDecision::Kind::kSimilarity: ++stats_.group_similarity; break;
      case GroupDecision::Kind::kFifo: ++stats_.group_fifo; break;
      case GroupDecision::Kind::kForced: ++stats_.group_forced; break;
    }
    RecordSchedStep(/*waves=*/0, /*wave_queries=*/0, /*widened=*/0, budget);
    RecordSchedFused(/*groups=*/1, group);
    RecordSchedGroup(decision.kind == GroupDecision::Kind::kSimilarity,
                     decision.kind == GroupDecision::Kind::kForced,
                     decision.shared_fraction);
    return group;
  }

  const size_t backlog = pending->size();
  const unsigned budget = GrantBudget(backlog);

  // Deep backlog and no test override: ride a wave. Everything except the
  // backlog that should widen later is fanned out one-query-per-worker;
  // the wave completing shrinks pending to the widen threshold, so the
  // stragglers get the whole pool each. Waves take from the deque front,
  // preserving arrival order.
  if (budget <= 1 && backlog > 1 && !policy_.budget_override) {
    const size_t tail = std::min(WidenPending(), backlog - 1);
    const size_t wave = backlog - tail;
    std::vector<size_t> ids(pending->begin(),
                            pending->begin() + static_cast<std::ptrdiff_t>(
                                                   wave));
    pending->erase(pending->begin(),
                   pending->begin() + static_cast<std::ptrdiff_t>(wave));
    for (const size_t id : ids) {
      fingerprints_.erase(id);
      skip_counts_.erase(id);
    }
    ResolvePool(pool_).ParallelFor(
        wave,
        [&](size_t j) {
          KnnResult result = Call(query_at(ids[j]), /*budget=*/1);
          PublishScheduledFlight(searcher_.name, result, /*budget=*/1,
                                 /*fusion_group=*/1, cache_);
          emit(ids[j], std::move(result));
        },
        Capacity());
    ++stats_.waves;
    stats_.wave_queries += wave;
    for (size_t j = 0; j < wave; ++j) RecordGrant(1);
    RecordSchedStep(/*waves=*/1, wave, /*widened=*/0, /*budget_granted=*/wave);
    return wave;
  }

  // Solo query on the calling thread; a budget > 1 fans out *inside* the
  // query (the pool is free — waves and solo calls never overlap). Always
  // the backlog front, so budget-override schedules see strict arrival
  // order.
  {
    const size_t id = pending->front();
    pending->pop_front();
    fingerprints_.erase(id);
    skip_counts_.erase(id);
    KnnResult result = Call(query_at(id), budget);
    PublishScheduledFlight(searcher_.name, result, budget,
                           /*fusion_group=*/1, cache_);
    emit(id, std::move(result));
  }
  RecordGrant(budget);
  RecordSchedStep(/*waves=*/0, /*wave_queries=*/0, budget > 1 ? 1 : 0, budget);
  return 1;
}

std::vector<KnnResult> RunScheduled(const NamedSearcher& searcher,
                                    const std::vector<Trajectory>& queries,
                                    size_t k, const SchedulerPolicy& policy,
                                    ThreadPool* pool, FeatureCache* cache,
                                    SchedulerStats* stats_out,
                                    FusedPlanCache* plan_cache) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<KnnResult> results(queries.size());
  AdaptiveScheduler scheduler(searcher, k, policy, pool, cache, plan_cache);
  std::deque<size_t> pending;
  for (size_t i = 0; i < queries.size(); ++i) pending.push_back(i);
  while (!pending.empty()) {
    scheduler.Step(
        &pending,
        [&](size_t i) -> const Trajectory& { return queries[i]; },
        [&](size_t i, KnnResult&& r) { results[i] = std::move(r); });
  }
  if (stats_out != nullptr) *stats_out = scheduler.stats();
  if (!queries.empty()) {
    RecordScheduledBatchMetrics(
        scheduler.stats(),
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
  }
  return results;
}

QuerySession::QuerySession(const NamedSearcher& searcher,
                           const Options& options)
    : options_(options),
      scheduler_(searcher, options_.k, options_.policy, options_.pool,
                 options_.feature_cache, options_.plan_cache),
      admit_watermark_(options_.admit_watermark != 0
                           ? options_.admit_watermark
                           : static_cast<size_t>(2) *
                                 scheduler_.Capacity()) {
  const std::string error = SchedulerPolicyError(options_.policy);
  if (!error.empty()) {
    throw std::invalid_argument("QuerySession: " + error);
  }
}

QuerySession::Ticket QuerySession::Submit(Trajectory query) {
  const Ticket ticket = queries_.size();
  queries_.push_back(std::move(query));
  results_.emplace_back();
  done_.push_back(0);
  pending_ids_.push_back(ticket);
  pending_relaxed_.store(pending(), std::memory_order_relaxed);
  // A sustained stream must not buffer unboundedly behind a caller that
  // never asks for results: past the watermark, execute eagerly. The
  // scheduler sees the full backlog, so eager admission runs in wave mode.
  if (pending() >= admit_watermark_) StepOnce();
  return ticket;
}

const KnnResult& QuerySession::Result(Ticket ticket) {
  while (!done_[ticket]) StepOnce();
  return results_[ticket];
}

void QuerySession::Drain() {
  while (!pending_ids_.empty()) StepOnce();
}

void QuerySession::StepOnce() {
  completed_count_ += scheduler_.Step(
      &pending_ids_,
      [this](size_t i) -> const Trajectory& { return queries_[i]; },
      [this](size_t i, KnnResult&& r) {
        results_[i] = std::move(r);
        done_[i] = 1;
      });
  pending_relaxed_.store(pending(), std::memory_order_relaxed);
}

}  // namespace edr
