#include "query/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace edr {

ThreadPoolStats ThreadPoolStats::Since(const ThreadPoolStats& baseline) const {
  ThreadPoolStats delta;
  delta.jobs = jobs - baseline.jobs;
  delta.items = items - baseline.items;
  delta.steals = steals - baseline.steals;
  delta.busy_seconds = busy_seconds - baseline.busy_seconds;
  const size_t slots =
      std::min(worker_items.size(), baseline.worker_items.size());
  delta.worker_items.resize(worker_items.size(), 0);
  delta.worker_steals.resize(worker_items.size(), 0);
  delta.worker_busy_seconds.resize(worker_items.size(), 0.0);
  for (size_t s = 0; s < worker_items.size(); ++s) {
    delta.worker_items[s] = worker_items[s];
    delta.worker_steals[s] = worker_steals[s];
    delta.worker_busy_seconds[s] = worker_busy_seconds[s];
    if (s < slots) {
      delta.worker_items[s] -= baseline.worker_items[s];
      delta.worker_steals[s] -= baseline.worker_steals[s];
      delta.worker_busy_seconds[s] -= baseline.worker_busy_seconds[s];
    }
  }
  return delta;
}

namespace {

/// Set while a thread is executing pool work; a nested ParallelFor from
/// such a thread must not block on job_mu_ (the outer job holds it), so it
/// runs inline instead.
thread_local bool t_inside_pool_job = false;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? hw - 1 : 0;
  }
  slices_ = std::make_unique<Slice[]>(static_cast<size_t>(threads) + 1);
  obs_ = std::make_unique<WorkerObs[]>(static_cast<size_t>(threads) + 1);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    // Worker i owns slice i + 1; slice 0 belongs to the caller.
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             unsigned max_parallelism) {
  if (n == 0) return;
  const unsigned capacity = num_workers() + 1;
  unsigned p = max_parallelism == 0 ? capacity
                                    : std::min(max_parallelism, capacity);
  p = static_cast<unsigned>(std::min<size_t>(p, n));
  if (p <= 1 || t_inside_pool_job) {
    // Single-item batches, a single-thread cap, and nested jobs run
    // straight on the calling thread: no cursors, no wakeups, no waiting.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Even split; the first (n % p) slices carry one extra item. Stealing
    // erases any residual imbalance at run time.
    const size_t base = n / p;
    const size_t extra = n % p;
    size_t begin = 0;
    for (unsigned s = 0; s < p; ++s) {
      const size_t len = base + (s < extra ? 1 : 0);
      slices_[s].next.store(begin, std::memory_order_relaxed);
      slices_[s].end = begin + len;
      begin += len;
    }
    participants_ = p;
    job_ = &fn;
    remaining_.store(n, std::memory_order_release);
    ++epoch_;
    if constexpr (kObsEnabled) {
      jobs_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  work_cv_.notify_all();

  t_inside_pool_job = true;
  Participate(0, fn, p);
  t_inside_pool_job = false;

  // Wait until every item ran AND every worker that joined this job has
  // left its slices; only then may the next job reuse the cursors.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0 && active_ == 0;
  });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(unsigned self) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    unsigned participants = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      // Workers beyond the job's parallelism cap sit this epoch out — they
      // must not even steal, or a `threads = t` request could run on more
      // than t threads. A worker waking after the job already drained sees
      // job_ == nullptr and skips the same way.
      if (job_ == nullptr || self >= participants_) continue;
      job = job_;
      participants = participants_;
      ++active_;  // committed: the caller now waits for us to finish
    }
    t_inside_pool_job = true;
    Participate(self, *job, participants);
    t_inside_pool_job = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::Participate(unsigned self,
                             const std::function<void(size_t)>& fn,
                             unsigned participants) {
  busy_slots_.fetch_add(1, std::memory_order_relaxed);
  std::chrono::steady_clock::time_point t0;
  if constexpr (kObsEnabled) t0 = std::chrono::steady_clock::now();
  size_t done = 0;
  size_t stolen = 0;
  // Own slice first (contiguous, cache-friendly), then sweep the others.
  // A cursor may overshoot its end by one per thief; the bound check
  // discards those, so every index still runs exactly once.
  for (unsigned v = 0; v < participants; ++v) {
    Slice& slice = slices_[(self + v) % participants];
    for (size_t i = slice.next.fetch_add(1, std::memory_order_relaxed);
         i < slice.end;
         i = slice.next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
      ++done;
      if (v > 0) ++stolen;
    }
  }
  if (done > 0) remaining_.fetch_sub(done, std::memory_order_acq_rel);
  busy_slots_.fetch_sub(1, std::memory_order_relaxed);
  if constexpr (kObsEnabled) {
    // One write-back per Participate call, never per item.
    WorkerObs& o = obs_[self];
    o.items.fetch_add(done, std::memory_order_relaxed);
    o.steals.fetch_add(stolen, std::memory_order_relaxed);
    const auto busy = std::chrono::steady_clock::now() - t0;
    o.busy_ns.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(busy)
                .count()),
        std::memory_order_relaxed);
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();  // intentionally leaked
  return *pool;
}

ThreadPoolStats ThreadPool::Stats() const {
  ThreadPoolStats stats;
  const size_t slots = static_cast<size_t>(num_workers()) + 1;
  stats.worker_items.resize(slots, 0);
  stats.worker_steals.resize(slots, 0);
  stats.worker_busy_seconds.resize(slots, 0.0);
  if constexpr (kObsEnabled) {
    stats.jobs = jobs_.load(std::memory_order_relaxed);
    for (size_t s = 0; s < slots; ++s) {
      const WorkerObs& o = obs_[s];
      stats.worker_items[s] = o.items.load(std::memory_order_relaxed);
      stats.worker_steals[s] = o.steals.load(std::memory_order_relaxed);
      stats.worker_busy_seconds[s] =
          static_cast<double>(o.busy_ns.load(std::memory_order_relaxed)) *
          1e-9;
      stats.items += stats.worker_items[s];
      stats.steals += stats.worker_steals[s];
      stats.busy_seconds += stats.worker_busy_seconds[s];
    }
  }
  return stats;
}

}  // namespace edr
