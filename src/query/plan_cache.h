#ifndef EDR_QUERY_PLAN_CACHE_H_
#define EDR_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace edr {

/// 64-bit FNV-1a over a sparse histogram's (bin, count) postings. Two
/// equal sparse lists always hash equal; the plan cache additionally
/// verifies the stored lists element-for-element on every hit, so a hash
/// collision degrades to a miss, never to a wrong plan.
uint64_t SparseHistogramFingerprint(
    const std::vector<std::pair<int, int>>& sparse);

/// A bounded LRU cache of fused sweep plans — the merged distinct-bin
/// walk (+ side-B transpose) `BuildFusedPlan` derives from a fusion
/// group's query histograms, rebuilt O(group * bins) on every sweep when
/// uncached. Entries are keyed by (config key, canonical member
/// fingerprint tuple): the config key is the table's `feature_key` plus a
/// plan-kind suffix, so any layout, grid, kind, or kernel-relevant change
/// lands on a different key and cold-misses; the member tuple is the
/// group's sparse-histogram fingerprints in the caller's canonical order,
/// so re-fusing the same hot queries in any arrival permutation pays plan
/// construction once.
///
/// Values are immutable once inserted (handed out as shared_ptr<const>),
/// so a cached plan can feed concurrent sweeps; all map/LRU state is
/// mutex-protected. Plan construction runs outside the lock — two threads
/// missing on the same key both build, and the second insert wins, which
/// is benign because both builds produce identical plans.
///
/// Hits / misses / evictions / collisions are counted per instance and
/// mirrored into the process-wide MetricsRegistry ("plan_cache.hits" /
/// ".misses" / ".evictions" / ".collisions") when observability is
/// compiled in. Attaching a plan cache never changes results — cached
/// plans are bit-identical to freshly built ones (certified by
/// plan_cache_test and fused_sweep_test).
class FusedPlanCache {
 public:
  using SparseList = std::vector<std::pair<int, int>>;

  /// `capacity` bounds the number of cached plans; the least recently
  /// used entry is evicted when a new insert would exceed it.
  explicit FusedPlanCache(size_t capacity = 64);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Fingerprint-tuple matches whose stored sparse lists differed —
    /// served as misses by the verification guard.
    uint64_t collisions = 0;
    size_t entries = 0;
  };
  Stats stats() const;

  size_t capacity() const { return capacity_; }

  /// Drops every entry (counters are kept).
  void Clear();

  /// Returns the cached plan for (config_key, members), building and
  /// inserting it with `build()` on a miss. `members` must be in the
  /// caller's canonical order and `build` must be a pure function of the
  /// member sparse lists and the configuration named by `config_key` —
  /// the determinism of the warm path rests on that.
  template <typename T, typename BuildFn>
  std::shared_ptr<const T> GetOrBuild(
      const std::string& config_key,
      const std::vector<const SparseList*>& members, BuildFn&& build) {
    const std::vector<uint64_t> fingerprints = Fingerprints(members);
    if (std::shared_ptr<const void> hit =
            Lookup(config_key, fingerprints, members)) {
      return std::static_pointer_cast<const T>(hit);
    }
    auto value = std::make_shared<const T>(build());
    Insert(config_key, fingerprints, members, value);
    return value;
  }

  /// Test hook: replaces the per-member fingerprint function so the
  /// collision re-verification path can be forced deterministically
  /// (genuine 64-bit FNV collisions are impractical to construct).
  void SetFingerprintFunctionForTest(
      std::function<uint64_t(const SparseList&)> fn);

 private:
  using Key = std::pair<std::string, std::vector<uint64_t>>;

  struct Entry {
    Key key;
    std::vector<SparseList> members;  ///< exact-match guard vs collisions
    std::shared_ptr<const void> value;
  };

  std::vector<uint64_t> Fingerprints(
      const std::vector<const SparseList*>& members) const;
  std::shared_ptr<const void> Lookup(
      const std::string& config_key,
      const std::vector<uint64_t>& fingerprints,
      const std::vector<const SparseList*>& members);
  void Insert(const std::string& config_key,
              const std::vector<uint64_t>& fingerprints,
              const std::vector<const SparseList*>& members,
              std::shared_ptr<const void> value);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< most recently used at the front
  std::map<Key, std::list<Entry>::iterator> index_;
  std::function<uint64_t(const SparseList&)> fingerprint_fn_;  ///< test hook
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t collisions_ = 0;
};

}  // namespace edr

#endif  // EDR_QUERY_PLAN_CACHE_H_
