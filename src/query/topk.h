#ifndef EDR_QUERY_TOPK_H_
#define EDR_QUERY_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "query/knn.h"

namespace edr {

/// Lazily drains candidate entries in ascending (key, id) order without
/// ever sorting the whole array — the streaming replacement for the
/// full `std::sort` of the n-element bound/count/order arrays on the
/// searchers' filter paths.
///
/// Implementation: incremental quickselect. A stack of segment boundaries
/// partitions the tail of the array into runs known to be pairwise ordered
/// (everything in a run <= everything in later runs). Serving the next
/// element splits the front run with `std::nth_element` until it shrinks
/// to a leaf, sorts the leaf once, and streams it out. Draining the first
/// m elements costs O(n + m log n); a full drain degrades gracefully to
/// O(n log n), the cost of the sort it replaces.
///
/// The id participates in the comparison, so the drain order is a total
/// order — deterministic across platforms and worker counts even when
/// keys tie. This canonical (key, id) tie-break is what makes the
/// intra-query parallel refinement bit-identical to the sequential scan.
template <typename Key>
class StreamingOrder {
 public:
  struct Entry {
    Key key;
    uint32_t id;
  };

  explicit StreamingOrder(std::vector<Entry> entries)
      : entries_(std::move(entries)) {
    stack_.push_back(entries_.size());
  }

  /// Builds the identity entries (key = value at index id) from a dense
  /// per-id key array.
  static StreamingOrder FromKeys(const std::vector<Key>& keys) {
    std::vector<Entry> entries(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      entries[i] = {keys[i], static_cast<uint32_t>(i)};
    }
    return StreamingOrder(std::move(entries));
  }

  size_t size() const { return entries_.size(); }

  /// Yields the next entry in ascending (key, id) order; false when the
  /// array is drained.
  bool Next(Entry* out) {
    if (pos_ >= entries_.size()) return false;
    if (pos_ == sorted_end_) Advance();
    *out = entries_[pos_++];
    return true;
  }

 private:
  static bool Less(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  /// Establishes the next sorted run starting at pos_: splits the front
  /// segment down to a leaf, then sorts the leaf.
  void Advance() {
    // Leaf size: one cache line's worth of entries is plenty — small
    // enough that early-stopping scans never over-sort, large enough to
    // amortize the nth_element passes.
    constexpr size_t kLeaf = 64;
    while (stack_.back() == pos_) stack_.pop_back();
    size_t end = stack_.back();
    while (end - pos_ > kLeaf) {
      const size_t mid = pos_ + (end - pos_) / 2;
      std::nth_element(entries_.begin() + static_cast<ptrdiff_t>(pos_),
                       entries_.begin() + static_cast<ptrdiff_t>(mid),
                       entries_.begin() + static_cast<ptrdiff_t>(end), Less);
      // [pos_, mid) <= entries_[mid] <= (mid, end): the right part becomes
      // a deferred segment, the left part is refined further.
      stack_.push_back(mid);
      end = mid;
    }
    std::sort(entries_.begin() + static_cast<ptrdiff_t>(pos_),
              entries_.begin() + static_cast<ptrdiff_t>(end), Less);
    sorted_end_ = end;
  }

  std::vector<Entry> entries_;
  std::vector<size_t> stack_;  ///< deferred segment ends, ascending bottom-up
  size_t pos_ = 0;             ///< next entry to serve
  size_t sorted_end_ = 0;      ///< entries in [pos_, sorted_end_) are sorted
};

/// A bounded selection structure keeping the k lexicographically smallest
/// (distance, order) pairs offered, as a max-heap — the streaming
/// replacement for "collect everything, sort, truncate".
///
/// `order` is the candidate's rank in the canonical visit order; using it
/// as the tie-break reproduces exactly the contents a sequential
/// KnnResultList would hold after offering the same exact distances in
/// visit order (earlier offers win ties), which is what makes the
/// parallel merge deterministic.
class BoundedTopK {
 public:
  explicit BoundedTopK(size_t k) : k_(k) {}

  /// Offers a candidate with its exact distance and canonical visit rank.
  void Offer(uint32_t id, double distance, size_t order);

  bool full() const { return heap_.size() >= k_ && k_ > 0; }
  size_t size() const { return heap_.size(); }

  /// Distance of the current k-th best, +infinity while not yet full
  /// (-infinity for k == 0, which can never accept anything).
  double Threshold() const {
    if (k_ == 0) return -std::numeric_limits<double>::infinity();
    if (heap_.size() < k_) return std::numeric_limits<double>::infinity();
    return heap_.front().distance;
  }

  /// One kept candidate; exposed for merging.
  struct Item {
    double distance;
    size_t order;
    uint32_t id;
  };
  const std::vector<Item>& items() const { return heap_; }

  /// Drains this structure into ascending (distance, order) neighbors.
  std::vector<Neighbor> TakeSortedNeighbors() &&;

  /// Merges the kept candidates of several per-worker structures into the
  /// final ascending top-k list. Because every structure kept (at least)
  /// every candidate that can appear in the true result, and the shared
  /// (distance, order) tie-break is a total order, the merge output is
  /// independent of how candidates were distributed over workers.
  static std::vector<Neighbor> Merge(std::vector<BoundedTopK> parts,
                                     size_t k);

 private:
  static bool HeapLess(const Item& a, const Item& b) {
    // Max-heap on (distance, order): the root is the lex-largest kept.
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.order < b.order;
  }

  size_t k_;
  std::vector<Item> heap_;
};

/// Sorts neighbors ascending by (distance, id) — the order every range
/// query reports. When `max_results` is nonzero and smaller than the list,
/// only the `max_results` best survive, selected with nth_element +
/// partial sort (O(n + k log k)) instead of a full O(n log n) sort.
void SortNeighborsAscending(std::vector<Neighbor>* neighbors,
                            size_t max_results = 0);

}  // namespace edr

#endif  // EDR_QUERY_TOPK_H_
