#include "query/knn.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "distance/edr.h"
#include "distance/edr_kernel.h"
#include "query/topk.h"

namespace edr {

void KnnResultList::Offer(uint32_t id, double distance) {
  if (neighbors_.size() >= k_ && distance >= KthDistance()) return;
  const Neighbor candidate{id, distance};
  const auto pos = std::upper_bound(
      neighbors_.begin(), neighbors_.end(), candidate,
      [](const Neighbor& a, const Neighbor& b) {
        return a.distance < b.distance;
      });
  neighbors_.insert(pos, candidate);
  if (neighbors_.size() > k_) neighbors_.pop_back();
}

KnnResult SequentialScanKnn(const TrajectoryDataset& db,
                            const Trajectory& query, size_t k, double epsilon,
                            const SeqScanOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  KnnResultList result(k);
  size_t computed = 0;
  for (const Trajectory& s : db) {
    double dist = 0.0;
    if (options.early_abandon) {
      const int bound = EdrBoundFromKthDistance(result.KthDistance());
      dist = static_cast<double>(
          EdrDistanceBoundedWith(kernel, scratch, query, s, epsilon, bound));
    } else {
      dist = static_cast<double>(
          EdrDistanceWith(kernel, scratch, query, s, epsilon));
    }
    ++computed;
    result.Offer(s.id(), dist);
  }
  const auto stop = std::chrono::steady_clock::now();

  KnnResult out;
  out.neighbors = std::move(result).TakeNeighbors();
  out.stats.db_size = db.size();
  out.stats.edr_computed = computed;
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  return out;
}

KnnResult SequentialScanRange(const TrajectoryDataset& db,
                              const Trajectory& query, int radius,
                              double epsilon) {
  const auto start = std::chrono::steady_clock::now();
  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  KnnResult out;
  for (const Trajectory& s : db) {
    const int dist = EdrDistanceWith(kernel, scratch, query, s, epsilon);
    if (dist <= radius) {
      out.neighbors.push_back({s.id(), static_cast<double>(dist)});
    }
  }
  SortNeighborsAscending(&out.neighbors);
  const auto stop = std::chrono::steady_clock::now();
  out.stats.db_size = db.size();
  out.stats.edr_computed = db.size();
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  return out;
}

bool SameKnnDistances(const KnnResult& expected, const KnnResult& actual) {
  if (expected.neighbors.size() != actual.neighbors.size()) return false;
  for (size_t i = 0; i < expected.neighbors.size(); ++i) {
    if (expected.neighbors[i].distance != actual.neighbors[i].distance) {
      return false;
    }
  }
  return true;
}

}  // namespace edr
