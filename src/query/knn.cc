#include "query/knn.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "distance/edr.h"
#include "distance/edr_kernel.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "query/topk.h"

namespace edr {

void KnnResultList::Offer(uint32_t id, double distance) {
  if (neighbors_.size() >= k_ && distance >= KthDistance()) return;
  const Neighbor candidate{id, distance};
  const auto pos = std::upper_bound(
      neighbors_.begin(), neighbors_.end(), candidate,
      [](const Neighbor& a, const Neighbor& b) {
        return a.distance < b.distance;
      });
  neighbors_.insert(pos, candidate);
  if (neighbors_.size() > k_) neighbors_.pop_back();
}

void RecordQueryMetrics(const SearchStats& stats) {
  if constexpr (kObsEnabled) {
    // Resolved once; registry entries live for the process lifetime.
    static ObsCounter& queries =
        MetricsRegistry::Global().Counter("query.count");
    static ObsCounter& dp_total =
        MetricsRegistry::Global().Counter("query.dp_total");
    static ObsCounter& dp_cells =
        MetricsRegistry::Global().Counter("query.dp_cells");
    static ObsCounter& pruned =
        MetricsRegistry::Global().Counter("query.candidates_pruned");
    static ObsCounter& scanned =
        MetricsRegistry::Global().Counter("query.candidates_total");
    static LatencyHistogram& latency =
        MetricsRegistry::Global().Histogram("query.seconds");
    queries.Inc();
    dp_total.Inc(stats.edr_computed);
    dp_cells.Inc(stats.stages.dp_cells);
    scanned.Inc(stats.db_size);
    pruned.Inc(stats.db_size >= stats.edr_computed
                   ? stats.db_size - stats.edr_computed
                   : 0);
    latency.Record(stats.elapsed_seconds);
  } else {
    (void)stats;
  }
}

KnnResult SequentialScanKnn(const TrajectoryDataset& db,
                            const Trajectory& query, size_t k, double epsilon,
                            const SeqScanOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  std::shared_ptr<QueryTrace> trace = MakeQueryTrace();
  TraceSpan scan_span(trace.get(), "scan");
  KnnResultList result(k);
  size_t computed = 0;
  StageCounters stages;
  for (const Trajectory& s : db) {
    double dist = 0.0;
    bool abandoned = false;
    if (options.early_abandon) {
      const int bound = EdrBoundFromKthDistance(result.KthDistance());
      const int d =
          EdrDistanceBoundedWith(kernel, scratch, query, s, epsilon, bound);
      abandoned = d > bound;
      dist = static_cast<double>(d);
    } else {
      dist = static_cast<double>(
          EdrDistanceWith(kernel, scratch, query, s, epsilon));
    }
    ++computed;
    if constexpr (kObsEnabled) {
      ++stages.considered;
      ++stages.dp_invoked;
      if (abandoned) ++stages.dp_early_abandoned;
      stages.dp_cells +=
          static_cast<uint64_t>(query.size()) * s.size();
    }
    result.Offer(s.id(), dist);
  }
  scan_span.End();
  const auto stop = std::chrono::steady_clock::now();

  KnnResult out;
  out.neighbors = std::move(result).TakeNeighbors();
  out.stats.db_size = db.size();
  out.stats.edr_computed = computed;
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  // The baseline has no filter phase: all time is refinement.
  out.stats.refine_seconds = out.stats.elapsed_seconds;
  stages.FinalizeNotVisited(db.size());
  out.stats.stages = stages;
  out.trace = std::move(trace);
  RecordQueryMetrics(out.stats);
  return out;
}

KnnResult SequentialScanRange(const TrajectoryDataset& db,
                              const Trajectory& query, int radius,
                              double epsilon) {
  const auto start = std::chrono::steady_clock::now();
  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  KnnResult out;
  StageCounters stages;
  for (const Trajectory& s : db) {
    const int dist = EdrDistanceWith(kernel, scratch, query, s, epsilon);
    if constexpr (kObsEnabled) {
      ++stages.considered;
      ++stages.dp_invoked;
      stages.dp_cells +=
          static_cast<uint64_t>(query.size()) * s.size();
    }
    if (dist <= radius) {
      out.neighbors.push_back({s.id(), static_cast<double>(dist)});
    }
  }
  SortNeighborsAscending(&out.neighbors);
  const auto stop = std::chrono::steady_clock::now();
  out.stats.db_size = db.size();
  out.stats.edr_computed = db.size();
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  out.stats.refine_seconds = out.stats.elapsed_seconds;
  stages.FinalizeNotVisited(db.size());
  out.stats.stages = stages;
  RecordQueryMetrics(out.stats);
  return out;
}

bool SameKnnDistances(const KnnResult& expected, const KnnResult& actual) {
  if (expected.neighbors.size() != actual.neighbors.size()) return false;
  for (size_t i = 0; i < expected.neighbors.size(); ++i) {
    if (expected.neighbors[i].distance != actual.neighbors[i].distance) {
      return false;
    }
  }
  return true;
}

}  // namespace edr
