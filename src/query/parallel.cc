#include "query/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace edr {

std::vector<KnnResult> ParallelKnn(
    const std::function<KnnResult(const Trajectory&, size_t)>& search,
    const std::vector<Trajectory>& queries, size_t k, unsigned threads) {
  std::vector<KnnResult> results(queries.size());
  if (queries.empty()) return results;

  if (threads == 0) threads = std::thread::hardware_concurrency();
  threads = std::max(1u, std::min<unsigned>(
                             threads, static_cast<unsigned>(queries.size())));

  std::atomic<size_t> next{0};
  // Each worker thread owns a ThreadLocalEdrScratch(), so the kernel-
  // dispatched searchers invoked through `search` run allocation-free and
  // unsynchronized once the per-thread buffers are warm.
  const auto worker = [&]() {
    for (size_t i = next.fetch_add(1); i < queries.size();
         i = next.fetch_add(1)) {
      results[i] = search(queries[i], k);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace edr
