#include "query/parallel.h"

#include <chrono>

#include "obs/registry.h"
#include "query/thread_pool.h"

namespace edr {

namespace {

/// Process-wide batch accounting: how many batches ran, how many queries
/// they carried, and the whole-batch wall-time distribution (the outer
/// timer per-query elapsed_seconds cannot replace under concurrency).
void RecordBatchMetrics(size_t queries, double seconds) {
  if constexpr (kObsEnabled) {
    static ObsCounter& batches =
        MetricsRegistry::Global().Counter("batch.count");
    static ObsCounter& batch_queries =
        MetricsRegistry::Global().Counter("batch.queries");
    static LatencyHistogram& latency =
        MetricsRegistry::Global().Histogram("batch.seconds");
    batches.Inc();
    batch_queries.Inc(queries);
    latency.Record(seconds);
  } else {
    (void)queries;
    (void)seconds;
  }
}

}  // namespace

std::vector<KnnResult> ParallelKnn(
    const std::function<KnnResult(const Trajectory&, size_t)>& search,
    const std::vector<Trajectory>& queries, size_t k, unsigned threads) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<KnnResult> results(queries.size());
  if (queries.empty()) return results;

  // A batch of one query cannot be split across workers (parallelism here
  // is across queries, not within one), so it runs straight on the
  // caller's thread — no pool handoff, no wakeups.
  if (queries.size() == 1) {
    results[0] = search(queries[0], k);
    RecordBatchMetrics(
        1, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count());
    return results;
  }

  // The persistent pool replaces the former spawn-and-join std::threads:
  // repeated batch calls reuse the same workers, whose warm
  // ThreadLocalEdrScratch buffers keep the searchers allocation-free.
  // Results are written by query index, so the output order is
  // deterministic and identical to a sequential run.
  ThreadPool::Global().ParallelFor(
      queries.size(),
      [&](size_t i) { results[i] = search(queries[i], k); }, threads);
  RecordBatchMetrics(
      queries.size(),
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return results;
}

}  // namespace edr
