#include "query/parallel.h"

#include "query/thread_pool.h"

namespace edr {

std::vector<KnnResult> ParallelKnn(
    const std::function<KnnResult(const Trajectory&, size_t)>& search,
    const std::vector<Trajectory>& queries, size_t k, unsigned threads) {
  std::vector<KnnResult> results(queries.size());
  if (queries.empty()) return results;

  // A batch of one query cannot be split across workers (parallelism here
  // is across queries, not within one), so it runs straight on the
  // caller's thread — no pool handoff, no wakeups.
  if (queries.size() == 1) {
    results[0] = search(queries[0], k);
    return results;
  }

  // The persistent pool replaces the former spawn-and-join std::threads:
  // repeated batch calls reuse the same workers, whose warm
  // ThreadLocalEdrScratch buffers keep the searchers allocation-free.
  // Results are written by query index, so the output order is
  // deterministic and identical to a sequential run.
  ThreadPool::Global().ParallelFor(
      queries.size(),
      [&](size_t i) { results[i] = search(queries[i], k); }, threads);
  return results;
}

}  // namespace edr
