#ifndef EDR_QUERY_PARALLEL_H_
#define EDR_QUERY_PARALLEL_H_

#include <functional>
#include <vector>

#include "core/trajectory.h"
#include "query/knn.h"

namespace edr {

/// Runs a batch of k-NN queries concurrently over at most `threads`
/// threads (0 = hardware concurrency). Results are returned in query
/// order, identical to running the queries sequentially: every searcher
/// in this library is read-only at query time, so concurrent `search`
/// calls on one searcher are safe.
///
/// Queries are executed on the persistent work-stealing pool
/// (ThreadPool::Global()), not on freshly spawned threads, so repeated
/// batches pay no thread create/join cost. Parallelism is across queries:
/// it is capped by the batch size, and a batch of a single query runs
/// directly on the caller's thread.
///
/// Per-query stats are preserved; note that wall-clock `elapsed_seconds`
/// of individual queries overlap under concurrency, so speedup ratios
/// should be computed from an outer timer, not by summing them.
std::vector<KnnResult> ParallelKnn(
    const std::function<KnnResult(const Trajectory&, size_t)>& search,
    const std::vector<Trajectory>& queries, size_t k, unsigned threads = 0);

}  // namespace edr

#endif  // EDR_QUERY_PARALLEL_H_
