#ifndef EDR_QUERY_THREAD_POOL_H_
#define EDR_QUERY_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace edr {

/// A snapshot of pool activity — cumulative since construction, or a
/// per-batch delta via Since(). Slot 0 aggregates every calling thread
/// that joined a job; slots 1..num_workers are the pool workers. All
/// fields stay zero in EDR_DISABLE_OBS builds.
struct ThreadPoolStats {
  /// Jobs actually dispatched to the pool (inline fast-path runs — n <= 1,
  /// a single-thread cap, nested calls — are not counted).
  uint64_t jobs = 0;
  /// Items executed across all participants.
  uint64_t items = 0;
  /// Items a participant claimed out of another participant's slice.
  uint64_t steals = 0;
  /// Summed wall time every participant spent inside jobs.
  double busy_seconds = 0.0;
  std::vector<uint64_t> worker_items;
  std::vector<uint64_t> worker_steals;
  std::vector<double> worker_busy_seconds;

  /// Element-wise difference against an earlier snapshot of the same pool
  /// (per-batch attribution for KnnBatch and the bench harnesses).
  ThreadPoolStats Since(const ThreadPoolStats& baseline) const;
};

/// A persistent work-stealing thread pool for batch query execution.
///
/// Workers are spawned once and parked on a condition variable between
/// jobs, so repeated ParallelFor calls (ParallelKnn, QueryEngine::KnnBatch,
/// PairwiseEdrMatrix builds) pay no thread create/join cost per call.
/// Because the workers are persistent, each worker's ThreadLocalEdrScratch
/// stays warm across calls: after the first batch, no distance computation
/// on the pool touches the allocator.
///
/// Scheduling: a ParallelFor over n items splits [0, n) into one
/// contiguous range per participant (the calling thread plus up to
/// `max_parallelism - 1` workers). Each participant drains its own range
/// through an atomic cursor and then steals from the other ranges, so a
/// skewed batch (one slow query) keeps every thread busy. Which thread
/// runs an item is nondeterministic; *what* runs — fn(i) exactly once for
/// every i — is not, so callers that write results by index get
/// deterministic output.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency - 1, so the pool
  /// plus the calling thread saturate the machine).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool workers (excluding callers that join jobs).
  unsigned num_workers() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs fn(i) exactly once for every i in [0, n), on the calling thread
  /// plus at most `max_parallelism - 1` pool workers (0 = all workers).
  /// Blocks until every item has completed.
  ///
  /// n <= 1 (or max_parallelism == 1) runs entirely on the calling thread
  /// with no synchronization at all. Jobs are serialized: a second caller
  /// blocks until the current job finishes. A nested ParallelFor from
  /// inside fn runs inline on the calling worker (no deadlock).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   unsigned max_parallelism = 0);

  /// The process-wide pool shared by the batch query entry points. Created
  /// on first use; sized to hardware concurrency - 1.
  static ThreadPool& Global();

  /// Cumulative activity totals since construction (all zeros when
  /// observability is compiled out). Relaxed reads; exact once the pool is
  /// quiescent, a live lower bound while a job runs.
  ThreadPoolStats Stats() const;

  /// Items of the current job not yet completed (0 between jobs) — the
  /// instantaneous backlog a would-be caller queues behind.
  size_t QueueDepth() const {
    return remaining_.load(std::memory_order_relaxed);
  }

  /// Participants (workers + joined callers) currently executing pool work.
  /// Unlike the WorkerObs stats this is maintained in every build — the
  /// batch scheduler reads it as a live occupancy signal, so it cannot be
  /// allowed to flatline under EDR_DISABLE_OBS.
  unsigned BusyWorkers() const {
    return busy_slots_.load(std::memory_order_relaxed);
  }

 private:
  /// One participant's contiguous slice of a job, padded to its own cache
  /// line so cursor bumps don't false-share.
  struct alignas(64) Slice {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };

  /// Per-slot activity counters, cache-line padded like Slice. Written
  /// once per Participate call (not per item), so the instrumentation cost
  /// is a handful of relaxed adds per job.
  struct alignas(64) WorkerObs {
    std::atomic<uint64_t> items{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> busy_ns{0};
  };

  void WorkerLoop(unsigned self);
  /// Drains slice `self`, then steals from every other active slice.
  void Participate(unsigned self, const std::function<void(size_t)>& fn,
                   unsigned participants);

  std::vector<std::thread> workers_;
  std::unique_ptr<Slice[]> slices_;  // one per worker + one for the caller
  std::unique_ptr<WorkerObs[]> obs_;  // same indexing as slices_
  std::atomic<uint64_t> jobs_{0};     // pool-dispatched jobs

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers park here between jobs
  std::condition_variable done_cv_;  // the caller waits here
  uint64_t epoch_ = 0;               // bumped once per job
  unsigned participants_ = 0;        // slices active in the current job
  unsigned active_ = 0;              // workers currently inside the job
  const std::function<void(size_t)>* job_ = nullptr;
  std::atomic<size_t> remaining_{0};  // items not yet completed
  std::atomic<unsigned> busy_slots_{0};  // participants inside Participate
  bool shutdown_ = false;

  std::mutex job_mu_;  // serializes whole jobs
};

}  // namespace edr

#endif  // EDR_QUERY_THREAD_POOL_H_
