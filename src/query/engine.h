#ifndef EDR_QUERY_ENGINE_H_
#define EDR_QUERY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "pruning/combined.h"
#include "pruning/cse.h"
#include "pruning/histogram_knn.h"
#include "pruning/lcss_knn.h"
#include "pruning/near_triangle.h"
#include "pruning/qgram_knn.h"
#include "query/knn.h"

namespace edr {

struct ThreadPoolStats;

/// A type-erased k-NN searcher with a display name, the unit the
/// benchmark harness sweeps over.
struct NamedSearcher {
  std::string name;
  std::function<KnnResult(const Trajectory&, size_t)> search;
  /// Budget-aware entry point used by the adaptive scheduler: the KnnOptions
  /// carry the per-call worker budget, pool, and feature cache, which are
  /// merged over the options bound at Make* time (a null per-call pool keeps
  /// the bound one). Optional — searchers without it (or handles built
  /// before this field existed) fall back to `search`, which simply ignores
  /// the budget. Results are identical either way.
  std::function<KnnResult(const Trajectory&, size_t, const KnnOptions&)>
      search_with;
  /// Semantic configuration key for fused multi-query sweeps. Non-empty iff
  /// the searcher can answer a group of queries with one database pass
  /// (`search_fused`); queries going through handles with equal keys see
  /// the same filter structures and may be fused into one sweep. Empty only
  /// for searchers with no whole-database filter pass at all (sequential
  /// scan) — the tree-probing Q-gram variants fuse too, via per-member
  /// probe state that keeps the shared tree's range probes re-entrant.
  std::string fusion_key;
  /// Fused batch entry point: answers all queries of one fusion group with
  /// a single cache-blocked pass over the filter tables. `results[i]` is
  /// bit-identical to `search_with(*queries[i], k, options)` — fusion is a
  /// pure throughput knob. Set iff `fusion_key` is non-empty.
  std::function<std::vector<KnnResult>(
      const std::vector<const Trajectory*>&, size_t, const KnnOptions&)>
      search_fused;
  /// Cheap 64-bit query-feature signature (occupied-bin / gram-posting
  /// bitmask) for the scheduler's similarity-aware fusion grouper. Queries
  /// with overlapping signatures share filter-table regions, so grouping
  /// them raises the fused sweep's shared-bin fraction. Optional and purely
  /// advisory: the signature influences which queries share a sweep, never
  /// any bound or answer. Null for searchers without a fingerprint hook,
  /// which fall back to FIFO grouping.
  std::function<uint64_t(const Trajectory&)> fingerprint;
};

/// Facade over every retrieval method in the library for one dataset and
/// matching threshold. Pruning structures (indexes, histogram tables,
/// pairwise-matrix columns) are built on first use and cached, so a
/// benchmark sweeping many methods pays each build cost once. Build times
/// are offline preprocessing and excluded from query-time stats, matching
/// the paper's measurement protocol.
///
/// The engine borrows the dataset; it must outlive the engine, and must
/// not be mutated while the engine exists.
class QueryEngine {
 public:
  QueryEngine(const TrajectoryDataset& db, double epsilon);

  const TrajectoryDataset& db() const { return db_; }
  double epsilon() const { return epsilon_; }

  /// Sequential scan baseline (optionally with early-abandoning DP).
  KnnResult SeqScan(const Trajectory& query, size_t k,
                    bool early_abandon = false) const;

  /// Answers a batch of k-NN queries with `searcher` through the adaptive
  /// scheduler (query/scheduler.h): a deep backlog shards queries across
  /// the pool one-per-worker, and the final stragglers widen their
  /// intra-query fan-out so the pool never idles at the tail. At most
  /// `threads` threads total (0 = hardware concurrency; 1 = fully
  /// sequential on the caller). Results come back in query order and are
  /// bit-identical to calling `searcher.search` sequentially — the batch
  /// is a pure throughput knob. A single-query batch is the degenerate
  /// schedule: one query granted the whole budget, so it honors
  /// intra-query parallelism instead of silently running serial.
  std::vector<KnnResult> KnnBatch(const NamedSearcher& searcher,
                                  const std::vector<Trajectory>& queries,
                                  size_t k, unsigned threads = 0) const;

  /// As above, and additionally reports what the batch cost the shared
  /// pool: `*pool_stats` receives the delta of ThreadPool::Global()'s
  /// cumulative counters across the batch (jobs, items, steals, per-worker
  /// busy time). All-zero in EDR_DISABLE_OBS builds. The delta is exact
  /// when no other thread drives the pool concurrently.
  std::vector<KnnResult> KnnBatch(const NamedSearcher& searcher,
                                  const std::vector<Trajectory>& queries,
                                  size_t k, unsigned threads,
                                  ThreadPoolStats* pool_stats) const;

  /// Mean-value Q-gram searcher (Section 4.1), cached per (variant, q).
  const QgramKnnSearcher& Qgram(QgramVariant variant, int q);

  /// Histogram searcher (Section 4.3), cached per (kind, delta, scan,
  /// layout).
  const HistogramKnnSearcher& Histogram(
      HistogramTable::Kind kind, int delta, HistogramScan scan,
      HistogramLayout layout = HistogramLayout::kAdaptive);

  /// Near-triangle searcher (Section 4.2), cached per reference budget.
  const NearTriangleSearcher& NearTriangle(size_t max_triangle = 400);

  /// Constant-shift-embedding ablation searcher (Section 4.2).
  const CseSearcher& Cse(size_t max_triangle = 400);

  /// Combined searcher (Section 4.4), cached per configuration.
  const CombinedKnnSearcher& Combined(const CombinedOptions& options);

  /// LCSS searcher (the paper's "details omitted" transfer of the pruning
  /// techniques to LCSS), cached per (filter, layout).
  const LcssKnnSearcher& Lcss(
      LcssFilter filter,
      HistogramLayout layout = HistogramLayout::kAdaptive);

  /// Convenience wrappers producing NamedSearcher handles. The bound
  /// `options` configure intra-query parallelism for every call made
  /// through the handle; the default is the sequential single-worker path.
  NamedSearcher MakeSeqScan(bool early_abandon = false) const;
  NamedSearcher MakeQgram(QgramVariant variant, int q,
                          const KnnOptions& options = {});
  NamedSearcher MakeHistogram(
      HistogramTable::Kind kind, int delta, HistogramScan scan,
      const KnnOptions& options = {},
      HistogramLayout layout = HistogramLayout::kAdaptive);
  NamedSearcher MakeNearTriangle(size_t max_triangle = 400,
                                 const KnnOptions& options = {});
  NamedSearcher MakeCse(size_t max_triangle = 400,
                        const KnnOptions& options = {});
  NamedSearcher MakeCombined(const CombinedOptions& options,
                             const KnnOptions& knn_options = {});
  NamedSearcher MakeLcss(LcssFilter filter, const KnnOptions& options = {},
                         HistogramLayout layout = HistogramLayout::kAdaptive);

 private:
  /// Reference-column matrix shared by NTR / CSE / combined searchers.
  const PairwiseEdrMatrix& Matrix(size_t max_triangle);

  const TrajectoryDataset& db_;
  double epsilon_;

  std::map<std::pair<int, int>, std::unique_ptr<QgramKnnSearcher>> qgrams_;
  std::map<std::tuple<int, int, int, int>,
           std::unique_ptr<HistogramKnnSearcher>>
      histograms_;
  std::map<size_t, std::unique_ptr<PairwiseEdrMatrix>> matrices_;
  std::map<size_t, std::unique_ptr<NearTriangleSearcher>> near_triangles_;
  std::map<size_t, std::unique_ptr<CseSearcher>> cses_;
  std::map<std::string, std::unique_ptr<CombinedKnnSearcher>> combined_;
  std::map<std::pair<int, int>, std::unique_ptr<LcssKnnSearcher>> lcss_;
};

}  // namespace edr

#endif  // EDR_QUERY_ENGINE_H_
