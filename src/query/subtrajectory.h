#ifndef EDR_QUERY_SUBTRAJECTORY_H_
#define EDR_QUERY_SUBTRAJECTORY_H_

#include <cstddef>
#include <vector>

#include "core/trajectory.h"

namespace edr {

/// A contiguous sub-trajectory of a text trajectory together with its EDR
/// distance to a query pattern.
struct SubtrajectoryMatch {
  size_t begin = 0;  ///< inclusive start index in the text
  size_t end = 0;    ///< exclusive end index in the text
  int distance = 0;  ///< EDR(query, text[begin:end])

  friend bool operator==(const SubtrajectoryMatch& a,
                         const SubtrajectoryMatch& b) {
    return a.begin == b.begin && a.end == b.end && a.distance == b.distance;
  }
};

/// Minimum-EDR contiguous sub-trajectory match: the approximate string
/// matching problem the paper's Q-gram machinery descends from ("given a
/// long text ... and a pattern ..., retrieve all the segments of the text
/// whose edit distance to the pattern is at most k", Section 4.1), lifted
/// to trajectories under epsilon-matching.
///
/// Semi-global DP: conversion may start at any text position for free
/// (row 0 is all zeros) and end anywhere (minimize over the last row);
/// O(|query| * |text|) time, O(|text|) space including the start-pointer
/// recovery. Returns {0, 0, |query|} against an empty text.
SubtrajectoryMatch BestSubtrajectoryMatch(const Trajectory& query,
                                          const Trajectory& text,
                                          double epsilon);

/// All match candidates with distance <= radius: for every text position
/// where the best match *ending there* is within `radius`, its
/// (begin, end, distance). Overlapping candidates are kept — callers that
/// need disjoint occurrences can post-process (see
/// NonOverlappingMatches).
std::vector<SubtrajectoryMatch> SubtrajectoryMatchesWithin(
    const Trajectory& query, const Trajectory& text, int radius,
    double epsilon);

/// Greedy selection of non-overlapping matches from a candidate list:
/// repeatedly take the lowest-distance candidate (ties: leftmost) that
/// does not overlap an already-selected one. Returns them sorted by
/// begin position.
std::vector<SubtrajectoryMatch> NonOverlappingMatches(
    std::vector<SubtrajectoryMatch> candidates);

}  // namespace edr

#endif  // EDR_QUERY_SUBTRAJECTORY_H_
