#include "query/plan_cache.h"

#include "obs/obs.h"
#include "obs/registry.h"

namespace edr {
namespace {

/// Registry mirrors resolved once; in EDR_DISABLE_OBS builds Inc() is a
/// no-op, so the mirrors cost nothing there.
ObsCounter& HitCounter() {
  static ObsCounter& c = MetricsRegistry::Global().Counter("plan_cache.hits");
  return c;
}
ObsCounter& MissCounter() {
  static ObsCounter& c =
      MetricsRegistry::Global().Counter("plan_cache.misses");
  return c;
}
ObsCounter& EvictionCounter() {
  static ObsCounter& c =
      MetricsRegistry::Global().Counter("plan_cache.evictions");
  return c;
}
ObsCounter& CollisionCounter() {
  static ObsCounter& c =
      MetricsRegistry::Global().Counter("plan_cache.collisions");
  return c;
}

void HashBits(uint64_t* h, uint64_t bits) {
  for (int shift = 0; shift < 64; shift += 8) {
    *h ^= (bits >> shift) & 0xffu;
    *h *= 0x100000001b3ull;  // FNV-1a prime
  }
}

}  // namespace

uint64_t SparseHistogramFingerprint(
    const std::vector<std::pair<int, int>>& sparse) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  HashBits(&h, static_cast<uint64_t>(sparse.size()));
  for (const auto& [bin, count] : sparse) {
    HashBits(&h, static_cast<uint64_t>(static_cast<uint32_t>(bin)));
    HashBits(&h, static_cast<uint64_t>(static_cast<uint32_t>(count)));
  }
  return h;
}

FusedPlanCache::FusedPlanCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

FusedPlanCache::Stats FusedPlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.collisions = collisions_;
  s.entries = lru_.size();
  return s;
}

void FusedPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
}

void FusedPlanCache::SetFingerprintFunctionForTest(
    std::function<uint64_t(const SparseList&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  fingerprint_fn_ = std::move(fn);
}

std::vector<uint64_t> FusedPlanCache::Fingerprints(
    const std::vector<const SparseList*>& members) const {
  std::function<uint64_t(const SparseList&)> fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn = fingerprint_fn_;
  }
  std::vector<uint64_t> out;
  out.reserve(members.size());
  for (const SparseList* m : members) {
    out.push_back(fn ? fn(*m) : SparseHistogramFingerprint(*m));
  }
  return out;
}

std::shared_ptr<const void> FusedPlanCache::Lookup(
    const std::string& config_key, const std::vector<uint64_t>& fingerprints,
    const std::vector<const SparseList*>& members) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find({config_key, fingerprints});
  if (it != index_.end()) {
    // Verify every member's stored postings before serving: a fingerprint
    // collision must degrade to a (counted) miss, never to a wrong plan.
    const std::vector<SparseList>& stored = it->second->members;
    bool verified = stored.size() == members.size();
    for (size_t i = 0; verified && i < stored.size(); ++i) {
      verified = stored[i] == *members[i];
    }
    if (verified) {
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
      ++hits_;
      HitCounter().Inc();
      return it->second->value;
    }
    ++collisions_;
    CollisionCounter().Inc();
  }
  ++misses_;
  MissCounter().Inc();
  return nullptr;
}

void FusedPlanCache::Insert(const std::string& config_key,
                            const std::vector<uint64_t>& fingerprints,
                            const std::vector<const SparseList*>& members,
                            std::shared_ptr<const void> value) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{config_key, fingerprints};
  const auto it = index_.find(key);
  std::vector<SparseList> copies;
  copies.reserve(members.size());
  for (const SparseList* m : members) copies.push_back(*m);
  if (it != index_.end()) {
    // Either a concurrent builder beat us here (both built the same plan)
    // or the fingerprint tuple collided with a different group; keep the
    // newest postings so the verifying lookup works for the latest group.
    it->second->members = std::move(copies);
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    EvictionCounter().Inc();
  }
  lru_.push_front(Entry{key, std::move(copies), std::move(value)});
  index_.emplace(std::move(key), lru_.begin());
}

}  // namespace edr
