#include "query/topk.h"

#include <algorithm>
#include <utility>

namespace edr {

void BoundedTopK::Offer(uint32_t id, double distance, size_t order) {
  if (k_ == 0) return;
  const Item item{distance, order, id};
  if (heap_.size() < k_) {
    heap_.push_back(item);
    std::push_heap(heap_.begin(), heap_.end(), HeapLess);
    return;
  }
  if (!HeapLess(item, heap_.front())) return;  // Not better than the worst.
  std::pop_heap(heap_.begin(), heap_.end(), HeapLess);
  heap_.back() = item;
  std::push_heap(heap_.begin(), heap_.end(), HeapLess);
}

namespace {

std::vector<Neighbor> FinishItems(std::vector<BoundedTopK::Item> items,
                                  size_t k) {
  std::sort(items.begin(), items.end(),
            [](const BoundedTopK::Item& a, const BoundedTopK::Item& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.order < b.order;
            });
  if (items.size() > k) items.resize(k);
  std::vector<Neighbor> out;
  out.reserve(items.size());
  for (const BoundedTopK::Item& item : items) {
    out.push_back({item.id, item.distance});
  }
  return out;
}

}  // namespace

std::vector<Neighbor> BoundedTopK::TakeSortedNeighbors() && {
  return FinishItems(std::move(heap_), k_);
}

std::vector<Neighbor> BoundedTopK::Merge(std::vector<BoundedTopK> parts,
                                         size_t k) {
  std::vector<Item> all;
  for (BoundedTopK& part : parts) {
    all.insert(all.end(), part.heap_.begin(), part.heap_.end());
  }
  return FinishItems(std::move(all), k);
}

void SortNeighborsAscending(std::vector<Neighbor>* neighbors,
                            size_t max_results) {
  const auto less = [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  };
  if (max_results > 0 && max_results < neighbors->size()) {
    std::nth_element(
        neighbors->begin(),
        neighbors->begin() + static_cast<ptrdiff_t>(max_results),
        neighbors->end(), less);
    neighbors->resize(max_results);
  }
  std::sort(neighbors->begin(), neighbors->end(), less);
}

}  // namespace edr
