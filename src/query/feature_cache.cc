#include "query/feature_cache.h"

#include <cstring>

#include "obs/obs.h"
#include "obs/registry.h"

namespace edr {
namespace {

/// Registry mirrors resolved once; in EDR_DISABLE_OBS builds Inc() is a
/// no-op, so the mirrors cost nothing there.
ObsCounter& HitCounter() {
  static ObsCounter& c =
      MetricsRegistry::Global().Counter("feature_cache.hits");
  return c;
}
ObsCounter& MissCounter() {
  static ObsCounter& c =
      MetricsRegistry::Global().Counter("feature_cache.misses");
  return c;
}
ObsCounter& EvictionCounter() {
  static ObsCounter& c =
      MetricsRegistry::Global().Counter("feature_cache.evictions");
  return c;
}

void HashBits(uint64_t* h, uint64_t bits) {
  for (int shift = 0; shift < 64; shift += 8) {
    *h ^= (bits >> shift) & 0xffu;
    *h *= 0x100000001b3ull;  // FNV-1a prime
  }
}

}  // namespace

uint64_t TrajectoryFingerprint(const Trajectory& t) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  HashBits(&h, static_cast<uint64_t>(t.size()));
  for (const Point2& p : t.points()) {
    uint64_t bits = 0;
    static_assert(sizeof(p.x) == sizeof(bits), "expects 64-bit doubles");
    std::memcpy(&bits, &p.x, sizeof(p.x));
    HashBits(&h, bits);
    std::memcpy(&bits, &p.y, sizeof(p.y));
    HashBits(&h, bits);
  }
  return h;
}

FeatureCache::FeatureCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

FeatureCache::Stats FeatureCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  return s;
}

void FeatureCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
}

std::shared_ptr<const void> FeatureCache::Lookup(const std::string& config_key,
                                                 uint64_t fingerprint,
                                                 const Trajectory& query) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find({config_key, fingerprint});
  if (it != index_.end() && it->second->points == query.points()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
    ++hits_;
    HitCounter().Inc();
    return it->second->value;
  }
  ++misses_;
  MissCounter().Inc();
  return nullptr;
}

void FeatureCache::Insert(const std::string& config_key, uint64_t fingerprint,
                          const Trajectory& query,
                          std::shared_ptr<const void> value) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::pair<std::string, uint64_t> key{config_key, fingerprint};
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Either a concurrent builder beat us here (both built the same value)
    // or the fingerprint collided with a different trajectory; keep the
    // newest points so the verifying lookup works for the latest query.
    it->second->points = query.points();
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    EvictionCounter().Inc();
  }
  lru_.push_front(Entry{key, query.points(), std::move(value)});
  index_.emplace(std::move(key), lru_.begin());
}

}  // namespace edr
