#include "query/subtrajectory.h"

#include <algorithm>
#include <limits>

namespace edr {

namespace {

/// Runs the semi-global DP and returns the final row of distances plus
/// the matching start position for each end position.
struct FinalRow {
  std::vector<int> distance;  // distance[j]: best match of query ending at j
  std::vector<size_t> begin;  // begin[j]: its start position
};

FinalRow SemiGlobalEdr(const Trajectory& query, const Trajectory& text,
                       double epsilon) {
  const size_t m = query.size();
  const size_t n = text.size();

  // dp[j] = min edits converting the query prefix into some text substring
  // ending at j; start[j] = where that substring begins.
  std::vector<int> prev(n + 1);
  std::vector<int> curr(n + 1);
  std::vector<size_t> prev_start(n + 1);
  std::vector<size_t> curr_start(n + 1);
  for (size_t j = 0; j <= n; ++j) {
    prev[j] = 0;        // Free start anywhere in the text.
    prev_start[j] = j;  // A match ending at j with empty pattern starts at j.
  }

  for (size_t i = 1; i <= m; ++i) {
    curr[0] = static_cast<int>(i);
    curr_start[0] = 0;
    for (size_t j = 1; j <= n; ++j) {
      const int subcost = Match(query[i - 1], text[j - 1], epsilon) ? 0 : 1;
      const int via_diag = prev[j - 1] + subcost;
      const int via_up = prev[j] + 1;    // delete from query
      const int via_left = curr[j - 1] + 1;  // skip a text element (insert)
      // Tie-break towards the diagonal, then up: prefers shorter text
      // spans with the same cost.
      if (via_diag <= via_up && via_diag <= via_left) {
        curr[j] = via_diag;
        curr_start[j] = prev_start[j - 1];
      } else if (via_up <= via_left) {
        curr[j] = via_up;
        curr_start[j] = prev_start[j];
      } else {
        curr[j] = via_left;
        curr_start[j] = curr_start[j - 1];
      }
    }
    std::swap(prev, curr);
    std::swap(prev_start, curr_start);
  }

  FinalRow row;
  row.distance.assign(prev.begin(), prev.end());
  row.begin.assign(prev_start.begin(), prev_start.end());
  return row;
}

}  // namespace

SubtrajectoryMatch BestSubtrajectoryMatch(const Trajectory& query,
                                          const Trajectory& text,
                                          double epsilon) {
  const FinalRow row = SemiGlobalEdr(query, text, epsilon);
  SubtrajectoryMatch best{0, 0, static_cast<int>(query.size())};
  int best_distance = std::numeric_limits<int>::max();
  for (size_t j = 0; j < row.distance.size(); ++j) {
    if (row.distance[j] < best_distance) {
      best_distance = row.distance[j];
      best = {row.begin[j], j, row.distance[j]};
    }
  }
  return best;
}

std::vector<SubtrajectoryMatch> SubtrajectoryMatchesWithin(
    const Trajectory& query, const Trajectory& text, int radius,
    double epsilon) {
  const FinalRow row = SemiGlobalEdr(query, text, epsilon);
  std::vector<SubtrajectoryMatch> matches;
  for (size_t j = 0; j < row.distance.size(); ++j) {
    if (row.distance[j] <= radius) {
      matches.push_back({row.begin[j], j, row.distance[j]});
    }
  }
  return matches;
}

std::vector<SubtrajectoryMatch> NonOverlappingMatches(
    std::vector<SubtrajectoryMatch> candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const SubtrajectoryMatch& a, const SubtrajectoryMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end < b.end;
            });
  std::vector<SubtrajectoryMatch> selected;
  for (const SubtrajectoryMatch& c : candidates) {
    bool overlaps = false;
    for (const SubtrajectoryMatch& s : selected) {
      if (c.begin < s.end && s.begin < c.end) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) selected.push_back(c);
  }
  std::sort(selected.begin(), selected.end(),
            [](const SubtrajectoryMatch& a, const SubtrajectoryMatch& b) {
              return a.begin < b.begin;
            });
  return selected;
}

}  // namespace edr
