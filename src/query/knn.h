#ifndef EDR_QUERY_KNN_H_
#define EDR_QUERY_KNN_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/dataset.h"
#include "core/trajectory.h"
#include "obs/stage_counters.h"

namespace edr {

class ThreadPool;
class QueryTrace;
class FeatureCache;
class FusedPlanCache;

/// Execution options accepted by every searcher's three-argument Knn
/// overload. The default (one worker) is the fully sequential path; any
/// other setting shards the query's filter sweep and refinement pass
/// across the thread pool. Results are bit-identical (ids, distances,
/// order) for every worker count — parallelism is a pure latency knob.
struct KnnOptions {
  /// Participants in the intra-query filter/refine passes, including the
  /// calling thread. 1 = sequential; 0 = the whole pool plus the caller.
  unsigned intra_query_workers = 1;
  /// Pool to shard over; nullptr = ThreadPool::Global(). Tests and benches
  /// pass a dedicated pool so worker counts are exact regardless of the
  /// machine's core count.
  ThreadPool* pool = nullptr;
  /// Optional memo of per-query filter features (query histograms, Q-gram
  /// mean vectors) shared across calls and searchers; nullptr = build the
  /// features fresh every call. Cached features are bit-identical to
  /// freshly built ones, so attaching a cache never changes results.
  FeatureCache* feature_cache = nullptr;
  /// Optional memo of fused sweep plans (the merged distinct-bin walk +
  /// side-B transpose a fusion group's sweep derives from its members);
  /// nullptr = rebuild the plan every fused call. Cached plans are
  /// bit-identical to freshly built ones, so attaching a cache never
  /// changes results. Ignored by single-query calls.
  FusedPlanCache* plan_cache = nullptr;
};

/// One k-NN answer: a dataset trajectory id and its EDR distance to the
/// query.
struct Neighbor {
  uint32_t id = 0;
  double distance = 0.0;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

/// Per-query bookkeeping used for the paper's two efficiency metrics
/// (Section 5): *pruning power* — the fraction of database trajectories
/// whose true EDR distance was never computed — and *speedup ratio* —
/// sequential-scan time over method time (computed by the harness from
/// `elapsed_seconds`).
struct SearchStats {
  size_t db_size = 0;
  /// Number of true EDR computations performed (including the k used to
  /// seed the result list).
  size_t edr_computed = 0;
  /// Wall-clock time spent answering the query, including filter work.
  double elapsed_seconds = 0.0;
  /// Per-phase split of elapsed_seconds: the filter phase (lower-bound
  /// sweeps, match counting, candidate ordering) versus the refinement
  /// phase (true distance computations + result maintenance). Searchers
  /// with a distinct filter pass report it directly; searchers that
  /// interleave the phases (NTR / CSE) derive the split from the
  /// per-query trace — refine is the summed DP time, filter the rest —
  /// so the columns are never silently zero. (In EDR_DISABLE_OBS builds
  /// the interleaved searchers fall back to filter = 0,
  /// refine = elapsed.)
  double filter_seconds = 0.0;
  double refine_seconds = 0.0;

  /// Stage-by-stage decomposition of the pruning: which filter removed
  /// each candidate, how many DPs ran and how many early-abandoned.
  /// Recorded only when observability is compiled in (zeros otherwise);
  /// satisfies StageCounters::Conserves(db_size) for every schedule.
  StageCounters stages;

  /// Fraction of trajectories pruned without a true distance computation.
  double PruningPower() const {
    if (db_size == 0) return 0.0;
    return 1.0 - static_cast<double>(edr_computed) /
                     static_cast<double>(db_size);
  }
};

/// The result of a k-NN query: at most k neighbors in ascending distance
/// order, plus the measurement stats.
struct KnnResult {
  std::vector<Neighbor> neighbors;
  SearchStats stats;
  /// The per-query phase tree (bound sweep, ordering, per-worker refine
  /// shards, DP aggregates); null in EDR_DISABLE_OBS builds. Export with
  /// trace->ToJson().
  std::shared_ptr<const QueryTrace> trace;
};

/// Folds one finished query into the process-wide MetricsRegistry
/// (query count + latency histogram, DP and pruning counters). Called by
/// every searcher at the end of Knn; compiles to nothing when
/// observability is disabled.
void RecordQueryMetrics(const SearchStats& stats);

/// A bounded list of the k nearest neighbors seen so far, kept sorted in
/// ascending distance. This is the paper's `result` array; `KthDistance()`
/// is its `bestSoFar = result[k].dist`.
class KnnResultList {
 public:
  explicit KnnResultList(size_t k) : k_(k) {}

  /// Offers a candidate; it is kept iff fewer than k neighbors are stored
  /// or its distance beats the current k-th distance.
  void Offer(uint32_t id, double distance);

  /// The current k-th nearest distance, or +infinity while fewer than k
  /// neighbors are stored. A candidate with a (lower-bound) distance
  /// strictly greater than this value can be pruned. For k = 0 the list
  /// can never improve, so the pruning threshold is -infinity.
  double KthDistance() const {
    if (k_ == 0) return -std::numeric_limits<double>::infinity();
    if (neighbors_.size() < k_) return std::numeric_limits<double>::infinity();
    return neighbors_.back().distance;
  }

  size_t size() const { return neighbors_.size(); }
  const std::vector<Neighbor>& neighbors() const { return neighbors_; }
  std::vector<Neighbor> TakeNeighbors() && { return std::move(neighbors_); }

 private:
  size_t k_;
  std::vector<Neighbor> neighbors_;
};

/// Options for the sequential-scan baseline.
struct SeqScanOptions {
  /// When true, uses the early-abandoning DP (EdrDistanceBounded) with the
  /// running k-th distance as the bound. The paper's baseline computes the
  /// full DP; early abandon is an ablation knob.
  bool early_abandon = false;
};

/// The sequential-scan baseline: computes EDR(query, S) for every S in the
/// database and returns the k nearest. Every trajectory counts as one true
/// distance computation.
KnnResult SequentialScanKnn(const TrajectoryDataset& db,
                            const Trajectory& query, size_t k, double epsilon,
                            const SeqScanOptions& options = {});

/// Sequential-scan range query: every trajectory S with
/// EDR(query, S) <= radius, in ascending distance order. This is the
/// query form the Q-gram filter (Theorem 1) was originally designed for;
/// the k-NN algorithms of Section 4 generalize it.
KnnResult SequentialScanRange(const TrajectoryDataset& db,
                              const Trajectory& query, int radius,
                              double epsilon);

/// True iff `actual` contains no false dismissals relative to `expected`
/// (the sequential-scan ground truth): the sorted distance lists must be
/// identical. Ids may differ when distances tie. Used by tests and the
/// harness to certify every pruning method lossless.
bool SameKnnDistances(const KnnResult& expected, const KnnResult& actual);

}  // namespace edr

#endif  // EDR_QUERY_KNN_H_
