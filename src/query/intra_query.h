#ifndef EDR_QUERY_INTRA_QUERY_H_
#define EDR_QUERY_INTRA_QUERY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "query/knn.h"
#include "query/thread_pool.h"
#include "query/topk.h"

namespace edr {

/// The running k-th-nearest distance shared by every refinement worker of
/// one query. Workers publish their local k-th distance after each accepted
/// candidate; the stored value is the minimum published so far, which is
/// always an upper bound on the final k-th distance — so pruning and
/// early-abandoning against it never loses a true neighbor, it only prunes
/// somewhat less aggressively than the fully sequential scan.
///
/// Relaxed ordering is sufficient: the value is a monotone pruning hint,
/// and a stale read merely weakens a prune. Result identity is enforced by
/// the deterministic merge, not by synchronization here.
class SharedKthDistance {
 public:
  explicit SharedKthDistance(size_t k)
      : kth_(k == 0 ? -std::numeric_limits<double>::infinity()
                    : std::numeric_limits<double>::infinity()) {}

  double Load() const { return kth_.load(std::memory_order_relaxed); }

  /// Lowers the shared threshold to `kth` if it improves on it.
  void Publish(double kth) {
    double current = kth_.load(std::memory_order_relaxed);
    while (kth < current &&
           !kth_.compare_exchange_weak(current, kth,
                                       std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> kth_;
};

/// Resolves the pool an intra-query job runs on (Global unless overridden).
inline ThreadPool& IntraQueryPool(const KnnOptions& options) {
  return options.pool != nullptr ? *options.pool : ThreadPool::Global();
}

/// Number of participants (worker slots) a Knn call will use; 0 expands to
/// the whole pool plus the calling thread.
inline unsigned ResolveIntraQueryWorkers(const KnnOptions& options) {
  if (options.intra_query_workers != 0) return options.intra_query_workers;
  return IntraQueryPool(options).num_workers() + 1;
}

/// Records the worker budget this query was granted as a `sched` node on
/// the query's trace (count = resolved participant count, zero duration —
/// the budget is a decision, not a phase). Every searcher calls this at
/// the top of Knn so traces show the schedule the batch scheduler chose.
inline void RecordSchedBudget(QueryTrace* trace, const KnnOptions& options) {
  if constexpr (kObsEnabled) {
    if (trace != nullptr) {
      trace->AddAggregate("sched", 0.0, ResolveIntraQueryWorkers(options));
    }
  } else {
    (void)trace;
    (void)options;
  }
}

/// fn(i) for every i in [0, n), sharded per the intra-query options; the
/// sequential setting (1 worker) runs a plain loop without touching the
/// pool. Callers must write results by index for deterministic output.
template <typename Fn>
void IntraQueryParallelFor(size_t n, const KnnOptions& options, Fn&& fn) {
  const unsigned workers = ResolveIntraQueryWorkers(options);
  if (workers <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  IntraQueryPool(options).ParallelFor(n, fn, workers);
}

namespace internal {

/// Hands out ids 0..n-1 in database order via an atomic cursor. The rank
/// of a candidate is its id — database order *is* the canonical order.
class DbOrderStream {
 public:
  explicit DbOrderStream(size_t n) : n_(n) {}

  bool Next(uint32_t* id, size_t* rank) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return false;
    *id = static_cast<uint32_t>(i);
    *rank = i;
    return true;
  }

 private:
  size_t n_;
  std::atomic<size_t> next_{0};
};

/// Hands out candidates in ascending canonical (key, id) order from a
/// StreamingOrder, serialized by a mutex (the selection work per candidate
/// is tiny next to one DP refinement, so contention is negligible). Once
/// stopped, no further candidates are issued — the streaming analogue of
/// the sequential sorted-scan `break`.
template <typename Key>
class KeyOrderStream {
 public:
  explicit KeyOrderStream(StreamingOrder<Key> order)
      : order_(std::move(order)) {}

  bool Next(typename StreamingOrder<Key>::Entry* entry, size_t* rank) {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return false;
    if (!order_.Next(entry)) return false;
    *rank = rank_++;
    return true;
  }

  void Stop() {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }

 private:
  std::mutex mu_;
  StreamingOrder<Key> order_;
  size_t rank_ = 0;
  bool stopped_ = false;
};

/// Runs `loop(slot)` on `slots` participants of the pool (or inline when
/// one slot suffices), then merges the per-slot top-k structures. Each
/// slot's run is recorded as a "refine_worker" span under `tc` so the
/// per-query trace shows the worker shard breakdown.
template <typename LoopFn>
std::vector<Neighbor> RunSlots(size_t k, unsigned slots, ThreadPool& pool,
                               std::vector<BoundedTopK>* locals,
                               LoopFn&& loop, const TraceContext& tc = {}) {
  auto traced = [&](size_t slot) {
    TraceSpan span(tc.trace, "refine_worker", tc.parent);
    loop(slot);
  };
  if (slots <= 1) {
    traced(size_t{0});
  } else {
    pool.ParallelFor(slots, traced, slots);
  }
  return BoundedTopK::Merge(std::move(*locals), k);
}

}  // namespace internal

/// Parallel filter-and-refine over candidates in database order (the HSE /
/// near-triangle / CSE scan shape: no candidate ordering, no early stop).
///
/// `process(slot, id, threshold, &dist)` evaluates the searcher's filter
/// chain against `threshold` and, if the candidate survives, computes its
/// distance with `threshold` as the early-abandon bound. It returns true
/// iff `dist` holds the candidate's *exact* distance (i.e. the computation
/// was not abandoned); only exact distances enter the result.
///
/// Result identity across worker counts: the shared threshold is always an
/// upper bound on the final k-th distance, so every true neighbor survives
/// filtering in every schedule, is refined exactly, and is kept by its
/// worker's BoundedTopK; the final merge selects the k lexicographically
/// smallest (distance, rank) pairs, a schedule-independent set.
template <typename ProcessFn>
std::vector<Neighbor> RefineInDbOrder(size_t n, size_t k,
                                      const KnnOptions& options,
                                      ProcessFn&& process,
                                      const TraceContext& tc = {}) {
  const unsigned slots = ResolveIntraQueryWorkers(options);
  ThreadPool& pool = IntraQueryPool(options);
  internal::DbOrderStream stream(n);
  SharedKthDistance shared(k);
  std::vector<BoundedTopK> locals(slots, BoundedTopK(k));

  auto loop = [&](size_t slot) {
    BoundedTopK& local = locals[slot];
    uint32_t id = 0;
    size_t rank = 0;
    while (stream.Next(&id, &rank)) {
      const double threshold = shared.Load();
      double dist = 0.0;
      if (!process(static_cast<unsigned>(slot), id, threshold, &dist)) {
        continue;
      }
      local.Offer(id, dist, rank);
      if (local.full()) shared.Publish(local.Threshold());
    }
  };
  return internal::RunSlots(k, slots, pool, &locals, loop, tc);
}

/// Parallel filter-and-refine over candidates in ascending canonical
/// (key, id) order (the HSR / Q-gram / combined scan shape), with an early
/// stop: when `stop(key, threshold)` fires for the canonically next
/// candidate, every remaining candidate is prunable too (keys only grow)
/// and the whole scan halts.
///
/// Same result-identity argument as RefineInDbOrder; `stop` must be
/// monotone in the threshold (a larger threshold never stops earlier), so
/// a stale — necessarily larger — threshold read is conservative.
template <typename Key, typename ProcessFn, typename StopFn>
std::vector<Neighbor> RefineInKeyOrder(
    std::vector<typename StreamingOrder<Key>::Entry> entries, size_t k,
    const KnnOptions& options, ProcessFn&& process, StopFn&& stop,
    const TraceContext& tc = {}) {
  const unsigned slots = ResolveIntraQueryWorkers(options);
  ThreadPool& pool = IntraQueryPool(options);
  internal::KeyOrderStream<Key> stream(
      StreamingOrder<Key>(std::move(entries)));
  SharedKthDistance shared(k);
  std::vector<BoundedTopK> locals(slots, BoundedTopK(k));

  auto loop = [&](size_t slot) {
    BoundedTopK& local = locals[slot];
    typename StreamingOrder<Key>::Entry entry;
    size_t rank = 0;
    while (stream.Next(&entry, &rank)) {
      const double threshold = shared.Load();
      if (stop(entry.key, threshold)) {
        stream.Stop();
        break;
      }
      double dist = 0.0;
      if (!process(static_cast<unsigned>(slot), entry.id, threshold,
                   &dist)) {
        continue;
      }
      local.Offer(entry.id, dist, rank);
      if (local.full()) shared.Publish(local.Threshold());
    }
  };
  return internal::RunSlots(k, slots, pool, &locals, loop, tc);
}

}  // namespace edr

#endif  // EDR_QUERY_INTRA_QUERY_H_
