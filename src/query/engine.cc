#include "query/engine.h"

#include <concepts>
#include <cstdint>
#include <tuple>

#include "query/scheduler.h"
#include "query/thread_pool.h"

namespace edr {

QueryEngine::QueryEngine(const TrajectoryDataset& db, double epsilon)
    : db_(db), epsilon_(epsilon) {}

std::vector<KnnResult> QueryEngine::KnnBatch(
    const NamedSearcher& searcher, const std::vector<Trajectory>& queries,
    size_t k, unsigned threads) const {
  SchedulerPolicy policy;
  policy.max_threads = threads;
  return RunScheduled(searcher, queries, k, policy);
}

std::vector<KnnResult> QueryEngine::KnnBatch(
    const NamedSearcher& searcher, const std::vector<Trajectory>& queries,
    size_t k, unsigned threads, ThreadPoolStats* pool_stats) const {
  const ThreadPoolStats before = ThreadPool::Global().Stats();
  SchedulerPolicy policy;
  policy.max_threads = threads;
  std::vector<KnnResult> results = RunScheduled(searcher, queries, k, policy);
  if (pool_stats != nullptr) {
    *pool_stats = ThreadPool::Global().Stats().Since(before);
  }
  return results;
}

KnnResult QueryEngine::SeqScan(const Trajectory& query, size_t k,
                               bool early_abandon) const {
  SeqScanOptions options;
  options.early_abandon = early_abandon;
  return SequentialScanKnn(db_, query, k, epsilon_, options);
}

const QgramKnnSearcher& QueryEngine::Qgram(QgramVariant variant, int q) {
  const auto key = std::make_pair(static_cast<int>(variant), q);
  auto it = qgrams_.find(key);
  if (it == qgrams_.end()) {
    it = qgrams_
             .emplace(key, std::make_unique<QgramKnnSearcher>(db_, epsilon_,
                                                              q, variant))
             .first;
  }
  return *it->second;
}

const HistogramKnnSearcher& QueryEngine::Histogram(HistogramTable::Kind kind,
                                                   int delta,
                                                   HistogramScan scan,
                                                   HistogramLayout layout) {
  const auto key = std::make_tuple(static_cast<int>(kind), delta,
                                   static_cast<int>(scan),
                                   static_cast<int>(layout));
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(key, std::make_unique<HistogramKnnSearcher>(
                               db_, epsilon_, kind, delta, scan, layout))
             .first;
  }
  return *it->second;
}

const PairwiseEdrMatrix& QueryEngine::Matrix(size_t max_triangle) {
  auto it = matrices_.find(max_triangle);
  if (it == matrices_.end()) {
    // The offline preprocessing step; parallel build, identical output.
    it = matrices_
             .emplace(max_triangle,
                      std::make_unique<PairwiseEdrMatrix>(
                          PairwiseEdrMatrix::BuildParallel(db_, epsilon_,
                                                           max_triangle)))
             .first;
  }
  return *it->second;
}

const NearTriangleSearcher& QueryEngine::NearTriangle(size_t max_triangle) {
  auto it = near_triangles_.find(max_triangle);
  if (it == near_triangles_.end()) {
    it = near_triangles_
             .emplace(max_triangle,
                      std::make_unique<NearTriangleSearcher>(
                          db_, epsilon_, Matrix(max_triangle)))
             .first;
  }
  return *it->second;
}

const CseSearcher& QueryEngine::Cse(size_t max_triangle) {
  auto it = cses_.find(max_triangle);
  if (it == cses_.end()) {
    it = cses_
             .emplace(max_triangle, std::make_unique<CseSearcher>(
                                        db_, epsilon_, Matrix(max_triangle)))
             .first;
  }
  return *it->second;
}

const CombinedKnnSearcher& QueryEngine::Combined(
    const CombinedOptions& options) {
  // Key on the full configuration via the display name plus parameters
  // that do not appear in it.
  std::string key;
  key += options.histogram_kind == HistogramTable::Kind::k2D ? '2' : '1';
  for (const PruneStep step : options.order) key += PruneStepCode(step);
  key += "/d" + std::to_string(options.histogram_delta);
  key += "/q" + std::to_string(options.q);
  key += "/t" + std::to_string(options.max_triangle);
  key += options.sorted_histogram_scan ? "/sorted" : "/seq";
  key += "/";
  key += HistogramLayoutName(options.histogram_layout);
  auto it = combined_.find(key);
  if (it == combined_.end()) {
    it = combined_
             .emplace(key, std::make_unique<CombinedKnnSearcher>(
                               db_, epsilon_, options,
                               Matrix(options.max_triangle)))
             .first;
  }
  return *it->second;
}

const LcssKnnSearcher& QueryEngine::Lcss(LcssFilter filter,
                                         HistogramLayout layout) {
  const auto key =
      std::make_pair(static_cast<int>(filter), static_cast<int>(layout));
  auto it = lcss_.find(key);
  if (it == lcss_.end()) {
    it = lcss_
             .emplace(key, std::make_unique<LcssKnnSearcher>(db_, epsilon_,
                                                             filter, layout))
             .first;
  }
  return *it->second;
}

namespace {

/// The bound Make*-time options overlaid with what the scheduler grants
/// per call: the budget always comes from the call, the pool and cache
/// only when the scheduler actually has one (so a handle bound to a
/// dedicated pool keeps it under a default-pool scheduler).
KnnOptions MergeScheduled(const KnnOptions& bound,
                          const KnnOptions& per_call) {
  KnnOptions merged = bound;
  merged.intra_query_workers = per_call.intra_query_workers;
  if (per_call.pool != nullptr) merged.pool = per_call.pool;
  if (per_call.feature_cache != nullptr) {
    merged.feature_cache = per_call.feature_cache;
  }
  if (per_call.plan_cache != nullptr) {
    merged.plan_cache = per_call.plan_cache;
  }
  return merged;
}

/// Builds the NamedSearcher pair of entry points over any searcher with a
/// Knn(query, k, options) method. Searchers that additionally expose
/// KnnFused(queries, k, options) get the fused entry point and a fusion
/// key — the display name (which encodes the full filter configuration)
/// plus the searcher instance, so handles over the same cached searcher
/// fuse together and handles over different datasets or configs never do.
template <typename Searcher>
NamedSearcher MakeNamed(const Searcher& searcher,
                        const KnnOptions& options) {
  NamedSearcher named;
  named.name = searcher.name();
  named.search = [&searcher, options](const Trajectory& q, size_t k) {
    return searcher.Knn(q, k, options);
  };
  named.search_with = [&searcher, options](const Trajectory& q, size_t k,
                                           const KnnOptions& per_call) {
    return searcher.Knn(q, k, MergeScheduled(options, per_call));
  };
  if constexpr (requires(const std::vector<const Trajectory*>& group) {
                  searcher.KnnFused(group, size_t{1}, KnnOptions{});
                }) {
    named.fusion_key =
        named.name + "#" +
        std::to_string(reinterpret_cast<uintptr_t>(&searcher));
    named.search_fused =
        [&searcher, options](const std::vector<const Trajectory*>& group,
                             size_t k, const KnnOptions& per_call) {
          return searcher.KnnFused(group, k,
                                   MergeScheduled(options, per_call));
        };
  }
  if constexpr (requires(const Trajectory& q) {
                  { searcher.FusionFingerprint(q) } -> std::same_as<uint64_t>;
                }) {
    named.fingerprint = [&searcher](const Trajectory& q) {
      return searcher.FusionFingerprint(q);
    };
  }
  return named;
}

}  // namespace

NamedSearcher QueryEngine::MakeSeqScan(bool early_abandon) const {
  NamedSearcher named;
  named.name = early_abandon ? "SeqScan-EA" : "SeqScan";
  named.search = [this, early_abandon](const Trajectory& q, size_t k) {
    return SeqScan(q, k, early_abandon);
  };
  // The scan has no filter features and no intra-query sharding; the
  // budget-aware overload exists so the scheduler can treat every handle
  // uniformly, and simply ignores the grant.
  named.search_with = [this, early_abandon](const Trajectory& q, size_t k,
                                            const KnnOptions&) {
    return SeqScan(q, k, early_abandon);
  };
  return named;
}

NamedSearcher QueryEngine::MakeQgram(QgramVariant variant, int q,
                                     const KnnOptions& options) {
  return MakeNamed(Qgram(variant, q), options);
}

NamedSearcher QueryEngine::MakeHistogram(HistogramTable::Kind kind, int delta,
                                         HistogramScan scan,
                                         const KnnOptions& options,
                                         HistogramLayout layout) {
  return MakeNamed(Histogram(kind, delta, scan, layout), options);
}

NamedSearcher QueryEngine::MakeNearTriangle(size_t max_triangle,
                                            const KnnOptions& options) {
  return MakeNamed(NearTriangle(max_triangle), options);
}

NamedSearcher QueryEngine::MakeCse(size_t max_triangle,
                                   const KnnOptions& options) {
  return MakeNamed(Cse(max_triangle), options);
}

NamedSearcher QueryEngine::MakeCombined(const CombinedOptions& options,
                                        const KnnOptions& knn_options) {
  return MakeNamed(Combined(options), knn_options);
}

NamedSearcher QueryEngine::MakeLcss(LcssFilter filter,
                                    const KnnOptions& options,
                                    HistogramLayout layout) {
  return MakeNamed(Lcss(filter, layout), options);
}

}  // namespace edr
