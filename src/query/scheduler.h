#ifndef EDR_QUERY_SCHEDULER_H_
#define EDR_QUERY_SCHEDULER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/trajectory.h"
#include "query/engine.h"
#include "query/knn.h"

namespace edr {

class FeatureCache;
class FusedPlanCache;
class ThreadPool;

/// Tuning knobs for the adaptive batch scheduler.
///
/// The scheduler unifies the two parallelism modes the library already
/// proves bit-identical — inter-query sharding (KnnBatch) and intra-query
/// fan-out (KnnOptions::intra_query_workers) — by choosing per query from
/// the live pool state: pending queries, pool capacity, and foreign
/// occupancy (ThreadPool::BusyWorkers). A deep backlog runs queries
/// one-per-worker in *waves*; once the backlog drains below
/// `widen_pending`, the remaining queries run one at a time with the whole
/// effective capacity as intra-query budget, so the tail of a batch never
/// leaves workers idle.
struct SchedulerPolicy {
  /// Cap on any single query's intra-query budget (0 = pool capacity).
  unsigned max_intra_workers = 0;
  /// Cap on total parallelism, the KnnBatch `threads` knob (0 = pool
  /// capacity). 1 forces the fully sequential caller-thread path.
  unsigned max_threads = 0;
  /// Backlog level at or below which queries widen instead of riding a
  /// wave (0 = auto: half the capacity, at least 1).
  size_t widen_pending = 0;
  /// Cap on the fusion-group size for searchers with a fused entry point
  /// (NamedSearcher::search_fused): up to this many backlog queries are
  /// answered by one fused database sweep, the group running on the
  /// calling thread with the whole free capacity as intra-query budget.
  /// The 0-vs-1 semantics are resolved in exactly one place,
  /// AdaptiveScheduler::MaxFusion(): 0 = auto (kMaxFusionGroup, the
  /// kernels' register-blocking width); 1 disables fusion; values above
  /// kMaxFusionGroup are honored (the sweeps chunk internally). Setting
  /// both a budget_override and max_fusion > 1 is contradictory —
  /// override schedules are strictly per-query — and is rejected by
  /// SchedulerPolicyError rather than silently clamped.
  size_t max_fusion = 0;
  /// Pick fusion-group members by query-feature similarity instead of
  /// arrival order: the scheduler fingerprints each backlog query through
  /// NamedSearcher::fingerprint (a 64-bit occupied-bin / gram-posting
  /// signature) and greedily packs the group that maximizes the estimated
  /// shared-bin fraction over a bounded window of the backlog. Falls back
  /// to FIFO when the searcher has no fingerprint hook or no two window
  /// queries overlap. Grouping only changes WHICH queries share a sweep —
  /// results stay bit-identical to FIFO grouping and to unfused calls.
  bool similarity_grouping = true;
  /// How many backlog queries the similarity grouper considers per group
  /// (0 = auto: max(16, 4 * resolved max_fusion)). Larger windows find
  /// better-matched groups at higher per-step cost.
  size_t group_window = 0;
  /// Starvation guard: a pending query passed over by this many
  /// similarity-formed groups is force-scheduled in the next group FIFO
  /// from the backlog front, however poorly it matches (0 = auto: 8).
  size_t group_age_watermark = 0;
  /// Test hook: when set, every query runs solo (no waves) with budget
  /// `budget_override(pending, capacity)` clamped to [1, capacity] —
  /// this is how scheduler_test drives fixed, oscillating, and
  /// adversarial budget schedules through the exact production call path.
  std::function<unsigned(size_t pending, unsigned capacity)> budget_override;
};

/// Validates a policy; returns "" when it is consistent, else a
/// human-readable description of the contradiction. QuerySession rejects
/// invalid policies with std::invalid_argument instead of silently
/// clamping; batch callers may consult it directly.
std::string SchedulerPolicyError(const SchedulerPolicy& policy);

/// What the scheduler decided over one run — exposed on the session /
/// batch entry points and mirrored into the metrics registry under
/// "sched.*".
struct SchedulerStats {
  size_t queries = 0;          ///< queries completed
  size_t waves = 0;            ///< inter-query ParallelFor dispatches
  size_t wave_queries = 0;     ///< queries that ran inside a wave (budget 1)
  size_t widened_queries = 0;  ///< solo queries granted a budget > 1
  size_t fused_groups = 0;     ///< fused multi-query sweep dispatches
  size_t fused_queries = 0;    ///< queries answered inside a fused group
  size_t group_similarity = 0; ///< groups formed by the similarity grouper
  size_t group_fifo = 0;       ///< groups formed FIFO (fallback or opt-out)
  size_t group_forced = 0;     ///< groups forced FIFO by the age watermark
  /// Summed estimated shared-bin fraction over fused groups (0 per group
  /// when no fingerprints were available); divide by fused_groups for the
  /// run's average.
  double shared_fraction_sum = 0.0;
  uint64_t budget_granted = 0; ///< summed per-call budgets
  unsigned max_budget = 0;     ///< largest budget any call received
};

/// The decision engine shared by KnnBatch and QuerySession. One instance
/// drives one run; it is not thread-safe (Step is called from the
/// owning thread, which then fans out internally).
///
/// Determinism: every schedule — any partition of the queries into fused
/// groups, waves, and solo calls, under any budget assignment — produces
/// bit-identical KnnResults, because (a) each query's result is
/// budget-invariant (the PR 3 guarantee, certified by intra_query_test),
/// (b) queries never share mutable state, (c) results are written by query
/// index, and (d) a fused group's results are bit-identical to member-wise
/// calls (certified by fused_sweep_test). scheduler_test re-certifies this
/// end to end against adversarial schedules.
class AdaptiveScheduler {
 public:
  /// `searcher` and `policy` are borrowed for the scheduler's lifetime.
  /// `pool` = nullptr uses ThreadPool::Global(); `cache` = nullptr runs
  /// uncached; `plan_cache` = nullptr rebuilds fused plans per sweep. The
  /// per-call KnnOptions hand all three to the searcher, so a bound-in
  /// pool on the NamedSearcher is overridden only when `pool` is
  /// explicit.
  AdaptiveScheduler(const NamedSearcher& searcher, size_t k,
                    const SchedulerPolicy& policy, ThreadPool* pool,
                    FeatureCache* cache,
                    FusedPlanCache* plan_cache = nullptr);

  /// Total parallelism available to this run: pool workers + the caller,
  /// clamped by policy.max_threads. At least 1.
  unsigned Capacity() const;

  /// Capacity minus workers currently busy with *foreign* pool jobs (the
  /// live occupancy signal; between this scheduler's own dispatches the
  /// pool is quiescent, so busy slots belong to other clients). At
  /// least 1: the caller can always run a query itself.
  unsigned EffectiveCapacity() const;

  /// The intra-query budget a solo query would receive with `pending`
  /// queries outstanding: effective capacity split across the backlog,
  /// clamped to [1, min(capacity, policy.max_intra_workers)].
  unsigned GrantBudget(size_t pending) const;

  /// Backlog level at or below which queries widen (resolves the
  /// policy's auto setting).
  size_t WidenPending() const;

  /// Largest fusion group one Step may form: policy.max_fusion resolved
  /// (0 = kMaxFusionGroup), or 1 when the searcher has no fused entry
  /// point or a budget override is active.
  size_t MaxFusion() const;

  /// Executes one scheduling decision over the backlog in `*pending` (a
  /// deque of query ids in arrival order): one fused group (a single
  /// multi-query sweep on the calling thread — members picked by the
  /// similarity grouper or FIFO, not necessarily from the front), one
  /// wave (budget-1 queries fanned inter-query across the pool), or one
  /// solo query with a wider budget on the calling thread. Completed ids
  /// are removed from `*pending`; waves and solo calls always take from
  /// the front, so arrival order is preserved outside fusion. Emits every
  /// completed result via `emit(id, result)` and returns how many queries
  /// completed (>= 1 unless the backlog was empty).
  size_t Step(std::deque<size_t>* pending,
              const std::function<const Trajectory&(size_t)>& query_at,
              const std::function<void(size_t, KnnResult&&)>& emit);

  const SchedulerStats& stats() const { return stats_; }

 private:
  /// One fusion group picked from `*pending` (members removed), plus how
  /// it was formed and its estimated shared-bin fraction.
  struct GroupDecision {
    enum class Kind { kSimilarity, kFifo, kForced };
    std::vector<size_t> ids;
    Kind kind = Kind::kFifo;
    double shared_fraction = 0.0;
  };

  KnnResult Call(const Trajectory& query, unsigned budget);
  void RecordGrant(unsigned budget);
  /// Removes up to MaxFusion() members from `*pending` — similarity-
  /// packed over the group window when enabled and fingerprints exist,
  /// FIFO otherwise, FIFO-forced when the backlog head has been passed
  /// over group_age_watermark times.
  GroupDecision FormGroup(
      std::deque<size_t>* pending,
      const std::function<const Trajectory&(size_t)>& query_at);
  /// Memoized NamedSearcher::fingerprint for query id (the query must
  /// still be pending).
  uint64_t FingerprintOf(
      size_t id, const std::function<const Trajectory&(size_t)>& query_at);
  size_t GroupWindow() const;
  size_t AgeWatermark() const;

  const NamedSearcher& searcher_;
  size_t k_;
  const SchedulerPolicy& policy_;
  ThreadPool* pool_;  ///< explicit pool or nullptr (= Global)
  FeatureCache* cache_;
  FusedPlanCache* plan_cache_;
  SchedulerStats stats_;
  /// Similarity-grouping bookkeeping, erased as ids complete.
  std::unordered_map<size_t, uint64_t> fingerprints_;
  std::unordered_map<size_t, size_t> skip_counts_;
};

/// Schedules a whole batch adaptively and returns results in query order —
/// the engine's KnnBatch delegates here. Bit-identical to calling
/// `searcher` sequentially. `stats_out` (optional) receives the schedule
/// taken.
std::vector<KnnResult> RunScheduled(const NamedSearcher& searcher,
                                    const std::vector<Trajectory>& queries,
                                    size_t k, const SchedulerPolicy& policy,
                                    ThreadPool* pool = nullptr,
                                    FeatureCache* cache = nullptr,
                                    SchedulerStats* stats_out = nullptr,
                                    FusedPlanCache* plan_cache = nullptr);

/// A streaming query session: queries are admitted as they arrive
/// (Submit), not at a batch barrier, and the scheduler decides execution
/// from the backlog at each step — a deep backlog triggers eager waves, a
/// drained one widens the stragglers. Results are retrieved by ticket in
/// any order; asking for a result drives the schedule forward until that
/// ticket completes.
///
/// Single-owner: Submit / Result / Drain must be called from one thread
/// (the session fans out internally). Completed results stay owned by the
/// session until it is destroyed.
class QuerySession {
 public:
  struct Options {
    size_t k = 10;
    SchedulerPolicy policy;
    /// Pool to run on; nullptr = ThreadPool::Global().
    ThreadPool* pool = nullptr;
    /// Feature cache shared by every query of the session (and, if the
    /// caller passes the same cache to several sessions, across them).
    FeatureCache* feature_cache = nullptr;
    /// Fused-plan cache shared by every fusion group of the session, so a
    /// recurring group composition reuses its built sweep plan instead of
    /// rebuilding it (nullptr = rebuild per sweep).
    FusedPlanCache* plan_cache = nullptr;
    /// Backlog size that triggers eager execution inside Submit, so a
    /// sustained stream makes progress without anyone asking for results
    /// (0 = auto: twice the capacity).
    size_t admit_watermark = 0;
  };

  using Ticket = size_t;

  /// `searcher` and the pool/caches in `options` must outlive the
  /// session. Throws std::invalid_argument when the policy is
  /// contradictory (see SchedulerPolicyError) — the session surfaces the
  /// mistake instead of silently clamping it away.
  QuerySession(const NamedSearcher& searcher, const Options& options);

  /// Admits a query; returns the ticket Result() takes. May execute
  /// pending queries eagerly when the backlog reaches the admit
  /// watermark.
  Ticket Submit(Trajectory query);

  /// The answer for `ticket`, running the schedule forward as needed.
  /// Completion is no longer strictly in ticket order — the similarity
  /// grouper may answer a well-matched later ticket before an earlier
  /// one — so readiness is tracked per ticket.
  const KnnResult& Result(Ticket ticket);

  /// Runs every admitted query to completion.
  void Drain();

  /// Queries admitted but not yet executed.
  size_t pending() const { return pending_ids_.size(); }

  /// Relaxed-atomic mirror of pending(), safe to read from any thread —
  /// the probe the utilization timeline sampler polls while the owning
  /// thread drives the session. Eventually consistent; never blocks.
  size_t PendingRelaxed() const {
    return pending_relaxed_.load(std::memory_order_relaxed);
  }

  size_t submitted() const { return queries_.size(); }
  const SchedulerStats& stats() const { return scheduler_.stats(); }

 private:
  void StepOnce();

  Options options_;
  AdaptiveScheduler scheduler_;
  size_t admit_watermark_;
  /// Deques for pointer stability: a wave's workers write distinct,
  /// already-constructed elements of results_ (and the matching done_
  /// bytes) concurrently, which is safe exactly because push_back never
  /// relocates existing deque elements; the wave's join publishes the
  /// writes to the owning thread.
  std::deque<Trajectory> queries_;
  std::deque<KnnResult> results_;
  std::deque<uint8_t> done_;  ///< per-ticket readiness (out-of-order safe)
  std::deque<size_t> pending_ids_;  ///< unexecuted tickets, arrival order
  size_t completed_count_ = 0;
  std::atomic<size_t> pending_relaxed_{0};  ///< see PendingRelaxed()
};

}  // namespace edr

#endif  // EDR_QUERY_SCHEDULER_H_
