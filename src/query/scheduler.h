#ifndef EDR_QUERY_SCHEDULER_H_
#define EDR_QUERY_SCHEDULER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/trajectory.h"
#include "query/engine.h"
#include "query/knn.h"

namespace edr {

class FeatureCache;
class ThreadPool;

/// Tuning knobs for the adaptive batch scheduler.
///
/// The scheduler unifies the two parallelism modes the library already
/// proves bit-identical — inter-query sharding (KnnBatch) and intra-query
/// fan-out (KnnOptions::intra_query_workers) — by choosing per query from
/// the live pool state: pending queries, pool capacity, and foreign
/// occupancy (ThreadPool::BusyWorkers). A deep backlog runs queries
/// one-per-worker in *waves*; once the backlog drains below
/// `widen_pending`, the remaining queries run one at a time with the whole
/// effective capacity as intra-query budget, so the tail of a batch never
/// leaves workers idle.
struct SchedulerPolicy {
  /// Cap on any single query's intra-query budget (0 = pool capacity).
  unsigned max_intra_workers = 0;
  /// Cap on total parallelism, the KnnBatch `threads` knob (0 = pool
  /// capacity). 1 forces the fully sequential caller-thread path.
  unsigned max_threads = 0;
  /// Backlog level at or below which queries widen instead of riding a
  /// wave (0 = auto: half the capacity, at least 1).
  size_t widen_pending = 0;
  /// Cap on the fusion-group size for searchers with a fused entry point
  /// (NamedSearcher::search_fused): up to this many backlog queries are
  /// answered by one fused database sweep, the group running on the
  /// calling thread with the whole free capacity as intra-query budget.
  /// 0 = auto (kMaxFusionGroup, the kernels' register-blocking width);
  /// 1 disables fusion. Ignored — fusion off — under budget_override,
  /// whose schedules are strictly per-query.
  size_t max_fusion = 0;
  /// Test hook: when set, every query runs solo (no waves) with budget
  /// `budget_override(pending, capacity)` clamped to [1, capacity] —
  /// this is how scheduler_test drives fixed, oscillating, and
  /// adversarial budget schedules through the exact production call path.
  std::function<unsigned(size_t pending, unsigned capacity)> budget_override;
};

/// What the scheduler decided over one run — exposed on the session /
/// batch entry points and mirrored into the metrics registry under
/// "sched.*".
struct SchedulerStats {
  size_t queries = 0;          ///< queries completed
  size_t waves = 0;            ///< inter-query ParallelFor dispatches
  size_t wave_queries = 0;     ///< queries that ran inside a wave (budget 1)
  size_t widened_queries = 0;  ///< solo queries granted a budget > 1
  size_t fused_groups = 0;     ///< fused multi-query sweep dispatches
  size_t fused_queries = 0;    ///< queries answered inside a fused group
  uint64_t budget_granted = 0; ///< summed per-call budgets
  unsigned max_budget = 0;     ///< largest budget any call received
};

/// The decision engine shared by KnnBatch and QuerySession. One instance
/// drives one run; it is not thread-safe (Step is called from the
/// owning thread, which then fans out internally).
///
/// Determinism: every schedule — any partition of the queries into fused
/// groups, waves, and solo calls, under any budget assignment — produces
/// bit-identical KnnResults, because (a) each query's result is
/// budget-invariant (the PR 3 guarantee, certified by intra_query_test),
/// (b) queries never share mutable state, (c) results are written by query
/// index, and (d) a fused group's results are bit-identical to member-wise
/// calls (certified by fused_sweep_test). scheduler_test re-certifies this
/// end to end against adversarial schedules.
class AdaptiveScheduler {
 public:
  /// `searcher` and `policy` are borrowed for the scheduler's lifetime.
  /// `pool` = nullptr uses ThreadPool::Global(); `cache` = nullptr runs
  /// uncached. The per-call KnnOptions hand both to the searcher, so a
  /// bound-in pool on the NamedSearcher is overridden only when `pool`
  /// is explicit.
  AdaptiveScheduler(const NamedSearcher& searcher, size_t k,
                    const SchedulerPolicy& policy, ThreadPool* pool,
                    FeatureCache* cache);

  /// Total parallelism available to this run: pool workers + the caller,
  /// clamped by policy.max_threads. At least 1.
  unsigned Capacity() const;

  /// Capacity minus workers currently busy with *foreign* pool jobs (the
  /// live occupancy signal; between this scheduler's own dispatches the
  /// pool is quiescent, so busy slots belong to other clients). At
  /// least 1: the caller can always run a query itself.
  unsigned EffectiveCapacity() const;

  /// The intra-query budget a solo query would receive with `pending`
  /// queries outstanding: effective capacity split across the backlog,
  /// clamped to [1, min(capacity, policy.max_intra_workers)].
  unsigned GrantBudget(size_t pending) const;

  /// Backlog level at or below which queries widen (resolves the
  /// policy's auto setting).
  size_t WidenPending() const;

  /// Largest fusion group one Step may form: policy.max_fusion resolved
  /// (0 = kMaxFusionGroup), or 1 when the searcher has no fused entry
  /// point or a budget override is active.
  size_t MaxFusion() const;

  /// Executes one scheduling decision over the `pending` queries starting
  /// at index `next`: one fused group (a single multi-query sweep on the
  /// calling thread, for fusable searchers), one wave (budget-1 queries
  /// fanned inter-query across the pool), or one solo query with a wider
  /// budget on the calling thread. Emits every completed result via
  /// `emit(index, result)` and returns how many queries completed (>= 1).
  size_t Step(size_t next, size_t pending,
              const std::function<const Trajectory&(size_t)>& query_at,
              const std::function<void(size_t, KnnResult&&)>& emit);

  const SchedulerStats& stats() const { return stats_; }

 private:
  KnnResult Call(const Trajectory& query, unsigned budget);
  void RecordGrant(unsigned budget);

  const NamedSearcher& searcher_;
  size_t k_;
  const SchedulerPolicy& policy_;
  ThreadPool* pool_;  ///< explicit pool or nullptr (= Global)
  FeatureCache* cache_;
  SchedulerStats stats_;
};

/// Schedules a whole batch adaptively and returns results in query order —
/// the engine's KnnBatch delegates here. Bit-identical to calling
/// `searcher` sequentially. `stats_out` (optional) receives the schedule
/// taken.
std::vector<KnnResult> RunScheduled(const NamedSearcher& searcher,
                                    const std::vector<Trajectory>& queries,
                                    size_t k, const SchedulerPolicy& policy,
                                    ThreadPool* pool = nullptr,
                                    FeatureCache* cache = nullptr,
                                    SchedulerStats* stats_out = nullptr);

/// A streaming query session: queries are admitted as they arrive
/// (Submit), not at a batch barrier, and the scheduler decides execution
/// from the backlog at each step — a deep backlog triggers eager waves, a
/// drained one widens the stragglers. Results are retrieved by ticket in
/// any order; asking for a result drives the schedule forward until that
/// ticket completes.
///
/// Single-owner: Submit / Result / Drain must be called from one thread
/// (the session fans out internally). Completed results stay owned by the
/// session until it is destroyed.
class QuerySession {
 public:
  struct Options {
    size_t k = 10;
    SchedulerPolicy policy;
    /// Pool to run on; nullptr = ThreadPool::Global().
    ThreadPool* pool = nullptr;
    /// Feature cache shared by every query of the session (and, if the
    /// caller passes the same cache to several sessions, across them).
    FeatureCache* feature_cache = nullptr;
    /// Backlog size that triggers eager execution inside Submit, so a
    /// sustained stream makes progress without anyone asking for results
    /// (0 = auto: twice the capacity).
    size_t admit_watermark = 0;
  };

  using Ticket = size_t;

  /// `searcher` and the pool/cache in `options` must outlive the session.
  QuerySession(const NamedSearcher& searcher, const Options& options);

  /// Admits a query; returns the ticket Result() takes. May execute
  /// pending queries eagerly when the backlog reaches the admit
  /// watermark.
  Ticket Submit(Trajectory query);

  /// The answer for `ticket`, running the schedule forward as needed.
  const KnnResult& Result(Ticket ticket);

  /// Runs every admitted query to completion.
  void Drain();

  /// Queries admitted but not yet executed.
  size_t pending() const { return queries_.size() - completed_; }

  /// Relaxed-atomic mirror of pending(), safe to read from any thread —
  /// the probe the utilization timeline sampler polls while the owning
  /// thread drives the session. Eventually consistent; never blocks.
  size_t PendingRelaxed() const {
    return pending_relaxed_.load(std::memory_order_relaxed);
  }

  size_t submitted() const { return queries_.size(); }
  const SchedulerStats& stats() const { return scheduler_.stats(); }

 private:
  void StepOnce();

  Options options_;
  AdaptiveScheduler scheduler_;
  size_t admit_watermark_;
  /// Deques for pointer stability: a wave's workers write distinct,
  /// already-constructed elements of results_ concurrently, which is safe
  /// exactly because push_back never relocates existing deque elements.
  std::deque<Trajectory> queries_;
  std::deque<KnnResult> results_;
  size_t completed_ = 0;  ///< tickets < completed_ are done (in order)
  std::atomic<size_t> pending_relaxed_{0};  ///< see PendingRelaxed()
};

}  // namespace edr

#endif  // EDR_QUERY_SCHEDULER_H_
