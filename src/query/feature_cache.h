#ifndef EDR_QUERY_FEATURE_CACHE_H_
#define EDR_QUERY_FEATURE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/point.h"
#include "core/trajectory.h"

namespace edr {

/// 64-bit FNV-1a over the trajectory's length and the raw bit patterns of
/// its coordinates. Two trajectories with equal points always hash equal;
/// the cache additionally verifies the stored points element-for-element
/// on every hit, so a hash collision degrades to a miss, never to a wrong
/// feature vector.
uint64_t TrajectoryFingerprint(const Trajectory& t);

/// A bounded LRU cache of per-query filter features — the histogram /
/// Q-gram feature vectors every filter-and-refine searcher derives from
/// the query before it can prune anything. Entries are keyed by
/// (trajectory fingerprint, searcher config key): the config key encodes
/// every parameter the feature depends on (grid geometry, Q-gram size,
/// sortedness), so two searchers with semantically identical configs
/// share entries, and a repeated or re-ranked query skips its filter
/// precomputation entirely.
///
/// Values are immutable once inserted (handed out as shared_ptr<const T>),
/// so cached features can feed concurrent queries; all map/LRU state is
/// mutex-protected. Feature construction runs outside the lock — two
/// threads missing on the same key both build, and the second insert wins,
/// which is benign because both builds produce identical values.
///
/// Hits / misses / evictions are counted per instance (available in every
/// build) and mirrored into the process-wide MetricsRegistry
/// ("feature_cache.hits" / ".misses" / ".evictions") when observability is
/// compiled in.
class FeatureCache {
 public:
  /// `capacity` bounds the number of cached feature vectors; the least
  /// recently used entry is evicted when a new insert would exceed it.
  explicit FeatureCache(size_t capacity = 128);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  Stats stats() const;

  size_t capacity() const { return capacity_; }

  /// Drops every entry (counters are kept).
  void Clear();

  /// Returns the cached feature for (config_key, query), building and
  /// inserting it with `build()` on a miss. `build` must be a pure
  /// function of the query and the configuration named by `config_key` —
  /// the determinism of the warm path rests on that.
  template <typename T, typename BuildFn>
  std::shared_ptr<const T> GetOrBuild(const std::string& config_key,
                                      const Trajectory& query,
                                      BuildFn&& build) {
    const uint64_t fingerprint = TrajectoryFingerprint(query);
    if (std::shared_ptr<const void> hit =
            Lookup(config_key, fingerprint, query)) {
      return std::static_pointer_cast<const T>(hit);
    }
    auto value = std::make_shared<const T>(build());
    Insert(config_key, fingerprint, query, value);
    return value;
  }

 private:
  struct Entry {
    std::pair<std::string, uint64_t> key;
    std::vector<Point2> points;  ///< exact-match guard against collisions
    std::shared_ptr<const void> value;
  };

  std::shared_ptr<const void> Lookup(const std::string& config_key,
                                     uint64_t fingerprint,
                                     const Trajectory& query);
  void Insert(const std::string& config_key, uint64_t fingerprint,
              const Trajectory& query, std::shared_ptr<const void> value);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< most recently used at the front
  std::map<std::pair<std::string, uint64_t>, std::list<Entry>::iterator>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// The cached-or-built feature for searchers: consults `cache` when one is
/// attached to the query's KnnOptions, otherwise builds directly. Either
/// way the caller receives an immutable feature whose contents are
/// bit-identical to a plain `build()` — the cache is a pure cost knob.
template <typename T, typename BuildFn>
std::shared_ptr<const T> GetOrBuildFeature(FeatureCache* cache,
                                           const std::string& config_key,
                                           const Trajectory& query,
                                           BuildFn&& build) {
  if (cache != nullptr) {
    return cache->GetOrBuild<T>(config_key, query,
                                std::forward<BuildFn>(build));
  }
  return std::make_shared<const T>(build());
}

}  // namespace edr

#endif  // EDR_QUERY_FEATURE_CACHE_H_
