#include "pruning/persistence.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace edr {

namespace {
constexpr char kMagic[4] = {'E', 'D', 'R', 'M'};
constexpr uint32_t kVersion = 1;
}  // namespace

Status SavePairwiseMatrix(const PairwiseEdrMatrix& matrix,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);

  out.write(kMagic, sizeof(kMagic));
  const uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t num_refs = matrix.num_refs();
  const uint64_t db_size = matrix.db_size();
  out.write(reinterpret_cast<const char*>(&num_refs), sizeof(num_refs));
  out.write(reinterpret_cast<const char*>(&db_size), sizeof(db_size));

  const std::vector<int>& data = matrix.data();
  // int32 on every platform this library targets; keep the on-disk type
  // explicit regardless.
  std::vector<int32_t> row(data.begin(), data.end());
  out.write(reinterpret_cast<const char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(int32_t)));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<PairwiseEdrMatrix> LoadPairwiseMatrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a pairwise-matrix file: " + path);
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) {
    return Status::InvalidArgument("unsupported matrix version in " + path);
  }
  uint64_t num_refs = 0;
  uint64_t db_size = 0;
  in.read(reinterpret_cast<char*>(&num_refs), sizeof(num_refs));
  in.read(reinterpret_cast<char*>(&db_size), sizeof(db_size));
  if (!in) return Status::IoError("truncated header: " + path);

  // Sanity-cap the allocation before trusting the header (a corrupt file
  // must not trigger a giant allocation).
  constexpr uint64_t kMaxEntries = 1ULL << 33;
  if (num_refs * db_size > kMaxEntries) {
    return Status::InvalidArgument("implausible matrix dimensions in " +
                                   path);
  }

  std::vector<int32_t> raw(num_refs * db_size);
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size() * sizeof(int32_t)));
  if (!in) return Status::IoError("truncated payload: " + path);

  return PairwiseEdrMatrix::FromParts(
      static_cast<size_t>(num_refs), static_cast<size_t>(db_size),
      std::vector<int>(raw.begin(), raw.end()));
}

}  // namespace edr
