#ifndef EDR_PRUNING_PERSISTENCE_H_
#define EDR_PRUNING_PERSISTENCE_H_

#include <string>

#include "core/status.h"
#include "pruning/near_triangle.h"

namespace edr {

/// Persistence for the precomputed pairwise EDR matrix — the paper's
/// `pmatrix`, which is computed offline and paged in at query time
/// (Section 4.2). The format is a little-endian binary file:
///
///   magic "EDRM"  u32 version  u64 num_refs  u64 db_size
///   int32 distances[num_refs * db_size]   (row-major)
///
/// The matrix is tied to a specific dataset *order* and epsilon; callers
/// are responsible for pairing files with the dataset they were built
/// from (LoadPairwiseMatrix validates only structural integrity).
Status SavePairwiseMatrix(const PairwiseEdrMatrix& matrix,
                          const std::string& path);

/// Loads a matrix written by SavePairwiseMatrix. Fails with
/// kInvalidArgument on a bad magic/version and kIoError on truncation.
Result<PairwiseEdrMatrix> LoadPairwiseMatrix(const std::string& path);

}  // namespace edr

#endif  // EDR_PRUNING_PERSISTENCE_H_
