#include "pruning/qgram_knn.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "distance/edr_kernel.h"
#include "pruning/qgram.h"

namespace edr {

const char* QgramVariantName(QgramVariant variant) {
  switch (variant) {
    case QgramVariant::kRtree2D: return "PR";
    case QgramVariant::kBtree1D: return "PB";
    case QgramVariant::kMerge2D: return "PS2";
    case QgramVariant::kMerge1D: return "PS1";
  }
  return "?";
}

QgramKnnSearcher::QgramKnnSearcher(const TrajectoryDataset& db,
                                   double epsilon, int q,
                                   QgramVariant variant)
    : db_(db), epsilon_(epsilon), q_(q), variant_(variant) {
  switch (variant_) {
    case QgramVariant::kRtree2D: {
      rtree_ = std::make_unique<RStarTree>();
      for (const Trajectory& t : db_) {
        for (const Point2& mean : MeanValueQgrams(t, q_)) {
          rtree_->Insert(mean, t.id());
        }
      }
      break;
    }
    case QgramVariant::kBtree1D: {
      btree_ = std::make_unique<BPlusTree>();
      for (const Trajectory& t : db_) {
        for (const double mean : MeanValueQgrams1D(t, q_, /*use_x=*/true)) {
          btree_->Insert(mean, t.id());
        }
      }
      break;
    }
    case QgramVariant::kMerge2D: {
      means_ = std::make_unique<QgramMeansTable>(db_, q_, /*dims=*/2);
      break;
    }
    case QgramVariant::kMerge1D: {
      means_ = std::make_unique<QgramMeansTable>(db_, q_, /*dims=*/1);
      break;
    }
  }
}

std::vector<size_t> QgramKnnSearcher::MatchCounts(
    const Trajectory& query) const {
  std::vector<size_t> counts(db_.size(), 0);
  switch (variant_) {
    case QgramVariant::kRtree2D: {
      // For each query-gram mean, probe the tree with the epsilon square
      // and count each trajectory at most once per query gram (a gram of Q
      // either matches some gram of S or it does not).
      std::vector<size_t> last_gram(db_.size(), static_cast<size_t>(-1));
      const std::vector<Point2> means = MeanValueQgrams(query, q_);
      for (size_t g = 0; g < means.size(); ++g) {
        rtree_->SearchRange(Rect::Around(means[g], epsilon_),
                            [&](uint32_t id) {
                              if (last_gram[id] != g) {
                                last_gram[id] = g;
                                ++counts[id];
                              }
                            });
      }
      break;
    }
    case QgramVariant::kBtree1D: {
      std::vector<size_t> last_gram(db_.size(), static_cast<size_t>(-1));
      const std::vector<double> means =
          MeanValueQgrams1D(query, q_, /*use_x=*/true);
      for (size_t g = 0; g < means.size(); ++g) {
        btree_->SearchRange(means[g] - epsilon_, means[g] + epsilon_,
                            [&](double, uint32_t id) {
                              if (last_gram[id] != g) {
                                last_gram[id] = g;
                                ++counts[id];
                              }
                            });
      }
      break;
    }
    case QgramVariant::kMerge2D: {
      std::vector<Point2> means = MeanValueQgrams(query, q_);
      SortMeans(means);
      for (size_t i = 0; i < db_.size(); ++i) {
        counts[i] =
            means_->CountMatches2D(means, epsilon_, static_cast<uint32_t>(i));
      }
      break;
    }
    case QgramVariant::kMerge1D: {
      std::vector<double> means = MeanValueQgrams1D(query, q_, /*use_x=*/true);
      std::sort(means.begin(), means.end());
      for (size_t i = 0; i < db_.size(); ++i) {
        counts[i] =
            means_->CountMatches1D(means, epsilon_, static_cast<uint32_t>(i));
      }
      break;
    }
  }
  return counts;
}

KnnResult QgramKnnSearcher::Knn(const Trajectory& query, size_t k) const {
  const auto start = std::chrono::steady_clock::now();
  if (k == 0) {
    // Nothing can be returned; skip the scan (and the -inf bestSoFar the
    // threshold arithmetic below cannot represent).
    KnnResult out;
    out.stats.db_size = db_.size();
    return out;
  }

  const std::vector<size_t> counts = MatchCounts(query);
  std::vector<uint32_t> order(db_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&counts](uint32_t a, uint32_t b) {
    return counts[a] > counts[b];
  });

  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  KnnResultList result(k);
  size_t computed = 0;
  const long query_len = static_cast<long>(query.size());

  size_t i = 0;
  // Seed: the first k trajectories by descending count get true distances.
  for (; i < order.size() && i < k; ++i) {
    const Trajectory& s = db_[order[i]];
    result.Offer(s.id(), static_cast<double>(EdrDistanceWith(
                             kernel, scratch, query, s, epsilon_)));
    ++computed;
  }

  for (; i < order.size(); ++i) {
    const double best = result.KthDistance();
    const long best_k = static_cast<long>(best);  // EDR values are integers.
    const Trajectory& s = db_[order[i]];
    const long count = static_cast<long>(counts[order[i]]);

    // Smallest threshold any remaining trajectory can have: lengths are at
    // least |Q| inside max(|Q|, |S|). Counts are non-increasing from here,
    // so once the count falls below it, everything remaining is pruned.
    const long universal_threshold =
        query_len - static_cast<long>(q_) + 1 - best_k * static_cast<long>(q_);
    if (count < universal_threshold) break;

    const long threshold =
        QgramCountThreshold(query.size(), s.size(), q_, best_k);
    if (count < threshold) continue;  // Theorem 3: EDR(Q, S) > bestSoFar.

    // Refinement with the running k-th distance as an early-abandon bound:
    // exact when the candidate could enter the result, otherwise some
    // lower bound > bestSoFar that Offer rejects just the same.
    const double dist = static_cast<double>(EdrDistanceBoundedWith(
        kernel, scratch, query, s, epsilon_, static_cast<int>(best)));
    ++computed;
    result.Offer(s.id(), dist);
  }

  const auto stop = std::chrono::steady_clock::now();
  KnnResult out;
  out.neighbors = std::move(result).TakeNeighbors();
  out.stats.db_size = db_.size();
  out.stats.edr_computed = computed;
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  return out;
}

std::string QgramKnnSearcher::name() const {
  return std::string(QgramVariantName(variant_)) + "(q=" +
         std::to_string(q_) + ")";
}


KnnResult QgramKnnSearcher::Range(const Trajectory& query, int radius) const {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<size_t> counts = MatchCounts(query);
  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();

  KnnResult out;
  size_t computed = 0;
  for (uint32_t id = 0; id < db_.size(); ++id) {
    const Trajectory& s = db_[id];
    const long threshold =
        QgramCountThreshold(query.size(), s.size(), q_, radius);
    if (static_cast<long>(counts[id]) < threshold) continue;  // Theorem 1.
    // Exact whenever dist <= radius (the only candidates reported).
    const int dist =
        EdrDistanceBoundedWith(kernel, scratch, query, s, epsilon_, radius);
    ++computed;
    if (dist <= radius) {
      out.neighbors.push_back({id, static_cast<double>(dist)});
    }
  }
  std::sort(out.neighbors.begin(), out.neighbors.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  const auto stop = std::chrono::steady_clock::now();
  out.stats.db_size = db_.size();
  out.stats.edr_computed = computed;
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  return out;
}

}  // namespace edr
