#include "pruning/qgram_knn.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "core/cpu.h"
#include "distance/edr_kernel.h"
#include "obs/trace.h"
#include "pruning/qgram.h"
#include "query/feature_cache.h"
#include "query/intra_query.h"
#include "query/topk.h"

namespace edr {

const char* QgramVariantName(QgramVariant variant) {
  switch (variant) {
    case QgramVariant::kRtree2D: return "PR";
    case QgramVariant::kBtree1D: return "PB";
    case QgramVariant::kMerge2D: return "PS2";
    case QgramVariant::kMerge1D: return "PS1";
  }
  return "?";
}

QgramKnnSearcher::QgramKnnSearcher(const TrajectoryDataset& db,
                                   double epsilon, int q,
                                   QgramVariant variant)
    : db_(db), epsilon_(epsilon), q_(q), variant_(variant) {
  switch (variant_) {
    case QgramVariant::kRtree2D:
      feature_key_ = "qgram.means2d.raw/q=" + std::to_string(q_);
      break;
    case QgramVariant::kBtree1D:
      feature_key_ = "qgram.means1d.raw/q=" + std::to_string(q_);
      break;
    case QgramVariant::kMerge2D:
      feature_key_ = "qgram.means2d.sorted/q=" + std::to_string(q_);
      break;
    case QgramVariant::kMerge1D:
      feature_key_ = "qgram.means1d.sorted/q=" + std::to_string(q_);
      break;
  }
  switch (variant_) {
    case QgramVariant::kRtree2D: {
      rtree_ = std::make_unique<RStarTree>();
      for (const Trajectory& t : db_) {
        for (const Point2& mean : MeanValueQgrams(t, q_)) {
          rtree_->Insert(mean, t.id());
        }
      }
      break;
    }
    case QgramVariant::kBtree1D: {
      btree_ = std::make_unique<BPlusTree>();
      for (const Trajectory& t : db_) {
        for (const double mean : MeanValueQgrams1D(t, q_, /*use_x=*/true)) {
          btree_->Insert(mean, t.id());
        }
      }
      break;
    }
    case QgramVariant::kMerge2D: {
      means_ = std::make_unique<QgramMeansTable>(db_, q_, /*dims=*/2);
      break;
    }
    case QgramVariant::kMerge1D: {
      means_ = std::make_unique<QgramMeansTable>(db_, q_, /*dims=*/1);
      break;
    }
  }
}

std::vector<size_t> QgramKnnSearcher::MatchCounts(
    const Trajectory& query, const KnnOptions& options) const {
  std::vector<size_t> counts(db_.size(), 0);
  switch (variant_) {
    case QgramVariant::kRtree2D: {
      // For each query-gram mean, probe the tree with the epsilon square
      // and count each trajectory at most once per query gram (a gram of Q
      // either matches some gram of S or it does not). Probes mutate the
      // shared last_gram array, so this variant counts sequentially.
      std::vector<size_t> last_gram(db_.size(), static_cast<size_t>(-1));
      const auto means_ptr = GetOrBuildFeature<std::vector<Point2>>(
          options.feature_cache, feature_key_, query,
          [&] { return MeanValueQgrams(query, q_); });
      const std::vector<Point2>& means = *means_ptr;
      for (size_t g = 0; g < means.size(); ++g) {
        rtree_->SearchRange(Rect::Around(means[g], epsilon_),
                            [&](uint32_t id) {
                              if (last_gram[id] != g) {
                                last_gram[id] = g;
                                ++counts[id];
                              }
                            });
      }
      break;
    }
    case QgramVariant::kBtree1D: {
      std::vector<size_t> last_gram(db_.size(), static_cast<size_t>(-1));
      const auto means_ptr = GetOrBuildFeature<std::vector<double>>(
          options.feature_cache, feature_key_, query,
          [&] { return MeanValueQgrams1D(query, q_, /*use_x=*/true); });
      const std::vector<double>& means = *means_ptr;
      for (size_t g = 0; g < means.size(); ++g) {
        btree_->SearchRange(means[g] - epsilon_, means[g] + epsilon_,
                            [&](double, uint32_t id) {
                              if (last_gram[id] != g) {
                                last_gram[id] = g;
                                ++counts[id];
                              }
                            });
      }
      break;
    }
    case QgramVariant::kMerge2D: {
      const auto means_ptr = GetOrBuildFeature<std::vector<Point2>>(
          options.feature_cache, feature_key_, query, [&] {
            std::vector<Point2> m = MeanValueQgrams(query, q_);
            SortMeans(m);
            return m;
          });
      const std::vector<Point2>& means = *means_ptr;
      // Each trajectory's count reads only its own flat slice and writes
      // only its own output element — shard the ids over the pool.
      IntraQueryParallelFor(db_.size(), options, [&](size_t i) {
        counts[i] =
            means_->CountMatches2D(means, epsilon_, static_cast<uint32_t>(i));
      });
      break;
    }
    case QgramVariant::kMerge1D: {
      const auto means_ptr = GetOrBuildFeature<std::vector<double>>(
          options.feature_cache, feature_key_, query, [&] {
            std::vector<double> m = MeanValueQgrams1D(query, q_, /*use_x=*/true);
            std::sort(m.begin(), m.end());
            return m;
          });
      const std::vector<double>& means = *means_ptr;
      IntraQueryParallelFor(db_.size(), options, [&](size_t i) {
        counts[i] =
            means_->CountMatches1D(means, epsilon_, static_cast<uint32_t>(i));
      });
      break;
    }
  }
  return counts;
}

KnnResult QgramKnnSearcher::Knn(const Trajectory& query, size_t k,
                                const KnnOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  KnnResult out;
  out.stats.db_size = db_.size();
  if (k == 0) {
    // Nothing can be returned; skip the scan (and the -inf bestSoFar the
    // threshold arithmetic below cannot represent).
    out.stats.stages.FinalizeNotVisited(db_.size());
    return out;
  }

  std::shared_ptr<QueryTrace> trace = MakeQueryTrace();
  RecordSchedBudget(trace.get(), options);
  TraceSpan filter_span(trace.get(), "match_count");
  const std::vector<size_t> counts = MatchCounts(query, options);
  filter_span.End();
  const double filter_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return RefineWithCounts(query, k, options, counts, std::move(trace),
                          filter_seconds);
}

std::vector<KnnResult> QgramKnnSearcher::KnnFused(
    const std::vector<const Trajectory*>& queries, size_t k,
    const KnnOptions& options) const {
  const size_t group = queries.size();
  std::vector<KnnResult> results(group);
  if (group == 0) return results;
  const auto start = std::chrono::steady_clock::now();
  if (k == 0) {
    for (KnnResult& r : results) {
      r.stats.db_size = db_.size();
      r.stats.stages.FinalizeNotVisited(db_.size());
    }
    return results;
  }

  std::vector<std::shared_ptr<QueryTrace>> traces(group);
  std::vector<int32_t> span_ids(group, -1);
  for (size_t f = 0; f < group; ++f) {
    traces[f] = MakeQueryTrace();
    RecordSchedBudget(traces[f].get(), options);
    if (traces[f] != nullptr) span_ids[f] = traces[f]->Begin("fused_sweep");
  }

  // Merge variants: one streaming pass over the flat posting arrays per
  // id-shard — each trajectory's slice is merge-counted against every
  // member while it is cache-hot, members chunked to the kernel group
  // width. Tree variants: one probe pass over the shared read-only index —
  // every member's grams are probed with private (per-member) dedup and
  // count state, the whole group's probes sorted by coordinate so
  // neighboring probes descend warm tree paths.
  std::vector<std::vector<size_t>> counts(
      group, std::vector<size_t>(db_.size(), 0));
  if (variant_ == QgramVariant::kRtree2D) {
    std::vector<std::shared_ptr<const std::vector<Point2>>> features(group);
    for (size_t f = 0; f < group; ++f) {
      features[f] = GetOrBuildFeature<std::vector<Point2>>(
          options.feature_cache, feature_key_, *queries[f],
          [&] { return MeanValueQgrams(*queries[f], q_); });
    }
    // Per-member probe state keeps the shared tree re-entrant: a gram of
    // member f deduplicates only against f's own last-gram array, exactly
    // as f's solo MatchCounts pass would.
    std::vector<std::vector<size_t>> last_gram(
        group, std::vector<size_t>(db_.size(), static_cast<size_t>(-1)));
    struct Probe {
      double key;
      uint32_t f;
      uint32_t g;
    };
    std::vector<Probe> probes;
    for (uint32_t f = 0; f < group; ++f) {
      const std::vector<Point2>& means = *features[f];
      for (uint32_t g = 0; g < means.size(); ++g) {
        probes.push_back({means[g].x, f, g});
      }
    }
    // Deterministic coordinate order; each (member, gram) appears exactly
    // once, so any probe order yields the same counts.
    std::sort(probes.begin(), probes.end(),
              [](const Probe& a, const Probe& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.f != b.f ? a.f < b.f : a.g < b.g;
              });
    for (const Probe& p : probes) {
      const Point2& mean = (*features[p.f])[p.g];
      std::vector<size_t>& lg = last_gram[p.f];
      std::vector<size_t>& cnt = counts[p.f];
      const size_t g = p.g;
      rtree_->SearchRange(Rect::Around(mean, epsilon_), [&](uint32_t id) {
        if (lg[id] != g) {
          lg[id] = g;
          ++cnt[id];
        }
      });
    }
  } else if (variant_ == QgramVariant::kBtree1D) {
    std::vector<std::shared_ptr<const std::vector<double>>> features(group);
    for (size_t f = 0; f < group; ++f) {
      features[f] = GetOrBuildFeature<std::vector<double>>(
          options.feature_cache, feature_key_, *queries[f], [&] {
            return MeanValueQgrams1D(*queries[f], q_, /*use_x=*/true);
          });
    }
    std::vector<std::vector<size_t>> last_gram(
        group, std::vector<size_t>(db_.size(), static_cast<size_t>(-1)));
    struct Probe {
      double key;
      uint32_t f;
      uint32_t g;
    };
    std::vector<Probe> probes;
    for (uint32_t f = 0; f < group; ++f) {
      const std::vector<double>& means = *features[f];
      for (uint32_t g = 0; g < means.size(); ++g) {
        probes.push_back({means[g], f, g});
      }
    }
    std::sort(probes.begin(), probes.end(),
              [](const Probe& a, const Probe& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.f != b.f ? a.f < b.f : a.g < b.g;
              });
    for (const Probe& p : probes) {
      std::vector<size_t>& lg = last_gram[p.f];
      std::vector<size_t>& cnt = counts[p.f];
      const size_t g = p.g;
      btree_->SearchRange(p.key - epsilon_, p.key + epsilon_,
                          [&](double, uint32_t id) {
                            if (lg[id] != g) {
                              lg[id] = g;
                              ++cnt[id];
                            }
                          });
    }
  } else if (variant_ == QgramVariant::kMerge2D) {
    std::vector<std::shared_ptr<const std::vector<Point2>>> features(group);
    for (size_t f = 0; f < group; ++f) {
      features[f] = GetOrBuildFeature<std::vector<Point2>>(
          options.feature_cache, feature_key_, *queries[f], [&] {
            std::vector<Point2> m = MeanValueQgrams(*queries[f], q_);
            SortMeans(m);
            return m;
          });
    }
    for (size_t base = 0; base < group; base += kMaxFusionGroup) {
      const size_t chunk = std::min(kMaxFusionGroup, group - base);
      std::vector<const std::vector<Point2>*> qms(chunk);
      for (size_t c = 0; c < chunk; ++c) qms[c] = features[base + c].get();
      IntraQueryParallelFor(db_.size(), options, [&](size_t i) {
        size_t tmp[kMaxFusionGroup];
        means_->CountMatchesFused2D(qms, epsilon_,
                                    static_cast<uint32_t>(i), tmp);
        for (size_t c = 0; c < chunk; ++c) counts[base + c][i] = tmp[c];
      });
    }
  } else {
    std::vector<std::shared_ptr<const std::vector<double>>> features(group);
    for (size_t f = 0; f < group; ++f) {
      features[f] = GetOrBuildFeature<std::vector<double>>(
          options.feature_cache, feature_key_, *queries[f], [&] {
            std::vector<double> m =
                MeanValueQgrams1D(*queries[f], q_, /*use_x=*/true);
            std::sort(m.begin(), m.end());
            return m;
          });
    }
    for (size_t base = 0; base < group; base += kMaxFusionGroup) {
      const size_t chunk = std::min(kMaxFusionGroup, group - base);
      std::vector<const std::vector<double>*> qms(chunk);
      for (size_t c = 0; c < chunk; ++c) qms[c] = features[base + c].get();
      IntraQueryParallelFor(db_.size(), options, [&](size_t i) {
        size_t tmp[kMaxFusionGroup];
        means_->CountMatchesFused1D(qms, epsilon_,
                                    static_cast<uint32_t>(i), tmp);
        for (size_t c = 0; c < chunk; ++c) counts[base + c][i] = tmp[c];
      });
    }
  }
  for (size_t f = 0; f < group; ++f) {
    if (traces[f] != nullptr) traces[f]->End(span_ids[f]);
  }
  const double filter_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (size_t f = 0; f < group; ++f) {
    results[f] = RefineWithCounts(*queries[f], k, options, counts[f],
                                  std::move(traces[f]), filter_seconds);
  }
  return results;
}

KnnResult QgramKnnSearcher::RefineWithCounts(
    const Trajectory& query, size_t k, const KnnOptions& options,
    const std::vector<size_t>& counts, std::shared_ptr<QueryTrace> trace,
    double filter_seconds) const {
  const auto refine_entry = std::chrono::steady_clock::now();
  KnnResult out;
  out.stats.db_size = db_.size();
  TraceSpan order_span(trace.get(), "order_build");
  // Canonical visit order: descending count, ties by ascending id —
  // drained lazily so only the prefix the scan actually visits is ordered.
  std::vector<StreamingOrder<long>::Entry> entries(db_.size());
  for (size_t i = 0; i < db_.size(); ++i) {
    entries[i] = {-static_cast<long>(counts[i]), static_cast<uint32_t>(i)};
  }
  order_span.End();
  // Candidate ordering belongs to the filter phase in the reported split.
  const auto order_done = std::chrono::steady_clock::now();
  filter_seconds +=
      std::chrono::duration<double>(order_done - refine_entry).count();

  const EdrKernel kernel = DefaultEdrKernel();
  const long query_len = static_cast<long>(query.size());
  const unsigned slots = ResolveIntraQueryWorkers(options);
  std::vector<size_t> computed(slots, 0);
  std::vector<StageCounters> slot_stages(slots);

  const auto refine = [&](unsigned slot, uint32_t id, double threshold,
                          double* dist) {
    const Trajectory& s = db_[id];
    StageCounters& st = slot_stages[slot];
    st.Bump(&StageCounters::considered);
    if (!std::isinf(threshold)) {
      // Theorem 3: fewer matching grams than the per-candidate threshold
      // means EDR(Q, S) > bestSoFar.
      const long th = QgramCountThreshold(query.size(), s.size(), q_,
                                          static_cast<long>(threshold));
      if (static_cast<long>(counts[id]) < th) {
        st.Bump(&StageCounters::qgram_pruned);
        return false;
      }
    }
    // Refinement with the running k-th distance as an early-abandon bound:
    // exact when the candidate could enter the result, otherwise some
    // lower bound > bestSoFar that the selection rejects just the same.
    const int bound = EdrBoundFromKthDistance(threshold);
    const int d = EdrDistanceBoundedWith(kernel, ThreadLocalEdrScratch(),
                                         query, s, epsilon_, bound);
    ++computed[slot];
    st.CountDp(query.size(), s.size());
    if (d > bound) {
      st.Bump(&StageCounters::dp_early_abandoned);
      return false;
    }
    *dist = static_cast<double>(d);
    return true;
  };
  // Smallest Theorem-3 threshold any remaining trajectory can have:
  // lengths are at least |Q| inside max(|Q|, |S|). Counts only decrease
  // from here, so once the count falls below it, everything remaining is
  // pruned and the whole scan stops.
  const auto stop = [&](long key, double threshold) {
    if (std::isinf(threshold)) return false;
    const long universal_threshold =
        query_len - static_cast<long>(q_) + 1 -
        static_cast<long>(threshold) * static_cast<long>(q_);
    return -key < universal_threshold;
  };
  TraceSpan refine_span(trace.get(), "refine");
  out.neighbors = RefineInKeyOrder<long>(std::move(entries), k, options,
                                         refine, stop,
                                         {trace.get(), refine_span.id()});
  refine_span.End();

  const auto stop_time = std::chrono::steady_clock::now();
  for (const size_t c : computed) out.stats.edr_computed += c;
  for (const StageCounters& st : slot_stages) out.stats.stages.Add(st);
  out.stats.stages.FinalizeNotVisited(db_.size());
  out.stats.filter_seconds = filter_seconds;
  out.stats.refine_seconds =
      std::chrono::duration<double>(stop_time - order_done).count();
  out.stats.elapsed_seconds =
      out.stats.filter_seconds + out.stats.refine_seconds;
  out.trace = std::move(trace);
  RecordQueryMetrics(out.stats);
  return out;
}

std::string QgramKnnSearcher::name() const {
  return std::string(QgramVariantName(variant_)) + "(q=" +
         std::to_string(q_) + ")";
}

uint64_t QgramKnnSearcher::FusionFingerprint(const Trajectory& query) const {
  // splitmix64-style finalizer; the top six bits pick the mask bit.
  const auto mix_bit = [](uint64_t v) -> uint64_t {
    v *= 0x9e3779b97f4a7c15ull;
    v ^= v >> 29;
    v *= 0xbf58476d1ce4e5b9ull;
    return 1ull << (v >> 58);
  };
  const double cell = epsilon_ > 0.0 ? epsilon_ : 1.0;
  const auto quantize = [cell](double v) -> uint64_t {
    return static_cast<uint64_t>(
        static_cast<int64_t>(std::floor(v / cell)));
  };
  uint64_t sig = 0;
  if (variant_ == QgramVariant::kRtree2D ||
      variant_ == QgramVariant::kMerge2D) {
    for (const Point2& m : MeanValueQgrams(query, q_)) {
      sig |= mix_bit(quantize(m.x) * 0x100000001b3ull + quantize(m.y));
    }
  } else {
    for (const double m : MeanValueQgrams1D(query, q_, /*use_x=*/true)) {
      sig |= mix_bit(quantize(m));
    }
  }
  return sig;
}


KnnResult QgramKnnSearcher::Range(const Trajectory& query, int radius,
                                  size_t max_results) const {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<size_t> counts = MatchCounts(query);
  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();

  KnnResult out;
  size_t computed = 0;
  StageCounters& stages = out.stats.stages;
  for (uint32_t id = 0; id < db_.size(); ++id) {
    const Trajectory& s = db_[id];
    stages.Bump(&StageCounters::considered);
    const long threshold =
        QgramCountThreshold(query.size(), s.size(), q_, radius);
    if (static_cast<long>(counts[id]) < threshold) {  // Theorem 1.
      stages.Bump(&StageCounters::qgram_pruned);
      continue;
    }
    // Exact whenever dist <= radius (the only candidates reported).
    const int dist =
        EdrDistanceBoundedWith(kernel, scratch, query, s, epsilon_, radius);
    ++computed;
    stages.CountDp(query.size(), s.size());
    if (dist <= radius) {
      out.neighbors.push_back({id, static_cast<double>(dist)});
    } else {
      stages.Bump(&StageCounters::dp_early_abandoned);
    }
  }
  SortNeighborsAscending(&out.neighbors, max_results);
  const auto stop = std::chrono::steady_clock::now();
  out.stats.db_size = db_.size();
  out.stats.edr_computed = computed;
  stages.FinalizeNotVisited(db_.size());
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  RecordQueryMetrics(out.stats);
  return out;
}

}  // namespace edr
