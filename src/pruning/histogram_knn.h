#ifndef EDR_PRUNING_HISTOGRAM_KNN_H_
#define EDR_PRUNING_HISTOGRAM_KNN_H_

#include <memory>
#include <string>

#include "core/dataset.h"
#include "pruning/histogram.h"
#include "query/knn.h"

namespace edr {

/// Scan orders for histogram pruning (Section 4.3):
enum class HistogramScan {
  kSequential,  ///< "HSE": visit trajectories in database order.
  kSorted,      ///< "HSR": visit in ascending histogram-distance order.
};

/// k-NN searcher using the histogram lower bound (Theorem 6 / Corollary 1).
///
/// HSE visits candidates in database order and computes the true EDR only
/// when the histogram distance does not exceed the current k-th distance.
/// HSR first computes all histogram distances, sorts them ascending, and
/// stops the entire scan at the first candidate whose lower bound exceeds
/// the (monotonically non-increasing) k-th distance — every later
/// candidate has an even larger lower bound.
class HistogramKnnSearcher {
 public:
  /// `kind`/`delta` select the embedding: {k2D, delta} covers the paper's
  /// 2HE (delta=1) through 2H4E (delta=4); {k1D, 1} is 1HE. `layout`
  /// picks the table's column storage policy (a pure memory/speed knob —
  /// identical results either way).
  HistogramKnnSearcher(const TrajectoryDataset& db, double epsilon,
                       HistogramTable::Kind kind, int delta,
                       HistogramScan scan,
                       HistogramLayout layout = HistogramLayout::kAdaptive);

  /// `options` shards the bound sweep and refinement over the thread pool;
  /// results are bit-identical for every worker count.
  KnnResult Knn(const Trajectory& query, size_t k,
                const KnnOptions& options = {}) const;

  /// Range query: prunes every candidate whose histogram lower bound
  /// exceeds `radius`, computes EDR for the rest. Lossless.
  KnnResult Range(const Trajectory& query, int radius) const;

  const HistogramTable& table() const { return table_; }
  std::string name() const;

 private:
  const TrajectoryDataset& db_;
  double epsilon_;
  HistogramScan scan_;
  HistogramTable table_;
};

}  // namespace edr

#endif  // EDR_PRUNING_HISTOGRAM_KNN_H_
