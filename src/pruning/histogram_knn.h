#ifndef EDR_PRUNING_HISTOGRAM_KNN_H_
#define EDR_PRUNING_HISTOGRAM_KNN_H_

#include <memory>
#include <string>

#include "core/dataset.h"
#include "pruning/histogram.h"
#include "query/knn.h"

namespace edr {

/// Scan orders for histogram pruning (Section 4.3):
enum class HistogramScan {
  kSequential,  ///< "HSE": visit trajectories in database order.
  kSorted,      ///< "HSR": visit in ascending histogram-distance order.
};

/// k-NN searcher using the histogram lower bound (Theorem 6 / Corollary 1).
///
/// HSE visits candidates in database order and computes the true EDR only
/// when the histogram distance does not exceed the current k-th distance.
/// HSR first computes all histogram distances, sorts them ascending, and
/// stops the entire scan at the first candidate whose lower bound exceeds
/// the (monotonically non-increasing) k-th distance — every later
/// candidate has an even larger lower bound.
class HistogramKnnSearcher {
 public:
  /// `kind`/`delta` select the embedding: {k2D, delta} covers the paper's
  /// 2HE (delta=1) through 2H4E (delta=4); {k1D, 1} is 1HE. `layout`
  /// picks the table's column storage policy (a pure memory/speed knob —
  /// identical results either way).
  HistogramKnnSearcher(const TrajectoryDataset& db, double epsilon,
                       HistogramTable::Kind kind, int delta,
                       HistogramScan scan,
                       HistogramLayout layout = HistogramLayout::kAdaptive);

  /// `options` shards the bound sweep and refinement over the thread pool;
  /// results are bit-identical for every worker count.
  KnnResult Knn(const Trajectory& query, size_t k,
                const KnnOptions& options = {}) const;

  /// Answers a fusion group of queries with one cache-blocked pass over
  /// the histogram table: the fused sweep streams every column block once
  /// and evaluates all members' transport bounds against it, then each
  /// member runs the unchanged per-query refinement. `results[i]` is
  /// bit-identical to `Knn(*queries[i], k, options)` for every group size
  /// and worker count — fusing changes only how often the table is
  /// streamed, never any member's bound sequence.
  std::vector<KnnResult> KnnFused(
      const std::vector<const Trajectory*>& queries, size_t k,
      const KnnOptions& options = {}) const;

  /// Occupied-bin signature for the similarity-aware fusion grouper (see
  /// HistogramTable::QueryBinSignature). Purely advisory.
  uint64_t FusionFingerprint(const Trajectory& query) const {
    return table_.QueryBinSignature(query);
  }

  /// Range query: prunes every candidate whose histogram lower bound
  /// exceeds `radius`, computes EDR for the rest. Lossless.
  KnnResult Range(const Trajectory& query, int radius) const;

  const HistogramTable& table() const { return table_; }
  std::string name() const;

 private:
  /// The refinement phase shared by Knn and KnnFused: scans candidates
  /// against precomputed lower bounds (HSE database order or HSR sorted
  /// order), fills in stats/trace, and records query metrics.
  KnnResult RefineWithBounds(const Trajectory& query, size_t k,
                             const KnnOptions& options,
                             const std::vector<int>& bounds,
                             std::shared_ptr<QueryTrace> trace,
                             double filter_seconds) const;

  const TrajectoryDataset& db_;
  double epsilon_;
  HistogramScan scan_;
  HistogramTable table_;
};

}  // namespace edr

#endif  // EDR_PRUNING_HISTOGRAM_KNN_H_
