#include "pruning/combined.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "distance/edr_kernel.h"
#include "obs/trace.h"
#include "pruning/qgram.h"
#include "query/feature_cache.h"
#include "query/intra_query.h"
#include "query/topk.h"

namespace edr {

std::vector<std::array<PruneStep, 3>> AllPruneOrders() {
  const PruneStep h = PruneStep::kHistogram;
  const PruneStep p = PruneStep::kQgram;
  const PruneStep n = PruneStep::kNearTriangle;
  return {{h, p, n}, {h, n, p}, {p, h, n}, {p, n, h}, {n, h, p}, {n, p, h}};
}

char PruneStepCode(PruneStep step) {
  switch (step) {
    case PruneStep::kHistogram: return 'H';
    case PruneStep::kQgram: return 'P';
    case PruneStep::kNearTriangle: return 'N';
  }
  return '?';
}

CombinedKnnSearcher::CombinedKnnSearcher(const TrajectoryDataset& db,
                                         double epsilon,
                                         const CombinedOptions& options)
    : CombinedKnnSearcher(
          db, epsilon, options,
          PairwiseEdrMatrix::Build(db, epsilon, options.max_triangle)) {}

CombinedKnnSearcher::CombinedKnnSearcher(const TrajectoryDataset& db,
                                         double epsilon,
                                         const CombinedOptions& options,
                                         PairwiseEdrMatrix matrix)
    : db_(db),
      epsilon_(epsilon),
      options_(options),
      histograms_(db, epsilon, options.histogram_kind,
                  options.histogram_delta, options.histogram_layout),
      qgram_means_(db, options.q, /*dims=*/2),
      matrix_(std::move(matrix)) {}

KnnResult CombinedKnnSearcher::Knn(const Trajectory& query, size_t k,
                                   const KnnOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  KnnResult out;
  out.stats.db_size = db_.size();
  if (k == 0) {
    out.stats.stages.FinalizeNotVisited(db_.size());
    return out;
  }

  std::shared_ptr<QueryTrace> trace = MakeQueryTrace();
  RecordSchedBudget(trace.get(), options);
  TraceSpan sweep_span(trace.get(), "bound_sweep");
  // Both query features go through the cache under the same keys the
  // standalone histogram / PS2 searchers use, so a mixed workload shares
  // entries across methods.
  const auto qh_ptr = GetOrBuildFeature<HistogramTable::QueryHistogram>(
      options.feature_cache, histograms_.feature_key(), query,
      [&] { return histograms_.MakeQueryHistogram(query); });
  const HistogramTable::QueryHistogram& qh = *qh_ptr;
  const auto means_ptr = GetOrBuildFeature<std::vector<Point2>>(
      options.feature_cache,
      "qgram.means2d.sorted/q=" + std::to_string(options_.q), query, [&] {
        std::vector<Point2> m = MeanValueQgrams(query, options_.q);
        SortMeans(m);
        return m;
      });
  const std::vector<Point2>& query_means = *means_ptr;

  // Every prune order contains the histogram step, so all fast lower
  // bounds are produced up front by one vectorized sweep (sharded over the
  // pool) — far cheaper than per-row calls even for ids a preceding filter
  // would have pruned. When the histogram filter runs first (and sorted
  // scanning is enabled) we additionally adopt the HSR strategy:
  // candidates in ascending-bound order, hard stop at the first bound
  // above the k-th distance.
  std::vector<int> bounds;
  histograms_.FastLowerBoundSweepParallel(qh, &bounds, options);
  sweep_span.End();
  const double filter_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return RefineWithBounds(query, k, options, bounds, query_means,
                          std::move(trace), filter_seconds);
}

std::vector<KnnResult> CombinedKnnSearcher::KnnFused(
    const std::vector<const Trajectory*>& queries, size_t k,
    const KnnOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  const size_t group = queries.size();
  std::vector<KnnResult> results(group);
  if (group == 0) return results;
  if (k == 0) {
    for (KnnResult& r : results) {
      r.stats.db_size = db_.size();
      r.stats.stages.FinalizeNotVisited(db_.size());
    }
    return results;
  }

  std::vector<std::shared_ptr<QueryTrace>> traces(group);
  std::vector<int32_t> span_ids(group, -1);
  std::vector<std::shared_ptr<const HistogramTable::QueryHistogram>> features(
      group);
  std::vector<std::shared_ptr<const std::vector<Point2>>> mean_features(
      group);
  std::vector<const HistogramTable::QueryHistogram*> qhs(group);
  std::vector<std::vector<int>> bounds(group);
  std::vector<std::vector<int>*> outs(group);
  for (size_t f = 0; f < group; ++f) {
    traces[f] = MakeQueryTrace();
    RecordSchedBudget(traces[f].get(), options);
    if (traces[f] != nullptr) span_ids[f] = traces[f]->Begin("fused_sweep");
    features[f] = GetOrBuildFeature<HistogramTable::QueryHistogram>(
        options.feature_cache, histograms_.feature_key(), *queries[f],
        [&] { return histograms_.MakeQueryHistogram(*queries[f]); });
    mean_features[f] = GetOrBuildFeature<std::vector<Point2>>(
        options.feature_cache,
        "qgram.means2d.sorted/q=" + std::to_string(options_.q), *queries[f],
        [&] {
          std::vector<Point2> m = MeanValueQgrams(*queries[f], options_.q);
          SortMeans(m);
          return m;
        });
    qhs[f] = features[f].get();
    outs[f] = &bounds[f];
  }
  // The histogram sweep — the one up-front whole-database pass — is fused;
  // the lazy Q-gram and near-triangle filters run inside each member's
  // refinement exactly as in the single-query path.
  histograms_.FastLowerBoundSweepFusedParallel(qhs, outs, options);
  for (size_t f = 0; f < group; ++f) {
    if (traces[f] != nullptr) traces[f]->End(span_ids[f]);
  }
  const double filter_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (size_t f = 0; f < group; ++f) {
    results[f] =
        RefineWithBounds(*queries[f], k, options, bounds[f],
                         *mean_features[f], std::move(traces[f]),
                         filter_seconds);
  }
  return results;
}

KnnResult CombinedKnnSearcher::RefineWithBounds(
    const Trajectory& query, size_t k, const KnnOptions& options,
    const std::vector<int>& bounds, const std::vector<Point2>& query_means,
    std::shared_ptr<QueryTrace> trace, double filter_seconds) const {
  const auto refine_start = std::chrono::steady_clock::now();
  KnnResult out;
  out.stats.db_size = db_.size();
  const bool histogram_first = options_.order[0] == PruneStep::kHistogram &&
                               options_.sorted_histogram_scan;
  const EdrKernel kernel = DefaultEdrKernel();
  const unsigned slots = ResolveIntraQueryWorkers(options);
  std::vector<std::vector<std::pair<uint32_t, double>>> proc(slots);
  for (auto& p : proc) p.reserve(matrix_.num_refs());
  std::vector<size_t> computed(slots, 0);
  std::vector<StageCounters> slot_stages(slots);

  const auto refine = [&](unsigned slot, uint32_t id, double best,
                          double* dist) {
    const Trajectory& s = db_[id];
    StageCounters& st = slot_stages[slot];
    st.Bump(&StageCounters::considered);
    std::vector<std::pair<uint32_t, double>>& proc_array = proc[slot];
    for (const PruneStep step : options_.order) {
      switch (step) {
        case PruneStep::kHistogram: {
          // The linear-time transport bound; the exact max-flow bound adds
          // almost no pruning at many times the cost (see bench_ablation)
          // and is not consulted on the query path.
          if (static_cast<double>(bounds[id]) > best) {
            st.Bump(&StageCounters::histogram_pruned);
            return false;
          }
          break;
        }
        case PruneStep::kQgram: {
          if (std::isinf(best)) break;  // Cannot prune before k seeds.
          const long best_k = static_cast<long>(best);
          const long threshold = QgramCountThreshold(
              query.size(), s.size(), options_.q, best_k);
          if (threshold <= 0) break;
          const long count = static_cast<long>(
              qgram_means_.CountMatches2D(query_means, epsilon_, id));
          if (count < threshold) {
            st.Bump(&StageCounters::qgram_pruned);
            return false;
          }
          break;
        }
        case PruneStep::kNearTriangle: {
          double max_prune_dist = 0.0;
          for (const auto& [ref_id, ref_dist] : proc_array) {
            const double bound = ref_dist - matrix_.at(ref_id, id) -
                                 static_cast<double>(s.size());
            max_prune_dist = std::max(max_prune_dist, bound);
          }
          if (max_prune_dist > best) {
            st.Bump(&StageCounters::triangle_pruned);
            return false;
          }
          break;
        }
      }
    }

    // Bounded refinement; lower-bound reference distances only weaken the
    // near-triangle prune bound, never unsound it.
    const int bound = EdrBoundFromKthDistance(best);
    const int d = EdrDistanceBoundedWith(kernel, ThreadLocalEdrScratch(),
                                         query, s, epsilon_, bound);
    ++computed[slot];
    st.CountDp(query.size(), s.size());
    if (id < matrix_.num_refs() && proc_array.size() < matrix_.num_refs()) {
      proc_array.emplace_back(id, static_cast<double>(d));
    }
    if (d > bound) {
      st.Bump(&StageCounters::dp_early_abandoned);
      return false;
    }
    *dist = static_cast<double>(d);
    return true;
  };

  TraceSpan refine_span(trace.get(), "refine");
  const TraceContext tc{trace.get(), refine_span.id()};
  if (histogram_first) {
    std::vector<StreamingOrder<int>::Entry> entries(db_.size());
    for (size_t i = 0; i < db_.size(); ++i) {
      entries[i] = {bounds[i], static_cast<uint32_t>(i)};
    }
    // In sorted order every remaining fast bound is >= the stopping one.
    const auto stop = [](int key, double threshold) {
      return static_cast<double>(key) > threshold;
    };
    out.neighbors = RefineInKeyOrder<int>(std::move(entries), k, options,
                                          refine, stop, tc);
  } else {
    out.neighbors = RefineInDbOrder(db_.size(), k, options, refine, tc);
  }
  refine_span.End();

  const auto stop_time = std::chrono::steady_clock::now();
  for (const size_t c : computed) out.stats.edr_computed += c;
  for (const StageCounters& st : slot_stages) out.stats.stages.Add(st);
  out.stats.stages.FinalizeNotVisited(db_.size());
  out.stats.filter_seconds = filter_seconds;
  out.stats.refine_seconds =
      std::chrono::duration<double>(stop_time - refine_start).count();
  out.stats.elapsed_seconds =
      out.stats.filter_seconds + out.stats.refine_seconds;
  out.trace = std::move(trace);
  RecordQueryMetrics(out.stats);
  return out;
}

KnnResult CombinedKnnSearcher::Range(const Trajectory& query, int radius,
                                     size_t max_results) const {
  const auto start = std::chrono::steady_clock::now();
  const HistogramTable::QueryHistogram qh =
      histograms_.MakeQueryHistogram(query);
  std::vector<Point2> query_means = MeanValueQgrams(query, options_.q);
  SortMeans(query_means);

  const bool histogram_first =
      options_.order[0] == PruneStep::kHistogram &&
      options_.sorted_histogram_scan;
  std::vector<int> bounds;
  histograms_.FastLowerBoundSweep(qh, &bounds);
  std::vector<uint32_t> order(db_.size());
  std::iota(order.begin(), order.end(), 0);
  if (histogram_first) {
    std::sort(order.begin(), order.end(), [&bounds](uint32_t a, uint32_t b) {
      return bounds[a] < bounds[b];
    });
  }

  const EdrKernel kernel = DefaultEdrKernel();
  EdrScratch& scratch = ThreadLocalEdrScratch();
  std::vector<std::pair<uint32_t, double>> proc_array;
  proc_array.reserve(matrix_.num_refs());
  KnnResult out;
  size_t computed = 0;
  StageCounters& stages = out.stats.stages;

  for (const uint32_t id : order) {
    const Trajectory& s = db_[id];
    bool pruned = false;
    bool stop_scan = false;
    PruneStep pruned_by = PruneStep::kHistogram;
    for (const PruneStep step : options_.order) {
      switch (step) {
        case PruneStep::kHistogram: {
          const int fast = bounds[id];
          if (fast > radius) {
            pruned = true;
            if (histogram_first) stop_scan = true;
          }
          break;
        }
        case PruneStep::kQgram: {
          const long threshold = QgramCountThreshold(
              query.size(), s.size(), options_.q, radius);
          if (threshold <= 0) break;
          const long count = static_cast<long>(
              qgram_means_.CountMatches2D(query_means, epsilon_, id));
          if (count < threshold) pruned = true;
          break;
        }
        case PruneStep::kNearTriangle: {
          double max_prune_dist = 0.0;
          for (const auto& [ref_id, ref_dist] : proc_array) {
            const double bound = ref_dist - matrix_.at(ref_id, id) -
                                 static_cast<double>(s.size());
            max_prune_dist = std::max(max_prune_dist, bound);
          }
          if (max_prune_dist > static_cast<double>(radius)) pruned = true;
          break;
        }
      }
      if (pruned) {
        pruned_by = step;
        break;
      }
    }
    // A stop_scan candidate is never visited — the hard stop fires before
    // its filter chain is charged.
    if (stop_scan) break;
    stages.Bump(&StageCounters::considered);
    if (pruned) {
      switch (pruned_by) {
        case PruneStep::kHistogram:
          stages.Bump(&StageCounters::histogram_pruned);
          break;
        case PruneStep::kQgram:
          stages.Bump(&StageCounters::qgram_pruned);
          break;
        case PruneStep::kNearTriangle:
          stages.Bump(&StageCounters::triangle_pruned);
          break;
      }
      continue;
    }

    const int dist =
        EdrDistanceBoundedWith(kernel, scratch, query, s, epsilon_, radius);
    ++computed;
    stages.CountDp(query.size(), s.size());
    if (id < matrix_.num_refs() && proc_array.size() < matrix_.num_refs()) {
      proc_array.emplace_back(id, static_cast<double>(dist));
    }
    if (dist <= radius) {
      out.neighbors.push_back({id, static_cast<double>(dist)});
    } else {
      stages.Bump(&StageCounters::dp_early_abandoned);
    }
  }

  SortNeighborsAscending(&out.neighbors, max_results);
  const auto stop = std::chrono::steady_clock::now();
  out.stats.db_size = db_.size();
  out.stats.edr_computed = computed;
  stages.FinalizeNotVisited(db_.size());
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  RecordQueryMetrics(out.stats);
  return out;
}

std::string CombinedKnnSearcher::name() const {
  std::string out =
      options_.histogram_kind == HistogramTable::Kind::k2D ? "2" : "1";
  for (const PruneStep step : options_.order) out += PruneStepCode(step);
  return out;
}

}  // namespace edr
